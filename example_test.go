package igp_test

import (
	"context"
	"fmt"

	igp "repro"
)

// The basic lifecycle: build a graph, partition it, grow it, repartition
// incrementally.
func Example() {
	// A 4x4 grid, partitioned into 2 halves by hand.
	g := igp.NewGraphWithVertices(16)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			v := igp.Vertex(r*4 + c)
			if c+1 < 4 {
				_ = g.AddEdge(v, v+1, 1)
			}
			if r+1 < 4 {
				_ = g.AddEdge(v, v+4, 1)
			}
		}
	}
	a := &igp.Assignment{Part: make([]int32, 16), P: 2}
	for v := range a.Part {
		if v%4 >= 2 {
			a.Part[v] = 1
		}
	}
	fmt.Println("cut:", igp.Cut(g, a).Total)

	// Growth: four new vertices attach to corner 0 — partition 0 becomes
	// overloaded.
	for i := 0; i < 4; i++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, 0, 1)
	}
	st, err := igp.Repartition(context.Background(), g, a)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("new vertices assigned:", st.NewAssigned)
	fmt.Println("balanced:", igp.Imbalance(g, a) == 1.0)
	// Output:
	// cut: 4
	// new vertices assigned: 4
	// balanced: true
}

// Repartitioning severe growth in batches bounds each stage's movement.
func ExampleWithBatches() {
	g := igp.NewGraphWithVertices(8)
	for i := 0; i < 7; i++ {
		_ = g.AddEdge(igp.Vertex(i), igp.Vertex(i+1), 1)
	}
	a := &igp.Assignment{Part: []int32{0, 0, 0, 0, 1, 1, 1, 1}, P: 2}
	// Twelve new vertices, all chained to one end.
	prev := igp.Vertex(0)
	for i := 0; i < 12; i++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev, 1)
		prev = v
	}
	st, err := igp.Repartition(context.Background(), g, a, igp.WithBatches(3))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("assigned:", st.NewAssigned)
	fmt.Println("balanced:", igp.Imbalance(g, a) == 1.0)
	// Output:
	// assigned: 12
	// balanced: true
}

// DescribeBalanceLP prints the Figure-5-style linear program.
func ExampleDescribeBalanceLP() {
	g := igp.NewGraphWithVertices(6)
	for i := 0; i < 5; i++ {
		_ = g.AddEdge(igp.Vertex(i), igp.Vertex(i+1), 1)
	}
	a := &igp.Assignment{Part: []int32{0, 0, 0, 0, 1, 1}, P: 2}
	desc, err := igp.DescribeBalanceLP(g, a)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(desc)
	// Output:
	// minimize  Σ l(i,j)
	// subject to
	//   0 ≤ l(0,1) ≤ 4
	//   0 ≤ l(1,0) ≤ 2
	//   outflow(0) − inflow(0) = 1
	//   outflow(1) − inflow(1) = -1
	// dense form: v = 6 variables, c = 4 constraints
}
