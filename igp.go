// Package igp is an open-source reproduction of Ou & Ranka, "Parallel
// Incremental Graph Partitioning Using Linear Programming"
// (Supercomputing '94).
//
// It provides:
//
//   - a mutable undirected graph type supporting the paper's incremental
//     edit model (vertices/edges added and deleted between phases);
//   - Recursive Spectral Bisection (RSB) for from-scratch partitioning —
//     the paper's baseline and initial-partition source;
//   - the four-phase Incremental Graph Partitioner: nearest-partition
//     assignment of new vertices, boundary layering, minimal-movement
//     load balancing by linear programming, and LP-based cut refinement
//     (the paper's IGP and IGPR variants);
//   - three simplex implementations (dense tableau as in the paper,
//     bounded-variable, and sparse revised) behind a pluggable, named
//     Solver registry, plus a column-distributed parallel simplex;
//   - a message-passing machine simulator calibrated to a 32-node CM-5,
//     with an SPMD parallel implementation of the whole pipeline; and
//   - DIME-style adaptive triangular mesh generation (incremental
//     Delaunay with localized refinement) reproducing the paper's two
//     experimental mesh families.
//
// # Quick start
//
// The primary surface is an [Engine]: a long-lived session bound to one
// graph, configured once with functional options that are validated
// eagerly at construction. The application loop edits the graph and
// calls Repartition with a context that bounds each repair:
//
//	g, _ := igp.NewMeshGraph(1000, 42)       // or build a Graph by hand
//	a, _ := igp.PartitionRSB(g, 32, 42)      // initial partition
//	eng, _ := igp.NewEngine(g, igp.WithRefine(), igp.WithTolerance(2))
//	for {
//		// ... the application refines its mesh: g gains vertices/edges ...
//		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
//		stats, err := eng.Repartition(ctx, a)
//		cancel()
//		if errors.Is(err, igp.ErrCanceled) {
//			// deadline hit mid-solve: a is still valid, just unbalanced —
//			// retry with a looser budget or repartition from scratch.
//		}
//		fmt.Println(stats.Elapsed, stats.PhaseTimings.Balance, igp.Cut(g, a).Total)
//	}
//
// One-shot callers use [Repartition], which builds a throwaway engine;
// severe growth can be absorbed gradually with [WithBatches]. Stage-level
// progress streams to a [WithObserver] callback, per-phase wall-clock and
// LP pivot totals land in [Stats], and alternative simplex
// implementations — including out-of-tree ones added via
// [RegisterSolver] — are selected by name with [WithSolver].
package igp

import (
	"fmt"
	"io"

	"repro/internal/balance"
	"repro/internal/graph"
	"repro/internal/layering"
	"repro/internal/lp"
	"repro/internal/mesh"
	"repro/internal/partition"
	"repro/internal/spectral"
)

// Graph is the mutable undirected weighted graph all partitioning
// operates on. See NewGraph; the zero value is also ready to use.
type Graph = graph.Graph

// Vertex identifies a graph vertex.
type Vertex = graph.Vertex

// Assignment maps vertices to partitions.
type Assignment = partition.Assignment

// CutStats reports cutset quality (the paper's Total/Max/Min columns).
type CutStats = partition.CutStats

// Unassigned marks vertices without a partition.
const Unassigned = partition.Unassigned

// NewGraph returns an empty graph with capacity for n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewGraphWithVertices returns a graph with n unit-weight vertices.
func NewGraphWithVertices(n int) *Graph { return graph.NewWithVertices(n) }

// ReadGraph decodes a graph from the textual format written by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph encodes g in a deterministic text format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// ReadAssignment decodes a partition assignment ("vertex partition" lines
// with an optional header). order and p supply the dimensions for
// headerless files; the header overrides them.
func ReadAssignment(r io.Reader, order, p int) (*Assignment, error) {
	return partition.ReadAssignment(r, order, p)
}

// WriteAssignment encodes a partition assignment.
func WriteAssignment(w io.Writer, a *Assignment) error {
	return partition.WriteAssignment(w, a)
}

// NewMeshGraph builds the node-adjacency graph of a fresh ~n-vertex
// unstructured triangular mesh (a DIME-style workload), deterministic in
// seed.
func NewMeshGraph(n int, seed int64) (*Graph, error) {
	gen, err := mesh.NewGenerator(n, seed)
	if err != nil {
		return nil, err
	}
	return gen.Mesh().Graph(), nil
}

// MeshSequence is a base mesh graph plus incremental refinements — the
// workload family of the paper's experiments. Step graphs preserve vertex
// identities, so they can be fed directly to Repartition.
type MeshSequence = mesh.Sequence

// PaperMeshA generates the paper's first experimental family: a
// ~1071-vertex mesh chained through four localized refinements
// (+25, +25, +31, +40 vertices).
func PaperMeshA(seed int64) (*MeshSequence, error) { return mesh.PaperSequenceA(seed) }

// PaperMeshB generates the paper's second family: a ~10166-vertex mesh
// with four independent refinements (+48, +139, +229, +672 vertices).
func PaperMeshB(seed int64) (*MeshSequence, error) { return mesh.PaperSequenceB(seed) }

// GenerateMeshSequence builds a custom chained refinement sequence: a
// ~baseN-vertex mesh refined by growth[i] vertices at step i in a
// drifting localized hotspot.
func GenerateMeshSequence(baseN int, growth []int, seed int64) (*MeshSequence, error) {
	return mesh.GenerateChained(baseN, growth, seed)
}

// PartitionRSB partitions g into p parts from scratch with recursive
// spectral bisection.
func PartitionRSB(g *Graph, p int, seed int64) (*Assignment, error) {
	part, err := spectral.RSB(g, p, spectral.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Assignment{Part: part, P: p}, nil
}

// Cut computes cutset statistics for a on g.
func Cut(g *Graph, a *Assignment) CutStats { return partition.Cut(g, a) }

// Imbalance returns max/mean partition weight (1.0 = perfectly balanced).
func Imbalance(g *Graph, a *Assignment) float64 { return partition.Imbalance(g, a) }

// DescribeBalanceLP formats the load-balancing linear program the next
// Repartition call would solve for (g, a) — the paper's Figure 5 view:
// movability bounds δ(i,j) and per-partition flow-balance equalities.
func DescribeBalanceLP(g *Graph, a *Assignment) (string, error) {
	lay, err := layering.Layer(g, a)
	if err != nil {
		return "", err
	}
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), a.P)
	m, err := balance.Formulate(lay.Delta, sizes, targets, 1)
	if err != nil {
		return "", err
	}
	var b []byte
	b = append(b, "minimize  Σ l(i,j)\nsubject to\n"...)
	for v, pr := range m.Pairs {
		b = append(b, fmt.Sprintf("  0 ≤ l(%d,%d) ≤ %g\n", pr[0], pr[1], m.Prob.Upper[v])...)
	}
	for j, rhs := range m.RHS {
		b = append(b, fmt.Sprintf("  outflow(%d) − inflow(%d) = %d\n", j, j, rhs)...)
	}
	vars, cons := lp.DenseSize(m.Prob)
	b = append(b, fmt.Sprintf("dense form: v = %d variables, c = %d constraints\n", vars, cons)...)
	return string(b), nil
}
