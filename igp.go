// Package igp is an open-source reproduction of Ou & Ranka, "Parallel
// Incremental Graph Partitioning Using Linear Programming"
// (Supercomputing '94).
//
// It provides:
//
//   - a mutable undirected graph type supporting the paper's incremental
//     edit model (vertices/edges added and deleted between phases);
//   - Recursive Spectral Bisection (RSB) for from-scratch partitioning —
//     the paper's baseline and initial-partition source;
//   - the four-phase Incremental Graph Partitioner: nearest-partition
//     assignment of new vertices, boundary layering, minimal-movement
//     load balancing by linear programming, and LP-based cut refinement
//     (the paper's IGP and IGPR variants);
//   - three simplex implementations (dense tableau as in the paper,
//     bounded-variable, and sparse revised) plus a column-distributed
//     parallel simplex;
//   - a message-passing machine simulator calibrated to a 32-node CM-5,
//     with an SPMD parallel implementation of the whole pipeline; and
//   - DIME-style adaptive triangular mesh generation (incremental
//     Delaunay with localized refinement) reproducing the paper's two
//     experimental mesh families.
//
// Quick start:
//
//	g := igp.NewMeshGraph(1000, 42)      // or build a Graph by hand
//	a, _ := igp.PartitionRSB(g, 32, 42)  // initial partition
//	// ... the application refines its mesh: g gains vertices/edges ...
//	stats, _ := igp.Repartition(g, a, igp.Options{Refine: true})
//	fmt.Println(igp.Cut(g, a).Total, stats.BalanceMoved)
package igp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/balance"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/layering"
	"repro/internal/lp"
	"repro/internal/mesh"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/refine"
	"repro/internal/spectral"
)

// Graph is the mutable undirected weighted graph all partitioning
// operates on. See NewGraph; the zero value is also ready to use.
type Graph = graph.Graph

// Vertex identifies a graph vertex.
type Vertex = graph.Vertex

// Assignment maps vertices to partitions.
type Assignment = partition.Assignment

// CutStats reports cutset quality (the paper's Total/Max/Min columns).
type CutStats = partition.CutStats

// Unassigned marks vertices without a partition.
const Unassigned = partition.Unassigned

// NewGraph returns an empty graph with capacity for n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewGraphWithVertices returns a graph with n unit-weight vertices.
func NewGraphWithVertices(n int) *Graph { return graph.NewWithVertices(n) }

// ReadGraph decodes a graph from the textual format written by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph encodes g in a deterministic text format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// ReadAssignment decodes a partition assignment ("vertex partition" lines
// with an optional header). order and p supply the dimensions for
// headerless files; the header overrides them.
func ReadAssignment(r io.Reader, order, p int) (*Assignment, error) {
	return partition.ReadAssignment(r, order, p)
}

// WriteAssignment encodes a partition assignment.
func WriteAssignment(w io.Writer, a *Assignment) error {
	return partition.WriteAssignment(w, a)
}

// NewMeshGraph builds the node-adjacency graph of a fresh ~n-vertex
// unstructured triangular mesh (a DIME-style workload), deterministic in
// seed.
func NewMeshGraph(n int, seed int64) (*Graph, error) {
	gen, err := mesh.NewGenerator(n, seed)
	if err != nil {
		return nil, err
	}
	return gen.Mesh().Graph(), nil
}

// MeshSequence is a base mesh graph plus incremental refinements — the
// workload family of the paper's experiments. Step graphs preserve vertex
// identities, so they can be fed directly to Repartition.
type MeshSequence = mesh.Sequence

// PaperMeshA generates the paper's first experimental family: a
// ~1071-vertex mesh chained through four localized refinements
// (+25, +25, +31, +40 vertices).
func PaperMeshA(seed int64) (*MeshSequence, error) { return mesh.PaperSequenceA(seed) }

// PaperMeshB generates the paper's second family: a ~10166-vertex mesh
// with four independent refinements (+48, +139, +229, +672 vertices).
func PaperMeshB(seed int64) (*MeshSequence, error) { return mesh.PaperSequenceB(seed) }

// GenerateMeshSequence builds a custom chained refinement sequence: a
// ~baseN-vertex mesh refined by growth[i] vertices at step i in a
// drifting localized hotspot.
func GenerateMeshSequence(baseN int, growth []int, seed int64) (*MeshSequence, error) {
	return mesh.GenerateChained(baseN, growth, seed)
}

// PartitionRSB partitions g into p parts from scratch with recursive
// spectral bisection.
func PartitionRSB(g *Graph, p int, seed int64) (*Assignment, error) {
	part, err := spectral.RSB(g, p, spectral.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Assignment{Part: part, P: p}, nil
}

// SolverName selects a simplex implementation.
type SolverName string

// Available simplex implementations.
const (
	SolverDense   SolverName = "dense"   // the paper's dense tableau
	SolverBounded SolverName = "bounded" // implicit variable bounds (default)
	SolverRevised SolverName = "revised" // sparse revised simplex
)

func (s SolverName) solver() (lp.Solver, error) {
	switch s {
	case SolverDense:
		return lp.Dense{}, nil
	case SolverBounded, "":
		return lp.Bounded{}, nil
	case SolverRevised:
		return lp.Revised{}, nil
	}
	return nil, fmt.Errorf("igp: unknown solver %q", s)
}

// Options configures Repartition.
type Options struct {
	// Refine enables the cut-refinement phase (the paper's IGPR).
	Refine bool
	// Solver picks the simplex implementation (default bounded).
	Solver SolverName
	// EpsilonMax bounds the balance relaxation factor ε (default 8).
	EpsilonMax float64
	// MaxStages caps multi-stage balancing (default 16).
	MaxStages int
	// RefineRounds caps refinement LP rounds (default 8).
	RefineRounds int
	// Tolerance allows partition sizes to deviate from their ideal targets
	// by up to this many vertices (default 0 = the paper's exact balance).
	// Positive values trade residual imbalance for less vertex movement.
	Tolerance int
}

// Stats reports what Repartition did.
type Stats struct {
	// NewAssigned is the number of new vertices placed in phase 1.
	NewAssigned int
	// Stages is the number of balancing stages used (the paper's IGP(k)).
	Stages int
	// EpsilonUsed lists the relaxation factor of each stage.
	EpsilonUsed []float64
	// BalanceMoved counts vertices moved for load balance.
	BalanceMoved int
	// RefineMoved counts vertices moved by refinement.
	RefineMoved int
	// LPVars and LPCons are the dense-formulation dimensions of the
	// largest balance LP (the paper's v and c).
	LPVars, LPCons int
	// CutBefore and CutAfter report cutset quality around balancing and
	// refinement.
	CutBefore, CutAfter CutStats
	// Elapsed is total wall-clock time.
	Elapsed time.Duration
}

// ErrNeedRepartition is returned when incremental balancing cannot
// succeed (the paper's advice: repartition from scratch, or add the new
// vertices in batches).
var ErrNeedRepartition = core.ErrNeedRepartition

// Repartition incrementally updates assignment a to cover graph g:
// vertices beyond a's coverage (or explicitly Unassigned) are treated as
// new. On success the partition sizes are balanced within Tolerance and a
// is updated in place.
func Repartition(g *Graph, a *Assignment, opt Options) (*Stats, error) {
	return repartition(g, a, opt, 1)
}

// RepartitionInBatches reveals the new vertices in the given number of
// groups (ordered by distance from the old region) and repartitions after
// each — the paper's §2.3 fallback for incremental changes too severe for
// a single correction ("solve the problem by adding only a fraction of
// the nodes at a given time"). batches = 1 is identical to Repartition.
func RepartitionInBatches(g *Graph, a *Assignment, opt Options, batches int) (*Stats, error) {
	return repartition(g, a, opt, batches)
}

func (opt Options) coreOptions() (core.Options, error) {
	solver, err := opt.Solver.solver()
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		Solver:     solver,
		EpsilonMax: opt.EpsilonMax,
		MaxStages:  opt.MaxStages,
		Tolerance:  opt.Tolerance,
		Refine:     opt.Refine,
		RefineOptions: refine.Options{
			MaxRounds: opt.RefineRounds,
			Solver:    solver,
		},
	}, nil
}

func convertStats(st *core.Stats, elapsed time.Duration) *Stats {
	out := &Stats{
		NewAssigned:  st.NewAssigned,
		Stages:       len(st.Stages),
		BalanceMoved: st.BalanceMoved,
		CutBefore:    st.CutBefore,
		CutAfter:     st.CutAfter,
		Elapsed:      elapsed,
	}
	for _, sg := range st.Stages {
		out.EpsilonUsed = append(out.EpsilonUsed, sg.Epsilon)
	}
	out.LPVars, out.LPCons = st.MaxLPSize()
	if st.Refine != nil {
		out.RefineMoved = st.Refine.Moved
	}
	return out
}

func repartition(g *Graph, a *Assignment, opt Options, batches int) (*Stats, error) {
	copt, err := opt.coreOptions()
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	var st *core.Stats
	if batches == 1 {
		st, err = core.Repartition(g, a, copt)
	} else {
		st, err = core.RepartitionInBatches(g, a, copt, batches)
	}
	if err != nil {
		return nil, err
	}
	return convertStats(st, time.Since(t0)), nil
}

// Engine is a long-lived repartitioner bound to one graph. Unlike the
// one-shot Repartition function — which rebuilds its derived state on
// every call — an Engine keeps a flat CSR snapshot of the graph (refreshed
// only when the graph has actually been edited), maintains the
// partition-boundary vertex set incrementally from the graph's edit
// journal, and reuses all phase scratch memory, so steady-state
// repartitioning after small edits performs near-zero heap allocation.
//
// Typical use mirrors an adaptive-mesh application's loop:
//
//	eng, _ := igp.NewEngine(g, igp.Options{Refine: true})
//	for {
//		// ... the application edits g ...
//		stats, err := eng.Repartition(a)
//	}
//
// An Engine is not safe for concurrent use.
type Engine struct {
	eng *engine.Engine
}

// NewEngine returns an engine bound to g. The first Repartition call pays
// a full snapshot build; subsequent calls are incremental.
func NewEngine(g *Graph, opt Options) (*Engine, error) {
	copt, err := opt.coreOptions()
	if err != nil {
		return nil, err
	}
	return &Engine{eng: engine.New(g, copt)}, nil
}

// Repartition incrementally updates assignment a to cover the engine's
// graph, exactly like the package-level Repartition but reusing the
// engine's snapshots and scratch arenas.
func (e *Engine) Repartition(a *Assignment) (*Stats, error) {
	t0 := time.Now()
	st, err := e.eng.Repartition(a)
	if err != nil {
		return nil, err
	}
	return convertStats(st, time.Since(t0)), nil
}

// Cut computes cutset statistics for a on g.
func Cut(g *Graph, a *Assignment) CutStats { return partition.Cut(g, a) }

// Imbalance returns max/mean partition weight (1.0 = perfectly balanced).
func Imbalance(g *Graph, a *Assignment) float64 { return partition.Imbalance(g, a) }

// ParallelResult reports a simulated distributed run.
type ParallelResult struct {
	// SimTime is the simulated makespan on the CM-5-calibrated machine.
	SimTime time.Duration
	// Messages and Bytes count point-to-point traffic.
	Messages, Bytes int64
	// Stages is the number of balancing stages used.
	Stages int
}

// SimulateParallelRepartition runs the SPMD message-passing implementation
// of the repartitioner on a simulated CM-5-like machine with the given
// number of ranks, updating a in place (the parallel and sequential
// results are equally balanced; tie-breaking may differ). The returned
// SimTime is the simulated parallel makespan — run with ranks=1 to obtain
// the simulated sequential time and divide for speedup.
func SimulateParallelRepartition(g *Graph, a *Assignment, ranks int, opt Options) (*ParallelResult, error) {
	w, err := comm.NewWorld(ranks, comm.CM5())
	if err != nil {
		return nil, err
	}
	res, err := parallel.Repartition(w, g, a, parallel.Options{
		EpsilonMax: opt.EpsilonMax,
		MaxStages:  opt.MaxStages,
		Refine:     opt.Refine,
	})
	if err != nil {
		return nil, err
	}
	return &ParallelResult{
		SimTime:  res.SimTime,
		Messages: res.Messages,
		Bytes:    res.Bytes,
		Stages:   res.Stages,
	}, nil
}

// DescribeBalanceLP formats the load-balancing linear program the next
// Repartition call would solve for (g, a) — the paper's Figure 5 view:
// movability bounds δ(i,j) and per-partition flow-balance equalities.
func DescribeBalanceLP(g *Graph, a *Assignment) (string, error) {
	lay, err := layering.Layer(g, a)
	if err != nil {
		return "", err
	}
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), a.P)
	m, err := balance.Formulate(lay.Delta, sizes, targets, 1)
	if err != nil {
		return "", err
	}
	var b []byte
	b = append(b, "minimize  Σ l(i,j)\nsubject to\n"...)
	for v, pr := range m.Pairs {
		b = append(b, fmt.Sprintf("  0 ≤ l(%d,%d) ≤ %g\n", pr[0], pr[1], m.Prob.Upper[v])...)
	}
	for j, rhs := range m.RHS {
		b = append(b, fmt.Sprintf("  outflow(%d) − inflow(%d) = %d\n", j, j, rhs)...)
	}
	vars, cons := lp.DenseSize(m.Prob)
	b = append(b, fmt.Sprintf("dense form: v = %d variables, c = %d constraints\n", vars, cons)...)
	return string(b), nil
}
