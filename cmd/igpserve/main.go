// Command igpserve runs the incremental-graph-partitioning service: a
// long-lived HTTP server multiplexing warm engine sessions with edit
// coalescing and admission control (see internal/serve).
//
// Usage:
//
//	igpserve -addr :8080                       # serve until SIGINT/SIGTERM
//	igpserve -batch 64 -maxwait 1ms -refine    # tune coalescing + quality
//	igpserve -smoke 3s                         # self-check: boot on a random
//	                                           # port, drive loadgen against
//	                                           # it, exit non-zero on failures
//
// Endpoints:
//
//	POST   /graphs                  create a session (mesh_n/seed or vertices/edges, p)
//	POST   /graphs/{id}/edits       submit edits; coalesced into one warm repartition
//	GET    /graphs/{id}/assignment  read the published assignment snapshot
//	DELETE /graphs/{id}             evict the session
//	GET    /metrics                 server-wide counters + latency quantiles
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	igp "repro"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	batch := flag.Int("batch", 0, "max requests coalesced into one repartition (0 = default 32)")
	maxWait := flag.Duration("maxwait", 0, "straggler wait per batch (0 = default 2ms, negative = drain-only)")
	queue := flag.Int("queue", 0, "per-session queue depth (0 = default 64)")
	inflight := flag.Int("inflight", 0, "server-wide in-flight request cap (0 = default 1024)")
	idle := flag.Duration("idle", 0, "evict sessions idle this long (0 = never)")
	procs := flag.Int("procs", 0, "engine worker count (0 = GOMAXPROCS, 1 = sequential)")
	solver := flag.String("solver", "", "LP solver for the engines: "+strings.Join(igp.SolverNames(), "|")+" (empty = default)")
	refine := flag.Bool("refine", false, "enable LP refinement (IGPR) in the engines")
	smoke := flag.Duration("smoke", 0, "self-check mode: boot on 127.0.0.1:0, run loadgen this long, exit")
	flag.Parse()

	var engOpts []igp.Option
	if *procs > 0 {
		engOpts = append(engOpts, igp.WithParallelism(*procs))
	}
	if *solver != "" {
		engOpts = append(engOpts, igp.WithSolver(*solver))
	}
	if *refine {
		engOpts = append(engOpts, igp.WithRefine())
	}
	cfg := serve.Config{
		BatchSize:     *batch,
		MaxWait:       *maxWait,
		QueueDepth:    *queue,
		MaxInFlight:   *inflight,
		IdleTimeout:   *idle,
		EngineOptions: engOpts,
	}

	if *smoke > 0 {
		os.Exit(runSmoke(cfg, *smoke))
	}

	srv := serve.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Graceful shutdown: stop accepting, let in-flight requests drain,
	// then close every session (releasing the warm engines).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "igpserve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "igpserve: %v\n", err)
		srv.Close()
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "igpserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "igpserve: shutdown: %v\n", err)
	}
	srv.Close()
}

// runSmoke is the CI self-check: boot the full HTTP stack on an
// ephemeral port, drive the load generator against it for d, then
// require a clean shutdown with zero failed requests (typed sheds are
// allowed — they are the admission controller working).
func runSmoke(cfg serve.Config, d time.Duration) int {
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "igpserve: smoke listen: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "igpserve: smoke run on %s for %v\n", base, d)

	res, lerr := loadgen.Run(loadgen.Options{
		BaseURL:  base,
		Sessions: 2,
		Workers:  4,
		Duration: d,
		MeshN:    300,
		P:        4,
		Seed:     1994,
	})

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutErr := httpSrv.Shutdown(shutCtx)
	srv.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "igpserve: smoke serve: %v\n", err)
		return 1
	}

	if lerr != nil {
		fmt.Fprintf(os.Stderr, "igpserve: smoke loadgen: %v\n", lerr)
		return 1
	}
	fmt.Printf("smoke: %d requests, %d served, %d shed, %d failed, p50 %v, p99 %v, %.0f req/s\n",
		res.Requests, res.Served, res.Shed, res.Failed, res.P50, res.P99, res.Throughput)
	switch {
	case shutErr != nil:
		fmt.Fprintf(os.Stderr, "igpserve: smoke shutdown: %v\n", shutErr)
		return 1
	case res.Failed > 0:
		fmt.Fprintf(os.Stderr, "igpserve: smoke: %d failed requests\n", res.Failed)
		return 1
	case res.Served == 0:
		fmt.Fprintln(os.Stderr, "igpserve: smoke: no requests served")
		return 1
	}
	fmt.Fprintln(os.Stderr, "igpserve: smoke ok")
	return 0
}
