// Command meshgen generates the DIME-substitute adaptive-mesh sequences
// used by the experiments and writes each step as a graph file.
//
//	meshgen -set A -outdir data/      # paper mesh A: 1071 + 25/25/31/40
//	meshgen -set B -outdir data/      # paper mesh B: 10166 + 48/139/229/672
//	meshgen -n 2000 -steps 3 -grow 50 # custom chained sequence
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/graph"
	"repro/internal/mesh"
)

func main() {
	set := flag.String("set", "", "paper mesh set: A or B (overrides -n/-steps/-grow)")
	n := flag.Int("n", 1000, "base mesh size for custom sequences")
	steps := flag.Int("steps", 3, "number of refinements for custom sequences")
	grow := flag.Int("grow", 40, "vertices added per refinement for custom sequences")
	seed := flag.Int64("seed", 1994, "generator seed")
	outdir := flag.String("outdir", ".", "output directory")
	flag.Parse()

	var seq *mesh.Sequence
	var name string
	var err error
	switch *set {
	case "A", "a":
		name = "meshA"
		seq, err = mesh.PaperSequenceA(*seed)
	case "B", "b":
		name = "meshB"
		seq, err = mesh.PaperSequenceB(*seed)
	case "":
		name = "mesh"
		growth := make([]int, *steps)
		for i := range growth {
			growth[i] = *grow
		}
		seq, err = mesh.GenerateChained(*n, growth, *seed)
	default:
		fmt.Fprintf(os.Stderr, "meshgen: unknown set %q\n", *set)
		os.Exit(2)
	}
	exitOn(err)

	write := func(path string, g *graph.Graph) {
		f, err := os.Create(path)
		exitOn(err)
		defer f.Close()
		exitOn(graph.Write(f, g))
		fmt.Printf("meshgen: wrote %s (|V|=%d |E|=%d)\n", path, g.NumVertices(), g.NumEdges())
	}
	exitOn(os.MkdirAll(*outdir, 0o755))
	write(filepath.Join(*outdir, name+"_base.graph"), seq.Base)
	for i, st := range seq.Steps {
		write(filepath.Join(*outdir, fmt.Sprintf("%s_step%d.graph", name, i+1)), st.Graph)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "meshgen:", err)
		os.Exit(1)
	}
}
