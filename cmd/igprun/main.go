// Command igprun partitions or incrementally repartitions a graph file.
//
// Partition from scratch with recursive spectral bisection:
//
//	igprun -in mesh.graph -p 32 -mode rsb -out parts.txt
//
// Incrementally repartition a grown graph, reusing a previous assignment:
//
//	igprun -in mesh2.graph -p 32 -mode igpr -prev parts.txt -out parts2.txt
//
// The assignment format is one "vertex partition" pair per line with an
// optional "igp-assignment <order> <P>" header.
package main

import (
	"flag"
	"fmt"
	"os"

	igp "repro"
)

func main() {
	in := flag.String("in", "", "input graph file (required)")
	prev := flag.String("prev", "", "previous assignment file (required for igp/igpr)")
	out := flag.String("out", "", "output assignment file (default stdout)")
	p := flag.Int("p", 32, "number of partitions")
	mode := flag.String("mode", "rsb", "rsb | igp | igpr")
	seed := flag.Int64("seed", 1, "seed for spectral starts")
	solver := flag.String("solver", "bounded", "simplex: dense|bounded|revised")
	tol := flag.Int("tol", 0, "allowed per-partition deviation from the target size")
	flag.Parse()

	if *in == "" {
		fail("missing -in")
	}
	f, err := os.Open(*in)
	exitOn(err)
	g, err := igp.ReadGraph(f)
	f.Close()
	exitOn(err)

	var a *igp.Assignment
	switch *mode {
	case "rsb":
		a, err = igp.PartitionRSB(g, *p, *seed)
		exitOn(err)
	case "igp", "igpr":
		if *prev == "" {
			fail("mode " + *mode + " requires -prev")
		}
		pf, err := os.Open(*prev)
		exitOn(err)
		a, err = igp.ReadAssignment(pf, g.Order(), *p)
		pf.Close()
		exitOn(err)
		st, err := igp.Repartition(g, a, igp.Options{
			Refine:    *mode == "igpr",
			Solver:    igp.SolverName(*solver),
			Tolerance: *tol,
		})
		exitOn(err)
		fmt.Fprintf(os.Stderr, "igprun: %d new vertices, %d stages, %d moved, LP v=%d c=%d, %v\n",
			st.NewAssigned, st.Stages, st.BalanceMoved+st.RefineMoved, st.LPVars, st.LPCons, st.Elapsed)
	default:
		fail("unknown mode " + *mode)
	}

	cut := igp.Cut(g, a)
	fmt.Fprintf(os.Stderr, "igprun: |V|=%d |E|=%d P=%d cutset total=%d max=%.0f min=%.0f imbalance=%.3f\n",
		g.NumVertices(), g.NumEdges(), *p, cut.Total, cut.Max, cut.Min, igp.Imbalance(g, a))

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		exitOn(err)
		defer w.Close()
	}
	exitOn(igp.WriteAssignment(w, a))
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "igprun:", msg)
	os.Exit(2)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "igprun:", err)
		os.Exit(1)
	}
}
