// Command igprun partitions or incrementally repartitions a graph file.
//
// Partition from scratch with recursive spectral bisection:
//
//	igprun -in mesh.graph -p 32 -mode rsb -out parts.txt
//
// Incrementally repartition a grown graph, reusing a previous assignment,
// with a hard wall-clock budget on the repair:
//
//	igprun -in mesh2.graph -p 32 -mode igpr -prev parts.txt -timeout 2s -out parts2.txt
//
// The assignment format is one "vertex partition" pair per line with an
// optional "igp-assignment <order> <P>" header.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	igp "repro"
)

func main() {
	in := flag.String("in", "", "input graph file (required)")
	prev := flag.String("prev", "", "previous assignment file (required for igp/igpr)")
	out := flag.String("out", "", "output assignment file (default stdout)")
	p := flag.Int("p", 32, "number of partitions")
	mode := flag.String("mode", "rsb", "rsb | igp | igpr")
	seed := flag.Int64("seed", 1, "seed for spectral starts")
	solver := flag.String("solver", "bounded", "simplex: "+strings.Join(igp.SolverNames(), "|"))
	tol := flag.Int("tol", 0, "allowed per-partition deviation from the target size")
	batches := flag.Int("batches", 1, "reveal new vertices in this many batches")
	timeout := flag.Duration("timeout", 0, "abort the repartition after this long (0 = no limit)")
	verbose := flag.Bool("v", false, "stream per-stage progress to stderr")
	flag.Parse()

	if *in == "" {
		fail("missing -in")
	}
	f, err := os.Open(*in)
	exitOn(err)
	g, err := igp.ReadGraph(f)
	f.Close()
	exitOn(err)

	var a *igp.Assignment
	switch *mode {
	case "rsb":
		a, err = igp.PartitionRSB(g, *p, *seed)
		exitOn(err)
	case "igp", "igpr":
		if *prev == "" {
			fail("mode " + *mode + " requires -prev")
		}
		pf, err := os.Open(*prev)
		exitOn(err)
		a, err = igp.ReadAssignment(pf, g.Order(), *p)
		pf.Close()
		exitOn(err)

		opts := []igp.Option{
			igp.WithSolver(*solver),
			igp.WithTolerance(*tol),
			igp.WithBatches(*batches),
		}
		if *mode == "igpr" {
			opts = append(opts, igp.WithRefine())
		}
		if *verbose {
			opts = append(opts, igp.WithObserver(func(ev igp.Event) {
				if ev.Kind == igp.EventEnd && ev.Phase == igp.PhaseBalance {
					fmt.Fprintf(os.Stderr, "igprun: stage %d: ε=%g moved=%d in %v\n",
						ev.Stage, ev.Epsilon, ev.Moved, ev.Elapsed)
				}
			}))
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		st, err := igp.Repartition(ctx, g, a, opts...)
		if errors.Is(err, igp.ErrCanceled) {
			fmt.Fprintf(os.Stderr, "igprun: timed out after %v: %v\n", *timeout, err)
			os.Exit(3)
		}
		exitOn(err)
		fmt.Fprintf(os.Stderr, "igprun: %d new vertices, %d stages, %d moved, LP v=%d c=%d (%d pivots), %v\n",
			st.NewAssigned, st.Stages, st.BalanceMoved+st.RefineMoved, st.LPVars, st.LPCons, st.LPIterations, st.Elapsed)
		pt := st.PhaseTimings
		fmt.Fprintf(os.Stderr, "igprun: phases: assign=%v layer=%v balance=%v refine=%v\n",
			pt.Assign, pt.Layer, pt.Balance, pt.Refine)
	default:
		fail("unknown mode " + *mode)
	}

	cut := igp.Cut(g, a)
	fmt.Fprintf(os.Stderr, "igprun: |V|=%d |E|=%d P=%d cutset total=%d max=%.0f min=%.0f imbalance=%.3f\n",
		g.NumVertices(), g.NumEdges(), *p, cut.Total, cut.Max, cut.Min, igp.Imbalance(g, a))

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		exitOn(err)
		defer w.Close()
	}
	exitOn(igp.WriteAssignment(w, a))
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "igprun:", msg)
	os.Exit(2)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "igprun:", err)
		os.Exit(1)
	}
}
