// benchdiff compares two BENCH_<N>.json trajectory artifacts (written
// by scripts/bench.sh) and prints a GitHub-flavored-markdown delta
// report, built for $GITHUB_STEP_SUMMARY in the CI bench-smoke job.
//
// It is report-only by design: benchmark wall clocks on shared CI
// runners are too noisy to gate a merge, so benchdiff always exits 0
// after a successful comparison (nonzero only for usage/IO/parse
// errors) and instead flags deltas beyond a threshold so a reviewer's
// eye lands on them. Benchmarks present in only one artifact are listed
// as added/removed rather than diffed.
//
// Usage:
//
//	benchdiff [-threshold 10] OLD.json NEW.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// benchFile mirrors the slices of BENCH_<N>.json that benchdiff reads;
// unknown fields (solver tables, serve latency, ...) are ignored.
type benchFile struct {
	Trajectory   int          `json:"trajectory"`
	PhaseTimings phaseRecord  `json:"phase_timings"`
	Multilevel   *mlRecord    `json:"multilevel"`
	Multilevel1M *mlRecord    `json:"multilevel_1m"`
	Benchmarks   []benchEntry `json:"benchmarks"`
}

type phaseRecord struct {
	AssignNS  int64 `json:"assign_ns"`
	LayerNS   int64 `json:"layer_ns"`
	BalanceNS int64 `json:"balance_ns"`
	RefineNS  int64 `json:"refine_ns"`
	ElapsedNS int64 `json:"elapsed_ns"`
}

type mlRecord struct {
	P    int     `json:"p"`
	Rows []mlRow `json:"rows"`
}

type mlRow struct {
	Workload string  `json:"workload"`
	N        int     `json:"n"`
	Mode     string  `json:"mode"`
	Procs    int     `json:"procs"`
	TimeNS   int64   `json:"time_ns"`
	Cut      float64 `json:"cut"`
}

type benchEntry struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  *int64 `json:"bytes_per_op"`
	AllocsPerOp *int64 `json:"allocs_per_op"`
}

func main() {
	threshold := flag.Float64("threshold", 10, "flag deltas beyond this many percent")
	xprocs := flag.Bool("xprocs", false, "cross-procs mode: read ONE artifact and report multilevel speedup across its worker counts")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold pct] OLD.json NEW.json\n")
		fmt.Fprintf(os.Stderr, "       benchdiff -xprocs FILE.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *xprocs {
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		f, err := load(flag.Arg(0))
		exitOn(err)
		crossProcs(f)
		return
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldF, err := load(flag.Arg(0))
	exitOn(err)
	newF, err := load(flag.Arg(1))
	exitOn(err)

	fmt.Printf("### Bench delta: trajectory %d → %d\n\n", oldF.Trajectory, newF.Trajectory)
	fmt.Printf("Report-only — wall clocks on shared runners are noisy; deltas beyond ±%.0f%% are flagged for a human eye, never for a merge gate.\n\n", *threshold)
	diffBenchmarks(oldF, newF, *threshold)
	diffPhases(oldF, newF, *threshold)
	diffMultilevel("Multilevel row", oldF.Multilevel, newF.Multilevel, *threshold)
	diffMultilevel("Multilevel 10⁶ row", oldF.Multilevel1M, newF.Multilevel1M, *threshold)
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// pct renders a signed percentage delta with a flag marker beyond the
// threshold.
func pct(oldV, newV float64, threshold float64) string {
	if oldV == 0 {
		return "n/a"
	}
	d := 100 * (newV - oldV) / oldV
	mark := ""
	if d > threshold {
		mark = " ⚠"
	} else if d < -threshold {
		mark = " ✓"
	}
	return fmt.Sprintf("%+.1f%%%s", d, mark)
}

func diffBenchmarks(oldF, newF *benchFile, threshold float64) {
	oldBy := map[string]benchEntry{}
	for _, b := range oldF.Benchmarks {
		oldBy[b.Name] = b
	}
	names := make([]string, 0, len(newF.Benchmarks))
	newBy := map[string]benchEntry{}
	for _, b := range newF.Benchmarks {
		newBy[b.Name] = b
		names = append(names, b.Name)
	}
	sort.Strings(names)

	fmt.Printf("| Benchmark | old ns/op | new ns/op | Δ time | old allocs | new allocs | Δ allocs |\n")
	fmt.Printf("|---|---:|---:|---:|---:|---:|---:|\n")
	for _, name := range names {
		nb := newBy[name]
		ob, ok := oldBy[name]
		if !ok {
			fmt.Printf("| %s | — | %d | added | — | %s | |\n", name, nb.NsPerOp, allocs(nb))
			continue
		}
		dAlloc := "n/a"
		if ob.AllocsPerOp != nil && nb.AllocsPerOp != nil {
			dAlloc = pct(float64(*ob.AllocsPerOp), float64(*nb.AllocsPerOp), threshold)
		}
		fmt.Printf("| %s | %d | %d | %s | %s | %s | %s |\n",
			name, ob.NsPerOp, nb.NsPerOp, pct(float64(ob.NsPerOp), float64(nb.NsPerOp), threshold),
			allocs(ob), allocs(nb), dAlloc)
	}
	for name := range oldBy {
		if _, ok := newBy[name]; !ok {
			fmt.Printf("| %s | removed | — | | | | |\n", name)
		}
	}
	fmt.Println()
}

func allocs(b benchEntry) string {
	if b.AllocsPerOp == nil {
		return "—"
	}
	return fmt.Sprintf("%d", *b.AllocsPerOp)
}

func diffPhases(oldF, newF *benchFile, threshold float64) {
	o, n := oldF.PhaseTimings, newF.PhaseTimings
	if o.ElapsedNS == 0 || n.ElapsedNS == 0 {
		return
	}
	fmt.Printf("| Pipeline phase | old ns | new ns | Δ |\n|---|---:|---:|---:|\n")
	rows := []struct {
		name   string
		ov, nv int64
	}{
		{"assign", o.AssignNS, n.AssignNS},
		{"layer", o.LayerNS, n.LayerNS},
		{"balance", o.BalanceNS, n.BalanceNS},
		{"refine", o.RefineNS, n.RefineNS},
		{"total", o.ElapsedNS, n.ElapsedNS},
	}
	for _, r := range rows {
		fmt.Printf("| %s | %d | %d | %s |\n", r.name, r.ov, r.nv, pct(float64(r.ov), float64(r.nv), threshold))
	}
	fmt.Println()
}

// diffMultilevel diffs one large-graph V-cycle tier record when both
// artifacts carry it (older trajectories predate the field; rows from
// artifacts that predate the procs axis key as procs=0 and show as
// added/removed once).
func diffMultilevel(title string, oldR, newR *mlRecord, threshold float64) {
	if oldR == nil || newR == nil {
		return
	}
	type key struct {
		workload, mode string
		procs          int
	}
	oldBy := map[key]mlRow{}
	for _, r := range oldR.Rows {
		oldBy[key{r.Workload, r.Mode, r.Procs}] = r
	}
	fmt.Printf("| %s | old ns | new ns | Δ time | old cut | new cut | Δ cut |\n", title)
	fmt.Printf("|---|---:|---:|---:|---:|---:|---:|\n")
	for _, r := range newR.Rows {
		o, ok := oldBy[key{r.Workload, r.Mode, r.Procs}]
		if !ok {
			fmt.Printf("| %s/%s@%d | — | %d | added | — | %.0f | |\n", r.Workload, r.Mode, r.Procs, r.TimeNS, r.Cut)
			continue
		}
		fmt.Printf("| %s/%s@%d | %d | %d | %s | %.0f | %.0f | %s |\n",
			r.Workload, r.Mode, r.Procs, o.TimeNS, r.TimeNS, pct(float64(o.TimeNS), float64(r.TimeNS), threshold),
			o.Cut, r.Cut, pct(o.Cut, r.Cut, threshold))
	}
	fmt.Println()
}

// crossProcs is the -xprocs report: within ONE artifact, the multilevel
// rows are grouped by workload/mode and compared across worker counts,
// with the smallest count as baseline. This is the scaling evidence the
// CI multi-core job drops into its step summary — and because results
// are bit-identical across counts, a cut mismatch inside a group is
// flagged as a determinism violation.
func crossProcs(f *benchFile) {
	printed := false
	for _, rec := range []struct {
		name string
		r    *mlRecord
	}{{"multilevel", f.Multilevel}, {"multilevel_1m", f.Multilevel1M}} {
		if rec.r == nil {
			continue
		}
		printed = true
		type key struct{ workload, mode string }
		groups := map[key][]mlRow{}
		var order []key
		for _, r := range rec.r.Rows {
			k := key{r.Workload, r.Mode}
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], r)
		}
		fmt.Printf("### V-cycle scaling (%s, P=%d)\n\n", rec.name, rec.r.P)
		fmt.Printf("| Row | procs | ns | speedup | cut |\n|---|---:|---:|---:|---:|\n")
		for _, k := range order {
			rows := groups[k]
			sort.Slice(rows, func(i, j int) bool { return rows[i].Procs < rows[j].Procs })
			base := rows[0]
			for _, r := range rows {
				sp := "1.00×"
				if r.Procs != base.Procs && r.TimeNS > 0 {
					sp = fmt.Sprintf("%.2f×", float64(base.TimeNS)/float64(r.TimeNS))
				}
				cut := fmt.Sprintf("%.0f", r.Cut)
				if r.Cut != base.Cut {
					cut += " ⚠ DETERMINISM"
				}
				fmt.Printf("| %s/%s | %d | %d | %s | %s |\n", k.workload, k.mode, r.Procs, r.TimeNS, sp, cut)
			}
		}
		fmt.Println()
	}
	if !printed {
		fmt.Println("no multilevel records in artifact")
	}
}
