// Command igpbench regenerates the paper's evaluation tables and figures
// on the DIME-substitute meshes.
//
// Usage:
//
//	igpbench -table fig11                 # Figure 11 (mesh A, P=32)
//	igpbench -table fig14                 # Figure 14 (mesh B, P=32)
//	igpbench -table speedup               # §4 speedup claim (15–20× at 32)
//	igpbench -table lpsize                # §4 LP-size independence claim
//	igpbench -table refine                # refinement-quality ablation
//	igpbench -table solvers               # per-solver pivots (warm vs cold)
//	igpbench -table serve                 # igpserve latency under load
//	igpbench -table multilevel            # large-graph V-cycle tier (n=10^5)
//	igpbench -table all                   # everything
//
// Flags -p, -ranks, -seed, -solver and -skipsim adjust the experiment.
// See README.md for example output, including the "dual-warm"
// warm-started dual simplex comparison row.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	igp "repro"
	"repro/internal/bench"
	"repro/internal/lp"
	"repro/internal/mesh"
)

func main() {
	table := flag.String("table", "fig11", "table to regenerate: fig11|fig14|speedup|lpsize|baselines|refine|solvers|incremental|phases|lp-procs|serve|multilevel|all")
	seed := flag.Int64("seed", 1994, "workload seed")
	p := flag.Int("p", 32, "number of partitions")
	ranks := flag.Int("ranks", 32, "simulated machine size")
	solver := flag.String("solver", "bounded", "sequential simplex: "+strings.Join(igp.SolverNames(), "|"))
	procs := flag.Int("procs", 0, "worker count for the engine's sharded kernels (0 = GOMAXPROCS, 1 = sequential)")
	skipSim := flag.Bool("skipsim", false, "skip simulated parallel runs (no Time-p/Speedup)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (tables: incremental, solvers, serve, multilevel)")
	largeN := flag.Int("n", 100000, "large-graph tier size (table: multilevel)")
	check := flag.Bool("check", false, "multilevel CI assert mode: smoke size, no flat baseline, nonzero exit on any contract failure")
	procsList := flag.String("procslist", "", "comma-separated worker counts for the multilevel table (one row set per count; overrides -procs there)")
	flag.Parse()

	// The registry resolves built-ins and any solver an out-of-tree build
	// registered, so -solver accepts every name SolverNames lists.
	s, err := lp.Lookup(*solver)
	if err != nil {
		fmt.Fprintf(os.Stderr, "igpbench: %v\n", err)
		os.Exit(2)
	}
	if *procs < 0 {
		fmt.Fprintf(os.Stderr, "igpbench: -procs %d: worker count must be ≥ 0 (0 = GOMAXPROCS)\n", *procs)
		os.Exit(2)
	}
	cfg := bench.Config{Seed: *seed, P: *p, Ranks: *ranks, Solver: s, Parallelism: *procs, SkipSim: *skipSim}

	run := func(name string) bool { return *table == name || *table == "all" }
	ok := false
	if run("phases") {
		ok = true
		// Machine-readable per-phase timings for the bench.sh trajectory:
		// one JSON object, mesh A first refinement under IGPR.
		exitOn(printPhases(*seed, *p, *solver, *procs))
		if *table == "phases" {
			return
		}
	}
	if run("lp-procs") {
		ok = true
		// Machine-readable LP-phase scaling rows (mesh B, P=128, IGPR, one
		// row per worker count) for the bench.sh trajectory.
		exitOn(printLPProcs(*seed, *solver))
		if *table == "lp-procs" {
			return
		}
	}
	if run("fig11") {
		ok = true
		res, err := bench.Fig11(cfg)
		exitOn(err)
		fmt.Print(bench.Format(res))
	}
	if run("fig14") {
		ok = true
		res, err := bench.Fig14(cfg)
		exitOn(err)
		fmt.Print(bench.Format(res))
	}
	if run("speedup") {
		ok = true
		seq, err := mesh.PaperSequenceA(*seed)
		exitOn(err)
		pts, err := bench.SpeedupCurve(seq, cfg, []int{1, 2, 4, 8, 16, 32})
		exitOn(err)
		fmt.Print(bench.FormatSpeedup(pts, "IGPR on mesh A, first refinement"))
		fmt.Println()
	}
	if run("lpsize") {
		ok = true
		rows, err := bench.LPSizeTable([]int{1071, 2142, 4284, 8568}, cfg)
		exitOn(err)
		fmt.Print(bench.FormatLPSize(rows, cfg.P))
		fmt.Println()
	}
	if run("baselines") {
		ok = true
		seq, err := mesh.PaperSequenceA(*seed)
		exitOn(err)
		rows, err := bench.Baselines(seq, cfg)
		exitOn(err)
		fmt.Print(bench.FormatBaselines(rows, cfg.P))
		fmt.Println()
	}
	if run("solvers") {
		ok = true
		seq, err := mesh.PaperSequenceA(*seed)
		exitOn(err)
		rows, err := bench.SolverComparison(seq, cfg, igp.SolverNames())
		exitOn(err)
		if *table == "solvers" && *jsonOut {
			fmt.Println(solversJSON(rows, cfg.P))
			return
		}
		fmt.Print(bench.FormatSolvers(rows, cfg.P))
		fmt.Println()
	}
	if run("incremental") {
		ok = true
		workloads := []struct {
			name  string
			baseN int
		}{{"meshA", 1071}, {"meshB", 10166}}
		var records []string
		for _, wl := range workloads {
			g, rows, err := bench.IncrementalEdits(cfg, wl.baseN, []int{1, 4, 16, 64, 256}, 5)
			exitOn(err)
			if *table == "incremental" && *jsonOut {
				records = append(records, incrementalJSON(wl.name, g, rows, cfg.P))
				continue
			}
			fmt.Print(bench.FormatIncremental(wl.name, g, rows, cfg.P))
			fmt.Println()
		}
		if *table == "incremental" && *jsonOut {
			fmt.Printf("[%s]\n", strings.Join(records, ", "))
			return
		}
	}
	if run("serve") {
		ok = true
		// End-to-end service latency (igpserve + loadgen over real HTTP);
		// JSON rows become the serve_latency record in BENCH_<n>.json.
		exitOn(printServe(*seed, *jsonOut))
		if *table == "serve" {
			return
		}
	}
	if run("multilevel") {
		ok = true
		// Large-graph tier: V-cycle cold/settle/warm rows per workload
		// family, plus the flat RSB from-scratch baseline (minutes of wall
		// clock) when not in -check mode. MultilevelTable's own assertions
		// (validity, exact balance, grid warm hierarchy repair) make
		// -check a CI gate: any violation exits nonzero via exitOn.
		// -procslist repeats the tier at each worker count so one run
		// records the scaling curve; the results are bit-identical across
		// counts (the determinism contract), so repeat runs only add Time
		// columns. The flat baseline runs once: its wall clock is the
		// from-scratch anchor, not part of the scaling curve.
		counts, err := parseProcsList(*procsList, *procs)
		exitOn(err)
		var rows []bench.MultilevelRow
		for i, pc := range counts {
			pcfg := cfg
			pcfg.Parallelism = pc
			r, err := bench.MultilevelTable(pcfg, *largeN, !*check && i == 0)
			exitOn(err)
			rows = append(rows, r...)
		}
		if *table == "multilevel" && *jsonOut {
			fmt.Println(multilevelJSON(rows, cfg.P))
			return
		}
		fmt.Print(bench.FormatMultilevel(rows, cfg.P))
		fmt.Println()
		if *table == "multilevel" {
			return
		}
	}
	if run("refine") {
		ok = true
		seq, err := mesh.PaperSequenceA(*seed)
		exitOn(err)
		q, err := bench.RefineComparison(seq, cfg)
		exitOn(err)
		fmt.Printf("Refinement ablation (mesh A, first refinement, P=%d)\n", cfg.P)
		fmt.Printf("  %-28s %6s\n", "Method", "Cut")
		fmt.Printf("  %-28s %6d\n", "SB from scratch", q.CutSB)
		fmt.Printf("  %-28s %6d\n", "IGP (balance only)", q.CutIGP)
		fmt.Printf("  %-28s %6d\n", "IGPR (LP refinement)", q.CutIGPR)
		fmt.Printf("  %-28s %6d\n", "IGP + greedy (KL/FM-style)", q.CutGreedy)
		fmt.Println()
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "igpbench: unknown table %q\n", *table)
		os.Exit(2)
	}
}

// incrementalJSON renders one incremental-edit workload as a JSON
// object, the record scripts/bench.sh folds into BENCH_<n>.json: warm
// k-edit Repartition cost versus the FullRefresh baseline per delta
// size, plus the delta-pipeline counters of the warm engine.
func incrementalJSON(name string, g *igp.Graph, rows []bench.EditRow, p int) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprintf(`{"k": %d, "warm_ns": %d, "full_ns": %d, "csr_patched": %d, "cut_incremental": %d}`,
			r.K, r.WarmTime.Nanoseconds(), r.FullTime.Nanoseconds(), r.CSRPatched, r.CutIncremental)
	}
	return fmt.Sprintf(`{"workload": %q, "p": %d, "n": %d, "m": %d, "rows": [%s]}`,
		name, p, g.NumVertices(), g.NumEdges(), strings.Join(parts, ", "))
}

// solversJSON renders the per-solver comparison as one JSON object, the
// record scripts/bench.sh folds into BENCH_<n>.json: per registered
// solver, the IGPR wall clock, LP iteration total, cut quality and —
// for the approximate "mwu" solver — how many solves fell back to the
// exact path.
func solversJSON(rows []bench.SolverRow, p int) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprintf(`{"solver": %q, "time_ns": %d, "stages": %d, "lp_iterations": %d, "mwu_fallbacks": %d, "cut_total": %d, "balanced": %v}`,
			r.Name, r.Time.Nanoseconds(), r.Stages, r.LPIterations, r.MWUFallbacks, r.Cut.Total, r.Balanced)
	}
	return fmt.Sprintf(`{"workload": "meshA-step1-igpr", "p": %d, "rows": [%s]}`,
		p, strings.Join(parts, ", "))
}

// multilevelJSON renders the large-graph tier as one JSON object, the
// record scripts/bench.sh folds into BENCH_<n>.json: per workload
// family, mode and worker count, wall clock, resulting cut, hierarchy
// depth and whether the warm path journal-repaired the hierarchy. The
// procs field is the scaling axis benchdiff diffs along (-xprocs).
func multilevelJSON(rows []bench.MultilevelRow, p int) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprintf(`{"workload": %q, "n": %d, "m": %d, "mode": %q, "procs": %d, "time_ns": %d, "cut": %g, "levels": %d, "repaired": %v, "balanced": %v}`,
			r.Workload, r.N, r.E, r.Mode, r.Procs, r.Time.Nanoseconds(), r.Cut, r.Levels, r.Repaired, r.Balanced)
	}
	return fmt.Sprintf(`{"p": %d, "rows": [%s]}`, p, strings.Join(parts, ", "))
}

// parseProcsList parses the -procslist flag into worker counts, falling
// back to the single -procs value when unset.
func parseProcsList(list string, procs int) ([]int, error) {
	if list == "" {
		return []int{procs}, nil
	}
	var counts []int
	for _, f := range strings.Split(list, ",") {
		var c int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &c); err != nil || c < 0 {
			return nil, fmt.Errorf("igpbench: -procslist %q: bad worker count %q", list, f)
		}
		counts = append(counts, c)
	}
	return counts, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "igpbench:", err)
		os.Exit(1)
	}
}

// printPhases repartitions mesh A's first refinement with IGPR through
// the public API and emits Stats.PhaseTimings as one JSON object, the
// record scripts/bench.sh folds into BENCH_<n>.json. procs selects the
// sharded-kernel worker count (0 = GOMAXPROCS); the reported "procs" is
// the resolved Stats.Parallelism and "worker_busy_ns" its per-worker
// roll-up.
func printPhases(seed int64, p int, solver string, procs int) error {
	seq, err := mesh.PaperSequenceA(seed)
	if err != nil {
		return err
	}
	return phaseRecord("meshA-step1-igpr", seq, seed, p, solver, procs)
}

// printLPProcs is the lp-procs table: the first mesh-B refinement at
// P=128 — big enough that the balance/refine LPs clear the simplex
// kernels' sharding threshold — once per worker count, each emitted as
// a phaseRecord row. bench.sh folds the rows into
// phase_timings_by_procs, making the balance/refine wall clock versus
// worker count (and the lp_parallel counter proving the kernels forked)
// part of the BENCH trajectory.
func printLPProcs(seed int64, solver string) error {
	seq, err := mesh.PaperSequenceB(seed)
	if err != nil {
		return err
	}
	const p = 128
	for _, procs := range []int{1, 2, 4, 8} {
		if err := phaseRecord("meshB-step1-igpr-p128", seq, seed, p, solver, procs); err != nil {
			return err
		}
	}
	return nil
}

// phaseRecord runs one IGPR repartition of seq's first step and emits
// the per-phase timing JSON record.
func phaseRecord(workload string, seq *mesh.Sequence, seed int64, p int, solver string, procs int) error {
	a, err := igp.PartitionRSB(seq.Base, p, seed)
	if err != nil {
		return err
	}
	g := seq.Steps[0].Graph
	opts := []igp.Option{igp.WithRefine(), igp.WithSolver(solver)}
	if procs > 0 {
		opts = append(opts, igp.WithParallelism(procs))
	}
	st, err := igp.Repartition(context.Background(), g, a, opts...)
	if err != nil {
		return err
	}
	pt := st.PhaseTimings
	busy := make([]string, len(st.WorkerBusy))
	for i, d := range st.WorkerBusy {
		busy[i] = fmt.Sprintf("%d", d.Nanoseconds())
	}
	fmt.Printf(`{"workload": %q, "p": %d, "solver": %q, "procs": %d, `+
		`"assign_ns": %d, "layer_ns": %d, "balance_ns": %d, "refine_ns": %d, `+
		`"elapsed_ns": %d, "stages": %d, "lp_iterations": %d, "lp_parallel": %d, "moved": %d, `+
		`"worker_busy_ns": [%s]}`+"\n",
		workload, p, solver, st.Parallelism, pt.Assign.Nanoseconds(), pt.Layer.Nanoseconds(),
		pt.Balance.Nanoseconds(), pt.Refine.Nanoseconds(), st.Elapsed.Nanoseconds(),
		st.Stages, st.LPIterations, st.LPParallel, st.BalanceMoved+st.RefineMoved,
		strings.Join(busy, ", "))
	return nil
}
