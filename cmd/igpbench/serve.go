package main

import (
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/loadgen"
)

// serveLevel is one concurrency point of the serve latency table.
type serveLevel struct {
	sessions int
	workers  int
	requests int // per worker
}

// printServe measures the service stack end to end: for each
// concurrency level it boots a fresh in-process igpserve (real HTTP via
// an ephemeral listener), drives the load generator through the
// coalescing/admission path, and reports latency quantiles, throughput,
// and the coalescing ratio (served requests per batch repartition).
// jsonOut emits one JSON row per level — the records scripts/bench.sh
// folds into BENCH_<n>.json as serve_latency.
func printServe(seed int64, jsonOut bool) error {
	levels := []serveLevel{
		{sessions: 1, workers: 1, requests: 80},
		{sessions: 2, workers: 4, requests: 40},
		{sessions: 4, workers: 16, requests: 20},
	}
	if !jsonOut {
		fmt.Println("Serve latency under concurrent sessions (mesh 400, P=8, 6 edits/request)")
		fmt.Printf("  %8s %8s %8s %8s %6s %9s %9s %9s %8s\n",
			"Sessions", "Workers", "Served", "Reparts", "Coal", "p50", "p90", "p99", "req/s")
	}
	for _, lv := range levels {
		srv := serve.New(serve.Config{})
		ts := httptest.NewServer(srv.Handler())
		res, err := loadgen.Run(loadgen.Options{
			BaseURL:         ts.URL,
			Sessions:        lv.sessions,
			Workers:         lv.workers,
			Requests:        lv.requests,
			EditsPerRequest: 6,
			MeshN:           400,
			P:               8,
			Seed:            seed,
		})
		if err != nil {
			ts.Close()
			srv.Close()
			return err
		}
		m, merr := loadgen.Metrics(ts.URL)
		ts.Close()
		srv.Close()
		if merr != nil {
			return merr
		}
		if res.Failed > 0 {
			return fmt.Errorf("serve table: %d failed requests at %d sessions / %d workers",
				res.Failed, lv.sessions, lv.workers)
		}
		reparts, _ := m["repartitions_run"].Int64()
		graphs, _ := m["graphs_created"].Int64()
		// Coalescing ratio: served requests per batch repartition
		// (priming calls excluded).
		batches := reparts - graphs
		if batches < 1 {
			batches = 1
		}
		ratio := float64(res.Served) / float64(batches)
		if jsonOut {
			fmt.Printf(`{"sessions": %d, "workers": %d, "requests": %d, "served": %d, "shed": %d, `+
				`"repartitions": %d, "coalesce_ratio": %.3f, "p50_ns": %d, "p90_ns": %d, "p99_ns": %d, "rps": %.1f}`+"\n",
				lv.sessions, lv.workers, res.Requests, res.Served, res.Shed,
				reparts, ratio, res.P50.Nanoseconds(), res.P90.Nanoseconds(), res.P99.Nanoseconds(), res.Throughput)
			continue
		}
		fmt.Printf("  %8d %8d %8d %8d %6.2f %9s %9s %9s %8.0f\n",
			lv.sessions, lv.workers, res.Served, reparts, ratio,
			res.P50.Round(time.Microsecond), res.P90.Round(time.Microsecond),
			res.P99.Round(time.Microsecond), res.Throughput)
	}
	if !jsonOut {
		fmt.Println()
	}
	return nil
}
