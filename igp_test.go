package igp

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := NewMeshGraph(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PartitionRSB(g, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := Imbalance(g, a); got > 1.02 {
		t.Fatalf("RSB imbalance %g", got)
	}
	baseCut := Cut(g, a)
	if baseCut.Total <= 0 {
		t.Fatal("no cut recorded")
	}

	// Grow the graph incrementally: attach 40 vertices near vertex 0.
	prev := []Vertex{0}
	for i := 0; i < 40; i++ {
		v := g.AddVertex(1)
		if err := g.AddEdge(v, prev[len(prev)-1], 1); err != nil {
			t.Fatal(err)
		}
		prev = append(prev, v)
	}
	st, err := Repartition(context.Background(), g, a, WithRefine())
	if err != nil {
		t.Fatal(err)
	}
	if st.NewAssigned != 40 {
		t.Fatalf("assigned %d, want 40", st.NewAssigned)
	}
	if st.Stages == 0 || st.LPVars == 0 {
		t.Fatalf("missing stats: %+v", st)
	}
	if st.Elapsed <= 0 {
		t.Fatalf("Elapsed not measured: %+v", st)
	}
	if st.LPIterations <= 0 {
		t.Fatalf("LPIterations not measured: %+v", st)
	}
	if got := Imbalance(g, a); got > 1.02 {
		t.Fatalf("post-repartition imbalance %g", got)
	}
}

func TestPublicAPISolverNames(t *testing.T) {
	names := SolverNames()
	for _, want := range []string{"bounded", "dense", "revised", "dual-warm"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in solver %q missing from registry %v", want, names)
		}
	}
	if _, err := NewEngine(NewGraphWithVertices(2), WithSolver("nope")); err == nil {
		t.Fatal("unknown solver must error at NewEngine")
	}
	if _, err := Repartition(context.Background(), NewGraphWithVertices(2),
		&Assignment{Part: []int32{0, 0}, P: 1}, WithSolver("nope")); err == nil {
		t.Fatal("unknown solver must error at Repartition")
	}
	for _, name := range []string{"dense", "bounded", "revised", "dual-warm"} {
		if _, err := NewEngine(NewGraphWithVertices(2), WithSolver(name)); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
}

func TestPublicAPIGraphIO(t *testing.T) {
	g := NewGraphWithVertices(4)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(2, 3, 2)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 {
		t.Fatalf("edges = %d", h.NumEdges())
	}
}

func TestPublicAPISimulateParallel(t *testing.T) {
	g, err := NewMeshGraph(400, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PartitionRSB(g, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := []Vertex{0}
	for i := 0; i < 20; i++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[len(prev)-1], 1)
		prev = append(prev, v)
	}
	a1 := a.Clone()
	r1, err := SimulateParallelRepartition(context.Background(), g, a1, 1)
	if err != nil {
		t.Fatal(err)
	}
	a8 := a.Clone()
	r8, err := SimulateParallelRepartition(context.Background(), g, a8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r8.SimTime >= r1.SimTime {
		t.Fatalf("8 ranks (%v) not faster than 1 (%v)", r8.SimTime, r1.SimTime)
	}
	if r8.Messages == 0 || r8.Bytes == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestPublicAPIDescribeBalanceLP(t *testing.T) {
	g := NewGraphWithVertices(6)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(1, 2, 1)
	_ = g.AddEdge(2, 3, 1)
	_ = g.AddEdge(3, 4, 1)
	_ = g.AddEdge(4, 5, 1)
	a := &Assignment{Part: []int32{0, 0, 0, 0, 1, 1}, P: 2}
	out, err := DescribeBalanceLP(g, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"minimize", "l(0,1)", "outflow(0)", "dense form"} {
		if !strings.Contains(out, want) {
			t.Fatalf("description missing %q:\n%s", want, out)
		}
	}
}

func TestPublicAPIErrNeedRepartition(t *testing.T) {
	// Disconnected growth that cannot be balanced incrementally.
	g := NewGraphWithVertices(6)
	for i := 0; i < 5; i++ {
		_ = g.AddEdge(Vertex(i), Vertex(i+1), 1)
	}
	a := &Assignment{Part: []int32{0, 0, 0, 1, 1, 1}, P: 2}
	// New island of 8 vertices, disconnected.
	var island []Vertex
	for i := 0; i < 8; i++ {
		island = append(island, g.AddVertex(1))
	}
	for i := 0; i+1 < len(island); i++ {
		_ = g.AddEdge(island[i], island[i+1], 1)
	}
	_, err := Repartition(context.Background(), g, a)
	if err == nil {
		return // balanced via the cluster fallback — acceptable
	}
	if !errors.Is(err, ErrNeedRepartition) {
		t.Fatalf("unexpected error type: %v", err)
	}
}

func TestPublicAPIBatches(t *testing.T) {
	g, err := NewMeshGraph(300, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PartitionRSB(g, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	prev := []Vertex{0}
	for i := 0; i < 36; i++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[len(prev)-1], 1)
		prev = append(prev, v)
	}
	st, err := Repartition(context.Background(), g, a, WithRefine(), WithBatches(3))
	if err != nil {
		t.Fatal(err)
	}
	if st.NewAssigned != 36 {
		t.Fatalf("assigned %d, want 36", st.NewAssigned)
	}
	if got := Imbalance(g, a); got > 1.05 {
		t.Fatalf("imbalance %g", got)
	}
}

// TestPublicAPIDeprecatedWrappers keeps the legacy struct-options surface
// working: the wrappers must delegate to the new pipeline (including the
// eager solver-name check) without behavioral drift.
func TestPublicAPIDeprecatedWrappers(t *testing.T) {
	g, err := NewMeshGraph(300, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PartitionRSB(g, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	prev := []Vertex{0}
	for i := 0; i < 24; i++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[len(prev)-1], 1)
		prev = append(prev, v)
	}
	aW := a.Clone()
	stW, err := RepartitionWithOptions(g, aW, Options{Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if stW.NewAssigned != 24 {
		t.Fatalf("wrapper assigned %d, want 24", stW.NewAssigned)
	}
	aB := a.Clone()
	if _, err := RepartitionInBatches(g, aB, Options{}, 3); err != nil {
		t.Fatal(err)
	}
	if got := Imbalance(g, aB); got > 1.05 {
		t.Fatalf("imbalance %g", got)
	}
	if _, err := RepartitionInBatches(g, a.Clone(), Options{}, 0); err == nil {
		t.Fatal("0 batches must error")
	}
	if _, err := RepartitionWithOptions(g, a.Clone(), Options{Solver: "nope"}); err == nil {
		t.Fatal("unknown solver must propagate through the wrapper")
	}
	eng, err := NewEngineWithOptions(g, Options{Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Repartition(context.Background(), a.Clone()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPITolerance(t *testing.T) {
	g, err := NewMeshGraph(300, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PartitionRSB(g, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	prev := []Vertex{0}
	for i := 0; i < 20; i++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[len(prev)-1], 1)
		prev = append(prev, v)
	}
	exact := a.Clone()
	stExact, err := Repartition(context.Background(), g, exact)
	if err != nil {
		t.Fatal(err)
	}
	loose := a.Clone()
	stLoose, err := Repartition(context.Background(), g, loose, WithTolerance(3))
	if err != nil {
		t.Fatal(err)
	}
	if stLoose.BalanceMoved > stExact.BalanceMoved {
		t.Fatalf("tolerance moved more (%d) than exact (%d)", stLoose.BalanceMoved, stExact.BalanceMoved)
	}
}
