package igp

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lp"
)

// grownMesh builds a mesh with a localized burst of growth severe enough
// that repartitioning needs at least one balancing stage.
func grownMesh(t testing.TB, n, p, growth int, seed int64) (*Graph, *Assignment) {
	t.Helper()
	g, err := NewMeshGraph(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PartitionRSB(g, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	prev := []Vertex{0}
	for i := 0; i < growth; i++ {
		v := g.AddVertex(1)
		if err := g.AddEdge(v, prev[len(prev)-1], 1); err != nil {
			t.Fatal(err)
		}
		prev = append(prev, v)
	}
	return g, a
}

// TestCancelMidBalanceLP is the acceptance test for context support: an
// engine session is canceled — with a custom cause — at the instant the
// first balance stage begins, so the abort is observed inside the
// in-flight LP solve. The error must be the typed ErrCanceled wrapping
// the cause, and the assignment must remain fully valid (no mid-move
// corruption).
func TestCancelMidBalanceLP(t *testing.T) {
	g, a := grownMesh(t, 500, 8, 60, 7)
	cause := errors.New("budget blown")
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)

	var sawBalanceStart atomic.Bool
	var starts, ends atomic.Int64
	eng, err := NewEngine(g,
		WithRefine(),
		// The deliberately slow instance: the paper's dense tableau over a
		// severe localized burst keeps the pivot loop busy long enough that
		// the cancellation must be observed inside Solve, not between
		// phases.
		WithSolver("dense"),
		WithObserver(func(ev Event) {
			switch ev.Kind {
			case EventStart:
				starts.Add(1)
			case EventEnd:
				ends.Add(1)
			}
			if ev.Kind == EventStart && ev.Phase == PhaseBalance {
				sawBalanceStart.Store(true)
				cancel(cause) // fire while the stage's LP is about to pivot
			}
		}))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var rerr error
	go func() {
		defer close(done)
		_, rerr = eng.Repartition(ctx, a)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("canceled repartition did not return within bound")
	}

	if !sawBalanceStart.Load() {
		t.Fatal("test instance never reached a balance stage")
	}
	if rerr == nil {
		t.Fatal("canceled repartition returned nil error")
	}
	if !errors.Is(rerr, ErrCanceled) {
		t.Fatalf("error does not match ErrCanceled: %v", rerr)
	}
	// With a custom cause, context.Cause returns the cause itself — the
	// wrapped chain must surface it.
	if !errors.Is(rerr, cause) {
		t.Fatalf("error does not wrap context.Cause: %v", rerr)
	}
	var typed *CanceledError
	if !errors.As(rerr, &typed) {
		t.Fatalf("error is not a *CanceledError: %v", rerr)
	}
	if typed.Op == "" {
		t.Fatalf("CanceledError has no operation: %+v", typed)
	}
	// No partial assignment corruption: every live vertex still carries a
	// valid partition (the abort may leave sizes unbalanced, never a
	// half-applied move).
	if err := a.Validate(g); err != nil {
		t.Fatalf("assignment corrupted by abort: %v", err)
	}
	// Observer spans stay paired even on the abort path.
	if starts.Load() != ends.Load() {
		t.Fatalf("aborted run leaked observer spans: %d starts, %d ends", starts.Load(), ends.Load())
	}
}

// TestCancelExpiredDeadline: an already-expired deadline aborts before
// any work and surfaces context.DeadlineExceeded through the wrapper.
func TestCancelExpiredDeadline(t *testing.T) {
	g, a := grownMesh(t, 300, 4, 20, 3)
	before := a.Clone()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := Repartition(ctx, g, a)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded in chain, got %v", err)
	}
	// The abort fired before any phase ran: a must be exactly untouched.
	if len(a.Part) != len(before.Part) {
		t.Fatalf("assignment resized by aborted call: %d → %d", len(before.Part), len(a.Part))
	}
	for v := range a.Part {
		if a.Part[v] != before.Part[v] {
			t.Fatalf("vertex %d moved by aborted call", v)
		}
	}
}

// TestEagerOptionValidation: misconfigurations are constructor errors,
// reported by NewEngine (and one-shot Repartition) before any work.
func TestEagerOptionValidation(t *testing.T) {
	g := NewGraphWithVertices(4)
	cases := []struct {
		name string
		opt  Option
	}{
		{"unknown solver", WithSolver("warp-drive")},
		{"zero batches", WithBatches(0)},
		{"negative batches", WithBatches(-2)},
		{"zero max stages", WithMaxStages(0)},
		{"negative max stages", WithMaxStages(-1)},
		{"zero refine rounds", WithRefineRounds(0)},
		{"negative refine rounds", WithRefineRounds(-3)},
		{"negative tolerance", WithTolerance(-1)},
		{"epsilon below 1", WithEpsilonMax(0.5)},
		{"nil observer", WithObserver(nil)},
		{"nil option", nil},
		{"tiny coarsen core", WithMultilevel(CoarsenTo(1))},
		{"zero coarsen levels", WithMultilevel(CoarsenLevels(0))},
		{"nil multilevel sub-option", WithMultilevel(nil)},
	}
	for _, tc := range cases {
		if _, err := NewEngine(g, tc.opt); err == nil {
			t.Errorf("%s: NewEngine accepted invalid option", tc.name)
		}
	}
	// Valid configurations still construct.
	if _, err := NewEngine(g,
		WithRefineRounds(4), WithMaxStages(8), WithBatches(2),
		WithEpsilonMax(4), WithTolerance(1),
		WithMultilevel(CoarsenTo(16), CoarsenLevels(4), CoarsenSeed(9)),
		WithSolver("revised"), WithObserver(func(Event) {})); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

// TestWithMultilevelVCycle drives the public V-cycle surface end to end:
// a cold multilevel Repartition on a grown mesh must build a hierarchy
// (Stats.Levels populated, Coarsen/Uncoarsen timings plumbed through
// PhaseTimings), a warm call after a small edit batch must journal-repair
// it rather than recoarsen, and every call must leave an exactly
// balanced assignment.
func TestWithMultilevelVCycle(t *testing.T) {
	g, a := grownMesh(t, 600, 4, 60, 3)
	eng, err := NewEngine(g, WithRefine(), WithMultilevel(CoarsenTo(32), CoarsenSeed(7)))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	balanced := func(st *Stats) {
		t.Helper()
		if err := a.Validate(g); err != nil {
			t.Fatal(err)
		}
		sizes := a.Sizes(g)
		lo, hi := sizes[0], sizes[0]
		for _, s := range sizes[1:] {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if hi-lo > 1 {
			t.Fatalf("not exactly balanced: sizes %v", sizes)
		}
	}
	st, err := eng.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	balanced(st)
	if len(st.Levels) == 0 {
		t.Fatal("cold multilevel call reported no hierarchy levels")
	}
	for l, ls := range st.Levels {
		if !ls.Rebuilt || ls.Vertices <= 0 {
			t.Fatalf("cold level %d: %+v", l, ls)
		}
	}
	if st.HierarchyRepaired {
		t.Fatal("cold call cannot repair a hierarchy")
	}
	if st.PhaseTimings.Coarsen <= 0 {
		t.Fatal("Coarsen timing not plumbed")
	}
	if st.PhaseTimings.Total() < st.PhaseTimings.Coarsen+st.PhaseTimings.Uncoarsen {
		t.Fatal("PhaseTimings.Total excludes the V-cycle legs")
	}
	clone := st.Clone()
	st.Levels[0].Vertices = -1
	if clone.Levels[0].Vertices == -1 {
		t.Fatal("Stats.Clone aliases the Levels arena")
	}

	prev := Vertex(0)
	for i := 0; i < 6; i++ {
		v := g.AddVertex(1)
		if err := g.AddEdge(v, prev, 1); err != nil {
			t.Fatal(err)
		}
		prev = v
	}
	st, err = eng.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	balanced(st)
	if !st.HierarchyRepaired {
		t.Fatal("warm small-edit call recoarsened instead of repairing the hierarchy")
	}
}

// TestObserverEventOrdering checks the WithObserver contract: spans are
// properly paired and ordered (assign, then per-stage layer/balance,
// then refine), stage numbers count up from 1, and the stage events'
// measurements agree with the returned Stats.
func TestObserverEventOrdering(t *testing.T) {
	g, a := grownMesh(t, 500, 8, 60, 11)
	var events []Event
	eng, err := NewEngine(g, WithRefine(), WithObserver(func(ev Event) {
		events = append(events, ev)
	}))
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 4 {
		t.Fatalf("only %d events observed", len(events))
	}
	if events[0].Kind != EventStart || events[0].Phase != PhaseAssign {
		t.Fatalf("first event = %+v, want assign start", events[0])
	}
	if events[1].Kind != EventEnd || events[1].Phase != PhaseAssign {
		t.Fatalf("second event = %+v, want assign end", events[1])
	}
	if events[1].Moved != st.NewAssigned {
		t.Fatalf("assign end reports %d, stats say %d", events[1].Moved, st.NewAssigned)
	}

	var open *Event // currently open span
	stage := 0
	balanceMoved := 0
	balanceEnds := 0
	var epsSeen []float64
	refineStarted := false
	for i := 2; i < len(events); i++ {
		ev := events[i]
		switch ev.Kind {
		case EventStart:
			if open != nil {
				t.Fatalf("event %d: %v start while %v span open", i, ev.Phase, open.Phase)
			}
			open = &events[i]
			switch ev.Phase {
			case PhaseLayer:
				if refineStarted {
					t.Fatalf("event %d: layer after refine started", i)
				}
				if ev.Stage != stage+1 {
					t.Fatalf("event %d: layer stage %d, want %d", i, ev.Stage, stage+1)
				}
			case PhaseBalance:
				if ev.Stage != stage+1 {
					t.Fatalf("event %d: balance stage %d, want %d", i, ev.Stage, stage+1)
				}
			case PhaseRefine:
				refineStarted = true
			}
		case EventEnd:
			if open == nil || open.Phase != ev.Phase || open.Stage != ev.Stage {
				t.Fatalf("event %d: end %+v does not match open span %+v", i, ev, open)
			}
			open = nil
			if ev.Phase == PhaseBalance {
				stage = ev.Stage
				balanceMoved += ev.Moved
				balanceEnds++
				epsSeen = append(epsSeen, ev.Epsilon)
				if ev.Epsilon < 1 {
					t.Fatalf("event %d: balance ε = %g < 1", i, ev.Epsilon)
				}
			}
		case EventRound:
			if !refineStarted || open == nil || open.Phase != PhaseRefine {
				t.Fatalf("event %d: refine round outside refine span", i)
			}
			if ev.Stage < 1 {
				t.Fatalf("event %d: round %d", i, ev.Stage)
			}
		}
	}
	if open != nil {
		t.Fatalf("span %+v never closed", open)
	}
	if balanceEnds != st.Stages {
		t.Fatalf("%d balance spans, stats say %d stages", balanceEnds, st.Stages)
	}
	if balanceMoved != st.BalanceMoved {
		t.Fatalf("balance events moved %d, stats say %d", balanceMoved, st.BalanceMoved)
	}
	if len(epsSeen) != len(st.EpsilonUsed) {
		t.Fatalf("ε events %v vs stats %v", epsSeen, st.EpsilonUsed)
	}
	for i := range epsSeen {
		if epsSeen[i] != st.EpsilonUsed[i] {
			t.Fatalf("ε events %v vs stats %v", epsSeen, st.EpsilonUsed)
		}
	}
}

// TestPhaseTimingsSumToElapsed: the per-phase wall-clock breakdown must
// account for the bulk of Elapsed (the remainder is cut bookkeeping and
// snapshot sync), and never exceed it.
func TestPhaseTimingsSumToElapsed(t *testing.T) {
	g, a := grownMesh(t, 2000, 16, 150, 13)
	st, err := Repartition(context.Background(), g, a, WithRefine())
	if err != nil {
		t.Fatal(err)
	}
	total := st.PhaseTimings.Total()
	if total <= 0 {
		t.Fatalf("no phase timings recorded: %+v", st.PhaseTimings)
	}
	if st.Elapsed <= 0 {
		t.Fatalf("no elapsed recorded: %+v", st)
	}
	// Allow a sliver of clock skew, but phases are sub-spans of Elapsed.
	if total > st.Elapsed+time.Millisecond {
		t.Fatalf("phases (%v) exceed elapsed (%v)", total, st.Elapsed)
	}
	if total < st.Elapsed/4 {
		t.Fatalf("phases (%v) cover under a quarter of elapsed (%v)", total, st.Elapsed)
	}
}

// countingSolver wraps the bounded simplex, counting solves — the
// "drop-in out-of-tree solver" the registry seam exists for.
type countingSolver struct{ calls *atomic.Int64 }

func (s countingSolver) Name() string { return "test-counting" }

func (s countingSolver) Solve(ctx context.Context, p *LPProblem) (*LPSolution, error) {
	s.calls.Add(1)
	return lp.Bounded{}.Solve(ctx, p)
}

var countingCalls atomic.Int64

func init() {
	if err := RegisterSolver("test-counting", countingSolver{calls: &countingCalls}); err != nil {
		panic(err)
	}
}

// TestCustomSolverRegistry is the acceptance test for the public solver
// seam: a custom solver registered via RegisterSolver is selectable by
// name through WithSolver and actually drives the pipeline.
func TestCustomSolverRegistry(t *testing.T) {
	found := false
	for _, n := range SolverNames() {
		if n == "test-counting" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered solver missing from SolverNames: %v", SolverNames())
	}
	if err := RegisterSolver("test-counting", countingSolver{calls: &countingCalls}); err == nil {
		t.Fatal("duplicate registration must error")
	}
	if err := RegisterSolver("", countingSolver{calls: &countingCalls}); err == nil {
		t.Fatal("empty name must error")
	}

	g, a := grownMesh(t, 400, 8, 40, 17)
	eng, err := NewEngine(g, WithRefine(), WithSolver("test-counting"))
	if err != nil {
		t.Fatal(err)
	}
	before := countingCalls.Load()
	if _, err := eng.Repartition(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if got := countingCalls.Load() - before; got == 0 {
		t.Fatal("custom solver was selected but never invoked")
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestConvertStatsSteadyStateAllocs: converting engine stats into the
// public Stats through a warm arena must not allocate, keeping the
// session loop's bookkeeping off the heap.
func TestConvertStatsSteadyStateAllocs(t *testing.T) {
	src := &core.Stats{
		NewAssigned:  12,
		Stages:       []engine.StageStats{{Epsilon: 1, Moved: 4}, {Epsilon: 2, Moved: 2}, {Epsilon: 4}},
		BalanceMoved: 6,
		LPIterations: 99,
		AssignTime:   time.Millisecond,
		LayerTime:    2 * time.Millisecond,
		BalanceTime:  3 * time.Millisecond,
		RefineTime:   time.Millisecond,
		Elapsed:      8 * time.Millisecond,
	}
	var dst Stats
	convertStatsInto(&dst, src) // warm the EpsilonUsed arena
	allocs := testing.AllocsPerRun(50, func() {
		convertStatsInto(&dst, src)
	})
	if allocs > 0 {
		t.Fatalf("steady-state convertStatsInto allocates %.1f objects/op, want 0", allocs)
	}
	if dst.Stages != 3 || dst.BalanceMoved != 6 || dst.LPIterations != 99 {
		t.Fatalf("conversion lost data: %+v", dst)
	}
	if got := dst.PhaseTimings.Total(); got != 7*time.Millisecond {
		t.Fatalf("phase total = %v", got)
	}
}

// TestEngineStatsArenaReuse documents the ownership contract: the Stats
// returned by an Engine is overwritten by the next call.
func TestEngineStatsArenaReuse(t *testing.T) {
	g, a := grownMesh(t, 300, 4, 20, 19)
	eng, err := NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := eng.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	first := *st1
	st2, err := eng.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatal("engine stats arena not reused")
	}
	_ = first
	if st2.NewAssigned != 0 {
		t.Fatalf("second pass assigned %d, want 0", st2.NewAssigned)
	}
}

// ExampleWithObserver shows the event stream's shape.
func ExampleWithObserver() {
	g := NewGraphWithVertices(8)
	for i := 0; i < 7; i++ {
		_ = g.AddEdge(Vertex(i), Vertex(i+1), 1)
	}
	a := &Assignment{Part: []int32{0, 0, 0, 0, 1, 1, 1, 1}, P: 2}
	for i := 0; i < 4; i++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, 0, 1)
	}
	_, err := Repartition(context.Background(), g, a,
		WithObserver(func(ev Event) {
			if ev.Kind == EventEnd && ev.Phase == PhaseBalance {
				fmt.Printf("stage %d: ε=%g moved=%d\n", ev.Stage, ev.Epsilon, ev.Moved)
			}
		}))
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// stage 1: ε=1 moved=2
}

// TestWithFullRefreshEquivalence: through the public API, the escape
// hatch must change only the work accounting, never the result.
func TestWithFullRefreshEquivalence(t *testing.T) {
	gI, aI := grownMesh(t, 400, 8, 30, 23)
	gF, aF := grownMesh(t, 400, 8, 30, 23)
	eI, err := NewEngine(gI, WithRefine())
	if err != nil {
		t.Fatal(err)
	}
	eF, err := NewEngine(gF, WithRefine(), WithFullRefresh())
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		stI, errI := eI.Repartition(context.Background(), aI)
		stF, errF := eF.Repartition(context.Background(), aF)
		if (errI == nil) != (errF == nil) {
			t.Fatalf("step %d: error mismatch: %v vs %v", step, errI, errF)
		}
		if errI != nil {
			t.Skipf("step %d: infeasible: %v", step, errI)
		}
		for v := range aI.Part {
			if aI.Part[v] != aF.Part[v] {
				t.Fatalf("step %d: assignments diverge at %d", step, v)
			}
		}
		if stI.CutAfter.Total != stF.CutAfter.Total || stI.CutAfter.TotalWeight != stF.CutAfter.TotalWeight {
			t.Fatalf("step %d: cuts diverge: %+v vs %+v", step, stI.CutAfter, stF.CutAfter)
		}
		if stF.CSRPatched != 0 || stF.CutIncremental != 0 {
			t.Fatalf("step %d: WithFullRefresh reported incremental work: %d/%d",
				step, stF.CSRPatched, stF.CutIncremental)
		}
		if stI.CutIncremental == 0 {
			t.Fatalf("step %d: incremental engine never served an incremental cut", step)
		}
		// Grow both meshes identically for the next warm call.
		for i := 0; i < 5; i++ {
			vI, vF := gI.AddVertex(1), gF.AddVertex(1)
			if vI != vF {
				t.Fatal("meshes desynchronized")
			}
			if err := gI.AddEdge(vI, vI-1, 1); err != nil {
				t.Fatal(err)
			}
			if err := gF.AddEdge(vF, vF-1, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestPublicStatsClone: the public clone must deep-copy every
// arena-backed field and survive the engine's next call.
func TestPublicStatsClone(t *testing.T) {
	g, a := grownMesh(t, 300, 4, 20, 29)
	eng, err := NewEngine(g, WithRefine())
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	clone := st.Clone()
	eps := append([]float64(nil), clone.EpsilonUsed...)
	perPart := append([]float64(nil), clone.CutAfter.PerPart...)
	cutAfter := clone.CutAfter.Total
	// Overwrite the arena with a warm second call.
	v := g.AddVertex(1)
	if err := g.AddEdge(v, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Repartition(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if clone.CutAfter.Total != cutAfter {
		t.Fatal("clone scalar overwritten by the next call")
	}
	if fmt.Sprint(clone.EpsilonUsed) != fmt.Sprint(eps) {
		t.Fatal("clone EpsilonUsed overwritten by the next call")
	}
	if fmt.Sprint(clone.CutAfter.PerPart) != fmt.Sprint(perPart) {
		t.Fatal("clone PerPart overwritten by the next call")
	}
}
