package igp

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestWithParallelismValidation: worker counts below 1 are constructor
// errors, valid counts are accepted eagerly.
func TestWithParallelismValidation(t *testing.T) {
	g, err := NewMeshGraph(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, -1, -100} {
		if _, err := NewEngine(g, WithParallelism(n)); err == nil {
			t.Fatalf("WithParallelism(%d) accepted", n)
		}
	}
	for _, n := range []int{1, 2, 64} {
		if _, err := NewEngine(g, WithParallelism(n)); err != nil {
			t.Fatalf("WithParallelism(%d) rejected: %v", n, err)
		}
	}
}

// TestParallelismEquivalenceEndToEnd is the acceptance criterion: on
// the solver-equivalence seeds, the full IGPR pipeline must produce
// bit-identical assignments and cuts for every tested worker count.
// Unlike solver swaps — which only guarantee identity where LP optima
// are unique — parallelism never touches the LP path, so identity must
// hold on every configuration.
func TestParallelismEquivalenceEndToEnd(t *testing.T) {
	procsList := []int{1, 2, 7, runtime.GOMAXPROCS(0)}
	configs := append(equivalenceConfigs, struct {
		p    int
		seed int64
	}{32, 1994}) // the paper's P=32 workload: alternate optima allowed, parallelism identity still required
	for _, cfg := range configs {
		seq, err := PaperMeshA(cfg.seed)
		if err != nil {
			t.Fatal(err)
		}
		base, err := PartitionRSB(seq.Base, cfg.p, cfg.seed)
		if err != nil {
			t.Fatal(err)
		}
		g := seq.Steps[0].Graph
		var refPart []int32
		var refCut CutStats
		for _, procs := range procsList {
			a := base.Clone()
			if _, err := Repartition(context.Background(), g, a,
				WithRefine(), WithParallelism(procs)); err != nil {
				t.Fatalf("P=%d seed=%d procs=%d: %v", cfg.p, cfg.seed, procs, err)
			}
			cut := Cut(g, a)
			if refPart == nil {
				refPart, refCut = append([]int32(nil), a.Part...), cut
				continue
			}
			if !reflect.DeepEqual(cut, refCut) {
				t.Errorf("P=%d seed=%d procs=%d: cut %+v != sequential cut %+v",
					cfg.p, cfg.seed, procs, cut, refCut)
			}
			if !reflect.DeepEqual(refPart, a.Part) {
				t.Errorf("P=%d seed=%d procs=%d: assignment diverges from sequential",
					cfg.p, cfg.seed, procs)
			}
		}
	}
}

// TestParallelismStatsSurface: the public Stats must carry the resolved
// worker count and, for parallel runs, a per-worker busy roll-up that
// survives the engine's stats-arena reuse.
func TestParallelismStatsSurface(t *testing.T) {
	seq, err := PaperMeshA(7)
	if err != nil {
		t.Fatal(err)
	}
	base, err := PartitionRSB(seq.Base, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	g := seq.Steps[0].Graph
	eng, err := NewEngine(g, WithRefine(), WithParallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	a := base.Clone()
	st, err := eng.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Parallelism != 3 {
		t.Fatalf("Stats.Parallelism = %d, want 3", st.Parallelism)
	}
	if len(st.WorkerBusy) != 3 {
		t.Fatalf("Stats.WorkerBusy has %d slots, want 3", len(st.WorkerBusy))
	}
	var total time.Duration
	for _, d := range st.WorkerBusy {
		if d < 0 {
			t.Fatal("negative worker busy time")
		}
		total += d
	}
	if total <= 0 {
		t.Fatal("no worker busy time recorded on a parallel run")
	}

	// The sequential path reports Parallelism 1 and no breakdown.
	st1, err := Repartition(context.Background(), g, base.Clone(), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if st1.Parallelism != 1 || len(st1.WorkerBusy) != 0 {
		t.Fatalf("sequential stats: Parallelism=%d, WorkerBusy=%v", st1.Parallelism, st1.WorkerBusy)
	}
}
