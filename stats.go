package igp

import (
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// PhaseTimings is the per-phase wall-clock breakdown of one Repartition
// call: phase 1 nearest-partition assignment, phase 2 boundary layering
// (summed over balancing stages), phase 3 LP balancing (formulate +
// solve + move, summed over stages), and phase 4 refinement. Under
// [WithMultilevel], Coarsen (hierarchy update plus coarsest solve) and
// Uncoarsen (projection plus per-level refinement) cover the V-cycle
// legs run between assignment and balancing; both are zero otherwise.
// For a single-pass run their sum is within bookkeeping noise of
// Stats.Elapsed; a WithBatches(k>1) run sums the per-batch pipelines,
// which excludes the subgraph construction between batches.
type PhaseTimings struct {
	Assign    time.Duration
	Coarsen   time.Duration
	Uncoarsen time.Duration
	Layer     time.Duration
	Balance   time.Duration
	Refine    time.Duration
}

// Total sums the phases.
func (t PhaseTimings) Total() time.Duration {
	return t.Assign + t.Coarsen + t.Uncoarsen + t.Layer + t.Balance + t.Refine
}

// LevelStats reports what one [WithMultilevel] Repartition did at one
// hierarchy level; see [Stats.Levels].
type LevelStats = engine.LevelStats

// Stats reports what Repartition did.
//
// The *Stats returned by an [Engine]'s Repartition is an arena owned by
// the engine and overwritten by its next call; use [Stats.Clone] to
// retain one across calls. The one-shot package-level [Repartition]
// returns a fresh value every time.
type Stats struct {
	// NewAssigned is the number of new vertices placed in phase 1.
	NewAssigned int
	// Stages is the number of balancing stages used (the paper's IGP(k)).
	Stages int
	// EpsilonUsed lists the relaxation factor of each stage.
	EpsilonUsed []float64
	// BalanceMoved counts vertices moved for load balance.
	BalanceMoved int
	// RefineMoved counts vertices moved by refinement.
	RefineMoved int
	// RefineRounds is the number of refinement LP rounds applied.
	RefineRounds int
	// LPVars and LPCons are the dense-formulation dimensions of the
	// largest balance LP (the paper's v and c).
	LPVars, LPCons int
	// LPIterations is the total simplex pivots across every balance stage
	// and refinement round.
	LPIterations int
	// StagePivots lists the simplex pivots of each balance stage in
	// stage order, and RoundPivots those of each refinement LP round.
	// With the warm-started "dual-warm" solver, entries after the first
	// drop sharply (later solves resume from a retained basis); with the
	// cold solvers every entry pays a full pivot path. They are the
	// per-solve decomposition of LPIterations.
	StagePivots []int
	RoundPivots []int
	// CutBefore and CutAfter report cutset quality around balancing and
	// refinement.
	CutBefore, CutAfter CutStats
	// PhaseTimings is the per-phase wall-clock breakdown.
	PhaseTimings PhaseTimings
	// Elapsed is the wall clock of the whole pipeline, measured inside the
	// engine (it excludes callers' option conversion).
	Elapsed time.Duration
	// Parallelism is the worker count the engine's sharded kernels ran
	// with — the resolved [WithParallelism] value (1 = the sequential
	// path).
	Parallelism int
	// WorkerBusy is the per-worker busy wall clock summed over every
	// parallel region of the call (boundary sync, layering BFS, gain
	// scans, pool sorts, LP simplex kernels); index w is worker w. It is
	// empty on the sequential path. Comparing the sum against Elapsed
	// shows how much of the pipeline actually fanned out.
	WorkerBusy []time.Duration
	// LPParallel counts LP solves during this call whose simplex kernels
	// actually forked over the worker group (the solve's per-pivot work
	// reached the sharding threshold). It is zero on the sequential path
	// and for LPs too small to be worth sharding; solutions are
	// bit-identical either way.
	LPParallel int
	// MWUFallbacks counts LP solves during this call that the
	// approximate "mwu" solver handed to its exact fallback because the
	// instance was not graph-shaped or its quality bracket did not close
	// within the iteration budget (see [WithAccuracy]). It is zero for
	// the exact solvers.
	MWUFallbacks int
	// CSRPatched counts snapshot refreshes during this call served by
	// the journal-driven partial CSR patch (only the touched rows
	// rewritten) rather than a full O(n+m) rebuild. On a warm [Engine]
	// absorbing small edits it equals the number of refreshes; it is
	// zero on the first call, after journal overflow, when churn or a
	// slot overflow forced a compacting rebuild, or under
	// [WithFullRefresh].
	CSRPatched int
	// Levels reports the [WithMultilevel] hierarchy bottom-up: sizes,
	// repair-vs-rebuild outcome and timings of each coarse level. It is
	// empty when the V-cycle is disabled. Like the rest of an engine's
	// Stats arena it is overwritten by the next call; Clone detaches it.
	Levels []LevelStats
	// HierarchyRepaired reports that a [WithMultilevel] call repaired
	// every pre-existing hierarchy level from the graph's edit journal —
	// the warm path — instead of recoarsening any of them from scratch.
	HierarchyRepaired bool
	// SpectralInit reports that the coarsest level was partitioned by the
	// spectral solve (degenerate incoming assignment) rather than the
	// weighted balance LP.
	SpectralInit bool
	// CoarseMoved is the level-0 vertex weight moved by the coarsest
	// solve, and VCycleRefined counts the greedy refinement moves applied
	// across all uncoarsening levels (both zero without [WithMultilevel];
	// BalanceMoved/RefineMoved count the fine polish separately).
	CoarseMoved   int
	VCycleRefined int
	// CutIncremental counts cutset evaluations during this call served
	// incrementally from the maintained partition-boundary set (cost
	// proportional to the boundary, bit-identical to the full rescan)
	// instead of scanning every arc. It covers the CutBefore/CutAfter
	// reports and every refinement round's cut poll; it is zero under
	// [WithFullRefresh].
	CutIncremental int
}

// Clone returns a deep copy of the Stats, detached from any engine
// arena: unlike the value an [Engine] returns — which is overwritten by
// the engine's next call — a clone stays valid forever. Sessions that
// archive per-call statistics clone each result before the next call.
func (s *Stats) Clone() *Stats {
	c := *s
	c.EpsilonUsed = append([]float64(nil), s.EpsilonUsed...)
	c.StagePivots = append([]int(nil), s.StagePivots...)
	c.RoundPivots = append([]int(nil), s.RoundPivots...)
	c.WorkerBusy = append([]time.Duration(nil), s.WorkerBusy...)
	c.Levels = append([]LevelStats(nil), s.Levels...)
	c.CutBefore.PerPart = append([]float64(nil), s.CutBefore.PerPart...)
	c.CutAfter.PerPart = append([]float64(nil), s.CutAfter.PerPart...)
	return &c
}

// convertStatsInto fills dst from the engine's internal stats, reusing
// dst's EpsilonUsed capacity so steady-state conversion through a warm
// [Engine] allocates nothing.
func convertStatsInto(dst *Stats, st *core.Stats) {
	eps := dst.EpsilonUsed[:0]
	pivots := dst.StagePivots[:0]
	for _, sg := range st.Stages {
		eps = append(eps, sg.Epsilon)
		pivots = append(pivots, sg.LPPivots)
	}
	rounds := dst.RoundPivots[:0]
	if st.Refine != nil {
		rounds = append(rounds, st.Refine.RoundPivots...)
	}
	busy := append(dst.WorkerBusy[:0], st.WorkerBusy...)
	levels := append(dst.Levels[:0], st.Levels...)
	*dst = Stats{
		NewAssigned:       st.NewAssigned,
		Stages:            len(st.Stages),
		EpsilonUsed:       eps,
		StagePivots:       pivots,
		RoundPivots:       rounds,
		BalanceMoved:      st.BalanceMoved,
		LPIterations:      st.LPIterations,
		Parallelism:       st.Parallelism,
		WorkerBusy:        busy,
		LPParallel:        st.LPParallel,
		MWUFallbacks:      st.MWUFallbacks,
		CSRPatched:        st.CSRPatched,
		CutIncremental:    st.CutIncremental,
		CutBefore:         st.CutBefore,
		CutAfter:          st.CutAfter,
		Levels:            levels,
		HierarchyRepaired: st.HierarchyRepaired,
		SpectralInit:      st.SpectralInit,
		CoarseMoved:       st.CoarseMoved,
		VCycleRefined:     st.VCycleRefined,
		PhaseTimings: PhaseTimings{
			Assign:    st.AssignTime,
			Coarsen:   st.CoarsenTime,
			Uncoarsen: st.UncoarsenTime,
			Layer:     st.LayerTime,
			Balance:   st.BalanceTime,
			Refine:    st.RefineTime,
		},
		Elapsed: st.Elapsed,
	}
	dst.LPVars, dst.LPCons = st.MaxLPSize()
	if st.Refine != nil {
		dst.RefineMoved = st.Refine.Moved
		dst.RefineRounds = st.Refine.Rounds
	}
}
