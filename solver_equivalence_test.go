package igp

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/lp"
	"repro/internal/partition"
)

// approxCutBound is the two-sided cut-quality window an approximate
// solver's end-to-end result must stay inside, relative to the exact
// reference: observed mwu deviations on the equivalence configs are
// ≤ 2% in either direction (158 vs 155 at P=4 seed=7, 217 vs 220 at
// P=5 seed=6 — approximate LPs can land on *better* cuts than the
// unique-optimum reference path), so 15% leaves slack without letting a
// quality regression hide.
const approxCutBound = 1.15

// approximateSolver reports whether the named registered solver only
// promises bounded suboptimality (the mwu family) rather than exact
// optima.
func approximateSolver(t *testing.T, name string) bool {
	t.Helper()
	s, err := lp.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	_, ok := s.(lp.ApproximateSolver)
	return ok
}

// equivalenceConfigs are seeded workloads on which the balance and
// refinement LPs have unique optima, so every correct solver must
// produce bit-identical end-to-end results. (At larger P the flow LPs
// develop alternate optima and different — equally optimal — solvers
// may legitimately move different vertices; those configurations are
// covered by the invariant test below instead.) The list was verified
// against all four built-ins and is deterministic: mesh generation
// (whose cavity construction once leaked map iteration order — see
// mesh.TestGenerationDeterministicInSeed), RSB and every solver are
// seed-stable.
var equivalenceConfigs = []struct {
	p    int
	seed int64
}{
	{3, 1}, {3, 2}, {3, 3},
	{4, 1}, {4, 3}, {4, 7},
	{5, 6},
	{6, 6},
}

// TestSolverEquivalenceEndToEnd runs the full four-phase pipeline under
// every registered solver on seeded meshes and asserts identical
// assignments and cuts — the engine-level counterpart of the lp-level
// agreement fuzz, locking in that a solver swap (including the
// warm-started "dual-warm") cannot change pipeline results where the
// LP solutions are unique.
func TestSolverEquivalenceEndToEnd(t *testing.T) {
	for _, cfg := range equivalenceConfigs {
		seq, err := PaperMeshA(cfg.seed)
		if err != nil {
			t.Fatal(err)
		}
		base, err := PartitionRSB(seq.Base, cfg.p, cfg.seed)
		if err != nil {
			t.Fatal(err)
		}
		g := seq.Steps[0].Graph
		var refName string
		var refPart []int32
		var refCut CutStats
		for _, name := range SolverNames() {
			a := base.Clone()
			if _, err := Repartition(context.Background(), g, a,
				WithRefine(), WithSolver(name)); err != nil {
				t.Fatalf("P=%d seed=%d %s: %v", cfg.p, cfg.seed, name, err)
			}
			cut := Cut(g, a)
			if approximateSolver(t, name) {
				// Approximate solvers may legitimately settle on a
				// different (near-optimal) LP solution, so bit-identity is
				// the wrong contract. They still owe a valid assignment,
				// *exact* balance (feasibility is never approximated) and
				// a cut within approxCutBound of the exact reference.
				if refPart == nil {
					t.Fatalf("P=%d seed=%d: approximate solver %s has no exact reference",
						cfg.p, cfg.seed, name)
				}
				if err := a.Validate(g); err != nil {
					t.Errorf("P=%d seed=%d %s: %v", cfg.p, cfg.seed, name, err)
				}
				targets := partition.Targets(g.NumVertices(), a.P)
				for j, size := range a.Sizes(g) {
					if size != targets[j] {
						t.Errorf("P=%d seed=%d %s: partition %d has %d vertices, want %d",
							cfg.p, cfg.seed, name, j, size, targets[j])
					}
				}
				if cut.TotalWeight > approxCutBound*refCut.TotalWeight ||
					cut.TotalWeight < refCut.TotalWeight/approxCutBound {
					t.Errorf("P=%d seed=%d: %s cut %g outside %gx of %s cut %g",
						cfg.p, cfg.seed, name, cut.TotalWeight, approxCutBound,
						refName, refCut.TotalWeight)
				}
				continue
			}
			if refPart == nil {
				refName, refPart, refCut = name, append([]int32(nil), a.Part...), cut
				continue
			}
			if !reflect.DeepEqual(cut, refCut) {
				t.Errorf("P=%d seed=%d: %s cut %+v != %s cut %+v",
					cfg.p, cfg.seed, name, cut, refName, refCut)
			}
			if !reflect.DeepEqual(refPart, a.Part) {
				t.Errorf("P=%d seed=%d: %s assignment diverges from %s",
					cfg.p, cfg.seed, name, refName)
			}
		}
	}
}

// TestSolverEquivalenceInvariants covers the configurations where
// alternate LP optima allow solvers to move different vertices: every
// registered solver must still deliver the same *contract* — exact
// balance, a refined cut no worse than the pre-balance cut, and a valid
// assignment — on the paper's P=32 workload.
func TestSolverEquivalenceInvariants(t *testing.T) {
	for _, seed := range []int64{1994, 7, 42} {
		seq, err := PaperMeshA(seed)
		if err != nil {
			t.Fatal(err)
		}
		base, err := PartitionRSB(seq.Base, 32, seed)
		if err != nil {
			t.Fatal(err)
		}
		g := seq.Steps[0].Graph
		for _, name := range SolverNames() {
			a := base.Clone()
			st, err := Repartition(context.Background(), g, a,
				WithRefine(), WithSolver(name))
			if err != nil {
				t.Fatalf("seed=%d %s: %v", seed, name, err)
			}
			if err := a.Validate(g); err != nil {
				t.Fatalf("seed=%d %s: %v", seed, name, err)
			}
			targets := partition.Targets(g.NumVertices(), a.P)
			for j, size := range a.Sizes(g) {
				if size != targets[j] {
					t.Fatalf("seed=%d %s: partition %d has %d vertices, want %d",
						seed, name, j, size, targets[j])
				}
			}
			if st.CutAfter.TotalWeight > st.CutBefore.TotalWeight {
				t.Fatalf("seed=%d %s: refinement worsened the cut: %g > %g",
					seed, name, st.CutAfter.TotalWeight, st.CutBefore.TotalWeight)
			}
		}
	}
}

// TestSolverEquivalenceAcrossProcs locks the worker-count half of the
// determinism contract at the pipeline level: for every registered
// solver, the end-to-end result under WithParallelism(n) must be
// bit-identical to the sequential run — including the LP phases, whose
// simplex kernels now shard over the same worker group. P=32 is the
// paper workload with alternate LP optima; identical results across
// procs (same solver) are still required, because sharding may never
// change which optimum a given solver finds.
func TestSolverEquivalenceAcrossProcs(t *testing.T) {
	for _, seed := range []int64{1994, 7} {
		seq, err := PaperMeshA(seed)
		if err != nil {
			t.Fatal(err)
		}
		base, err := PartitionRSB(seq.Base, 32, seed)
		if err != nil {
			t.Fatal(err)
		}
		g := seq.Steps[0].Graph
		for _, name := range SolverNames() {
			aSeq := base.Clone()
			if _, err := Repartition(context.Background(), g, aSeq,
				WithRefine(), WithSolver(name), WithParallelism(1)); err != nil {
				t.Fatalf("seed=%d %s procs=1: %v", seed, name, err)
			}
			cutSeq := Cut(g, aSeq)
			for _, procs := range []int{2, 3, 8} {
				a := base.Clone()
				if _, err := Repartition(context.Background(), g, a,
					WithRefine(), WithSolver(name), WithParallelism(procs)); err != nil {
					t.Fatalf("seed=%d %s procs=%d: %v", seed, name, procs, err)
				}
				if !reflect.DeepEqual(aSeq.Part, a.Part) {
					t.Errorf("seed=%d %s: procs=%d assignment diverges from sequential",
						seed, name, procs)
				}
				if cut := Cut(g, a); !reflect.DeepEqual(cut, cutSeq) {
					t.Errorf("seed=%d %s: procs=%d cut %+v != sequential %+v",
						seed, name, procs, cut, cutSeq)
				}
			}
		}
	}
}

// TestDualWarmEnginePersistenceIsPerformanceOnly: a long-lived engine
// with the warm-started solver (bases persisting across Repartition
// calls) must produce exactly the assignments of one-shot calls (fresh
// engine, fresh basis cache, every call) over a whole perturbation
// sequence — warm-start resumption across calls is purely a
// performance property.
func TestDualWarmEnginePersistenceIsPerformanceOnly(t *testing.T) {
	for _, seed := range []int64{1994, 7, 42} {
		seq, err := PaperMeshA(seed)
		if err != nil {
			t.Fatal(err)
		}
		base, err := PartitionRSB(seq.Base, 8, seed)
		if err != nil {
			t.Fatal(err)
		}
		g := seq.Steps[0].Graph
		aWarm := base.Clone()
		aCold := base.Clone()
		eng, err := NewEngine(g, WithRefine(), WithSolver("dual-warm"))
		if err != nil {
			t.Fatal(err)
		}
		for call := 0; call < 5; call++ {
			perturbAssignment(aWarm, 25)
			perturbAssignment(aCold, 25)
			_, errW := eng.Repartition(context.Background(), aWarm)
			_, errC := Repartition(context.Background(), g, aCold,
				WithRefine(), WithSolver("dual-warm"))
			if (errW == nil) != (errC == nil) {
				t.Fatalf("seed=%d call %d: error mismatch: %v vs %v", seed, call, errW, errC)
			}
			if errW != nil {
				t.Skipf("seed=%d call %d: infeasible on this sequence: %v", seed, call, errW)
			}
			if !reflect.DeepEqual(aWarm.Part, aCold.Part) {
				t.Fatalf("seed=%d call %d: persistent warm engine diverges from one-shot", seed, call)
			}
		}
	}
}

// TestDualWarmPivotRegressionGuard is the engine-level pivot guard: on
// a static mesh, repeatedly perturbing the assignment the same way and
// repartitioning through one warm engine must make later balance-stage
// solves strictly cheaper than the first (cold) one, and cut the
// call-total LP iteration count — the warm-start latency win the
// BENCH trajectory records.
func TestDualWarmPivotRegressionGuard(t *testing.T) {
	seq, err := PaperMeshA(1994)
	if err != nil {
		t.Fatal(err)
	}
	base, err := PartitionRSB(seq.Base, 8, 1994)
	if err != nil {
		t.Fatal(err)
	}
	g := seq.Steps[0].Graph
	a := base.Clone()
	eng, err := NewEngine(g, WithRefine(), WithSolver("dual-warm"))
	if err != nil {
		t.Fatal(err)
	}
	var firstStage, firstTotal int
	for call := 0; call < 5; call++ {
		perturbAssignment(a, 25)
		st, err := eng.Repartition(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.StagePivots) == 0 {
			t.Fatal("no balance stage ran; the perturbation is too small")
		}
		if call == 0 {
			firstStage, firstTotal = st.StagePivots[0], st.LPIterations
			if firstStage == 0 {
				t.Fatal("cold stage-1 solve took 0 pivots; guard would be vacuous")
			}
			continue
		}
		if st.StagePivots[0] >= firstStage {
			t.Fatalf("call %d: warm balance stage took %d pivots, cold stage-1 took %d — warm must be strictly cheaper",
				call, st.StagePivots[0], firstStage)
		}
		if call == 4 && st.LPIterations >= firstTotal {
			t.Fatalf("call %d: warm call total %d LP iterations, cold first call %d",
				call, st.LPIterations, firstTotal)
		}
	}
}

// perturbAssignment deterministically unbalances a: the first n
// vertices currently in partition 0 move to partition 1.
func perturbAssignment(a *Assignment, n int) {
	moved := 0
	for v := range a.Part {
		if a.Part[v] == 0 && moved < n {
			a.Part[v] = 1
			moved++
		}
	}
}
