package igp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lp"
	"repro/internal/parallel"
	"repro/internal/refine"
)

// Event is one stage-level observation streamed to a [WithObserver]
// callback during Repartition: phase start/end spans with wall-clock,
// the ε and vertex count of every balance stage, and each applied
// refinement round. Events arrive in pipeline order on the calling
// goroutine; see the Kind/Phase fields for the exact contract.
type Event = engine.Event

// EventKind distinguishes observer events.
type EventKind = engine.EventKind

// Phase names one of the pipeline's four phases.
type Phase = engine.Phase

// The observer event kinds.
const (
	EventStart = engine.EventStart
	EventEnd   = engine.EventEnd
	EventRound = engine.EventRound
)

// The pipeline phases reported in events and PhaseTimings. PhaseCoarsen
// and PhaseUncoarsen appear only under [WithMultilevel].
const (
	PhaseAssign    = engine.PhaseAssign
	PhaseLayer     = engine.PhaseLayer
	PhaseBalance   = engine.PhaseBalance
	PhaseRefine    = engine.PhaseRefine
	PhaseCoarsen   = engine.PhaseCoarsen
	PhaseUncoarsen = engine.PhaseUncoarsen
)

// config is the validated product of applying functional options.
type config struct {
	solver       Solver
	refine       bool
	epsilonMax   float64
	maxStages    int
	refineRounds int
	tolerance    int
	batches      int
	parallelism  int
	accuracy     float64
	fullRefresh  bool
	observer     func(Event)
	multilevel   engine.MultilevelOptions
}

// An Option configures an [Engine] (or a one-shot [Repartition] call).
// Options are validated eagerly: a misconfiguration — an unknown solver
// name, a non-positive stage cap, batches < 1 — is reported by NewEngine
// or Repartition before any work starts, never mid-run.
type Option func(*config) error

// buildConfig applies opts over the defaults, failing on the first
// invalid option.
func buildConfig(opts []Option) (*config, error) {
	cfg := &config{batches: 1}
	for _, o := range opts {
		if o == nil {
			return nil, fmt.Errorf("igp: nil Option")
		}
		if err := o(cfg); err != nil {
			return nil, err
		}
	}
	if cfg.solver == nil {
		s, err := lp.Lookup("")
		if err != nil {
			return nil, err
		}
		cfg.solver = s
	}
	return cfg, nil
}

// WithRefine enables the cut-refinement phase (the paper's IGPR).
func WithRefine() Option {
	return func(c *config) error {
		c.refine = true
		return nil
	}
}

// WithRefineRounds enables refinement and caps its LP rounds at n ≥ 1
// (the default is 8).
func WithRefineRounds(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("igp: WithRefineRounds(%d): rounds must be ≥ 1", n)
		}
		c.refine = true
		c.refineRounds = n
		return nil
	}
}

// WithSolver selects the LP solver by registry name: "bounded" (the
// default), "dense", "revised", "dual-warm", "mwu", or anything added
// via [RegisterSolver]. Unknown names fail at NewEngine/Repartition
// time.
//
// "dual-warm" is the warm-started dual simplex: it retains the optimal
// basis of each LP structure it solves and resumes from it when a later
// balance stage or refinement round differs only in RHS and bounds,
// cutting Stats.LPIterations on repeated stages well below the cold
// solvers. Basis lifetime is the engine session: [NewEngine] forks a
// private solver instance whose cache dies with the engine (a one-shot
// [Repartition] therefore warms only across the stages within that one
// call). A retained basis is keyed and verified by exact LP structure,
// so graph edits between calls are safe — a changed pair structure
// simply misses the cache and solves cold.
func WithSolver(name string) Option {
	return func(c *config) error {
		s, err := lp.Lookup(name)
		if err != nil {
			return fmt.Errorf("igp: WithSolver: %w", err)
		}
		c.solver = s
		return nil
	}
}

// WithAccuracy sets the target accuracy eps > 0 for approximate LP
// solvers: an Optimal objective is guaranteed within a (1+eps) factor of
// the true optimum. It configures the "mwu" multiplicative-weight solver
// (see [WithSolver]); the exact simplex solvers ignore it. The default —
// also used when WithAccuracy is not given — is 0.05. Looser targets
// close the solver's quality bracket in fewer iterations; tighter ones
// push more solves onto the exact fallback path (counted by
// [Stats.MWUFallbacks]).
func WithAccuracy(eps float64) Option {
	return func(c *config) error {
		if eps <= 0 {
			return fmt.Errorf("igp: WithAccuracy(%g): accuracy target must be > 0", eps)
		}
		c.accuracy = eps
		return nil
	}
}

// WithTolerance allows partition sizes to deviate from their ideal
// targets by up to n ≥ 0 vertices (default 0 = the paper's exact
// balance). Positive values trade residual imbalance for less movement.
func WithTolerance(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("igp: WithTolerance(%d): tolerance must be ≥ 0", n)
		}
		c.tolerance = n
		return nil
	}
}

// WithEpsilonMax bounds the balance relaxation factor ε at c ≥ 1 (the
// paper's upper bound C; default 8).
func WithEpsilonMax(eps float64) Option {
	return func(c *config) error {
		if eps < 1 {
			return fmt.Errorf("igp: WithEpsilonMax(%g): bound must be ≥ 1", eps)
		}
		c.epsilonMax = eps
		return nil
	}
}

// WithMaxStages caps multi-stage balancing at n ≥ 1 stages (default 16).
func WithMaxStages(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("igp: WithMaxStages(%d): stage cap must be ≥ 1", n)
		}
		c.maxStages = n
		return nil
	}
}

// WithBatches reveals the new vertices in k ≥ 1 groups (ordered by
// distance from the old region) and repartitions after each — the
// paper's §2.3 fallback for incremental changes too severe for a single
// correction. k = 1 (the default) is the ordinary single pass.
func WithBatches(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("igp: WithBatches(%d): batches must be ≥ 1", k)
		}
		c.batches = k
		return nil
	}
}

// WithParallelism sets the worker count n ≥ 1 for the engine's sharded
// multi-core kernels — the incremental boundary recompute, the layering
// BFS level expansion, the refinement gain scan, the sorted cut report,
// the orphan-cluster flood, and the LP simplex kernels (column-sharded
// pricing, ratio test and tableau update inside the balance and refine
// solves). The default is runtime.GOMAXPROCS(0); n = 1 selects the
// exact sequential code path.
//
// Parallelism is purely a latency property: results are bit-identical
// to the sequential engine's for every worker count (work is sharded
// deterministically and per-worker results merge in shard order, or by
// a total order for the simplex argmin candidates — fuzz-verified).
// Per-worker busy time is reported in [Stats.WorkerBusy], and
// [Stats.LPParallel] counts the LP solves that actually forked.
func WithParallelism(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("igp: WithParallelism(%d): workers must be ≥ 1", n)
		}
		c.parallelism = n
		return nil
	}
}

// WithFullRefresh disables every delta shortcut in the engine's
// derived-state pipeline: CSR snapshots are fully rebuilt instead of
// patched from the graph's edit journal, the partition-boundary set is
// rebuilt from scratch on every sync, cutset statistics come from a full
// arc rescan, and phase 1 runs the one-shot flood-fill assignment
// instead of the touched-set-seeded form. Results are bit-identical
// either way — the incremental paths are fuzz-verified against these
// full recomputations — so the option exists as an escape hatch and a
// divergence-debugging lever, at the cost of making every call pay
// O(n+m) regardless of how little changed. [Stats.CSRPatched] and
// [Stats.CutIncremental] report zero under it.
func WithFullRefresh() Option {
	return func(c *config) error {
		c.fullRefresh = true
		return nil
	}
}

// WithObserver streams stage-level [Event]s to fn during Repartition —
// phase spans, per-stage ε and movement, refinement rounds — for live
// dashboards and tracing. fn runs synchronously on the repartitioning
// goroutine and must not be nil.
func WithObserver(fn func(Event)) Option {
	return func(c *config) error {
		if fn == nil {
			return fmt.Errorf("igp: WithObserver(nil): observer must not be nil")
		}
		c.observer = fn
		return nil
	}
}

// WithMultilevel enables the multilevel V-cycle: instead of balancing
// the full graph directly, the pipeline coarsens it by repeated
// same-partition heavy-edge matching to a small core, partitions that
// core (weighted balance LP, or a spectral bisection when the incoming
// assignment is degenerate), and projects the decision back down with
// greedy refinement at every level — the fine stage loop then acts as an
// exact-balance polish on an already-good configuration. On
// paper-scale meshes (10⁵–10⁶ vertices) this turns a minutes-long cold
// partition into seconds while staying within a small factor of the flat
// pipeline's cut.
//
// Inside an [Engine] the coarse hierarchy is part of the session: a warm
// Repartition after a small edit batch repairs it from the graph's edit
// journal — only the clusters whose members were touched dissolve and
// re-match — instead of recoarsening from scratch
// ([Stats.HierarchyRepaired] reports which path ran). The V-cycle is a
// sequential kernel: results are bit-identical at every
// [WithParallelism] value for a fixed [CoarsenSeed].
//
// Sub-options ([CoarsenTo], [CoarsenLevels], [CoarsenSeed]) tune the
// hierarchy; WithMultilevel() alone picks sensible defaults.
func WithMultilevel(opts ...MultilevelOption) Option {
	return func(c *config) error {
		c.multilevel.Enabled = true
		for _, o := range opts {
			if o == nil {
				return fmt.Errorf("igp: WithMultilevel: nil sub-option")
			}
			if err := o(&c.multilevel); err != nil {
				return err
			}
		}
		return nil
	}
}

// A MultilevelOption tunes [WithMultilevel].
type MultilevelOption func(*engine.MultilevelOptions) error

// CoarsenTo stops coarsening once a level has at most n ≥ 2 live
// vertices (the default is max(64, 16·P), clamped to at least 2·P).
// Smaller cores make the coarsest solve cheaper but lean harder on
// per-level refinement.
func CoarsenTo(n int) MultilevelOption {
	return func(o *engine.MultilevelOptions) error {
		if n < 2 {
			return fmt.Errorf("igp: CoarsenTo(%d): core size must be ≥ 2", n)
		}
		o.CoarsenTo = n
		return nil
	}
}

// CoarsenLevels caps the hierarchy depth at n ≥ 1 levels (default 32;
// coarsening also stops when it stalls or reaches [CoarsenTo]).
func CoarsenLevels(n int) MultilevelOption {
	return func(o *engine.MultilevelOptions) error {
		if n < 1 {
			return fmt.Errorf("igp: CoarsenLevels(%d): depth cap must be ≥ 1", n)
		}
		o.MaxLevels = n
		return nil
	}
}

// CoarsenSeed fixes the seed of the spectral coarsest-level solve used
// when the incoming assignment is degenerate (0 keeps the package
// default). A fixed seed plus a fixed edit history yields bit-identical
// assignments at every worker count.
func CoarsenSeed(seed int64) MultilevelOption {
	return func(o *engine.MultilevelOptions) error {
		o.Seed = seed
		return nil
	}
}

// WithOptions merges a legacy [Options] struct into the functional-option
// world, with the legacy defaulting rules (zero values mean defaults,
// non-positive caps fall back rather than erroring). New code should use
// the individual With* options, which validate eagerly.
func WithOptions(opt Options) Option {
	return func(c *config) error {
		s, err := lp.Lookup(string(opt.Solver))
		if err != nil {
			return fmt.Errorf("igp: %w", err)
		}
		c.solver = s
		c.refine = opt.Refine
		c.epsilonMax = opt.EpsilonMax
		c.maxStages = opt.MaxStages
		c.refineRounds = opt.RefineRounds
		c.tolerance = opt.Tolerance
		return nil
	}
}

// coreOptions assembles the internal engine configuration.
func (c *config) coreOptions() core.Options {
	return core.Options{
		Solver:      c.solver,
		EpsilonMax:  c.epsilonMax,
		MaxStages:   c.maxStages,
		Tolerance:   c.tolerance,
		Refine:      c.refine,
		Parallelism: c.parallelism,
		Accuracy:    c.accuracy,
		FullRefresh: c.fullRefresh,
		Multilevel:  c.multilevel,
		RefineOptions: refine.Options{
			MaxRounds: c.refineRounds,
			Solver:    c.solver,
		},
		Observer: c.observer,
	}
}

// parallelOptions assembles the SPMD simulator configuration.
func (c *config) parallelOptions() parallel.Options {
	return parallel.Options{
		EpsilonMax:   c.epsilonMax,
		MaxStages:    c.maxStages,
		Refine:       c.refine,
		RefineRounds: c.refineRounds,
	}
}

// SolverName selects a simplex implementation in the legacy [Options]
// struct. See [WithSolver] for the functional form.
type SolverName string

// Available built-in simplex implementations.
const (
	SolverDense   SolverName = "dense"   // the paper's dense tableau
	SolverBounded SolverName = "bounded" // implicit variable bounds (default)
	SolverRevised SolverName = "revised" // sparse revised simplex
)

// Options is the legacy flat configuration struct.
//
// Deprecated: Use functional options ([WithRefine], [WithSolver],
// [WithTolerance], …) with [Repartition] or [NewEngine]; bridge existing
// structs with [WithOptions].
type Options struct {
	// Refine enables the cut-refinement phase (the paper's IGPR).
	Refine bool
	// Solver picks the simplex implementation (default bounded).
	Solver SolverName
	// EpsilonMax bounds the balance relaxation factor ε (default 8).
	EpsilonMax float64
	// MaxStages caps multi-stage balancing (default 16).
	MaxStages int
	// RefineRounds caps refinement LP rounds (default 8).
	RefineRounds int
	// Tolerance allows partition sizes to deviate from their ideal targets
	// by up to this many vertices (default 0 = the paper's exact balance).
	// Positive values trade residual imbalance for less vertex movement.
	Tolerance int
}
