package igp

import (
	"context"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/parallel"
)

// ErrNeedRepartition is returned when incremental balancing cannot
// succeed (the paper's advice: repartition from scratch, or add the new
// vertices in batches — see WithBatches).
var ErrNeedRepartition = core.ErrNeedRepartition

// ErrEngineClosed is returned by an [Engine] whose session was ended by
// [Engine.Close]. A closed engine never becomes usable again; create a
// new one with [NewEngine].
var ErrEngineClosed = engine.ErrClosed

// Repartition incrementally updates assignment a to cover graph g:
// vertices beyond a's coverage (or explicitly Unassigned) are treated as
// new. On success the partition sizes are balanced within the configured
// tolerance and a is updated in place.
//
// The context bounds the whole pipeline, including the simplex inner
// loops: when it is canceled or its deadline expires, Repartition
// returns an error matching [ErrCanceled] (and, via the wrapped
// context.Cause, context.Canceled or context.DeadlineExceeded). An
// aborted call never leaves a mid-move: a stays a valid assignment,
// though its sizes may still be unbalanced.
//
// This is the one-shot form — derived state is rebuilt on every call.
// Applications that repartition the same graph repeatedly should hold an
// [Engine].
func Repartition(ctx context.Context, g *Graph, a *Assignment, opts ...Option) (*Stats, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	st, err := runCore(ctx, g, a, cfg)
	if err != nil {
		return nil, err
	}
	out := &Stats{}
	convertStatsInto(out, st)
	return out, nil
}

// runCore dispatches to the single-pass or batched pipeline.
func runCore(ctx context.Context, g *Graph, a *Assignment, cfg *config) (*core.Stats, error) {
	if cfg.batches > 1 {
		return core.RepartitionInBatches(ctx, g, a, cfg.coreOptions(), cfg.batches)
	}
	return core.Repartition(ctx, g, a, cfg.coreOptions())
}

// Engine is a long-lived repartitioning session bound to one graph.
// Unlike the one-shot [Repartition] function — which rebuilds its derived
// state on every call — an Engine keeps a flat CSR snapshot of the graph
// (patched row-by-row from the graph's edit journal when it has been
// edited, not rebuilt), maintains the partition-boundary set, the
// per-partition sizes and the cutset statistics incrementally from that
// journal plus an assignment diff, seeds phase 1 from the touched set so
// an unchanged region is never traversed, and reuses all phase scratch
// memory — so a warm Repartition after a small edit costs work
// proportional to the changed region and performs near-zero heap
// allocation. [WithFullRefresh] disables the delta shortcuts
// (bit-identical results, full-recomputation cost).
//
// Typical use mirrors an adaptive-mesh application's loop:
//
//	eng, _ := igp.NewEngine(g, igp.WithRefine())
//	for {
//		// ... the application edits g ...
//		stats, err := eng.Repartition(ctx, a)
//	}
//
// An Engine is not safe for concurrent use.
type Engine struct {
	eng   *engine.Engine
	cfg   *config
	stats Stats // reused result arena; see Repartition
}

// NewEngine returns an engine bound to g, validating every option
// eagerly: unknown solver names, non-positive stage caps, batches < 1
// and nil observers are constructor errors, never mid-run surprises.
// The first Repartition call pays a full snapshot build; subsequent
// calls are incremental.
func NewEngine(g *Graph, opts ...Option) (*Engine, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: engine.New(g, cfg.coreOptions()), cfg: cfg}, nil
}

// Repartition incrementally updates assignment a to cover the engine's
// graph, exactly like the package-level [Repartition] but reusing the
// engine's snapshots and scratch arenas. The context is honored
// throughout (see Repartition); an abort leaves a valid assignment.
//
// The returned *Stats is an arena owned by the engine: it is
// overwritten by the next Repartition call. Use [Stats.Clone] to retain
// one across calls (a shallow copy is not enough — the slice-backed
// fields point into the arena too).
func (e *Engine) Repartition(ctx context.Context, a *Assignment) (*Stats, error) {
	var (
		st  *core.Stats
		err error
	)
	if e.eng.Closed() {
		return nil, ErrEngineClosed
	}
	if e.cfg.batches > 1 {
		// Batched reveal re-runs the pipeline over growing subgraphs, which
		// needs per-batch throwaway engines: a WithBatches(k>1) session
		// trades the engine's steady-state snapshot/arena reuse for bounded
		// per-batch movement, and its Elapsed/PhaseTimings sum the batches'
		// pipeline time (subgraph construction between batches is extra).
		// The session engine is reused again on the next single-pass call.
		st, err = core.RepartitionInBatches(ctx, e.eng.Graph(), a, e.cfg.coreOptions(), e.cfg.batches)
	} else {
		st, err = e.eng.Repartition(ctx, a)
	}
	if err != nil {
		return nil, err
	}
	convertStatsInto(&e.stats, st)
	return &e.stats, nil
}

// Graph returns the graph the engine is bound to (also after Close).
func (e *Engine) Graph() *Graph { return e.eng.Graph() }

// Close ends the engine session: every snapshot, scratch arena and
// sessionized LP solver (with its retained warm-start bases) the engine
// owns is released, so a pool multiplexing many engines can evict an
// idle one and reclaim its memory deterministically. Close is
// idempotent and always returns nil; the graph is caller-owned and is
// not touched.
//
// Invalidation hazard: the *Stats returned by Repartition is an arena
// owned by the engine, and Close releases it — [Stats.Clone] anything
// that must outlive the session before closing. After Close,
// Repartition fails with an error matching [ErrEngineClosed].
func (e *Engine) Close() error { return e.eng.Close() }

// ParallelResult reports a simulated distributed run.
type ParallelResult struct {
	// SimTime is the simulated makespan on the CM-5-calibrated machine.
	SimTime time.Duration
	// Messages and Bytes count point-to-point traffic.
	Messages, Bytes int64
	// Stages is the number of balancing stages used.
	Stages int
}

// SimulateParallelRepartition runs the SPMD message-passing implementation
// of the repartitioner on a simulated CM-5-like machine with the given
// number of ranks, updating a in place (the parallel and sequential
// results are equally balanced; tie-breaking may differ). The context is
// polled SPMD-consistently by every rank, including inside the
// column-distributed simplex. The returned SimTime is the simulated
// parallel makespan — run with ranks=1 to obtain the simulated sequential
// time and divide for speedup.
func SimulateParallelRepartition(ctx context.Context, g *Graph, a *Assignment, ranks int, opts ...Option) (*ParallelResult, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	w, err := comm.NewWorld(ranks, comm.CM5())
	if err != nil {
		return nil, err
	}
	res, err := parallel.Repartition(ctx, w, g, a, cfg.parallelOptions())
	if err != nil {
		return nil, err
	}
	return &ParallelResult{
		SimTime:  res.SimTime,
		Messages: res.Messages,
		Bytes:    res.Bytes,
		Stages:   res.Stages,
	}, nil
}
