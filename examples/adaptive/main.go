// Adaptive simulates the paper's motivating application: an adaptive
// mesh whose refinement region drifts across the domain over many
// epochs. Each epoch adds vertices in the hotspot; the incremental
// partitioner repairs the decomposition. The run reports, per epoch, the
// imbalance a static partition would have suffered versus the repaired
// partition's imbalance, cut and cost.
package main

import (
	"context"
	"fmt"
	"log"

	igp "repro"
)

func main() {
	const (
		baseN  = 1200
		epochs = 8
		grow   = 45
		parts  = 16
	)
	growth := make([]int, epochs)
	for i := range growth {
		growth[i] = grow
	}
	seq, err := igp.GenerateMeshSequence(baseN, growth, 7)
	if err != nil {
		log.Fatal(err)
	}
	a, err := igp.PartitionRSB(seq.Base, parts, 7)
	if err != nil {
		log.Fatal(err)
	}
	static := a.Clone() // never repartitioned: the "do nothing" strawman

	fmt.Printf("adaptive mesh, %d epochs × %d new vertices, P=%d\n\n", epochs, grow, parts)
	fmt.Printf("%5s %7s %9s %9s %7s %7s %8s %9s\n",
		"epoch", "|V|", "imb-stat", "imb-igp", "cut", "moved", "stages", "time")
	ctx := context.Background()
	for i, step := range seq.Steps {
		g := step.Graph
		st, err := igp.Repartition(ctx, g, a, igp.WithRefine())
		if err != nil {
			log.Fatal(err)
		}
		// The static partition inherits new vertices by nearest assignment
		// only (no balancing): measure its drift.
		stImb := igp.Imbalance(g, staticAssign(g, static))
		cut := igp.Cut(g, a)
		fmt.Printf("%5d %7d %9.3f %9.3f %7d %7d %8d %9v\n",
			i+1, g.NumVertices(), stImb, igp.Imbalance(g, a),
			cut.Total, st.BalanceMoved+st.RefineMoved, st.Stages, st.Elapsed.Round(100_000))
	}
	fmt.Println("\nimb-stat: imbalance if the initial partition were kept (new vertices")
	fmt.Println("joining their nearest partition); imb-igp: after incremental repair.")
}

// staticAssign extends a stale assignment to cover g by nearest-partition
// assignment only, leaving the imbalance unrepaired.
func staticAssign(g *igp.Graph, stale *igp.Assignment) *igp.Assignment {
	c := stale.Clone()
	c.Grow(g.Order())
	// Nearest assignment via one balancing-free repartition pass is not
	// exposed publicly; approximate by assigning new vertices to the
	// partition of their first assigned neighbor (BFS order).
	changed := true
	for changed {
		changed = false
		for _, v := range g.Vertices() {
			if c.Part[v] >= 0 {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if c.Part[u] >= 0 {
					c.Part[v] = c.Part[u]
					changed = true
					break
				}
			}
		}
	}
	return c
}
