// Largemesh reproduces the paper's second experiment in one shot: a
// ~10k-vertex mesh receives a severe localized refinement (+672 vertices,
// all landing on a few partitions), forcing the multi-stage ε-relaxed
// balancing path (the paper's IGP(3) row in Figure 14), yet finishing far
// faster than re-running spectral bisection.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	igp "repro"
)

func main() {
	const parts = 32
	fmt.Println("generating the ~10166-vertex mesh family (paper Figure 12/13)...")
	seq, err := igp.PaperMeshB(1994)
	if err != nil {
		log.Fatal(err)
	}
	base := seq.Base
	a, err := igp.PartitionRSB(base, parts, 1994)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base: |V|=%d |E|=%d cut=%d\n\n",
		base.NumVertices(), base.NumEdges(), igp.Cut(base, a).Total)

	// The largest refinement: +672 vertices in one disk.
	big := seq.Steps[len(seq.Steps)-1]
	g := big.Graph
	fmt.Printf("refined: |V|=%d |E|=%d (+%d vertices in one region)\n",
		g.NumVertices(), g.NumEdges(), big.NewVertices)

	// A 30-second deadline guards the multi-stage path: a pathological
	// instance aborts with igp.ErrCanceled instead of spinning.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	inc := a.Clone()
	st, err := igp.Repartition(ctx, g, inc, igp.WithRefine())
	if err != nil {
		log.Fatal(err)
	}
	igpTime := st.Elapsed
	fmt.Printf("IGPR: %v, stages=%d (ε per stage %v), moved=%d, cut=%d, imbalance=%.3f\n",
		igpTime, st.Stages, st.EpsilonUsed, st.BalanceMoved+st.RefineMoved,
		igp.Cut(g, inc).Total, igp.Imbalance(g, inc))

	t0 := time.Now()
	fresh, err := igp.PartitionRSB(g, parts, 1994)
	if err != nil {
		log.Fatal(err)
	}
	rsbTime := time.Since(t0)
	fmt.Printf("RSB from scratch: %v, cut=%d\n", rsbTime, igp.Cut(g, fresh).Total)
	fmt.Printf("\nincremental repartitioning was %.0fx faster at comparable quality\n",
		float64(rsbTime)/float64(igpTime))
}
