// Quickstart: partition a mesh, grow it incrementally, repartition with
// the LP-based incremental partitioner, and compare against the paper's
// from-scratch baseline.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	igp "repro"
)

func main() {
	// 1. A fresh unstructured mesh and its initial partition (32 parts,
	//    recursive spectral bisection — exactly the paper's setup).
	g, err := igp.NewMeshGraph(1000, 42)
	if err != nil {
		log.Fatal(err)
	}
	a, err := igp.PartitionRSB(g, 32, 42)
	if err != nil {
		log.Fatal(err)
	}
	cut := igp.Cut(g, a)
	fmt.Printf("initial: |V|=%d |E|=%d cut=%d imbalance=%.3f\n",
		g.NumVertices(), g.NumEdges(), cut.Total, igp.Imbalance(g, a))

	// 2. The application adapts: 60 new vertices appear in one region
	//    (here: attached around vertex 0), unbalancing the partitions.
	frontier := []igp.Vertex{0}
	for i := 0; i < 60; i++ {
		v := g.AddVertex(1)
		if err := g.AddEdge(v, frontier[i%len(frontier)], 1); err != nil {
			log.Fatal(err)
		}
		frontier = append(frontier, v)
	}
	fmt.Printf("after growth: |V|=%d imbalance=%.3f (stale partition)\n",
		g.NumVertices(), igp.Imbalance(g, a))

	// 3. Incremental repartitioning (IGPR = balance + refinement). The
	//    context caps the repair at one second — far more than it needs,
	//    but the deadline would abort a pathological solve cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	st, err := igp.Repartition(ctx, g, a, igp.WithRefine())
	if err != nil {
		log.Fatal(err)
	}
	igpTime := st.Elapsed
	cut = igp.Cut(g, a)
	fmt.Printf("after IGPR: cut=%d imbalance=%.3f  (%d new assigned, %d stages, %d+%d moved, LP v=%d c=%d) in %v\n",
		cut.Total, igp.Imbalance(g, a),
		st.NewAssigned, st.Stages, st.BalanceMoved, st.RefineMoved, st.LPVars, st.LPCons, igpTime)
	fmt.Printf("phase breakdown: assign=%v layer=%v balance=%v refine=%v (%d LP pivots)\n",
		st.PhaseTimings.Assign, st.PhaseTimings.Layer, st.PhaseTimings.Balance,
		st.PhaseTimings.Refine, st.LPIterations)

	// 4. The baseline: re-partition from scratch with RSB.
	t0 := time.Now()
	fresh, err := igp.PartitionRSB(g, 32, 42)
	if err != nil {
		log.Fatal(err)
	}
	rsbTime := time.Since(t0)
	fmt.Printf("fresh RSB:  cut=%d imbalance=%.3f in %v (%.0fx slower than IGPR)\n",
		igp.Cut(g, fresh).Total, igp.Imbalance(g, fresh), rsbTime,
		float64(rsbTime)/float64(igpTime))
}
