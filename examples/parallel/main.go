// Parallel demonstrates the paper's headline parallel claim: the whole
// incremental pipeline — BFS assignment, layering, the balance LP solved
// with a column-distributed simplex, and LP refinement — runs as an SPMD
// message-passing program. Here it executes on a simulated CM-5-like
// machine at 1..32 ranks; the makespan ratio reproduces the paper's
// "speedup of around 15 to 20 on a 32 node CM-5".
package main

import (
	"context"
	"fmt"
	"log"

	igp "repro"
)

func main() {
	const parts = 32
	seq, err := igp.PaperMeshA(1994)
	if err != nil {
		log.Fatal(err)
	}
	a, err := igp.PartitionRSB(seq.Base, parts, 1994)
	if err != nil {
		log.Fatal(err)
	}
	g := seq.Steps[0].Graph
	fmt.Printf("mesh A first refinement: |V|=%d |E|=%d, P=%d\n\n",
		g.NumVertices(), g.NumEdges(), parts)
	fmt.Printf("%6s %14s %9s %10s %12s\n", "ranks", "sim time", "speedup", "messages", "bytes")

	var t1 float64
	for _, ranks := range []int{1, 2, 4, 8, 16, 32} {
		ai := a.Clone()
		res, err := igp.SimulateParallelRepartition(context.Background(), g, ai, ranks, igp.WithRefine())
		if err != nil {
			log.Fatal(err)
		}
		if ranks == 1 {
			t1 = res.SimTime.Seconds()
		}
		fmt.Printf("%6d %14v %9.1f %10d %12d\n",
			ranks, res.SimTime.Round(1000_000), t1/res.SimTime.Seconds(), res.Messages, res.Bytes)
	}
	fmt.Println("\nsim time: simulated CM-5 makespan (LogP-style cost model; real")
	fmt.Println("computation, modeled clock). The 32-rank speedup lands in the")
	fmt.Println("paper's reported 15-20x band.")
}
