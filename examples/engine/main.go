// Engine demonstrates the long-lived repartitioning session on its
// intended workload: one graph object edited in place across many epochs,
// with one igp.Engine bound to it for the whole run. The engine consumes
// the graph's edit journal, keeps its partition-boundary set
// incrementally, refreshes its flat snapshot only when the graph actually
// changed, and reuses its scratch arenas — so each epoch's repair does
// work proportional to the edited region instead of the whole graph.
//
// Every epoch runs under a per-call deadline, and an observer streams the
// engine's stage-level events — the instrumentation a live dashboard
// would consume.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	igp "repro"
)

func main() {
	const (
		baseN  = 1200
		epochs = 8
		grow   = 45
		parts  = 16
	)
	g, err := igp.NewMeshGraph(baseN, 7)
	if err != nil {
		log.Fatal(err)
	}
	a, err := igp.PartitionRSB(g, parts, 7)
	if err != nil {
		log.Fatal(err)
	}
	// The observer sees every stage span: print the balance stages of
	// epoch 1 as a taste of the event stream.
	epoch := 0
	eng, err := igp.NewEngine(g,
		igp.WithRefine(),
		igp.WithObserver(func(ev igp.Event) {
			if epoch == 1 && ev.Kind == igp.EventEnd && ev.Phase == igp.PhaseBalance {
				fmt.Printf("      [event] balance stage %d: ε=%g moved=%d in %v\n",
					ev.Stage, ev.Epsilon, ev.Moved, ev.Elapsed.Round(10*time.Microsecond))
			}
		}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("engine-driven adaptive growth, %d epochs × %d new vertices, P=%d\n\n", epochs, grow, parts)
	fmt.Printf("%5s %7s %9s %7s %7s %8s %9s %9s\n",
		"epoch", "|V|", "imb-igp", "cut", "moved", "stages", "balance", "time")
	rng := rand.New(rand.NewSource(7))
	for epoch = 1; epoch <= epochs; epoch++ {
		// A drifting hotspot: new vertices attach to a random existing
		// vertex and to each other, like a refinement front moving through
		// the mesh. The graph records these edits in its journal; the
		// engine resyncs incrementally inside Repartition.
		var prev igp.Vertex = -1
		for k := 0; k < grow; k++ {
			v := g.AddVertex(1)
			for {
				u := igp.Vertex(rng.Intn(g.Order()))
				if g.Alive(u) && u != v {
					if err := g.AddEdge(v, u, 1); err != nil {
						log.Fatal(err)
					}
					break
				}
			}
			if prev >= 0 && rng.Intn(2) == 0 {
				_ = g.AddEdge(v, prev, 1)
			}
			prev = v
		}
		// Each repair gets a hard real-time budget; a blown deadline would
		// surface as igp.ErrCanceled with the assignment still valid.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		st, err := eng.Repartition(ctx, a)
		cancel()
		if err != nil {
			log.Fatalf("epoch %d: %v", epoch, err)
		}
		fmt.Printf("%5d %7d %9.3f %7d %7d %8d %9s %9s\n",
			epoch, g.NumVertices(), igp.Imbalance(g, a),
			st.CutAfter.Total, st.BalanceMoved+st.RefineMoved, st.Stages,
			st.PhaseTimings.Balance.Round(100*time.Microsecond),
			st.Elapsed.Round(100*time.Microsecond))
	}
}
