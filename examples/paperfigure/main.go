// Paperfigure walks through the paper's Figures 2–9 worked example in
// miniature: a four-partition graph receives a localized burst of new
// vertices; the balance LP (Figure 5's formulation) is printed, solved,
// and applied; refinement (Figure 8) then trims the cut without
// disturbing the balance.
package main

import (
	"context"
	"fmt"
	"log"

	igp "repro"
)

func main() {
	// A 10×10 grid in four quadrant partitions — the shape of Figure 2(a).
	g := igp.NewGraphWithVertices(100)
	id := func(r, c int) igp.Vertex { return igp.Vertex(r*10 + c) }
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			if c+1 < 10 {
				must(g.AddEdge(id(r, c), id(r, c+1), 1))
			}
			if r+1 < 10 {
				must(g.AddEdge(id(r, c), id(r+1, c), 1))
			}
		}
	}
	a := &igp.Assignment{Part: make([]int32, 100), P: 4}
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			q := int32(0)
			if c >= 5 {
				q = 1
			}
			if r >= 5 {
				q += 2
			}
			a.Part[id(r, c)] = q
		}
	}
	fmt.Println("== Figure 2(a): initial partition ==")
	report(g, a)

	// Figure 2(b): a burst of 28 new vertices ("*") lands on partition 0.
	frontier := []igp.Vertex{id(0, 0), id(0, 1), id(1, 0), id(1, 1)}
	for i := 0; i < 28; i++ {
		v := g.AddVertex(1)
		must(g.AddEdge(v, frontier[i%len(frontier)], 1))
		frontier = append(frontier, v)
	}
	// Phase 1 happens inside Repartition; to display the LP first we
	// assign the new vertices to their nearest partition by hand (they all
	// touch partition 0's corner, so nearest assignment puts them in 0).
	for v := 100; v < g.Order(); v++ {
		a.Part = append(a.Part, 0)
	}
	fmt.Println("\n== Figure 2(b): after the incremental burst ==")
	report(g, a)

	// Figure 5: the load-balancing linear program.
	fmt.Println("\n== Figure 5: the balance LP ==")
	desc, err := igp.DescribeBalanceLP(g, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(desc)

	// Figures 6 and 9: solve + move, then refine.
	st, err := igp.Repartition(context.Background(), g, a, igp.WithRefine())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== Figures 6/9: after balancing (%d moved) and refinement (%d moved) ==\n",
		st.BalanceMoved, st.RefineMoved)
	report(g, a)
	fmt.Printf("cut before balancing: %d, after refinement: %d\n",
		st.CutBefore.Total, st.CutAfter.Total)
}

func report(g *igp.Graph, a *igp.Assignment) {
	sizes := make([]int, a.P)
	for _, v := range g.Vertices() {
		if q := a.Part[v]; q >= 0 {
			sizes[q]++
		}
	}
	cut := igp.Cut(g, a)
	fmt.Printf("sizes=%v cut=%d max=%.0f min=%.0f imbalance=%.3f\n",
		sizes, cut.Total, cut.Max, cut.Min, igp.Imbalance(g, a))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
