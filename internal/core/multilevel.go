package core

import (
	"context"
	"fmt"

	"repro/internal/coarsen"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/partition"
)

// MultilevelOptions configures MultilevelRepartition.
type MultilevelOptions struct {
	// Inner configures the fine-level polish pass.
	Inner Options
}

// MultilevelStats reports a two-level multilevel run. The value returned
// by MultilevelRepartition is freshly allocated per call, but Fine points
// at the engine-arena conventions of core.Repartition's one-shot result;
// use Clone to detach a copy that outlives later engine activity.
type MultilevelStats struct {
	CoarseVertices int // coarse-graph size
	CoarseMoved    int // fine-vertex weight moved at the coarse level
	Fine           *Stats
}

// Clone returns a deep copy detached from every engine arena (Fine is
// cloned too).
func (s *MultilevelStats) Clone() *MultilevelStats {
	c := *s
	if s.Fine != nil {
		c.Fine = s.Fine.Clone()
	}
	return &c
}

// MultilevelRepartition incrementally repartitions g via one two-level
// coarsen/balance/uncoarsen cycle followed by a fine-level polish: the
// paper's §4 sketch, built from the coarsen package's kernels. The
// assignment a is updated in place; partition sizes end exactly balanced
// (the polish guarantees it). For deep hierarchies on large graphs use
// the engine's V-cycle mode (engine.Options.Multilevel / the public
// igp.WithMultilevel) instead — it keeps the coarse hierarchy alive
// across calls and repairs it from the edit journal.
func MultilevelRepartition(ctx context.Context, g *graph.Graph, a *partition.Assignment, opt MultilevelOptions) (*MultilevelStats, error) {
	st := &MultilevelStats{}
	if _, _, err := Assign(g, a); err != nil {
		return nil, err
	}
	match := coarsen.Match(g, a)
	gc, fineToCoarse, ca := coarsen.Contract(g, a, match)
	st.CoarseVertices = gc.NumVertices()

	solver := opt.Inner.Solver
	if solver == nil {
		solver = lp.Bounded{}
	}
	targets := partition.Targets(g.NumVertices(), a.P)
	moved, err := coarsen.CoarseBalance(ctx, gc, ca, targets, solver, 1)
	if err != nil {
		return nil, fmt.Errorf("coarsen: %w", err)
	}
	st.CoarseMoved = moved

	// Project the coarse decision back to the fine level.
	for _, v := range g.Vertices() {
		a.Part[v] = ca.Part[fineToCoarse[v]]
	}

	// Fine polish: the residual imbalance is at most a few cluster
	// granularities, so this converges in one or two cheap stages.
	fine, err := Repartition(ctx, g, a, opt.Inner)
	if err != nil {
		return nil, err
	}
	st.Fine = fine
	return st, nil
}
