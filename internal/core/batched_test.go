package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

func TestBatchedMatchesOneShotBalance(t *testing.T) {
	for _, batches := range []int{1, 2, 3, 5} {
		rng := rand.New(rand.NewSource(7))
		g, a := grownGrid(8, 16, 4, 30, rng)
		st, err := RepartitionInBatches(context.Background(), g, a, Options{Refine: true}, batches)
		if err != nil {
			t.Fatalf("batches=%d: %v", batches, err)
		}
		if err := a.Validate(g); err != nil {
			t.Fatalf("batches=%d: %v", batches, err)
		}
		sizes := a.Sizes(g)
		targets := partition.Targets(g.NumVertices(), 4)
		for q := range sizes {
			if sizes[q] != targets[q] {
				t.Fatalf("batches=%d: sizes %v != targets %v", batches, sizes, targets)
			}
		}
		if st.NewAssigned != 30 {
			t.Fatalf("batches=%d: assigned %d, want 30", batches, st.NewAssigned)
		}
	}
}

func TestBatchedStagesAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, a := grownGrid(8, 16, 4, 40, rng)
	st, err := RepartitionInBatches(context.Background(), g, a, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Each batch that needed movement contributes at least one stage.
	if len(st.Stages) < 2 {
		t.Fatalf("stages = %d, want ≥ 2 across 4 batches", len(st.Stages))
	}
}

func TestBatchedArgErrors(t *testing.T) {
	g := graph.Path(4)
	a := partition.New(4, 2)
	a.Part = []int32{0, 0, 1, 1}
	if _, err := RepartitionInBatches(context.Background(), g, a, Options{}, 0); err == nil {
		t.Fatal("0 batches must error")
	}
	b := partition.New(4, 2)
	if _, err := RepartitionInBatches(context.Background(), g, b, Options{}, 2); err == nil {
		t.Fatal("no old assignment must error")
	}
}

func TestBatchedNoNewVertices(t *testing.T) {
	g := graph.Grid(4, 4)
	a := partition.New(g.Order(), 2)
	for v := 0; v < g.Order(); v++ {
		a.Part[v] = int32(v % 2)
	}
	if _, err := RepartitionInBatches(context.Background(), g, a, Options{}, 3); err != nil {
		t.Fatal(err)
	}
	if !partition.Balanced(a.Sizes(g)) {
		t.Fatalf("sizes %v", a.Sizes(g))
	}
}

func TestBatchedMoreBatchesThanVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, a := grownGrid(6, 12, 3, 4, rng)
	if _, err := RepartitionInBatches(context.Background(), g, a, Options{}, 50); err != nil {
		t.Fatal(err)
	}
	if !partition.Balanced(a.Sizes(g)) {
		t.Fatalf("sizes %v", a.Sizes(g))
	}
}

func TestBatchedSmallerPerStageMovement(t *testing.T) {
	// Batching bounds per-stage LP movement: the largest single-stage move
	// with 5 batches should not exceed the one-shot single-stage move.
	build := func() (*graph.Graph, *partition.Assignment) {
		rng := rand.New(rand.NewSource(11))
		return grownGrid(8, 16, 4, 48, rng)
	}
	g1, a1 := build()
	one, err := Repartition(context.Background(), g1, a1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2, a2 := build()
	many, err := RepartitionInBatches(context.Background(), g2, a2, Options{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	maxStage := func(st *Stats) int {
		m := 0
		for _, s := range st.Stages {
			if s.Moved > m {
				m = s.Moved
			}
		}
		return m
	}
	if maxStage(many) > maxStage(one) {
		t.Fatalf("batched max stage moved %d > one-shot %d", maxStage(many), maxStage(one))
	}
}
