package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/partition"
	"repro/internal/spectral"
)

// meshFixture builds a small mesh graph with an RSB partition.
func meshFixture(t testing.TB, n, p int, seed int64) (*graph.Graph, *partition.Assignment) {
	gen, err := mesh.NewGenerator(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Mesh().Graph()
	part, err := spectral.RSB(g, p, spectral.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g, &partition.Assignment{Part: part, P: p}
}

// deleteBall removes the k vertices nearest (by hops) to center.
func deleteBall(t testing.TB, g *graph.Graph, center graph.Vertex, k int) int {
	dist := g.BFS(center)
	type dv struct {
		d int32
		v graph.Vertex
	}
	var order []dv
	for _, v := range g.Vertices() {
		if dist[v] >= 0 {
			order = append(order, dv{dist[v], v})
		}
	}
	// Sort by (distance, id) — deterministic ball.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && (order[j].d < order[j-1].d || (order[j].d == order[j-1].d && order[j].v < order[j-1].v)); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	removed := 0
	for _, e := range order {
		if removed >= k {
			break
		}
		if err := g.RemoveVertex(e.v); err != nil {
			t.Fatal(err)
		}
		removed++
	}
	return removed
}

func TestRepartitionAfterVertexDeletions(t *testing.T) {
	g, a := meshFixture(t, 600, 8, 11)
	// Remove a localized ball of 60 vertices — one partition loses most
	// of its load (the paper's V₂ ⊂ V case).
	removed := deleteBall(t, g, 0, 60)
	if removed != 60 {
		t.Fatalf("removed %d, want 60", removed)
	}
	if !g.Connected() {
		t.Skip("deletion disconnected the mesh; covered by the orphan tests")
	}
	st, err := Repartition(context.Background(), g, a, Options{Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), 8)
	for q := range sizes {
		if sizes[q] != targets[q] {
			t.Fatalf("sizes %v != targets %v", sizes, targets)
		}
	}
	if st.BalanceMoved == 0 {
		t.Fatal("deletions must trigger rebalancing movement")
	}
}

func TestRepartitionAfterEdgeDeletions(t *testing.T) {
	g, a := meshFixture(t, 400, 4, 13)
	// Remove every third edge of vertex 0's neighborhood region without
	// disconnecting (keep ≥ 2 incident edges per touched vertex).
	removedEdges := 0
	for _, v := range append([]graph.Vertex(nil), g.Neighbors(0)...) {
		if g.Degree(v) > 3 && g.Degree(0) > 3 {
			if err := g.RemoveEdge(0, v); err != nil {
				t.Fatal(err)
			}
			removedEdges++
		}
	}
	if removedEdges == 0 {
		t.Skip("degree structure left nothing removable")
	}
	if !g.Connected() {
		t.Skip("edge removal disconnected the test mesh")
	}
	if _, err := Repartition(context.Background(), g, a, Options{Refine: true}); err != nil {
		t.Fatal(err)
	}
	if !partition.Balanced(a.Sizes(g)) {
		t.Fatalf("unbalanced after edge deletions: %v", a.Sizes(g))
	}
}

func TestRepartitionMixedAddAndDelete(t *testing.T) {
	g, a := meshFixture(t, 500, 8, 17)
	// The paper's full incremental model: V' = V ∪ V₁ − V₂.
	removed := deleteBall(t, g, 100, 30)
	if !g.Connected() {
		t.Skip("deletion disconnected the mesh")
	}
	rng := rand.New(rand.NewSource(17))
	alive := g.Vertices()
	prev := []graph.Vertex{alive[len(alive)-1]}
	for k := 0; k < 45; k++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[rng.Intn(len(prev))], 1)
		prev = append(prev, v)
	}
	st, err := Repartition(context.Background(), g, a, Options{Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.NewAssigned != 45 {
		t.Fatalf("assigned %d, want 45", st.NewAssigned)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), 8)
	for q := range sizes {
		if sizes[q] != targets[q] {
			t.Fatalf("sizes %v != targets %v (removed %d)", sizes, targets, removed)
		}
	}
}

func TestPropertyRepartitionSurvivesRandomEdits(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen, err := mesh.NewGenerator(200+rng.Intn(200), seed)
		if err != nil {
			return false
		}
		g := gen.Mesh().Graph()
		p := 2 + rng.Intn(4)
		part, err := spectral.RSB(g, p, spectral.Options{Seed: seed})
		if err != nil {
			return false
		}
		a := &partition.Assignment{Part: part, P: p}
		// Random edit script: deletions and additions interleaved.
		for op := 0; op < 30; op++ {
			switch rng.Intn(3) {
			case 0:
				vs := g.Vertices()
				v := vs[rng.Intn(len(vs))]
				if g.Degree(v) > 0 && g.NumVertices() > 50 {
					_ = g.RemoveVertex(v)
				}
			case 1:
				v := g.AddVertex(1)
				vs := g.Vertices()
				u := vs[rng.Intn(len(vs))]
				if u != v {
					_ = g.AddEdge(v, u, 1)
				}
			case 2:
				vs := g.Vertices()
				v := vs[rng.Intn(len(vs))]
				if d := g.Degree(v); d > 3 {
					_ = g.RemoveEdge(v, g.Neighbors(v)[rng.Intn(d)])
				}
			}
		}
		if !g.Connected() {
			return true // disconnection legitimately may need from-scratch
		}
		if err := Repartition2OK(g, a); !err {
			return false
		}
		return a.Validate(g) == nil && partition.Balanced(a.Sizes(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Repartition2OK runs Repartition tolerating the documented structured
// failure (ErrNeedRepartition) by falling back to RSB, as the paper
// prescribes; any other failure is a bug.
func Repartition2OK(g *graph.Graph, a *partition.Assignment) bool {
	_, err := Repartition(context.Background(), g, a, Options{Refine: true})
	if err == nil {
		return true
	}
	part, rerr := spectral.RSB(g, a.P, spectral.Options{})
	if rerr != nil {
		return false
	}
	copy(a.Part, part)
	for len(a.Part) < len(part) {
		a.Part = append(a.Part, part[len(a.Part)])
	}
	return true
}
