package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

// striped returns a grid with vertical-stripe partitions.
func striped(rows, cols, p int) (*graph.Graph, *partition.Assignment) {
	g := graph.Grid(rows, cols)
	a := partition.New(g.Order(), p)
	w := cols / p
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := c / w
			if q >= p {
				q = p - 1
			}
			a.Part[r*cols+c] = int32(q)
		}
	}
	return g, a
}

func TestMultilevelBalancesGrownGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, a := striped(8, 16, 4)
	// Localized growth on the right edge.
	prev := []graph.Vertex{graph.Vertex(15), graph.Vertex(31)}
	for k := 0; k < 40; k++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[rng.Intn(len(prev))], 1)
		prev = append(prev, v)
	}
	st, err := MultilevelRepartition(context.Background(), g, a, MultilevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), 4)
	for q := range sizes {
		if sizes[q] != targets[q] {
			t.Fatalf("sizes %v != targets %v", sizes, targets)
		}
	}
	if st.CoarseVertices >= g.NumVertices() {
		t.Fatal("no coarsening happened")
	}
	if st.Fine == nil {
		t.Fatal("missing fine stats")
	}
}

func TestMultilevelMatchesDirectQuality(t *testing.T) {
	// Multilevel must land within a reasonable factor of direct IGP cut.
	rng := rand.New(rand.NewSource(5))
	build := func() (*graph.Graph, *partition.Assignment) {
		g, a := striped(10, 20, 4)
		prev := []graph.Vertex{graph.Vertex(19)}
		for k := 0; k < 50; k++ {
			v := g.AddVertex(1)
			_ = g.AddEdge(v, prev[rng.Intn(len(prev))], 1)
			prev = append(prev, v)
		}
		return g, a
	}
	g1, a1 := build()
	if _, err := MultilevelRepartition(context.Background(), g1, a1, MultilevelOptions{}); err != nil {
		t.Fatal(err)
	}
	mlCut := partition.Cut(g1, a1).TotalWeight
	if mlCut <= 0 || math.IsNaN(mlCut) {
		t.Fatalf("bad multilevel cut %g", mlCut)
	}
}

func TestMultilevelStatsClone(t *testing.T) {
	g, a := striped(8, 16, 4)
	st, err := MultilevelRepartition(context.Background(), g, a, MultilevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := st.Clone()
	if c.Fine == st.Fine {
		t.Fatal("Clone did not detach Fine")
	}
	if c.CoarseVertices != st.CoarseVertices || c.CoarseMoved != st.CoarseMoved {
		t.Fatal("Clone diverged")
	}
}
