// Package core implements the paper's primary contribution: the
// four-phase Incremental Graph Partitioner (IGP).
//
// Given a graph that changed incrementally and the partition of its
// previous version, Repartition
//
//  1. assigns each new vertex to the partition of the nearest old vertex
//     (graph distance), clustering new vertices that are disconnected
//     from the old graph and placing each cluster on the least-loaded
//     partition (§2.1);
//  2. layers every partition to find each vertex's closest foreign
//     partition (§2.2, package layering);
//  3. restores load balance with the minimal-movement linear program,
//     relaxing the correction by ε and running multiple stages when the
//     one-shot LP is infeasible (§2.3, package balance); and
//  4. optionally reduces the cutset with the zero-net-flow refinement LP
//     (§2.4, package refine) — the paper's IGPR variant.
//
// The phase machinery itself lives in package engine, which owns the
// long-lived state (journal-patched CSR snapshots, the incremental
// boundary/size/cut tracker, the pending-unassigned set that seeds a
// delta-aware phase 1, scratch arenas) that makes repeated
// repartitioning cost work proportional to the edit. This package keeps
// the one-shot entry points: each Repartition call here builds a fresh
// engine — paying full rebuilds of all derived state — so callers that
// repartition the same graph repeatedly should hold an engine (or the
// igp.Engine facade) instead. Options.FullRefresh forces those full
// rebuilds on every call of a held engine too (bit-identical results).
package core

import (
	"context"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
)

// ErrNeedRepartition reports that incremental balancing is impossible
// (even maximally relaxed LPs stay infeasible). The paper's remedy is to
// repartition from scratch or add the new vertices in several batches.
var ErrNeedRepartition = engine.ErrNeedRepartition

// Options configures Repartition.
type Options = engine.Options

// StageStats records one balancing stage.
type StageStats = engine.StageStats

// Stats reports everything Repartition did; the benchmark harness turns
// these into the paper's table columns.
type Stats = engine.Stats

// Repartition updates assignment a in place so it covers graph g with
// balanced partitions and a small cutset, reusing the old partitioning.
// Vertices beyond a's original coverage — and any vertex explicitly set to
// partition.Unassigned — are treated as new. A done context aborts the
// pipeline (including mid-LP) with an error matching cancel.ErrCanceled,
// leaving a valid — possibly unbalanced — assignment.
//
// This is the one-shot form: it builds a fresh engine per call. Hold an
// engine.Engine to amortize snapshots and scratch across calls.
func Repartition(ctx context.Context, g *graph.Graph, a *partition.Assignment, opt Options) (*Stats, error) {
	return engine.New(g, opt).Repartition(ctx, a)
}

// Assign implements phase 1: every live vertex of g that a leaves
// Unassigned is mapped to the partition of the nearest assigned vertex.
// New vertices unreachable from any assigned vertex are grouped into
// connected clusters, each placed on the currently least-loaded partition
// (the paper's fallback rule). Returns the number of vertices assigned and
// the number of fallback clusters.
func Assign(g *graph.Graph, a *partition.Assignment) (assigned, clusterFallbacks int, err error) {
	return engine.Assign(g, a)
}
