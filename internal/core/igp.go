// Package core implements the paper's primary contribution: the
// four-phase Incremental Graph Partitioner (IGP).
//
// Given a graph that changed incrementally and the partition of its
// previous version, Repartition
//
//  1. assigns each new vertex to the partition of the nearest old vertex
//     (graph distance), clustering new vertices that are disconnected
//     from the old graph and placing each cluster on the least-loaded
//     partition (§2.1);
//  2. layers every partition to find each vertex's closest foreign
//     partition (§2.2, package layering);
//  3. restores load balance with the minimal-movement linear program,
//     relaxing the correction by ε and running multiple stages when the
//     one-shot LP is infeasible (§2.3, package balance); and
//  4. optionally reduces the cutset with the zero-net-flow refinement LP
//     (§2.4, package refine) — the paper's IGPR variant.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/balance"
	"repro/internal/graph"
	"repro/internal/layering"
	"repro/internal/lp"
	"repro/internal/partition"
	"repro/internal/refine"
)

// ErrNeedRepartition reports that incremental balancing is impossible
// (even maximally relaxed LPs stay infeasible). The paper's remedy is to
// repartition from scratch or add the new vertices in several batches.
var ErrNeedRepartition = errors.New("core: incremental balance infeasible; repartition from scratch")

// Options configures Repartition.
type Options struct {
	// Solver is the simplex implementation (nil = lp.Bounded{}).
	Solver lp.Solver
	// EpsilonMax is the paper's upper bound C on the relaxation factor;
	// stages try ε = 1, 2, … up to it (0 = default 8).
	EpsilonMax float64
	// MaxStages caps balancing stages (0 = default 16).
	MaxStages int
	// Tolerance allows partition sizes to deviate from their targets by
	// up to this many vertices (0 = the paper's exact balance). Positive
	// values trade residual imbalance for less vertex movement.
	Tolerance int
	// Refine enables phase 4 (the IGPR variant).
	Refine bool
	// RefineOptions tunes phase 4 when enabled.
	RefineOptions refine.Options
}

func (o Options) solver() lp.Solver {
	if o.Solver == nil {
		return lp.Bounded{}
	}
	return o.Solver
}

func (o Options) epsMax() float64 {
	if o.EpsilonMax <= 0 {
		return 8
	}
	return o.EpsilonMax
}

func (o Options) maxStages() int {
	if o.MaxStages <= 0 {
		return 16
	}
	return o.MaxStages
}

// StageStats records one balancing stage.
type StageStats struct {
	Epsilon  float64 // relaxation factor that produced a feasible LP
	Moved    int     // vertices moved
	LPVars   int     // dense-formulation columns (the paper's v)
	LPCons   int     // dense-formulation rows (the paper's c)
	LPPivots int     // simplex iterations
	MaxDelta int     // largest δ(i,j) this stage
}

// Stats reports everything Repartition did; the benchmark harness turns
// these into the paper's table columns.
type Stats struct {
	NewAssigned      int // vertices assigned in phase 1
	ClusterFallbacks int // disconnected new-vertex clusters placed by size
	Stages           []StageStats
	BalanceMoved     int
	Refine           *refine.Stats // nil unless Options.Refine
	CutBefore        partition.CutStats
	CutAfter         partition.CutStats
	AssignTime       time.Duration
	LayerTime        time.Duration
	BalanceTime      time.Duration
	RefineTime       time.Duration
}

// TotalTime sums the phase times.
func (s *Stats) TotalTime() time.Duration {
	return s.AssignTime + s.LayerTime + s.BalanceTime + s.RefineTime
}

// MaxLPSize returns the largest (vars, cons) over all balancing stages —
// the paper's "v = 188 and c = 126" statistic.
func (s *Stats) MaxLPSize() (vars, cons int) {
	for _, st := range s.Stages {
		if st.LPVars > vars {
			vars, cons = st.LPVars, st.LPCons
		}
	}
	return vars, cons
}

// Repartition updates assignment a in place so it covers graph g with
// balanced partitions and a small cutset, reusing the old partitioning.
// Vertices beyond a's original coverage — and any vertex explicitly set to
// partition.Unassigned — are treated as new.
func Repartition(g *graph.Graph, a *partition.Assignment, opt Options) (*Stats, error) {
	st := &Stats{}

	t0 := time.Now()
	assigned, fallbacks, err := Assign(g, a)
	if err != nil {
		return st, err
	}
	st.NewAssigned = assigned
	st.ClusterFallbacks = fallbacks
	st.AssignTime = time.Since(t0)
	st.CutBefore = partition.Cut(g, a)

	targets := partition.Targets(g.NumVertices(), a.P)
	solver := opt.solver()
	for stage := 0; stage < opt.maxStages(); stage++ {
		sizes := a.Sizes(g)
		if maxAbsDev(sizes, targets) <= opt.Tolerance {
			break
		}
		tL := time.Now()
		lay, err := layering.Layer(g, a)
		if err != nil {
			return st, err
		}
		st.LayerTime += time.Since(tL)

		tB := time.Now()
		stageStat, ok, err := balanceStage(g, a, lay, targets, solver, opt.epsMax(), opt.Tolerance)
		st.BalanceTime += time.Since(tB)
		if err != nil {
			return st, err
		}
		if !ok {
			return st, fmt.Errorf("%w (stage %d, sizes %v)", ErrNeedRepartition, stage, sizes)
		}
		st.Stages = append(st.Stages, stageStat)
		st.BalanceMoved += stageStat.Moved
		if stageStat.Moved == 0 {
			// A feasible stage that moved nothing makes no progress: either
			// the targets are met (checked at the top of the loop) or every
			// residual surplus rounded to zero under the relaxation — in
			// both cases iterating further changes nothing.
			break
		}
	}
	sizes := a.Sizes(g)
	if maxAbsDev(sizes, targets) > opt.Tolerance {
		return st, fmt.Errorf("%w (after %d stages, sizes %v)", ErrNeedRepartition, len(st.Stages), sizes)
	}

	if opt.Refine {
		tR := time.Now()
		ro := opt.RefineOptions
		if ro.Solver == nil {
			ro.Solver = solver
		}
		rst, err := refine.Refine(g, a, ro)
		st.RefineTime = time.Since(tR)
		st.Refine = rst
		if err != nil {
			return st, err
		}
	}
	st.CutAfter = partition.Cut(g, a)
	return st, nil
}

// balanceStage runs one layer→LP→move stage, escalating ε until feasible.
func balanceStage(g *graph.Graph, a *partition.Assignment, lay *layering.Result, targets []int, solver lp.Solver, epsMax float64, tol int) (StageStats, bool, error) {
	sizes := a.Sizes(g)
	for eps := 1.0; eps <= epsMax; eps++ {
		m, err := balance.FormulateTol(lay.Delta, sizes, targets, eps, tol)
		if err != nil {
			return StageStats{}, false, err
		}
		flows, sol, err := balance.Solve(m, solver)
		if err != nil {
			return StageStats{}, false, err
		}
		if sol.Status != lp.Optimal {
			continue // relax further
		}
		moved, err := balance.Apply(a, lay, flows)
		if err != nil {
			return StageStats{}, false, err
		}
		vars, cons := lp.DenseSize(m.Prob)
		maxDelta := 0
		for _, row := range lay.Delta {
			for _, d := range row {
				if d > maxDelta {
					maxDelta = d
				}
			}
		}
		return StageStats{
			Epsilon:  eps,
			Moved:    moved,
			LPVars:   vars,
			LPCons:   cons,
			LPPivots: sol.Iterations,
			MaxDelta: maxDelta,
		}, true, nil
	}
	return StageStats{}, false, nil
}

// Assign implements phase 1: every live vertex of g that a leaves
// Unassigned is mapped to the partition of the nearest assigned vertex.
// New vertices unreachable from any assigned vertex are grouped into
// connected clusters, each placed on the currently least-loaded partition
// (the paper's fallback rule). Returns the number of vertices assigned and
// the number of fallback clusters.
func Assign(g *graph.Graph, a *partition.Assignment) (assigned, clusterFallbacks int, err error) {
	a.Grow(g.Order())
	hasOld := false
	for v := 0; v < g.Order(); v++ {
		if g.Alive(graph.Vertex(v)) && a.Part[v] >= 0 {
			hasOld = true
			break
		}
	}
	if !hasOld {
		return 0, 0, errors.New("core: assign: no previously assigned vertices; use a from-scratch partitioner first")
	}
	// Clear assignments of dead vertices (deleted since last time).
	for v := 0; v < g.Order(); v++ {
		if !g.Alive(graph.Vertex(v)) {
			a.Part[v] = partition.Unassigned
		}
	}

	winner, _ := g.NearestLabeled(a.Part)
	var orphans []graph.Vertex
	for v := 0; v < g.Order(); v++ {
		if !g.Alive(graph.Vertex(v)) || a.Part[v] >= 0 {
			continue
		}
		if winner[v] >= 0 {
			a.Part[v] = winner[v]
			assigned++
		} else {
			orphans = append(orphans, graph.Vertex(v))
		}
	}
	if len(orphans) == 0 {
		return assigned, 0, nil
	}

	// Disconnected new clusters: place each whole component on the
	// least-loaded partition.
	sub, _, newToOld := g.InducedSubgraph(orphans)
	comp, nc := sub.Components()
	sizes := a.Sizes(g)
	clusters := make([][]graph.Vertex, nc)
	for sv, c := range comp {
		if c >= 0 {
			clusters[c] = append(clusters[c], newToOld[sv])
		}
	}
	for _, cluster := range clusters {
		best := 0
		for q := 1; q < a.P; q++ {
			if sizes[q] < sizes[best] {
				best = q
			}
		}
		for _, v := range cluster {
			a.Part[v] = int32(best)
			assigned++
		}
		sizes[best] += len(cluster)
		clusterFallbacks++
	}
	return assigned, clusterFallbacks, nil
}

func maxAbsDev(sizes, targets []int) int {
	d := 0
	for i := range sizes {
		dev := sizes[i] - targets[i]
		if dev < 0 {
			dev = -dev
		}
		if dev > d {
			d = dev
		}
	}
	return d
}
