package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/partition"
)

// RepartitionInBatches implements the paper's second fallback for severe
// incremental changes (§2.3): instead of balancing all new vertices at
// once, it reveals them in numBatches groups — ordered by graph distance
// from the previously assigned region, so each batch extends the mesh the
// way the application grew it — and runs a full Repartition cycle per
// batch on the subgraph revealed so far. The last batch covers the whole
// graph, so the final assignment is exactly balanced on g.
//
// Stats from the per-batch runs are aggregated; Stages carries the
// concatenation (its length is the paper's total stage count across
// batches).
func RepartitionInBatches(ctx context.Context, g *graph.Graph, a *partition.Assignment, opt Options, numBatches int) (*Stats, error) {
	if numBatches < 1 {
		return nil, fmt.Errorf("core: batched repartition needs ≥ 1 batch, got %d", numBatches)
	}
	a.Grow(g.Order())
	for v := 0; v < g.Order(); v++ {
		if !g.Alive(graph.Vertex(v)) {
			a.Part[v] = partition.Unassigned
		}
	}
	var olds, news []graph.Vertex
	for v := 0; v < g.Order(); v++ {
		if !g.Alive(graph.Vertex(v)) {
			continue
		}
		if a.Part[v] >= 0 {
			olds = append(olds, graph.Vertex(v))
		} else {
			news = append(news, graph.Vertex(v))
		}
	}
	if len(olds) == 0 {
		return nil, fmt.Errorf("core: batched repartition: no previously assigned vertices")
	}
	if numBatches > len(news) && len(news) > 0 {
		numBatches = len(news)
	}
	if len(news) == 0 || numBatches == 1 {
		return Repartition(ctx, g, a, opt)
	}

	// Order new vertices by distance from the old region; unreachable
	// (orphan) vertices sort last so the cluster fallback sees them in the
	// final batch, when the most context is available.
	_, dist := g.NearestLabeled(a.Part)
	sort.Slice(news, func(i, j int) bool {
		di, dj := dist[news[i]], dist[news[j]]
		if di < 0 {
			di = 1 << 30
		}
		if dj < 0 {
			dj = 1 << 30
		}
		if di != dj {
			return di < dj
		}
		return news[i] < news[j]
	})

	agg := &Stats{}
	revealed := append([]graph.Vertex(nil), olds...)
	for b := 0; b < numBatches; b++ {
		if err := cancel.Check(ctx, "batched repartition"); err != nil {
			return agg, err
		}
		lo := b * len(news) / numBatches
		hi := (b + 1) * len(news) / numBatches
		revealed = append(revealed, news[lo:hi]...)

		sub, _, newToOld := g.InducedSubgraph(revealed)
		subA := partition.New(sub.Order(), a.P)
		for sv, old := range newToOld {
			subA.Part[sv] = a.Part[old]
		}
		st, err := Repartition(ctx, sub, subA, opt)
		if err != nil {
			return agg, fmt.Errorf("core: batch %d/%d: %w", b+1, numBatches, err)
		}
		for sv, old := range newToOld {
			a.Part[old] = subA.Part[sv]
		}
		agg.NewAssigned += st.NewAssigned
		agg.ClusterFallbacks += st.ClusterFallbacks
		agg.Stages = append(agg.Stages, st.Stages...)
		agg.BalanceMoved += st.BalanceMoved
		agg.AssignTime += st.AssignTime
		agg.LayerTime += st.LayerTime
		agg.BalanceTime += st.BalanceTime
		agg.RefineTime += st.RefineTime
		agg.Elapsed += st.Elapsed
		agg.LPIterations += st.LPIterations
		agg.MWUFallbacks += st.MWUFallbacks
		if b == 0 {
			agg.CutBefore = st.CutBefore
		}
		agg.CutAfter = st.CutAfter
		// Accumulate refinement across batches (movement and pivot totals
		// sum; the LP-size high-water mark and final cut carry the max/last).
		if st.Refine != nil {
			if agg.Refine == nil {
				cp := *st.Refine
				agg.Refine = &cp
			} else {
				agg.Refine.Moved += st.Refine.Moved
				agg.Refine.Rounds += st.Refine.Rounds
				agg.Refine.Iterations += st.Refine.Iterations
				if st.Refine.LPVars > agg.Refine.LPVars {
					agg.Refine.LPVars, agg.Refine.LPCons = st.Refine.LPVars, st.Refine.LPCons
				}
				agg.Refine.CutAfter = st.Refine.CutAfter
			}
		}
	}
	return agg, nil
}
