package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/partition"
	"repro/internal/spectral"
)

// grownGrid builds a rows×cols grid striped into p columns-wise partitions,
// then grows it by attaching extra vertices in a localized blob on one
// side — the paper's incremental scenario in miniature.
func grownGrid(rows, cols, p, extra int, rng *rand.Rand) (*graph.Graph, *partition.Assignment) {
	g := graph.Grid(rows, cols)
	a := partition.New(g.Order(), p)
	w := cols / p
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := c / w
			if q >= p {
				q = p - 1
			}
			a.Part[r*cols+c] = int32(q)
		}
	}
	// Attach new vertices to random vertices in the last two columns.
	attach := make([]graph.Vertex, 0, 2*rows)
	for r := 0; r < rows; r++ {
		attach = append(attach, graph.Vertex(r*cols+cols-1), graph.Vertex(r*cols+cols-2))
	}
	prev := attach
	for k := 0; k < extra; k++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[rng.Intn(len(prev))], 1)
		if rng.Intn(2) == 0 && k > 0 {
			u := graph.Vertex(int(v) - 1 - rng.Intn(min(k, 3)))
			if g.Alive(u) && !g.HasEdge(v, u) && u != v {
				_ = g.AddEdge(v, u, 1)
			}
		}
		prev = append(prev, v)
	}
	return g, a
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestAssignNearest(t *testing.T) {
	// Path 0-1-2-3-4 with 0,1 in partition 0 and 3,4 in partition 1;
	// vertex 2 is new and adjacent to both: gets one of them (distance 1).
	g := graph.Path(5)
	a := partition.New(5, 2)
	a.Part = []int32{0, 0, partition.Unassigned, 1, 1}
	n, fb, err := Assign(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || fb != 0 {
		t.Fatalf("assigned %d clusters %d, want 1/0", n, fb)
	}
	if a.Part[2] != 0 && a.Part[2] != 1 {
		t.Fatalf("vertex 2 assigned %d", a.Part[2])
	}
}

func TestAssignDisconnectedCluster(t *testing.T) {
	// Two new vertices forming their own component: must go, as one
	// cluster, to the smaller partition.
	g := graph.Path(4) // 0-1-2-3 assigned
	v1 := g.AddVertex(1)
	v2 := g.AddVertex(1)
	_ = g.AddEdge(v1, v2, 1)
	a := partition.New(4, 2)
	a.Part = []int32{0, 0, 0, 1} // partition 1 is smaller
	n, fb, err := Assign(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || fb != 1 {
		t.Fatalf("assigned %d clusters %d, want 2/1", n, fb)
	}
	if a.Part[v1] != 1 || a.Part[v2] != 1 {
		t.Fatalf("cluster went to %d/%d, want partition 1", a.Part[v1], a.Part[v2])
	}
}

func TestAssignNoOldAssignment(t *testing.T) {
	g := graph.Path(3)
	a := partition.New(3, 2)
	if _, _, err := Assign(g, a); err == nil {
		t.Fatal("assign with no old vertices must error")
	}
}

func TestAssignClearsDeadVertices(t *testing.T) {
	g := graph.Path(4)
	a := partition.New(4, 2)
	a.Part = []int32{0, 0, 1, 1}
	_ = g.RemoveVertex(3)
	if _, _, err := Assign(g, a); err != nil {
		t.Fatal(err)
	}
	if a.Part[3] != partition.Unassigned {
		t.Fatal("dead vertex should be unassigned after Assign")
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestRepartitionBalancesGrownGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, a := grownGrid(8, 16, 4, 24, rng)
	st, err := Repartition(context.Background(), g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), 4)
	for q := range sizes {
		if sizes[q] != targets[q] {
			t.Fatalf("sizes %v != targets %v", sizes, targets)
		}
	}
	if st.NewAssigned != 24 {
		t.Fatalf("assigned %d, want 24", st.NewAssigned)
	}
	if len(st.Stages) == 0 {
		t.Fatal("expected at least one balancing stage")
	}
}

func TestRepartitionWithRefinementImprovesCut(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gPlain, aPlain := grownGrid(8, 16, 4, 24, rng)
	rng2 := rand.New(rand.NewSource(5))
	gRef, aRef := grownGrid(8, 16, 4, 24, rng2)

	if _, err := Repartition(context.Background(), gPlain, aPlain, Options{}); err != nil {
		t.Fatal(err)
	}
	stRef, err := Repartition(context.Background(), gRef, aRef, Options{Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	cutPlain := partition.Cut(gPlain, aPlain).TotalWeight
	cutRef := partition.Cut(gRef, aRef).TotalWeight
	if cutRef > cutPlain {
		t.Fatalf("IGPR cut %g worse than IGP cut %g", cutRef, cutPlain)
	}
	if stRef.Refine == nil {
		t.Fatal("refine stats missing")
	}
	// Refinement must preserve the balance achieved in phase 3.
	sizes := aRef.Sizes(gRef)
	targets := partition.Targets(gRef.NumVertices(), 4)
	for q := range sizes {
		if sizes[q] != targets[q] {
			t.Fatalf("refinement broke balance: %v vs %v", sizes, targets)
		}
	}
}

// paperFigure2Graph reconstructs the flavor of the paper's Figs 2–9 worked
// example: 4 partitions, a localized burst of 28 new vertices attached
// near partition 0's territory, severe imbalance solved by the LP.
func TestRepartitionLocalizedBurst(t *testing.T) {
	g := graph.Grid(8, 8) // 64 vertices, 4 partitions of 16 (quadrants)
	a := partition.New(g.Order(), 4)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			q := int32(0)
			if c >= 4 {
				q = 1
			}
			if r >= 4 {
				q += 2
			}
			a.Part[r*8+c] = q
		}
	}
	// 28 new vertices all attached to the top-left quadrant's corner area.
	rng := rand.New(rand.NewSource(9))
	prev := []graph.Vertex{0, 1, 8, 9}
	for k := 0; k < 28; k++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[rng.Intn(len(prev))], 1)
		prev = append(prev, v)
	}
	st, err := Repartition(context.Background(), g, a, Options{Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	if !partition.Balanced(sizes) {
		t.Fatalf("sizes %v not balanced", sizes)
	}
	// The burst lands entirely on partition 0 (surplus 21): a single ε=1
	// stage cannot be guaranteed; the driver must have used stages/ε and
	// still converged.
	if st.BalanceMoved == 0 {
		t.Fatal("expected vertex movement")
	}
}

func TestRepartitionInfeasibleFallsBack(t *testing.T) {
	// Two disconnected cliques, new vertices land on the small one but
	// partitions cannot exchange vertices: must report ErrNeedRepartition.
	g := graph.Complete(6)
	far := make([]graph.Vertex, 0)
	for i := 0; i < 3; i++ {
		far = append(far, g.AddVertex(1))
	}
	_ = g.AddEdge(far[0], far[1], 1)
	_ = g.AddEdge(far[1], far[2], 1)
	a := partition.New(g.Order(), 2)
	a.Part = []int32{0, 0, 0, 0, 0, 0, 1, 1, 1}
	// Grow the small side by 6 more vertices: total 9 vs 6, targets 8/7 —
	// impossible to fix without cross-component movement.
	prev := far
	for k := 0; k < 6; k++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[len(prev)-1], 1)
		prev = append(prev, v)
	}
	_, err := Repartition(context.Background(), g, a, Options{})
	if !errors.Is(err, ErrNeedRepartition) {
		t.Fatalf("err = %v, want ErrNeedRepartition", err)
	}
}

func TestRepartitionAfterRSBOnGrownGraph(t *testing.T) {
	// End-to-end: RSB initial partition, grow the graph, IGP repartition;
	// quality should stay within 2x of re-running RSB from scratch.
	rng := rand.New(rand.NewSource(11))
	g := graph.Grid(12, 12)
	part, err := spectral.RSB(g, 8, spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := &partition.Assignment{Part: part, P: 8}
	// Localized growth: 30 vertices near the center.
	center := graph.Vertex(6*12 + 6)
	prev := []graph.Vertex{center}
	for k := 0; k < 30; k++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[rng.Intn(len(prev))], 1)
		prev = append(prev, v)
	}
	if _, err := Repartition(context.Background(), g, a, Options{Refine: true}); err != nil {
		t.Fatal(err)
	}
	igpCut := partition.Cut(g, a).TotalWeight

	fresh, err := spectral.RSB(g, 8, spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rsbCut := partition.Cut(g, &partition.Assignment{Part: fresh, P: 8}).TotalWeight
	if igpCut > 2*rsbCut+8 {
		t.Fatalf("IGP cut %g too far above fresh RSB %g", igpCut, rsbCut)
	}
	if !partition.Balanced(a.Sizes(g)) {
		t.Fatalf("unbalanced: %v", a.Sizes(g))
	}
}

func TestStatsLPSizeIndependentOfGraphSize(t *testing.T) {
	// The paper's key scaling claim: LP size depends on P and partition
	// adjacency, not |V|.
	sizesOf := func(rows, cols int) (int, int) {
		rng := rand.New(rand.NewSource(1))
		g, a := grownGrid(rows, cols, 4, 16, rng)
		st, err := Repartition(context.Background(), g, a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return st.MaxLPSize()
	}
	v1, c1 := sizesOf(8, 16)
	v2, c2 := sizesOf(16, 32) // 4x the vertices
	if v2 > 2*v1+8 || c2 > 2*c1+8 {
		t.Fatalf("LP size grew with |V|: (%d,%d) → (%d,%d)", v1, c1, v2, c2)
	}
}

func TestPropertyRepartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 6 + rng.Intn(4)
		cols := 8 + rng.Intn(8)
		p := 2 + rng.Intn(3)
		extra := 5 + rng.Intn(20)
		g, a := grownGrid(rows, cols, p, extra, rng)
		st, err := Repartition(context.Background(), g, a, Options{Refine: rng.Intn(2) == 0})
		if err != nil {
			// Feasibility can genuinely fail on tiny pathological grids;
			// only structured failures are accepted.
			return errors.Is(err, ErrNeedRepartition)
		}
		if a.Validate(g) != nil {
			return false
		}
		sizes := a.Sizes(g)
		targets := partition.Targets(g.NumVertices(), p)
		for q := range sizes {
			if sizes[q] != targets[q] {
				return false
			}
		}
		return st.NewAssigned == extra
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRepartitionSolverEquivalence(t *testing.T) {
	for _, s := range []lp.Solver{lp.Dense{}, lp.Bounded{}, lp.Revised{}} {
		rng := rand.New(rand.NewSource(21))
		g, a := grownGrid(8, 16, 4, 20, rng)
		if _, err := Repartition(context.Background(), g, a, Options{Solver: s, Refine: true}); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !partition.Balanced(a.Sizes(g)) {
			t.Fatalf("%s: unbalanced", s.Name())
		}
	}
}
