package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/partition"
)

// gridWithPoints builds a rows×cols grid and matching unit coordinates.
func gridWithPoints(rows, cols int) (*graph.Graph, [][2]float64) {
	g := graph.Grid(rows, cols)
	pts := make([][2]float64, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts[r*cols+c] = [2]float64{float64(c), float64(r)}
		}
	}
	return g, pts
}

func TestRCBGridQuadrants(t *testing.T) {
	g, pts := gridWithPoints(8, 8)
	part, err := RCB(g, pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := &partition.Assignment{Part: part, P: 4}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	for q, s := range sizes {
		if s != 16 {
			t.Fatalf("partition %d has %d vertices (sizes %v)", q, s, sizes)
		}
	}
	// Coordinate bisection of a square grid yields straight cuts: 4-way
	// cut should be exactly 2×8 = 16.
	if cut := partition.Cut(g, a); cut.Total != 16 {
		t.Fatalf("cut = %d, want 16", cut.Total)
	}
}

func TestRCBErrors(t *testing.T) {
	g, pts := gridWithPoints(2, 2)
	if _, err := RCB(g, pts, 0); err == nil {
		t.Fatal("p=0 must error")
	}
	if _, err := RCB(g, pts[:1], 2); err == nil {
		t.Fatal("missing points must error")
	}
	if _, err := RCB(g, pts, 9); err == nil {
		t.Fatal("p > |V| must error")
	}
}

func TestRGBGridBalanced(t *testing.T) {
	g, _ := gridWithPoints(8, 8)
	for _, p := range []int{2, 4, 8} {
		part, err := RGB(g, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		a := &partition.Assignment{Part: part, P: p}
		if err := a.Validate(g); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !partition.Balanced(a.Sizes(g)) {
			t.Fatalf("p=%d: sizes %v", p, a.Sizes(g))
		}
	}
}

func TestRGBErrors(t *testing.T) {
	g := graph.Path(3)
	if _, err := RGB(g, 0); err == nil {
		t.Fatal("p=0 must error")
	}
	if _, err := RGB(g, 5); err == nil {
		t.Fatal("p > |V| must error")
	}
}

func TestRGBPathContiguity(t *testing.T) {
	// On a path, RGB's BFS ordering makes every partition an interval, so
	// the p-way cut is exactly p−1.
	g := graph.Path(32)
	part, err := RGB(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := &partition.Assignment{Part: part, P: 4}
	if cut := partition.Cut(g, a); cut.Total != 3 {
		t.Fatalf("path cut = %d, want 3", cut.Total)
	}
}

func TestPropertyBaselinesBalanced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 4 + rng.Intn(6)
		cols := 4 + rng.Intn(6)
		g, pts := gridWithPoints(rows, cols)
		p := 2 + rng.Intn(4)
		if g.NumVertices() < p {
			return true
		}
		rcb, err := RCB(g, pts, p)
		if err != nil {
			return false
		}
		rgb, err := RGB(g, p)
		if err != nil {
			return false
		}
		for _, part := range [][]int32{rcb, rgb} {
			a := &partition.Assignment{Part: part, P: p}
			if a.Validate(g) != nil {
				return false
			}
			if !partition.Balanced(a.Sizes(g)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
