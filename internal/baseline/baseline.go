// Package baseline implements two of the classical from-scratch
// partitioning heuristics the paper's introduction surveys alongside
// spectral bisection: recursive coordinate bisection (RCB) and recursive
// graph bisection (RGB). They serve as additional quality baselines for
// the evaluation harness (ablation A4 in DESIGN.md) — and RCB is the
// method the paper contrasts itself against when it argues for
// techniques that do not need vertex coordinates.
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// RCB partitions vertices into p parts by recursive coordinate bisection:
// at each level the current vertex set is split at the weighted median of
// its wider coordinate axis. Requires a coordinate per vertex slot.
func RCB(g *graph.Graph, pts [][2]float64, p int) ([]int32, error) {
	if p < 1 {
		return nil, fmt.Errorf("baseline: rcb: p=%d", p)
	}
	if len(pts) < g.Order() {
		return nil, fmt.Errorf("baseline: rcb: %d points for %d vertices", len(pts), g.Order())
	}
	if g.NumVertices() < p {
		return nil, fmt.Errorf("baseline: rcb: %d vertices into %d parts", g.NumVertices(), p)
	}
	part := make([]int32, g.Order())
	for i := range part {
		part[i] = -1
	}
	rcbRec(g, pts, g.Vertices(), p, 0, part)
	return part, nil
}

func rcbRec(g *graph.Graph, pts [][2]float64, vs []graph.Vertex, p int, base int32, part []int32) {
	if p == 1 {
		for _, v := range vs {
			part[v] = base
		}
		return
	}
	// Choose the wider axis.
	minX, maxX := pts[vs[0]][0], pts[vs[0]][0]
	minY, maxY := pts[vs[0]][1], pts[vs[0]][1]
	for _, v := range vs {
		x, y := pts[v][0], pts[v][1]
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	axis := 0
	if maxY-minY > maxX-minX {
		axis = 1
	}
	sorted := append([]graph.Vertex(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := pts[sorted[i]][axis], pts[sorted[j]][axis]
		if a != b {
			return a < b
		}
		return sorted[i] < sorted[j]
	})
	pa := (p + 1) / 2
	pb := p - pa
	cut := splitIndex(g, sorted, float64(pa)/float64(p))
	rcbRec(g, pts, sorted[:cut], pa, base, part)
	rcbRec(g, pts, sorted[cut:], pb, base+int32(pa), part)
}

// RGB partitions by recursive graph bisection: BFS levels from a
// pseudo-peripheral vertex order the vertices; the ordered list is split
// at the weighted quantile. Uses structure only — no coordinates.
func RGB(g *graph.Graph, p int) ([]int32, error) {
	if p < 1 {
		return nil, fmt.Errorf("baseline: rgb: p=%d", p)
	}
	if g.NumVertices() < p {
		return nil, fmt.Errorf("baseline: rgb: %d vertices into %d parts", g.NumVertices(), p)
	}
	part := make([]int32, g.Order())
	for i := range part {
		part[i] = -1
	}
	rgbRec(g, g.Vertices(), p, 0, part)
	return part, nil
}

func rgbRec(g *graph.Graph, vs []graph.Vertex, p int, base int32, part []int32) {
	if p == 1 {
		for _, v := range vs {
			part[v] = base
		}
		return
	}
	sub, _, newToOld := g.InducedSubgraph(vs)
	// Order by (BFS level from a pseudo-peripheral vertex, id); vertices
	// in other components (level -1) go last in id order.
	start := sub.PseudoPeripheral(0)
	dist := sub.BFS(start)
	order := sub.Vertices()
	sort.Slice(order, func(i, j int) bool {
		di, dj := dist[order[i]], dist[order[j]]
		if di < 0 {
			di = 1 << 30
		}
		if dj < 0 {
			dj = 1 << 30
		}
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	sorted := make([]graph.Vertex, len(order))
	for i, v := range order {
		sorted[i] = newToOld[v]
	}
	pa := (p + 1) / 2
	pb := p - pa
	cut := splitIndex(g, sorted, float64(pa)/float64(p))
	rgbRec(g, sorted[:cut], pa, base, part)
	rgbRec(g, sorted[cut:], pb, base+int32(pa), part)
}

// splitIndex returns the index that splits sorted at the given weight
// fraction, clamped so both sides stay non-empty.
func splitIndex(g *graph.Graph, sorted []graph.Vertex, frac float64) int {
	var total float64
	for _, v := range sorted {
		total += g.VertexWeight(v)
	}
	target := total * frac
	var acc float64
	cut := 0
	for i, v := range sorted {
		if acc >= target {
			break
		}
		acc += g.VertexWeight(v)
		cut = i + 1
	}
	if cut < 1 {
		cut = 1
	}
	if cut > len(sorted)-1 {
		cut = len(sorted) - 1
	}
	return cut
}
