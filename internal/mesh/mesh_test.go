package mesh

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
)

func TestDelaunaySquare(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1.0001}}
	m, err := NewDelaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVertices() != 4 {
		t.Fatalf("vertices = %d, want 4", m.NumVertices())
	}
	tris := m.Triangles()
	if len(tris) != 2 {
		t.Fatalf("triangles = %d, want 2", len(tris))
	}
	g := m.Graph()
	if g.NumVertices() != 4 || g.NumEdges() != 5 {
		t.Fatalf("graph %d/%d, want 4 vertices, 5 edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDelaunayRejectsDuplicates(t *testing.T) {
	m, err := NewDelaunay([]geom.Point{{X: 0.2, Y: 0.2}, {X: 0.8, Y: 0.3}, {X: 0.5, Y: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(geom.Point{X: 0.2, Y: 0.2}); err == nil {
		t.Fatal("duplicate point must be rejected")
	}
}

func TestDelaunayRandomValid(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	m, err := NewDelaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(rng, 2000); err != nil {
		t.Fatal(err)
	}
	g := m.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("Delaunay graph must be connected")
	}
	// Planar triangulation: e ≈ 3v (within hull-boundary slack).
	if g.NumEdges() < 2*g.NumVertices() || g.NumEdges() > 3*g.NumVertices() {
		t.Fatalf("edge count %d out of range for %d vertices", g.NumEdges(), g.NumVertices())
	}
}

func TestGeneratorSize(t *testing.T) {
	gen, err := NewGenerator(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Mesh().NumVertices() != 500 {
		t.Fatalf("vertices = %d, want 500", gen.Mesh().NumVertices())
	}
	rng := rand.New(rand.NewSource(2))
	if err := gen.Mesh().Validate(rng, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestRefineDiskAddsLocalizedVertices(t *testing.T) {
	gen, err := NewGenerator(400, 3)
	if err != nil {
		t.Fatal(err)
	}
	center := geom.Point{X: 0.5, Y: 0.5}
	before := gen.Mesh().NumVertices()
	added, err := gen.RefineDisk(center, 0.2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 30 || gen.Mesh().NumVertices() != before+30 {
		t.Fatalf("added %d vertices, want 30", len(added))
	}
	// All new points must lie near the disk.
	for _, vid := range added {
		p := gen.Mesh().Point(vid)
		if p.Dist(center) > 0.25 {
			t.Fatalf("refined vertex %d at %v outside disk", vid, p)
		}
	}
	rng := rand.New(rand.NewSource(4))
	if err := gen.Mesh().Validate(rng, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateGraphIncremental(t *testing.T) {
	gen, err := NewGenerator(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Mesh().Graph()
	edgesBefore := g.NumEdges()
	if _, err := gen.RefineDisk(geom.Point{X: 0.3, Y: 0.3}, 0.15, 20); err != nil {
		t.Fatal(err)
	}
	if err := gen.Mesh().UpdateGraph(g); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 220 {
		t.Fatalf("vertices = %d, want 220", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Refinement must both add and remove edges (Delaunay flips).
	fresh := gen.Mesh().Graph()
	if g.NumEdges() != fresh.NumEdges() {
		t.Fatalf("updated graph has %d edges, fresh build %d", g.NumEdges(), fresh.NumEdges())
	}
	for _, v := range fresh.Vertices() {
		for _, u := range fresh.Neighbors(v) {
			if !g.HasEdge(v, u) {
				t.Fatalf("updated graph missing edge {%d,%d}", v, u)
			}
		}
	}
	if g.NumEdges() <= edgesBefore {
		t.Fatalf("edges %d → %d, expected growth", edgesBefore, g.NumEdges())
	}
}

func TestGenerateChainedSequence(t *testing.T) {
	seq, err := GenerateChained(300, []int{10, 15, 20}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Base.NumVertices() != 300 {
		t.Fatalf("base = %d, want 300", seq.Base.NumVertices())
	}
	want := 300
	for i, st := range seq.Steps {
		want += st.NewVertices
		if st.Graph.NumVertices() != want {
			t.Fatalf("step %d: %d vertices, want %d", i, st.Graph.NumVertices(), want)
		}
		if err := st.Graph.Validate(); err != nil {
			t.Fatal(err)
		}
		if !st.Graph.Connected() {
			t.Fatalf("step %d: disconnected", i)
		}
	}
	// Vertex identity stability: step graphs extend earlier ones.
	if seq.Steps[1].Graph.Order() <= seq.Steps[0].Graph.Order() {
		t.Fatal("steps must grow")
	}
}

func TestGenerateFanOutSequence(t *testing.T) {
	seq, err := GenerateFanOut(300, []int{10, 40}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Chained {
		t.Fatal("fan-out must not be chained")
	}
	if seq.Steps[0].Graph.NumVertices() != 310 || seq.Steps[1].Graph.NumVertices() != 340 {
		t.Fatalf("step sizes %d/%d, want 310/340",
			seq.Steps[0].Graph.NumVertices(), seq.Steps[1].Graph.NumVertices())
	}
	// Both steps share the same base prefix: vertex 0..299 have identical
	// coordinates, so base graphs agree.
	if seq.Base.NumVertices() != 300 {
		t.Fatalf("base = %d", seq.Base.NumVertices())
	}
}

func TestSequencePointsCoverVertices(t *testing.T) {
	seq, err := GenerateChained(200, []int{12}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Points) != 212 {
		t.Fatalf("points = %d, want 212", len(seq.Points))
	}
}

// TestGenerationDeterministicInSeed: the documented contract is that
// mesh generation is a pure function of the seed. This regression test
// pins the fix for the cavity/update map-iteration leak: generating the
// same seeded sequence twice (in one process) must produce
// byte-identical graphs at every step.
func TestGenerationDeterministicInSeed(t *testing.T) {
	encode := func(g *graph.Graph) string {
		var b strings.Builder
		if err := graph.Write(&b, g); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	for _, seed := range []int64{1, 7, 1994} {
		a, err := PaperSequenceA(seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := PaperSequenceA(seed)
		if err != nil {
			t.Fatal(err)
		}
		if encode(a.Base) != encode(b.Base) {
			t.Fatalf("seed %d: base mesh differs between generations", seed)
		}
		for i := range a.Steps {
			if encode(a.Steps[i].Graph) != encode(b.Steps[i].Graph) {
				t.Fatalf("seed %d: step %d graph differs between generations", seed, i)
			}
		}
	}
}
