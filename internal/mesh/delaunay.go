// Package mesh builds and incrementally refines unstructured triangular
// meshes — the substitute for the paper's DIME environment. The mesh is a
// Bowyer–Watson Delaunay triangulation supporting incremental point
// insertion, so a "refinement" adds vertices and both adds and removes
// edges, exactly the incremental-graph model of the paper (§1.1).
package mesh

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/graph"
)

// tri is one triangle of the triangulation. Vertices are counterclockwise;
// adj[i] is the triangle across the edge opposite v[i] (-1 = none).
type tri struct {
	v     [3]int32
	adj   [3]int32
	alive bool
}

// Mesh is an incrementally-built Delaunay triangulation. Vertex 0..2 are
// the synthetic super-triangle corners; they are excluded from the
// exported graph and point views.
type Mesh struct {
	pts   []geom.Point
	tris  []tri
	freed []int32 // recycled triangle slots
	last  int32   // last touched triangle (walk start hint)
}

// super-triangle corners: huge so every unit-square point is inside.
var superCorners = [3]geom.Point{
	{X: -1e3, Y: -1e3},
	{X: 1e3, Y: -1e3},
	{X: 0.5, Y: 1.5e3},
}

// NewDelaunay triangulates the given points incrementally. Points must lie
// well inside the unit square neighborhood (|coords| ≤ 100).
func NewDelaunay(pts []geom.Point) (*Mesh, error) {
	m := &Mesh{}
	m.pts = append(m.pts, superCorners[0], superCorners[1], superCorners[2])
	m.tris = append(m.tris, tri{v: [3]int32{0, 1, 2}, adj: [3]int32{-1, -1, -1}, alive: true})
	for _, p := range pts {
		if _, err := m.Insert(p); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// NumVertices returns the number of real (non-super) vertices.
func (m *Mesh) NumVertices() int { return len(m.pts) - 3 }

// Point returns real vertex i's coordinates.
func (m *Mesh) Point(i int) geom.Point { return m.pts[i+3] }

// Points returns a copy of all real vertex coordinates.
func (m *Mesh) Points() []geom.Point {
	return append([]geom.Point(nil), m.pts[3:]...)
}

// Insert adds p to the triangulation, returning its real-vertex index.
// Inserting a point that duplicates an existing vertex or lands on a
// degenerate configuration returns an error (callers jitter and retry).
func (m *Mesh) Insert(p geom.Point) (int, error) {
	if p.X < -100 || p.X > 100 || p.Y < -100 || p.Y > 100 {
		return 0, fmt.Errorf("mesh: point (%g,%g) outside supported region", p.X, p.Y)
	}
	start, err := m.locate(p)
	if err != nil {
		return 0, err
	}
	// Grow the cavity: all triangles whose circumcircle contains p,
	// flood-filled from the containing triangle. badList records the
	// (deterministic) flood-fill discovery order; every later step
	// iterates it rather than the membership map, so triangle slot
	// allocation — and with it the adjacency order of the exported
	// graph — is a pure function of the inserted points. (Ranging over
	// the map here made "deterministic in seed" mesh generation
	// silently depend on Go's per-process map ordering.)
	bad := map[int32]bool{start: true}
	badList := []int32{start}
	stack := []int32{start}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range m.tris[t].adj {
			if nb < 0 || bad[nb] {
				continue
			}
			tv := m.tris[nb].v
			if geom.InCircumcircle(m.pts[tv[0]], m.pts[tv[1]], m.pts[tv[2]], p) {
				bad[nb] = true
				badList = append(badList, nb)
				stack = append(stack, nb)
			}
		}
	}
	// Cavity boundary: directed edges of bad triangles whose neighbor is
	// not bad. Edge i of triangle t is (v[(i+1)%3], v[(i+2)%3]) with
	// external neighbor adj[i].
	type bEdge struct {
		u, w int32 // directed so that (u,w) is counterclockwise on the cavity
		ext  int32
	}
	var boundary []bEdge
	for _, t := range badList {
		tv := m.tris[t].v
		ta := m.tris[t].adj
		for i := 0; i < 3; i++ {
			nb := ta[i]
			if nb >= 0 && bad[nb] {
				continue
			}
			boundary = append(boundary, bEdge{u: tv[(i+1)%3], w: tv[(i+2)%3], ext: nb})
		}
	}
	if len(boundary) < 3 {
		return 0, fmt.Errorf("mesh: degenerate cavity inserting (%g,%g)", p.X, p.Y)
	}
	// Guard against duplicate points: a boundary edge endpoint equal to p.
	for _, e := range boundary {
		if m.pts[e.u] == p || m.pts[e.w] == p {
			return 0, fmt.Errorf("mesh: duplicate point (%g,%g)", p.X, p.Y)
		}
	}

	vi := int32(len(m.pts))
	m.pts = append(m.pts, p)
	// Remove bad triangles, remembering their slots for reuse (in
	// discovery order, keeping slot recycling deterministic).
	for _, t := range badList {
		m.tris[t].alive = false
		m.freed = append(m.freed, t)
	}
	// Create one new triangle (p, u, w) per boundary edge.
	newTris := make([]int32, 0, len(boundary))
	for _, e := range boundary {
		nt := m.alloc(tri{v: [3]int32{vi, e.u, e.w}, adj: [3]int32{e.ext, -1, -1}, alive: true})
		// Fix the external neighbor's back-pointer.
		if e.ext >= 0 {
			ext := &m.tris[e.ext]
			for i := 0; i < 3; i++ {
				nb := ext.adj[i]
				if nb >= 0 && bad[nb] {
					// This was the edge facing a removed triangle; it must
					// match (w,u) reversed.
					a, b := ext.v[(i+1)%3], ext.v[(i+2)%3]
					if a == e.w && b == e.u {
						ext.adj[i] = nt
					}
				}
			}
		}
		newTris = append(newTris, nt)
	}
	// Link the new triangles to each other: triangle (p,u,w) has internal
	// edges (p,u) and (w,p); match via shared endpoint.
	byFirst := make(map[int32]int32, len(newTris)) // u → triangle with edge (u,w)
	for _, nt := range newTris {
		byFirst[m.tris[nt].v[1]] = nt
	}
	for _, nt := range newTris {
		w := m.tris[nt].v[2]
		// The triangle whose boundary edge starts at w follows nt
		// counterclockwise; they share edge (p,w).
		next, ok := byFirst[w]
		if !ok {
			return 0, fmt.Errorf("mesh: broken cavity ring inserting (%g,%g)", p.X, p.Y)
		}
		// In nt = (p,u,w): edge opposite v[1]=u is (w,p) → adj[1] = next.
		// In next = (p,w,x): edge opposite v[2]=x is (p,w) → adj[2] = nt.
		m.tris[nt].adj[1] = next
		m.tris[next].adj[2] = nt
	}
	m.last = newTris[0]
	return int(vi) - 3, nil
}

// alloc places t in a free slot or appends, returning its index.
func (m *Mesh) alloc(t tri) int32 {
	if n := len(m.freed); n > 0 {
		idx := m.freed[n-1]
		m.freed = m.freed[:n-1]
		m.tris[idx] = t
		return idx
	}
	m.tris = append(m.tris, t)
	return int32(len(m.tris) - 1)
}

// locate finds a live triangle containing p by walking from the last
// touched triangle, falling back to a linear scan.
func (m *Mesh) locate(p geom.Point) (int32, error) {
	t := m.last
	if t < 0 || int(t) >= len(m.tris) || !m.tris[t].alive {
		t = m.anyLive()
		if t < 0 {
			return -1, fmt.Errorf("mesh: empty triangulation")
		}
	}
	for steps := 0; steps < 4*len(m.tris)+16; steps++ {
		tv := m.tris[t].v
		moved := false
		for i := 0; i < 3; i++ {
			a := m.pts[tv[(i+1)%3]]
			b := m.pts[tv[(i+2)%3]]
			if geom.Orient(a, b, p) < 0 {
				nb := m.tris[t].adj[i]
				if nb < 0 {
					break // outside hull; containing triangle search fails below
				}
				t = nb
				moved = true
				break
			}
		}
		if !moved {
			return t, nil
		}
	}
	// Walk got stuck (numerically or outside hull): exhaustive search.
	for i := range m.tris {
		if !m.tris[i].alive {
			continue
		}
		tv := m.tris[i].v
		a, b, c := m.pts[tv[0]], m.pts[tv[1]], m.pts[tv[2]]
		if geom.Orient(a, b, p) >= 0 && geom.Orient(b, c, p) >= 0 && geom.Orient(c, a, p) >= 0 {
			return int32(i), nil
		}
	}
	return -1, fmt.Errorf("mesh: point (%g,%g) not inside any triangle", p.X, p.Y)
}

func (m *Mesh) anyLive() int32 {
	for i := range m.tris {
		if m.tris[i].alive {
			return int32(i)
		}
	}
	return -1
}

// Triangles returns the live real triangles (those not touching the
// super-triangle), as triples of real vertex indices.
func (m *Mesh) Triangles() [][3]int32 {
	var out [][3]int32
	for i := range m.tris {
		if !m.tris[i].alive {
			continue
		}
		tv := m.tris[i].v
		if tv[0] < 3 || tv[1] < 3 || tv[2] < 3 {
			continue
		}
		out = append(out, [3]int32{tv[0] - 3, tv[1] - 3, tv[2] - 3})
	}
	return out
}

// Graph returns the node-adjacency graph of the mesh: one unit-weight
// vertex per mesh point, one unit-weight edge per triangulation edge
// (super-triangle edges excluded).
func (m *Mesh) Graph() *graph.Graph {
	g := graph.NewWithVertices(m.NumVertices())
	for i := range m.tris {
		if !m.tris[i].alive {
			continue
		}
		tv := m.tris[i].v
		for e := 0; e < 3; e++ {
			u, w := tv[e], tv[(e+1)%3]
			if u < 3 || w < 3 {
				continue
			}
			gu, gw := u-3, w-3
			if gu < gw {
				// Triangles share edges: a single duplicate scan, not two.
				g.AddEdgeIfAbsent(gu, gw, 1)
			}
		}
	}
	return g
}

// UpdateGraph extends g (a graph previously produced by Graph on an
// earlier state of this mesh) in place so it matches the current mesh:
// new vertices are appended and the edge set is reconciled (edges flipped
// away by later insertions are removed, new ones added). This preserves
// vertex identities across refinements — the property incremental
// repartitioning depends on.
func (m *Mesh) UpdateGraph(g *graph.Graph) error {
	for g.Order() < m.NumVertices() {
		g.AddVertex(1)
	}
	// wantList keeps the triangle-scan discovery order so the edges
	// added below land in a deterministic adjacency order (ranging over
	// the map made refined graphs differ run to run).
	want := make(map[[2]int32]bool)
	var wantList [][2]int32
	for i := range m.tris {
		if !m.tris[i].alive {
			continue
		}
		tv := m.tris[i].v
		for e := 0; e < 3; e++ {
			u, w := tv[e], tv[(e+1)%3]
			if u < 3 || w < 3 {
				continue
			}
			gu, gw := u-3, w-3
			if gu > gw {
				gu, gw = gw, gu
			}
			if !want[[2]int32{gu, gw}] {
				want[[2]int32{gu, gw}] = true
				wantList = append(wantList, [2]int32{gu, gw})
			}
		}
	}
	// Remove stale edges.
	for _, v := range g.Vertices() {
		for _, u := range append([]graph.Vertex(nil), g.Neighbors(v)...) {
			if v < u && !want[[2]int32{v, u}] {
				if err := g.RemoveEdge(v, u); err != nil {
					return err
				}
			}
		}
	}
	// Add missing edges. A failed insert that is not a duplicate means the
	// graph has drifted from the mesh (e.g. a caller removed a vertex the
	// mesh still triangulates) — surface that instead of dropping edges.
	for _, e := range wantList {
		if !g.AddEdgeIfAbsent(e[0], e[1], 1) && !g.HasEdge(e[0], e[1]) {
			return fmt.Errorf("mesh: update graph: cannot add edge {%d,%d}", e[0], e[1])
		}
	}
	return nil
}

// Validate checks triangulation invariants: adjacency symmetry, the
// Delaunay empty-circumcircle property (sampled), and counterclockwise
// orientation.
func (m *Mesh) Validate(rng *rand.Rand, samples int) error {
	for i := range m.tris {
		if !m.tris[i].alive {
			continue
		}
		tv := m.tris[i].v
		if geom.Orient(m.pts[tv[0]], m.pts[tv[1]], m.pts[tv[2]]) <= 0 {
			return fmt.Errorf("mesh: triangle %d not counterclockwise", i)
		}
		for e := 0; e < 3; e++ {
			nb := m.tris[i].adj[e]
			if nb < 0 {
				continue
			}
			if !m.tris[nb].alive {
				return fmt.Errorf("mesh: triangle %d adjacent to dead %d", i, nb)
			}
			back := false
			for be := 0; be < 3; be++ {
				if m.tris[nb].adj[be] == int32(i) {
					back = true
				}
			}
			if !back {
				return fmt.Errorf("mesh: asymmetric adjacency %d↔%d", i, nb)
			}
		}
	}
	// Sampled empty-circumcircle checks.
	live := make([]int32, 0, len(m.tris))
	for i := range m.tris {
		if m.tris[i].alive {
			live = append(live, int32(i))
		}
	}
	for s := 0; s < samples && len(live) > 0 && len(m.pts) > 4; s++ {
		t := live[rng.Intn(len(live))]
		tv := m.tris[t].v
		p := m.pts[3+rng.Intn(len(m.pts)-3)]
		if p == m.pts[tv[0]] || p == m.pts[tv[1]] || p == m.pts[tv[2]] {
			continue
		}
		if geom.InCircumcircle(m.pts[tv[0]], m.pts[tv[1]], m.pts[tv[2]], p) {
			return fmt.Errorf("mesh: Delaunay violation at triangle %d", t)
		}
	}
	return nil
}
