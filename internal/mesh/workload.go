package mesh

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/graph"
)

// Generator builds meshes with controllable size and localized
// refinements, standing in for the paper's DIME environment.
type Generator struct {
	rng  *rand.Rand
	mesh *Mesh
}

// NewGenerator builds a base mesh of approximately n vertices from a
// jittered-grid point set (even spacing like a real unstructured mesh,
// irregular like Fig. 10's test graphs). The construction is
// deterministic for a given seed.
func NewGenerator(n int, seed int64) (*Generator, error) {
	if n < 4 {
		return nil, fmt.Errorf("mesh: generator needs n ≥ 4, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	side := int(math.Round(math.Sqrt(float64(n))))
	if side < 2 {
		side = 2
	}
	pts := make([]geom.Point, 0, n)
	for i := 0; len(pts) < n; i++ {
		r := i / side
		c := i % side
		if r >= side {
			// Grid exhausted before n points (rounding): sprinkle randomly.
			pts = append(pts, geom.Point{X: rng.Float64(), Y: rng.Float64()})
			continue
		}
		jx := (rng.Float64() - 0.5) * 0.72
		jy := (rng.Float64() - 0.5) * 0.72
		pts = append(pts, geom.Point{
			X: (float64(c) + 0.5 + jx) / float64(side),
			Y: (float64(r) + 0.5 + jy) / float64(side),
		})
	}
	m, err := NewDelaunay(pts)
	if err != nil {
		return nil, err
	}
	return &Generator{rng: rng, mesh: m}, nil
}

// Mesh returns the underlying mesh.
func (g *Generator) Mesh() *Mesh { return g.mesh }

// RefineDisk inserts count new vertices inside the disk around center,
// each at the centroid of an existing triangle whose centroid lies in the
// disk (DIME-style localized h-refinement). It retries with jitter on
// numerically degenerate insertions and returns the ids of the new
// vertices.
func (g *Generator) RefineDisk(center geom.Point, radius float64, count int) ([]int, error) {
	added := make([]int, 0, count)
	for len(added) < count {
		// Pick the triangle with the largest circumradius among those in
		// the disk, so refinement stays smooth like a real mesher.
		tris := g.mesh.Triangles()
		bestArea := -1.0
		var bestC geom.Point
		for _, t := range tris {
			a := g.mesh.Point(int(t[0]))
			b := g.mesh.Point(int(t[1]))
			c := g.mesh.Point(int(t[2]))
			cen := geom.Centroid(a, b, c)
			if cen.Dist(center) > radius {
				continue
			}
			area := math.Abs(geom.Orient(a, b, c))
			if area > bestArea {
				bestArea = area
				bestC = cen
			}
		}
		if bestArea < 0 {
			return added, fmt.Errorf("mesh: no triangle inside refinement disk (center %v radius %g)", center, radius)
		}
		p := bestC
		var vid int
		var err error
		for attempt := 0; attempt < 8; attempt++ {
			vid, err = g.mesh.Insert(p)
			if err == nil {
				break
			}
			p = geom.Point{
				X: bestC.X + (g.rng.Float64()-0.5)*1e-6,
				Y: bestC.Y + (g.rng.Float64()-0.5)*1e-6,
			}
		}
		if err != nil {
			return added, fmt.Errorf("mesh: refine insert failed: %w", err)
		}
		added = append(added, vid)
	}
	return added, nil
}

// Step is one element of an incremental-mesh sequence.
type Step struct {
	// Graph is the node-adjacency graph after this step. Vertex ids are
	// stable across steps (earlier vertices keep their identifiers).
	Graph *graph.Graph
	// NewVertices counts vertices added relative to the previous step.
	NewVertices int
}

// Sequence is a base mesh graph plus a chain of refinements, mirroring the
// paper's experimental setups.
type Sequence struct {
	// Base is the initial mesh graph (the paper's Fig. 10 / Fig. 12).
	Base *graph.Graph
	// Points are the final mesh coordinates (useful for the RCB baseline);
	// prefixes correspond to earlier steps.
	Points []geom.Point
	// Steps are the successive refined graphs.
	Steps []Step
	// Chained reports whether each step refines the previous one (set A)
	// or the base (set B).
	Chained bool
}

// GenerateChained builds a base mesh of ~baseN vertices and a chain of
// localized refinements of the given sizes (each refining the previous
// mesh in a drifting hotspot), like the paper's mesh-A sequence
// 1071→1096→1121→1152→1192.
func GenerateChained(baseN int, growth []int, seed int64) (*Sequence, error) {
	gen, err := NewGenerator(baseN, seed)
	if err != nil {
		return nil, err
	}
	seq := &Sequence{Base: gen.mesh.Graph(), Chained: true}
	// Hotspot drifts slowly around a fixed anchor, keeping refinements
	// localized but not identical.
	anchor := geom.Point{X: 0.31, Y: 0.62}
	cur := seq.Base.Clone()
	for i, k := range growth {
		center := geom.Point{
			X: anchor.X + 0.08*math.Cos(float64(i)*1.1),
			Y: anchor.Y + 0.08*math.Sin(float64(i)*1.1),
		}
		if _, err := gen.RefineDisk(center, 0.16, k); err != nil {
			return nil, err
		}
		if err := gen.mesh.UpdateGraph(cur); err != nil {
			return nil, err
		}
		seq.Steps = append(seq.Steps, Step{Graph: cur.Clone(), NewVertices: k})
	}
	seq.Points = gen.mesh.Points()
	return seq, nil
}

// GenerateFanOut builds a base mesh of ~baseN vertices and several
// *independent* refinements of the base of the given sizes (the paper's
// mesh-B setup: 10166 + 48/139/229/672 nodes, each partitioned from the
// same base partitioning).
func GenerateFanOut(baseN int, growth []int, seed int64) (*Sequence, error) {
	seq := &Sequence{Chained: false}
	for i, k := range growth {
		gen, err := NewGenerator(baseN, seed) // same seed → identical base
		if err != nil {
			return nil, err
		}
		if i == 0 {
			seq.Base = gen.mesh.Graph()
		}
		base := gen.mesh.Graph()
		center := geom.Point{X: 0.68, Y: 0.33}
		// Radius grows with the refinement size so large refinements stay
		// feasible (enough triangles inside the disk to split smoothly).
		radius := 0.10 + 0.12*math.Sqrt(float64(k)/float64(baseN)*8)
		if _, err := gen.RefineDisk(center, radius, k); err != nil {
			return nil, err
		}
		if err := gen.mesh.UpdateGraph(base); err != nil {
			return nil, err
		}
		seq.Steps = append(seq.Steps, Step{Graph: base, NewVertices: k})
		if i == len(growth)-1 {
			seq.Points = gen.mesh.Points()
		}
	}
	return seq, nil
}

// PaperSequenceA reproduces the shape of the paper's first test set: a
// ~1071-vertex mesh refined four times by +25, +25, +31, +40 vertices in a
// localized area.
func PaperSequenceA(seed int64) (*Sequence, error) {
	return GenerateChained(1071, []int{25, 25, 31, 40}, seed)
}

// PaperSequenceB reproduces the shape of the paper's second test set: a
// ~10166-vertex mesh with four independent refinements of +48, +139,
// +229, +672 vertices.
func PaperSequenceB(seed int64) (*Sequence, error) {
	return GenerateFanOut(10166, []int{48, 139, 229, 672}, seed)
}
