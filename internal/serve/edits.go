package serve

import (
	"encoding/json"
	"fmt"

	igp "repro"
)

// EditOp names one graph mutation a client can submit.
type EditOp string

// The edit operations a session accepts. AttachVertex is the
// adaptive-mesh growth shape: it adds one new vertex and hooks it to up
// to two existing vertices in a single op, so a client can grow the
// graph without having to learn the new vertex id first.
const (
	OpAddVertex       EditOp = "add_vertex"        // add an isolated vertex (Weight, 0 = 1)
	OpAttachVertex    EditOp = "attach_vertex"     // add a vertex with edges to U (and V ≥ 0) of weight Weight (0 = 1)
	OpRemoveVertex    EditOp = "remove_vertex"     // remove vertex U and its edges
	OpAddEdge         EditOp = "add_edge"          // add edge {U,V} of weight Weight (0 = 1)
	OpRemoveEdge      EditOp = "remove_edge"       // remove edge {U,V}
	OpSetVertexWeight EditOp = "set_vertex_weight" // set U's weight to Weight
)

// Edit is one graph mutation inside an edit-submission request. The
// fields' meaning depends on Op; see the op constants. V is -1 (or
// omitted in JSON, where the zero value 0 is only valid where a vertex
// id is expected) when unused.
type Edit struct {
	Op     EditOp  `json:"op"`
	U      int     `json:"u"`
	V      int     `json:"v"`
	Weight float64 `json:"weight,omitempty"`
}

// UnmarshalJSON decodes an edit with V defaulting to -1 (unused), so an
// omitted "v" field never silently means vertex 0.
func (e *Edit) UnmarshalJSON(b []byte) error {
	type wire Edit
	w := wire{V: -1}
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*e = Edit(w)
	return nil
}

// ApplyEdit applies one edit to g, returning an error (and mutating
// nothing) when the edit is invalid against the graph's current state.
// The serve session and the coalescing-equivalence tests share this
// exact function, so "the session applied the batch" and "the edits
// were applied directly" can never drift apart.
func ApplyEdit(g *igp.Graph, e Edit) error {
	w := e.Weight
	if w == 0 {
		w = 1
	}
	switch e.Op {
	case OpAddVertex:
		g.AddVertex(w)
		return nil
	case OpAttachVertex:
		u := igp.Vertex(e.U)
		if !g.Alive(u) {
			return fmt.Errorf("serve: attach_vertex: u=%d is not a live vertex", e.U)
		}
		v := igp.Vertex(e.V)
		if e.V >= 0 && !g.Alive(v) {
			return fmt.Errorf("serve: attach_vertex: v=%d is not a live vertex", e.V)
		}
		nv := g.AddVertex(w)
		g.AddEdgeIfAbsent(nv, u, w)
		if e.V >= 0 && v != u {
			g.AddEdgeIfAbsent(nv, v, w)
		}
		return nil
	case OpRemoveVertex:
		return g.RemoveVertex(igp.Vertex(e.U))
	case OpAddEdge:
		return g.AddEdge(igp.Vertex(e.U), igp.Vertex(e.V), w)
	case OpRemoveEdge:
		return g.RemoveEdge(igp.Vertex(e.U), igp.Vertex(e.V))
	case OpSetVertexWeight:
		u := igp.Vertex(e.U)
		if !g.Alive(u) {
			return fmt.Errorf("serve: set_vertex_weight: u=%d is not a live vertex", e.U)
		}
		g.SetVertexWeight(u, e.Weight)
		return nil
	default:
		return fmt.Errorf("serve: unknown edit op %q", e.Op)
	}
}

// applyEdits applies a request's edits in order, stopping at (and
// returning) the first invalid one. Edits before the failure stay
// applied — the graph is always left in a consistent state, and the
// next repartition absorbs whatever was applied.
func applyEdits(g *igp.Graph, edits []Edit) (applied int, err error) {
	for _, e := range edits {
		if err := ApplyEdit(g, e); err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}
