package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	igp "repro"
)

// request is one admitted edit submission waiting in a session queue.
type request struct {
	ctx     context.Context
	edits   []Edit
	resp    chan result // buffered(1): the session's single response never blocks
	enq     time.Time
	editErr error // first invalid edit, set during batch application
	applied int   // edits applied before the failure (all of them on success)
}

type result struct {
	resp *Response
	err  error
}

// Response answers one served edit submission.
type Response struct {
	// Version is the assignment version the request's batch produced;
	// GET /graphs/{id}/assignment at this version (or later) reflects
	// the request's edits.
	Version uint64 `json:"version"`
	// Metrics is the per-request observability record.
	Metrics RequestMetrics `json:"metrics"`
}

// Session is one long-lived partitioning session: a graph, its
// assignment, and a warm igp.Engine, owned by a single goroutine that
// applies edit batches and runs repartitions — so the engine's
// arena-owned results never race and every concurrent client sees one
// serialized edit stream. Clients talk to it only through Server.Submit
// and the snapshot accessors.
type Session struct {
	id  string
	srv *Server

	// Owned by the run goroutine (and the constructor, which
	// happens-before it).
	g      *igp.Graph
	a      *igp.Assignment
	eng    *igp.Engine
	events int // observer event count; bumped on the run goroutine via the engine observer

	// Admission gate: enqueue checks closed and performs the bounded,
	// non-blocking queue send under mu, so a closing session can drain
	// deterministically — after closed is set no new request can slip
	// into the queue.
	mu     sync.Mutex
	closed bool
	queue  chan *request

	stop     chan struct{} // closed by Server.Close / DropGraph
	stopOnce sync.Once
	done     chan struct{} // closed when the run goroutine has fully shut down

	// Published assignment snapshot, readable without touching the
	// engine: the run goroutine copies the assignment out of the
	// session-owned arrays after every successful repartition.
	pubMu     sync.RWMutex
	version   uint64
	p         int
	published []int32

	batchBuf []*request
	liveBuf  []*request
}

// ID returns the session's graph id.
func (s *Session) ID() string { return s.id }

// Assignment returns the published assignment snapshot: its version
// (bumped by every successful repartition), the partition count, and a
// copy of the per-vertex partition ids (index = vertex id; -1 =
// unassigned/dead slot).
func (s *Session) Assignment() (version uint64, p int, parts []int32) {
	s.pubMu.RLock()
	defer s.pubMu.RUnlock()
	return s.version, s.p, append([]int32(nil), s.published...)
}

// publish copies the current assignment into the published snapshot and
// bumps the version. Run-goroutine only.
func (s *Session) publish() {
	s.pubMu.Lock()
	s.version++
	s.p = s.a.P
	s.published = append(s.published[:0], s.a.Part...)
	s.pubMu.Unlock()
}

// enqueue admits r into the session queue, shedding with ErrQueueFull
// when the bounded queue is at capacity and ErrSessionClosed once the
// session is shutting down.
func (s *Session) enqueue(r *request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	select {
	case s.queue <- r:
		return nil
	default:
		return ErrQueueFull
	}
}

// run is the session goroutine: wait for a request, coalesce the burst
// behind it into one batch, process it with a single warm repartition,
// repeat. Idle eviction and server shutdown both land here, so the
// engine is always closed on the goroutine that owns it.
func (s *Session) run() {
	defer close(s.done)
	var (
		idleC <-chan time.Time
		idle  *time.Timer
	)
	if d := s.srv.cfg.IdleTimeout; d > 0 {
		idle = time.NewTimer(d)
		defer idle.Stop()
		idleC = idle.C
	}
	for {
		select {
		case r := <-s.queue:
			batch := s.collect(r)
			s.process(batch)
			if idle != nil {
				if !idle.Stop() {
					select {
					case <-idle.C:
					default:
					}
				}
				idle.Reset(s.srv.cfg.IdleTimeout)
			}
		case <-idleC:
			s.shutdown()
			return
		case <-s.stop:
			s.shutdown()
			return
		}
	}
}

// collect coalesces the burst behind first into one batch: up to
// BatchSize requests, waiting at most MaxWait after the first arrival
// for stragglers (MaxWait 0 drains only what is already queued). The
// returned slice is the session's reused batch arena.
func (s *Session) collect(first *request) []*request {
	batch := append(s.batchBuf[:0], first)
	size := s.srv.cfg.batchSize()
	if size <= 1 {
		s.batchBuf = batch
		return batch
	}
	if s.srv.cfg.MaxWait <= 0 {
		for len(batch) < size {
			select {
			case r := <-s.queue:
				batch = append(batch, r)
			default:
				s.batchBuf = batch
				return batch
			}
		}
		s.batchBuf = batch
		return batch
	}
	timer := time.NewTimer(s.srv.cfg.MaxWait)
	defer timer.Stop()
	for len(batch) < size {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
		case <-timer.C:
			s.batchBuf = batch
			return batch
		case <-s.stop:
			// Shutting down: process what we have, the next loop
			// iteration drains and closes.
			s.batchBuf = batch
			return batch
		}
	}
	s.batchBuf = batch
	return batch
}

// process serves one coalesced batch: shed already-expired requests,
// apply every live request's edits to the graph (one journal window),
// run a single warm repartition under the batch's merged deadline, then
// answer every request. A deadline abort maps to the typed ErrDeadline
// with the assignment left valid — applied edits stay in the graph and
// the next batch's repartition absorbs them, so shedding never
// corrupts the session.
func (s *Session) process(batch []*request) {
	start := time.Now()
	live := s.liveBuf[:0]
	for _, r := range batch {
		if r.ctx.Err() != nil {
			s.srv.metrics.shedDeadline.Add(1)
			s.respond(r, nil, fmt.Errorf("%w: %v", ErrDeadline, context.Cause(r.ctx)))
			continue
		}
		live = append(live, r)
	}
	s.liveBuf = live
	if len(live) == 0 {
		return
	}

	batchEdits := 0
	for _, r := range live {
		r.applied, r.editErr = applyEdits(s.g, r.edits)
		batchEdits += r.applied
	}

	ctx, cancel := batchContext(live)
	eventsBefore := s.events
	st, err := s.eng.Repartition(ctx, s.a)
	cancel()
	s.srv.metrics.observeBatch(len(live))
	s.srv.metrics.editsApplied.Add(int64(batchEdits))
	if err != nil {
		if errors.Is(err, igp.ErrCanceled) {
			// Deadline hit mid-repartition: the assignment is valid (the
			// engine never aborts mid-move), just not rebalanced yet.
			s.srv.metrics.shedDeadline.Add(int64(len(live)))
			for _, r := range live {
				s.respond(r, nil, fmt.Errorf("%w: %v", ErrDeadline, err))
			}
			return
		}
		for _, r := range live {
			s.respond(r, nil, fmt.Errorf("serve: repartition: %w", err))
		}
		return
	}

	// Clone detaches the record from the engine arena (the arena is
	// overwritten by the next batch, and Close releases it).
	stats := st.Clone()
	s.publish()
	for _, r := range live {
		if r.editErr != nil {
			s.respond(r, nil, fmt.Errorf("serve: edit %d rejected: %w", r.applied, r.editErr))
			continue
		}
		resp := &Response{
			Version: s.version,
			Metrics: RequestMetrics{
				QueueWait:      start.Sub(r.enq),
				BatchSize:      len(live),
				BatchEdits:     batchEdits,
				Repartition:    stats.Elapsed,
				Assign:         stats.PhaseTimings.Assign,
				Layer:          stats.PhaseTimings.Layer,
				Balance:        stats.PhaseTimings.Balance,
				Refine:         stats.PhaseTimings.Refine,
				Stages:         stats.Stages,
				LPIterations:   stats.LPIterations,
				NewAssigned:    stats.NewAssigned,
				Moved:          stats.BalanceMoved + stats.RefineMoved,
				CSRPatched:     stats.CSRPatched,
				CutIncremental: stats.CutIncremental,
				Events:         s.events - eventsBefore,
				CutAfter:       stats.CutAfter.TotalWeight,
			},
		}
		s.respond(r, resp, nil)
	}
}

// batchContext merges the batch's request deadlines into the engine
// context: the repartition gets the latest deadline across the batch —
// it serves every coalesced request, so it may run as long as the most
// patient one allows — and no deadline at all if any request has none.
func batchContext(live []*request) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, r := range live {
		d, ok := r.ctx.Deadline()
		if !ok {
			return context.WithCancel(context.Background())
		}
		if d.After(latest) {
			latest = d
		}
	}
	return context.WithDeadline(context.Background(), latest)
}

// respond delivers the request's single response and releases its
// global in-flight slot. Exactly one respond call happens per admitted
// request — from process, the expired pre-check, or the shutdown drain.
func (s *Session) respond(r *request, resp *Response, err error) {
	if err == nil {
		s.srv.metrics.served.Add(1)
		s.srv.metrics.latency.observe(time.Since(r.enq))
	} else if !isShed(err) {
		s.srv.metrics.failed.Add(1)
	}
	r.resp <- result{resp, err}
	s.srv.release()
}

// shutdown ends the session: no new requests can enter (closed is set
// under mu), everything still queued is answered with ErrSessionClosed,
// the engine session is closed (releasing its arenas and LP bases
// deterministically), and the session leaves the pool.
func (s *Session) shutdown() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	for {
		select {
		case r := <-s.queue:
			s.respond(r, nil, ErrSessionClosed)
		default:
			s.eng.Close()
			s.srv.remove(s.id)
			return
		}
	}
}

// signalStop asks the run goroutine to shut down (idempotent).
func (s *Session) signalStop() {
	s.stopOnce.Do(func() { close(s.stop) })
}
