// Package loadgen drives an igpserve instance over real HTTP: it
// creates a pool of graph sessions, hammers them with concurrent edit
// submissions, and reports latency quantiles, throughput, and the shed
// ledger. It is the workload behind `igpbench -table serve`, the
// `igpserve -smoke` self-check, and the CI serve job.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Options shapes one load-generation run.
type Options struct {
	// BaseURL is the igpserve root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Sessions is the number of graph sessions created and driven
	// (default 1).
	Sessions int
	// Workers is the number of concurrent submitters (default 4). Each
	// worker round-robins across the sessions with its own seeded rng.
	Workers int
	// Requests is the number of submissions per worker (default 50).
	// When Duration > 0 it is ignored and workers run until the clock
	// expires.
	Requests int
	// Duration, when > 0, bounds the run by wall clock instead of a
	// request count.
	Duration time.Duration
	// EditsPerRequest is the size of each submission's edit list
	// (default 4): a mix of vertex-weight updates and attach_vertex
	// growth, the adaptive-mesh shape.
	EditsPerRequest int
	// TimeoutMS, when > 0, attaches a per-request deadline so the run
	// also exercises deadline shedding.
	TimeoutMS int
	// MeshN and P shape each session's graph (defaults 400 and 8).
	MeshN int
	P     int
	// Seed makes the workload reproducible.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Sessions < 1 {
		o.Sessions = 1
	}
	if o.Workers < 1 {
		o.Workers = 4
	}
	if o.Requests < 1 {
		o.Requests = 50
	}
	if o.EditsPerRequest < 1 {
		o.EditsPerRequest = 4
	}
	if o.MeshN < 1 {
		o.MeshN = 400
	}
	if o.P < 2 {
		o.P = 8
	}
	return o
}

// Result is the run's ledger: every submission is attempted + exactly
// one of served/shed/failed, with latency quantiles over the served
// ones.
type Result struct {
	Sessions int   `json:"sessions"`
	Workers  int   `json:"workers"`
	Requests int64 `json:"requests"`
	Served   int64 `json:"served"`
	// Shed counts typed admission-control rejections (HTTP 429/504/410)
	// — expected under overload, never a correctness failure.
	Shed int64 `json:"shed"`
	// Failed counts everything else: transport errors and non-2xx
	// statuses outside the shed set. A healthy run has zero.
	Failed  int64         `json:"failed"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// Latency quantiles over served requests (submit to response).
	P50 time.Duration `json:"p50_ns"`
	P90 time.Duration `json:"p90_ns"`
	P99 time.Duration `json:"p99_ns"`
	// Throughput is served requests per second.
	Throughput float64 `json:"rps"`
}

type graphInfo struct {
	ID       string `json:"id"`
	Vertices int    `json:"n"`
}

// Run executes one load generation against opts.BaseURL and returns
// the aggregate result. The created sessions are left in place (the
// server owns their lifecycle; idle eviction or shutdown reclaims
// them).
func Run(opts Options) (Result, error) {
	opts = opts.withDefaults()
	client := &http.Client{}

	sessions := make([]graphInfo, opts.Sessions)
	for i := range sessions {
		info, err := createGraph(client, opts.BaseURL, opts.MeshN, opts.Seed+int64(i), opts.P)
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: create session %d: %w", i, err)
		}
		sessions[i] = info
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		res       = Result{Sessions: opts.Sessions, Workers: opts.Workers}
	)
	deadline := time.Time{}
	if opts.Duration > 0 {
		deadline = time.Now().Add(opts.Duration)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed*1000 + int64(w)))
			var mine []time.Duration
			var attempted, served, shed, failed int64
			for i := 0; ; i++ {
				if deadline.IsZero() {
					if i >= opts.Requests {
						break
					}
				} else if time.Now().After(deadline) {
					break
				}
				sess := sessions[(w+i)%len(sessions)]
				body := editsBody(rng, sess.Vertices, opts.EditsPerRequest, opts.TimeoutMS)
				attempted++
				t0 := time.Now()
				status, err := postEdits(client, opts.BaseURL, sess.ID, body)
				d := time.Since(t0)
				switch {
				case err != nil:
					failed++
				case status == http.StatusOK:
					served++
					mine = append(mine, d)
				case status == http.StatusTooManyRequests,
					status == http.StatusGatewayTimeout,
					status == http.StatusGone:
					shed++
				default:
					failed++
				}
			}
			mu.Lock()
			res.Requests += attempted
			res.Served += served
			res.Shed += shed
			res.Failed += failed
			latencies = append(latencies, mine...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		at := func(q float64) time.Duration {
			return latencies[int(q*float64(len(latencies)-1))]
		}
		res.P50, res.P90, res.P99 = at(0.50), at(0.90), at(0.99)
	}
	if s := res.Elapsed.Seconds(); s > 0 {
		res.Throughput = float64(res.Served) / s
	}
	return res, nil
}

func createGraph(client *http.Client, base string, meshN int, seed int64, p int) (graphInfo, error) {
	spec := fmt.Sprintf(`{"mesh_n": %d, "seed": %d, "p": %d}`, meshN, seed, p)
	resp, err := client.Post(base+"/graphs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		return graphInfo{}, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return graphInfo{}, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var info graphInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return graphInfo{}, err
	}
	return info, nil
}

// editsBody builds one submission: mostly vertex-weight churn with some
// attach_vertex growth, all against the session's original vertices so
// every edit is valid regardless of interleaving.
func editsBody(rng *rand.Rand, n int, edits, timeoutMS int) []byte {
	var b bytes.Buffer
	b.WriteString(`{"edits": [`)
	for i := 0; i < edits; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		if rng.Intn(4) == 0 {
			fmt.Fprintf(&b, `{"op": "attach_vertex", "u": %d, "v": %d}`, rng.Intn(n), rng.Intn(n))
		} else {
			fmt.Fprintf(&b, `{"op": "set_vertex_weight", "u": %d, "weight": %.3f}`, rng.Intn(n), 1+rng.Float64()*3)
		}
	}
	b.WriteString(`]`)
	if timeoutMS > 0 {
		fmt.Fprintf(&b, `, "timeout_ms": %d`, timeoutMS)
	}
	b.WriteString(`}`)
	return b.Bytes()
}

func postEdits(client *http.Client, base, id string, body []byte) (int, error) {
	resp, err := client.Post(base+"/graphs/"+id+"/edits", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// Metrics fetches the server's /metrics snapshot as raw JSON fields
// (the caller picks what it needs without importing the serve package).
func Metrics(baseURL string) (map[string]json.Number, error) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m map[string]json.Number
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	if err := dec.Decode(&m); err != nil {
		return nil, err
	}
	return m, nil
}
