package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// Handler returns the server's HTTP/JSON API:
//
//	POST   /graphs                  create a session       (GraphSpec → GraphInfo)
//	POST   /graphs/{id}/edits       submit an edit batch   (editsRequest → Response)
//	GET    /graphs/{id}/assignment  read the assignment    (assignmentReply)
//	DELETE /graphs/{id}             evict the session
//	GET    /metrics                 server-wide counters   (MetricsSnapshot)
//
// Shed responses use distinct status codes so clients can back off
// correctly: 429 for queue/in-flight sheds (retry later), 504 for
// deadline sheds (the edits may already be applied; poll the
// assignment version), 410 for a session that closed mid-request.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /graphs", s.handleCreate)
	mux.HandleFunc("POST /graphs/{id}/edits", s.handleEdits)
	mux.HandleFunc("GET /graphs/{id}/assignment", s.handleAssignment)
	mux.HandleFunc("DELETE /graphs/{id}", s.handleDrop)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// editsRequest is the POST /graphs/{id}/edits body. TimeoutMS > 0 sets
// the request deadline (merged across the batch into the repartition's
// context); 0 means no deadline.
type editsRequest struct {
	Edits     []Edit `json:"edits"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// assignmentReply is the GET /graphs/{id}/assignment body. Parts[v] is
// vertex v's partition id (-1 = unassigned or dead slot).
type assignmentReply struct {
	Version uint64  `json:"version"`
	P       int     `json:"p"`
	Parts   []int32 `json:"parts"`
}

type errorReply struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps the typed service errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNoGraph):
		code = http.StatusNotFound
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverloaded):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDeadline):
		code = http.StatusGatewayTimeout
	case errors.Is(err, ErrSessionClosed), errors.Is(err, ErrServerClosed):
		code = http.StatusGone
	}
	writeJSON(w, code, errorReply{Error: err.Error()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec GraphSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "bad graph spec: " + err.Error()})
		return
	}
	info, err := s.CreateGraph(r.Context(), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleEdits(w http.ResponseWriter, r *http.Request) {
	var req editsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "bad edits request: " + err.Error()})
		return
	}
	if len(req.Edits) == 0 {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "no edits"})
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	resp, err := s.Submit(ctx, r.PathValue("id"), req.Edits)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAssignment(w http.ResponseWriter, r *http.Request) {
	sess, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	version, p, parts := sess.Assignment()
	writeJSON(w, http.StatusOK, assignmentReply{Version: version, P: p, Parts: parts})
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	if err := s.DropGraph(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
