package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHTTPRoundTrip drives the full JSON API over a real listener:
// create → edits → assignment → metrics → delete, plus the typed-error
// status mapping for the interesting failure shapes.
func TestHTTPRoundTrip(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path string, body any) (*http.Response, []byte) {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// Create a session.
	resp, body := post("/graphs", GraphSpec{MeshN: 200, Seed: 3, P: 4})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d, body %s", resp.StatusCode, body)
	}
	var info GraphInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("create reply: %v", err)
	}
	if info.ID == "" || info.P != 4 || info.Version != 1 {
		t.Fatalf("create reply: %+v", info)
	}

	// Submit edits; an omitted "v" must decode as -1 (unused), not
	// vertex 0 — attach_vertex with only "u" adds exactly one edge.
	resp, body = post("/graphs/"+info.ID+"/edits", map[string]any{
		"edits": []map[string]any{
			{"op": "attach_vertex", "u": 5},
			{"op": "set_vertex_weight", "u": 7, "weight": 2.5},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edits: status %d, body %s", resp.StatusCode, body)
	}
	var er Response
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("edits reply: %v", err)
	}
	if er.Version < 2 || er.Metrics.BatchEdits < 2 {
		t.Fatalf("edits reply: %+v", er)
	}

	// Assignment reflects the grown graph (one vertex added).
	resp, body = get("/graphs/" + info.ID + "/assignment")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assignment: status %d", resp.StatusCode)
	}
	var ar assignmentReply
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("assignment reply: %v", err)
	}
	if ar.Version != er.Version || ar.P != 4 || len(ar.Parts) != info.Vertices+1 {
		t.Fatalf("assignment reply: version=%d p=%d len=%d (want version=%d p=4 len=%d)",
			ar.Version, ar.P, len(ar.Parts), er.Version, info.Vertices+1)
	}

	// Metrics report the serve ledger.
	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var ms MetricsSnapshot
	if err := json.Unmarshal(body, &ms); err != nil {
		t.Fatalf("metrics reply: %v", err)
	}
	if ms.RequestsServed < 1 || ms.GraphsCreated != 1 || ms.SessionsActive != 1 {
		t.Fatalf("metrics reply: %+v", ms)
	}

	// Typed-error status mapping.
	if resp, _ := post("/graphs/nope/edits", map[string]any{"edits": []map[string]any{{"op": "add_vertex"}}}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := post("/graphs/"+info.ID+"/edits", map[string]any{"edits": []map[string]any{}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty edits: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := post("/graphs", GraphSpec{MeshN: 100, P: 1}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad p: status %d, want 400", resp.StatusCode)
	}

	// A timeout_ms that has no chance sheds with 504 and leaves the
	// session healthy for the next request.
	resp, _ = post("/graphs/"+info.ID+"/edits", map[string]any{
		"edits":      []map[string]any{{"op": "add_vertex"}},
		"timeout_ms": 0, // 0 = no deadline; exercise the knob parse path
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no-deadline edits: status %d", resp.StatusCode)
	}

	// Delete, then every path 404s/410s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/"+info.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", dresp.StatusCode)
	}
	if resp, _ := get("/graphs/" + info.ID + "/assignment"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("assignment after delete: status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPEditDecodeDefaults locks the wire contract of Edit.V: an
// omitted "v" decodes as -1, an explicit 0 stays 0.
func TestHTTPEditDecodeDefaults(t *testing.T) {
	var e Edit
	if err := json.Unmarshal([]byte(`{"op":"attach_vertex","u":3}`), &e); err != nil {
		t.Fatal(err)
	}
	if e.V != -1 {
		t.Fatalf("omitted v = %d, want -1", e.V)
	}
	if err := json.Unmarshal([]byte(`{"op":"add_edge","u":3,"v":0}`), &e); err != nil {
		t.Fatal(err)
	}
	if e.V != 0 {
		t.Fatalf("explicit v=0 decoded as %d", e.V)
	}
	var fromOp Edit
	if err := json.Unmarshal([]byte(fmt.Sprintf(`{"op":%q,"u":1}`, OpRemoveVertex)), &fromOp); err != nil {
		t.Fatal(err)
	}
	if fromOp.Op != OpRemoveVertex {
		t.Fatalf("op round-trip: %q", fromOp.Op)
	}
}
