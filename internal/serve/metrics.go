package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RequestMetrics is the per-request observability record returned with
// every served edit submission. It is built on the session goroutine
// from the engine's Stats (deep-copied via Stats.Clone, so nothing here
// aliases the engine's arenas) plus the batching layer's own counters —
// the flat, JSON-ready shape a latency dashboard wants.
type RequestMetrics struct {
	// QueueWait is how long the request sat in the session queue before
	// its batch started processing.
	QueueWait time.Duration `json:"queue_wait_ns"`
	// BatchSize is the number of requests coalesced into the single
	// warm repartition that answered this one.
	BatchSize int `json:"batch_size"`
	// BatchEdits is the number of edits the coalesced batch applied.
	BatchEdits int `json:"batch_edits"`
	// Repartition is the engine wall clock of the batch's repartition.
	Repartition time.Duration `json:"repartition_ns"`
	// Per-phase breakdown of the repartition (Stats.PhaseTimings).
	Assign  time.Duration `json:"assign_ns"`
	Layer   time.Duration `json:"layer_ns"`
	Balance time.Duration `json:"balance_ns"`
	Refine  time.Duration `json:"refine_ns"`
	// Stages, LPIterations, NewAssigned and Moved summarize the
	// pipeline's work; CSRPatched/CutIncremental report the delta
	// shortcuts taken.
	Stages         int `json:"stages"`
	LPIterations   int `json:"lp_iterations"`
	NewAssigned    int `json:"new_assigned"`
	Moved          int `json:"moved"`
	CSRPatched     int `json:"csr_patched"`
	CutIncremental int `json:"cut_incremental"`
	// Events is the number of observer events the engine streamed
	// during the batch's repartition (phase spans, ε stages, refinement
	// rounds) — the WithObserver feed rolled up per request.
	Events int `json:"events"`
	// CutAfter is the total cut weight after the repartition.
	CutAfter float64 `json:"cut_after"`
}

// latencyRing keeps the most recent request latencies for quantile
// reports: a fixed-capacity ring so /metrics stays O(1) memory no
// matter how long the server lives.
type latencyRing struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	full bool
}

const latencyRingCap = 8192

func (r *latencyRing) observe(d time.Duration) {
	r.mu.Lock()
	if r.buf == nil {
		r.buf = make([]time.Duration, latencyRingCap)
	}
	r.buf[r.next] = d
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// quantiles returns the p50/p90/p99 of the retained window (zeros when
// empty).
func (r *latencyRing) quantiles() (p50, p90, p99 time.Duration) {
	r.mu.Lock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	window := append([]time.Duration(nil), r.buf[:n]...)
	r.mu.Unlock()
	if len(window) == 0 {
		return 0, 0, 0
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(window)-1))
		return window[i]
	}
	return at(0.50), at(0.90), at(0.99)
}

// serverMetrics is the server-wide counter set. Everything is atomic:
// session goroutines and HTTP handlers bump counters without sharing
// locks with the serving path.
type serverMetrics struct {
	graphs        atomic.Int64
	admitted      atomic.Int64
	served        atomic.Int64
	failed        atomic.Int64
	shedQueueFull atomic.Int64
	shedOverload  atomic.Int64
	shedDeadline  atomic.Int64
	repartitions  atomic.Int64
	coalesced     atomic.Int64
	editsApplied  atomic.Int64
	maxBatch      atomic.Int64
	latency       latencyRing
}

func (m *serverMetrics) observeBatch(size int) {
	m.repartitions.Add(1)
	if size > 1 {
		m.coalesced.Add(1)
	}
	for {
		cur := m.maxBatch.Load()
		if int64(size) <= cur || m.maxBatch.CompareAndSwap(cur, int64(size)) {
			return
		}
	}
}

// MetricsSnapshot is the /metrics view: a consistent-enough copy of the
// server-wide counters plus latency quantiles over the recent window.
type MetricsSnapshot struct {
	GraphsCreated  int64 `json:"graphs_created"`
	SessionsActive int   `json:"sessions_active"`
	// Admission outcomes. Admitted = requests that entered a session
	// queue; the three shed counters are the typed rejections.
	RequestsAdmitted int64 `json:"requests_admitted"`
	RequestsServed   int64 `json:"requests_served"`
	RequestsFailed   int64 `json:"requests_failed"`
	ShedQueueFull    int64 `json:"shed_queue_full"`
	ShedOverloaded   int64 `json:"shed_overloaded"`
	ShedDeadline     int64 `json:"shed_deadline"`
	// Coalescing evidence: RepartitionsRun counts engine repartitions
	// (including each session's priming call), CoalescedBatches the
	// batches that answered more than one request. A bursty workload
	// shows RequestsServed well above RepartitionsRun.
	RepartitionsRun  int64 `json:"repartitions_run"`
	CoalescedBatches int64 `json:"coalesced_batches"`
	EditsApplied     int64 `json:"edits_applied"`
	MaxBatchSize     int64 `json:"max_batch_size"`
	// End-to-end request latency quantiles (enqueue to response) over
	// the most recent window of served requests.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP90 time.Duration `json:"latency_p90_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
}

func (m *serverMetrics) snapshot(sessions int) MetricsSnapshot {
	p50, p90, p99 := m.latency.quantiles()
	return MetricsSnapshot{
		GraphsCreated:    m.graphs.Load(),
		SessionsActive:   sessions,
		RequestsAdmitted: m.admitted.Load(),
		RequestsServed:   m.served.Load(),
		RequestsFailed:   m.failed.Load(),
		ShedQueueFull:    m.shedQueueFull.Load(),
		ShedOverloaded:   m.shedOverload.Load(),
		ShedDeadline:     m.shedDeadline.Load(),
		RepartitionsRun:  m.repartitions.Load(),
		CoalescedBatches: m.coalesced.Load(),
		EditsApplied:     m.editsApplied.Load(),
		MaxBatchSize:     m.maxBatch.Load(),
		LatencyP50:       p50,
		LatencyP90:       p90,
		LatencyP99:       p99,
	}
}
