// Package serve is the deployment shape of the repartitioning engine: a
// long-lived service that multiplexes many concurrent partitioning
// sessions, one per graph, in front of the igp library.
//
// The three load-bearing ideas:
//
//   - Engine-session pool. Each graph id owns a Session — a graph, its
//     assignment, and a warm igp.Engine — driven by a single goroutine,
//     so the engine's single-threaded contract and arena-owned results
//     never meet concurrency. Idle sessions are evicted deterministically
//     via igp's Engine.Close.
//
//   - Edit coalescing. Bursts of edit submissions against one graph are
//     merged into a single batch (up to Config.BatchSize requests,
//     waiting at most Config.MaxWait for stragglers): all their edits
//     land in one journal window and are answered by ONE warm
//     Repartition — the graph's edit journal makes the merged window
//     exactly as cheap as the sum of its edits, so coalescing turns k
//     bursty requests into one edit-proportional repair.
//
//   - Admission control. Per-session queues are bounded (ErrQueueFull),
//     a global in-flight cap sheds excess concurrent load
//     (ErrOverloaded), and request deadlines ride the engine's context
//     cancellation: a batch that overruns its merged deadline aborts
//     with igp.ErrCanceled, which maps to the typed ErrDeadline — the
//     assignment stays valid and the session keeps serving.
//
// HTTP/JSON bindings live in http.go; cmd/igpserve is the binary.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	igp "repro"
)

// The typed admission-control outcomes. Clients distinguish shed load
// (retryable: ErrQueueFull, ErrOverloaded, ErrDeadline) from hard
// failures by errors.Is.
var (
	// ErrQueueFull sheds a request because its session's bounded queue
	// is at capacity.
	ErrQueueFull = errors.New("serve: session queue full")
	// ErrOverloaded sheds a request because the server-wide in-flight
	// cap is reached.
	ErrOverloaded = errors.New("serve: server overloaded")
	// ErrDeadline sheds a request whose deadline expired before or
	// during its batch's repartition. The session stays healthy: edits
	// already applied are absorbed by the next repartition.
	ErrDeadline = errors.New("serve: request deadline exceeded")
	// ErrSessionClosed reports a request against a session that is
	// shutting down (evicted, dropped, or server close).
	ErrSessionClosed = errors.New("serve: session closed")
	// ErrNoGraph reports an unknown graph id.
	ErrNoGraph = errors.New("serve: no such graph")
	// ErrServerClosed reports a request against a closed server.
	ErrServerClosed = errors.New("serve: server closed")
)

// isShed reports whether err is an admission-control outcome rather
// than a hard failure.
func isShed(err error) bool {
	return errors.Is(err, ErrQueueFull) || errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrDeadline) || errors.Is(err, ErrSessionClosed)
}

// Config tunes the server. The zero value is usable: every knob has a
// production-shaped default.
type Config struct {
	// BatchSize is the maximum number of requests coalesced into one
	// warm repartition (default 32, minimum 1).
	BatchSize int
	// MaxWait bounds how long a batch waits for stragglers after its
	// first request arrives. 0 coalesces only what is already queued
	// (no added latency); the default is 2ms.
	MaxWait time.Duration
	// QueueDepth bounds each session's request queue; a full queue
	// sheds with ErrQueueFull (default 64).
	QueueDepth int
	// MaxInFlight caps admitted-but-unanswered requests server-wide;
	// past it requests shed with ErrOverloaded (default 1024).
	MaxInFlight int
	// IdleTimeout evicts a session (closing its engine) after this long
	// without requests. 0 = never evict.
	IdleTimeout time.Duration
	// EngineOptions configures every session's engine (solver,
	// parallelism, refinement, tolerance, …). The server installs its
	// own WithObserver to feed per-request metrics; do not pass one.
	EngineOptions []igp.Option
}

func (c Config) batchSize() int {
	if c.BatchSize < 1 {
		return 32
	}
	return c.BatchSize
}

func (c Config) queueDepth() int {
	if c.QueueDepth < 1 {
		return 64
	}
	return c.QueueDepth
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight < 1 {
		return 1024
	}
	return c.MaxInFlight
}

// withDefaults resolves the zero-value knobs once, at New.
func (c Config) withDefaults() Config {
	c.BatchSize = c.batchSize()
	c.QueueDepth = c.queueDepth()
	c.MaxInFlight = c.maxInFlight()
	if c.MaxWait == 0 {
		c.MaxWait = 2 * time.Millisecond
	} else if c.MaxWait < 0 {
		c.MaxWait = 0 // explicit "drain-only" coalescing
	}
	return c
}

// Server is the partitioning service: a pool of engine sessions keyed
// by graph id, with coalescing and admission control. Create with New;
// all methods are safe for concurrent use.
type Server struct {
	cfg      Config
	inflight chan struct{}
	metrics  serverMetrics

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool
	nextID   atomic.Uint64
}

// New returns a Server with cfg's knobs (zero values = defaults; a
// negative MaxWait selects drain-only coalescing with no added wait).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		inflight: make(chan struct{}, cfg.MaxInFlight),
		sessions: make(map[string]*Session),
	}
}

// GraphSpec describes the graph a session is created over: either a
// DIME-style mesh (MeshN > 0, deterministic in Seed) or an explicit
// vertex/edge list. P is the partition count.
type GraphSpec struct {
	MeshN    int      `json:"mesh_n,omitempty"`
	Seed     int64    `json:"seed,omitempty"`
	Vertices int      `json:"vertices,omitempty"`
	Edges    [][2]int `json:"edges,omitempty"`
	P        int      `json:"p"`
}

// GraphInfo describes a created session.
type GraphInfo struct {
	ID       string `json:"id"`
	Vertices int    `json:"n"`
	Edges    int    `json:"m"`
	P        int    `json:"p"`
	Version  uint64 `json:"version"`
}

// buildGraph materializes the spec.
func buildGraph(spec GraphSpec) (*igp.Graph, error) {
	switch {
	case spec.MeshN > 0:
		return igp.NewMeshGraph(spec.MeshN, spec.Seed)
	case spec.Vertices > 0:
		g := igp.NewGraphWithVertices(spec.Vertices)
		for _, e := range spec.Edges {
			if err := g.AddEdge(igp.Vertex(e[0]), igp.Vertex(e[1]), 1); err != nil {
				return nil, fmt.Errorf("serve: graph spec: %w", err)
			}
		}
		return g, nil
	default:
		return nil, fmt.Errorf("serve: graph spec: need mesh_n > 0 or vertices > 0")
	}
}

// CreateGraph builds the spec'd graph, partitions it from scratch with
// RSB, primes a fresh engine session with one repartition (bounded by
// ctx), and registers the session in the pool. The priming call pays
// the engine's first full snapshot build, so the session's first edit
// batch is already warm.
func (s *Server) CreateGraph(ctx context.Context, spec GraphSpec) (GraphInfo, error) {
	if spec.P < 2 {
		return GraphInfo{}, fmt.Errorf("serve: graph spec: p must be ≥ 2, got %d", spec.P)
	}
	g, err := buildGraph(spec)
	if err != nil {
		return GraphInfo{}, err
	}
	if g.NumVertices() < spec.P {
		return GraphInfo{}, fmt.Errorf("serve: graph spec: %d vertices for p=%d partitions", g.NumVertices(), spec.P)
	}
	a, err := igp.PartitionRSB(g, spec.P, spec.Seed)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("serve: initial partition: %w", err)
	}

	id := fmt.Sprintf("g%d", s.nextID.Add(1))
	sess := &Session{
		id:    id,
		srv:   s,
		g:     g,
		a:     a,
		queue: make(chan *request, s.cfg.QueueDepth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	opts := append(append([]igp.Option(nil), s.cfg.EngineOptions...),
		igp.WithObserver(func(igp.Event) { sess.events++ }))
	eng, err := igp.NewEngine(g, opts...)
	if err != nil {
		return GraphInfo{}, err
	}
	sess.eng = eng
	if _, err := eng.Repartition(ctx, a); err != nil {
		eng.Close()
		return GraphInfo{}, fmt.Errorf("serve: priming repartition: %w", err)
	}
	s.metrics.repartitions.Add(1)
	sess.publish()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		eng.Close()
		return GraphInfo{}, ErrServerClosed
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.metrics.graphs.Add(1)
	go sess.run()
	return GraphInfo{
		ID:       id,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		P:        a.P,
		Version:  1,
	}, nil
}

// Session looks up a live session by graph id.
func (s *Server) Session(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrServerClosed
	}
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoGraph, id)
	}
	return sess, nil
}

// Submit sends one edit request to graph id's session and waits for its
// batch's repartition (or a shed). The context carries the request
// deadline: it is checked while the request queues, and the batch's
// repartition runs under the merged deadline of its requests, so an
// expiry before or during the solve sheds with the typed ErrDeadline
// while the session (and its assignment) stays healthy.
//
// Admission is two-staged and non-blocking: the server-wide in-flight
// cap sheds with ErrOverloaded, the session's bounded queue with
// ErrQueueFull. A caller that stops waiting (ctx done) gets ErrDeadline
// immediately; its request is still answered internally, releasing the
// in-flight slot when the session reaches it.
func (s *Server) Submit(ctx context.Context, id string, edits []Edit) (*Response, error) {
	sess, err := s.Session(id)
	if err != nil {
		return nil, err
	}
	select {
	case s.inflight <- struct{}{}:
	default:
		s.metrics.shedOverload.Add(1)
		return nil, ErrOverloaded
	}
	r := &request{ctx: ctx, edits: edits, resp: make(chan result, 1), enq: time.Now()}
	if err := sess.enqueue(r); err != nil {
		s.release()
		if errors.Is(err, ErrQueueFull) {
			s.metrics.shedQueueFull.Add(1)
		}
		return nil, err
	}
	s.metrics.admitted.Add(1)
	select {
	case res := <-r.resp:
		return res.resp, res.err
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %v", ErrDeadline, context.Cause(ctx))
	}
}

// release frees one global in-flight slot.
func (s *Server) release() { <-s.inflight }

// remove unregisters a session (called by the session's own shutdown).
func (s *Server) remove(id string) {
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
}

// DropGraph evicts graph id's session: queued requests are answered
// with ErrSessionClosed and the engine is closed. It returns once the
// session has fully shut down.
func (s *Server) DropGraph(id string) error {
	sess, err := s.Session(id)
	if err != nil {
		return err
	}
	sess.signalStop()
	<-sess.done
	return nil
}

// Close shuts the server down: every session drains (in-flight batches
// finish, queued requests answer ErrSessionClosed) and closes its
// engine. Close returns once all session goroutines have exited; it is
// idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.signalStop()
	}
	for _, sess := range sessions {
		<-sess.done
	}
}

// Metrics returns a snapshot of the server-wide counters and latency
// quantiles.
func (s *Server) Metrics() MetricsSnapshot {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	return s.metrics.snapshot(n)
}
