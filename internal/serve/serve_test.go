package serve

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	igp "repro"
)

// editScript builds a deterministic burst of edit requests against a
// mesh with n0 original vertices. It only uses ops that stay valid no
// matter how the batch is ordered around them (attach_vertex and
// set_vertex_weight against original vertices, which nothing removes).
func editScript(n0, nreq, perReq int, seed int64) [][]Edit {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([][]Edit, nreq)
	for i := range reqs {
		edits := make([]Edit, perReq)
		for j := range edits {
			if rng.Intn(2) == 0 {
				edits[j] = Edit{
					Op: OpAttachVertex,
					U:  rng.Intn(n0),
					V:  rng.Intn(n0),
				}
			} else {
				edits[j] = Edit{
					Op:     OpSetVertexWeight,
					U:      rng.Intn(n0),
					Weight: 1 + rng.Float64()*3,
				}
			}
		}
		reqs[i] = edits
	}
	return reqs
}

// submitDeterministic injects a burst into sess in a fixed order,
// bypassing Server.Submit so the batch's request order (and therefore
// the order edits hit the graph) is reproducible. It acquires the
// global in-flight slot each request, exactly as Submit would.
func submitDeterministic(t *testing.T, srv *Server, sess *Session, reqs [][]Edit) []*request {
	t.Helper()
	out := make([]*request, len(reqs))
	for i, edits := range reqs {
		select {
		case srv.inflight <- struct{}{}:
		default:
			t.Fatal("in-flight cap hit during deterministic submit")
		}
		r := &request{
			ctx:   context.Background(),
			edits: edits,
			resp:  make(chan result, 1),
			enq:   time.Now(),
		}
		if err := sess.enqueue(r); err != nil {
			t.Fatalf("enqueue request %d: %v", i, err)
		}
		out[i] = r
	}
	return out
}

// TestCoalescingEquivalence is the subsystem's correctness anchor: a
// coalesced batch of edit requests must produce exactly the assignment
// that applying the same edits and running one warm Repartition on a
// private engine produces. It also checks the issue's acceptance
// metric: the server serves more requests than it runs repartitions.
func TestCoalescingEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		meshN  int
		seed   int64
		p      int
		nreq   int
		perReq int
		opts   []igp.Option
	}{
		{name: "mesh300_p4", meshN: 300, seed: 7, p: 4, nreq: 8, perReq: 5},
		{name: "mesh500_p8_refine", meshN: 500, seed: 21, p: 8, nreq: 6, perReq: 9,
			opts: []igp.Option{igp.WithRefine()}},
		{name: "mesh200_p4_batches", meshN: 200, seed: 3, p: 4, nreq: 5, perReq: 3,
			opts: []igp.Option{igp.WithBatches(2)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := New(Config{
				BatchSize:     tc.nreq,
				MaxWait:       time.Minute, // collect blocks until the whole burst is in
				EngineOptions: tc.opts,
			})
			defer srv.Close()

			info, err := srv.CreateGraph(context.Background(), GraphSpec{MeshN: tc.meshN, Seed: tc.seed, P: tc.p})
			if err != nil {
				t.Fatalf("CreateGraph: %v", err)
			}
			sess, err := srv.Session(info.ID)
			if err != nil {
				t.Fatalf("Session: %v", err)
			}

			reqs := editScript(info.Vertices, tc.nreq, tc.perReq, tc.seed*1000+1)
			pending := submitDeterministic(t, srv, sess, reqs)
			for i, r := range pending {
				res := <-r.resp
				if res.err != nil {
					t.Fatalf("request %d: %v", i, res.err)
				}
				if res.resp.Version != 2 {
					t.Fatalf("request %d: version = %d, want 2 (one coalesced batch after priming)", i, res.resp.Version)
				}
				if res.resp.Metrics.BatchSize != tc.nreq {
					t.Fatalf("request %d: batch size = %d, want %d (burst fully coalesced)", i, res.resp.Metrics.BatchSize, tc.nreq)
				}
			}

			// Private-engine replay: same graph, same initial partition,
			// same priming call, then the same edits in the same order and
			// ONE warm repartition.
			g2, err := igp.NewMeshGraph(tc.meshN, tc.seed)
			if err != nil {
				t.Fatalf("replay mesh: %v", err)
			}
			a2, err := igp.PartitionRSB(g2, tc.p, tc.seed)
			if err != nil {
				t.Fatalf("replay RSB: %v", err)
			}
			eng2, err := igp.NewEngine(g2, tc.opts...)
			if err != nil {
				t.Fatalf("replay engine: %v", err)
			}
			defer eng2.Close()
			if _, err := eng2.Repartition(context.Background(), a2); err != nil {
				t.Fatalf("replay priming: %v", err)
			}
			for _, edits := range reqs {
				for _, e := range edits {
					if err := ApplyEdit(g2, e); err != nil {
						t.Fatalf("replay edit: %v", err)
					}
				}
			}
			if _, err := eng2.Repartition(context.Background(), a2); err != nil {
				t.Fatalf("replay warm repartition: %v", err)
			}

			version, p, parts := sess.Assignment()
			if version != 2 || p != tc.p {
				t.Fatalf("session snapshot: version=%d p=%d, want version=2 p=%d", version, p, tc.p)
			}
			if len(parts) != len(a2.Part) {
				t.Fatalf("assignment length: session %d, replay %d", len(parts), len(a2.Part))
			}
			for v := range parts {
				if parts[v] != a2.Part[v] {
					t.Fatalf("vertex %d: session part %d != replay part %d", v, parts[v], a2.Part[v])
				}
			}

			snap := srv.Metrics()
			if snap.RequestsServed != int64(tc.nreq) {
				t.Fatalf("served = %d, want %d", snap.RequestsServed, tc.nreq)
			}
			// The acceptance check: coalescing means strictly fewer
			// repartitions (priming + 1 batch) than requests served.
			if snap.RepartitionsRun >= snap.RequestsServed {
				t.Fatalf("repartitions (%d) >= served (%d): coalescing had no effect", snap.RepartitionsRun, snap.RequestsServed)
			}
			if snap.RepartitionsRun != 2 {
				t.Fatalf("repartitions = %d, want 2 (priming + one coalesced batch)", snap.RepartitionsRun)
			}
			if snap.CoalescedBatches != 1 || snap.MaxBatchSize != int64(tc.nreq) {
				t.Fatalf("coalesced=%d maxBatch=%d, want 1 and %d", snap.CoalescedBatches, snap.MaxBatchSize, tc.nreq)
			}
		})
	}
}

// checkHealthy submits a fresh edit through the public path and
// requires a successful, valid response — the probe that a shed left
// the session serving.
func checkHealthy(t *testing.T, srv *Server, id string) {
	t.Helper()
	resp, err := srv.Submit(context.Background(), id, []Edit{{Op: OpSetVertexWeight, U: 0, Weight: 2}})
	if err != nil {
		t.Fatalf("follow-up submit after shed: %v", err)
	}
	sess, err := srv.Session(id)
	if err != nil {
		t.Fatalf("session after shed: %v", err)
	}
	version, p, parts := sess.Assignment()
	if version < resp.Version {
		t.Fatalf("published version %d behind response version %d", version, resp.Version)
	}
	for v, part := range parts {
		if part < -1 || int(part) >= p {
			t.Fatalf("vertex %d: part %d out of range for p=%d", v, part, p)
		}
	}
}

// TestDeadlineShedsLeaveSessionHealthy drives the deadline paths: a
// request whose context is already done is shed with the typed
// ErrDeadline (never a hard failure), and the session keeps serving
// afterwards — including when the deadline lands mid-repartition.
func TestDeadlineShedsLeaveSessionHealthy(t *testing.T) {
	srv := New(Config{MaxWait: -1}) // drain-only: each request is its own batch
	defer srv.Close()
	info, err := srv.CreateGraph(context.Background(), GraphSpec{MeshN: 400, Seed: 5, P: 8})
	if err != nil {
		t.Fatalf("CreateGraph: %v", err)
	}

	edits := []Edit{{Op: OpAttachVertex, U: 1, V: 2}}

	// Pre-canceled context: deterministic shed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Submit(ctx, info.ID, edits); !errors.Is(err, ErrDeadline) {
		t.Fatalf("canceled submit: err = %v, want ErrDeadline", err)
	}
	checkHealthy(t, srv, info.ID)

	// Expired deadline: deterministic shed via the same typed error.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	if _, err := srv.Submit(ctx2, info.ID, edits); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired submit: err = %v, want ErrDeadline", err)
	}
	checkHealthy(t, srv, info.ID)

	// Tight-but-live deadlines: walk them down until one lands
	// mid-repartition (igp.ErrCanceled → ErrDeadline). Outcomes may be
	// success on a fast machine; every failure must be the typed shed
	// and must leave the session healthy.
	shed := false
	for _, d := range []time.Duration{2 * time.Millisecond, 500 * time.Microsecond, 50 * time.Microsecond} {
		grow := make([]Edit, 40)
		for i := range grow {
			grow[i] = Edit{Op: OpAttachVertex, U: i, V: i + 1}
		}
		ctx, cancel := context.WithTimeout(context.Background(), d)
		_, err := srv.Submit(ctx, info.ID, grow)
		cancel()
		if err != nil {
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("deadline %v: err = %v, want ErrDeadline", d, err)
			}
			shed = true
		}
		checkHealthy(t, srv, info.ID)
	}
	_ = shed // best-effort: the deterministic sheds above are the contract

	snap := srv.Metrics()
	if snap.RequestsFailed != 0 {
		t.Fatalf("failed = %d, want 0 (deadline sheds are not failures)", snap.RequestsFailed)
	}
}

// TestAdmissionControl exercises both shed stages deterministically:
// the global in-flight cap (ErrOverloaded) and the bounded session
// queue (ErrQueueFull), plus the closed-session refusal.
func TestAdmissionControl(t *testing.T) {
	t.Run("in-flight cap", func(t *testing.T) {
		srv := New(Config{MaxInFlight: 1})
		defer srv.Close()
		info, err := srv.CreateGraph(context.Background(), GraphSpec{MeshN: 100, Seed: 1, P: 2})
		if err != nil {
			t.Fatalf("CreateGraph: %v", err)
		}
		srv.inflight <- struct{}{} // occupy the only slot
		_, err = srv.Submit(context.Background(), info.ID, []Edit{{Op: OpAddVertex}})
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("submit past cap: err = %v, want ErrOverloaded", err)
		}
		if got := srv.Metrics().ShedOverloaded; got != 1 {
			t.Fatalf("shed_overloaded = %d, want 1", got)
		}
		srv.release()
		if _, err := srv.Submit(context.Background(), info.ID, []Edit{{Op: OpAddVertex}}); err != nil {
			t.Fatalf("submit after slot freed: %v", err)
		}
	})

	t.Run("queue full", func(t *testing.T) {
		// A bare session whose run goroutine never starts: the queue
		// fills deterministically.
		sess := &Session{queue: make(chan *request, 1)}
		r := func() *request { return &request{resp: make(chan result, 1)} }
		if err := sess.enqueue(r()); err != nil {
			t.Fatalf("first enqueue: %v", err)
		}
		if err := sess.enqueue(r()); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("second enqueue: err = %v, want ErrQueueFull", err)
		}
		sess.mu.Lock()
		sess.closed = true
		sess.mu.Unlock()
		if err := sess.enqueue(r()); !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("enqueue after close: err = %v, want ErrSessionClosed", err)
		}
	})
}

// TestInvalidEditRejected: a request carrying an invalid edit gets a
// per-request error, prior edits in the request stay applied (the
// documented always-consistent contract), and the session keeps
// serving other requests.
func TestInvalidEditRejected(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	info, err := srv.CreateGraph(context.Background(), GraphSpec{MeshN: 150, Seed: 9, P: 2})
	if err != nil {
		t.Fatalf("CreateGraph: %v", err)
	}
	_, err = srv.Submit(context.Background(), info.ID, []Edit{
		{Op: OpSetVertexWeight, U: 0, Weight: 5},
		{Op: "bogus_op"},
	})
	if err == nil || !strings.Contains(err.Error(), "edit 1 rejected") {
		t.Fatalf("invalid edit: err = %v, want 'edit 1 rejected'", err)
	}
	if isShed(err) {
		t.Fatalf("invalid edit classified as shed: %v", err)
	}
	checkHealthy(t, srv, info.ID)
	if got := srv.Metrics().RequestsFailed; got != 1 {
		t.Fatalf("failed = %d, want 1", got)
	}
}

// TestIdleEviction: a session with an idle timeout evicts itself,
// closing its engine and leaving the pool; later requests see
// ErrNoGraph.
func TestIdleEviction(t *testing.T) {
	srv := New(Config{IdleTimeout: 20 * time.Millisecond})
	defer srv.Close()
	info, err := srv.CreateGraph(context.Background(), GraphSpec{MeshN: 100, Seed: 2, P: 2})
	if err != nil {
		t.Fatalf("CreateGraph: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := srv.Session(info.ID); errors.Is(err, ErrNoGraph) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session not evicted after idle timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := srv.Submit(context.Background(), info.ID, []Edit{{Op: OpAddVertex}}); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("submit after eviction: err = %v, want ErrNoGraph", err)
	}
	if got := srv.Metrics().SessionsActive; got != 0 {
		t.Fatalf("sessions_active = %d, want 0", got)
	}
}

// TestDropAndClose: explicit eviction and server shutdown both drain
// deterministically and refuse new work with typed errors.
func TestDropAndClose(t *testing.T) {
	srv := New(Config{})
	info1, err := srv.CreateGraph(context.Background(), GraphSpec{MeshN: 100, Seed: 1, P: 2})
	if err != nil {
		t.Fatalf("CreateGraph 1: %v", err)
	}
	info2, err := srv.CreateGraph(context.Background(), GraphSpec{MeshN: 100, Seed: 2, P: 2})
	if err != nil {
		t.Fatalf("CreateGraph 2: %v", err)
	}
	if err := srv.DropGraph(info1.ID); err != nil {
		t.Fatalf("DropGraph: %v", err)
	}
	if _, err := srv.Session(info1.ID); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("dropped session lookup: err = %v, want ErrNoGraph", err)
	}
	if _, err := srv.Submit(context.Background(), info2.ID, []Edit{{Op: OpAddVertex}}); err != nil {
		t.Fatalf("submit to surviving session: %v", err)
	}
	srv.Close()
	srv.Close() // idempotent
	if _, err := srv.Submit(context.Background(), info2.ID, nil); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("submit after close: err = %v, want ErrServerClosed", err)
	}
	if _, err := srv.CreateGraph(context.Background(), GraphSpec{MeshN: 100, Seed: 3, P: 2}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("create after close: err = %v, want ErrServerClosed", err)
	}
}

// TestConcurrentSubmitters hammers one session from many goroutines
// (the -race workhorse) and checks the coalescing ledger afterwards:
// every request is answered exactly once, and served requests exceed
// repartitions run.
func TestConcurrentSubmitters(t *testing.T) {
	srv := New(Config{BatchSize: 16, MaxWait: 5 * time.Millisecond, EngineOptions: []igp.Option{igp.WithRefine()}})
	defer srv.Close()
	info, err := srv.CreateGraph(context.Background(), GraphSpec{MeshN: 600, Seed: 13, P: 8})
	if err != nil {
		t.Fatalf("CreateGraph: %v", err)
	}
	const workers, perWorker = 8, 10
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				_, err := srv.Submit(context.Background(), info.ID, []Edit{
					{Op: OpSetVertexWeight, U: rng.Intn(info.Vertices), Weight: 1 + rng.Float64()},
				})
				errs <- err
			}
		}(w)
	}
	for i := 0; i < workers*perWorker; i++ {
		if err := <-errs; err != nil && !isShed(err) {
			t.Fatalf("concurrent submit: %v", err)
		}
	}
	snap := srv.Metrics()
	if snap.RequestsServed == 0 {
		t.Fatal("no requests served")
	}
	if snap.RequestsServed+snap.ShedQueueFull+snap.ShedOverloaded+snap.ShedDeadline+snap.RequestsFailed < workers*perWorker {
		t.Fatalf("request ledger short: %+v", snap)
	}
	if snap.RepartitionsRun >= snap.RequestsServed+1 { // +1 priming headroom
		t.Fatalf("repartitions (%d) not below served (%d): coalescing had no effect", snap.RepartitionsRun, snap.RequestsServed)
	}
}
