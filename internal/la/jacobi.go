package la

import (
	"fmt"
	"math"
)

// Jacobi diagonalizes the dense symmetric matrix a (given as full square
// rows; only the upper triangle is read) with the cyclic Jacobi rotation
// method. It returns the eigenvalues in ascending order and the matching
// unit eigenvectors as rows of vecs (vecs[k] is the eigenvector for
// vals[k]).
//
// Jacobi is O(n³) per sweep and is intended for small matrices: it serves
// as the oracle that validates the Lanczos/QL pipeline and solves the tiny
// projected systems that arise in tests.
func Jacobi(a [][]float64) (vals []float64, vecs [][]float64, err error) {
	n := len(a)
	for i := range a {
		if len(a[i]) != n {
			return nil, nil, fmt.Errorf("la: jacobi: row %d has length %d, want %d", i, len(a[i]), n)
		}
	}
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	// v starts as identity; rows accumulate rotations applied on the right,
	// maintained so that v * m * v^T stays equal to the original matrix...
	// We maintain columns of the classical V (m = V^T A V); storing V
	// row-major as v[i][j] = V_{ij}.
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-24*float64(n*n) {
			return extractEigen(m, v)
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-300 {
					continue
				}
				// Compute the Jacobi rotation zeroing m[p][q].
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation to rows/cols p and q of m.
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				// Accumulate into eigenvector matrix (columns of V).
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	return extractEigen(m, v)
}

func extractEigen(m, v [][]float64) ([]float64, [][]float64, error) {
	n := len(m)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i][i]
	}
	// Sort ascending, permuting eigenvector columns accordingly.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort: n is small
		for j := i; j > 0 && vals[idx[j]] < vals[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortedVals := make([]float64, n)
	vecs := make([][]float64, n)
	for k, j := range idx {
		sortedVals[k] = vals[j]
		vec := make([]float64, n)
		for i := 0; i < n; i++ {
			vec[i] = v[i][j]
		}
		vecs[k] = vec
	}
	return sortedVals, vecs, nil
}
