package la

import (
	"math"

	"repro/internal/par"
)

// laParMin is the minimum vector length worth forking: below two blocks
// there is at most one shard boundary and the fork overhead dominates.
const laParMin = 2 * laBlock

// Workers shards the reduction-heavy vector kernels over a fork-join
// group. Dot and Norm2 assign whole laBlock-sized blocks to workers and
// record per-block partials that the caller merges in ascending block
// order — exactly the association the sequential kernels use — so every
// worker count (including a nil *Workers or Procs <= 1, which run the
// package-level kernels inline) produces bit-identical results. Axpy
// and Scale are element-owned and trivially deterministic.
//
// A Workers is not safe for concurrent use; it is per-solve scratch.
type Workers struct {
	// Group is the fork-join group to run on (nil = a private group).
	Group *par.Group
	// Procs is the worker count; <= 1 runs the sequential kernels.
	Procs int

	own    par.Group
	shards []par.Range
	dotP   []float64
	scaleP []float64
	ssqP   []float64
	task   vecTask
}

func (w *Workers) group() *par.Group {
	if w.Group != nil {
		return w.Group
	}
	return &w.own
}

// fork reports whether a kernel over n elements should shard. Safe on a
// nil receiver (sequential fallback).
func (w *Workers) fork(n int) bool {
	return w != nil && w.Procs > 1 && n >= laParMin
}

func (w *Workers) growPartials(nb int) {
	if cap(w.dotP) < nb {
		w.dotP = make([]float64, nb)
		w.scaleP = make([]float64, nb)
		w.ssqP = make([]float64, nb)
	}
	w.dotP = w.dotP[:nb]
	w.scaleP = w.scaleP[:nb]
	w.ssqP = w.ssqP[:nb]
}

const (
	opDot = iota
	opNorm2
	opAxpy
	opScale
)

// vecTask is the reusable task frame for every sharded vector kernel.
// For opDot/opNorm2 the shards cover block indices; for opAxpy/opScale
// they cover element indices.
type vecTask struct {
	w  *Workers
	op int
	a  float64
	x  []float64
	y  []float64
}

func (t *vecTask) Do(wk int) {
	w := t.w
	r := w.shards[wk]
	switch t.op {
	case opDot:
		for b := r.Lo; b < r.Hi; b++ {
			lo := b * laBlock
			w.dotP[b] = dotRange(t.x, t.y, lo, min(lo+laBlock, len(t.x)))
		}
	case opNorm2:
		for b := r.Lo; b < r.Hi; b++ {
			lo := b * laBlock
			w.scaleP[b], w.ssqP[b] = norm2Range(t.x, lo, min(lo+laBlock, len(t.x)))
		}
	case opAxpy:
		for i := r.Lo; i < r.Hi; i++ {
			t.y[i] += t.a * t.x[i]
		}
	case opScale:
		for i := r.Lo; i < r.Hi; i++ {
			t.x[i] *= t.a
		}
	}
}

// Dot is the sharded Dot: per-block partials merged in ascending block
// order, bit-identical to the sequential kernel.
func (w *Workers) Dot(x, y []float64) float64 {
	if !w.fork(len(x)) {
		return Dot(x, y)
	}
	nb := (len(x) + laBlock - 1) / laBlock
	w.shards = par.Split(w.shards[:0], nb, w.Procs)
	w.growPartials(nb)
	w.task = vecTask{w: w, op: opDot, x: x, y: y}
	w.group().Run(len(w.shards), &w.task)
	w.task = vecTask{}
	var s float64
	for _, p := range w.dotP {
		s += p
	}
	return s
}

// Norm2 is the sharded Norm2: per-block (scale, ssq) partials joined in
// ascending block order, bit-identical to the sequential kernel.
func (w *Workers) Norm2(x []float64) float64 {
	if !w.fork(len(x)) {
		return Norm2(x)
	}
	nb := (len(x) + laBlock - 1) / laBlock
	w.shards = par.Split(w.shards[:0], nb, w.Procs)
	w.growPartials(nb)
	w.task = vecTask{w: w, op: opNorm2, x: x}
	w.group().Run(len(w.shards), &w.task)
	w.task = vecTask{}
	var scale, ssq float64 = 0, 1
	for b := 0; b < nb; b++ {
		scale, ssq = norm2Join(scale, ssq, w.scaleP[b], w.ssqP[b])
	}
	return scale * math.Sqrt(ssq)
}

// Axpy is the sharded y += a*x; each element is owned by one worker.
func (w *Workers) Axpy(a float64, x, y []float64) {
	if !w.fork(len(x)) {
		Axpy(a, x, y)
		return
	}
	w.shards = par.Split(w.shards[:0], len(x), w.Procs)
	w.task = vecTask{w: w, op: opAxpy, a: a, x: x, y: y}
	w.group().Run(len(w.shards), &w.task)
	w.task = vecTask{}
}

// Scale is the sharded x *= a; each element is owned by one worker.
func (w *Workers) Scale(a float64, x []float64) {
	if !w.fork(len(x)) {
		Scale(a, x)
		return
	}
	w.shards = par.Split(w.shards[:0], len(x), w.Procs)
	w.task = vecTask{w: w, op: opScale, a: a, x: x}
	w.group().Run(len(w.shards), &w.task)
	w.task = vecTask{}
}

// Normalize is the sharded Normalize, composed from the sharded Norm2
// and Scale so it matches the sequential kernel bitwise.
func (w *Workers) Normalize(x []float64) float64 {
	if !w.fork(len(x)) {
		return Normalize(x)
	}
	n := w.Norm2(x)
	if n > 0 {
		w.Scale(1/n, x)
	}
	return n
}

// OrthogonalizeAgainst is the sharded modified Gram–Schmidt step
// x -= (q·x) q.
func (w *Workers) OrthogonalizeAgainst(x, q []float64) {
	if !w.fork(len(x)) {
		OrthogonalizeAgainst(x, q)
		return
	}
	w.Axpy(-w.Dot(q, x), q, x)
}
