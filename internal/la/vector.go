// Package la implements the small dense linear-algebra kernel set needed
// by the spectral partitioner: vector primitives, a cyclic Jacobi
// eigensolver for dense symmetric matrices (used as a test oracle and for
// tiny systems), the implicit-shift QL iteration for symmetric tridiagonal
// matrices, and a Lanczos iteration with full reorthogonalization.
//
// Everything is stdlib-only and allocation-conscious: hot-path routines
// accept destination slices.
package la

import "math"

// laBlock is the fixed reduction block: Dot and Norm2 fold per-block
// partials in ascending block order, so a parallel reduction that
// assigns whole blocks to workers (parallel.go) produces bit-identical
// sums at every worker count. Vectors no longer than one block reduce
// exactly as a straight loop.
const laBlock = 4096

// Dot returns the inner product of x and y. The slices must have equal
// length. The sum folds fixed laBlock-sized partials in ascending order
// — the canonical association every worker count reproduces.
func Dot(x, y []float64) float64 {
	var s float64
	for lo := 0; lo < len(x); lo += laBlock {
		s += dotRange(x, y, lo, min(lo+laBlock, len(x)))
	}
	return s
}

// dotRange is the per-block partial of Dot over [lo, hi).
func dotRange(x, y []float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow for
// large components. Like Dot, it folds per-block (scale, ssq) partials
// in ascending block order via norm2Join, so parallel block reductions
// match bitwise.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for lo := 0; lo < len(x); lo += laBlock {
		s, q := norm2Range(x, lo, min(lo+laBlock, len(x)))
		scale, ssq = norm2Join(scale, ssq, s, q)
	}
	return scale * math.Sqrt(ssq)
}

// norm2Range runs the classic overflow-guarded (scale, ssq) recurrence
// over x[lo:hi], starting from the identity (0, 1).
func norm2Range(x []float64, lo, hi int) (scale, ssq float64) {
	scale, ssq = 0, 1
	for i := lo; i < hi; i++ {
		v := x[i]
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale, ssq
}

// norm2Join merges two (scale, ssq) partials. The identity is (0, 1).
func norm2Join(s1, q1, s2, q2 float64) (float64, float64) {
	if s2 == 0 {
		return s1, q1
	}
	if s1 == 0 {
		return s2, q2
	}
	if s1 >= s2 {
		r := s2 / s1
		return s1, q1 + q2*r*r
	}
	r := s1 / s2
	return s2, q2 + q1*r*r
}

// Normalize scales x to unit Euclidean norm and returns the original norm.
// A zero vector is left unchanged.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n > 0 {
		Scale(1/n, x)
	}
	return n
}

// OrthogonalizeAgainst removes from x its component along the unit vector
// q (modified Gram–Schmidt step): x -= (q·x) q.
func OrthogonalizeAgainst(x, q []float64) {
	Axpy(-Dot(q, x), q, x)
}
