// Package la implements the small dense linear-algebra kernel set needed
// by the spectral partitioner: vector primitives, a cyclic Jacobi
// eigensolver for dense symmetric matrices (used as a test oracle and for
// tiny systems), the implicit-shift QL iteration for symmetric tridiagonal
// matrices, and a Lanczos iteration with full reorthogonalization.
//
// Everything is stdlib-only and allocation-conscious: hot-path routines
// accept destination slices.
package la

import "math"

// Dot returns the inner product of x and y. The slices must have equal
// length.
func Dot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow for
// large components.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Normalize scales x to unit Euclidean norm and returns the original norm.
// A zero vector is left unchanged.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n > 0 {
		Scale(1/n, x)
	}
	return n
}

// OrthogonalizeAgainst removes from x its component along the unit vector
// q (modified Gram–Schmidt step): x -= (q·x) q.
func OrthogonalizeAgainst(x, q []float64) {
	Axpy(-Dot(q, x), q, x)
}
