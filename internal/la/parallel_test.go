package la

import (
	"math/rand"
	"testing"
)

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestWorkersBitwiseEquivalence(t *testing.T) {
	// The sharded kernels must reproduce the sequential ones bit for bit:
	// the block partials fold in the same canonical order regardless of
	// which worker computed them.
	const n = 20000
	x := randVec(n, 1)
	y := randVec(n, 2)
	wantDot := Dot(x, y)
	wantNorm := Norm2(x)
	for _, procs := range []int{2, 3, 7} {
		ws := &Workers{Procs: procs}
		if got := ws.Dot(x, y); got != wantDot {
			t.Fatalf("procs %d: Dot %v != %v", procs, got, wantDot)
		}
		if got := ws.Norm2(x); got != wantNorm {
			t.Fatalf("procs %d: Norm2 %v != %v", procs, got, wantNorm)
		}
		ySeq := append([]float64(nil), y...)
		yPar := append([]float64(nil), y...)
		Axpy(0.37, x, ySeq)
		ws.Axpy(0.37, x, yPar)
		for i := range ySeq {
			if ySeq[i] != yPar[i] {
				t.Fatalf("procs %d: Axpy differs at %d", procs, i)
			}
		}
		xSeq := append([]float64(nil), x...)
		xPar := append([]float64(nil), x...)
		nSeq := Normalize(xSeq)
		nPar := ws.Normalize(xPar)
		if nSeq != nPar {
			t.Fatalf("procs %d: Normalize norm %v != %v", procs, nPar, nSeq)
		}
		for i := range xSeq {
			if xSeq[i] != xPar[i] {
				t.Fatalf("procs %d: Normalize differs at %d", procs, i)
			}
		}
	}
}

func TestWorkersSmallVectorsInline(t *testing.T) {
	// Below the fork gate the Workers methods must be the sequential
	// kernels verbatim (the coarsest V-cycle graphs take this path).
	x := randVec(100, 3)
	y := randVec(100, 4)
	ws := &Workers{Procs: 8}
	if got, want := ws.Dot(x, y), Dot(x, y); got != want {
		t.Fatalf("Dot %v != %v", got, want)
	}
	if got, want := ws.Norm2(x), Norm2(x); got != want {
		t.Fatalf("Norm2 %v != %v", got, want)
	}
}

func TestLanczosParBitwise(t *testing.T) {
	// The full Lanczos iteration — matvecs plus reorthogonalization —
	// must be bit-identical with sharded vector kernels.
	const n = 9000
	op := func(x, y []float64) {
		// Path Laplacian: y[i] = deg*x[i] - neighbors.
		for i := 0; i < n; i++ {
			d, acc := 0.0, 0.0
			if i > 0 {
				d++
				acc += x[i-1]
			}
			if i < n-1 {
				d++
				acc += x[i+1]
			}
			y[i] = d*x[i] - acc
		}
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	Normalize(ones)
	start := randVec(n, 5)
	seq, err := Lanczos(op, n, 40, start, [][]float64{ones}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{2, 3, 7} {
		par, err := LanczosPar(op, n, 40, start, [][]float64{ones}, nil, &Workers{Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Alpha) != len(seq.Alpha) || len(par.Beta) != len(seq.Beta) {
			t.Fatalf("procs %d: factorization sizes differ", procs)
		}
		for j := range seq.Alpha {
			if par.Alpha[j] != seq.Alpha[j] {
				t.Fatalf("procs %d: alpha[%d] %v != %v", procs, j, par.Alpha[j], seq.Alpha[j])
			}
		}
		for j := range seq.Beta {
			if par.Beta[j] != seq.Beta[j] {
				t.Fatalf("procs %d: beta[%d] %v != %v", procs, j, par.Beta[j], seq.Beta[j])
			}
		}
		for j := range seq.V {
			for i := range seq.V[j] {
				if par.V[j][i] != seq.V[j][i] {
					t.Fatalf("procs %d: V[%d][%d] differs", procs, j, i)
				}
			}
		}
	}
}
