package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDotAxpyScale(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Fatalf("dot = %g, want 32", got)
	}
	Axpy(2, x, y)
	want := []float64{6, 9, 12}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("axpy result %v, want %v", y, want)
		}
	}
	Scale(0.5, y)
	if y[0] != 3 || y[2] != 6 {
		t.Fatalf("scale result %v", y)
	}
}

func TestNorm2Stability(t *testing.T) {
	x := []float64{3e150, 4e150}
	if got := Norm2(x); !almostEq(got, 5e150, 1e137) {
		t.Fatalf("norm = %g, want 5e150", got)
	}
	if Norm2(nil) != 0 {
		t.Fatal("norm of empty must be 0")
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{3, 4}
	n := Normalize(x)
	if !almostEq(n, 5, 1e-12) || !almostEq(Norm2(x), 1, 1e-12) {
		t.Fatalf("normalize: n=%g x=%v", n, x)
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("zero vector norm must be 0")
	}
}

func TestOrthogonalize(t *testing.T) {
	q := []float64{1, 0, 0}
	x := []float64{5, 2, 1}
	OrthogonalizeAgainst(x, q)
	if !almostEq(Dot(x, q), 0, 1e-12) {
		t.Fatalf("not orthogonal: %v", x)
	}
}

// randSym returns a random symmetric n×n matrix.
func randSym(n int, rng *rand.Rand) [][]float64 {
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a[i][j], a[j][i] = v, v
		}
	}
	return a
}

func matVec(a [][]float64, x, y []float64) {
	for i := range a {
		var s float64
		for j, v := range a[i] {
			s += v * x[j]
		}
		y[i] = s
	}
}

func TestJacobiDiagonal(t *testing.T) {
	a := [][]float64{{3, 0}, {0, -1}}
	vals, vecs, err := Jacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], -1, 1e-12) || !almostEq(vals[1], 3, 1e-12) {
		t.Fatalf("vals = %v", vals)
	}
	if len(vecs) != 2 {
		t.Fatal("want 2 eigenvectors")
	}
}

func TestJacobiKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := [][]float64{{2, 1}, {1, 2}}
	vals, vecs, err := Jacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 1, 1e-10) || !almostEq(vals[1], 3, 1e-10) {
		t.Fatalf("vals = %v", vals)
	}
	// Check A v = λ v.
	for k := 0; k < 2; k++ {
		y := make([]float64, 2)
		matVec(a, vecs[k], y)
		for i := range y {
			if !almostEq(y[i], vals[k]*vecs[k][i], 1e-10) {
				t.Fatalf("residual too large for pair %d", k)
			}
		}
	}
}

func TestJacobiRejectsRagged(t *testing.T) {
	if _, _, err := Jacobi([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix should error")
	}
}

func TestJacobiRandomResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		a := randSym(n, rng)
		vals, vecs, err := Jacobi(a)
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, n)
		for k := 0; k < n; k++ {
			matVec(a, vecs[k], y)
			r := 0.0
			for i := range y {
				d := y[i] - vals[k]*vecs[k][i]
				r += d * d
			}
			if math.Sqrt(r) > 1e-8 {
				t.Fatalf("trial %d pair %d residual %g", trial, k, math.Sqrt(r))
			}
		}
		// Eigenvalues ascending.
		for k := 1; k < n; k++ {
			if vals[k] < vals[k-1]-1e-12 {
				t.Fatalf("vals not ascending: %v", vals)
			}
		}
	}
}

func TestSymTridEigenMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(10)
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		for i := range e {
			e[i] = rng.NormFloat64()
		}
		vals, vecs, err := SymTridEigen(d, e, true)
		if err != nil {
			t.Fatal(err)
		}
		// Build the dense matrix and compare eigenvalues with Jacobi.
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			a[i][i] = d[i]
		}
		for i := 0; i+1 < n; i++ {
			a[i][i+1], a[i+1][i] = e[i], e[i]
		}
		jv, _, err := Jacobi(a)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < n; k++ {
			if !almostEq(vals[k], jv[k], 1e-8) {
				t.Fatalf("trial %d: QL vals %v vs Jacobi %v", trial, vals, jv)
			}
		}
		// Residual check for eigenvectors.
		y := make([]float64, n)
		for k := 0; k < n; k++ {
			matVec(a, vecs[k], y)
			for i := range y {
				if !almostEq(y[i], vals[k]*vecs[k][i], 1e-7) {
					t.Fatalf("trial %d: eigenvector residual at pair %d", trial, k)
				}
			}
		}
	}
}

func TestSymTridEigenBadInput(t *testing.T) {
	if _, _, err := SymTridEigen([]float64{1, 2}, []float64{}, false); err == nil {
		t.Fatal("mismatched e length should error")
	}
}

func TestSymTridEigenEmptyAndSingle(t *testing.T) {
	if vals, _, err := SymTridEigen(nil, nil, false); err != nil || len(vals) != 0 {
		t.Fatalf("empty: %v %v", vals, err)
	}
	vals, vecs, err := SymTridEigen([]float64{42}, []float64{}, true)
	if err != nil || !almostEq(vals[0], 42, 0) || !almostEq(vecs[0][0]*vecs[0][0], 1, 1e-12) {
		t.Fatalf("single: %v %v %v", vals, vecs, err)
	}
}

func TestLanczosRecoversExtremeEigenpairs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 30
	a := randSym(n, rng)
	op := func(x, y []float64) { matVec(a, x, y) }
	res, err := Lanczos(op, n, n, nil, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	vals, vecs, err := res.RitzPairs()
	if err != nil {
		t.Fatal(err)
	}
	jv, _, err := Jacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	// With a full n-step factorization the extreme Ritz values match the
	// true spectrum tightly.
	if !almostEq(vals[0], jv[0], 1e-6) {
		t.Fatalf("smallest: lanczos %g vs jacobi %g", vals[0], jv[0])
	}
	if !almostEq(vals[len(vals)-1], jv[n-1], 1e-6) {
		t.Fatalf("largest: lanczos %g vs jacobi %g", vals[len(vals)-1], jv[n-1])
	}
	// Residual of the smallest Ritz pair.
	y := make([]float64, n)
	matVec(a, vecs[0], y)
	r := 0.0
	for i := range y {
		d := y[i] - vals[0]*vecs[0][i]
		r += d * d
	}
	if math.Sqrt(r) > 1e-5 {
		t.Fatalf("smallest Ritz residual %g", math.Sqrt(r))
	}
}

func TestLanczosDeflation(t *testing.T) {
	// Operator = diag(0, 1, 2, 3); deflating e0 (the 0-eigenvector) makes
	// the smallest Ritz value 1.
	n := 4
	op := func(x, y []float64) {
		for i := range x {
			y[i] = float64(i) * x[i]
		}
	}
	q := make([]float64, n)
	q[0] = 1
	rng := rand.New(rand.NewSource(2))
	res, err := Lanczos(op, n, n, nil, [][]float64{q}, rng)
	if err != nil {
		t.Fatal(err)
	}
	vals, vecs, err := res.RitzPairs()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 1, 1e-8) {
		t.Fatalf("deflated smallest = %g, want 1", vals[0])
	}
	if !almostEq(vecs[0][0], 0, 1e-8) {
		t.Fatalf("deflated eigenvector leaks into deflated space: %v", vecs[0])
	}
}

func TestLanczosStartInDeflatedSpace(t *testing.T) {
	n := 3
	op := func(x, y []float64) { copy(y, x) }
	q := []float64{1, 0, 0}
	if _, err := Lanczos(op, n, n, []float64{2, 0, 0}, [][]float64{q}, nil); err == nil {
		t.Fatal("start vector inside deflated space should error")
	}
}

func TestLanczosArgErrors(t *testing.T) {
	op := func(x, y []float64) { copy(y, x) }
	if _, err := Lanczos(op, 0, 3, nil, nil, nil); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := Lanczos(op, 3, 0, nil, nil, nil); err == nil {
		t.Fatal("maxSteps=0 should error")
	}
	if _, err := Lanczos(op, 3, 3, []float64{1}, nil, nil); err == nil {
		t.Fatal("wrong start length should error")
	}
}

func TestPropertyLanczosBasisOrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		a := randSym(n, rng)
		op := func(x, y []float64) { matVec(a, x, y) }
		res, err := Lanczos(op, n, n/2+2, nil, nil, rng)
		if err != nil {
			return false
		}
		for i := range res.V {
			for j := range res.V {
				d := Dot(res.V[i], res.V[j])
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(d, want, 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
