package la

import (
	"fmt"
	"math"
)

// SymTridEigen computes all eigenvalues — and, when wantVectors is true,
// eigenvectors — of the symmetric tridiagonal matrix with diagonal d
// (length n) and subdiagonal e (length n-1, e[i] couples rows i and i+1).
//
// It implements the implicit-shift QL iteration (the classical EISPACK
// tql2 routine). Eigenvalues are returned in ascending order; z[k] is the
// unit eigenvector for vals[k] expressed in the input basis.
func SymTridEigen(d, e []float64, wantVectors bool) (vals []float64, z [][]float64, err error) {
	n := len(d)
	if len(e) != n-1 && !(n == 0 && len(e) == 0) {
		return nil, nil, fmt.Errorf("la: tridiag: len(e)=%d, want %d", len(e), n-1)
	}
	if n == 0 {
		return nil, nil, nil
	}
	dd := append([]float64(nil), d...)
	// ee is padded to length n with a trailing zero, per tql2 convention.
	ee := make([]float64, n)
	copy(ee, e)

	// zz accumulates rotations; zz[i][j] is component i of eigenvector j.
	var zz [][]float64
	if wantVectors {
		zz = make([][]float64, n)
		for i := range zz {
			zz[i] = make([]float64, n)
			zz[i][i] = 1
		}
	}

	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find small subdiagonal element.
			m := l
			for ; m < n-1; m++ {
				s := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= 1e-15*s {
					break
				}
			}
			if m == l {
				break
			}
			if iter >= 50 {
				return nil, nil, fmt.Errorf("la: tridiag: QL failed to converge at index %d", l)
			}
			// Form shift.
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			g = dd[m] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					dd[i+1] -= p
					ee[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
				if wantVectors {
					for k := 0; k < n; k++ {
						f := zz[k][i+1]
						zz[k][i+1] = s*zz[k][i] + c*f
						zz[k][i] = c*zz[k][i] - s*f
					}
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}

	// Sort ascending.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && dd[idx[j]] < dd[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	vals = make([]float64, n)
	for k, j := range idx {
		vals[k] = dd[j]
	}
	if wantVectors {
		z = make([][]float64, n)
		for k, j := range idx {
			vec := make([]float64, n)
			for i := 0; i < n; i++ {
				vec[i] = zz[i][j]
			}
			z[k] = vec
		}
	}
	return vals, z, nil
}
