package la

import (
	"fmt"
	"math/rand"
)

// Operator applies a symmetric linear map: y = A·x. Implementations must
// not retain x or y.
type Operator func(x, y []float64)

// LanczosResult holds the Krylov factorization A·V ≈ V·T produced by
// Lanczos: T is symmetric tridiagonal with diagonal Alpha and subdiagonal
// Beta, and V holds the orthonormal Lanczos basis (V[j] is the j-th basis
// vector of length n).
type LanczosResult struct {
	Alpha []float64
	Beta  []float64
	V     [][]float64
}

// Lanczos runs at most maxSteps steps of the Lanczos iteration on the
// symmetric operator op over R^n, with full reorthogonalization (numerical
// stability beats speed at the problem sizes the partitioner needs).
//
// The iteration starts from start when non-nil, otherwise from a random
// vector drawn from rng. Every basis vector is kept orthogonal to the
// vectors in deflate (each must have unit norm); passing the normalized
// all-ones vector deflates the trivial null space of a graph Laplacian so
// the smallest Ritz pair approximates the Fiedler pair.
//
// The iteration stops early at an invariant subspace (beta ≈ 0).
func Lanczos(op Operator, n, maxSteps int, start []float64, deflate [][]float64, rng *rand.Rand) (*LanczosResult, error) {
	return LanczosPar(op, n, maxSteps, start, deflate, rng, nil)
}

// LanczosPar is Lanczos with its vector kernels sharded over ws (nil or
// ws.Procs <= 1 runs the sequential kernels). The blocked reductions in
// Workers make the result bit-identical at every worker count; the
// operator is responsible for its own determinism.
func LanczosPar(op Operator, n, maxSteps int, start []float64, deflate [][]float64, rng *rand.Rand, ws *Workers) (*LanczosResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("la: lanczos: n=%d", n)
	}
	if maxSteps > n {
		maxSteps = n
	}
	if maxSteps <= 0 {
		return nil, fmt.Errorf("la: lanczos: maxSteps=%d", maxSteps)
	}
	v := make([]float64, n)
	if start != nil {
		if len(start) != n {
			return nil, fmt.Errorf("la: lanczos: len(start)=%d, want %d", len(start), n)
		}
		copy(v, start)
	} else {
		if rng == nil {
			rng = rand.New(rand.NewSource(1))
		}
		for i := range v {
			v[i] = rng.Float64() - 0.5
		}
	}
	for _, q := range deflate {
		ws.OrthogonalizeAgainst(v, q)
	}
	if ws.Normalize(v) == 0 {
		return nil, fmt.Errorf("la: lanczos: start vector lies in the deflated subspace")
	}

	res := &LanczosResult{}
	w := make([]float64, n)
	for j := 0; j < maxSteps; j++ {
		vj := append([]float64(nil), v...)
		res.V = append(res.V, vj)
		op(vj, w)
		alpha := ws.Dot(vj, w)
		res.Alpha = append(res.Alpha, alpha)
		// w <- w - alpha v_j - beta_{j-1} v_{j-1}; then full reorthogonalization.
		ws.Axpy(-alpha, vj, w)
		if j > 0 {
			ws.Axpy(-res.Beta[j-1], res.V[j-1], w)
		}
		for _, q := range deflate {
			ws.OrthogonalizeAgainst(w, q)
		}
		// Two passes of modified Gram–Schmidt against the whole basis.
		for pass := 0; pass < 2; pass++ {
			for _, q := range res.V {
				ws.OrthogonalizeAgainst(w, q)
			}
		}
		beta := ws.Norm2(w)
		if j == maxSteps-1 {
			break
		}
		if beta < 1e-12 {
			break // invariant subspace reached
		}
		res.Beta = append(res.Beta, beta)
		copy(v, w)
		ws.Scale(1/beta, v)
	}
	return res, nil
}

// RitzPairs diagonalizes the tridiagonal factor and returns all Ritz
// values in ascending order together with the Ritz vectors mapped back to
// R^n (vecs[k] approximates the eigenvector for vals[k]).
func (r *LanczosResult) RitzPairs() (vals []float64, vecs [][]float64, err error) {
	k := len(r.Alpha)
	if k == 0 {
		return nil, nil, fmt.Errorf("la: lanczos: empty factorization")
	}
	tVals, tVecs, err := SymTridEigen(r.Alpha, r.Beta, true)
	if err != nil {
		return nil, nil, err
	}
	n := len(r.V[0])
	vecs = make([][]float64, k)
	for j := 0; j < k; j++ {
		y := make([]float64, n)
		for i := 0; i < k; i++ {
			Axpy(tVecs[j][i], r.V[i], y)
		}
		Normalize(y)
		vecs[j] = y
	}
	return tVals, vecs, nil
}
