package spectral

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/partition"
)

func TestFiedlerPathMonotone(t *testing.T) {
	// The Fiedler vector of a path is a discrete cosine: strictly monotone
	// along the path.
	g := graph.Path(20)
	f, err := Fiedler(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc, dec := true, true
	for i := 1; i < 20; i++ {
		if f[i] <= f[i-1] {
			inc = false
		}
		if f[i] >= f[i-1] {
			dec = false
		}
	}
	if !inc && !dec {
		t.Fatalf("fiedler of path not monotone: %v", f)
	}
}

func TestFiedlerOrthogonalToOnes(t *testing.T) {
	g := graph.Grid(6, 6)
	f, err := Fiedler(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for _, x := range f {
		s += x
	}
	if math.Abs(s) > 1e-6 {
		t.Fatalf("sum of fiedler entries = %g, want ~0", s)
	}
	if math.Abs(la.Norm2(f)-1) > 1e-8 {
		t.Fatalf("fiedler norm = %g, want 1", la.Norm2(f))
	}
}

func TestFiedlerMatchesDenseEigensolver(t *testing.T) {
	// Compare the Rayleigh quotient of the Lanczos Fiedler vector against
	// the exact λ2 from the Jacobi oracle on a small graph.
	rng := rand.New(rand.NewSource(4))
	g, err := graph.RandomGNM(24, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	graph.EnsureConnected(g)
	n := g.Order()
	lap := make([][]float64, n)
	for i := range lap {
		lap[i] = make([]float64, n)
	}
	for _, v := range g.Vertices() {
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			lap[v][u] -= ws[i]
			lap[v][v] += ws[i]
		}
	}
	vals, _, err := la.Jacobi(lap)
	if err != nil {
		t.Fatal(err)
	}
	lambda2 := vals[1]
	f, err := Fiedler(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rayleigh quotient f'Lf should approximate λ2.
	y := make([]float64, n)
	for i := range lap {
		var s float64
		for j, v := range lap[i] {
			s += v * f[j]
		}
		y[i] = s
	}
	rq := la.Dot(f, y)
	if math.Abs(rq-lambda2) > 1e-5*(1+math.Abs(lambda2)) {
		t.Fatalf("rayleigh quotient %g vs exact λ2 %g", rq, lambda2)
	}
}

func TestFiedlerErrors(t *testing.T) {
	g := graph.NewWithVertices(1)
	if _, err := Fiedler(g, Options{}); err == nil {
		t.Fatal("single vertex should error")
	}
}

func TestBisectGridHalves(t *testing.T) {
	g := graph.Grid(8, 8)
	a, b, err := Bisect(g, 32, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("sides %d/%d, want 32/32", len(a), len(b))
	}
	// A spectral bisection of a square grid should cut ~8 edges (a
	// straight line); allow generous slack but reject garbage cuts.
	asg := partition.New(g.Order(), 2)
	for _, v := range a {
		asg.Part[v] = 0
	}
	for _, v := range b {
		asg.Part[v] = 1
	}
	cut := partition.Cut(g, asg)
	if cut.Total > 16 {
		t.Fatalf("grid bisection cut %d edges, want <= 16", cut.Total)
	}
}

func TestBisectUnevenTarget(t *testing.T) {
	g := graph.Grid(6, 6) // 36 vertices
	a, b, err := Bisect(g, 12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 12 || len(b) != 24 {
		t.Fatalf("sides %d/%d, want 12/24", len(a), len(b))
	}
}

func TestBisectDisconnectedComponents(t *testing.T) {
	// Two disjoint grids: bisect should separate them without cutting.
	g := graph.Grid(4, 4)
	// Add a second 4x4 grid as vertices 16..31.
	for i := 0; i < 16; i++ {
		g.AddVertex(1)
	}
	id := func(r, c int) graph.Vertex { return graph.Vertex(16 + r*4 + c) }
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if c+1 < 4 {
				_ = g.AddEdge(id(r, c), id(r, c+1), 1)
			}
			if r+1 < 4 {
				_ = g.AddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}
	a, b, err := Bisect(g, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("sides %d/%d, want 16/16", len(a), len(b))
	}
	asg := partition.New(g.Order(), 2)
	for _, v := range a {
		asg.Part[v] = 0
	}
	for _, v := range b {
		asg.Part[v] = 1
	}
	if cut := partition.Cut(g, asg); cut.Total != 0 {
		t.Fatalf("disconnected bisection cut %d edges, want 0", cut.Total)
	}
}

func TestRSBGrid(t *testing.T) {
	g := graph.Grid(8, 8)
	for _, p := range []int{2, 4, 8, 16} {
		part, err := RSB(g, p, Options{})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		a := &partition.Assignment{Part: part, P: p}
		if err := a.Validate(g); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		sizes := a.Sizes(g)
		if !partition.Balanced(sizes) {
			t.Fatalf("p=%d: sizes %v not balanced", p, sizes)
		}
	}
}

func TestRSBNonPowerOfTwo(t *testing.T) {
	g := graph.Grid(9, 7) // 63 vertices
	part, err := RSB(g, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := &partition.Assignment{Part: part, P: 7}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	for q, s := range sizes {
		if s != 9 {
			t.Fatalf("partition %d has %d vertices, want 9 (sizes %v)", q, s, sizes)
		}
	}
}

func TestRSBErrors(t *testing.T) {
	g := graph.Grid(2, 2)
	if _, err := RSB(g, 0, Options{}); err == nil {
		t.Fatal("p=0 should error")
	}
	if _, err := RSB(g, 10, Options{}); err == nil {
		t.Fatal("more parts than vertices should error")
	}
}

func TestRSBQualityOnGrid(t *testing.T) {
	// 16x16 grid into 4 parts: a good partitioner produces quadrant-like
	// parts with cut close to 2*16 = 32.
	g := graph.Grid(16, 16)
	part, err := RSB(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := &partition.Assignment{Part: part, P: 4}
	cut := partition.Cut(g, a)
	if cut.Total > 48 {
		t.Fatalf("4-way grid cut = %d, want <= 48", cut.Total)
	}
	if !partition.Balanced(a.Sizes(g)) {
		t.Fatalf("unbalanced sizes: %v", a.Sizes(g))
	}
}

func TestRSBDeterminism(t *testing.T) {
	g := graph.Grid(10, 10)
	p1, err := RSB(g, 8, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := RSB(g, 8, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("RSB with same seed must be deterministic")
		}
	}
}

func TestBisectStraddlingComponent(t *testing.T) {
	// Regression: a dominant component whose weight is between targetA and
	// 2×targetA must be split, not dumped whole onto one side.
	g := graph.Grid(6, 6) // 36-vertex component
	for i := 0; i < 12; i++ {
		g.AddVertex(1) // 12 isolated vertices
	}
	// targetA = 24: grid (36) straddles it.
	a, b, err := Bisect(g, 24, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 24 || len(b) != 24 {
		t.Fatalf("sides %d/%d, want 24/24", len(a), len(b))
	}
}

func TestRSBOnStarHeavyGraph(t *testing.T) {
	// Regression: RSB stayed balanced on a mesh with a large attached star
	// (degenerate Fiedler structure) — the quickstart-example failure.
	g := graph.Grid(10, 10)
	hub := graph.Vertex(0)
	for i := 0; i < 60; i++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, hub, 1)
	}
	part, err := RSB(g, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := &partition.Assignment{Part: part, P: 8}
	if !partition.Balanced(a.Sizes(g)) {
		t.Fatalf("sizes %v not balanced", a.Sizes(g))
	}
}
