// Package spectral implements Recursive Spectral Bisection (RSB), the
// from-scratch partitioner the paper uses both to produce the initial
// partition and as the quality/time baseline (its "SB" rows).
//
// The Fiedler vector — the eigenvector for the second-smallest eigenvalue
// of the graph Laplacian L = D − W — is computed with Lanczos iteration
// (full reorthogonalization) after deflating the trivial constant null
// vector, exactly the Pothen–Simon–Liou construction the paper cites.
//
// Ownership: unlike the engine's Stats and the coarsen Hierarchy —
// whose returned slices are arenas overwritten by the next call — every
// slice this package returns (Fiedler vector, Bisect sides, RSB labels)
// is freshly allocated and caller-owned; nothing aliases package or
// graph internals, and no call mutates its input graph.
package spectral

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/par"
)

// Options tunes the eigensolver.
type Options struct {
	// MaxLanczosSteps caps the Krylov dimension (0 = automatic).
	MaxLanczosSteps int
	// Seed drives the random start vector; fixed default keeps runs
	// reproducible.
	Seed int64
	// Group is the fork-join group the Laplacian matvec and the Lanczos
	// vector kernels shard over (nil = a solve-private group). Results
	// are bit-identical at every worker count — the reductions fold
	// fixed-size blocks in a canonical order — so parallelism is purely
	// a latency property.
	Group *par.Group
	// Procs is the worker count for the sharded kernels; <= 1 keeps the
	// whole solve on the calling goroutine.
	Procs int
}

func (o Options) maxSteps(n int) int {
	if o.MaxLanczosSteps > 0 {
		return o.MaxLanczosSteps
	}
	steps := 2 * isqrt(n)
	if steps < 30 {
		steps = 30
	}
	if steps > 400 {
		steps = 400
	}
	return steps
}

func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

// Fiedler returns the Fiedler vector of the connected graph g, indexed by
// vertex slot (entries for dead slots are 0). The vector has unit norm and
// is orthogonal to the constant vector on live vertices. The returned
// slice is freshly allocated and caller-owned.
func Fiedler(g *graph.Graph, opt Options) ([]float64, error) {
	csr := g.ToCSR()
	n := csr.Order()
	live := 0
	for _, ok := range csr.Live {
		if ok {
			live++
		}
	}
	if live < 2 {
		return nil, fmt.Errorf("spectral: fiedler needs at least 2 live vertices, have %d", live)
	}
	lap := &lapOp{csr: csr, grp: opt.Group, procs: opt.Procs}
	op := lap.apply
	ones := make([]float64, n)
	for v := 0; v < n; v++ {
		if csr.Live[v] {
			ones[v] = 1
		}
	}
	la.Normalize(ones)
	seed := opt.Seed
	if seed == 0 {
		seed = 12345
	}
	rng := rand.New(rand.NewSource(seed))
	start := make([]float64, n)
	for v := 0; v < n; v++ {
		if csr.Live[v] {
			start[v] = rng.Float64() - 0.5
		}
	}
	var ws *la.Workers
	if opt.Procs > 1 {
		ws = &la.Workers{Group: opt.Group, Procs: opt.Procs}
	}
	res, err := la.LanczosPar(op, n, opt.maxSteps(live), start, [][]float64{ones}, rng, ws)
	if err != nil {
		return nil, fmt.Errorf("spectral: %w", err)
	}
	_, vecs, err := res.RitzPairs()
	if err != nil {
		return nil, fmt.Errorf("spectral: %w", err)
	}
	f := vecs[0]
	// Clean dead slots (they never mix in, but keep the contract explicit).
	for v := 0; v < n; v++ {
		if !csr.Live[v] {
			f[v] = 0
		}
	}
	return f, nil
}

// laplacianApply computes y = L·x restricted to live vertices.
func laplacianApply(c *graph.CSR, x, y []float64) {
	for v := 0; v < c.Order(); v++ {
		y[v] = lapRow(c, x, graph.Vertex(v))
	}
}

// lapRow computes one Laplacian row: (L·x)[v], accumulating in row
// (adjacency) order so every caller sees the same float sums. Dead
// slots yield 0.
func lapRow(c *graph.CSR, x []float64, v graph.Vertex) float64 {
	if !c.Live[v] {
		return 0
	}
	row := c.Row(v)
	ws := c.RowWeights(v)
	var acc, deg float64
	for i, u := range row {
		w := ws[i]
		deg += w
		acc += w * x[u]
	}
	return deg*x[v] - acc
}

// spectralParMin is the minimum live order worth sharding the matvec:
// the coarsest V-cycle graphs (hundreds of vertices) stay inline.
const spectralParMin = 4096

// lapOp is the reusable sharded Laplacian matvec. Rows are slot-owned
// (worker w writes only y[v] for v in its shard) and each row sums in
// adjacency order, so the result is bit-identical at every worker
// count; shards are arc-balanced via the CSR row-pointer prefix sums.
type lapOp struct {
	csr    *graph.CSR
	grp    *par.Group
	own    par.Group
	procs  int
	shards []par.Range
	x, y   []float64
}

func (o *lapOp) group() *par.Group {
	if o.grp != nil {
		return o.grp
	}
	return &o.own
}

func (o *lapOp) apply(x, y []float64) {
	n := o.csr.Order()
	if o.procs <= 1 || n < spectralParMin {
		laplacianApply(o.csr, x, y)
		return
	}
	o.shards = par.SplitByWeight(o.shards[:0], o.csr.XAdj, o.procs)
	o.x, o.y = x, y
	o.group().Run(len(o.shards), o)
	o.x, o.y = nil, nil
}

func (o *lapOp) Do(w int) {
	r := o.shards[w]
	for v := r.Lo; v < r.Hi; v++ {
		o.y[v] = lapRow(o.csr, o.x, graph.Vertex(v))
	}
}

// Bisect splits the live vertices of g into two groups whose vertex-weight
// totals approximate targetA : (total−targetA), by sorting on the Fiedler
// value and cutting at the weighted quantile. Ties in Fiedler value are
// broken by vertex id for determinism. Both returned sides are freshly
// allocated and caller-owned.
func Bisect(g *graph.Graph, targetA float64, opt Options) (a, b []graph.Vertex, err error) {
	vs := g.Vertices()
	if len(vs) < 2 {
		return nil, nil, fmt.Errorf("spectral: bisect needs at least 2 vertices")
	}
	if !g.Connected() {
		return bisectDisconnected(g, targetA, opt)
	}
	f, err := Fiedler(g, opt)
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(vs, func(i, j int) bool {
		if f[vs[i]] != f[vs[j]] {
			return f[vs[i]] < f[vs[j]]
		}
		return vs[i] < vs[j]
	})
	var acc float64
	cut := 0
	for i, v := range vs {
		if acc >= targetA {
			break
		}
		acc += g.VertexWeight(v)
		cut = i + 1
	}
	if cut == 0 {
		cut = 1
	}
	if cut == len(vs) {
		cut = len(vs) - 1
	}
	return append([]graph.Vertex(nil), vs[:cut]...), append([]graph.Vertex(nil), vs[cut:]...), nil
}

// bisectDisconnected fills side a up to the target weight from whole
// components (largest first); the component that would overshoot the
// target is itself bisected spectrally to fill the remainder exactly, and
// everything after that goes to side b. This keeps both sides on target
// even when component weights are awkward.
func bisectDisconnected(g *graph.Graph, targetA float64, opt Options) (a, b []graph.Vertex, err error) {
	comp, nc := g.Components()
	weights := make([]float64, nc)
	members := make([][]graph.Vertex, nc)
	for _, v := range g.Vertices() {
		c := comp[v]
		weights[c] += g.VertexWeight(v)
		members[c] = append(members[c], v)
	}
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if weights[order[i]] != weights[order[j]] {
			return weights[order[i]] > weights[order[j]]
		}
		return order[i] < order[j]
	})
	var accA float64
	for _, c := range order {
		need := targetA - accA
		if need <= 1e-9 {
			b = append(b, members[c]...)
			continue
		}
		if weights[c] <= need+1e-9 {
			a = append(a, members[c]...)
			accA += weights[c]
			continue
		}
		// This component straddles the remaining target: split it.
		sub, _, newToOld := g.InducedSubgraph(members[c])
		if sub.NumVertices() < 2 {
			b = append(b, members[c]...)
			continue
		}
		sa, sb, err := Bisect(sub, need, opt)
		if err != nil {
			return nil, nil, err
		}
		for _, v := range sa {
			a = append(a, newToOld[v])
			accA += sub.VertexWeight(v)
		}
		for _, v := range sb {
			b = append(b, newToOld[v])
		}
	}
	if len(a) == 0 && len(b) > 1 {
		a, b = b[:1], b[1:]
	}
	if len(b) == 0 && len(a) > 1 {
		b, a = a[:1], a[1:]
	}
	return a, b, nil
}

// RSB partitions g into p parts of near-equal vertex weight by recursive
// spectral bisection, returning a per-vertex-slot partition label (−1 for
// dead slots). The returned slice is freshly allocated and caller-owned.
//
// p need not be a power of two: at each level the part count is split as
// ⌈p/2⌉ / ⌊p/2⌋ and the weight target proportionally.
func RSB(g *graph.Graph, p int, opt Options) ([]int32, error) {
	if p < 1 {
		return nil, fmt.Errorf("spectral: rsb: p=%d", p)
	}
	if g.NumVertices() < p {
		return nil, fmt.Errorf("spectral: rsb: %d vertices into %d parts", g.NumVertices(), p)
	}
	part := make([]int32, g.Order())
	for i := range part {
		part[i] = -1
	}
	err := rsbRec(g, g.Vertices(), p, 0, part, opt)
	return part, err
}

func rsbRec(g *graph.Graph, vs []graph.Vertex, p int, base int32, part []int32, opt Options) error {
	if p == 1 {
		for _, v := range vs {
			part[v] = base
		}
		return nil
	}
	sub, _, newToOld := g.InducedSubgraph(vs)
	pa := (p + 1) / 2
	pb := p / 2
	var total float64
	for _, v := range vs {
		total += g.VertexWeight(v)
	}
	target := total * float64(pa) / float64(p)
	a, b, err := Bisect(sub, target, opt)
	if err != nil {
		return err
	}
	if len(a) == 0 || len(b) == 0 {
		return fmt.Errorf("spectral: rsb: empty side at p=%d", p)
	}
	// Each side must carry at least as many vertices as the partitions it
	// will be split into; skewed spectral or component-packed splits can
	// violate that on degenerate graphs, so rebalance deterministically.
	for len(a) < pa && len(b) > pb {
		a = append(a, b[len(b)-1])
		b = b[:len(b)-1]
	}
	for len(b) < pb && len(a) > pa {
		b = append(b, a[len(a)-1])
		a = a[:len(a)-1]
	}
	if len(a) < pa || len(b) < pb {
		return fmt.Errorf("spectral: rsb: cannot give %d+%d vertices to %d+%d parts", len(a), len(b), pa, pb)
	}
	va := make([]graph.Vertex, len(a))
	for i, v := range a {
		va[i] = newToOld[v]
	}
	vb := make([]graph.Vertex, len(b))
	for i, v := range b {
		vb[i] = newToOld[v]
	}
	if err := rsbRec(g, va, pa, base, part, opt); err != nil {
		return err
	}
	return rsbRec(g, vb, pb, base+int32(pa), part, opt)
}
