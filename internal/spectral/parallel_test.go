package spectral

import (
	"testing"

	"repro/internal/graph"
)

func TestRSBParallelEquivalence(t *testing.T) {
	// A full recursive spectral bisection over the fork gate
	// (80*80 = 6400 > spectralParMin) must produce identical labels at
	// every worker count: the sharded Laplacian matvec is row-owned and
	// the Lanczos reductions fold fixed blocks canonically.
	g := graph.Grid(80, 80)
	want, err := RSB(g, 4, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{2, 4, 7} {
		got, err := RSB(g, 4, Options{Seed: 7, Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("procs %d: label[%d] = %d, want %d", procs, v, got[v], want[v])
			}
		}
	}
}
