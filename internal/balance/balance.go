// Package balance implements the paper's Step 3: the load-balancing linear
// program. Given the layering's δ(i,j) movability bounds and the current
// partition sizes, it formulates
//
//	minimize   Σ l(i,j)
//	subject to 0 ≤ l(i,j) ≤ δ(i,j)
//	           outflow(j) − inflow(j) = surplus(j)      for every j
//
// solves it with a pluggable simplex, and realizes the integral flows by
// moving the boundary-closest vertices from each pool. When the full
// correction is infeasible the right-hand side is divided by a relaxation
// factor ε > 1 (the paper's multi-stage mechanism, §2.3).
package balance

import (
	"context"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/layering"
	"repro/internal/lp"
	"repro/internal/partition"
)

// Flow is a planned movement of Amount vertices from partition From to To.
type Flow struct {
	From, To int32
	Amount   int
}

// Model is a formulated balance LP plus the variable ↔ pair mapping.
type Model struct {
	Prob  *lp.Problem
	Pairs [][2]int32 // Pairs[v] = (i,j) for LP variable v
	// RHS is the per-partition net outflow requirement actually used
	// (after ε division and zero-sum repair).
	RHS []int
}

// relaxedRHSInto divides each surplus (sizes[j] − targets[j]) by eps,
// truncating toward zero, then repairs the result to sum to zero (an LP
// over flow-conservation equalities is trivially infeasible otherwise).
// The result is written into dst, which is grown as needed and reused.
func relaxedRHSInto(dst []int, sizes, targets []int, eps float64) []int {
	if cap(dst) < len(sizes) {
		dst = make([]int, len(sizes))
	}
	dst = dst[:len(sizes)]
	if eps < 1 {
		eps = 1
	}
	sum := 0
	for j := range sizes {
		dst[j] = int(math.Trunc(float64(sizes[j]-targets[j]) / eps))
		sum += dst[j]
	}
	for sum != 0 {
		// Move the entry whose rounded value drifted furthest from s/eps in
		// the direction that shrinks the sum.
		best, bestDrift := -1, math.Inf(-1)
		for j := range sizes {
			exact := float64(sizes[j]-targets[j]) / eps
			var drift float64
			if sum > 0 {
				drift = float64(dst[j]) - exact // positive drift: safe to decrement
			} else {
				drift = exact - float64(dst[j])
			}
			if drift > bestDrift {
				bestDrift, best = drift, j
			}
		}
		if sum > 0 {
			dst[best]--
			sum--
		} else {
			dst[best]++
			sum++
		}
	}
	return dst
}

// relaxedRHS is the allocating form of relaxedRHSInto over a
// precomputed surplus vector.
func relaxedRHS(surplus []int, eps float64) []int {
	return relaxedRHSInto(nil, surplus, make([]int, len(surplus)), eps)
}

// Arena owns the reusable buffers of the balance-LP formulation: the
// Problem's objective/bound/constraint storage, the pair mapping and
// the RHS vector. Buffers grow to the largest formulation seen and are
// then reused, so steady-state formulation through a warm engine
// allocates nothing — mirroring the engine's CSR and scratch reuse.
// The Model returned by FormulateTol is owned by the Arena and
// invalidated by its next call. The zero value is ready to use.
type Arena struct {
	model Model
	prob  lp.Problem
	pairs [][2]int32
	rhs   []int
	terms []lp.Term
	spans []int // (start, end) offsets into terms, two per constraint
	cons  []lp.Constraint
}

// FormulateTol is the arena-backed form of the package-level
// [FormulateTol]: identical formulation (it is what the public wrapper
// calls), but built into the arena's reused buffers and without
// diagnostic variable names.
func (ar *Arena) FormulateTol(delta [][]int, sizes, targets []int, eps float64, slack int) (*Model, error) {
	p := len(delta)
	if len(sizes) != p || len(targets) != p {
		return nil, fmt.Errorf("balance: dimension mismatch: δ is %d×, sizes %d, targets %d", p, len(sizes), len(targets))
	}
	if slack < 0 {
		return nil, fmt.Errorf("balance: negative slack %d", slack)
	}
	ar.rhs = relaxedRHSInto(ar.rhs, sizes, targets, eps)
	rhs := ar.rhs

	ar.pairs = ar.pairs[:0]
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i != j && delta[i][j] > 0 {
				ar.pairs = append(ar.pairs, [2]int32{int32(i), int32(j)})
			}
		}
	}
	pairs := ar.pairs
	n := len(pairs)
	prob := &ar.prob
	prob.Sense = lp.Minimize
	prob.Names = nil
	prob.Obj = lp.GrowFloats(prob.Obj, n)
	prob.Upper = lp.GrowFloats(prob.Upper, n)
	for v, pr := range pairs {
		prob.Obj[v] = 1
		prob.Upper[v] = float64(delta[pr[0]][pr[1]])
	}

	// Constraint rows are appended into one flat term buffer; the Terms
	// subslices are bound after the loop so buffer growth cannot leave a
	// row pointing at a stale backing array.
	ar.terms = ar.terms[:0]
	ar.cons = ar.cons[:0]
	ar.spans = ar.spans[:0]
	for j := 0; j < p; j++ {
		start := len(ar.terms)
		for v, pr := range pairs {
			if int(pr[0]) == j {
				ar.terms = append(ar.terms, lp.Term{Var: v, Coef: 1})
			}
			if int(pr[1]) == j {
				ar.terms = append(ar.terms, lp.Term{Var: v, Coef: -1})
			}
		}
		if len(ar.terms) == start {
			if rhs[j] == 0 || abs(rhs[j]) <= slack {
				continue
			}
			// No movable vertex touches partition j but it must change
			// size: encode the contradiction (an empty row with nonzero
			// RHS) so the solver reports infeasibility (the driver will
			// then relax or re-stage).
		}
		if slack == 0 {
			ar.cons = append(ar.cons, lp.Constraint{Rel: lp.EQ, RHS: float64(rhs[j])})
			ar.spans = append(ar.spans, start, len(ar.terms))
		} else {
			ar.cons = append(ar.cons, lp.Constraint{Rel: lp.GE, RHS: float64(rhs[j] - slack)})
			ar.spans = append(ar.spans, start, len(ar.terms))
			ar.cons = append(ar.cons, lp.Constraint{Rel: lp.LE, RHS: float64(rhs[j] + slack)})
			ar.spans = append(ar.spans, start, len(ar.terms))
		}
	}
	for k := range ar.cons {
		ar.cons[k].Terms = ar.terms[ar.spans[2*k]:ar.spans[2*k+1]]
	}
	prob.Cons = ar.cons
	ar.model = Model{Prob: prob, Pairs: pairs, RHS: rhs}
	return &ar.model, nil
}

// Formulate builds the balance LP for the given layering δ, partition
// sizes and targets, with relaxation ε ≥ 1 (1 = full single-stage
// correction) and exact per-partition equality (the paper's constraint 12).
func Formulate(delta [][]int, sizes, targets []int, eps float64) (*Model, error) {
	return FormulateTol(delta, sizes, targets, eps, 0)
}

// FormulateTol generalizes Formulate with a balance tolerance: each
// partition's net outflow may deviate from its surplus by up to slack
// vertices, turning the equality into a pair of inequalities. slack = 0
// reproduces the paper exactly; slack > 0 (a ParMETIS-style imbalance
// allowance) trades residual imbalance for less vertex movement.
//
// This one-shot form allocates a fresh formulation with diagnostic
// variable names; the engine formulates through a reused [Arena]
// instead.
func FormulateTol(delta [][]int, sizes, targets []int, eps float64, slack int) (*Model, error) {
	var ar Arena
	m, err := ar.FormulateTol(delta, sizes, targets, eps, slack)
	if err != nil {
		return nil, err
	}
	m.Prob.Names = make([]string, len(m.Pairs))
	for v, pr := range m.Pairs {
		m.Prob.Names[v] = fmt.Sprintf("l(%d,%d)", pr[0], pr[1])
	}
	return m, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Flows converts an optimal LP solution into integral flows, rejecting
// non-integral values (which the totally unimodular formulation rules out
// up to numerical noise).
func (m *Model) Flows(sol *lp.Solution) ([]Flow, error) {
	return m.FlowsInto(make([]Flow, 0, len(m.Pairs)), sol)
}

// FlowsInto is Flows appending into a reusable buffer (dst[:0] is used;
// its capacity is kept), so a steady-state caller converts solutions
// without allocating.
func (m *Model) FlowsInto(dst []Flow, sol *lp.Solution) ([]Flow, error) {
	flows := dst[:0]
	for v, x := range sol.X {
		r := math.Round(x)
		if math.Abs(x-r) > 1e-6 {
			return nil, fmt.Errorf("balance: non-integral flow l(%d,%d) = %g", m.Pairs[v][0], m.Pairs[v][1], x)
		}
		if r > 0 {
			flows = append(flows, Flow{From: m.Pairs[v][0], To: m.Pairs[v][1], Amount: int(r)})
		}
	}
	return flows, nil
}

// Solve runs the solver and converts the LP solution to integral flows.
// Status is passed through: callers must check it before using the flows.
// A done context aborts the solve with an error matching
// cancel.ErrCanceled; no flows are produced.
func Solve(ctx context.Context, m *Model, solver lp.Solver) ([]Flow, *lp.Solution, error) {
	return SolveInto(ctx, m, solver, nil)
}

// SolveInto is Solve converting flows into a reusable buffer
// (see FlowsInto). The returned flows alias buf's backing array.
func SolveInto(ctx context.Context, m *Model, solver lp.Solver, buf []Flow) ([]Flow, *lp.Solution, error) {
	sol, err := solver.Solve(ctx, m.Prob)
	if err != nil {
		return nil, nil, fmt.Errorf("balance: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, sol, nil
	}
	flows, err := m.FlowsInto(buf, sol)
	if err != nil {
		return nil, sol, err
	}
	return flows, sol, nil
}

// Apply moves vertices to realize the flows, consuming each (i,j) pool
// boundary-first, and returns the number of vertices moved. The
// assignment is modified in place.
func Apply(a *partition.Assignment, lay *layering.Result, flows []Flow) (int, error) {
	moved := 0
	for _, f := range flows {
		pool := lay.Pool(f.From, f.To)
		if f.Amount > len(pool) {
			return moved, fmt.Errorf("balance: flow %d→%d wants %d vertices, pool has %d",
				f.From, f.To, f.Amount, len(pool))
		}
		for _, v := range pool[:f.Amount] {
			if a.Part[v] != f.From {
				return moved, fmt.Errorf("balance: vertex %d no longer in partition %d", v, f.From)
			}
			a.Part[v] = f.To
			moved++
		}
	}
	return moved, nil
}

// Step runs one complete balancing stage (formulate → solve → apply) with
// the given ε. It reports the flows applied and the LP solution; when the
// LP is infeasible it returns ok=false with nothing applied.
func Step(ctx context.Context, g *graph.Graph, a *partition.Assignment, lay *layering.Result, targets []int, eps float64, solver lp.Solver) (flows []Flow, sol *lp.Solution, ok bool, err error) {
	sizes := a.Sizes(g)
	m, err := Formulate(lay.Delta, sizes, targets, eps)
	if err != nil {
		return nil, nil, false, err
	}
	flows, sol, err = Solve(ctx, m, solver)
	if err != nil {
		return nil, sol, false, err
	}
	if sol.Status != lp.Optimal {
		return nil, sol, false, nil
	}
	if _, err := Apply(a, lay, flows); err != nil {
		return flows, sol, false, err
	}
	return flows, sol, true, nil
}
