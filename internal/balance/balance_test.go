package balance

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/layering"
	"repro/internal/lp"
	"repro/internal/partition"
)

func TestRelaxedRHSExact(t *testing.T) {
	rhs := relaxedRHS([]int{8, 1, -1, -8}, 1)
	want := []int{8, 1, -1, -8}
	for i := range want {
		if rhs[i] != want[i] {
			t.Fatalf("rhs = %v, want %v", rhs, want)
		}
	}
}

func TestRelaxedRHSZeroSum(t *testing.T) {
	for _, eps := range []float64{1, 2, 3, 7} {
		rhs := relaxedRHS([]int{9, 4, -5, -8}, eps)
		sum := 0
		for _, x := range rhs {
			sum += x
		}
		if sum != 0 {
			t.Fatalf("eps=%g: rhs %v sums to %d", eps, rhs, sum)
		}
	}
}

func TestPropertyRelaxedRHS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(8)
		surplus := make([]int, p)
		for k := 0; k < p-1; k++ {
			surplus[k] = rng.Intn(21) - 10
			surplus[p-1] -= surplus[k]
		}
		eps := 1 + float64(rng.Intn(4))
		rhs := relaxedRHS(surplus, eps)
		sum := 0
		for j, x := range rhs {
			sum += x
			// |rhs| must not exceed |surplus| and direction must agree
			// (zero-sum repair may add at most one unit of drift).
			if surplus[j] == 0 && x != 0 && x != 1 && x != -1 {
				return false
			}
		}
		return sum == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// unbalancedStripes builds a 4×12 grid with a deliberately skewed 3-way
// striping: partition 0 gets 6 columns, partitions 1 and 2 get 3 each.
func unbalancedStripes() (*graph.Graph, *partition.Assignment) {
	g := graph.Grid(4, 12)
	a := partition.New(g.Order(), 3)
	for r := 0; r < 4; r++ {
		for c := 0; c < 12; c++ {
			var q int32
			switch {
			case c < 6:
				q = 0
			case c < 9:
				q = 1
			default:
				q = 2
			}
			a.Part[r*12+c] = q
		}
	}
	return g, a
}

func TestFormulateShape(t *testing.T) {
	g, a := unbalancedStripes()
	lay, err := layering.Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), 3)
	m, err := Formulate(lay.Delta, sizes, targets, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Stripes: only adjacent pairs (0,1),(1,0),(1,2),(2,1) have δ>0.
	if len(m.Pairs) != 4 {
		t.Fatalf("pairs = %v, want 4 pairs", m.Pairs)
	}
	if err := m.Prob.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStepBalancesStripes(t *testing.T) {
	for _, solver := range []lp.Solver{lp.Dense{}, lp.Bounded{}, lp.Revised{}} {
		g, a := unbalancedStripes()
		lay, err := layering.Layer(g, a)
		if err != nil {
			t.Fatal(err)
		}
		targets := partition.Targets(g.NumVertices(), 3)
		flows, sol, ok, err := Step(context.Background(), g, a, lay, targets, 1, solver)
		if err != nil {
			t.Fatalf("%s: %v", solver.Name(), err)
		}
		if !ok {
			t.Fatalf("%s: LP infeasible, status %v", solver.Name(), sol.Status)
		}
		sizes := a.Sizes(g)
		if !partition.Balanced(sizes) {
			t.Fatalf("%s: sizes %v not balanced after step", solver.Name(), sizes)
		}
		// Minimal total movement: partition 0 (24 vertices, target 16) can
		// only reach partition 1, and partition 2's deficit of 4 must be
		// forwarded through 1, so the optimum is l(0,1)=8 plus l(1,2)=4.
		total := 0
		for _, f := range flows {
			total += f.Amount
		}
		if total != 12 {
			t.Fatalf("%s: moved %d vertices, want 12 (minimum)", solver.Name(), total)
		}
		if err := a.Validate(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStepMovesBoundaryFirst(t *testing.T) {
	g, a := unbalancedStripes()
	lay, err := layering.Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	before := a.Clone()
	targets := partition.Targets(g.NumVertices(), 3)
	_, _, ok, err := Step(context.Background(), g, a, lay, targets, 1, lp.Bounded{})
	if err != nil || !ok {
		t.Fatalf("step failed: %v ok=%v", err, ok)
	}
	// Every vertex that moved from 0 to 1 must have been on 0's boundary
	// layers nearest to 1 — i.e. no moved vertex has a smaller-level
	// unmoved vertex in the same pool.
	pool := lay.Pool(0, 1)
	movedSet := map[graph.Vertex]bool{}
	for _, v := range pool {
		if before.Part[v] == 0 && a.Part[v] == 1 {
			movedSet[v] = true
		}
	}
	seenUnmoved := false
	for _, v := range pool {
		if movedSet[v] && seenUnmoved {
			t.Fatal("mover skipped a nearer-boundary vertex")
		}
		if !movedSet[v] {
			seenUnmoved = true
		}
	}
}

func TestStepInfeasibleWithoutAdjacency(t *testing.T) {
	// Two disconnected cliques with wildly different sizes: no δ between
	// them, so balancing is impossible and the LP must be infeasible.
	g := graph.NewWithVertices(8)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			_ = g.AddEdge(graph.Vertex(i), graph.Vertex(j), 1)
		}
	}
	_ = g.AddEdge(6, 7, 1)
	a := partition.New(8, 2)
	a.Part = []int32{0, 0, 0, 0, 0, 0, 1, 1}
	lay, err := layering.Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	targets := partition.Targets(8, 2)
	_, sol, ok, err := Step(context.Background(), g, a, lay, targets, 1, lp.Bounded{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("expected infeasible")
	}
	if sol.Status != lp.Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestApplyPoolExhaustion(t *testing.T) {
	g, a := unbalancedStripes()
	lay, err := layering.Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Apply(a, lay, []Flow{{From: 0, To: 1, Amount: 10000}})
	if err == nil {
		t.Fatal("over-large flow must error")
	}
}

func TestEpsilonReducesMovement(t *testing.T) {
	g, a := unbalancedStripes()
	lay, err := layering.Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	targets := partition.Targets(g.NumVertices(), 3)
	sizes := a.Sizes(g)
	m1, err := Formulate(lay.Delta, sizes, targets, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Formulate(lay.Delta, sizes, targets, 2)
	if err != nil {
		t.Fatal(err)
	}
	f1, s1, err := Solve(context.Background(), m1, lp.Bounded{})
	if err != nil || s1.Status != lp.Optimal {
		t.Fatalf("eps=1: %v %v", err, s1.Status)
	}
	f2, s2, err := Solve(context.Background(), m2, lp.Bounded{})
	if err != nil || s2.Status != lp.Optimal {
		t.Fatalf("eps=2: %v %v", err, s2.Status)
	}
	tot := func(fs []Flow) int {
		n := 0
		for _, f := range fs {
			n += f.Amount
		}
		return n
	}
	if tot(f2) >= tot(f1) {
		t.Fatalf("eps=2 moved %d, eps=1 moved %d; relaxation should move less", tot(f2), tot(f1))
	}
}

func TestPropertyStepNeverWorsensBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 3+rng.Intn(3), 8+rng.Intn(8)
		g := graph.Grid(rows, cols)
		p := 2 + rng.Intn(3)
		a := partition.New(g.Order(), p)
		// Random contiguous column split.
		cuts := make([]int, p-1)
		for i := range cuts {
			cuts[i] = 1 + rng.Intn(cols-1)
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				q := 0
				for _, cut := range cuts {
					if c >= cut {
						q++
					}
				}
				if q >= p {
					q = p - 1
				}
				a.Part[r*cols+c] = int32(q)
			}
		}
		lay, err := layering.Layer(g, a)
		if err != nil {
			return false
		}
		targets := partition.Targets(g.NumVertices(), p)
		imbBefore := maxDev(a.Sizes(g), targets)
		_, _, ok, err := Step(context.Background(), g, a, lay, targets, 1, lp.Bounded{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !ok {
			return true // infeasible is acceptable; nothing applied
		}
		imbAfter := maxDev(a.Sizes(g), targets)
		return imbAfter <= imbBefore && a.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func maxDev(sizes, targets []int) int {
	d := 0
	for i := range sizes {
		dev := sizes[i] - targets[i]
		if dev < 0 {
			dev = -dev
		}
		if dev > d {
			d = dev
		}
	}
	return d
}

func TestFormulateTolReducesMovement(t *testing.T) {
	g, a := unbalancedStripes()
	lay, err := layering.Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	targets := partition.Targets(g.NumVertices(), 3)
	sizes := a.Sizes(g)
	exact, err := Formulate(lay.Delta, sizes, targets, 1)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := FormulateTol(lay.Delta, sizes, targets, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	fe, se, err := Solve(context.Background(), exact, lp.Bounded{})
	if err != nil || se.Status != lp.Optimal {
		t.Fatalf("exact: %v %v", err, se)
	}
	fl, sl, err := Solve(context.Background(), loose, lp.Bounded{})
	if err != nil || sl.Status != lp.Optimal {
		t.Fatalf("loose: %v %v", err, sl)
	}
	tot := func(fs []Flow) int {
		n := 0
		for _, f := range fs {
			n += f.Amount
		}
		return n
	}
	if tot(fl) >= tot(fe) {
		t.Fatalf("slack moved %d, exact moved %d; tolerance should move less", tot(fl), tot(fe))
	}
}

func TestFormulateTolRejectsNegative(t *testing.T) {
	if _, err := FormulateTol([][]int{{0}}, []int{1}, []int{1}, 1, -1); err == nil {
		t.Fatal("negative slack must error")
	}
}

func TestFormulateTolSlackSatisfiesBand(t *testing.T) {
	// After applying a slack-2 solution, every partition is within 2 of
	// its target.
	g, a := unbalancedStripes()
	lay, err := layering.Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	targets := partition.Targets(g.NumVertices(), 3)
	m, err := FormulateTol(lay.Delta, a.Sizes(g), targets, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	flows, sol, err := Solve(context.Background(), m, lp.Bounded{})
	if err != nil || sol.Status != lp.Optimal {
		t.Fatalf("%v %v", err, sol)
	}
	if _, err := Apply(a, lay, flows); err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	for q := range sizes {
		dev := sizes[q] - targets[q]
		if dev < -2 || dev > 2 {
			t.Fatalf("partition %d deviates by %d (> slack)", q, dev)
		}
	}
}

// TestArenaFormulateMatchesOneShot: the arena-backed formulation must be
// the one-shot formulation exactly (modulo diagnostic names), across
// repeated reuse with changing ε, slack and sizes.
func TestArenaFormulateMatchesOneShot(t *testing.T) {
	g, a := unbalancedStripes()
	lay, err := layering.Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), 3)
	var ar Arena
	for _, tc := range []struct {
		eps   float64
		slack int
	}{{1, 0}, {2, 0}, {1, 2}, {4, 1}, {1, 0}} {
		want, err := FormulateTol(lay.Delta, sizes, targets, tc.eps, tc.slack)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ar.FormulateTol(lay.Delta, sizes, targets, tc.eps, tc.slack)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Pairs, want.Pairs) {
			t.Fatalf("eps=%g slack=%d: pairs diverge", tc.eps, tc.slack)
		}
		if !reflect.DeepEqual(got.RHS, want.RHS) {
			t.Fatalf("eps=%g slack=%d: RHS diverges", tc.eps, tc.slack)
		}
		if !lp.SameStructure(got.Prob, want.Prob) {
			t.Fatalf("eps=%g slack=%d: problem structure diverges", tc.eps, tc.slack)
		}
		if !reflect.DeepEqual(got.Prob.Obj, want.Prob.Obj) ||
			!reflect.DeepEqual(got.Prob.Upper, want.Prob.Upper) {
			t.Fatalf("eps=%g slack=%d: objective/bounds diverge", tc.eps, tc.slack)
		}
		for i := range want.Prob.Cons {
			if got.Prob.Cons[i].RHS != want.Prob.Cons[i].RHS {
				t.Fatalf("eps=%g slack=%d: constraint %d RHS diverges", tc.eps, tc.slack, i)
			}
		}
		if err := got.Prob.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestArenaFormulateSteadyStateAllocs: reusing a warm arena for the same
// dimensions must not allocate.
func TestArenaFormulateSteadyStateAllocs(t *testing.T) {
	g, a := unbalancedStripes()
	lay, err := layering.Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), 3)
	var ar Arena
	if _, err := ar.FormulateTol(lay.Delta, sizes, targets, 1, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ar.FormulateTol(lay.Delta, sizes, targets, 1, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state arena formulation allocates %.1f objects/op, want 0", allocs)
	}
}
