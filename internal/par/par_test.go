package par

import (
	"sync/atomic"
	"testing"
)

func checkCover(t *testing.T, rs []Range, n int) {
	t.Helper()
	if len(rs) == 0 {
		t.Fatalf("no ranges for n=%d", n)
	}
	pos := 0
	for i, r := range rs {
		if r.Lo != pos {
			t.Fatalf("range %d starts at %d, want %d (ranges %v)", i, r.Lo, pos, rs)
		}
		if r.Hi < r.Lo {
			t.Fatalf("range %d inverted: %+v", i, r)
		}
		pos = r.Hi
	}
	if pos != n && !(n <= 0 && pos == 0) {
		t.Fatalf("ranges cover [0,%d), want [0,%d): %v", pos, n, rs)
	}
}

func TestSplitCoversAndBalances(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 100, 101} {
		for _, w := range []int{1, 2, 3, 8, 200} {
			rs := Split(nil, n, w)
			checkCover(t, rs, n)
			if n > 0 {
				want := w
				if want > n {
					want = n
				}
				if len(rs) != want {
					t.Fatalf("Split(%d,%d) produced %d ranges, want %d", n, w, len(rs), want)
				}
				for _, r := range rs {
					if r.Len() < n/want || r.Len() > n/want+1 {
						t.Fatalf("Split(%d,%d): unbalanced range %+v", n, w, r)
					}
				}
			}
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := Split(nil, 1234, 7)
	b := Split(nil, 1234, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestSplitByWeightCovers(t *testing.T) {
	// A skewed prefix-sum: one heavy vertex among light ones.
	cum := []int32{0, 1, 2, 103, 104, 105, 106, 107}
	for _, w := range []int{1, 2, 3, 10} {
		rs := SplitByWeight(nil, cum, w)
		checkCover(t, rs, len(cum)-1)
	}
	// The heavy vertex must not drag its whole neighborhood into one
	// shard when two workers split ~107 weight: the cut lands right
	// after the heavy vertex.
	rs := SplitByWeight(nil, cum, 2)
	if len(rs) != 2 || rs[0].Hi != 3 {
		t.Fatalf("weighted split misplaced the cut: %v", rs)
	}
	// Empty input still yields one (empty) range.
	rs = SplitByWeight(nil, []int32{0}, 4)
	checkCover(t, rs, 0)
}

type countTask struct {
	hits  []int32
	total atomic.Int64
}

func (t *countTask) Do(w int) {
	t.hits[w]++
	t.total.Add(1)
}

func TestGroupRunsEveryWorker(t *testing.T) {
	var g Group
	ct := &countTask{hits: make([]int32, 8)}
	for iter := 0; iter < 50; iter++ {
		g.Run(8, ct)
	}
	for w, h := range ct.hits {
		if h != 50 {
			t.Fatalf("worker %d ran %d times, want 50", w, h)
		}
	}
	if got := ct.total.Load(); got != 400 {
		t.Fatalf("total %d, want 400", got)
	}
	if len(g.Times()) < 8 {
		t.Fatalf("Times has %d slots, want >= 8", len(g.Times()))
	}
	g.Reset()
	for _, d := range g.Times() {
		if d != 0 {
			t.Fatal("Reset left a non-zero accumulator")
		}
	}
}

func TestGroupSequentialPath(t *testing.T) {
	var g Group
	ct := &countTask{hits: make([]int32, 1)}
	g.Run(1, ct)
	g.Run(0, ct) // clamped to 1
	if ct.hits[0] != 2 {
		t.Fatalf("worker 0 ran %d times, want 2", ct.hits[0])
	}
}

func TestGroupRunSteadyStateAllocs(t *testing.T) {
	var g Group
	ct := &countTask{hits: make([]int32, 8)}
	g.Run(8, ct)
	allocs := testing.AllocsPerRun(50, func() { g.Run(8, ct) })
	if allocs > 0 {
		t.Fatalf("warm Group.Run allocates %.1f objects/op, want 0", allocs)
	}
}

// stampTask has every worker race to claim all slots; the claimed sets
// must partition the index range (each slot exactly one winner).
type stampTask struct {
	st   *Stamps
	n    int
	wins []atomic.Int32
}

func (t *stampTask) Do(w int) {
	for i := 0; i < t.n; i++ {
		if t.st.Claim(int32(i)) {
			t.wins[i].Add(1)
		}
	}
}

func TestStampsClaimOneWinner(t *testing.T) {
	var st Stamps
	const n = 4096
	st.Grow(n)
	var g Group
	for gen := 0; gen < 3; gen++ {
		st.Next()
		task := &stampTask{st: &st, n: n, wins: make([]atomic.Int32, n)}
		g.Run(8, task)
		for i := range task.wins {
			if got := task.wins[i].Load(); got != 1 {
				t.Fatalf("gen %d: slot %d claimed %d times, want 1", gen, i, got)
			}
			if !st.Marked(int32(i)) {
				t.Fatalf("gen %d: slot %d not marked after claim", gen, i)
			}
		}
	}
}

func TestStampsTryMarkAndWrap(t *testing.T) {
	var st Stamps
	st.Grow(4)
	st.Next()
	if !st.TryMark(2) || st.TryMark(2) {
		t.Fatal("TryMark must succeed exactly once per generation")
	}
	if st.Marked(0) {
		t.Fatal("unmarked slot reports marked")
	}
	st.Next()
	if st.Marked(2) {
		t.Fatal("Next did not invalidate marks")
	}
	// Force the wrap path: a stale stamp equal to the post-wrap
	// generation must not masquerade as current.
	st.s[3] = 1
	st.gen = ^uint32(0)
	st.Next()
	if st.gen != 1 {
		t.Fatalf("gen after wrap = %d, want 1", st.gen)
	}
	if st.Marked(3) {
		t.Fatal("stale stamp survived the wrap clear")
	}
	// Grow after use keeps existing marks.
	st.TryMark(1)
	st.Grow(16)
	if !st.Marked(1) || st.Marked(8) {
		t.Fatal("Grow corrupted marks")
	}
}
