// Package par provides the deterministic fork-join primitives the
// sharded engine kernels are built on: contiguous shard computation
// (Split, SplitByWeight) and a reusable worker Group whose steady-state
// Run costs zero heap allocations.
//
// # Determinism contract
//
// Shards are pure functions of (size, worker count): the same inputs
// always produce the same contiguous ranges, so a kernel that gives
// worker w shard w and merges per-worker results in shard order is
// deterministic by construction. Nothing here depends on scheduling,
// timing, or GOMAXPROCS.
//
// # Allocation contract
//
// A Group grows its per-worker thunks and timing slots to the largest
// worker count seen and then reuses them. Goroutines are spawned through
// pre-built argument-less closures (a `go f(x)` statement allocates its
// argument frame on every call; `go thunk()` does not), so a warm
// Group.Run performs no heap allocation — the property the engine's
// 0 allocs/op steady state is built on.
package par

import (
	"sync"
	"sync/atomic"
	"time"
)

// Range is one contiguous shard: the half-open interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Len returns the number of items in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split appends at most workers near-equal contiguous ranges covering
// [0, n) to dst and returns the extended slice. At least one range is
// always produced (empty when n <= 0), never more than n non-empty
// ones, and the result is a pure function of (n, workers).
func Split(dst []Range, n, workers int) []Range {
	if n <= 0 {
		return append(dst, Range{})
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		dst = append(dst, Range{Lo: w * n / workers, Hi: (w + 1) * n / workers})
	}
	return dst
}

// SplitByWeight appends at most workers contiguous ranges covering
// [0, len(cum)-1) to dst, cutting so every range carries a near-equal
// share of the cumulative weight. cum must be a monotone prefix-sum
// array (cum[i] <= cum[i+1]); a CSR row-pointer array is exactly this
// shape, so sharding vertices with cum = XAdj balances arc work across
// workers even when degrees are skewed. Like Split, the result is a
// pure function of its inputs; individual ranges may be empty.
func SplitByWeight(dst []Range, cum []int32, workers int) []Range {
	n := len(cum) - 1
	if n <= 0 {
		return append(dst, Range{})
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	total := int64(cum[n] - cum[0])
	lo := 0
	for w := 0; w < workers; w++ {
		hi := n
		if w < workers-1 {
			target := int64(cum[0]) + total*int64(w+1)/int64(workers)
			hi = lo
			for hi < n && int64(cum[hi+1]) <= target {
				hi++
			}
			// Take one more vertex when that lands the cut nearer the
			// target — a heavy vertex belongs on whichever side leaves
			// the split more even.
			if hi < n && int64(cum[hi+1])-target < target-int64(cum[hi]) {
				hi++
			}
		}
		dst = append(dst, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return dst
}

// Stamps is a reusable generation-stamped marker set over a dense index
// range — the claim/dedup primitive every sharded kernel in this
// repository is built on. Advancing the generation (Next) invalidates
// all marks in O(1), so a kernel can dedup or claim per call without an
// O(n) clear; slots grow to the largest index range seen and are then
// reused.
//
// Two marking forms exist with one shared meaning ("the first caller
// per generation wins"):
//
//   - TryMark is the sequential form (plain loads and stores);
//   - Claim is the parallel form: an atomic compare-and-swap admits
//     exactly one worker per slot per generation, so concurrent workers
//     can use a claim to decide *membership* deterministically (who won
//     is scheduling-dependent, but the claimed set is a pure function of
//     the inputs) while keeping the slot's dependent writes race-free.
//
// Mixing the forms across phases of one generation is safe when the
// sequential phase completes before the parallel region starts (the
// fork establishes the happens-before edge) — the pattern the engine's
// journal-then-diff boundary sync uses.
type Stamps struct {
	s   []uint32
	gen uint32
}

// Grow extends the slot range to cover indices [0, n).
func (st *Stamps) Grow(n int) {
	if cap(st.s) < n {
		s := make([]uint32, n)
		copy(s, st.s)
		st.s = s
		return
	}
	for len(st.s) < n {
		st.s = append(st.s, 0)
	}
}

// Next starts a new generation, invalidating every mark. On the (rare)
// 2^32nd call the counter wraps and the slots are cleared so a stamp
// from exactly 2^32 generations ago cannot masquerade as current.
func (st *Stamps) Next() {
	st.gen++
	if st.gen == 0 {
		for i := range st.s {
			st.s[i] = 0
		}
		st.gen = 1
	}
}

// Marked reports whether i has been marked this generation. It must not
// race with concurrent Claim calls on the same slot.
func (st *Stamps) Marked(i int32) bool { return st.s[i] == st.gen }

// TryMark marks i, reporting whether this call was the first this
// generation. Sequential form — callers inside a parallel region must
// use Claim.
func (st *Stamps) TryMark(i int32) bool {
	if st.s[i] == st.gen {
		return false
	}
	st.s[i] = st.gen
	return true
}

// Claim atomically marks i, reporting true for exactly one caller per
// generation — the parallel form of TryMark.
func (st *Stamps) Claim(i int32) bool {
	cur := atomic.LoadUint32(&st.s[i])
	return cur != st.gen && atomic.CompareAndSwapUint32(&st.s[i], cur, st.gen)
}

// Task is one shardable parallel region. Do(w) is invoked exactly once
// per worker index w in [0, workers); implementations shard their input
// by w and must touch only worker-private state plus data-race-free
// shared reads (or atomically claimed slots).
type Task interface {
	Do(w int)
}

// Group is a reusable fork-join executor. The zero value is ready to
// use. A Group is not safe for concurrent Run calls — it belongs to one
// engine (or one scratch), mirroring the engine's own single-threaded
// contract — but the workers it spawns are, of course, concurrent.
//
// Group additionally accumulates per-worker busy time (the wall clock
// each worker spent inside Task.Do, excluding the join wait) across Run
// calls, which the engine rolls up into Stats.WorkerBusy.
type Group struct {
	wg     sync.WaitGroup
	task   Task
	thunks []func()
	times  []time.Duration
}

// grow readies the per-worker thunks and timing slots.
func (g *Group) grow(workers int) {
	for len(g.thunks) < workers {
		w := len(g.thunks)
		g.thunks = append(g.thunks, func() { g.runWorker(w) })
	}
	for len(g.times) < workers {
		g.times = append(g.times, 0)
	}
}

// runWorker executes the current task's shard w on a spawned goroutine.
func (g *Group) runWorker(w int) {
	defer g.wg.Done()
	t0 := time.Now()
	g.task.Do(w)
	g.times[w] += time.Since(t0)
}

// Run executes t.Do(w) for every w in [0, workers): workers-1 spawned
// goroutines plus the calling goroutine as worker 0, returning after
// all complete. workers <= 1 runs t.Do(0) inline with no goroutines —
// the exact sequential path. A warm Run allocates nothing.
func (g *Group) Run(workers int, t Task) {
	if workers < 1 {
		workers = 1
	}
	g.grow(workers)
	if workers == 1 {
		t0 := time.Now()
		t.Do(0)
		g.times[0] += time.Since(t0)
		return
	}
	g.task = t
	g.wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go g.thunks[w]()
	}
	t0 := time.Now()
	t.Do(0)
	g.times[0] += time.Since(t0)
	g.wg.Wait()
	g.task = nil
}

// Times returns the accumulated per-worker busy durations since the
// last Reset. The slice is owned by the Group and valid until the next
// Run; index w is worker w.
func (g *Group) Times() []time.Duration { return g.times }

// Reset zeroes the per-worker busy-time accumulators.
func (g *Group) Reset() {
	for i := range g.times {
		g.times[i] = 0
	}
}
