package refine

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

// parallelFixture builds a connected random geometric graph with an
// irregular striped assignment and its boundary seed list (duplicated,
// to exercise the dedup path).
func parallelFixture(t testing.TB, n, p int, seed int64) (*graph.CSR, *partition.Assignment, []graph.Vertex) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, _ := graph.RandomGeometric(n, 0.08, rng)
	graph.EnsureConnected(g)
	a := partition.New(g.Order(), p)
	for v := 0; v < g.Order(); v++ {
		a.Part[v] = int32(v * p / g.Order())
	}
	for i := 0; i < n/10; i++ {
		a.Part[rng.Intn(g.Order())] = int32(rng.Intn(p))
	}
	c := g.ToCSR()
	var seeds []graph.Vertex
	for v := 0; v < c.Order(); v++ {
		for _, u := range c.Row(graph.Vertex(v)) {
			if a.Part[u] != a.Part[v] {
				seeds = append(seeds, graph.Vertex(v), graph.Vertex(v))
				break
			}
		}
	}
	return c, a, seeds
}

// TestParallelGainsEquivalence: the sharded seeded gains kernel must be
// bit-identical to the sequential scan for every worker count.
func TestParallelGainsEquivalence(t *testing.T) {
	for _, cfg := range []struct {
		n, p int
		seed int64
	}{
		{60, 3, 11}, {200, 5, 12}, {500, 8, 13}, {700, 32, 14},
	} {
		c, a, seeds := parallelFixture(t, cfg.n, cfg.p, cfg.seed)
		for _, strict := range []bool{false, true} {
			var seq Scratch
			want, err := seq.GainsSeeded(c, a, strict, seeds)
			if err != nil {
				t.Fatal(err)
			}
			for _, procs := range []int{2, 3, 7, 16, runtime.GOMAXPROCS(0)} {
				ps := Scratch{Procs: procs}
				got, err := ps.GainsSeeded(c, a, strict, seeds)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.B, want.B) {
					t.Fatalf("procs=%d strict=%v: B diverges", procs, strict)
				}
				if !reflect.DeepEqual(got.Gain, want.Gain) {
					t.Fatalf("procs=%d strict=%v: Gain diverges", procs, strict)
				}
				for i := 0; i < cfg.p; i++ {
					for j := 0; j < cfg.p; j++ {
						gp, wp := got.Pool(int32(i), int32(j)), want.Pool(int32(i), int32(j))
						if len(gp) != len(wp) {
							t.Fatalf("procs=%d: pool(%d,%d) length diverges", procs, i, j)
						}
						for k := range gp {
							if gp[k] != wp[k] {
								t.Fatalf("procs=%d: pool(%d,%d)[%d] diverges", procs, i, j, k)
							}
						}
					}
				}
			}
		}
	}
}

// TestParallelGainsScratchReuse drives one parallel scratch across
// different graph and partition sizes — arena reuse (including the P²
// pair buckets) must never leak candidates between calls.
func TestParallelGainsScratchReuse(t *testing.T) {
	s := Scratch{Procs: 4}
	for _, cfg := range []struct {
		n, p int
		seed int64
	}{
		{100, 6, 21}, {400, 3, 22}, {100, 8, 23}, {400, 3, 22},
	} {
		c, a, seeds := parallelFixture(t, cfg.n, cfg.p, cfg.seed)
		got, err := s.GainsSeeded(c, a, false, seeds)
		if err != nil {
			t.Fatal(err)
		}
		var seq Scratch
		want, err := seq.GainsSeeded(c, a, false, seeds)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.B, want.B) || !reflect.DeepEqual(got.Gain, want.Gain) {
			t.Fatalf("n=%d p=%d: reuse diverges", cfg.n, cfg.p)
		}
	}
}
