// The sharded parallel form of the seeded gains kernel. The deduped
// seed list is split into contiguous count-balanced shards; each worker
// classifies its seeds into a private arena (gainWorker) and the join
// concatenates per-worker pair buckets in worker order. Because finish()
// sorts every bucket under a total order (gain descending, id
// ascending), the concatenation order never reaches the Candidates: the
// parallel result is bit-identical to the sequential scan's for any
// worker count — fuzzed at the engine level (FuzzParallelEquivalence).
package refine

import (
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/partition"
)

// parScanMin is the deduped seed count below which the scan runs
// inline instead of forking the worker group.
const parScanMin = 48

// gainWorker is one worker's private arena. touchedPairs lists the pair
// buckets this worker filled, so the merge touches O(filled) buckets
// instead of all P² per worker.
type gainWorker struct {
	out          []float64
	touched      []int32
	buckets      [][]cand
	touchedPairs []int32
}

// group returns the fork-join executor to run the scan region on.
func (s *Scratch) group() *par.Group {
	if s.Group != nil {
		return s.Group
	}
	return &s.ownGroup
}

// gainsSeededPar is the sharded counterpart of the seeded sequential
// scan in GainsSeeded.
func (s *Scratch) gainsSeededPar(c *graph.CSR, a *partition.Assignment, strict bool, seeds []graph.Vertex) *Candidates {
	n := c.Order()
	p := a.P
	out := s.grow(n, p)

	// Dedup the seed list (the API allows duplicates; each vertex must
	// be owned by exactly one worker) using the same stamp generation
	// the sequential consider() would.
	buf := s.seedBuf[:0]
	for _, v := range seeds {
		if !c.Live[v] || s.stamp[v] == s.gen {
			continue
		}
		s.stamp[v] = s.gen
		buf = append(buf, v)
	}
	s.seedBuf = buf

	// Tiny boundaries classify inline rather than paying the fork-join;
	// the cutoff depends only on the seed count, and the result is
	// worker-count independent anyway, so determinism is unaffected.
	procs := s.Procs
	if len(buf) < parScanMin {
		procs = 1
	}
	s.shards = par.Split(s.shards[:0], len(buf), procs)

	// Grow arenas only for the workers that will actually run, so a
	// sequential fallback (or a clamped shard count) never retains
	// Procs unused P²-bucket arenas.
	for len(s.gws) < len(s.shards) {
		s.gws = append(s.gws, gainWorker{})
	}
	for w := range s.gws[:len(s.shards)] {
		ws := &s.gws[w]
		for len(ws.out) < p {
			ws.out = append(ws.out, 0)
		}
		if cap(ws.buckets) < p*p {
			ws.buckets = make([][]cand, p*p)
		}
		ws.buckets = ws.buckets[:p*p]
	}
	s.task = gainsTask{s: s, c: c, a: a, strict: strict}
	s.group().Run(len(s.shards), &s.task)
	// Drop the snapshot/assignment pointers so a long-lived scratch
	// never pins a caller's dropped graph state.
	s.task = gainsTask{}

	// Merge: concatenate per-worker buckets in worker order and hand
	// the (truncated) worker buckets back for reuse. Bucket order is
	// erased by the total-order sort in finish().
	for w := range s.shards {
		ws := &s.gws[w]
		for _, k := range ws.touchedPairs {
			s.buckets[k] = append(s.buckets[k], ws.buckets[k]...)
			ws.buckets[k] = ws.buckets[k][:0]
		}
		ws.touchedPairs = ws.touchedPairs[:0]
	}
	s.finish()
	return out
}

// gainsTask classifies one shard of the deduped seed list.
type gainsTask struct {
	s      *Scratch
	c      *graph.CSR
	a      *partition.Assignment
	strict bool
}

func (t *gainsTask) Do(w int) {
	s := t.s
	ws := &s.gws[w]
	sh := s.shards[w]
	for _, v := range s.seedBuf[sh.Lo:sh.Hi] {
		s.considerInto(ws, v, t.c.Row(v), t.c.RowWeights(v), t.a, t.strict)
	}
}

// considerInto is consider() against a worker-private arena: same
// classification math, but the duplicate-seed stamp guard is gone (the
// seed list is pre-deduped) and the candidate lands in the worker's own
// pair bucket. v is owned by the calling worker, so the Gain[v] write
// is race-free; everything else it touches is worker-private or a
// shared read.
func (s *Scratch) considerInto(ws *gainWorker, v graph.Vertex, adj []graph.Vertex, wts []float64, a *partition.Assignment, strict bool) {
	pv := a.Part[v]
	var in float64
	out := ws.out
	touched := ws.touched[:0]
	for k, u := range adj {
		pu := a.Part[u]
		if pu == pv {
			in += wts[k]
			continue
		}
		if out[pu] == 0 {
			touched = append(touched, pu)
		}
		out[pu] += wts[k]
	}
	bestJ := int32(-1)
	var bestGain float64
	for _, j := range touched {
		gain := out[j] - in
		out[j] = 0
		if gain < 0 || (strict && gain == 0) {
			continue
		}
		if bestJ < 0 || gain > bestGain || (gain == bestGain && j < bestJ) {
			bestJ, bestGain = j, gain
		}
	}
	ws.touched = touched[:0]
	if bestJ >= 0 {
		p := s.cands.P
		k := int32(pv)*int32(p) + bestJ
		if len(ws.buckets[k]) == 0 {
			ws.touchedPairs = append(ws.touchedPairs, k)
		}
		ws.buckets[k] = append(ws.buckets[k], cand{v, bestGain})
		s.cands.Gain[v] = bestGain
	}
}
