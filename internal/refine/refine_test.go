package refine

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/partition"
)

// jaggedStripes builds a 6×6 grid split into two halves with a deliberately
// jagged boundary that refinement should straighten.
func jaggedStripes() (*graph.Graph, *partition.Assignment) {
	g := graph.Grid(6, 6)
	a := partition.New(g.Order(), 2)
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			p := int32(0)
			if c >= 3 {
				p = 1
			}
			a.Part[r*6+c] = p
		}
	}
	// Poke a zig-zag: swap two vertices across the boundary.
	a.Part[2*6+2] = 1 // (2,2) joins right
	a.Part[3*6+3] = 0 // (3,3) joins left
	return g, a
}

func TestGainsBasic(t *testing.T) {
	g, a := jaggedStripes()
	c, err := Gains(g, a, false)
	if err != nil {
		t.Fatal(err)
	}
	// The two swapped vertices are surrounded by the other side: they are
	// strict candidates to move back.
	if c.Gain[2*6+2] <= 0 {
		t.Fatalf("vertex (2,2) gain = %g, want > 0", c.Gain[2*6+2])
	}
	if c.Gain[3*6+3] <= 0 {
		t.Fatalf("vertex (3,3) gain = %g, want > 0", c.Gain[3*6+3])
	}
	if c.B[1][0] == 0 || c.B[0][1] == 0 {
		t.Fatalf("B = %v, want candidates both ways", c.B)
	}
}

func TestGainsStrictSubset(t *testing.T) {
	g, a := jaggedStripes()
	loose, err := Gains(g, a, false)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Gains(g, a, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if strict.B[i][j] > loose.B[i][j] {
				t.Fatalf("strict B[%d][%d]=%d exceeds loose %d", i, j, strict.B[i][j], loose.B[i][j])
			}
		}
	}
}

func TestRefineStraightensBoundary(t *testing.T) {
	g, a := jaggedStripes()
	before := partition.Cut(g, a)
	sizesBefore := a.Sizes(g)
	st, err := Refine(g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := partition.Cut(g, a)
	if after.TotalWeight >= before.TotalWeight {
		t.Fatalf("cut %g → %g, want improvement", before.TotalWeight, after.TotalWeight)
	}
	// The ideal straight boundary cuts 6 edges.
	if after.Total != 6 {
		t.Fatalf("refined cut = %d, want 6", after.Total)
	}
	sizesAfter := a.Sizes(g)
	for i := range sizesBefore {
		if sizesBefore[i] != sizesAfter[i] {
			t.Fatalf("refinement changed sizes %v → %v", sizesBefore, sizesAfter)
		}
	}
	if st.Moved == 0 || st.Rounds == 0 {
		t.Fatalf("stats %+v, want movement", st)
	}
	if st.CutAfter != 6 || st.CutBefore != float64(before.TotalWeight) {
		t.Fatalf("stats cut %g→%g inconsistent", st.CutBefore, st.CutAfter)
	}
}

func TestRefineNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 4+rng.Intn(4), 4+rng.Intn(4)
		g := graph.Grid(rows, cols)
		p := 2 + rng.Intn(3)
		if g.NumVertices() < p {
			return true
		}
		a := partition.New(g.Order(), p)
		for v := 0; v < g.Order(); v++ {
			a.Part[v] = int32(rng.Intn(p))
		}
		before := partition.Cut(g, a).TotalWeight
		sizesBefore := a.Sizes(g)
		st, err := Refine(g, a, Options{MaxRounds: 4})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		after := partition.Cut(g, a).TotalWeight
		if after > before {
			return false
		}
		if st.CutAfter != after {
			return false
		}
		sizesAfter := a.Sizes(g)
		for i := range sizesBefore {
			if sizesBefore[i] != sizesAfter[i] {
				return false
			}
		}
		return a.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineSolverChoiceEquivalent(t *testing.T) {
	for _, s := range []lp.Solver{lp.Dense{}, lp.Bounded{}, lp.Revised{}} {
		g, a := jaggedStripes()
		_, err := Refine(g, a, Options{Solver: s})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if cut := partition.Cut(g, a); cut.Total != 6 {
			t.Fatalf("%s: cut %d, want 6", s.Name(), cut.Total)
		}
	}
}

func TestGreedyImprovesJaggedBoundary(t *testing.T) {
	g, a := jaggedStripes()
	before := partition.Cut(g, a).TotalWeight
	moved := Greedy(g, a, 0, 1)
	after := partition.Cut(g, a).TotalWeight
	if moved == 0 {
		t.Fatal("greedy should move the two stranded vertices")
	}
	if after >= before {
		t.Fatalf("greedy cut %g → %g, want improvement", before, after)
	}
	if !partition.Balanced(a.Sizes(g)) {
		t.Fatalf("greedy broke balance: %v", a.Sizes(g))
	}
}

func TestGreedyRespectsBalanceGuard(t *testing.T) {
	// After Greedy with skew s, every partition's size stays within
	// [min(before, target−s), max(before, target+s)]: a partition already
	// outside the band is never pushed further out.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.Grid(5, 5)
		p := 2
		a := partition.New(g.Order(), p)
		for v := 0; v < g.Order(); v++ {
			a.Part[v] = int32(rng.Intn(p))
		}
		before := a.Sizes(g)
		targets := partition.Targets(g.NumVertices(), p)
		skew := 1
		Greedy(g, a, 0, skew)
		after := a.Sizes(g)
		for q := 0; q < p; q++ {
			lo := min(before[q], targets[q]-skew)
			hi := max(before[q], targets[q]+skew)
			if after[q] < lo || after[q] > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRejectsDoubleMove(t *testing.T) {
	g, a := jaggedStripes()
	c, err := Gains(g, a, false)
	if err != nil {
		t.Fatal(err)
	}
	_, pairs := Formulate(c)
	// Construct a bogus flow exceeding a pool.
	x := make([]float64, len(pairs))
	for i, pr := range pairs {
		x[i] = float64(c.B[pr[0]][pr[1]] + 5)
	}
	if _, err := Apply(a, c, pairs, x); err == nil {
		t.Fatal("over-pool flow must error")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestLPArenaFormulateMatchesOneShot: the arena-backed refinement LP
// must match the one-shot formulation exactly (modulo names), across
// reuse with both candidate-test modes.
func TestLPArenaFormulateMatchesOneShot(t *testing.T) {
	g, a := jaggedStripes()
	var ar LPArena
	for _, strict := range []bool{false, true, false} {
		c, err := Gains(g, a, strict)
		if err != nil {
			t.Fatal(err)
		}
		wantProb, wantPairs := Formulate(c)
		gotProb, gotPairs := ar.Formulate(c)
		if !reflect.DeepEqual(gotPairs, wantPairs) {
			t.Fatalf("strict=%v: pairs diverge", strict)
		}
		if !lp.SameStructure(gotProb, wantProb) {
			t.Fatalf("strict=%v: problem structure diverges", strict)
		}
		if !reflect.DeepEqual(gotProb.Obj, wantProb.Obj) ||
			!reflect.DeepEqual(gotProb.Upper, wantProb.Upper) {
			t.Fatalf("strict=%v: objective/bounds diverge", strict)
		}
		if err := gotProb.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLPArenaSteadyStateAllocs: reusing a warm arena for the same
// candidate shape must not allocate.
func TestLPArenaSteadyStateAllocs(t *testing.T) {
	g, a := jaggedStripes()
	c, err := Gains(g, a, false)
	if err != nil {
		t.Fatal(err)
	}
	var ar LPArena
	ar.Formulate(c)
	allocs := testing.AllocsPerRun(20, func() {
		ar.Formulate(c)
	})
	if allocs > 0 {
		t.Fatalf("steady-state arena formulation allocates %.1f objects/op, want 0", allocs)
	}
}
