package refine

import (
	"container/heap"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Greedy is a sequential boundary-refinement baseline in the
// Kernighan–Lin/Fiduccia–Mattheyses family (the "mincut-based methods" of
// the paper's §1 heuristics list): repeatedly move the single
// highest-gain boundary vertex to its best neighboring partition, subject
// to the FM balance criterion that no partition drift more than maxSkew
// vertices from its ideal target size, each vertex moving at most once.
// It serves as the ablation comparator for the LP refinement —
// centralised and inherently sequential where the LP phase is
// parallelizable.
//
// It modifies a in place and returns the number of vertices moved.
func Greedy(g *graph.Graph, a *partition.Assignment, maxMoves, maxSkew int) int {
	if maxMoves <= 0 {
		maxMoves = g.NumVertices()
	}
	if maxSkew < 1 {
		maxSkew = 1
	}
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), a.P)
	moved := 0
	lockedMove := make([]bool, g.Order())

	// Max-heap on gain.
	h := &gainHeap{}
	push := func(v graph.Vertex) {
		pv := a.Part[v]
		var in float64
		out := map[int32]float64{}
		ws := g.EdgeWeights(v)
		for k, u := range g.Neighbors(v) {
			pu := a.Part[u]
			if pu == pv {
				in += ws[k]
			} else {
				out[pu] += ws[k]
			}
		}
		for j, o := range out {
			if o-in > 0 {
				heap.Push(h, gainItem{v, j, o - in})
			}
		}
	}
	g.ForEachVertex(push)
	for h.Len() > 0 && moved < maxMoves {
		it := heap.Pop(h).(gainItem)
		if lockedMove[it.v] {
			continue
		}
		from := a.Part[it.v]
		if from == it.to {
			continue
		}
		// FM balance guard: neither endpoint may drift past maxSkew from
		// its target after the move.
		if sizes[from]-1 < targets[from]-maxSkew || sizes[it.to]+1 > targets[it.to]+maxSkew {
			continue
		}
		// Gain may be stale; recompute and verify.
		var in float64
		var out float64
		ws := g.EdgeWeights(it.v)
		for k, u := range g.Neighbors(it.v) {
			pu := a.Part[u]
			if pu == from {
				in += ws[k]
			} else if pu == it.to {
				out += ws[k]
			}
		}
		if out-in <= 0 {
			continue
		}
		a.Part[it.v] = it.to
		sizes[from]--
		sizes[it.to]++
		lockedMove[it.v] = true
		moved++
		// Neighbors' gains changed; repush the unlocked ones.
		for _, u := range g.Neighbors(it.v) {
			if !lockedMove[u] {
				push(u)
			}
		}
	}
	return moved
}

// gainItem is a candidate move in the greedy refinement heap.
type gainItem struct {
	v    graph.Vertex
	to   int32
	gain float64
}

type gainHeap []gainItem

func (h gainHeap) Len() int           { return len(h) }
func (h gainHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)        { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
