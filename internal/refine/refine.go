// Package refine implements the paper's Step 4: cut-reducing vertex
// movement under exact load preservation. Boundary vertices whose edge
// count toward a foreign partition j is at least their internal edge count
// are candidates b(i,j); the LP
//
//	maximize   Σ l(i,j)
//	subject to 0 ≤ l(i,j) ≤ b(i,j)
//	           outflow(j) − inflow(j) = 0      for every j
//
// moves as many of them as possible without disturbing partition sizes.
// The step is iterated; after a configurable number of rounds the
// candidate test switches from ≥ to > (the paper's "strict inequality"
// guard against vertices with zero net gain oscillating between
// partitions).
package refine

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/partition"
)

// Candidates holds the per-pair movable vertex pools of one refinement
// round.
type Candidates struct {
	P int
	// B[i][j] = b(i,j): number of candidate vertices in partition i whose
	// move to j does not increase (loose) or strictly decreases (strict)
	// the cut.
	B [][]int
	// pools[i][j] lists those candidates, best gain first.
	pools [][][]graph.Vertex
	// Gain[v] is out(v, best j) − in(v) for bookkeeping (0 for
	// non-candidates).
	Gain []float64
}

// Pool returns the candidates for the (i,j) pair, best gain first.
func (c *Candidates) Pool(i, j int32) []graph.Vertex { return c.pools[i][j] }

// Gains scans all boundary vertices and builds the candidate pools.
// strict selects the > 0 test instead of ≥ 0.
func Gains(g *graph.Graph, a *partition.Assignment, strict bool) (*Candidates, error) {
	if err := a.Validate(g); err != nil {
		return nil, fmt.Errorf("refine: %w", err)
	}
	p := a.P
	c := &Candidates{
		P:     p,
		B:     make([][]int, p),
		pools: make([][][]graph.Vertex, p),
		Gain:  make([]float64, g.Order()),
	}
	for i := 0; i < p; i++ {
		c.B[i] = make([]int, p)
		c.pools[i] = make([][]graph.Vertex, p)
	}
	type cand struct {
		v    graph.Vertex
		gain float64
	}
	cands := make([][]cand, p*p)
	out := make([]float64, p)
	var touched []int32
	for _, v := range g.Vertices() {
		pv := a.Part[v]
		var in float64
		touched = touched[:0]
		ws := g.EdgeWeights(v)
		for k, u := range g.Neighbors(v) {
			pu := a.Part[u]
			if pu == pv {
				in += ws[k]
				continue
			}
			if out[pu] == 0 {
				touched = append(touched, pu)
			}
			out[pu] += ws[k]
		}
		// A vertex may qualify toward several foreign partitions; it joins
		// only the pool of its best one (ties toward the smaller id) so
		// the pools are disjoint and Apply can realize any LP flow without
		// moving a vertex twice — which would silently break the balance
		// the zero-net-flow constraints guarantee.
		bestJ := int32(-1)
		var bestGain float64
		for _, j := range touched {
			gain := out[j] - in
			out[j] = 0
			if gain < 0 || (strict && gain == 0) {
				continue
			}
			if bestJ < 0 || gain > bestGain || (gain == bestGain && j < bestJ) {
				bestJ, bestGain = j, gain
			}
		}
		if bestJ >= 0 {
			cands[int(pv)*p+int(bestJ)] = append(cands[int(pv)*p+int(bestJ)], cand{v, bestGain})
			c.Gain[v] = bestGain
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			cs := cands[i*p+j]
			if len(cs) == 0 {
				continue
			}
			sort.Slice(cs, func(x, y int) bool {
				if cs[x].gain != cs[y].gain {
					return cs[x].gain > cs[y].gain
				}
				return cs[x].v < cs[y].v
			})
			pool := make([]graph.Vertex, len(cs))
			for k, cd := range cs {
				pool[k] = cd.v
			}
			c.pools[i][j] = pool
			c.B[i][j] = len(pool)
		}
	}
	return c, nil
}

// Formulate builds the refinement LP over pairs with b(i,j) > 0.
func Formulate(c *Candidates) (*lp.Problem, [][2]int32) {
	var pairs [][2]int32
	for i := 0; i < c.P; i++ {
		for j := 0; j < c.P; j++ {
			if i != j && c.B[i][j] > 0 {
				pairs = append(pairs, [2]int32{int32(i), int32(j)})
			}
		}
	}
	prob := lp.NewProblem(lp.Maximize, len(pairs))
	prob.Names = make([]string, len(pairs))
	for v, pr := range pairs {
		prob.SetObjective(v, 1)
		prob.SetUpper(v, float64(c.B[pr[0]][pr[1]]))
		prob.Names[v] = fmt.Sprintf("l(%d,%d)", pr[0], pr[1])
	}
	for j := 0; j < c.P; j++ {
		var terms []lp.Term
		for v, pr := range pairs {
			if int(pr[0]) == j {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
			if int(pr[1]) == j {
				terms = append(terms, lp.Term{Var: v, Coef: -1})
			}
		}
		if len(terms) > 0 {
			prob.AddConstraint(terms, lp.EQ, 0)
		}
	}
	return prob, pairs
}

// Apply moves the best-gain prefix of each pair's pool per the LP flows,
// returning the number of vertices moved.
func Apply(a *partition.Assignment, c *Candidates, pairs [][2]int32, x []float64) (int, error) {
	moved := 0
	for v, amt := range x {
		r := math.Round(amt)
		if math.Abs(amt-r) > 1e-6 {
			return moved, fmt.Errorf("refine: non-integral flow %g for pair %v", amt, pairs[v])
		}
		k := int(r)
		if k == 0 {
			continue
		}
		pool := c.Pool(pairs[v][0], pairs[v][1])
		if k > len(pool) {
			return moved, fmt.Errorf("refine: flow %d exceeds pool %d for pair %v", k, len(pool), pairs[v])
		}
		for _, vert := range pool[:k] {
			if a.Part[vert] != pairs[v][0] {
				return moved, fmt.Errorf("refine: vertex %d moved twice in one round", vert)
			}
			a.Part[vert] = pairs[v][1]
			moved++
		}
	}
	return moved, nil
}

// Options configures the iterative refinement driver.
type Options struct {
	// MaxRounds caps LP refinement rounds (0 = default 8).
	MaxRounds int
	// StrictAfter switches the candidate test to strict inequality after
	// this many rounds (0 = default 2; the paper recommends the switch
	// "after a few steps").
	StrictAfter int
	// Solver picks the simplex implementation (nil = lp.Bounded).
	Solver lp.Solver
}

func (o Options) rounds() int {
	if o.MaxRounds <= 0 {
		return 8
	}
	return o.MaxRounds
}

func (o Options) strictAfter() int {
	if o.StrictAfter <= 0 {
		return 2
	}
	return o.StrictAfter
}

func (o Options) solver() lp.Solver {
	if o.Solver == nil {
		return lp.Bounded{}
	}
	return o.Solver
}

// Stats reports what the refinement driver did.
type Stats struct {
	Rounds     int
	Moved      int
	CutBefore  float64
	CutAfter   float64
	LPVars     int // columns of the largest round's dense formulation
	LPCons     int
	Iterations int // total simplex pivots
}

// Refine iteratively improves the cut of assignment a without changing
// partition sizes. It modifies a in place and keeps the best assignment
// seen, so the result never has a worse cut than the input.
func Refine(g *graph.Graph, a *partition.Assignment, opt Options) (*Stats, error) {
	st := &Stats{}
	st.CutBefore = partition.Cut(g, a).TotalWeight
	best := a.Clone()
	bestCut := st.CutBefore
	cur := st.CutBefore
	for round := 0; round < opt.rounds(); round++ {
		strict := round >= opt.strictAfter()
		cands, err := Gains(g, a, strict)
		if err != nil {
			return st, err
		}
		prob, pairs := Formulate(cands)
		if len(pairs) == 0 {
			break
		}
		if v, c := lp.DenseSize(prob); v > st.LPVars {
			st.LPVars, st.LPCons = v, c
		}
		sol, err := opt.solver().Solve(prob)
		if err != nil {
			return st, fmt.Errorf("refine: %w", err)
		}
		st.Iterations += sol.Iterations
		if sol.Status != lp.Optimal || sol.Objective < 0.5 {
			break
		}
		moved, err := Apply(a, cands, pairs, sol.X)
		if err != nil {
			return st, err
		}
		st.Rounds++
		st.Moved += moved
		cur = partition.Cut(g, a).TotalWeight
		if cur < bestCut {
			bestCut = cur
			best = a.Clone()
		}
		if moved == 0 {
			break
		}
	}
	if cur > bestCut {
		copy(a.Part, best.Part)
	}
	st.CutAfter = bestCut
	return st, nil
}
