// Package refine implements the paper's Step 4: cut-reducing vertex
// movement under exact load preservation. Boundary vertices whose edge
// count toward a foreign partition j is at least their internal edge count
// are candidates b(i,j); the LP
//
//	maximize   Σ l(i,j)
//	subject to 0 ≤ l(i,j) ≤ b(i,j)
//	           outflow(j) − inflow(j) = 0      for every j
//
// moves as many of them as possible without disturbing partition sizes.
// The step is iterated; after a configurable number of rounds the
// candidate test switches from ≥ to > (the paper's "strict inequality"
// guard against vertices with zero net gain oscillating between
// partitions).
package refine

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/par"
	"repro/internal/partition"
)

// Candidates holds the per-pair movable vertex pools of one refinement
// round.
type Candidates struct {
	P int
	// B[i][j] = b(i,j): number of candidate vertices in partition i whose
	// move to j does not increase (loose) or strictly decreases (strict)
	// the cut.
	B [][]int
	// pools[i][j] lists those candidates, best gain first.
	pools [][][]graph.Vertex
	// Gain[v] is out(v, best j) − in(v) for bookkeeping (0 for
	// non-candidates).
	Gain []float64
}

// Pool returns the candidates for the (i,j) pair, best gain first.
func (c *Candidates) Pool(i, j int32) []graph.Vertex { return c.pools[i][j] }

type cand struct {
	v    graph.Vertex
	gain float64
}

// Scratch holds the reusable state of the gains kernel. The zero value is
// ready to use; buffers grow to the largest graph seen and are reused, so
// steady-state gain scans allocate nothing. The Candidates returned by
// its methods are owned by the Scratch and invalidated by the next call.
//
// Procs > 1 switches GainsSeeded to its sharded parallel form (see
// parallel.go): the deduped seed list is split into contiguous shards,
// workers classify into private pair buckets, and the join concatenates
// buckets in worker order before the total-order sort — so the produced
// Candidates are bit-identical to the sequential scan's for every
// worker count. Group, when non-nil, is the shared fork-join executor
// (the engine passes its own so per-worker busy times roll up across
// kernels); nil uses a private one.
type Scratch struct {
	cands   Candidates
	buckets [][]cand
	out     []float64
	touched []int32
	sorter  candSorter
	stamp   []uint32 // per-call vertex dedup marker (duplicate seeds)
	gen     uint32

	// Parallel state; see parallel.go.
	Procs    int
	Group    *par.Group
	ownGroup par.Group
	gws      []gainWorker
	seedBuf  []graph.Vertex
	shards   []par.Range
	task     gainsTask
}

// candSorter orders candidates best gain first, vertex id as tiebreak — a
// total order, so the result is independent of insertion order. It is a
// reused sort.Interface so sorting costs no per-call allocation.
type candSorter struct{ cs []cand }

func (s *candSorter) Len() int { return len(s.cs) }
func (s *candSorter) Less(i, j int) bool {
	if s.cs[i].gain != s.cs[j].gain {
		return s.cs[i].gain > s.cs[j].gain
	}
	return s.cs[i].v < s.cs[j].v
}
func (s *candSorter) Swap(i, j int) { s.cs[i], s.cs[j] = s.cs[j], s.cs[i] }

// Gains scans all boundary vertices and builds the candidate pools.
// strict selects the > 0 test instead of ≥ 0.
func Gains(g *graph.Graph, a *partition.Assignment, strict bool) (*Candidates, error) {
	var s Scratch
	return s.Gains(g, a, strict)
}

// Gains is the scratch-reusing form of the package-level Gains.
func (s *Scratch) Gains(g *graph.Graph, a *partition.Assignment, strict bool) (*Candidates, error) {
	if err := a.Validate(g); err != nil {
		return nil, fmt.Errorf("refine: %w", err)
	}
	c := s.grow(g.Order(), a.P)
	for vi := 0; vi < g.Order(); vi++ {
		v := graph.Vertex(vi)
		if !g.Alive(v) {
			continue
		}
		s.consider(v, g.Neighbors(v), g.EdgeWeights(v), a, strict)
	}
	s.finish()
	return c, nil
}

// GainsSeeded runs the gains kernel over a CSR snapshot, examining only
// the seed vertices. Every candidate has at least one foreign edge, so a
// seed list containing all boundary vertices (duplicates and extras are
// harmless) yields exactly the candidates a full scan would find.
func (s *Scratch) GainsSeeded(c *graph.CSR, a *partition.Assignment, strict bool, seeds []graph.Vertex) (*Candidates, error) {
	if err := a.ValidateCSR(c); err != nil {
		return nil, fmt.Errorf("refine: %w", err)
	}
	if s.Procs > 1 {
		return s.gainsSeededPar(c, a, strict, seeds), nil
	}
	out := s.grow(c.Order(), a.P)
	for _, v := range seeds {
		if !c.Live[v] {
			continue
		}
		s.consider(v, c.Row(v), c.RowWeights(v), a, strict)
	}
	s.finish()
	return out, nil
}

func (s *Scratch) grow(n, p int) *Candidates {
	c := &s.cands
	c.P = p
	if cap(c.B) < p {
		c.B = make([][]int, p)
	}
	c.B = c.B[:p]
	if cap(c.pools) < p {
		c.pools = make([][][]graph.Vertex, p)
	}
	c.pools = c.pools[:p]
	for i := 0; i < p; i++ {
		if cap(c.B[i]) < p {
			c.B[i] = make([]int, p)
		}
		c.B[i] = c.B[i][:p]
		for j := range c.B[i] {
			c.B[i][j] = 0
		}
		if cap(c.pools[i]) < p {
			c.pools[i] = make([][]graph.Vertex, p)
		}
		c.pools[i] = c.pools[i][:p]
		for j := range c.pools[i] {
			c.pools[i][j] = c.pools[i][j][:0]
		}
	}
	if cap(c.Gain) < n {
		c.Gain = make([]float64, n)
	}
	c.Gain = c.Gain[:n]
	for i := range c.Gain {
		c.Gain[i] = 0
	}
	if cap(s.buckets) < p*p {
		s.buckets = make([][]cand, p*p)
	}
	s.buckets = s.buckets[:p*p]
	for i := range s.buckets {
		s.buckets[i] = s.buckets[i][:0]
	}
	if cap(s.out) < p {
		s.out = make([]float64, p)
	}
	s.out = s.out[:p]
	for i := range s.out {
		s.out[i] = 0
	}
	s.touched = s.touched[:0]
	if cap(s.stamp) < n {
		s.stamp = make([]uint32, n)
	}
	s.stamp = s.stamp[:n]
	s.gen++
	if s.gen == 0 { // wrapped: the stale stamps are ambiguous, clear them
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	return c
}

// consider classifies one vertex. A vertex may qualify toward several
// foreign partitions; it joins only the pool of its best one (ties toward
// the smaller id) so the pools are disjoint and Apply can realize any LP
// flow without moving a vertex twice — which would silently break the
// balance the zero-net-flow constraints guarantee.
func (s *Scratch) consider(v graph.Vertex, adj []graph.Vertex, ws []float64, a *partition.Assignment, strict bool) {
	if s.stamp[v] == s.gen {
		return // duplicate seed: already classified this call
	}
	s.stamp[v] = s.gen
	pv := a.Part[v]
	var in float64
	out := s.out
	touched := s.touched[:0]
	for k, u := range adj {
		pu := a.Part[u]
		if pu == pv {
			in += ws[k]
			continue
		}
		if out[pu] == 0 {
			touched = append(touched, pu)
		}
		out[pu] += ws[k]
	}
	bestJ := int32(-1)
	var bestGain float64
	for _, j := range touched {
		gain := out[j] - in
		out[j] = 0
		if gain < 0 || (strict && gain == 0) {
			continue
		}
		if bestJ < 0 || gain > bestGain || (gain == bestGain && j < bestJ) {
			bestJ, bestGain = j, gain
		}
	}
	s.touched = touched[:0]
	if bestJ >= 0 {
		p := s.cands.P
		s.buckets[int(pv)*p+int(bestJ)] = append(s.buckets[int(pv)*p+int(bestJ)], cand{v, bestGain})
		s.cands.Gain[v] = bestGain
	}
}

// finish sorts each pair's bucket into the pools.
func (s *Scratch) finish() {
	c := &s.cands
	p := c.P
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			cs := s.buckets[i*p+j]
			if len(cs) == 0 {
				continue
			}
			s.sorter.cs = cs
			sort.Sort(&s.sorter)
			pool := c.pools[i][j]
			for _, cd := range cs {
				pool = append(pool, cd.v)
			}
			c.pools[i][j] = pool
			c.B[i][j] = len(pool)
		}
	}
	s.sorter.cs = nil
}

// LPArena owns the reusable buffers of the refinement-LP formulation:
// the Problem's objective/bound/constraint storage and the pair
// mapping. Buffers grow to the largest round seen and are then reused,
// so steady-state formulation through a warm engine allocates nothing.
// The Problem and pair slice returned by Formulate are owned by the
// arena and invalidated by its next call. The zero value is ready.
type LPArena struct {
	prob  lp.Problem
	pairs [][2]int32
	terms []lp.Term
	spans []int // (start, end) offsets into terms, two per constraint
	cons  []lp.Constraint
}

// Formulate is the arena-backed form of the package-level [Formulate]:
// the identical LP, built into reused buffers and without diagnostic
// variable names.
func (ar *LPArena) Formulate(c *Candidates) (*lp.Problem, [][2]int32) {
	ar.pairs = ar.pairs[:0]
	for i := 0; i < c.P; i++ {
		for j := 0; j < c.P; j++ {
			if i != j && c.B[i][j] > 0 {
				ar.pairs = append(ar.pairs, [2]int32{int32(i), int32(j)})
			}
		}
	}
	pairs := ar.pairs
	n := len(pairs)
	prob := &ar.prob
	prob.Sense = lp.Maximize
	prob.Names = nil
	prob.Obj = lp.GrowFloats(prob.Obj, n)
	prob.Upper = lp.GrowFloats(prob.Upper, n)
	for v, pr := range pairs {
		prob.Obj[v] = 1
		prob.Upper[v] = float64(c.B[pr[0]][pr[1]])
	}
	// Terms are appended into one flat buffer and the rows bound after
	// the loop, so buffer growth cannot strand a row on old backing.
	ar.terms = ar.terms[:0]
	ar.cons = ar.cons[:0]
	ar.spans = ar.spans[:0]
	for j := 0; j < c.P; j++ {
		start := len(ar.terms)
		for v, pr := range pairs {
			if int(pr[0]) == j {
				ar.terms = append(ar.terms, lp.Term{Var: v, Coef: 1})
			}
			if int(pr[1]) == j {
				ar.terms = append(ar.terms, lp.Term{Var: v, Coef: -1})
			}
		}
		if len(ar.terms) > start {
			ar.cons = append(ar.cons, lp.Constraint{Rel: lp.EQ, RHS: 0})
			ar.spans = append(ar.spans, start, len(ar.terms))
		}
	}
	for k := range ar.cons {
		ar.cons[k].Terms = ar.terms[ar.spans[2*k]:ar.spans[2*k+1]]
	}
	prob.Cons = ar.cons
	return prob, pairs
}

// Formulate builds the refinement LP over pairs with b(i,j) > 0. This
// one-shot form allocates a fresh formulation with diagnostic variable
// names; the engine formulates through a reused [LPArena] instead.
func Formulate(c *Candidates) (*lp.Problem, [][2]int32) {
	var ar LPArena
	prob, pairs := ar.Formulate(c)
	prob.Names = make([]string, len(pairs))
	for v, pr := range pairs {
		prob.Names[v] = fmt.Sprintf("l(%d,%d)", pr[0], pr[1])
	}
	return prob, pairs
}

// Apply moves the best-gain prefix of each pair's pool per the LP flows,
// returning the number of vertices moved.
func Apply(a *partition.Assignment, c *Candidates, pairs [][2]int32, x []float64) (int, error) {
	moved := 0
	for v, amt := range x {
		r := math.Round(amt)
		if math.Abs(amt-r) > 1e-6 {
			return moved, fmt.Errorf("refine: non-integral flow %g for pair %v", amt, pairs[v])
		}
		k := int(r)
		if k == 0 {
			continue
		}
		pool := c.Pool(pairs[v][0], pairs[v][1])
		if k > len(pool) {
			return moved, fmt.Errorf("refine: flow %d exceeds pool %d for pair %v", k, len(pool), pairs[v])
		}
		for _, vert := range pool[:k] {
			if a.Part[vert] != pairs[v][0] {
				return moved, fmt.Errorf("refine: vertex %d moved twice in one round", vert)
			}
			a.Part[vert] = pairs[v][1]
			moved++
		}
	}
	return moved, nil
}

// Options configures the iterative refinement driver.
type Options struct {
	// MaxRounds caps LP refinement rounds (0 = default 8).
	MaxRounds int
	// StrictAfter switches the candidate test to strict inequality after
	// this many rounds (0 = default 2; the paper recommends the switch
	// "after a few steps").
	StrictAfter int
	// Solver picks the simplex implementation (nil = lp.Bounded).
	Solver lp.Solver
	// OnRound, if non-nil, is invoked after each applied round with the
	// 1-based round number and the vertices moved — the observability hook
	// the engine turns into stage events.
	OnRound func(round, moved int)
	// Arena, if non-nil, receives the per-round LP formulations (reused
	// buffers, zero steady-state allocation). The engine passes its own;
	// one-shot callers leave it nil and get fresh formulations.
	Arena *LPArena
	// CutWeight, if non-nil, replaces the driver's per-round
	// partition.Cut(g, a).TotalWeight rescan with an equivalent cheaper
	// evaluation of the current assignment's cut weight. It must return a
	// value bit-identical to the rescan's (the engine supplies its
	// boundary-seeded incremental cut, which is); the driver's
	// best-assignment tracking compares these floats exactly.
	CutWeight func() float64
}

// Rounds returns MaxRounds with the default applied.
func (o Options) Rounds() int {
	if o.MaxRounds <= 0 {
		return 8
	}
	return o.MaxRounds
}

// StrictAfterRounds returns StrictAfter with the default applied.
func (o Options) StrictAfterRounds() int {
	if o.StrictAfter <= 0 {
		return 2
	}
	return o.StrictAfter
}

// ResolveSolver returns Solver with the default applied.
func (o Options) ResolveSolver() lp.Solver {
	if o.Solver == nil {
		return lp.Bounded{}
	}
	return o.Solver
}

// Stats reports what the refinement driver did.
type Stats struct {
	Rounds     int
	Moved      int
	CutBefore  float64
	CutAfter   float64
	LPVars     int // columns of the largest round's dense formulation
	LPCons     int
	Iterations int // total simplex pivots
	// RoundPivots lists the pivots of every LP solved, in round order
	// (including a final round whose solution was not applied). With a
	// warm-started solver, later rounds resume from earlier bases and
	// these counts drop off sharply after round one.
	RoundPivots []int
}

// Refine iteratively improves the cut of assignment a without changing
// partition sizes. It modifies a in place and keeps the best assignment
// seen, so the result never has a worse cut than the input.
func Refine(g *graph.Graph, a *partition.Assignment, opt Options) (*Stats, error) {
	var scratch Scratch // one gains arena reused across rounds
	st, _, err := Drive(context.Background(), g, a, opt, func(strict bool) (*Candidates, error) {
		return scratch.Gains(g, a, strict)
	}, nil)
	return st, err
}

// Drive is the iterated refinement loop shared by the one-shot Refine and
// the engine: each round it calls gains for the candidate pools, solves
// the zero-net-flow LP, applies the moves, and tracks the best assignment
// seen (restored at the end if a later round regressed). bestBuf, if
// non-nil, is reused for the best-assignment snapshot; the (possibly
// regrown) buffer is returned for the caller to keep.
//
// The context is polled before every round and inside the LP solve. An
// abort restores the best assignment seen so far, so a canceled
// refinement still leaves a valid (and never-worse) partition behind.
func Drive(ctx context.Context, g *graph.Graph, a *partition.Assignment, opt Options, gains func(strict bool) (*Candidates, error), bestBuf []int32) (*Stats, []int32, error) {
	cutWeight := opt.CutWeight
	if cutWeight == nil {
		cutWeight = func() float64 { return partition.Cut(g, a).TotalWeight }
	}
	st := &Stats{}
	st.CutBefore = cutWeight()
	best := append(bestBuf[:0], a.Part...)
	bestCut := st.CutBefore
	cur := st.CutBefore
	var abort error
	for round := 0; round < opt.Rounds(); round++ {
		if err := cancel.Check(ctx, "refinement"); err != nil {
			abort = err
			break
		}
		strict := round >= opt.StrictAfterRounds()
		cands, err := gains(strict)
		if err != nil {
			abort = err
			break
		}
		var prob *lp.Problem
		var pairs [][2]int32
		if opt.Arena != nil {
			prob, pairs = opt.Arena.Formulate(cands)
		} else {
			prob, pairs = Formulate(cands)
		}
		if len(pairs) == 0 {
			break
		}
		if v, c := lp.DenseSize(prob); v > st.LPVars {
			st.LPVars, st.LPCons = v, c
		}
		sol, err := opt.ResolveSolver().Solve(ctx, prob)
		if err != nil {
			abort = fmt.Errorf("refine: %w", err)
			break
		}
		st.Iterations += sol.Iterations
		st.RoundPivots = append(st.RoundPivots, sol.Iterations)
		if sol.Status != lp.Optimal || sol.Objective < 0.5 {
			break
		}
		moved, err := Apply(a, cands, pairs, sol.X)
		if err != nil {
			abort = err
			break
		}
		st.Rounds++
		st.Moved += moved
		if opt.OnRound != nil {
			opt.OnRound(st.Rounds, moved)
		}
		cur = cutWeight()
		if cur < bestCut {
			bestCut = cur
			best = append(best[:0], a.Part...)
		}
		if moved == 0 {
			break
		}
	}
	if cur > bestCut {
		copy(a.Part, best)
	}
	st.CutAfter = bestCut
	return st, best, abort
}
