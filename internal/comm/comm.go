// Package comm is the message-passing substrate standing in for the
// paper's 32-node CM-5 and its CMMD library. Ranks are goroutines; point
// to point messages travel over per-pair FIFO channels; collectives
// (barrier, broadcast, reduce, all-gather, all-to-all) are built from
// point-to-point messages with the standard tree/dissemination algorithms.
//
// Every rank carries a simulated clock. Compute is charged explicitly
// (Advance), communication is charged by a LogP-style cost model
// (per-message latency, per-byte time, per-message CPU overhead), and a
// message cannot be received before the sender's clock at send time plus
// its transfer cost. The maximum clock over ranks after a run is the
// simulated parallel makespan — the number the benchmark harness reports
// as the paper's "Time-p" column. Goroutines execute the algorithms for
// real, so results are actual computations, not estimates; only the
// *timing* is modeled.
package comm

import (
	"fmt"
	"sync"
	"time"
)

// CostModel is a LogP-style machine model.
type CostModel struct {
	// Latency is the end-to-end per-message network latency (α).
	Latency time.Duration
	// PerByte is the inverse bandwidth (β).
	PerByte time.Duration
	// Overhead is the CPU time a rank spends on each send or receive (o).
	Overhead time.Duration
	// FlopTime converts Advance work units (≈ scalar operations) into
	// simulated time.
	FlopTime time.Duration
}

// CM5 returns constants approximating a 1993-era CM-5 running CMMD:
// ~50 µs effective message latency, ~8 MB/s point-to-point bandwidth and
// ~10 µs CPU overhead per message sit inside the range CMMD measurements
// of the period report (86 µs blocking round trips, faster one-way
// active-message paths).
//
// FlopTime is deliberately NOT peak SPARC flops: it is calibrated so that
// the simulated one-node time of the incremental partitioner on the
// paper's small mesh (|V| ≈ 1100, P = 32) lands near the paper's measured
// ~15 s. The paper's per-operation cost was dominated by dense-simplex
// array sweeps and DIME bookkeeping, not peak arithmetic; ~2 µs per work
// unit reproduces that regime, which is what the speedup shape depends on
// (the compute:communication ratio, not absolute throughput).
func CM5() CostModel {
	return CostModel{
		Latency:  50 * time.Microsecond,
		PerByte:  125 * time.Nanosecond,
		Overhead: 10 * time.Microsecond,
		FlopTime: 2 * time.Microsecond,
	}
}

// message is an in-flight point-to-point message.
type message struct {
	tag     int
	data    any
	arrival time.Duration // earliest simulated receive completion start
}

// World is a P-rank machine.
type World struct {
	p     int
	model CostModel
	mail  [][]chan message // mail[from][to]
	clock []time.Duration  // per-rank simulated clocks (owned by the rank)
	msgs  []int64          // per-rank messages sent
	bytes []int64          // per-rank bytes sent
}

// NewWorld builds a machine with p ranks.
func NewWorld(p int, model CostModel) (*World, error) {
	if p < 1 {
		return nil, fmt.Errorf("comm: world size %d", p)
	}
	w := &World{
		p:     p,
		model: model,
		mail:  make([][]chan message, p),
		clock: make([]time.Duration, p),
		msgs:  make([]int64, p),
		bytes: make([]int64, p),
	}
	for i := range w.mail {
		w.mail[i] = make([]chan message, p)
		for j := range w.mail[i] {
			w.mail[i][j] = make(chan message, 4096)
		}
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.p }

// Run executes fn on every rank concurrently and waits for all to finish,
// returning the first error. Clocks accumulate across calls; use Reset to
// clear them.
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.p)
	var wg sync.WaitGroup
	for r := 0; r < w.p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := &Comm{w: w, rank: rank}
			errs[rank] = fn(c)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("comm: rank %d: %w", r, err)
		}
	}
	return nil
}

// Reset clears clocks and counters and drains stray messages.
func (w *World) Reset() {
	for i := range w.clock {
		w.clock[i] = 0
		w.msgs[i] = 0
		w.bytes[i] = 0
	}
	for i := range w.mail {
		for j := range w.mail[i] {
			for {
				select {
				case <-w.mail[i][j]:
				default:
					goto drained
				}
			}
		drained:
		}
	}
}

// MaxClock returns the simulated makespan: the maximum rank clock.
func (w *World) MaxClock() time.Duration {
	var m time.Duration
	for _, c := range w.clock {
		if c > m {
			m = c
		}
	}
	return m
}

// TotalMessages returns the number of point-to-point messages sent.
func (w *World) TotalMessages() int64 {
	var n int64
	for _, m := range w.msgs {
		n += m
	}
	return n
}

// TotalBytes returns the number of payload bytes sent.
func (w *World) TotalBytes() int64 {
	var n int64
	for _, b := range w.bytes {
		n += b
	}
	return n
}

// Comm is one rank's endpoint, valid only inside World.Run.
type Comm struct {
	w    *World
	rank int
	// pending holds messages received out of tag order, per source.
	pending [][]message
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.p }

// Clock returns this rank's simulated clock.
func (c *Comm) Clock() time.Duration { return c.w.clock[c.rank] }

// Advance charges flops work units of local compute to the clock.
func (c *Comm) Advance(flops float64) {
	c.w.clock[c.rank] += time.Duration(flops * float64(c.w.model.FlopTime))
}

// AdvanceTime charges raw simulated time to the clock.
func (c *Comm) AdvanceTime(d time.Duration) { c.w.clock[c.rank] += d }

// Send transmits data (with the given payload size in bytes, which drives
// the cost model) to rank `to` with a tag. Sends are buffered and
// non-blocking up to a large channel capacity.
func (c *Comm) Send(to, tag int, data any, nbytes int) error {
	if to < 0 || to >= c.w.p {
		return fmt.Errorf("comm: send to rank %d of %d", to, c.w.p)
	}
	if to == c.rank {
		return fmt.Errorf("comm: self-send on rank %d", c.rank)
	}
	m := c.w.model
	clock := &c.w.clock[c.rank]
	*clock += m.Overhead
	arrival := *clock + m.Latency + time.Duration(nbytes)*m.PerByte
	c.w.msgs[c.rank]++
	c.w.bytes[c.rank] += int64(nbytes)
	select {
	case c.w.mail[c.rank][to] <- message{tag: tag, data: data, arrival: arrival}:
		return nil
	default:
		return fmt.Errorf("comm: mailbox %d→%d full", c.rank, to)
	}
}

// Recv blocks until a message with the given tag arrives from rank
// `from`, advances the clock to its arrival, and returns its payload.
func (c *Comm) Recv(from, tag int) (any, error) {
	if from < 0 || from >= c.w.p {
		return nil, fmt.Errorf("comm: recv from rank %d of %d", from, c.w.p)
	}
	if from == c.rank {
		return nil, fmt.Errorf("comm: self-recv on rank %d", c.rank)
	}
	if c.pending == nil {
		c.pending = make([][]message, c.w.p)
	}
	// Check messages already pulled off the channel.
	for i, m := range c.pending[from] {
		if m.tag == tag {
			c.pending[from] = append(c.pending[from][:i], c.pending[from][i+1:]...)
			c.deliver(m)
			return m.data, nil
		}
	}
	for {
		m, ok := <-c.w.mail[from][c.rank]
		if !ok {
			return nil, fmt.Errorf("comm: channel %d→%d closed", from, c.rank)
		}
		if m.tag == tag {
			c.deliver(m)
			return m.data, nil
		}
		c.pending[from] = append(c.pending[from], m)
	}
}

// deliver advances the receiver clock for message m.
func (c *Comm) deliver(m message) {
	clock := &c.w.clock[c.rank]
	if m.arrival > *clock {
		*clock = m.arrival
	}
	*clock += c.w.model.Overhead
}
