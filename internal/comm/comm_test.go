package comm

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func newTestWorld(t *testing.T, p int) *World {
	t.Helper()
	w, err := NewWorld(p, CM5())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSendRecvBasic(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, "hello", 5)
		}
		got, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if got.(string) != "hello" {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalMessages() != 1 || w.TotalBytes() != 5 {
		t.Fatalf("messages %d bytes %d, want 1/5", w.TotalMessages(), w.TotalBytes())
	}
}

func TestRecvOutOfOrderTags(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, "first", 5); err != nil {
				return err
			}
			return c.Send(1, 2, "second", 6)
		}
		// Receive in reverse tag order.
		b, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		a, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if a.(string) != "first" || b.(string) != "second" {
			return fmt.Errorf("got %v %v", a, b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendErrors(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.Send(5, 0, nil, 0); err == nil {
			return fmt.Errorf("out-of-range send should fail")
		}
		if err := c.Send(0, 0, nil, 0); err == nil {
			return fmt.Errorf("self-send should fail")
		}
		if _, err := c.Recv(0, 0); err == nil {
			return fmt.Errorf("self-recv should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClockAdvancesWithMessage(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.AdvanceTime(time.Millisecond) // sender is busy first
			return c.Send(1, 0, nil, 1000)
		}
		_, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		// Receiver clock ≥ sender busy time + latency + 1000 bytes.
		min := time.Millisecond + CM5().Latency + 1000*CM5().PerByte
		if c.Clock() < min {
			return fmt.Errorf("clock %v < min %v", c.Clock(), min)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w := newTestWorld(t, 8)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 3 {
			c.AdvanceTime(50 * time.Millisecond)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Clock() < 50*time.Millisecond {
			return fmt.Errorf("rank %d clock %v: barrier did not propagate the straggler", c.Rank(), c.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	for root := 0; root < 5; root++ {
		w := newTestWorld(t, 5)
		err := w.Run(func(c *Comm) error {
			var data any
			if c.Rank() == root {
				data = fmt.Sprintf("payload-%d", root)
			}
			got, err := c.Bcast(root, data, 10)
			if err != nil {
				return err
			}
			if got.(string) != fmt.Sprintf("payload-%d", root) {
				return fmt.Errorf("rank %d got %v", c.Rank(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
	}
}

func TestAllreduceFloatSum(t *testing.T) {
	w := newTestWorld(t, 7)
	err := w.Run(func(c *Comm) error {
		x := []float64{float64(c.Rank()), 1}
		got, err := c.AllreduceFloat(x, OpSum)
		if err != nil {
			return err
		}
		if got[0] != 21 || got[1] != 7 { // 0+..+6 = 21
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	w := newTestWorld(t, 6)
	err := w.Run(func(c *Comm) error {
		x := []float64{float64(c.Rank())}
		mx, err := c.AllreduceFloat(x, OpMax)
		if err != nil {
			return err
		}
		mn, err := c.AllreduceFloat(x, OpMin)
		if err != nil {
			return err
		}
		if mx[0] != 5 || mn[0] != 0 {
			return fmt.Errorf("max %v min %v", mx, mn)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceInt(t *testing.T) {
	w := newTestWorld(t, 4)
	err := w.Run(func(c *Comm) error {
		got, err := c.AllreduceInt([]int64{int64(c.Rank()), 5}, OpSum)
		if err != nil {
			return err
		}
		if got[0] != 6 || got[1] != 20 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestArgminFloatTieBreaksLowRank(t *testing.T) {
	w := newTestWorld(t, 6)
	err := w.Run(func(c *Comm) error {
		val := 3.0
		if c.Rank() == 2 || c.Rank() == 4 {
			val = 1.0
		}
		v, r, err := c.ArgminFloat(val)
		if err != nil {
			return err
		}
		if v != 1.0 || r != 2 {
			return fmt.Errorf("argmin = (%g, %d), want (1, 2)", v, r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	w := newTestWorld(t, 5)
	err := w.Run(func(c *Comm) error {
		got, err := c.Gather(2, c.Rank()*10, 8)
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if got != nil {
				return fmt.Errorf("non-root got %v", got)
			}
			return nil
		}
		for r := 0; r < 5; r++ {
			if got[r].(int) != r*10 {
				return fmt.Errorf("gather[%d] = %v", r, got[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	w := newTestWorld(t, 6)
	err := w.Run(func(c *Comm) error {
		got, err := c.Allgather(c.Rank()+100, 8)
		if err != nil {
			return err
		}
		for r := 0; r < 6; r++ {
			if got[r].(int) != r+100 {
				return fmt.Errorf("rank %d: allgather[%d] = %v", c.Rank(), r, got[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	w := newTestWorld(t, 4)
	err := w.Run(func(c *Comm) error {
		data := make([]any, 4)
		nbytes := make([]int, 4)
		for r := 0; r < 4; r++ {
			data[r] = c.Rank()*10 + r
			nbytes[r] = 8
		}
		got, err := c.Alltoall(data, nbytes)
		if err != nil {
			return err
		}
		for r := 0; r < 4; r++ {
			if got[r].(int) != r*10+c.Rank() {
				return fmt.Errorf("rank %d from %d: %v", c.Rank(), r, got[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResetClearsState(t *testing.T) {
	w := newTestWorld(t, 2)
	_ = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, nil, 100)
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if w.MaxClock() == 0 {
		t.Fatal("clock should have advanced")
	}
	w.Reset()
	if w.MaxClock() != 0 || w.TotalMessages() != 0 || w.TotalBytes() != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	w := newTestWorld(t, 3)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error should propagate")
	}
}

func TestPropertyAllreduceMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		p := 2 + int(uint64(seed)%6)
		vals := make([]float64, p)
		for i := range vals {
			seed = seed*6364136223846793005 + 1442695040888963407
			vals[i] = float64(seed % 1000)
		}
		var want float64
		for _, v := range vals {
			want += v
		}
		w, err := NewWorld(p, CostModel{})
		if err != nil {
			return false
		}
		var bad atomic.Bool
		err = w.Run(func(c *Comm) error {
			got, err := c.AllreduceFloat([]float64{vals[c.Rank()]}, OpSum)
			if err != nil {
				return err
			}
			if got[0] != want {
				bad.Store(true)
			}
			return nil
		})
		return err == nil && !bad.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesSingleRank(t *testing.T) {
	w := newTestWorld(t, 1)
	err := w.Run(func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		if got, err := c.Bcast(0, "x", 1); err != nil || got.(string) != "x" {
			return fmt.Errorf("bcast: %v %v", got, err)
		}
		if got, err := c.AllreduceFloat([]float64{3}, OpSum); err != nil || got[0] != 3 {
			return fmt.Errorf("allreduce: %v %v", got, err)
		}
		if got, err := c.AllreduceInt([]int64{4}, OpMax); err != nil || got[0] != 4 {
			return fmt.Errorf("allreduceint: %v %v", got, err)
		}
		if v, r, err := c.ArgminFloat(5); err != nil || v != 5 || r != 0 {
			return fmt.Errorf("argmin: %v %v %v", v, r, err)
		}
		if v, i, err := c.ArgminIndexed(6, 9); err != nil || v != 6 || i != 9 {
			return fmt.Errorf("argminindexed: %v %v %v", v, i, err)
		}
		if got, err := c.Allgather("me", 2); err != nil || len(got) != 1 || got[0].(string) != "me" {
			return fmt.Errorf("allgather: %v %v", got, err)
		}
		if got, err := c.Alltoall([]any{"self"}, []int{4}); err != nil || got[0].(string) != "self" {
			return fmt.Errorf("alltoall: %v %v", got, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// No messages should flow on a single-rank world.
	if w.TotalMessages() != 0 {
		t.Fatalf("messages = %d, want 0", w.TotalMessages())
	}
}

func TestArgminIndexedTieBreaksOnIndex(t *testing.T) {
	w := newTestWorld(t, 4)
	err := w.Run(func(c *Comm) error {
		// All ranks hold the same value with different indices; the
		// smallest index must win everywhere.
		idx := []int{30, 10, 20, 40}[c.Rank()]
		v, i, err := c.ArgminIndexed(7, idx)
		if err != nil {
			return err
		}
		if v != 7 || i != 10 {
			return fmt.Errorf("got (%v,%d), want (7,10)", v, i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldSizeValidation(t *testing.T) {
	if _, err := NewWorld(0, CM5()); err == nil {
		t.Fatal("0-rank world must error")
	}
}

func TestStressRandomPatterns(t *testing.T) {
	// Randomized matched send/recv patterns must complete without
	// deadlock: every rank sends to a pseudo-random subset each round and
	// receives exactly what the symmetric schedule predicts.
	const p = 6
	const rounds = 25
	w := newTestWorld(t, p)
	err := w.Run(func(c *Comm) error {
		for r := 0; r < rounds; r++ {
			// Deterministic schedule both sides can compute.
			for d := 1; d < p; d++ {
				if (r+d)%3 == 0 {
					to := (c.Rank() + d) % p
					if err := c.Send(to, r, c.Rank()*1000+r, 8); err != nil {
						return err
					}
				}
			}
			for d := 1; d < p; d++ {
				if (r+d)%3 == 0 {
					from := (c.Rank() - d + p) % p
					got, err := c.Recv(from, r)
					if err != nil {
						return err
					}
					if got.(int) != from*1000+r {
						return fmt.Errorf("round %d from %d: got %v", r, from, got)
					}
				}
			}
			if r%7 == 0 {
				if err := c.Barrier(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
