package comm

import "fmt"

// Collective tags live in a reserved negative space so user tags ≥ 0 never
// collide with them.
const (
	tagBarrier = -1 - iota
	tagBcast
	tagAllreduceF
	tagAllreduceI
	tagGather
	tagAllgather
	tagAlltoall
)

// Barrier synchronizes all ranks with the dissemination algorithm
// (⌈log₂P⌉ rounds of paired messages).
func (c *Comm) Barrier() error {
	p := c.w.p
	for k := 1; k < p; k <<= 1 {
		to := (c.rank + k) % p
		from := (c.rank - k + p) % p
		if err := c.Send(to, tagBarrier, nil, 0); err != nil {
			return err
		}
		if _, err := c.Recv(from, tagBarrier); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's data to every rank via a binomial tree and
// returns it. nbytes is the payload size for the cost model; non-root
// callers may pass nil data.
func (c *Comm) Bcast(root int, data any, nbytes int) (any, error) {
	p := c.w.p
	if p == 1 {
		return data, nil
	}
	// Rotate so the root is virtual rank 0.
	vr := (c.rank - root + p) % p
	// Receive from parent (highest set bit), then forward to children.
	if vr != 0 {
		mask := 1
		for mask <= vr {
			mask <<= 1
		}
		mask >>= 1
		parent := ((vr - mask) + root) % p
		got, err := c.Recv(parent, tagBcast)
		if err != nil {
			return nil, err
		}
		data = got
	}
	for mask := nextPow2(vr); mask < p; mask <<= 1 {
		child := vr + mask
		if child < p {
			if err := c.Send((child+root)%p, tagBcast, data, nbytes); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// nextPow2 returns the smallest power of two strictly greater than vr,
// starting at 1 for vr==0.
func nextPow2(vr int) int {
	m := 1
	for m <= vr {
		m <<= 1
	}
	if vr == 0 {
		return 1
	}
	return m
}

// ReduceOp combines two float64 values.
type ReduceOp int

// Supported reductions.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func applyOp(op ReduceOp, a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	}
	return a + b
}

// reduceTree runs a binomial-tree reduction to rank 0: combine is called
// with the local accumulator and each received partial result. It returns
// the full reduction on rank 0 and partials elsewhere; callers broadcast.
func reduceTree[T any](c *Comm, acc T, nbytes int, combine func(T, T) T) (T, error) {
	p := c.w.p
	for mask := 1; mask < p; mask <<= 1 {
		if c.rank&mask != 0 {
			if err := c.Send(c.rank-mask, tagAllreduceF, acc, nbytes); err != nil {
				return acc, err
			}
			break
		}
		if c.rank+mask < p {
			got, err := c.Recv(c.rank+mask, tagAllreduceF)
			if err != nil {
				return acc, err
			}
			g, ok := got.(T)
			if !ok {
				return acc, fmt.Errorf("comm: reduce payload type mismatch")
			}
			acc = combine(acc, g)
		}
	}
	return acc, nil
}

// AllreduceFloat combines x element-wise across ranks with op via a
// binomial-tree reduction followed by a broadcast (correct for any P);
// all ranks return the same result. x is not modified.
func (c *Comm) AllreduceFloat(x []float64, op ReduceOp) ([]float64, error) {
	acc, err := reduceTree(c, append([]float64(nil), x...), 8*len(x), func(a, g []float64) []float64 {
		for i := range a {
			a[i] = applyOp(op, a[i], g[i])
		}
		c.Advance(float64(len(a)))
		return a
	})
	if err != nil {
		return nil, err
	}
	got, err := c.Bcast(0, acc, 8*len(x))
	if err != nil {
		return nil, err
	}
	return got.([]float64), nil
}

// ArgminFloat returns the minimum value across ranks and the rank that
// held it (smallest rank wins ties) — the global pivot-selection primitive
// of the parallel simplex.
func (c *Comm) ArgminFloat(val float64) (minVal float64, minRank int, err error) {
	acc, err := reduceTree(c, [2]float64{val, float64(c.rank)}, 16, func(a, g [2]float64) [2]float64 {
		if g[0] < a[0] || (g[0] == a[0] && g[1] < a[1]) {
			return g
		}
		return a
	})
	if err != nil {
		return 0, 0, err
	}
	got, err := c.Bcast(0, acc, 16)
	if err != nil {
		return 0, 0, err
	}
	pair := got.([2]float64)
	return pair[0], int(pair[1]), nil
}

// ArgminIndexed returns the global minimum of val and the caller-supplied
// index associated with it; ties prefer the smaller index. Ranks with no
// candidate pass +Inf. This selects entering columns in the parallel
// simplex deterministically regardless of rank count.
func (c *Comm) ArgminIndexed(val float64, idx int) (minVal float64, minIdx int, err error) {
	acc, err := reduceTree(c, [2]float64{val, float64(idx)}, 16, func(a, g [2]float64) [2]float64 {
		if g[0] < a[0] || (g[0] == a[0] && g[1] < a[1]) {
			return g
		}
		return a
	})
	if err != nil {
		return 0, 0, err
	}
	got, err := c.Bcast(0, acc, 16)
	if err != nil {
		return 0, 0, err
	}
	pair := got.([2]float64)
	return pair[0], int(pair[1]), nil
}

// AllreduceInt combines x element-wise across ranks with op; all ranks
// get the result.
func (c *Comm) AllreduceInt(x []int64, op ReduceOp) ([]int64, error) {
	acc, err := reduceTree(c, append([]int64(nil), x...), 8*len(x), func(a, g []int64) []int64 {
		for i := range a {
			switch op {
			case OpSum:
				a[i] += g[i]
			case OpMax:
				if g[i] > a[i] {
					a[i] = g[i]
				}
			case OpMin:
				if g[i] < a[i] {
					a[i] = g[i]
				}
			}
		}
		c.Advance(float64(len(a)))
		return a
	})
	if err != nil {
		return nil, err
	}
	got, err := c.Bcast(0, acc, 8*len(x))
	if err != nil {
		return nil, err
	}
	return got.([]int64), nil
}

// Gather collects every rank's data at root; root receives a slice
// indexed by rank (its own entry included), others receive nil.
func (c *Comm) Gather(root int, data any, nbytes int) ([]any, error) {
	if c.rank != root {
		return nil, c.Send(root, tagGather, data, nbytes)
	}
	out := make([]any, c.w.p)
	out[root] = data
	for r := 0; r < c.w.p; r++ {
		if r == root {
			continue
		}
		got, err := c.Recv(r, tagGather)
		if err != nil {
			return nil, err
		}
		out[r] = got
	}
	return out, nil
}

// gatherPiece carries a set of per-rank contributions up the gather tree.
type gatherPiece struct {
	entries map[int]any
	nbytes  int
}

// Allgather collects every rank's data everywhere, returning a slice
// indexed by rank. Implemented as a binomial-tree gather to rank 0
// followed by a broadcast (2·⌈log₂P⌉ latency hops), matching the
// log-depth scaling of CMMD's concatenation primitive.
func (c *Comm) Allgather(data any, nbytes int) ([]any, error) {
	p := c.w.p
	acc := gatherPiece{entries: map[int]any{c.rank: data}, nbytes: nbytes}
	for mask := 1; mask < p; mask <<= 1 {
		if c.rank&mask != 0 {
			if err := c.Send(c.rank-mask, tagAllgather, acc, acc.nbytes); err != nil {
				return nil, err
			}
			break
		}
		if c.rank+mask < p {
			got, err := c.Recv(c.rank+mask, tagAllgather)
			if err != nil {
				return nil, err
			}
			g, ok := got.(gatherPiece)
			if !ok {
				return nil, fmt.Errorf("comm: allgather payload mismatch")
			}
			for r, d := range g.entries {
				acc.entries[r] = d
			}
			acc.nbytes += g.nbytes
		}
	}
	got, err := c.Bcast(0, acc, acc.nbytes)
	if err != nil {
		return nil, err
	}
	full := got.(gatherPiece)
	out := make([]any, p)
	for r := 0; r < p; r++ {
		d, ok := full.entries[r]
		if !ok {
			return nil, fmt.Errorf("comm: allgather missing contribution from rank %d", r)
		}
		out[r] = d
	}
	return out, nil
}

// Alltoall delivers data[r] to rank r and returns the slice of payloads
// received, indexed by source rank. data[c.Rank()] is passed through
// locally. nbytes[r] sizes each payload for the cost model.
func (c *Comm) Alltoall(data []any, nbytes []int) ([]any, error) {
	p := c.w.p
	if len(data) != p || len(nbytes) != p {
		return nil, fmt.Errorf("comm: alltoall needs %d payloads, got %d", p, len(data))
	}
	out := make([]any, p)
	out[c.rank] = data[c.rank]
	for k := 1; k < p; k++ {
		to := (c.rank + k) % p
		from := (c.rank - k + p) % p
		if err := c.Send(to, tagAlltoall, data[to], nbytes[to]); err != nil {
			return nil, err
		}
		got, err := c.Recv(from, tagAlltoall)
		if err != nil {
			return nil, err
		}
		out[from] = got
	}
	return out, nil
}
