// Package layering implements the paper's Step 2 (Figure 3): inside each
// partition, label every vertex with the closest foreign partition and its
// BFS distance (level) from that partition's boundary.
//
// The labels drive both later phases: δ(i,j) — the number of vertices of
// partition i labeled j — upper-bounds the balance LP's movement variables
// l(i,j), and the per-pair vertex pools, ordered boundary-first, tell the
// mover exactly which vertices realize a flow with the least damage to
// partition shape.
package layering

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Result is the full layering of a partitioned graph.
type Result struct {
	P int
	// Label[v] is the closest foreign partition of v, or −1 when v is dead
	// or cannot reach its partition's boundary.
	Label []int32
	// Level[v] is v's BFS distance from the boundary with Label[v]
	// (0 = on the boundary), or −1 when Label[v] is −1.
	Level []int32
	// Delta[i][j] is δ(i,j): how many vertices of partition i are labeled
	// with partition j.
	Delta [][]int
	// pools[i][j] lists partition i's vertices labeled j in increasing
	// level order (boundary first), the order the balance mover consumes.
	pools [][][]graph.Vertex
}

// Pool returns partition i's vertices labeled j, boundary-first. The
// returned slice is owned by the Result and must not be modified.
func (r *Result) Pool(i, j int32) []graph.Vertex { return r.pools[i][j] }

// Neighbors returns the partitions j with δ(i,j) > 0, in increasing order.
func (r *Result) Neighbors(i int32) []int32 {
	var out []int32
	for j, d := range r.Delta[i] {
		if d > 0 {
			out = append(out, int32(j))
		}
	}
	return out
}

// Layer runs the layering algorithm. Every live vertex must be assigned.
func Layer(g *graph.Graph, a *partition.Assignment) (*Result, error) {
	if err := a.Validate(g); err != nil {
		return nil, fmt.Errorf("layering: %w", err)
	}
	n := g.Order()
	p := a.P
	r := &Result{
		P:     p,
		Label: make([]int32, n),
		Level: make([]int32, n),
		Delta: make([][]int, p),
		pools: make([][][]graph.Vertex, p),
	}
	for i := range r.Label {
		r.Label[i] = -1
		r.Level[i] = -1
	}
	for i := 0; i < p; i++ {
		r.Delta[i] = make([]int, p)
		r.pools[i] = make([][]graph.Vertex, p)
	}

	// Level 0: boundary vertices take the foreign partition they touch the
	// most (ties broken toward the smaller partition id).
	counts := make([]int, p)
	var touched []int32
	frontier := make([]graph.Vertex, 0, n/4)
	for v := 0; v < n; v++ {
		if !g.Alive(graph.Vertex(v)) {
			continue
		}
		pv := a.Part[v]
		touched = touched[:0]
		for _, u := range g.Neighbors(graph.Vertex(v)) {
			pu := a.Part[u]
			if pu != pv {
				if counts[pu] == 0 {
					touched = append(touched, pu)
				}
				counts[pu]++
			}
		}
		if len(touched) == 0 {
			continue
		}
		best := touched[0]
		for _, k := range touched[1:] {
			if counts[k] > counts[best] || (counts[k] == counts[best] && k < best) {
				best = k
			}
		}
		for _, k := range touched {
			counts[k] = 0
		}
		r.Label[v] = best
		r.Level[v] = 0
		frontier = append(frontier, graph.Vertex(v))
	}

	// Interior levels: an unlabeled vertex adjacent (within its own
	// partition) to level-ℓ vertices takes the label most common among
	// them, at level ℓ+1.
	level := int32(0)
	inCandidates := make([]bool, n)
	for len(frontier) > 0 {
		var candidates []graph.Vertex
		for _, v := range frontier {
			pv := a.Part[v]
			for _, u := range g.Neighbors(v) {
				if a.Part[u] == pv && r.Label[u] < 0 && !inCandidates[u] {
					inCandidates[u] = true
					candidates = append(candidates, u)
				}
			}
		}
		next := candidates[:0]
		for _, u := range candidates {
			inCandidates[u] = false
			pu := a.Part[u]
			touched = touched[:0]
			for _, w := range g.Neighbors(u) {
				if a.Part[w] != pu {
					continue
				}
				if r.Label[w] >= 0 && r.Level[w] == level {
					k := r.Label[w]
					if counts[k] == 0 {
						touched = append(touched, k)
					}
					counts[k]++
				}
			}
			if len(touched) == 0 {
				continue // unreachable this round (cannot happen: u was discovered)
			}
			best := touched[0]
			for _, k := range touched[1:] {
				if counts[k] > counts[best] || (counts[k] == counts[best] && k < best) {
					best = k
				}
			}
			for _, k := range touched {
				counts[k] = 0
			}
			r.Label[u] = best
			r.Level[u] = level + 1
			next = append(next, u)
		}
		frontier = next
		level++
	}

	// Pools and δ in (level, attachment, vertex-id) order: vertices closer
	// to the boundary move first, and within a level the vertices with the
	// most edges into their destination partition move first — realizing a
	// flow this way peels coherent boundary bands instead of scattering
	// moves, which keeps the cut low across repeated repartitionings.
	maxLevel := int32(-1)
	for v := 0; v < n; v++ {
		if r.Level[v] > maxLevel {
			maxLevel = r.Level[v]
		}
	}
	byLevel := make([][]graph.Vertex, maxLevel+1)
	for v := 0; v < n; v++ {
		if l := r.Level[v]; l >= 0 {
			byLevel[l] = append(byLevel[l], graph.Vertex(v))
		}
	}
	att := make([]int32, n) // edges from v into its label partition
	for v := 0; v < n; v++ {
		if r.Label[v] < 0 {
			continue
		}
		lab := r.Label[v]
		for _, u := range g.Neighbors(graph.Vertex(v)) {
			if a.Part[u] == lab {
				att[v]++
			}
		}
	}
	for _, vs := range byLevel {
		sort.SliceStable(vs, func(x, y int) bool {
			if att[vs[x]] != att[vs[y]] {
				return att[vs[x]] > att[vs[y]]
			}
			return vs[x] < vs[y]
		})
		for _, v := range vs {
			i, j := a.Part[v], r.Label[v]
			r.pools[i][j] = append(r.pools[i][j], v)
			r.Delta[i][j]++
		}
	}
	return r, nil
}

// Validate checks internal consistency of a layering against its graph
// and assignment; it is used by tests and the property suite.
func (r *Result) Validate(g *graph.Graph, a *partition.Assignment) error {
	for v := 0; v < g.Order(); v++ {
		lab, lev := r.Label[v], r.Level[v]
		if !g.Alive(graph.Vertex(v)) {
			if lab != -1 || lev != -1 {
				return fmt.Errorf("layering: dead vertex %d labeled", v)
			}
			continue
		}
		if (lab < 0) != (lev < 0) {
			return fmt.Errorf("layering: vertex %d has label %d but level %d", v, lab, lev)
		}
		if lab < 0 {
			continue
		}
		if lab == a.Part[v] {
			return fmt.Errorf("layering: vertex %d labeled with its own partition", v)
		}
		if lev == 0 {
			// Must touch partition lab.
			ok := false
			for _, u := range g.Neighbors(graph.Vertex(v)) {
				if a.Part[u] == lab {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("layering: boundary vertex %d does not touch partition %d", v, lab)
			}
		} else {
			// Must have a same-partition neighbor one level down.
			ok := false
			for _, u := range g.Neighbors(graph.Vertex(v)) {
				if a.Part[u] == a.Part[v] && r.Level[u] == lev-1 {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("layering: vertex %d at level %d has no level-%d support", v, lev, lev-1)
			}
		}
	}
	// δ must match pools.
	for i := 0; i < r.P; i++ {
		for j := 0; j < r.P; j++ {
			if len(r.pools[i][j]) != r.Delta[i][j] {
				return fmt.Errorf("layering: pool(%d,%d) has %d vertices, δ=%d", i, j, len(r.pools[i][j]), r.Delta[i][j])
			}
		}
	}
	return nil
}
