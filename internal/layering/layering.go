// Package layering implements the paper's Step 2 (Figure 3): inside each
// partition, label every vertex with the closest foreign partition and its
// BFS distance (level) from that partition's boundary.
//
// The labels drive both later phases: δ(i,j) — the number of vertices of
// partition i labeled j — upper-bounds the balance LP's movement variables
// l(i,j), and the per-pair vertex pools, ordered boundary-first, tell the
// mover exactly which vertices realize a flow with the least damage to
// partition shape.
//
// Two entry points exist. Layer is the one-shot API: it snapshots the
// graph and scans every vertex. The Scratch type is the hot-path API: it
// runs the same kernel over a caller-owned CSR snapshot, optionally seeded
// with a precomputed boundary superset (so level 0 does no full-graph arc
// scan), and reuses every buffer across calls so steady-state layering
// allocates nothing. Both produce bit-identical results for the same
// graph and assignment.
package layering

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/partition"
)

// Result is the full layering of a partitioned graph.
type Result struct {
	P int
	// Label[v] is the closest foreign partition of v, or −1 when v is dead
	// or cannot reach its partition's boundary.
	Label []int32
	// Level[v] is v's BFS distance from the boundary with Label[v]
	// (0 = on the boundary), or −1 when Label[v] is −1.
	Level []int32
	// Delta[i][j] is δ(i,j): how many vertices of partition i are labeled
	// with partition j.
	Delta [][]int
	// pools[i][j] lists partition i's vertices labeled j in increasing
	// level order (boundary first), the order the balance mover consumes.
	pools [][][]graph.Vertex
}

// Pool returns partition i's vertices labeled j, boundary-first. The
// returned slice is owned by the Result and must not be modified.
func (r *Result) Pool(i, j int32) []graph.Vertex { return r.pools[i][j] }

// Neighbors returns the partitions j with δ(i,j) > 0, in increasing order.
func (r *Result) Neighbors(i int32) []int32 {
	var out []int32
	for j, d := range r.Delta[i] {
		if d > 0 {
			out = append(out, int32(j))
		}
	}
	return out
}

// Scratch holds the reusable state of the layering kernel. The zero value
// is ready to use; buffers grow to the largest graph seen and are then
// reused, so repeated layering of a stable-size graph allocates nothing.
// The Result returned by its methods is owned by the Scratch and is
// invalidated by the next call.
//
// Procs > 1 switches the kernel to its sharded parallel form (see
// parallel.go): the level-0 scan, each BFS level expansion, the
// attachment scan and the large per-level pool sorts are fanned out
// over Procs workers with per-worker arenas merged deterministically in
// shard order. The produced Result is bit-identical to the sequential
// kernel's for every worker count. Group, when non-nil, is the shared
// fork-join executor to run regions on (the engine passes its own so
// per-worker busy times roll up across kernels); nil uses a private one.
type Scratch struct {
	res          Result
	counts       []int
	touched      []int32
	frontier     []graph.Vertex
	candidates   []graph.Vertex
	inCandidates []bool
	byLevel      [][]graph.Vertex
	att          []int32
	sorter       poolSorter

	// Parallel state; see parallel.go.
	Procs    int
	Group    *par.Group
	ownGroup par.Group
	ws       []layerWorker
	stamps   par.Stamps
	seedBuf  []graph.Vertex
	nextBuf  []graph.Vertex
	mergeBuf []graph.Vertex
	runEnds  []int
	shards   []par.Range
	lz       levelZeroTask
	lv       levelTask
	at       attTask
	srt      sortTask
}

// poolSorter orders one level's vertices by attachment (descending) then
// id — a total order, so the pool layout is independent of discovery
// order. It is a reused sort.Interface so the stable sort costs no
// per-call closure or swapper allocation.
type poolSorter struct {
	vs  []graph.Vertex
	att []int32
}

func (s *poolSorter) Len() int { return len(s.vs) }
func (s *poolSorter) Less(i, j int) bool {
	if s.att[s.vs[i]] != s.att[s.vs[j]] {
		return s.att[s.vs[i]] > s.att[s.vs[j]]
	}
	return s.vs[i] < s.vs[j]
}
func (s *poolSorter) Swap(i, j int) { s.vs[i], s.vs[j] = s.vs[j], s.vs[i] }

// bestLabel picks the winning label from a non-empty candidate list:
// the most-counted entry of touched, ties toward the smaller partition
// id. It resets the counts it examined, restoring the all-zero scratch
// invariant. Every kernel — sequential and sharded — selects labels
// through this one function, so the tie-break rule (which the parallel
// bit-identity contract rides on) is single-sourced.
func bestLabel(counts []int, touched []int32) int32 {
	best := touched[0]
	for _, k := range touched[1:] {
		if counts[k] > counts[best] || (counts[k] == counts[best] && k < best) {
			best = k
		}
	}
	for _, k := range touched {
		counts[k] = 0
	}
	return best
}

// Layer runs the layering algorithm. Every live vertex must be assigned.
func Layer(g *graph.Graph, a *partition.Assignment) (*Result, error) {
	if err := a.Validate(g); err != nil {
		return nil, fmt.Errorf("layering: %w", err)
	}
	var s Scratch
	return s.run(context.Background(), g.ToCSR(), a, nil, false)
}

// LayerCSR runs the layering kernel over a CSR snapshot, reusing the
// scratch buffers. The snapshot must reflect the graph the assignment
// covers. The result is owned by the Scratch. The context is polled once
// per BFS level; a done context aborts with an error matching
// cancel.ErrCanceled.
func (s *Scratch) LayerCSR(ctx context.Context, c *graph.CSR, a *partition.Assignment) (*Result, error) {
	if err := ValidateAssignment(c, a); err != nil {
		return nil, fmt.Errorf("layering: %w", err)
	}
	return s.run(ctx, c, a, nil, false)
}

// LayerSeeded is LayerCSR with a precomputed boundary superset: only the
// seed vertices are examined for level-0 membership, so the level-0 pass
// costs O(Σ deg(seed)) instead of a full scan of every arc. seeds must
// contain every live vertex with at least one foreign neighbor (extra or
// duplicate vertices are harmless); the result is then bit-identical to
// the full-scan kernel's.
func (s *Scratch) LayerSeeded(ctx context.Context, c *graph.CSR, a *partition.Assignment, seeds []graph.Vertex) (*Result, error) {
	if err := ValidateAssignment(c, a); err != nil {
		return nil, fmt.Errorf("layering: %w", err)
	}
	return s.run(ctx, c, a, seeds, true)
}

// ValidateAssignment checks that a covers the snapshot: live slots carry a
// partition in [0, P), dead slots are Unassigned.
func ValidateAssignment(c *graph.CSR, a *partition.Assignment) error {
	return a.ValidateCSR(c)
}

// grow readies the scratch for an order-n, P-partition run.
func (s *Scratch) grow(n, p int) *Result {
	r := &s.res
	r.P = p
	r.Label = growInt32(r.Label, n)
	r.Level = growInt32(r.Level, n)
	for i := range r.Label[:n] {
		r.Label[i] = -1
		r.Level[i] = -1
	}
	if cap(r.Delta) < p {
		r.Delta = make([][]int, p)
	}
	r.Delta = r.Delta[:p]
	if cap(r.pools) < p {
		r.pools = make([][][]graph.Vertex, p)
	}
	r.pools = r.pools[:p]
	for i := 0; i < p; i++ {
		if cap(r.Delta[i]) < p {
			r.Delta[i] = make([]int, p)
		}
		r.Delta[i] = r.Delta[i][:p]
		for j := range r.Delta[i] {
			r.Delta[i][j] = 0
		}
		if cap(r.pools[i]) < p {
			r.pools[i] = make([][]graph.Vertex, p)
		}
		r.pools[i] = r.pools[i][:p]
		for j := range r.pools[i] {
			r.pools[i][j] = r.pools[i][j][:0]
		}
	}

	if cap(s.counts) < p {
		s.counts = make([]int, p)
	}
	s.counts = s.counts[:p]
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.touched = s.touched[:0]
	s.frontier = s.frontier[:0]
	s.candidates = s.candidates[:0]
	if cap(s.inCandidates) < n {
		s.inCandidates = make([]bool, n)
	}
	s.inCandidates = s.inCandidates[:n]
	s.att = growInt32(s.att, n)
	for i := range s.att[:n] {
		s.att[i] = 0
	}
	return r
}

func growInt32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

// run is the kernel shared by all entry points. When seeded, only the
// seeds are examined for level-0 membership; otherwise every vertex is.
// The produced labeling is independent of seed order and of the frontier
// traversal order: each level-ℓ+1 label depends only on the completed
// level-ℓ labeling, and pools are rebuilt from a full in-order pass.
// The context is polled once per BFS level (the natural yield point of
// the level-synchronous traversal); an abort leaves the Scratch reusable.
func (s *Scratch) run(ctx context.Context, c *graph.CSR, a *partition.Assignment, seeds []graph.Vertex, seeded bool) (*Result, error) {
	if s.Procs > 1 {
		return s.runPar(ctx, c, a, seeds, seeded)
	}
	n := c.Order()
	p := a.P
	r := s.grow(n, p)
	// The candidate-dedup flags are sequential-only (the sharded kernel
	// dedups through atomic stamps), so the O(n) clear lives here, off
	// the parallel path. A canceled run can leave flags set for
	// candidates that were discovered but never processed.
	for i := range s.inCandidates[:n] {
		s.inCandidates[i] = false
	}
	counts := s.counts
	touched := s.touched[:0]
	frontier := s.frontier[:0]

	// Level 0: boundary vertices take the foreign partition they touch the
	// most (ties broken toward the smaller partition id).
	levelZero := func(v graph.Vertex) {
		if !c.Live[v] || r.Level[v] == 0 {
			return // dead, or a duplicate seed already classified
		}
		pv := a.Part[v]
		touched = touched[:0]
		for _, u := range c.Row(v) {
			pu := a.Part[u]
			if pu != pv {
				if counts[pu] == 0 {
					touched = append(touched, pu)
				}
				counts[pu]++
			}
		}
		if len(touched) == 0 {
			return
		}
		r.Label[v] = bestLabel(counts, touched)
		r.Level[v] = 0
		frontier = append(frontier, v)
	}
	if seeded {
		for _, v := range seeds {
			levelZero(v)
		}
	} else {
		for v := 0; v < n; v++ {
			levelZero(graph.Vertex(v))
		}
	}

	// Interior levels: an unlabeled vertex adjacent (within its own
	// partition) to level-ℓ vertices takes the label most common among
	// them, at level ℓ+1.
	level := int32(0)
	inCandidates := s.inCandidates
	candidates := s.candidates[:0]
	for len(frontier) > 0 {
		if err := cancel.Check(ctx, "layering BFS"); err != nil {
			// Hand the grown buffers back before aborting so the Scratch
			// stays reusable after a canceled run.
			s.touched = touched[:0]
			s.frontier = frontier[:0]
			s.candidates = candidates[:0]
			return nil, err
		}
		candidates = candidates[:0]
		for _, v := range frontier {
			pv := a.Part[v]
			for _, u := range c.Row(v) {
				if a.Part[u] == pv && r.Label[u] < 0 && !inCandidates[u] {
					inCandidates[u] = true
					candidates = append(candidates, u)
				}
			}
		}
		frontier = frontier[:0]
		for _, u := range candidates {
			inCandidates[u] = false
			pu := a.Part[u]
			touched = touched[:0]
			for _, w := range c.Row(u) {
				if a.Part[w] != pu {
					continue
				}
				if r.Label[w] >= 0 && r.Level[w] == level {
					k := r.Label[w]
					if counts[k] == 0 {
						touched = append(touched, k)
					}
					counts[k]++
				}
			}
			if len(touched) == 0 {
				continue // unreachable this round (cannot happen: u was discovered)
			}
			r.Label[u] = bestLabel(counts, touched)
			r.Level[u] = level + 1
			frontier = append(frontier, u)
		}
		level++
	}
	// Return the (possibly re-grown) buffers to the scratch for reuse.
	s.touched = touched[:0]
	s.frontier = frontier[:0]
	s.candidates = candidates[:0]

	// Edges from v into its label partition, for the pool ordering.
	att := s.att
	for v := 0; v < n; v++ {
		if r.Label[v] < 0 {
			continue
		}
		lab := r.Label[v]
		for _, u := range c.Row(graph.Vertex(v)) {
			if a.Part[u] == lab {
				att[v]++
			}
		}
	}
	s.buildPools(c, a, false)
	return r, nil
}

// buildPools fills Delta and the per-pair pools from the completed
// labeling, in (level, attachment, vertex-id) order: vertices closer to
// the boundary move first, and within a level the vertices with the
// most edges into their destination partition move first — realizing a
// flow this way peels coherent boundary bands instead of scattering
// moves, which keeps the cut low across repeated repartitionings. The
// attachment array s.att must already be computed. The comparator is a
// total order, so the pool layout depends only on the labeling — never
// on discovery order or on how the sort work was sharded (parSort).
func (s *Scratch) buildPools(c *graph.CSR, a *partition.Assignment, parSort bool) {
	r := &s.res
	n := c.Order()
	maxLevel := int32(-1)
	for v := 0; v < n; v++ {
		if r.Level[v] > maxLevel {
			maxLevel = r.Level[v]
		}
	}
	if cap(s.byLevel) < int(maxLevel+1) {
		old := s.byLevel
		s.byLevel = make([][]graph.Vertex, maxLevel+1)
		copy(s.byLevel, old)
	}
	byLevel := s.byLevel[:maxLevel+1]
	for l := range byLevel {
		byLevel[l] = byLevel[l][:0]
	}
	for v := 0; v < n; v++ {
		if l := r.Level[v]; l >= 0 {
			byLevel[l] = append(byLevel[l], graph.Vertex(v))
		}
	}
	for l, vs := range byLevel {
		if parSort {
			s.sortLevelPar(vs)
		} else {
			s.sorter.vs, s.sorter.att = vs, s.att
			sort.Stable(&s.sorter)
		}
		for _, v := range vs {
			i, j := a.Part[v], r.Label[v]
			r.pools[i][j] = append(r.pools[i][j], v)
			r.Delta[i][j]++
		}
		byLevel[l] = vs[:0]
	}
}

// Validate checks internal consistency of a layering against its graph
// and assignment; it is used by tests and the property suite.
func (r *Result) Validate(g *graph.Graph, a *partition.Assignment) error {
	for v := 0; v < g.Order(); v++ {
		lab, lev := r.Label[v], r.Level[v]
		if !g.Alive(graph.Vertex(v)) {
			if lab != -1 || lev != -1 {
				return fmt.Errorf("layering: dead vertex %d labeled", v)
			}
			continue
		}
		if (lab < 0) != (lev < 0) {
			return fmt.Errorf("layering: vertex %d has label %d but level %d", v, lab, lev)
		}
		if lab < 0 {
			continue
		}
		if lab == a.Part[v] {
			return fmt.Errorf("layering: vertex %d labeled with its own partition", v)
		}
		if lev == 0 {
			// Must touch partition lab.
			ok := false
			for _, u := range g.Neighbors(graph.Vertex(v)) {
				if a.Part[u] == lab {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("layering: boundary vertex %d does not touch partition %d", v, lab)
			}
		} else {
			// Must have a same-partition neighbor one level down.
			ok := false
			for _, u := range g.Neighbors(graph.Vertex(v)) {
				if a.Part[u] == a.Part[v] && r.Level[u] == lev-1 {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("layering: vertex %d at level %d has no level-%d support", v, lev, lev-1)
			}
		}
	}
	// δ must match pools.
	for i := 0; i < r.P; i++ {
		for j := 0; j < r.P; j++ {
			if len(r.pools[i][j]) != r.Delta[i][j] {
				return fmt.Errorf("layering: pool(%d,%d) has %d vertices, δ=%d", i, j, len(r.pools[i][j]), r.Delta[i][j])
			}
		}
	}
	return nil
}
