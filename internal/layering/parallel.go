// The sharded parallel form of the layering kernel. Vertex work is
// split into contiguous shards (arc-balanced over the CSR for full
// scans, count-balanced for seed/frontier lists); every worker owns a
// private arena (layerWorker) and the join merges per-worker output in
// shard order. Determinism is structural, not scheduled: labels at
// level ℓ+1 depend only on the completed level-ℓ labeling, pool layout
// is a total order over (level, attachment, id), and the only shared
// mutable state inside a region — the candidate claim stamps — decides
// membership (deterministic) rather than values. The produced Result
// is therefore bit-identical to the sequential kernel's for any worker
// count, a property the engine fuzzes (FuzzParallelEquivalence).
package layering

import (
	"context"
	"sort"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/partition"
)

// candLab is one claimed BFS candidate and its computed label.
type candLab struct {
	v   graph.Vertex
	lab int32
}

// layerWorker is one worker's private arena: label-count scratch,
// frontier/candidate output buffers and a sorter for shard sorts. All
// grow to the largest call seen and are then reused.
type layerWorker struct {
	counts   []int
	touched  []int32
	frontier []graph.Vertex
	cands    []candLab
	sorter   poolSorter
}

// group returns the fork-join executor to run regions on.
func (s *Scratch) group() *par.Group {
	if s.Group != nil {
		return s.Group
	}
	return &s.ownGroup
}

// growPar readies the parallel-only state for an order-n, P-partition run.
func (s *Scratch) growPar(n, p int) {
	s.stamps.Grow(n)
	for len(s.ws) < s.Procs {
		s.ws = append(s.ws, layerWorker{})
	}
	for w := range s.ws[:s.Procs] {
		ws := &s.ws[w]
		for len(ws.counts) < p {
			ws.counts = append(ws.counts, 0)
		}
	}
}

// clearTasks drops the snapshot/assignment/seed pointers the reusable
// task structs captured for the last call's regions, so a long-lived
// scratch never pins a caller's dropped Assignment or CSR in memory.
func (s *Scratch) clearTasks() {
	s.lz = levelZeroTask{}
	s.lv = levelTask{}
	s.at = attTask{}
	s.srt = sortTask{}
}

// runPar is the sharded counterpart of run; see the package comment of
// this file for the determinism argument.
func (s *Scratch) runPar(ctx context.Context, c *graph.CSR, a *partition.Assignment, seeds []graph.Vertex, seeded bool) (*Result, error) {
	n := c.Order()
	p := a.P
	r := s.grow(n, p)
	s.growPar(n, p)
	g := s.group()
	defer s.clearTasks()

	// Level 0. Seeded runs dedup the seed list first (the API allows
	// duplicates; the sharded pass must own each vertex exactly once),
	// then shard the deduped list; unseeded runs shard the vertex range
	// by arc count. Workers classify boundary vertices into private
	// frontier buffers, merged in shard order.
	if seeded {
		s.stamps.Next()
		buf := s.seedBuf[:0]
		for _, v := range seeds {
			if s.stamps.TryMark(v) {
				buf = append(buf, v)
			}
		}
		s.seedBuf = buf
		procs := s.Procs
		if len(buf) < parLevelMin {
			procs = 1 // tiny boundary: classify inline, skip the fork-join
		}
		s.shards = par.Split(s.shards[:0], len(buf), procs)
	} else {
		procs := s.Procs
		if n < parOrderMin {
			procs = 1 // tiny graph: scan inline, skip the fork-join
		}
		s.shards = c.Shards(s.shards[:0], procs)
	}
	s.lz = levelZeroTask{s: s, c: c, a: a, seeds: s.seedBuf, seeded: seeded}
	g.Run(len(s.shards), &s.lz)
	frontier := s.frontier[:0]
	for w := range s.shards {
		frontier = append(frontier, s.ws[w].frontier...)
	}

	// Interior levels: workers shard the frontier, claim undiscovered
	// same-partition neighbors through the atomic stamp, and compute
	// each claimed vertex's label immediately — the label inputs are
	// the completed level-ℓ labeling, which nothing writes during the
	// region. The join then applies the labels and concatenates the
	// next frontier in worker order. Claim racing can reorder the
	// frontier relative to the sequential kernel, but no Result field
	// depends on frontier order.
	s.stamps.Next() // fresh generation: seed-dedup stamps must not mask claims
	next := s.nextBuf[:0]
	level := int32(0)
	for len(frontier) > 0 {
		if err := cancel.Check(ctx, "layering BFS"); err != nil {
			// Hand the grown buffers back before aborting so the
			// Scratch stays reusable after a canceled run.
			s.frontier = frontier[:0]
			s.nextBuf = next[:0]
			return nil, err
		}
		// Small frontiers expand inline: a deep narrow layering must
		// not pay a fork-join per ring. The cutoff depends only on the
		// frontier length — and the result is worker-count independent
		// anyway — so determinism is unaffected.
		procs := s.Procs
		if len(frontier) < parLevelMin {
			procs = 1
		}
		s.shards = par.Split(s.shards[:0], len(frontier), procs)
		s.lv = levelTask{s: s, c: c, a: a, frontier: frontier, level: level}
		g.Run(len(s.shards), &s.lv)
		next = next[:0]
		for w := range s.shards {
			for _, cl := range s.ws[w].cands {
				r.Label[cl.v] = cl.lab
				r.Level[cl.v] = level + 1
				next = append(next, cl.v)
			}
		}
		frontier, next = next, frontier
		level++
	}
	s.frontier = frontier[:0]
	s.nextBuf = next[:0]

	// Attachment scan, sharded by arc count (inline on tiny graphs).
	attProcs := s.Procs
	if n < parOrderMin {
		attProcs = 1
	}
	s.shards = c.Shards(s.shards[:0], attProcs)
	s.at = attTask{s: s, c: c, a: a}
	g.Run(len(s.shards), &s.at)

	s.buildPools(c, a, true)
	return r, nil
}

// levelZeroTask classifies one shard of the level-0 pass.
type levelZeroTask struct {
	s      *Scratch
	c      *graph.CSR
	a      *partition.Assignment
	seeds  []graph.Vertex
	seeded bool
}

func (t *levelZeroTask) Do(w int) {
	s := t.s
	ws := &s.ws[w]
	ws.frontier = ws.frontier[:0]
	sh := s.shards[w]
	if t.seeded {
		for _, v := range t.seeds[sh.Lo:sh.Hi] {
			s.levelZeroInto(ws, t.c, t.a, v)
		}
		return
	}
	for v := sh.Lo; v < sh.Hi; v++ {
		s.levelZeroInto(ws, t.c, t.a, graph.Vertex(v))
	}
}

// levelZeroInto is the per-vertex level-0 classification, the exact
// math of the sequential kernel's levelZero against worker-private
// count scratch. v is owned by the calling worker (shards are disjoint
// and seeds deduped), so the Label/Level writes are race-free.
func (s *Scratch) levelZeroInto(ws *layerWorker, c *graph.CSR, a *partition.Assignment, v graph.Vertex) {
	r := &s.res
	if !c.Live[v] || r.Level[v] == 0 {
		return
	}
	pv := a.Part[v]
	counts := ws.counts
	touched := ws.touched[:0]
	for _, u := range c.Row(v) {
		pu := a.Part[u]
		if pu != pv {
			if counts[pu] == 0 {
				touched = append(touched, pu)
			}
			counts[pu]++
		}
	}
	ws.touched = touched[:0]
	if len(touched) == 0 {
		return
	}
	r.Label[v] = bestLabel(counts, touched)
	r.Level[v] = 0
	ws.frontier = append(ws.frontier, v)
}

// levelTask expands one shard of the current frontier.
type levelTask struct {
	s        *Scratch
	c        *graph.CSR
	a        *partition.Assignment
	frontier []graph.Vertex
	level    int32
}

func (t *levelTask) Do(w int) {
	s := t.s
	ws := &s.ws[w]
	ws.cands = ws.cands[:0]
	r := &s.res
	sh := s.shards[w]
	for _, v := range t.frontier[sh.Lo:sh.Hi] {
		pv := t.a.Part[v]
		for _, u := range t.c.Row(v) {
			if t.a.Part[u] != pv || r.Label[u] >= 0 || !s.stamps.Claim(u) {
				continue
			}
			if lab := s.labelFor(ws, t.c, t.a, u, t.level); lab >= 0 {
				ws.cands = append(ws.cands, candLab{v: u, lab: lab})
			}
		}
	}
}

// labelFor computes the level-(level+1) label of claimed candidate u:
// the label most common among its same-partition level-`level`
// neighbors, ties toward the smaller partition id — the sequential
// kernel's exact rule. It returns -1 when u has no support at that
// level, which cannot happen for a genuinely discovered candidate.
func (s *Scratch) labelFor(ws *layerWorker, c *graph.CSR, a *partition.Assignment, u graph.Vertex, level int32) int32 {
	r := &s.res
	pu := a.Part[u]
	counts := ws.counts
	touched := ws.touched[:0]
	for _, nb := range c.Row(u) {
		if a.Part[nb] != pu {
			continue
		}
		if r.Label[nb] >= 0 && r.Level[nb] == level {
			k := r.Label[nb]
			if counts[k] == 0 {
				touched = append(touched, k)
			}
			counts[k]++
		}
	}
	ws.touched = touched[:0]
	if len(touched) == 0 {
		return -1
	}
	return bestLabel(counts, touched)
}

// attTask fills one vertex-range shard of the attachment array (edges
// from v into its label partition). Reads the completed labeling only;
// writes att[v] within the worker's own range.
type attTask struct {
	s *Scratch
	c *graph.CSR
	a *partition.Assignment
}

func (t *attTask) Do(w int) {
	s := t.s
	r := &s.res
	sh := s.shards[w]
	for v := sh.Lo; v < sh.Hi; v++ {
		lab := r.Label[v]
		if lab < 0 {
			continue
		}
		var cnt int32
		for _, u := range t.c.Row(graph.Vertex(v)) {
			if t.a.Part[u] == lab {
				cnt++
			}
		}
		s.att[v] = cnt
	}
}

// parSortMin is the level size below which a shard-sort is not worth
// the fork-join; the threshold depends only on input size, so worker
// count never changes which path runs for a given level — and both
// paths produce the unique totally-ordered permutation anyway.
const parSortMin = 256

// parLevelMin is the seed/frontier size below which level work runs
// inline instead of forking the worker group (same determinism
// argument as parSortMin).
const parLevelMin = 48

// parOrderMin is the snapshot order below which the full-graph scans
// (unseeded level 0, attachment) run inline — mirroring the engine's
// parBoundaryMin so a small graph never pays fork-join overhead on any
// region at the default parallelism.
const parOrderMin = 256

// sortTask sorts one contiguous shard of a level in place.
type sortTask struct {
	s  *Scratch
	vs []graph.Vertex
}

func (t *sortTask) Do(w int) {
	sh := t.s.shards[w]
	ws := &t.s.ws[w]
	ws.sorter.vs, ws.sorter.att = t.vs[sh.Lo:sh.Hi], t.s.att
	sort.Sort(&ws.sorter)
	ws.sorter.vs, ws.sorter.att = nil, nil
}

// sortLevelPar sorts vs into pool order (attachment descending, id
// ascending) in place. Large levels are sorted as Procs concurrent
// shard-sorts followed by sequential pairwise merge passes; because the
// comparator is a total order over distinct ids, the outcome is the
// unique sorted permutation — identical to the sequential sort.Stable
// for every worker count.
func (s *Scratch) sortLevelPar(vs []graph.Vertex) {
	if len(vs) < parSortMin || s.Procs <= 1 {
		s.sorter.vs, s.sorter.att = vs, s.att
		sort.Stable(&s.sorter)
		return
	}
	s.shards = par.Split(s.shards[:0], len(vs), s.Procs)
	s.srt = sortTask{s: s, vs: vs}
	s.group().Run(len(s.shards), &s.srt)

	ends := s.runEnds[:0]
	for _, sh := range s.shards {
		ends = append(ends, sh.Hi)
	}
	if cap(s.mergeBuf) < len(vs) {
		s.mergeBuf = make([]graph.Vertex, len(vs))
	}
	src, dst := vs, s.mergeBuf[:len(vs)]
	for len(ends) > 1 {
		lo, k := 0, 0
		for i := 0; i+1 < len(ends); i += 2 {
			s.mergeRuns(dst, src, lo, ends[i], ends[i+1])
			lo = ends[i+1]
			ends[k] = ends[i+1]
			k++
		}
		if len(ends)%2 == 1 {
			hi := ends[len(ends)-1]
			copy(dst[lo:hi], src[lo:hi])
			ends[k] = hi
			k++
		}
		ends = ends[:k]
		src, dst = dst, src
	}
	s.runEnds = ends[:0]
	if &src[0] != &vs[0] {
		copy(vs, src)
	}
}

// mergeRuns merges the sorted runs src[lo:mid] and src[mid:hi] into
// dst[lo:hi] under the pool order.
func (s *Scratch) mergeRuns(dst, src []graph.Vertex, lo, mid, hi int) {
	att := s.att
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		switch {
		case i >= mid:
			dst[k] = src[j]
			j++
		case j >= hi:
			dst[k] = src[i]
			i++
		case att[src[i]] > att[src[j]] || (att[src[i]] == att[src[j]] && src[i] < src[j]):
			dst[k] = src[i]
			i++
		default:
			dst[k] = src[j]
			j++
		}
	}
}
