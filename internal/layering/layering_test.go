package layering

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/partition"
)

// stripes partitions a rows×cols grid into vertical stripes of equal width.
func stripes(rows, cols, p int) (*graph.Graph, *partition.Assignment) {
	g := graph.Grid(rows, cols)
	a := partition.New(g.Order(), p)
	w := cols / p
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := c / w
			if q >= p {
				q = p - 1
			}
			a.Part[r*cols+c] = int32(q)
		}
	}
	return g, a
}

func TestLayerStripes(t *testing.T) {
	g, a := stripes(4, 12, 3)
	r, err := Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(g, a); err != nil {
		t.Fatal(err)
	}
	// Middle stripe (cols 4..7) touches both sides: cols 4-5 should label
	// toward 0, cols 6-7 toward 2, with levels 0 then 1 from each border.
	for rr := 0; rr < 4; rr++ {
		for c := 4; c < 8; c++ {
			v := rr*12 + c
			wantLabel := int32(0)
			if c >= 6 {
				wantLabel = 2
			}
			if r.Label[v] != wantLabel {
				t.Fatalf("vertex (%d,%d): label %d, want %d", rr, c, r.Label[v], wantLabel)
			}
			wantLevel := int32(0)
			if c == 5 || c == 6 {
				wantLevel = 1
			}
			if c == 4 || c == 7 {
				wantLevel = 0
			}
			if r.Level[v] != wantLevel {
				t.Fatalf("vertex (%d,%d): level %d, want %d", rr, c, r.Level[v], wantLevel)
			}
		}
	}
	// δ(1,0) counts stripe-1 vertices labeled 0: columns 4-5, 8 vertices.
	if r.Delta[1][0] != 8 || r.Delta[1][2] != 8 {
		t.Fatalf("delta[1] = %v, want 8 toward each side", r.Delta[1])
	}
	// Outer stripes label entirely toward the middle.
	if r.Delta[0][1] != 16 || r.Delta[2][1] != 16 {
		t.Fatalf("delta[0][1]=%d delta[2][1]=%d, want 16/16", r.Delta[0][1], r.Delta[2][1])
	}
}

func TestPoolsBoundaryFirst(t *testing.T) {
	g, a := stripes(4, 12, 3)
	r, err := Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	pool := r.Pool(0, 1)
	if len(pool) != 16 {
		t.Fatalf("pool(0,1) size %d, want 16", len(pool))
	}
	for i := 1; i < len(pool); i++ {
		if r.Level[pool[i]] < r.Level[pool[i-1]] {
			t.Fatal("pool not in level order")
		}
	}
	// First pool entries are on the boundary (level 0, column 3).
	if r.Level[pool[0]] != 0 {
		t.Fatal("pool must start at the boundary")
	}
}

func TestLayerIsolatedPartition(t *testing.T) {
	// A graph with an isolated partition (no cross edges): its vertices
	// stay unlabeled and δ is all zero for it.
	g := graph.NewWithVertices(6)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(1, 2, 1)
	_ = g.AddEdge(3, 4, 1)
	_ = g.AddEdge(4, 5, 1)
	a := partition.New(6, 2)
	a.Part = []int32{0, 0, 0, 1, 1, 1}
	r, err := Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if r.Label[v] != -1 {
			t.Fatalf("vertex %d labeled %d in isolated partitions", v, r.Label[v])
		}
	}
	if r.Delta[0][1] != 0 || r.Delta[1][0] != 0 {
		t.Fatal("delta should be zero between disconnected partitions")
	}
	if err := r.Validate(g, a); err != nil {
		t.Fatal(err)
	}
}

func TestLayerUnassignedRejected(t *testing.T) {
	g := graph.Path(3)
	a := partition.New(3, 2)
	a.Part = []int32{0, partition.Unassigned, 1}
	if _, err := Layer(g, a); err == nil {
		t.Fatal("unassigned vertices must be rejected")
	}
}

func TestNeighborsList(t *testing.T) {
	g, a := stripes(4, 12, 3)
	r, err := Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	n0 := r.Neighbors(0)
	if len(n0) != 1 || n0[0] != 1 {
		t.Fatalf("neighbors(0) = %v, want [1]", n0)
	}
	n1 := r.Neighbors(1)
	if len(n1) != 2 {
		t.Fatalf("neighbors(1) = %v, want [0 2]", n1)
	}
}

func TestTieBreakDeterministic(t *testing.T) {
	// Vertex 0 in partition 2 touches partitions 0 and 1 equally; the tie
	// must break toward the smaller id (0).
	g := graph.NewWithVertices(3)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(0, 2, 1)
	a := partition.New(3, 3)
	a.Part = []int32{2, 0, 1}
	r, err := Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.Label[0] != 0 {
		t.Fatalf("tie should break to partition 0, got %d", r.Label[0])
	}
}

func TestMajorityLabelWins(t *testing.T) {
	// Vertex 0 (partition 2) touches partition 1 twice and partition 0 once.
	g := graph.NewWithVertices(4)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(0, 2, 1)
	_ = g.AddEdge(0, 3, 1)
	a := partition.New(4, 3)
	a.Part = []int32{2, 0, 1, 1}
	r, err := Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.Label[0] != 1 {
		t.Fatalf("majority label should win: got %d, want 1", r.Label[0])
	}
}

func TestPropertyLayeringInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(40)
		m := n + rng.Intn(2*n)
		g, err := graph.RandomGNM(n, min(m, n*(n-1)/2), rng)
		if err != nil {
			return false
		}
		p := 2 + rng.Intn(4)
		a := partition.New(g.Order(), p)
		for v := 0; v < g.Order(); v++ {
			a.Part[v] = int32(rng.Intn(p))
		}
		r, err := Layer(g, a)
		if err != nil {
			return false
		}
		if err := r.Validate(g, a); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// δ row sums never exceed partition sizes.
		sizes := a.Sizes(g)
		for i := 0; i < p; i++ {
			sum := 0
			for j := 0; j < p; j++ {
				sum += r.Delta[i][j]
			}
			if sum > sizes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestLayerCanceled: the BFS kernel polls its context per level; a
// pre-canceled context aborts with the typed sentinel, and the Scratch
// stays reusable for the next (live) call.
func TestLayerCanceled(t *testing.T) {
	g, a := stripes(8, 24, 3)
	csr := g.ToCSR()
	var s Scratch
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	if _, err := s.LayerCSR(ctx, csr, a); !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	// The scratch must still produce a correct layering afterwards.
	res, err := s.LayerCSR(context.Background(), csr, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(g, a); err != nil {
		t.Fatal(err)
	}
	want, err := Layer(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Label, want.Label) || !reflect.DeepEqual(res.Delta, want.Delta) {
		t.Fatal("post-abort layering diverges from fresh layering")
	}
}
