package layering

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

// randomPartitioned builds a connected random geometric graph with a
// striped-then-shuffled assignment — irregular boundaries in every
// partition without needing the spectral package.
func randomPartitioned(t testing.TB, n, p int, seed int64) (*graph.Graph, *partition.Assignment) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, _ := graph.RandomGeometric(n, 0.08, rng)
	graph.EnsureConnected(g)
	a := partition.New(g.Order(), p)
	for v := 0; v < g.Order(); v++ {
		a.Part[v] = int32(v * p / g.Order())
	}
	// Scatter a few vertices to roughen the boundaries.
	for i := 0; i < n/10; i++ {
		a.Part[rng.Intn(g.Order())] = int32(rng.Intn(p))
	}
	return g, a
}

// requireSameResult asserts two layerings are bit-identical across
// every exported dimension, pools included.
func requireSameResult(t *testing.T, tag string, got, want *Result, p int) {
	t.Helper()
	if !reflect.DeepEqual(got.Label, want.Label) {
		t.Fatalf("%s: Label diverges", tag)
	}
	if !reflect.DeepEqual(got.Level, want.Level) {
		t.Fatalf("%s: Level diverges", tag)
	}
	if !reflect.DeepEqual(got.Delta, want.Delta) {
		t.Fatalf("%s: Delta diverges", tag)
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			gp, wp := got.Pool(int32(i), int32(j)), want.Pool(int32(i), int32(j))
			if len(gp) != len(wp) {
				t.Fatalf("%s: pool(%d,%d) length %d, want %d", tag, i, j, len(gp), len(wp))
			}
			for k := range gp {
				if gp[k] != wp[k] {
					t.Fatalf("%s: pool(%d,%d)[%d] = %d, want %d", tag, i, j, k, gp[k], wp[k])
				}
			}
		}
	}
}

// TestParallelLayerEquivalence: the sharded kernel must be bit-identical
// to the sequential one for every worker count, with and without seeds,
// including duplicate seed lists.
func TestParallelLayerEquivalence(t *testing.T) {
	for _, cfg := range []struct {
		n, p int
		seed int64
	}{
		{60, 3, 1}, {200, 5, 2}, {500, 8, 3}, {700, 32, 4},
	} {
		g, a := randomPartitioned(t, cfg.n, cfg.p, cfg.seed)
		c := g.ToCSR()
		var seq Scratch
		want, err := seq.LayerCSR(context.Background(), c, a)
		if err != nil {
			t.Fatal(err)
		}
		// Boundary seeds (superset with duplicates) for the seeded runs.
		var seeds []graph.Vertex
		for v := 0; v < c.Order(); v++ {
			if !c.Live[v] {
				continue
			}
			for _, u := range c.Row(graph.Vertex(v)) {
				if a.Part[u] != a.Part[v] {
					seeds = append(seeds, graph.Vertex(v), graph.Vertex(v))
					break
				}
			}
		}
		for _, procs := range []int{1, 2, 3, 7, 16, runtime.GOMAXPROCS(0)} {
			par := Scratch{Procs: procs}
			got, err := par.LayerCSR(context.Background(), c, a)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "full scan", got, want, cfg.p)
			got, err = par.LayerSeeded(context.Background(), c, a, seeds)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "seeded", got, want, cfg.p)
			if err := got.Validate(g, a); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestParallelLayerScratchReuse drives one parallel scratch across
// growing graphs and repeated calls — arena reuse must never leak state
// between calls.
func TestParallelLayerScratchReuse(t *testing.T) {
	s := Scratch{Procs: 4}
	for _, cfg := range []struct {
		n, p int
		seed int64
	}{
		{100, 4, 5}, {400, 6, 6}, {100, 3, 7}, {400, 6, 6},
	} {
		g, a := randomPartitioned(t, cfg.n, cfg.p, cfg.seed)
		c := g.ToCSR()
		got, err := s.LayerCSR(context.Background(), c, a)
		if err != nil {
			t.Fatal(err)
		}
		var seq Scratch
		want, err := seq.LayerCSR(context.Background(), c, a)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "reuse", got, want, cfg.p)
	}
}
