package graph

// Unreached marks vertices not reached by a traversal.
const Unreached int32 = -1

// BFS computes unweighted shortest-path distances (hop counts) from source.
// Dead vertices and unreachable vertices get distance Unreached.
func (g *Graph) BFS(source Vertex) []int32 {
	return g.MultiSourceBFS([]Vertex{source})
}

// MultiSourceBFS computes, for every vertex, the hop distance to the
// nearest of the given sources. Distances are Unreached for dead or
// unreachable vertices. Dead sources are ignored.
func (g *Graph) MultiSourceBFS(sources []Vertex) []int32 {
	dist := make([]int32, g.Order())
	for i := range dist {
		dist[i] = Unreached
	}
	queue := make([]Vertex, 0, len(sources))
	for _, s := range sources {
		if g.Alive(s) && dist[s] == Unreached {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		d := dist[v] + 1
		for _, u := range g.adj[v] {
			if dist[u] == Unreached {
				dist[u] = d
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// NearestLabeled computes, for every vertex, the label of the nearest
// vertex among those with label[v] >= 0, using hop distance; ties are
// broken toward the label that reaches the vertex first in BFS order
// (deterministic for a given adjacency order). It returns the winning
// label per vertex (-1 where unreachable) and the hop distance.
//
// This is the primitive behind the paper's Step 1: assign each new vertex
// to the partition of the nearest old vertex.
func (g *Graph) NearestLabeled(label []int32) (winner []int32, dist []int32) {
	n := g.Order()
	winner = make([]int32, n)
	dist = make([]int32, n)
	queue := make([]Vertex, 0, n)
	for v := 0; v < n; v++ {
		dist[v] = Unreached
		winner[v] = -1
		if g.alive[v] && label[v] >= 0 {
			winner[v] = label[v]
			dist[v] = 0
			queue = append(queue, Vertex(v))
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		d := dist[v] + 1
		for _, u := range g.adj[v] {
			if dist[u] == Unreached {
				dist[u] = d
				winner[u] = winner[v]
				queue = append(queue, u)
			}
		}
	}
	return winner, dist
}

// PseudoPeripheral returns a vertex of approximately maximal eccentricity
// in the connected component of start, found by repeated BFS (the
// George–Liu heuristic). Useful for recursive graph bisection.
func (g *Graph) PseudoPeripheral(start Vertex) Vertex {
	if !g.Alive(start) {
		return start
	}
	cur := start
	best := int32(-1)
	for {
		dist := g.BFS(cur)
		far, fd := cur, int32(0)
		for v, d := range dist {
			if d > fd {
				far, fd = Vertex(v), d
			}
		}
		if fd <= best {
			return cur
		}
		best = fd
		cur = far
	}
}
