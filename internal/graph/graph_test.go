package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddVertexAndEdge(t *testing.T) {
	g := New(4)
	a := g.AddVertex(1)
	b := g.AddVertex(2)
	c := g.AddVertex(3)
	if g.NumVertices() != 3 || g.Order() != 3 {
		t.Fatalf("got %d vertices, order %d; want 3, 3", g.NumVertices(), g.Order())
	}
	if err := g.AddEdge(a, b, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c, 7); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("got %d edges, want 2", g.NumEdges())
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Fatal("edge {a,b} should exist in both directions")
	}
	if w, ok := g.EdgeWeight(b, c); !ok || w != 7 {
		t.Fatalf("edge weight {b,c} = %g,%v; want 7,true", w, ok)
	}
	if g.VertexWeight(c) != 3 {
		t.Fatalf("vertex weight c = %g, want 3", g.VertexWeight(c))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewWithVertices(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop should be rejected")
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range endpoint should be rejected")
	}
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0, 2); err == nil {
		t.Error("duplicate edge should be rejected")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := Complete(5)
	if err := g.RemoveEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 3) || g.HasEdge(3, 1) {
		t.Fatal("edge {1,3} should be gone")
	}
	if g.NumEdges() != 9 {
		t.Fatalf("got %d edges, want 9", g.NumEdges())
	}
	if err := g.RemoveEdge(1, 3); err == nil {
		t.Error("removing a missing edge should fail")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveVertex(t *testing.T) {
	g := Complete(5)
	if err := g.RemoveVertex(2); err != nil {
		t.Fatal(err)
	}
	if g.Alive(2) {
		t.Fatal("vertex 2 should be dead")
	}
	if g.NumVertices() != 4 {
		t.Fatalf("got %d live vertices, want 4", g.NumVertices())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("got %d edges, want 6", g.NumEdges())
	}
	if err := g.RemoveVertex(2); err == nil {
		t.Error("double removal should fail")
	}
	for _, v := range g.Vertices() {
		if v == 2 {
			t.Fatal("Vertices() should not list dead vertex")
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompact(t *testing.T) {
	g := Complete(6)
	if err := g.RemoveVertex(0); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveVertex(3); err != nil {
		t.Fatal(err)
	}
	c, oldToNew, newToOld := g.Compact()
	if c.Order() != 4 || c.NumVertices() != 4 {
		t.Fatalf("compact order %d, want 4", c.Order())
	}
	if c.NumEdges() != 6 { // K4
		t.Fatalf("compact edges %d, want 6", c.NumEdges())
	}
	if oldToNew[0] != -1 || oldToNew[3] != -1 {
		t.Fatal("dead slots should map to -1")
	}
	for nu, old := range newToOld {
		if oldToNew[old] != Vertex(nu) {
			t.Fatalf("mapping mismatch at %d", nu)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Grid(3, 3)
	c := g.Clone()
	if err := c.RemoveVertex(4); err != nil {
		t.Fatal(err)
	}
	if !g.Alive(4) {
		t.Fatal("mutating clone must not affect original")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(4, 5)
	if g.NumVertices() != 20 {
		t.Fatalf("vertices = %d, want 20", g.NumVertices())
	}
	// edges: 4*(5-1) horizontal + (4-1)*5 vertical = 16+15 = 31
	if g.NumEdges() != 31 {
		t.Fatalf("edges = %d, want 31", g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("grid should be connected")
	}
}

func TestTorusRegular(t *testing.T) {
	g := Torus(4, 4)
	for _, v := range g.Vertices() {
		if g.Degree(v) != 4 {
			t.Fatalf("torus degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBFSPath(t *testing.T) {
	g := Path(6)
	d := g.BFS(0)
	for i := 0; i < 6; i++ {
		if d[i] != int32(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], i)
		}
	}
}

func TestMultiSourceBFS(t *testing.T) {
	g := Path(7)
	d := g.MultiSourceBFS([]Vertex{0, 6})
	want := []int32{0, 1, 2, 3, 2, 1, 0}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], w)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := NewWithVertices(4)
	_ = g.AddEdge(0, 1, 1)
	d := g.BFS(0)
	if d[2] != Unreached || d[3] != Unreached {
		t.Fatal("isolated vertices should be Unreached")
	}
}

func TestNearestLabeled(t *testing.T) {
	// path 0-1-2-3-4; labels at ends.
	g := Path(5)
	label := []int32{10, -1, -1, -1, 20}
	win, dist := g.NearestLabeled(label)
	if win[1] != 10 || win[3] != 20 {
		t.Fatalf("winners = %v", win)
	}
	if dist[2] != 2 {
		t.Fatalf("dist[2] = %d, want 2", dist[2])
	}
	// vertex 2 is equidistant; must get one of the two labels
	if win[2] != 10 && win[2] != 20 {
		t.Fatalf("winner[2] = %d, want 10 or 20", win[2])
	}
}

func TestComponents(t *testing.T) {
	g := NewWithVertices(6)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(2, 3, 1)
	_ = g.AddEdge(3, 4, 1)
	comp, n := g.Components()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[3] != comp[4] {
		t.Fatalf("component labels wrong: %v", comp)
	}
	if comp[5] == comp[0] || comp[5] == comp[2] {
		t.Fatalf("vertex 5 should be its own component: %v", comp)
	}
}

func TestEnsureConnected(t *testing.T) {
	g := NewWithVertices(6)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(2, 3, 1)
	added := EnsureConnected(g)
	if added != 3 { // components {0,1},{2,3},{4},{5} -> 3 joins
		t.Fatalf("added = %d, want 3", added)
	}
	if !g.Connected() {
		t.Fatal("graph should be connected now")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Grid(3, 3)
	sub, oldToNew, newToOld := g.InducedSubgraph([]Vertex{0, 1, 3, 4})
	if sub.NumVertices() != 4 {
		t.Fatalf("sub vertices = %d, want 4", sub.NumVertices())
	}
	if sub.NumEdges() != 4 { // the 2x2 block
		t.Fatalf("sub edges = %d, want 4", sub.NumEdges())
	}
	for nu, old := range newToOld {
		if oldToNew[old] != Vertex(nu) {
			t.Fatal("mapping mismatch")
		}
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPseudoPeripheral(t *testing.T) {
	g := Path(10)
	p := g.PseudoPeripheral(5)
	if p != 0 && p != 9 {
		t.Fatalf("pseudo-peripheral of path = %d, want an endpoint", p)
	}
}

func TestCSRMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := RandomGNM(50, 120, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := g.ToCSR()
	if c.NumV != 50 || c.NumE != 120 {
		t.Fatalf("CSR counts %d,%d; want 50,120", c.NumV, c.NumE)
	}
	for v := 0; v < g.Order(); v++ {
		row := c.Row(Vertex(v))
		if len(row) != g.Degree(Vertex(v)) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i, u := range row {
			w, ok := g.EdgeWeight(Vertex(v), u)
			if !ok || w != c.RowWeights(Vertex(v))[i] {
				t.Fatalf("edge weight mismatch at %d->%d", v, u)
			}
		}
	}
}

func TestSortAdjacencyDeterminism(t *testing.T) {
	g := NewWithVertices(4)
	_ = g.AddEdge(0, 3, 1)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(0, 2, 1)
	g.SortAdjacency()
	nbrs := g.Neighbors(0)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("adjacency not sorted: %v", nbrs)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// randomMutatedGraph builds a graph by a random edit script, for property
// tests.
func randomMutatedGraph(seed int64, nOps int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewWithVertices(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if rng.Intn(2) == 0 {
				_ = g.AddEdge(Vertex(i), Vertex(j), 1)
			}
		}
	}
	for op := 0; op < nOps; op++ {
		switch rng.Intn(4) {
		case 0:
			g.AddVertex(1 + rng.Float64())
		case 1:
			if g.Order() >= 2 {
				u := Vertex(rng.Intn(g.Order()))
				v := Vertex(rng.Intn(g.Order()))
				if u != v && g.Alive(u) && g.Alive(v) && !g.HasEdge(u, v) {
					_ = g.AddEdge(u, v, rng.Float64()+0.1)
				}
			}
		case 2:
			vs := g.Vertices()
			if len(vs) > 0 {
				v := vs[rng.Intn(len(vs))]
				if g.Degree(v) > 0 {
					u := g.Neighbors(v)[rng.Intn(g.Degree(v))]
					_ = g.RemoveEdge(v, u)
				}
			}
		case 3:
			vs := g.Vertices()
			if len(vs) > 3 {
				_ = g.RemoveVertex(vs[rng.Intn(len(vs))])
			}
		}
	}
	return g
}

func TestPropertyMutationsPreserveInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := randomMutatedGraph(seed, 60)
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Degree-sum identity.
		sum := 0
		for _, v := range g.Vertices() {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCompactPreservesStructure(t *testing.T) {
	f := func(seed int64) bool {
		g := randomMutatedGraph(seed, 40)
		c, oldToNew, _ := g.Compact()
		if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
			return false
		}
		// Every live edge must map to an edge in the compacted graph.
		for _, v := range g.Vertices() {
			for _, u := range g.Neighbors(v) {
				if !c.HasEdge(oldToNew[v], oldToNew[u]) {
					return false
				}
			}
		}
		return c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBFSTriangleInequality(t *testing.T) {
	// BFS distances satisfy |d(u)-d(v)| <= 1 across every edge.
	f := func(seed int64) bool {
		g := randomMutatedGraph(seed, 30)
		vs := g.Vertices()
		if len(vs) == 0 {
			return true
		}
		d := g.BFS(vs[0])
		for _, v := range vs {
			if d[v] == Unreached {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if d[u] == Unreached {
					return false // neighbor of reached vertex must be reached
				}
				diff := d[u] - d[v]
				if diff < -1 || diff > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomGNMProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := RandomGNM(30, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 100 {
		t.Fatalf("edges = %d, want 100", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := RandomGNM(5, 100, rng); err == nil {
		t.Fatal("overfull G(n,m) should error")
	}
}

func TestRandomGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, pts := RandomGeometric(200, 0.12, rng)
	if len(pts) != 200 {
		t.Fatalf("points = %d, want 200", len(pts))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Spot-check: every edge respects the radius.
	for _, v := range g.Vertices() {
		for _, u := range g.Neighbors(v) {
			if Dist(pts[v], pts[u]) > 0.12+1e-12 {
				t.Fatalf("edge {%d,%d} exceeds radius", v, u)
			}
		}
	}
}

func TestTotalVertexWeight(t *testing.T) {
	g := New(3)
	g.AddVertex(1)
	g.AddVertex(2.5)
	v := g.AddVertex(4)
	if got := g.TotalVertexWeight(); got != 7.5 {
		t.Fatalf("total weight = %g, want 7.5", got)
	}
	_ = g.RemoveVertex(v)
	if got := g.TotalVertexWeight(); got != 3.5 {
		t.Fatalf("total weight after removal = %g, want 3.5", got)
	}
}

func TestPowerLawProperties(t *testing.T) {
	// Shape: n vertices, exactly m(m+1)/2 + (n-m-1)·m edges (clique seed
	// plus m per arrival), connected, heavy-tailed (the max degree far
	// exceeds the mean), and deterministic for a fixed seed.
	const n, m = 2000, 4
	g, err := PowerLaw(n, m, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != n {
		t.Fatalf("order %d, want %d", g.NumVertices(), n)
	}
	wantE := m*(m+1)/2 + (n-m-1)*m
	if g.NumEdges() != wantE {
		t.Fatalf("edges %d, want %d", g.NumEdges(), wantE)
	}
	if _, comps := g.Components(); comps != 1 {
		t.Fatalf("%d components, want 1", comps)
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(Vertex(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if mean := 2 * wantE / n; maxDeg < 6*mean {
		t.Fatalf("max degree %d not heavy-tailed (mean %d)", maxDeg, mean)
	}
	h, err := PowerLaw(n, m, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		gr, hr := g.Neighbors(Vertex(v)), h.Neighbors(Vertex(v))
		if len(gr) != len(hr) {
			t.Fatalf("vertex %d: degree differs between identical seeds", v)
		}
	}
	if _, err := PowerLaw(3, 4, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("PowerLaw(3, 4) accepted")
	}
}
