package graph

import "repro/internal/par"

// Shards divides the snapshot's vertex range [0, Order()) into at most
// workers contiguous ranges of near-equal arc count, appending to dst
// and returning the extended slice. Row pointers are the prefix sum of
// vertex degrees, so this is par.SplitByWeight over XAdj: the sharded
// kernels use it to hand each worker a vertex range carrying a fair
// share of the arc work even when degrees are skewed. The snapshot is
// only read; the result is a pure function of (snapshot, workers) and
// the call allocates nothing once dst has capacity.
func (c *CSR) Shards(dst []par.Range, workers int) []par.Range {
	return par.SplitByWeight(dst, c.XAdj, workers)
}
