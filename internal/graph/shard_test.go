package graph

import (
	"math/rand"
	"testing"
)

// TestCSRShardsCoverAndBalance checks the sharding helper on an
// irregular graph: shards are contiguous, cover every vertex slot, and
// carry near-equal arc counts.
func TestCSRShardsCoverAndBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, _ := RandomGeometric(400, 0.09, rng)
	EnsureConnected(g)
	c := g.ToCSR()
	for _, workers := range []int{1, 2, 3, 8, 16} {
		shards := c.Shards(nil, workers)
		pos := 0
		arcs := make([]int, len(shards))
		for i, sh := range shards {
			if sh.Lo != pos || sh.Hi < sh.Lo {
				t.Fatalf("workers=%d: shard %d = %+v does not continue at %d", workers, i, sh, pos)
			}
			pos = sh.Hi
			arcs[i] = int(c.XAdj[sh.Hi] - c.XAdj[sh.Lo])
		}
		if pos != c.Order() {
			t.Fatalf("workers=%d: shards cover [0,%d), want [0,%d)", workers, pos, c.Order())
		}
		total := int(c.XAdj[c.Order()])
		fair := total / len(shards)
		for i, a := range arcs {
			// Arc balance within a generous factor: one vertex's degree
			// of slack plus rounding.
			if a > 2*fair+64 {
				t.Fatalf("workers=%d: shard %d carries %d arcs, fair share %d", workers, i, a, fair)
			}
		}
	}
	// Determinism.
	a := c.Shards(nil, 7)
	b := c.Shards(nil, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shards is not deterministic")
		}
	}
}
