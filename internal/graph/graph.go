// Package graph provides the mutable, undirected, weighted graph that all
// partitioning code in this repository operates on.
//
// The representation is an adjacency list with parallel edge-weight lists.
// Vertices are dense int32 identifiers. Incremental updates — the heart of
// the incremental-partitioning problem — are supported directly: vertices
// and edges may be added or removed at any time. Removed vertices leave a
// tombstone (they stay addressable but report Alive() == false) so that
// existing vertex identifiers remain stable across edits; Compact produces
// a dense copy when stability is no longer needed.
package graph

import (
	"fmt"
	"sort"
)

// Vertex is a dense vertex identifier.
type Vertex = int32

// Graph is a mutable undirected graph with float64 vertex and edge weights.
// The zero value is an empty graph ready for use.
//
// Every undirected edge {u,v} is stored twice, once in each endpoint's
// adjacency list. Invariants (checked by Validate):
//   - adjacency is symmetric with matching weights,
//   - no self-loops and no parallel edges,
//   - dead vertices have empty adjacency.
//
// Every mutation advances an edit epoch and records the touched vertices
// in a bounded journal, letting long-lived consumers (the repartitioning
// engine) refresh derived state — CSR snapshots, partition-boundary sets —
// incrementally instead of rescanning the whole graph.
type Graph struct {
	adj   [][]Vertex  // adjacency lists
	ew    [][]float64 // edge weights, parallel to adj
	vw    []float64   // vertex weights
	alive []bool      // tombstone flags
	m     int         // number of live undirected edges
	dead  int         // number of dead vertices

	epoch        uint64   // advanced by every mutation
	journalV     []Vertex // touched vertices, parallel to journalE
	journalE     []uint64 // epoch at which each touch happened
	journalFloor uint64   // touches at epochs ≤ floor have been dropped
}

// maxJournal bounds the edit journal; once exceeded the journal is reset
// and TouchedSince reports inexact, forcing consumers to rescan. The bound
// keeps bulk loads (which touch every vertex many times) from hoarding
// memory for a journal nobody could use profitably.
const maxJournal = 1 << 14

// Epoch returns the current edit epoch. It advances on every mutation
// (vertex/edge insert or delete, weight update, adjacency reorder), so
// derived snapshots are stale exactly when the epoch has moved.
func (g *Graph) Epoch() uint64 { return g.epoch }

// touch advances the epoch and journals the given vertices as touched.
func (g *Graph) touch(vs ...Vertex) {
	g.epoch++
	if len(g.journalV)+len(vs) > maxJournal {
		g.journalV = g.journalV[:0]
		g.journalE = g.journalE[:0]
		g.journalFloor = g.epoch - 1
	}
	for _, v := range vs {
		g.journalV = append(g.journalV, v)
		g.journalE = append(g.journalE, g.epoch)
	}
}

// TouchedSince appends to buf the vertices touched by mutations after the
// given epoch and returns the extended slice. exact is false when the
// journal no longer reaches back that far (it is bounded); callers must
// then treat every vertex as potentially touched. Vertices may repeat.
func (g *Graph) TouchedSince(epoch uint64, buf []Vertex) (touched []Vertex, exact bool) {
	if epoch < g.journalFloor {
		return buf, false
	}
	// journalE is nondecreasing: binary-search the first entry past epoch
	// so retrieving a few recent touches costs O(log J + answer), not a
	// scan of the whole journal.
	lo := sort.Search(len(g.journalE), func(i int) bool { return g.journalE[i] > epoch })
	return append(buf, g.journalV[lo:]...), true
}

// New returns an empty graph with capacity hints for n vertices.
func New(n int) *Graph {
	return &Graph{
		adj:   make([][]Vertex, 0, n),
		ew:    make([][]float64, 0, n),
		vw:    make([]float64, 0, n),
		alive: make([]bool, 0, n),
	}
}

// NewWithVertices returns a graph with n live vertices of unit weight and
// no edges.
func NewWithVertices(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(1)
	}
	return g
}

// Order returns the total number of vertex slots, including dead ones.
// Valid vertex identifiers are in [0, Order()).
func (g *Graph) Order() int { return len(g.adj) }

// NumVertices returns the number of live vertices.
func (g *Graph) NumVertices() int { return len(g.adj) - g.dead }

// NumEdges returns the number of live undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// Alive reports whether v is a live vertex.
func (g *Graph) Alive(v Vertex) bool {
	return v >= 0 && int(v) < len(g.alive) && g.alive[v]
}

// AddVertex adds a new live vertex with the given weight and returns its
// identifier.
func (g *Graph) AddVertex(weight float64) Vertex {
	v := Vertex(len(g.adj))
	g.adj = append(g.adj, nil)
	g.ew = append(g.ew, nil)
	g.vw = append(g.vw, weight)
	g.alive = append(g.alive, true)
	g.touch(v)
	return v
}

// RemoveVertex deletes v and all its incident edges. Removing an already
// dead or out-of-range vertex is an error.
func (g *Graph) RemoveVertex(v Vertex) error {
	if !g.Alive(v) {
		return fmt.Errorf("graph: remove vertex %d: not a live vertex", v)
	}
	// Detach from all neighbors; the former neighbors are journaled too,
	// since their boundary status may change with the edges.
	g.touch(v)
	for _, u := range g.adj[v] {
		g.removeArc(u, v)
		g.m--
		g.touch(u)
	}
	g.adj[v] = nil
	g.ew[v] = nil
	g.alive[v] = false
	g.dead++
	return nil
}

// VertexWeight returns the weight of v.
func (g *Graph) VertexWeight(v Vertex) float64 { return g.vw[v] }

// SetVertexWeight updates the weight of v.
func (g *Graph) SetVertexWeight(v Vertex, w float64) {
	g.vw[v] = w
	g.touch(v)
}

// Degree returns the number of live neighbors of v.
func (g *Graph) Degree(v Vertex) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v. The returned slice is owned by
// the graph and must not be modified; it is invalidated by mutations.
func (g *Graph) Neighbors(v Vertex) []Vertex { return g.adj[v] }

// EdgeWeights returns the edge-weight list of v, parallel to Neighbors(v).
// The returned slice is owned by the graph and must not be modified.
func (g *Graph) EdgeWeights(v Vertex) []float64 { return g.ew[v] }

// HasEdge reports whether the undirected edge {u,v} exists.
func (g *Graph) HasEdge(u, v Vertex) bool {
	if !g.Alive(u) || !g.Alive(v) {
		return false
	}
	// Scan the shorter list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of edge {u,v} and whether it exists.
func (g *Graph) EdgeWeight(u, v Vertex) (float64, bool) {
	if !g.Alive(u) || !g.Alive(v) {
		return 0, false
	}
	for i, w := range g.adj[u] {
		if w == v {
			return g.ew[u][i], true
		}
	}
	return 0, false
}

// AddEdge inserts the undirected edge {u,v} with the given weight.
// Self-loops, dead endpoints and duplicate edges are errors.
func (g *Graph) AddEdge(u, v Vertex, weight float64) error {
	if u == v {
		return fmt.Errorf("graph: add edge: self-loop at %d", u)
	}
	if !g.Alive(u) || !g.Alive(v) {
		return fmt.Errorf("graph: add edge {%d,%d}: dead endpoint", u, v)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: add edge {%d,%d}: already present", u, v)
	}
	g.addEdgeRaw(u, v, weight)
	return nil
}

// AddEdgeUnchecked inserts the undirected edge {u,v} without the duplicate
// scan AddEdge performs, making bulk construction O(1) per edge instead of
// O(deg). The caller must guarantee u ≠ v, both endpoints are live, and
// the edge is not already present — Validate detects violations. Builders
// that generate each edge exactly once (grids, meshes, subgraph copies)
// use this path.
func (g *Graph) AddEdgeUnchecked(u, v Vertex, weight float64) {
	g.addEdgeRaw(u, v, weight)
}

// AddEdgeIfAbsent inserts {u,v} if it is not already present, reporting
// whether it inserted. Unlike the AddEdge error path it performs a single
// duplicate scan. Self-loops and dead endpoints are never inserted.
func (g *Graph) AddEdgeIfAbsent(u, v Vertex, weight float64) bool {
	if u == v || g.HasEdge(u, v) || !g.Alive(u) || !g.Alive(v) {
		return false
	}
	g.addEdgeRaw(u, v, weight)
	return true
}

func (g *Graph) addEdgeRaw(u, v Vertex, weight float64) {
	g.adj[u] = append(g.adj[u], v)
	g.ew[u] = append(g.ew[u], weight)
	g.adj[v] = append(g.adj[v], u)
	g.ew[v] = append(g.ew[v], weight)
	g.m++
	g.touch(u, v)
}

// RemoveEdge deletes the undirected edge {u,v}.
func (g *Graph) RemoveEdge(u, v Vertex) error {
	if !g.HasEdge(u, v) {
		return fmt.Errorf("graph: remove edge {%d,%d}: not present", u, v)
	}
	g.removeArc(u, v)
	g.removeArc(v, u)
	g.m--
	g.touch(u, v)
	return nil
}

// removeArc drops v from u's adjacency list (directed half of an edge).
func (g *Graph) removeArc(u, v Vertex) {
	a, w := g.adj[u], g.ew[u]
	for i, x := range a {
		if x == v {
			last := len(a) - 1
			a[i], w[i] = a[last], w[last]
			g.adj[u] = a[:last]
			g.ew[u] = w[:last]
			return
		}
	}
}

// Vertices returns the identifiers of all live vertices in increasing order.
// It allocates; hot loops should use ForEachVertex or iterate [0, Order())
// with Alive instead.
func (g *Graph) Vertices() []Vertex {
	out := make([]Vertex, 0, g.NumVertices())
	for v := range g.adj {
		if g.alive[v] {
			out = append(out, Vertex(v))
		}
	}
	return out
}

// ForEachVertex calls fn for every live vertex in increasing order without
// allocating. fn must not mutate the graph.
func (g *Graph) ForEachVertex(fn func(Vertex)) {
	for v, ok := range g.alive {
		if ok {
			fn(Vertex(v))
		}
	}
}

// TotalVertexWeight returns the sum of live vertex weights.
func (g *Graph) TotalVertexWeight() float64 {
	var s float64
	for v, ok := range g.alive {
		if ok {
			s += g.vw[v]
		}
	}
	return s
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:   make([][]Vertex, len(g.adj)),
		ew:    make([][]float64, len(g.ew)),
		vw:    append([]float64(nil), g.vw...),
		alive: append([]bool(nil), g.alive...),
		m:     g.m,
		dead:  g.dead,
		// The journal is not copied: mark it fully dropped so TouchedSince
		// on the clone never claims exact knowledge it does not have.
		epoch:        g.epoch,
		journalFloor: g.epoch,
	}
	for v := range g.adj {
		c.adj[v] = append([]Vertex(nil), g.adj[v]...)
		c.ew[v] = append([]float64(nil), g.ew[v]...)
	}
	return c
}

// Compact returns a dense copy with dead vertex slots removed, along with
// old→new and new→old identifier mappings. old→new is −1 for dead slots.
func (g *Graph) Compact() (c *Graph, oldToNew []Vertex, newToOld []Vertex) {
	oldToNew = make([]Vertex, len(g.adj))
	newToOld = make([]Vertex, 0, g.NumVertices())
	for v := range g.adj {
		if g.alive[v] {
			oldToNew[v] = Vertex(len(newToOld))
			newToOld = append(newToOld, Vertex(v))
		} else {
			oldToNew[v] = -1
		}
	}
	c = New(len(newToOld))
	for _, old := range newToOld {
		c.AddVertex(g.vw[old])
	}
	for _, old := range newToOld {
		nu := oldToNew[old]
		for i, u := range g.adj[old] {
			nv := oldToNew[u]
			if nu < nv { // add each undirected edge once
				// Unchecked: source edges are unique and endpoints live.
				c.AddEdgeUnchecked(nu, nv, g.ew[old][i])
			}
		}
	}
	return c, oldToNew, newToOld
}

// adjSorter sorts one adjacency list in place, swapping the parallel
// weight list alongside. A single instance is reused across vertices so
// the sort.Interface conversion costs one allocation per SortAdjacency
// call, not per vertex.
type adjSorter struct {
	a []Vertex
	w []float64
}

func (s *adjSorter) Len() int           { return len(s.a) }
func (s *adjSorter) Less(i, j int) bool { return s.a[i] < s.a[j] }
func (s *adjSorter) Swap(i, j int) {
	s.a[i], s.a[j] = s.a[j], s.a[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// SortAdjacency sorts every adjacency list (and its weights) in place by
// neighbor identifier, making iteration order deterministic regardless of
// edit order. Reordering invalidates CSR snapshots, so the epoch advances.
func (g *Graph) SortAdjacency() {
	var s adjSorter
	for v := range g.adj {
		s.a, s.w = g.adj[v], g.ew[v]
		sort.Sort(&s)
	}
	// Membership is untouched but every row layout changed without any
	// vertex being journaled: advance the epoch and drop the journal to
	// the new floor, so journal consumers (the partial CSR patch) see
	// the gap as inexact and rebuild rather than trusting stale rows.
	g.epoch++
	g.journalV = g.journalV[:0]
	g.journalE = g.journalE[:0]
	g.journalFloor = g.epoch
}

// Validate checks structural invariants, returning the first violation.
func (g *Graph) Validate() error {
	count := 0
	for v := range g.adj {
		if !g.alive[v] {
			if len(g.adj[v]) != 0 {
				return fmt.Errorf("graph: dead vertex %d has %d neighbors", v, len(g.adj[v]))
			}
			continue
		}
		seen := make(map[Vertex]bool, len(g.adj[v]))
		for i, u := range g.adj[v] {
			if u == Vertex(v) {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if !g.Alive(u) {
				return fmt.Errorf("graph: edge {%d,%d} to dead vertex", v, u)
			}
			if seen[u] {
				return fmt.Errorf("graph: parallel edge {%d,%d}", v, u)
			}
			seen[u] = true
			w, ok := g.EdgeWeight(u, Vertex(v))
			if !ok {
				return fmt.Errorf("graph: asymmetric edge {%d,%d}", v, u)
			}
			if w != g.ew[v][i] {
				return fmt.Errorf("graph: weight mismatch on edge {%d,%d}: %g vs %g", v, u, g.ew[v][i], w)
			}
			count++
		}
	}
	if count != 2*g.m {
		return fmt.Errorf("graph: edge count mismatch: counted %d arcs, expected %d", count, 2*g.m)
	}
	return nil
}
