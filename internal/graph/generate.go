package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Grid returns the rows×cols 4-neighbor grid graph with unit weights.
// Vertex (r,c) has identifier r*cols+c.
func Grid(rows, cols int) *Graph {
	g := NewWithVertices(rows * cols)
	id := func(r, c int) Vertex { return Vertex(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdgeUnchecked(id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				g.AddEdgeUnchecked(id(r, c), id(r+1, c), 1)
			}
		}
	}
	return g
}

// Torus returns the rows×cols grid with wraparound edges.
func Torus(rows, cols int) *Graph {
	g := NewWithVertices(rows * cols)
	id := func(r, c int) Vertex { return Vertex((r%rows)*cols + c%cols) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if cols > 2 || c+1 < cols {
				g.AddEdgeIfAbsent(id(r, c), id(r, c+1), 1)
			}
			if rows > 2 || r+1 < rows {
				g.AddEdgeIfAbsent(id(r, c), id(r+1, c), 1)
			}
		}
	}
	return g
}

// RandomGNM returns a uniform random simple graph with n vertices and m
// edges (Erdős–Rényi G(n,m)), using rng for reproducibility.
func RandomGNM(n, m int, rng *rand.Rand) (*Graph, error) {
	max := n * (n - 1) / 2
	if m > max {
		return nil, fmt.Errorf("graph: G(n,m) with n=%d cannot have %d edges (max %d)", n, m, max)
	}
	g := NewWithVertices(n)
	for g.NumEdges() < m {
		u := Vertex(rng.Intn(n))
		v := Vertex(rng.Intn(n))
		g.AddEdgeIfAbsent(u, v, 1)
	}
	return g, nil
}

// RandomGeometric places n points uniformly in the unit square and
// connects pairs within distance radius. It returns the graph and the
// coordinates (useful for coordinate-bisection baselines).
func RandomGeometric(n int, radius float64, rng *rand.Rand) (*Graph, [][2]float64) {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	g := NewWithVertices(n)
	// Cell-bucketed neighbor search keeps this O(n) for fixed density.
	cell := radius
	if cell <= 0 {
		cell = 1e-9
	}
	buckets := map[[2]int][]Vertex{}
	key := func(p [2]float64) [2]int {
		return [2]int{int(p[0] / cell), int(p[1] / cell)}
	}
	for i, p := range pts {
		buckets[key(p)] = append(buckets[key(p)], Vertex(i))
	}
	r2 := radius * radius
	for i, p := range pts {
		k := key(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[[2]int{k[0] + dx, k[1] + dy}] {
					if int(j) <= i {
						continue
					}
					q := pts[j]
					ddx, ddy := p[0]-q[0], p[1]-q[1]
					if ddx*ddx+ddy*ddy <= r2 {
						// Each unordered pair is enumerated exactly once.
						g.AddEdgeUnchecked(Vertex(i), j, 1)
					}
				}
			}
		}
	}
	return g, pts
}

// Path returns the n-vertex path graph.
func Path(n int) *Graph {
	g := NewWithVertices(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdgeUnchecked(Vertex(i), Vertex(i+1), 1)
	}
	return g
}

// PowerLaw returns an n-vertex Barabási–Albert preferential-attachment
// graph: each new vertex attaches m unit-weight edges to existing
// vertices chosen proportionally to their current degree (via the
// standard repeated-endpoint trick), yielding the heavy-tailed degree
// distribution of web/social workloads — the adversarial counterpart to
// the bounded-degree meshes for multilevel coarsening. The graph is
// connected and deterministic for a fixed rng state.
func PowerLaw(n, m int, rng *rand.Rand) (*Graph, error) {
	if m < 1 || n < m+1 {
		return nil, fmt.Errorf("graph: PowerLaw(n=%d, m=%d) needs m ≥ 1 and n > m", n, m)
	}
	g := NewWithVertices(n)
	// endpoints lists every edge endpoint so far; sampling it uniformly
	// is degree-proportional sampling.
	endpoints := make([]Vertex, 0, 2*m*n)
	// Seed: an (m+1)-clique so the first preferential round has degrees.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.AddEdgeUnchecked(Vertex(i), Vertex(j), 1)
			endpoints = append(endpoints, Vertex(i), Vertex(j))
		}
	}
	for v := m + 1; v < n; v++ {
		added := 0
		for attempts := 0; added < m && attempts < 32*m; attempts++ {
			u := endpoints[rng.Intn(len(endpoints))]
			if int(u) == v || g.HasEdge(Vertex(v), u) {
				continue
			}
			g.AddEdgeUnchecked(Vertex(v), u, 1)
			endpoints = append(endpoints, Vertex(v), u)
			added++
		}
		for ; added < m; added++ {
			// Dense corner case: fall back to the lowest-id non-neighbor.
			for u := 0; u < v; u++ {
				if !g.HasEdge(Vertex(v), Vertex(u)) {
					g.AddEdgeUnchecked(Vertex(v), Vertex(u), 1)
					endpoints = append(endpoints, Vertex(v), Vertex(u))
					break
				}
			}
		}
	}
	return g, nil
}

// Complete returns the n-vertex complete graph.
func Complete(n int) *Graph {
	g := NewWithVertices(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdgeUnchecked(Vertex(i), Vertex(j), 1)
		}
	}
	return g
}

// EnsureConnected adds minimum-length unit-weight edges joining the
// components of g (nearest pair by BFS is overkill; we join component
// representatives in id order), returning the number of edges added.
// It is used by mesh/workload generators that require connectivity.
func EnsureConnected(g *Graph) int {
	comp, n := g.Components()
	if n <= 1 {
		return 0
	}
	rep := make([]Vertex, n)
	for i := range rep {
		rep[i] = -1
	}
	for v := 0; v < g.Order(); v++ {
		if c := comp[v]; c >= 0 && rep[c] < 0 {
			rep[c] = Vertex(v)
		}
	}
	added := 0
	for c := 1; c < n; c++ {
		// Representatives live in distinct components: no duplicate risk.
		g.AddEdgeUnchecked(rep[0], rep[c], 1)
		added++
	}
	return added
}

// Dist2 returns squared Euclidean distance between two points.
func Dist2(a, b [2]float64) float64 {
	dx, dy := a[0]-b[0], a[1]-b[1]
	return dx*dx + dy*dy
}

// Dist returns Euclidean distance between two points.
func Dist(a, b [2]float64) float64 { return math.Sqrt(Dist2(a, b)) }
