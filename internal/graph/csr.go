package graph

import "slices"

// CSR is a compressed-sparse-row snapshot of a graph, the preferred form
// for read-only traversal-heavy kernels (spectral methods, layering).
// Dead vertices keep their slots with empty rows so vertex identifiers
// agree with the source graph.
//
// # Slotted layout
//
// Rows live in per-vertex slots with a little headroom: slot v occupies
// Adj[XAdj[v]:XAdj[v+1]], the live row is the prefix Adj[XAdj[v]:End[v]],
// and the tail of the slot is slack (filled with the sentinel -1 / weight
// 0, never read). The headroom is what makes the journal-driven partial
// patch (RefreshCSR) useful: a touched vertex whose new degree still fits
// its slot is rewritten in place, so refreshing after a small edit costs
// work proportional to the touched rows — not to the whole graph. XAdj
// stays monotone (slack included), so prefix-sum consumers (Shards)
// keep working unchanged.
type CSR struct {
	XAdj []int32   // slot-start offsets, len Order()+1; XAdj[Order()] = len(Adj)
	End  []int32   // row-end offsets, len Order(); XAdj[v] ≤ End[v] ≤ XAdj[v+1]
	Adj  []Vertex  // concatenated adjacency rows plus slack
	EW   []float64 // edge weights parallel to Adj
	VW   []float64 // vertex weights
	Live []bool    // liveness flags
	NumV int       // live vertex count
	NumE int       // undirected edge count

	// Patch bookkeeping: the graph that built this snapshot and the edit
	// epoch it reflects. RefreshCSR patches only when both still match up.
	// The journal-read scratch lives on the snapshot — not on the shared
	// Graph — so engines that each own a snapshot of one quiescent graph
	// can refresh concurrently (ToCSRInto stays read-only on the graph).
	owner     *Graph
	snapEpoch uint64
	patchBuf  []Vertex

	// Adaptive headroom bookkeeping (reset at every rebuild): the largest
	// touched set a successful patch processed, whether a patch was ever
	// abandoned because a row outgrew its slot, and whether the current
	// layout was packed with lean headroom. The policy is a pure function
	// of the snapshot's own refresh history, so identically edited graphs
	// still produce identical layouts at every worker count.
	patchPeak int
	grewSlot  bool
	lean      bool
}

// slackSentinel fills unused slot tails so snapshot memory stays
// deterministic (two identically edited graphs produce byte-identical
// snapshot arrays, slack included).
const slackSentinel Vertex = -1

// csrPad returns the headroom arcs reserved after a row of degree d when
// its slot is (re)built: enough for a few incident-edge insertions before
// the slot overflows and forces a compacting rebuild, small enough that
// total slack stays a modest constant factor of the arc array.
func csrPad(d int) int { return 2 + d/4 }

// csrPadLean is the reduced headroom used at large orders when the
// observed churn is low: the ~25–40% arc overhead of csrPad is pure tax
// on cold traversals of paper-scale graphs, while a quiet refresh
// history shows the slack is rarely consumed.
func csrPadLean(d int) int { return 1 + d/8 }

// csrLeanOrder is the order at and above which a rebuild considers the
// lean layout; csrLeanChurnDiv scales the churn evidence (a snapshot
// whose largest patch touched more than order/csrLeanChurnDiv rows keeps
// the full headroom).
const (
	csrLeanOrder    = 1 << 17
	csrLeanChurnDiv = 64
)

// pad returns the slot headroom for degree d under the snapshot's
// current layout policy.
func (c *CSR) pad(d int) int {
	if c.lean {
		return csrPadLean(d)
	}
	return csrPad(d)
}

// csrMaxChurn caps how many distinct journaled vertices a partial patch
// will process for an order-n snapshot; beyond it a full rebuild is
// cheaper (and re-establishes every slot's headroom).
func csrMaxChurn(n int) int { return 32 + n/4 }

// ToCSR builds a CSR snapshot. Rows follow the graph's current adjacency
// order; call SortAdjacency first for fully deterministic layouts.
func (g *Graph) ToCSR() *CSR {
	return g.ToCSRInto(nil)
}

// ToCSRInto refreshes c to a snapshot of the graph's current state,
// reusing c's arrays when their capacity suffices; c == nil allocates a
// fresh snapshot. It returns the refreshed snapshot (always c when c is
// non-nil). Long-lived consumers refresh in place each time the graph's
// epoch moves and pay no steady-state allocation; when the edit journal
// still covers the gap since c was last refreshed, only the touched
// rows are rewritten (see RefreshCSR).
func (g *Graph) ToCSRInto(c *CSR) *CSR {
	c, _ = g.RefreshCSR(c)
	return c
}

// RefreshCSR is ToCSRInto with the refresh strategy reported: patched is
// true when the snapshot was brought up to date by the journal-driven
// partial patch (rewriting only the rows of vertices touched since the
// snapshot's epoch), false when a full rebuild ran. A full rebuild
// happens when c is nil or was built from another graph, when the
// bounded journal no longer reaches back to c's epoch, when a touched
// row outgrew its slot headroom (the rebuild re-packs every slot with
// fresh headroom — the compaction step of the slack scheme), or when the
// touched set exceeds the churn threshold and patching would cost more
// than rebuilding. Either way the resulting snapshot's logical content
// (every row, weight, liveness flag and count) is identical; only the
// slack layout may differ.
func (g *Graph) RefreshCSR(c *CSR) (snapshot *CSR, patched bool) {
	if c == nil || c.owner != g || c.snapEpoch > g.epoch {
		return g.buildCSR(c), false
	}
	if c.snapEpoch == g.epoch {
		return c, true // already current: the zero-cost patch
	}
	touched, exact := g.TouchedSince(c.snapEpoch, c.patchBuf[:0])
	c.patchBuf = touched[:0]
	if !exact {
		return g.buildCSR(c), false
	}
	// Dedup in place: the journal records every touch, the patch wants
	// each row once. The sort also groups brand-new vertices (ids past
	// the old snapshot's order) at the tail.
	slices.Sort(touched)
	touched = slices.Compact(touched)
	oldN := c.Order()
	if len(touched) > csrMaxChurn(g.Order()) {
		return g.buildCSR(c), false
	}
	// Pass 1: every pre-existing touched row must fit its slot, or the
	// patch is abandoned (in favor of a compacting rebuild) before
	// mutating anything, keeping the rewrite pass below branch-free.
	for _, v := range touched {
		if int(v) >= oldN {
			break // sorted: only new vertices follow
		}
		if int32(len(g.adj[v])) > c.XAdj[v+1]-c.XAdj[v] {
			// A row outgrew its headroom: remember that before the
			// compacting rebuild so the next layout keeps full pads.
			c.grewSlot = true
			return g.buildCSR(c), false
		}
	}
	if len(touched) > c.patchPeak {
		c.patchPeak = len(touched)
	}
	// Pass 2: rewrite touched rows in place.
	for _, v := range touched {
		if int(v) >= oldN {
			break
		}
		start := c.XAdj[v]
		row := g.adj[v]
		n := copy(c.Adj[start:c.XAdj[v+1]], row)
		copy(c.EW[start:], g.ew[v][:n])
		end := start + int32(n)
		for i := end; i < c.XAdj[v+1]; i++ {
			c.Adj[i] = slackSentinel
			c.EW[i] = 0
		}
		c.End[v] = end
		c.VW[v] = g.vw[v]
		c.Live[v] = g.alive[v]
	}
	// Pass 3: append slots for vertices added since the snapshot. Every
	// id in [oldN, Order()) was journaled by AddVertex, so iterating the
	// id range directly is exact.
	if n := g.Order(); n > oldN {
		c.XAdj = c.XAdj[:len(c.XAdj)-1]
		for v := oldN; v < n; v++ {
			c.appendSlot(g, Vertex(v))
		}
		c.XAdj = append(c.XAdj, int32(len(c.Adj)))
	}
	c.NumV = g.NumVertices()
	c.NumE = g.m
	c.snapEpoch = g.epoch
	return c, true
}

// appendSlot appends vertex v's row (plus headroom) as the next slot.
// The caller has truncated the final XAdj entry and restores it after.
func (c *CSR) appendSlot(g *Graph, v Vertex) {
	c.XAdj = append(c.XAdj, int32(len(c.Adj)))
	c.Adj = append(c.Adj, g.adj[v]...)
	c.EW = append(c.EW, g.ew[v]...)
	c.End = append(c.End, int32(len(c.Adj)))
	if g.alive[v] {
		for pad := c.pad(len(g.adj[v])); pad > 0; pad-- {
			c.Adj = append(c.Adj, slackSentinel)
			c.EW = append(c.EW, 0)
		}
	}
	c.VW = append(c.VW, g.vw[v])
	c.Live = append(c.Live, g.alive[v])
}

// RebuildCSRInto is ToCSRInto with the journal-driven patch bypassed:
// it always performs the full rebuild. The engine's WithFullRefresh
// escape hatch and the patch-equivalence tests use it as the oracle.
func (g *Graph) RebuildCSRInto(c *CSR) *CSR { return g.buildCSR(c) }

// buildCSR is the full rebuild: every slot re-packed in vertex order
// with fresh headroom (dead vertices get none — they can never grow).
// The headroom policy is adaptive: at paper-scale orders a snapshot
// whose refresh history shows low churn — no slot ever overflowed, the
// largest patch touched a small fraction of the rows — is packed with
// lean pads, reclaiming most of the slack tax on cold traversals; any
// overflow or heavy churn since the last rebuild restores full pads.
func (g *Graph) buildCSR(c *CSR) *CSR {
	n := g.Order()
	if c == nil {
		c = &CSR{
			XAdj: make([]int32, 0, n+1),
			End:  make([]int32, 0, n),
			Adj:  make([]Vertex, 0, 2*g.m+csrPad(0)*n),
			EW:   make([]float64, 0, 2*g.m+csrPad(0)*n),
			VW:   make([]float64, 0, n),
			Live: make([]bool, 0, n),
		}
	}
	c.lean = n >= csrLeanOrder && !c.grewSlot && c.patchPeak*csrLeanChurnDiv <= n
	c.patchPeak = 0
	c.grewSlot = false
	c.XAdj = c.XAdj[:0]
	c.End = c.End[:0]
	c.Adj = c.Adj[:0]
	c.EW = c.EW[:0]
	c.VW = c.VW[:0]
	c.Live = c.Live[:0]
	c.NumV = g.NumVertices()
	c.NumE = g.m
	for v := 0; v < n; v++ {
		c.appendSlot(g, Vertex(v))
	}
	c.XAdj = append(c.XAdj, int32(len(c.Adj)))
	c.owner = g
	c.snapEpoch = g.epoch
	return c
}

// Order returns the number of vertex slots (including dead ones).
func (c *CSR) Order() int { return len(c.XAdj) - 1 }

// Row returns the neighbor slice of v.
func (c *CSR) Row(v Vertex) []Vertex { return c.Adj[c.XAdj[v]:c.End[v]] }

// RowWeights returns the edge-weight slice of v, parallel to Row(v).
func (c *CSR) RowWeights(v Vertex) []float64 { return c.EW[c.XAdj[v]:c.End[v]] }

// Degree returns the degree of v.
func (c *CSR) Degree(v Vertex) int { return int(c.End[v] - c.XAdj[v]) }

// WeightedDegree returns the sum of edge weights incident to v.
func (c *CSR) WeightedDegree(v Vertex) float64 {
	var s float64
	for _, w := range c.RowWeights(v) {
		s += w
	}
	return s
}
