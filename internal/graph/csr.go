package graph

// CSR is an immutable compressed-sparse-row snapshot of a graph, the
// preferred form for read-only traversal-heavy kernels (spectral methods,
// layering). Dead vertices keep their slots with empty rows so vertex
// identifiers agree with the source graph.
type CSR struct {
	XAdj []int32   // row pointers, len Order()+1
	Adj  []Vertex  // concatenated adjacency lists
	EW   []float64 // edge weights parallel to Adj
	VW   []float64 // vertex weights
	Live []bool    // liveness flags
	NumV int       // live vertex count
	NumE int       // undirected edge count
}

// ToCSR builds a CSR snapshot. Rows follow the graph's current adjacency
// order; call SortAdjacency first for fully deterministic layouts.
func (g *Graph) ToCSR() *CSR {
	n := g.Order()
	c := &CSR{
		XAdj: make([]int32, n+1),
		Adj:  make([]Vertex, 0, 2*g.m),
		EW:   make([]float64, 0, 2*g.m),
		VW:   append([]float64(nil), g.vw...),
		Live: append([]bool(nil), g.alive...),
		NumV: g.NumVertices(),
		NumE: g.m,
	}
	for v := 0; v < n; v++ {
		c.XAdj[v] = int32(len(c.Adj))
		c.Adj = append(c.Adj, g.adj[v]...)
		c.EW = append(c.EW, g.ew[v]...)
	}
	c.XAdj[n] = int32(len(c.Adj))
	return c
}

// Order returns the number of vertex slots (including dead ones).
func (c *CSR) Order() int { return len(c.XAdj) - 1 }

// Row returns the neighbor slice of v.
func (c *CSR) Row(v Vertex) []Vertex { return c.Adj[c.XAdj[v]:c.XAdj[v+1]] }

// RowWeights returns the edge-weight slice of v, parallel to Row(v).
func (c *CSR) RowWeights(v Vertex) []float64 { return c.EW[c.XAdj[v]:c.XAdj[v+1]] }

// Degree returns the degree of v.
func (c *CSR) Degree(v Vertex) int { return int(c.XAdj[v+1] - c.XAdj[v]) }

// WeightedDegree returns the sum of edge weights incident to v.
func (c *CSR) WeightedDegree(v Vertex) float64 {
	var s float64
	for _, w := range c.RowWeights(v) {
		s += w
	}
	return s
}
