package graph

// CSR is an immutable compressed-sparse-row snapshot of a graph, the
// preferred form for read-only traversal-heavy kernels (spectral methods,
// layering). Dead vertices keep their slots with empty rows so vertex
// identifiers agree with the source graph.
type CSR struct {
	XAdj []int32   // row pointers, len Order()+1
	Adj  []Vertex  // concatenated adjacency lists
	EW   []float64 // edge weights parallel to Adj
	VW   []float64 // vertex weights
	Live []bool    // liveness flags
	NumV int       // live vertex count
	NumE int       // undirected edge count
}

// ToCSR builds a CSR snapshot. Rows follow the graph's current adjacency
// order; call SortAdjacency first for fully deterministic layouts.
func (g *Graph) ToCSR() *CSR {
	return g.ToCSRInto(nil)
}

// ToCSRInto refreshes c to a snapshot of the graph's current state,
// reusing c's arrays when their capacity suffices; c == nil allocates a
// fresh snapshot. It returns the refreshed snapshot (always c when c is
// non-nil). Long-lived consumers refresh in place each time the graph's
// epoch moves and pay no steady-state allocation.
func (g *Graph) ToCSRInto(c *CSR) *CSR {
	n := g.Order()
	if c == nil {
		c = &CSR{
			XAdj: make([]int32, 0, n+1),
			Adj:  make([]Vertex, 0, 2*g.m),
			EW:   make([]float64, 0, 2*g.m),
			VW:   make([]float64, 0, n),
			Live: make([]bool, 0, n),
		}
	}
	c.XAdj = c.XAdj[:0]
	c.Adj = c.Adj[:0]
	c.EW = c.EW[:0]
	c.VW = append(c.VW[:0], g.vw...)
	c.Live = append(c.Live[:0], g.alive...)
	c.NumV = g.NumVertices()
	c.NumE = g.m
	for v := 0; v < n; v++ {
		c.XAdj = append(c.XAdj, int32(len(c.Adj)))
		c.Adj = append(c.Adj, g.adj[v]...)
		c.EW = append(c.EW, g.ew[v]...)
	}
	c.XAdj = append(c.XAdj, int32(len(c.Adj)))
	return c
}

// Order returns the number of vertex slots (including dead ones).
func (c *CSR) Order() int { return len(c.XAdj) - 1 }

// Row returns the neighbor slice of v.
func (c *CSR) Row(v Vertex) []Vertex { return c.Adj[c.XAdj[v]:c.XAdj[v+1]] }

// RowWeights returns the edge-weight slice of v, parallel to Row(v).
func (c *CSR) RowWeights(v Vertex) []float64 { return c.EW[c.XAdj[v]:c.XAdj[v+1]] }

// Degree returns the degree of v.
func (c *CSR) Degree(v Vertex) int { return int(c.XAdj[v+1] - c.XAdj[v]) }

// WeightedDegree returns the sum of edge weights incident to v.
func (c *CSR) WeightedDegree(v Vertex) float64 {
	var s float64
	for _, w := range c.RowWeights(v) {
		s += w
	}
	return s
}
