package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// sameSnapshot compares the logical content of two snapshots: every row,
// weight, liveness flag and count must agree. Slack layout is allowed to
// differ (a patched snapshot keeps its old slot headroom).
func sameSnapshot(want, got *CSR) error {
	if want.Order() != got.Order() {
		return fmt.Errorf("order %d vs %d", got.Order(), want.Order())
	}
	if want.NumV != got.NumV || want.NumE != got.NumE {
		return fmt.Errorf("counts (%d,%d) vs (%d,%d)", got.NumV, got.NumE, want.NumV, want.NumE)
	}
	for v := 0; v < want.Order(); v++ {
		if want.Live[v] != got.Live[v] {
			return fmt.Errorf("vertex %d: live %v vs %v", v, got.Live[v], want.Live[v])
		}
		if want.VW[v] != got.VW[v] {
			return fmt.Errorf("vertex %d: weight %g vs %g", v, got.VW[v], want.VW[v])
		}
		wr, gr := want.Row(Vertex(v)), got.Row(Vertex(v))
		if len(wr) != len(gr) {
			return fmt.Errorf("vertex %d: degree %d vs %d", v, len(gr), len(wr))
		}
		ww, gw := want.RowWeights(Vertex(v)), got.RowWeights(Vertex(v))
		for i := range wr {
			if wr[i] != gr[i] || ww[i] != gw[i] {
				return fmt.Errorf("vertex %d arc %d: (%d,%g) vs (%d,%g)", v, i, gr[i], gw[i], wr[i], ww[i])
			}
		}
	}
	return nil
}

// checkSlots verifies the slotted-layout invariants: XAdj monotone,
// every row inside its slot, slack filled with the sentinel.
func checkSlots(t *testing.T, c *CSR) {
	t.Helper()
	n := c.Order()
	if len(c.End) != n {
		t.Fatalf("End has %d entries, want %d", len(c.End), n)
	}
	if int(c.XAdj[n]) != len(c.Adj) || len(c.Adj) != len(c.EW) {
		t.Fatalf("array lengths inconsistent: XAdj[n]=%d len(Adj)=%d len(EW)=%d", c.XAdj[n], len(c.Adj), len(c.EW))
	}
	for v := 0; v < n; v++ {
		if c.XAdj[v] > c.End[v] || c.End[v] > c.XAdj[v+1] {
			t.Fatalf("vertex %d: slot [%d,%d) does not contain row end %d", v, c.XAdj[v], c.XAdj[v+1], c.End[v])
		}
		for i := c.End[v]; i < c.XAdj[v+1]; i++ {
			if c.Adj[i] != slackSentinel || c.EW[i] != 0 {
				t.Fatalf("vertex %d: slack slot %d holds (%d,%g), want sentinel", v, i, c.Adj[i], c.EW[i])
			}
		}
	}
}

// randomGraphEdit applies one random structural edit (no assignment
// involved — this is the graph-layer mirror of the engine's randomEdit).
func randomGraphEdit(g *Graph, rng *rand.Rand) {
	switch rng.Intn(6) {
	case 0: // add a vertex hooked to an existing one
		v := g.AddVertex(1 + rng.Float64())
		for tries := 0; tries < 10; tries++ {
			u := Vertex(rng.Intn(g.Order()))
			if g.Alive(u) && u != v {
				_ = g.AddEdge(v, u, 1+rng.Float64())
				return
			}
		}
	case 1, 2: // add an edge
		u := Vertex(rng.Intn(g.Order()))
		v := Vertex(rng.Intn(g.Order()))
		g.AddEdgeIfAbsent(u, v, 1+rng.Float64())
	case 3: // remove an edge
		u := Vertex(rng.Intn(g.Order()))
		if g.Alive(u) && g.Degree(u) > 1 {
			v := g.Neighbors(u)[rng.Intn(g.Degree(u))]
			_ = g.RemoveEdge(u, v)
		}
	case 4: // remove a vertex
		v := Vertex(rng.Intn(g.Order()))
		if g.Alive(v) && g.NumVertices() > 8 {
			_ = g.RemoveVertex(v)
		}
	default: // reweight a vertex
		v := Vertex(rng.Intn(g.Order()))
		if g.Alive(v) {
			g.SetVertexWeight(v, 1+rng.Float64())
		}
	}
}

// TestRefreshCSRPatchEquivalence drives a long-lived snapshot through
// random edit bursts and checks it against a fresh rebuild after each.
func TestRefreshCSRPatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := Grid(12, 12)
	c := g.ToCSR()
	patchCount := 0
	for iter := 0; iter < 300; iter++ {
		for k := 0; k <= rng.Intn(4); k++ {
			randomGraphEdit(g, rng)
		}
		var patched bool
		c, patched = g.RefreshCSR(c)
		if patched {
			patchCount++
		}
		if err := sameSnapshot(g.buildCSR(nil), c); err != nil {
			t.Fatalf("iter %d (patched=%v): %v", iter, patched, err)
		}
		checkSlots(t, c)
	}
	if patchCount == 0 {
		t.Fatal("no refresh ever took the patch path; the test exercises nothing")
	}
}

// TestRefreshCSRSortAdjacency: reordering rows without journaling any
// vertex must not fool the patch into keeping stale rows.
func TestRefreshCSRSortAdjacency(t *testing.T) {
	g := NewWithVertices(4)
	_ = g.AddEdge(0, 3, 3)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(0, 2, 2)
	c := g.ToCSR()
	g.SortAdjacency()
	c, patched := g.RefreshCSR(c)
	if patched {
		t.Fatal("patch claimed to cover an unjournaled adjacency reorder")
	}
	if err := sameSnapshot(g.buildCSR(nil), c); err != nil {
		t.Fatal(err)
	}
}

// TestRefreshCSRChurnFallback: touching more rows than the churn
// threshold must fall back to a full rebuild.
func TestRefreshCSRChurnFallback(t *testing.T) {
	g := Grid(20, 20)
	c := g.ToCSR()
	for v := 0; v < g.Order(); v++ {
		g.SetVertexWeight(Vertex(v), 2)
	}
	c, patched := g.RefreshCSR(c)
	if patched {
		t.Fatalf("patched through %d touches (churn cap %d)", g.Order(), csrMaxChurn(g.Order()))
	}
	if err := sameSnapshot(g.buildCSR(nil), c); err != nil {
		t.Fatal(err)
	}
}

// TestRefreshCSRSlotOverflow: growing one vertex's degree past its slot
// headroom forces the compacting rebuild, and the rebuilt snapshot has
// fresh headroom.
func TestRefreshCSRSlotOverflow(t *testing.T) {
	g := NewWithVertices(40)
	for v := 1; v < 8; v++ {
		_ = g.AddEdge(0, Vertex(v), 1)
	}
	c := g.ToCSR()
	slot := c.XAdj[1] - c.XAdj[0]
	for v := 8; int32(v-1) <= slot; v++ {
		_ = g.AddEdge(0, Vertex(v), 1)
	}
	c, patched := g.RefreshCSR(c)
	if patched {
		t.Fatal("patched a row past its slot capacity")
	}
	if err := sameSnapshot(g.buildCSR(nil), c); err != nil {
		t.Fatal(err)
	}
	checkSlots(t, c)
}

// TestRefreshCSRForeignSnapshot: a snapshot built from another graph is
// always fully rebuilt, never patched against the wrong journal.
func TestRefreshCSRForeignSnapshot(t *testing.T) {
	g1 := Grid(5, 5)
	g2 := Grid(5, 5)
	c := g1.ToCSR()
	c, patched := g2.RefreshCSR(c)
	if patched {
		t.Fatal("patched a snapshot owned by another graph")
	}
	if err := sameSnapshot(g2.buildCSR(nil), c); err != nil {
		t.Fatal(err)
	}
}

// TestRefreshCSRPatchedBytesDeterministic: two graphs driven through the
// same edit script must produce byte-identical snapshot arrays — slack
// included — when both refresh incrementally. (Determinism at this level
// is what lets the parallel engine fuzz compare snapshots wholesale.)
func TestRefreshCSRPatchedBytesDeterministic(t *testing.T) {
	build := func() (*Graph, *CSR) {
		g := Grid(8, 8)
		return g, g.ToCSR()
	}
	g1, c1 := build()
	g2, c2 := build()
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		randomGraphEdit(g1, r1)
		randomGraphEdit(g2, r2)
		c1, _ = g1.RefreshCSR(c1)
		c2, _ = g2.RefreshCSR(c2)
		if len(c1.Adj) != len(c2.Adj) {
			t.Fatalf("iter %d: Adj lengths diverge: %d vs %d", iter, len(c1.Adj), len(c2.Adj))
		}
		for i := range c1.Adj {
			if c1.Adj[i] != c2.Adj[i] || c1.EW[i] != c2.EW[i] {
				t.Fatalf("iter %d: arc %d diverges: (%d,%g) vs (%d,%g)",
					iter, i, c1.Adj[i], c1.EW[i], c2.Adj[i], c2.EW[i])
			}
		}
	}
}

// TestRefreshCSRSmallDeltaAllocs locks the warm small-delta refresh at
// zero allocations: a journaled weight update plus an edge flip must be
// absorbed entirely by the in-place patch.
func TestRefreshCSRSmallDeltaAllocs(t *testing.T) {
	g := Grid(30, 30)
	c := g.ToCSR()
	u, v := Vertex(0), Vertex(1)
	w := 1.0
	allocs := testing.AllocsPerRun(20, func() {
		w += 0.5
		g.SetVertexWeight(u, w)
		if g.HasEdge(u, v) {
			_ = g.RemoveEdge(u, v)
		} else {
			_ = g.AddEdge(u, v, 1)
		}
		var patched bool
		c, patched = g.RefreshCSR(c)
		if !patched {
			t.Fatal("small delta did not take the patch path")
		}
	})
	if allocs > 0 {
		t.Fatalf("warm small-delta refresh allocates %.1f objects/op, want 0", allocs)
	}
}
