package graph

// Components labels each live vertex with a connected-component id in
// [0, count) and returns the labels (dead vertices get -1) and the count.
// Component ids are assigned in increasing order of their smallest vertex.
func (g *Graph) Components() (comp []int32, count int) {
	comp = make([]int32, g.Order())
	for i := range comp {
		comp[i] = -1
	}
	var queue []Vertex
	for v := 0; v < g.Order(); v++ {
		if !g.alive[v] || comp[v] >= 0 {
			continue
		}
		id := int32(count)
		count++
		comp[v] = id
		queue = append(queue[:0], Vertex(v))
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			for _, u := range g.adj[x] {
				if comp[u] < 0 {
					comp[u] = id
					queue = append(queue, u)
				}
			}
		}
	}
	return comp, count
}

// Connected reports whether all live vertices form a single connected
// component. The empty graph is connected.
func (g *Graph) Connected() bool {
	_, n := g.Components()
	return n <= 1
}

// InducedSubgraph returns the subgraph induced by keep (live vertices
// only), plus old→new and new→old identifier maps. old→new is -1 for
// vertices outside the subgraph.
func (g *Graph) InducedSubgraph(keep []Vertex) (sub *Graph, oldToNew, newToOld []Vertex) {
	oldToNew = make([]Vertex, g.Order())
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	newToOld = make([]Vertex, 0, len(keep))
	for _, v := range keep {
		if g.Alive(v) && oldToNew[v] < 0 {
			oldToNew[v] = Vertex(len(newToOld))
			newToOld = append(newToOld, v)
		}
	}
	sub = New(len(newToOld))
	for _, old := range newToOld {
		sub.AddVertex(g.vw[old])
	}
	for _, old := range newToOld {
		nu := oldToNew[old]
		for i, u := range g.adj[old] {
			nv := oldToNew[u]
			if nv >= 0 && nu < nv {
				// Unchecked: source edges are unique and endpoints live.
				sub.AddEdgeUnchecked(nu, nv, g.ew[old][i])
			}
		}
	}
	return sub, oldToNew, newToOld
}
