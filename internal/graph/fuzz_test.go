package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that arbitrary input never panics the parser and that
// anything it accepts round-trips losslessly.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	_ = Write(&seed, Grid(3, 3))
	f.Add(seed.String())
	f.Add("igp-graph 2 1\nv 0 1\nv 1 2\ne 0 1 3\n")
	f.Add("igp-graph 0 0\n")
	f.Add("bogus\n")
	f.Add("igp-graph 2 1\nv 0 1\n# comment\nv 1 1\ne 0 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if h.Order() != g.Order() || h.NumEdges() != g.NumEdges() || h.NumVertices() != g.NumVertices() {
			t.Fatal("round trip changed the graph")
		}
	})
}
