package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := Grid(4, 4)
	_ = g.RemoveVertex(5)
	g.SetVertexWeight(0, 2.25)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Order() != g.Order() || h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %d/%d/%d vs %d/%d/%d",
			h.Order(), h.NumVertices(), h.NumEdges(), g.Order(), g.NumVertices(), g.NumEdges())
	}
	if h.Alive(5) {
		t.Fatal("dead slot must survive round trip")
	}
	if h.VertexWeight(0) != 2.25 {
		t.Fatalf("vertex weight = %g, want 2.25", h.VertexWeight(0))
	}
	for _, v := range g.Vertices() {
		for i, u := range g.Neighbors(v) {
			w, ok := h.EdgeWeight(v, u)
			if !ok || w != g.EdgeWeights(v)[i] {
				t.Fatalf("edge {%d,%d} mismatch after round trip", v, u)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"bogus header\n",
		"igp-graph 2 0\nv 5 1\n",               // out-of-range vertex
		"igp-graph 2 1\nv 0 1\nv 1 1\n",        // missing edge
		"igp-graph 2 0\nv 0 1\nx 0 1 1\n",      // unknown record
		"igp-graph 2 0\nv 0\n",                 // short vertex line
		"igp-graph 2 1\nv 0 1\nv 1 1\ne 0 1\n", // short edge line
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) should fail", c)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		g, err := RandomGNM(40, 80, rng)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Validate(); err != nil {
			t.Fatal(err)
		}
		if h.NumEdges() != g.NumEdges() {
			t.Fatalf("edges %d != %d", h.NumEdges(), g.NumEdges())
		}
	}
}
