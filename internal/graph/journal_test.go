package graph

import (
	"reflect"
	"testing"
)

func TestEpochAdvancesOnMutation(t *testing.T) {
	g := New(4)
	e0 := g.Epoch()
	v0 := g.AddVertex(1)
	v1 := g.AddVertex(1)
	if g.Epoch() == e0 {
		t.Fatal("AddVertex did not advance the epoch")
	}
	e1 := g.Epoch()
	if err := g.AddEdge(v0, v1, 1); err != nil {
		t.Fatal(err)
	}
	if g.Epoch() == e1 {
		t.Fatal("AddEdge did not advance the epoch")
	}
	e2 := g.Epoch()
	g.SortAdjacency()
	if g.Epoch() == e2 {
		t.Fatal("SortAdjacency did not advance the epoch")
	}
}

func TestTouchedSince(t *testing.T) {
	g := NewWithVertices(4)
	_ = g.AddEdge(0, 1, 1)
	mark := g.Epoch()
	_ = g.AddEdge(2, 3, 1)
	touched, exact := g.TouchedSince(mark, nil)
	if !exact {
		t.Fatal("journal unexpectedly inexact")
	}
	if !reflect.DeepEqual(touched, []Vertex{2, 3}) {
		t.Fatalf("touched = %v, want [2 3]", touched)
	}
	// Removing a vertex journals its former neighbors too.
	mark = g.Epoch()
	if err := g.RemoveVertex(0); err != nil {
		t.Fatal(err)
	}
	touched, exact = g.TouchedSince(mark, nil)
	if !exact {
		t.Fatal("journal unexpectedly inexact")
	}
	want := map[Vertex]bool{0: true, 1: true}
	for _, v := range touched {
		if !want[v] {
			t.Fatalf("unexpected touched vertex %d", v)
		}
		delete(want, v)
	}
	if len(want) != 0 {
		t.Fatalf("missing touched vertices: %v", want)
	}
}

func TestTouchedSinceOverflow(t *testing.T) {
	g := NewWithVertices(2)
	mark := g.Epoch()
	for i := 0; i < maxJournal+10; i++ {
		g.SetVertexWeight(0, float64(i))
	}
	if _, exact := g.TouchedSince(mark, nil); exact {
		t.Fatal("journal claims exactness after overflow")
	}
	// A fresh mark taken now must be exact again.
	mark = g.Epoch()
	g.SetVertexWeight(1, 9)
	touched, exact := g.TouchedSince(mark, nil)
	if !exact || !reflect.DeepEqual(touched, []Vertex{1}) {
		t.Fatalf("post-overflow journal broken: touched=%v exact=%v", touched, exact)
	}
}

func TestCloneDropsJournal(t *testing.T) {
	g := NewWithVertices(3)
	_ = g.AddEdge(0, 1, 1)
	c := g.Clone()
	if _, exact := c.TouchedSince(0, nil); exact {
		t.Fatal("clone claims journal exactness it cannot have")
	}
	if c.Epoch() != g.Epoch() {
		t.Fatal("clone epoch differs from source")
	}
}

func TestAddEdgeUncheckedValidates(t *testing.T) {
	g := NewWithVertices(3)
	g.AddEdgeUnchecked(0, 1, 2)
	g.AddEdgeUnchecked(1, 2, 3)
	if err := g.Validate(); err != nil {
		t.Fatalf("unchecked bulk build fails validation: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 2 {
		t.Fatalf("edge weight = %g/%v, want 2/true", w, ok)
	}
}

func TestAddEdgeIfAbsent(t *testing.T) {
	g := NewWithVertices(3)
	if !g.AddEdgeIfAbsent(0, 1, 1) {
		t.Fatal("first insert reported absent=false")
	}
	if g.AddEdgeIfAbsent(0, 1, 1) || g.AddEdgeIfAbsent(1, 0, 1) {
		t.Fatal("duplicate insert reported true")
	}
	if g.AddEdgeIfAbsent(1, 1, 1) {
		t.Fatal("self-loop inserted")
	}
	if err := g.RemoveVertex(2); err != nil {
		t.Fatal(err)
	}
	if g.AddEdgeIfAbsent(0, 2, 1) {
		t.Fatal("edge to dead vertex inserted")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestForEachVertex(t *testing.T) {
	g := NewWithVertices(5)
	_ = g.RemoveVertex(2)
	var got []Vertex
	g.ForEachVertex(func(v Vertex) { got = append(got, v) })
	if !reflect.DeepEqual(got, []Vertex{0, 1, 3, 4}) {
		t.Fatalf("ForEachVertex visited %v", got)
	}
	if !reflect.DeepEqual(got, g.Vertices()) {
		t.Fatal("ForEachVertex disagrees with Vertices")
	}
}

func TestToCSRIntoReuses(t *testing.T) {
	g := Grid(10, 10)
	c := g.ToCSR()
	_ = g.AddEdge(0, 11, 1)
	c2 := g.ToCSRInto(c)
	if c2 != c {
		t.Fatal("ToCSRInto returned a different snapshot")
	}
	if c.NumE != g.NumEdges() || c.NumV != g.NumVertices() {
		t.Fatal("refreshed snapshot out of date")
	}
	// The refreshed snapshot's logical content must match a fresh
	// rebuild's exactly (slack layout may differ — see csr_patch_test.go
	// for the byte-level patch guarantees).
	if err := sameSnapshot(g.ToCSR(), c); err != nil {
		t.Fatalf("refreshed snapshot differs from a fresh one: %v", err)
	}
	// Steady state: refreshing an unchanged graph allocates nothing.
	allocs := testing.AllocsPerRun(10, func() { g.ToCSRInto(c) })
	if allocs > 0 {
		t.Fatalf("ToCSRInto allocates %.1f objects/op on an unchanged graph", allocs)
	}
}

func TestSortAdjacencyInPlace(t *testing.T) {
	g := NewWithVertices(4)
	_ = g.AddEdge(0, 3, 3)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(0, 2, 2)
	g.SortAdjacency()
	if !reflect.DeepEqual(g.Neighbors(0), []Vertex{1, 2, 3}) {
		t.Fatalf("adjacency = %v, want sorted", g.Neighbors(0))
	}
	if !reflect.DeepEqual(g.EdgeWeights(0), []float64{1, 2, 3}) {
		t.Fatalf("weights = %v did not follow the sort", g.EdgeWeights(0))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
