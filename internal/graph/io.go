package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a simplified METIS-like format:
//
//	igp-graph <order> <edges>
//	v <id> <weight>            (one line per live vertex)
//	e <u> <v> <weight>         (one line per undirected edge, u < v)
//
// Lines beginning with '#' are comments. Vertex ids must be dense in
// [0, order); ids not listed are dead slots.

// Write encodes g in the text format. Adjacency order does not affect the
// encoding: edges are emitted with u < v in increasing order.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "igp-graph %d %d\n", g.Order(), g.NumEdges())
	for v := 0; v < g.Order(); v++ {
		if g.Alive(Vertex(v)) {
			fmt.Fprintf(bw, "v %d %g\n", v, g.VertexWeight(Vertex(v)))
		}
	}
	for v := 0; v < g.Order(); v++ {
		if !g.Alive(Vertex(v)) {
			continue
		}
		nbrs := g.Neighbors(Vertex(v))
		ws := g.EdgeWeights(Vertex(v))
		for i, u := range nbrs {
			if Vertex(v) < u {
				fmt.Fprintf(bw, "e %d %d %g\n", v, u, ws[i])
			}
		}
	}
	return bw.Flush()
}

// Read decodes a graph from the text format produced by Write.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: read: empty input")
	}
	var order, edges int
	if _, err := fmt.Sscanf(sc.Text(), "igp-graph %d %d", &order, &edges); err != nil {
		return nil, fmt.Errorf("graph: read: bad header %q: %w", sc.Text(), err)
	}
	g := New(order)
	live := make([]bool, order)
	weights := make([]float64, order)
	type edge struct {
		u, v Vertex
		w    float64
	}
	var es []edge
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "v":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: read line %d: bad vertex line %q", line, text)
			}
			id, err1 := strconv.Atoi(fields[1])
			w, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil || id < 0 || id >= order {
				return nil, fmt.Errorf("graph: read line %d: bad vertex line %q", line, text)
			}
			live[id] = true
			weights[id] = w
		case "e":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: read line %d: bad edge line %q", line, text)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: read line %d: bad edge line %q", line, text)
			}
			es = append(es, edge{Vertex(u), Vertex(v), w})
		default:
			return nil, fmt.Errorf("graph: read line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	for i := 0; i < order; i++ {
		v := g.AddVertex(weights[i])
		_ = v
	}
	for i := 0; i < order; i++ {
		if !live[i] {
			g.alive[i] = false
			g.dead++
		}
	}
	for _, e := range es {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			return nil, fmt.Errorf("graph: read: %w", err)
		}
	}
	if g.NumEdges() != edges {
		return nil, fmt.Errorf("graph: read: header says %d edges, found %d", edges, g.NumEdges())
	}
	return g, nil
}
