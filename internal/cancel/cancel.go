// Package cancel defines the typed cancellation error shared by every
// stage of the repartitioning pipeline. The long-running inner loops —
// simplex pivots, layering BFS levels, balancing stages, refinement
// rounds — poll their context through Check and abort with an *Error
// that wraps context.Cause, so callers can distinguish "the solve was
// canceled" (errors.Is(err, ErrCanceled)) from "the instance is
// infeasible" and still recover the deadline/cancel cause.
package cancel

import (
	"context"
	"errors"
)

// ErrCanceled is the sentinel matched by errors.Is for every abort the
// pipeline performs on behalf of a done context.
var ErrCanceled = errors.New("canceled by context")

// Error is the typed cancellation error: Op names the pipeline stage
// that observed the done context, Cause carries context.Cause at that
// moment (context.Canceled, context.DeadlineExceeded, or the cause
// passed to CancelCauseFunc).
type Error struct {
	Op    string
	Cause error
}

func (e *Error) Error() string {
	if e.Cause == nil {
		return "igp: " + e.Op + " canceled"
	}
	return "igp: " + e.Op + " canceled: " + e.Cause.Error()
}

// Unwrap exposes the context cause so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) work.
func (e *Error) Unwrap() error { return e.Cause }

// Is matches the ErrCanceled sentinel.
func (e *Error) Is(target error) bool { return target == ErrCanceled }

// Check returns nil while ctx is live and a typed *Error once it is
// done. It allocates only on the abort path, so hot loops may call it
// freely (though typically only every few hundred iterations).
func Check(ctx context.Context, op string) error {
	if ctx == nil {
		return nil
	}
	if ctx.Err() == nil {
		return nil
	}
	return &Error{Op: op, Cause: context.Cause(ctx)}
}
