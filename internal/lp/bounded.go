package lp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cancel"
)

// Bounded is a two-phase simplex with the upper-bound technique: variable
// bounds 0 ≤ x ≤ u are handled implicitly (nonbasic variables may sit at
// either bound, and "bound flips" replace pivots when a variable crosses
// its range), so the tableau contains only the general constraints. The
// balance and refine LPs are almost all bounds, making this dramatically
// smaller than the paper's dense formulation — it is the ablation that
// quantifies that design choice.
type Bounded struct {
	MaxIter    int // 0 = default 200000
	BlandAfter int // 0 = default 5000
}

// Name implements Solver.
func (Bounded) Name() string { return "bounded" }

type boundedState struct {
	rows     [][]float64 // m × nCols, maintained as B⁻¹A
	xB       []float64   // values of basic variables
	basis    []int
	atUpper  []bool    // nonbasic-at-upper flags, indexed by column
	upper    []float64 // per-column upper bound (Inf for slacks/artificials)
	cost     []float64
	origCost []float64
	nStruct  int
	artStart int
	nCols    int
	flip     bool
	iters    int
}

// Solve implements Solver.
func (s Bounded) Solve(ctx context.Context, p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	st, err := newBoundedState(p)
	if err != nil {
		return nil, err
	}
	maxIter := s.MaxIter
	if maxIter == 0 {
		maxIter = 200000
	}
	blandAfter := s.BlandAfter
	if blandAfter == 0 {
		blandAfter = 5000
	}

	// Phase 1.
	needPhase1 := false
	for _, b := range st.basis {
		if b >= st.artStart {
			needPhase1 = true
			break
		}
	}
	if needPhase1 {
		st.cost = make([]float64, st.nCols)
		for j := st.artStart; j < st.nCols; j++ {
			st.cost[j] = 1
		}
		status, err := st.iterate(ctx, maxIter, blandAfter, false)
		if err != nil {
			return nil, err
		}
		if status == IterLimit {
			return &Solution{Status: IterLimit, Iterations: st.iters}, nil
		}
		if status == Unbounded {
			return nil, fmt.Errorf("lp: bounded: phase 1 unbounded (internal error)")
		}
		if z := st.phase1Value(); z > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: st.iters}, nil
		}
		st.expelArtificials()
	}

	st.cost = st.origCost
	status, err := st.iterate(ctx, maxIter, blandAfter, true)
	if err != nil {
		return nil, err
	}
	switch status {
	case IterLimit:
		return &Solution{Status: IterLimit, Iterations: st.iters}, nil
	case Unbounded:
		return &Solution{Status: Unbounded, Iterations: st.iters}, nil
	}
	return st.extract(), nil
}

func newBoundedState(p *Problem) (*boundedState, error) {
	n := p.NumVars()
	type row struct {
		terms []Term
		rel   Rel
		rhs   float64
	}
	rowsIn := make([]row, len(p.Cons))
	for i, c := range p.Cons {
		rowsIn[i] = row{c.Terms, c.Rel, c.RHS}
	}
	nSlack, nArt := 0, 0
	for i := range rowsIn {
		if rowsIn[i].rhs < 0 {
			nt := make([]Term, len(rowsIn[i].terms))
			for k, t := range rowsIn[i].terms {
				nt[k] = Term{t.Var, -t.Coef}
			}
			rowsIn[i].terms = nt
			rowsIn[i].rhs = -rowsIn[i].rhs
			switch rowsIn[i].rel {
			case LE:
				rowsIn[i].rel = GE
			case GE:
				rowsIn[i].rel = LE
			}
		}
		switch rowsIn[i].rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	m := len(rowsIn)
	st := &boundedState{
		nStruct:  n,
		artStart: n + nSlack,
		nCols:    n + nSlack + nArt,
		flip:     p.Sense == Maximize,
	}
	st.rows = make([][]float64, m)
	st.xB = make([]float64, m)
	st.basis = make([]int, m)
	st.atUpper = make([]bool, st.nCols)
	st.upper = make([]float64, st.nCols)
	for j := range st.upper {
		st.upper[j] = Inf
	}
	copy(st.upper, p.Upper)

	slackCol, artCol := n, st.artStart
	for i, r := range rowsIn {
		st.rows[i] = make([]float64, st.nCols)
		for _, tm := range r.terms {
			st.rows[i][tm.Var] += tm.Coef
		}
		st.xB[i] = r.rhs
		switch r.rel {
		case LE:
			st.rows[i][slackCol] = 1
			st.basis[i] = slackCol
			slackCol++
		case GE:
			st.rows[i][slackCol] = -1
			slackCol++
			st.rows[i][artCol] = 1
			st.basis[i] = artCol
			artCol++
		case EQ:
			st.rows[i][artCol] = 1
			st.basis[i] = artCol
			artCol++
		}
	}
	st.origCost = make([]float64, st.nCols)
	for v, c := range p.Obj {
		if st.flip {
			c = -c
		}
		st.origCost[v] = c
	}
	return st, nil
}

func (st *boundedState) phase1Value() float64 {
	var z float64
	for i, b := range st.basis {
		if b >= st.artStart {
			z += st.xB[i]
		}
	}
	return z
}

// reducedCosts computes d_j = c_j − c_B·(B⁻¹A)_j.
func (st *boundedState) reducedCosts() []float64 {
	d := make([]float64, st.nCols)
	copy(d, st.cost)
	for i, bi := range st.basis {
		cb := st.cost[bi]
		if cb == 0 {
			continue
		}
		row := st.rows[i]
		for j := range d {
			d[j] -= cb * row[j]
		}
	}
	return d
}

func (st *boundedState) isBasic(j int) bool {
	for _, b := range st.basis {
		if b == j {
			return true
		}
	}
	return false
}

// iterate runs bounded-variable simplex pivots for the current cost.
func (st *boundedState) iterate(ctx context.Context, maxIter, blandAfter int, banArtificials bool) (Status, error) {
	d := st.reducedCosts()
	basic := make([]bool, st.nCols)
	for _, b := range st.basis {
		basic[b] = true
	}
	for {
		if st.iters >= maxIter {
			return IterLimit, nil
		}
		if st.iters&ctxCheckMask == 0 {
			if err := cancel.Check(ctx, "bounded simplex"); err != nil {
				return IterLimit, err
			}
		}
		bland := st.iters >= blandAfter
		// Entering column: nonbasic at lower with d<0, or at upper with d>0.
		enter := -1
		var best float64
		limit := st.nCols
		if banArtificials {
			limit = st.artStart
		}
		for j := 0; j < limit; j++ {
			if basic[j] {
				continue
			}
			var viol float64
			if st.atUpper[j] {
				viol = d[j] // positive is improving
			} else {
				viol = -d[j] // negative d is improving
			}
			if viol > feasTol {
				if bland {
					enter = j
					break
				}
				if viol > best {
					best = viol
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		sign := 1.0
		if st.atUpper[enter] {
			sign = -1
		}

		// Ratio test: the entering variable moves by t ≥ 0 until either a
		// basic variable hits one of its bounds (pivot) or the entering
		// variable reaches its opposite bound (flip).
		rowT := math.Inf(1)
		leave := -1
		leaveToUpper := false
		for i := range st.rows {
			y := st.rows[i][enter]
			dx := -sign * y // change in basic i per unit t
			var ti float64
			var toUpper bool
			switch {
			case dx < -feasTol: // basic decreases toward 0
				ti, toUpper = st.xB[i]/(-dx), false
			case dx > feasTol: // basic increases toward its upper bound
				ub := st.upper[st.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				ti, toUpper = (ub-st.xB[i])/dx, true
			default:
				continue
			}
			if ti < rowT-feasTol ||
				(ti < rowT+feasTol && (leave < 0 || st.basis[i] < st.basis[leave])) {
				rowT, leave, leaveToUpper = ti, i, toUpper
			}
		}
		boundT := st.upper[enter]

		if math.IsInf(rowT, 1) && math.IsInf(boundT, 1) {
			return Unbounded, nil
		}

		if boundT <= rowT+feasTol {
			// Pure bound flip: x_enter runs to its opposite bound.
			for i := range st.rows {
				st.xB[i] += -sign * st.rows[i][enter] * boundT
				if st.xB[i] < 0 && st.xB[i] > -1e-9 {
					st.xB[i] = 0
				}
			}
			st.atUpper[enter] = !st.atUpper[enter]
			st.iters++
			continue
		}

		t := rowT
		if t < 0 {
			t = 0
		}
		for i := range st.rows {
			st.xB[i] += -sign * st.rows[i][enter] * t
			if st.xB[i] < 0 && st.xB[i] > -1e-9 {
				st.xB[i] = 0
			}
		}

		// Pivot: entering becomes basic with value (entry bound + sign·t).
		entVal := sign * t
		if st.atUpper[enter] {
			entVal = st.upper[enter] + entVal
		}
		leaveCol := st.basis[leave]
		st.atUpper[leaveCol] = leaveToUpper
		basic[leaveCol] = false
		basic[enter] = true
		st.atUpper[enter] = false

		piv := st.rows[leave][enter]
		inv := 1 / piv
		rowL := st.rows[leave]
		for j := range rowL {
			rowL[j] *= inv
		}
		rowL[enter] = 1
		for i := range st.rows {
			if i == leave {
				continue
			}
			f := st.rows[i][enter]
			if f == 0 {
				continue
			}
			ri := st.rows[i]
			for j := range ri {
				ri[j] -= f * rowL[j]
			}
			ri[enter] = 0
		}
		f := d[enter]
		if f != 0 {
			for j := range d {
				d[j] -= f * rowL[j]
			}
			d[enter] = 0
		}
		st.basis[leave] = enter
		st.xB[leave] = entVal
		st.iters++
	}
}

// expelArtificials mirrors the dense solver's basis cleanup.
func (st *boundedState) expelArtificials() {
	for i := range st.basis {
		if st.basis[i] < st.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < st.artStart; j++ {
			if math.Abs(st.rows[i][j]) > 1e-7 && !st.isBasic(j) {
				// Pivot with zero movement (the artificial is at 0).
				piv := st.rows[i][j]
				inv := 1 / piv
				ri := st.rows[i]
				for k := range ri {
					ri[k] *= inv
				}
				ri[j] = 1
				for r := range st.rows {
					if r == i {
						continue
					}
					f := st.rows[r][j]
					if f == 0 {
						continue
					}
					rr := st.rows[r]
					for k := range rr {
						rr[k] -= f * ri[k]
					}
					rr[j] = 0
				}
				// Zero-movement pivot: the entering variable keeps its
				// nonbasic resting value, now recorded as its basic value.
				rest := 0.0
				if st.atUpper[j] {
					rest = st.upper[j]
				}
				st.basis[i] = j
				st.atUpper[j] = false
				st.xB[i] = rest
				pivoted = true
				break
			}
		}
		if !pivoted {
			for j := range st.rows[i] {
				st.rows[i][j] = 0
			}
			st.rows[i][st.basis[i]] = 1
			st.xB[i] = 0
		}
	}
}

func (st *boundedState) extract() *Solution {
	x := make([]float64, st.nStruct)
	for j := 0; j < st.nStruct; j++ {
		if st.atUpper[j] {
			x[j] = st.upper[j]
		}
	}
	for i, b := range st.basis {
		if b < st.nStruct {
			x[b] = st.xB[i]
		}
	}
	obj := 0.0
	for v := 0; v < st.nStruct; v++ {
		obj += st.origCost[v] * x[v]
	}
	if st.flip {
		obj = -obj
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iterations: st.iters}
}
