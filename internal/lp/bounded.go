package lp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cancel"
	"repro/internal/par"
)

// Bounded is a two-phase simplex with the upper-bound technique: variable
// bounds 0 ≤ x ≤ u are handled implicitly (nonbasic variables may sit at
// either bound, and "bound flips" replace pivots when a variable crosses
// its range), so the tableau contains only the general constraints. The
// balance and refine LPs are almost all bounds, making this dramatically
// smaller than the paper's dense formulation — it is the ablation that
// quantifies that design choice.
//
// Bounded is a stateless configuration value; Solve runs each problem
// through a throwaway session, so the returned Solution is freshly
// allocated and concurrent Solve calls are safe. It also implements
// [SessionSolver]: NewSession returns a stateful instance whose tableau,
// kernel and Solution arenas are reused across solves — the form the
// engine holds, which makes warm steady-state solves allocation-free and
// lets [WithWorkers] shard the simplex kernels over a worker group.
type Bounded struct {
	MaxIter    int // 0 = default 200000
	BlandAfter int // 0 = default 5000
}

// Name implements Solver.
func (Bounded) Name() string { return "bounded" }

func (s Bounded) maxIter() int {
	if s.MaxIter == 0 {
		return 200000
	}
	return s.MaxIter
}

func (s Bounded) blandAfter() int {
	if s.BlandAfter == 0 {
		return 5000
	}
	return s.BlandAfter
}

// NewSession implements [SessionSolver]: a private stateful instance for
// one solve stream, with reused arenas and optional kernel sharding.
func (s Bounded) NewSession() Solver {
	return &boundedSession{maxIter: s.maxIter(), blandAfter: s.blandAfter()}
}

// Solve implements Solver via a throwaway session, so the result does
// not alias any reused state.
func (s Bounded) Solve(ctx context.Context, p *Problem) (*Solution, error) {
	ses := boundedSession{maxIter: s.maxIter(), blandAfter: s.blandAfter()}
	return ses.Solve(ctx, p)
}

// boundedSession is the stateful form of [Bounded]: one solve stream's
// tableau state, column-sharded kernel plan and Solution arena. Not safe
// for concurrent use — like every session solver it belongs to one
// engine (or one goroutine).
type boundedSession struct {
	maxIter    int
	blandAfter int
	st         boundedState
	pp         lpPar // column-sharded kernel state (see parallel.go)

	// Solution arena: Solve returns &sol, overwritten by the next Solve
	// on this session.
	sol  Solution
	solX []float64
}

// Name implements Solver.
func (s *boundedSession) Name() string { return "bounded" }

// SetWorkers implements [ParallelSolver]; see DualWarm.SetWorkers.
func (s *boundedSession) SetWorkers(grp *par.Group, workers int) {
	s.pp.grp, s.pp.procs = grp, workers
}

// ParallelSolves implements [ParallelSolver].
func (s *boundedSession) ParallelSolves() int { return s.pp.solves }

type boundedState struct {
	rows     [][]float64 // m × nCols, maintained as B⁻¹A
	xB       []float64   // values of basic variables
	basis    []int
	atUpper  []bool    // nonbasic-at-upper flags, indexed by column
	basic    []bool    // in-basis flags, rebuilt per iterate call
	upper    []float64 // per-column upper bound (Inf for slacks/artificials)
	cost     []float64
	origCost []float64
	p1cost   []float64 // phase-1 costs: 1 on artificials, 0 elsewhere
	d        []float64 // reduced costs
	m        int
	nStruct  int
	artStart int
	nCols    int
	flip     bool
	iters    int
}

// Solve implements Solver. Like every session solver, the returned
// *Solution (including X) is an arena overwritten by this session's
// next Solve.
func (s *boundedSession) Solve(ctx context.Context, p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	st := &s.st
	st.build(p)
	s.pp.begin(st.m, st.nCols, st.rows, st.d, st.upper, st.basic, st.atUpper)

	// Phase 1.
	needPhase1 := false
	for _, b := range st.basis[:st.m] {
		if b >= st.artStart {
			needPhase1 = true
			break
		}
	}
	if needPhase1 {
		st.cost = st.p1cost
		status, err := st.iterate(ctx, s.maxIter, s.blandAfter, false, &s.pp)
		if err != nil {
			return nil, err
		}
		if status == IterLimit {
			return s.finish(IterLimit), nil
		}
		if status == Unbounded {
			return nil, fmt.Errorf("lp: bounded: phase 1 unbounded (internal error)")
		}
		if z := st.phase1Value(); z > 1e-7 {
			return s.finish(Infeasible), nil
		}
		st.expelArtificials()
	}

	st.cost = st.origCost
	status, err := st.iterate(ctx, s.maxIter, s.blandAfter, true, &s.pp)
	if err != nil {
		return nil, err
	}
	return s.finish(status), nil
}

// build lays out p in the session's standard form, reusing every arena.
// RHS-negative rows are folded in by sign instead of materializing
// negated term copies: row[t.Var] += sign·t.Coef and rhs = sign·RHS are
// the exact float operations the old negated-copy construction
// performed, so the tableau is bit-identical to it.
func (st *boundedState) build(p *Problem) {
	n := p.NumVars()
	m := len(p.Cons)
	nSlack, nArt := 0, 0
	for _, c := range p.Cons {
		rel := c.Rel
		if c.RHS < 0 {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	st.m = m
	st.nStruct = n
	st.artStart = n + nSlack
	st.nCols = n + nSlack + nArt
	st.flip = p.Sense == Maximize
	st.iters = 0
	st.rows = growRows(st.rows, m, st.nCols)
	st.xB = growF(st.xB, m)
	st.basis = growI(st.basis, m)
	st.atUpper = growB(st.atUpper, st.nCols)
	st.basic = growB(st.basic, st.nCols)
	st.upper = growF(st.upper, st.nCols)
	st.origCost = growF(st.origCost, st.nCols)
	st.p1cost = growF(st.p1cost, st.nCols)
	st.d = growF(st.d, st.nCols)
	for j := 0; j < st.nCols; j++ {
		st.atUpper[j] = false
		st.upper[j] = Inf
		st.origCost[j] = 0
		st.p1cost[j] = 0
	}
	copy(st.upper, p.Upper)
	for j := st.artStart; j < st.nCols; j++ {
		st.p1cost[j] = 1
	}

	slackCol, artCol := n, st.artStart
	for i, c := range p.Cons {
		row := st.rows[i]
		for j := range row {
			row[j] = 0
		}
		sign := 1.0
		rel := c.Rel
		if c.RHS < 0 {
			sign = -1
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		for _, tm := range c.Terms {
			row[tm.Var] += sign * tm.Coef
		}
		st.xB[i] = sign * c.RHS
		switch rel {
		case LE:
			row[slackCol] = 1
			st.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			st.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			st.basis[i] = artCol
			artCol++
		}
	}
	for v, c := range p.Obj {
		if st.flip {
			c = -c
		}
		st.origCost[v] = c
	}
}

func (st *boundedState) phase1Value() float64 {
	var z float64
	for i, b := range st.basis[:st.m] {
		if b >= st.artStart {
			z += st.xB[i]
		}
	}
	return z
}

func (st *boundedState) isBasic(j int) bool {
	for _, b := range st.basis[:st.m] {
		if b == j {
			return true
		}
	}
	return false
}

// iterate runs bounded-variable simplex pivots for the current cost.
// The O(nCols) repricing, entering scan and O(m·nCols) tableau update
// run through the column-sharded kernels (parallel.go); the O(m) ratio
// test and basic-value updates stay sequential.
func (st *boundedState) iterate(ctx context.Context, maxIter, blandAfter int, banArtificials bool, pp *lpPar) (Status, error) {
	// Reduced costs d = c − c_B·B⁻¹A through the shared reprice kernel.
	for i, bi := range st.basis[:st.m] {
		pp.cbv[i] = st.cost[bi]
	}
	pp.cost = st.cost
	pp.runReprice(st.nCols)
	d := st.d
	for j := 0; j < st.nCols; j++ {
		st.basic[j] = false
	}
	for _, b := range st.basis[:st.m] {
		st.basic[b] = true
	}
	pp.limit = st.nCols
	if banArtificials {
		pp.limit = st.artStart
	}
	for {
		if st.iters >= maxIter {
			return IterLimit, nil
		}
		if st.iters&ctxCheckMask == 0 {
			if err := cancel.Check(ctx, "bounded simplex"); err != nil {
				return IterLimit, err
			}
		}
		bland := st.iters >= blandAfter
		// Entering column: nonbasic at lower with d<0, or at upper with d>0.
		pp.bland = bland
		enter := pp.runPrice()
		if enter < 0 {
			return Optimal, nil
		}
		sign := 1.0
		if st.atUpper[enter] {
			sign = -1
		}

		// Ratio test: the entering variable moves by t ≥ 0 until either a
		// basic variable hits one of its bounds (pivot) or the entering
		// variable reaches its opposite bound (flip).
		rowT := math.Inf(1)
		leave := -1
		leaveToUpper := false
		for i := range st.rows {
			y := st.rows[i][enter]
			dx := -sign * y // change in basic i per unit t
			var ti float64
			var toUpper bool
			switch {
			case dx < -feasTol: // basic decreases toward 0
				ti, toUpper = st.xB[i]/(-dx), false
			case dx > feasTol: // basic increases toward its upper bound
				ub := st.upper[st.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				ti, toUpper = (ub-st.xB[i])/dx, true
			default:
				continue
			}
			if ti < rowT-feasTol ||
				(ti < rowT+feasTol && (leave < 0 || st.basis[i] < st.basis[leave])) {
				rowT, leave, leaveToUpper = ti, i, toUpper
			}
		}
		boundT := st.upper[enter]

		if math.IsInf(rowT, 1) && math.IsInf(boundT, 1) {
			return Unbounded, nil
		}

		if boundT <= rowT+feasTol {
			// Pure bound flip: x_enter runs to its opposite bound.
			for i := range st.rows {
				st.xB[i] += -sign * st.rows[i][enter] * boundT
				if st.xB[i] < 0 && st.xB[i] > -1e-9 {
					st.xB[i] = 0
				}
			}
			st.atUpper[enter] = !st.atUpper[enter]
			st.iters++
			continue
		}

		t := rowT
		if t < 0 {
			t = 0
		}
		for i := range st.rows {
			st.xB[i] += -sign * st.rows[i][enter] * t
			if st.xB[i] < 0 && st.xB[i] > -1e-9 {
				st.xB[i] = 0
			}
		}

		// Pivot: entering becomes basic with value (entry bound + sign·t).
		entVal := sign * t
		if st.atUpper[enter] {
			entVal = st.upper[enter] + entVal
		}
		leaveCol := st.basis[leave]
		st.atUpper[leaveCol] = leaveToUpper
		st.basic[leaveCol] = false
		st.basic[enter] = true
		st.atUpper[enter] = false

		// Column-sharded row-eta update; see dualIterate for the fvec
		// snapshot/patch-up protocol.
		rowL := st.rows[leave]
		fd := d[enter]
		for i := 0; i < st.m; i++ {
			pp.fvec[i] = st.rows[i][enter]
		}
		pp.rowL, pp.skip, pp.inv, pp.fd, pp.withD = rowL, leave, 1/st.rows[leave][enter], fd, true
		pp.runElim(st.nCols)
		rowL[enter] = 1
		for i := 0; i < st.m; i++ {
			if i == leave || pp.fvec[i] == 0 {
				continue
			}
			st.rows[i][enter] = 0
		}
		if fd != 0 {
			d[enter] = 0
		}
		st.basis[leave] = enter
		st.xB[leave] = entVal
		st.iters++
	}
}

// expelArtificials mirrors the dense solver's basis cleanup. It runs at
// most once per solve on a handful of rows, so it stays sequential.
func (st *boundedState) expelArtificials() {
	for i := range st.basis[:st.m] {
		if st.basis[i] < st.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < st.artStart; j++ {
			if math.Abs(st.rows[i][j]) > 1e-7 && !st.isBasic(j) {
				// Pivot with zero movement (the artificial is at 0).
				piv := st.rows[i][j]
				inv := 1 / piv
				ri := st.rows[i]
				for k := range ri {
					ri[k] *= inv
				}
				ri[j] = 1
				for r := range st.rows {
					if r == i {
						continue
					}
					f := st.rows[r][j]
					if f == 0 {
						continue
					}
					rr := st.rows[r]
					for k := range rr {
						rr[k] -= f * ri[k]
					}
					rr[j] = 0
				}
				// Zero-movement pivot: the entering variable keeps its
				// nonbasic resting value, now recorded as its basic value.
				rest := 0.0
				if st.atUpper[j] {
					rest = st.upper[j]
				}
				st.basis[i] = j
				st.atUpper[j] = false
				st.xB[i] = rest
				pivoted = true
				break
			}
		}
		if !pivoted {
			for j := range st.rows[i] {
				st.rows[i][j] = 0
			}
			st.rows[i][st.basis[i]] = 1
			st.xB[i] = 0
		}
	}
}

// finish extracts the finished state into the session's Solution arena
// (X is zeroed explicitly — growF does not zero).
func (s *boundedSession) finish(status Status) *Solution {
	st := &s.st
	s.sol = Solution{Status: status, Iterations: st.iters}
	if status != Optimal {
		return &s.sol
	}
	s.solX = growF(s.solX, st.nStruct)
	x := s.solX
	for j := range x {
		x[j] = 0
	}
	for j := 0; j < st.nStruct; j++ {
		if st.atUpper[j] {
			x[j] = st.upper[j]
		}
	}
	for i, b := range st.basis[:st.m] {
		if b < st.nStruct {
			x[b] = st.xB[i]
		}
	}
	obj := 0.0
	for v := 0; v < st.nStruct; v++ {
		obj += st.origCost[v] * x[v]
	}
	if st.flip {
		obj = -obj
	}
	s.sol.X = x
	s.sol.Objective = obj
	return &s.sol
}
