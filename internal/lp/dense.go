package lp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cancel"
)

// Dense is the classical two-phase dense-tableau simplex — the solver the
// paper uses. Finite upper bounds are materialized as explicit ≤ rows, so
// problem size matches the paper's accounting (their v=188 variables,
// c=126 constraints example for |V|=1096, P=32).
type Dense struct {
	// MaxIter bounds total pivots (0 means the default of 200000).
	MaxIter int
	// BlandAfter switches from Dantzig to Bland pivoting after this many
	// pivots to guarantee termination (0 means the default of 5000).
	BlandAfter int
}

// Name implements Solver.
func (Dense) Name() string { return "dense" }

// Solve implements Solver.
func (d Dense) Solve(ctx context.Context, p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t, err := newTableau(p, true)
	if err != nil {
		return nil, err
	}
	maxIter := d.MaxIter
	if maxIter == 0 {
		maxIter = 200000
	}
	blandAfter := d.BlandAfter
	if blandAfter == 0 {
		blandAfter = 5000
	}
	return t.solve(ctx, maxIter, blandAfter)
}

// tableau is a dense simplex tableau in standard form:
//
//	min c·x  s.t.  A x = b,  x ≥ 0,  b ≥ 0
//
// with columns ordered [structural | slack+surplus | artificial].
type tableau struct {
	p        *Problem
	rows     [][]float64 // m rows × (ncols) of B⁻¹A
	rhs      []float64   // B⁻¹ b
	basis    []int       // basic column of each row
	cost     []float64   // current phase's cost vector
	origCost []float64   // phase-2 cost (minimization sense)
	nStruct  int         // structural columns
	nCols    int
	artStart int  // first artificial column
	flip     bool // true if problem was a maximization (objective negated)
	iters    int
}

// newTableau converts p into standard form. When boundsAsRows is true,
// finite upper bounds become explicit ≤ rows (the paper's dense
// formulation).
func newTableau(p *Problem, boundsAsRows bool) (*tableau, error) {
	n := p.NumVars()
	type row struct {
		terms []Term
		rel   Rel
		rhs   float64
	}
	rowsIn := make([]row, 0, len(p.Cons)+n)
	for _, c := range p.Cons {
		rowsIn = append(rowsIn, row{c.Terms, c.Rel, c.RHS})
	}
	if boundsAsRows {
		for v, u := range p.Upper {
			if !math.IsInf(u, 1) {
				rowsIn = append(rowsIn, row{[]Term{{v, 1}}, LE, u})
			}
		}
	}
	m := len(rowsIn)

	// Count slack/surplus and artificial columns after normalizing b ≥ 0.
	nSlack, nArt := 0, 0
	for i := range rowsIn {
		if rowsIn[i].rhs < 0 {
			// Multiply the row by −1, flipping the relation.
			nt := make([]Term, len(rowsIn[i].terms))
			for k, t := range rowsIn[i].terms {
				nt[k] = Term{t.Var, -t.Coef}
			}
			rowsIn[i].terms = nt
			rowsIn[i].rhs = -rowsIn[i].rhs
			switch rowsIn[i].rel {
			case LE:
				rowsIn[i].rel = GE
			case GE:
				rowsIn[i].rel = LE
			}
		}
		switch rowsIn[i].rel {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}

	t := &tableau{
		p:        p,
		nStruct:  n,
		artStart: n + nSlack,
		nCols:    n + nSlack + nArt,
		flip:     p.Sense == Maximize,
	}
	t.rows = make([][]float64, m)
	t.rhs = make([]float64, m)
	t.basis = make([]int, m)

	slackCol := n
	artCol := t.artStart
	for i, r := range rowsIn {
		t.rows[i] = make([]float64, t.nCols)
		for _, tm := range r.terms {
			t.rows[i][tm.Var] += tm.Coef
		}
		t.rhs[i] = r.rhs
		switch r.rel {
		case LE:
			t.rows[i][slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.rows[i][slackCol] = -1
			slackCol++
			t.rows[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.rows[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}

	// Phase-2 cost vector (minimization sense).
	t.origCost = make([]float64, t.nCols)
	for v, c := range p.Obj {
		if t.flip {
			c = -c
		}
		t.origCost[v] = c
	}
	return t, nil
}

// reducedCosts returns d_j = c_j − c_B·(B⁻¹A)_j for all columns plus the
// current objective value c_B·B⁻¹b.
func (t *tableau) reducedCosts(banArtificials bool) (d []float64, z float64) {
	d = make([]float64, t.nCols)
	copy(d, t.cost)
	for i, bi := range t.basis {
		cb := t.cost[bi]
		if cb == 0 {
			continue
		}
		row := t.rows[i]
		for j := range d {
			d[j] -= cb * row[j]
		}
		z += cb * t.rhs[i]
	}
	if banArtificials {
		for j := t.artStart; j < t.nCols; j++ {
			d[j] = 0 // never re-enter
		}
	}
	return d, z
}

// pivot performs a pivot on (row r, column c), updating the tableau and
// the reduced-cost vector d in place.
func (t *tableau) pivot(r, c int, d []float64) {
	piv := t.rows[r][c]
	inv := 1 / piv
	row := t.rows[r]
	for j := range row {
		row[j] *= inv
	}
	t.rhs[r] *= inv
	row[c] = 1 // kill roundoff
	for i := range t.rows {
		if i == r {
			continue
		}
		f := t.rows[i][c]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := range ri {
			ri[j] -= f * row[j]
		}
		ri[c] = 0
		t.rhs[i] -= f * t.rhs[r]
		if t.rhs[i] < 0 && t.rhs[i] > -feasTol {
			t.rhs[i] = 0
		}
	}
	f := d[c]
	if f != 0 {
		for j := range d {
			d[j] -= f * row[j]
		}
		d[c] = 0
	}
	t.basis[r] = c
	t.iters++
}

// iterate runs simplex pivots until optimality, unboundedness, context
// cancellation, or the iteration limit, for the current cost vector.
func (t *tableau) iterate(ctx context.Context, maxIter, blandAfter int, banArtificials bool) (Status, error) {
	d, _ := t.reducedCosts(banArtificials)
	for {
		if t.iters >= maxIter {
			return IterLimit, nil
		}
		if t.iters&ctxCheckMask == 0 {
			if err := cancel.Check(ctx, "dense simplex"); err != nil {
				return IterLimit, err
			}
		}
		bland := t.iters >= blandAfter
		// Entering column.
		enter := -1
		best := -feasTol
		for j := 0; j < t.nCols; j++ {
			if banArtificials && j >= t.artStart {
				break
			}
			if d[j] < best {
				if bland {
					enter = j
					break
				}
				best = d[j]
				enter = j
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		// Ratio test; ties broken by smallest basis index (Bland-safe).
		leave := -1
		var minRatio float64
		for i := range t.rows {
			a := t.rows[i][enter]
			if a <= feasTol {
				continue
			}
			ratio := t.rhs[i] / a
			if leave < 0 || ratio < minRatio-feasTol ||
				(ratio < minRatio+feasTol && t.basis[i] < t.basis[leave]) {
				leave = i
				minRatio = ratio
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		t.pivot(leave, enter, d)
	}
}

// solve runs the two phases and extracts the solution.
func (t *tableau) solve(ctx context.Context, maxIter, blandAfter int) (*Solution, error) {
	// Phase 1: minimize the sum of artificials (skip if none are basic).
	needPhase1 := false
	for _, b := range t.basis {
		if b >= t.artStart {
			needPhase1 = true
			break
		}
	}
	if needPhase1 {
		t.cost = make([]float64, t.nCols)
		for j := t.artStart; j < t.nCols; j++ {
			t.cost[j] = 1
		}
		status, err := t.iterate(ctx, maxIter, blandAfter, false)
		if err != nil {
			return nil, err
		}
		if status == IterLimit {
			return &Solution{Status: IterLimit, Iterations: t.iters}, nil
		}
		if status == Unbounded {
			return nil, fmt.Errorf("lp: dense: phase 1 unbounded (internal error)")
		}
		_, z := t.reducedCosts(false)
		if z > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: t.iters}, nil
		}
		if err := t.expelArtificials(); err != nil {
			return nil, err
		}
	}

	// Phase 2.
	t.cost = t.origCost
	status, err := t.iterate(ctx, maxIter, blandAfter, true)
	if err != nil {
		return nil, err
	}
	switch status {
	case IterLimit:
		return &Solution{Status: IterLimit, Iterations: t.iters}, nil
	case Unbounded:
		return &Solution{Status: Unbounded, Iterations: t.iters}, nil
	}
	return t.extract(), nil
}

// expelArtificials pivots basic artificial variables (necessarily at zero
// after a feasible phase 1) out of the basis; rows that cannot be pivoted
// are redundant and are zeroed out.
func (t *tableau) expelArtificials() error {
	for i := range t.basis {
		if t.basis[i] < t.artStart {
			continue
		}
		if t.rhs[i] > 1e-7 {
			return fmt.Errorf("lp: dense: artificial basic at %g after feasible phase 1", t.rhs[i])
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[i][j]) > 1e-7 {
				d := make([]float64, t.nCols) // dummy reduced costs
				t.pivot(i, j, d)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: clear it so it can never constrain again.
			for j := range t.rows[i] {
				t.rows[i][j] = 0
			}
			t.rows[i][t.basis[i]] = 1
			t.rhs[i] = 0
		}
	}
	return nil
}

func (t *tableau) extract() *Solution {
	x := make([]float64, t.nStruct)
	for i, b := range t.basis {
		if b < t.nStruct {
			x[b] = t.rhs[i]
		}
	}
	obj := 0.0
	for v := 0; v < t.nStruct; v++ {
		obj += t.origCost[v] * x[v]
	}
	if t.flip {
		obj = -obj
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iterations: t.iters}
}

// DenseSize reports the standard-form dimensions Dense would use for p:
// the number of simplex columns (variables incl. slack/surplus/artificial)
// and rows (constraints incl. materialized bounds). This feeds the paper's
// "v and c" LP-size statistics. It mirrors newTableau's accounting
// arithmetically — including the sign normalization that turns a
// negative-RHS row's relation around — without building the tableau, so
// the per-stage statistics cost no allocation on the engine's hot path.
func DenseSize(p *Problem) (vars, cons int) {
	if p.Validate() != nil {
		return 0, 0
	}
	nSlack, nArt := 0, 0
	for _, c := range p.Cons {
		rel := c.Rel
		if c.RHS < 0 {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	nBounds := 0
	for _, u := range p.Upper {
		if !math.IsInf(u, 1) {
			nBounds++ // materialized as a ≤ row with slack (u ≥ 0 by Validate)
		}
	}
	cons = len(p.Cons) + nBounds
	vars = p.NumVars() + nSlack + nBounds + nArt
	return vars, cons
}
