package lp

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestRegisterRejections tables every rejected registration shape and
// checks Register's error against MustRegister's panic for each: the
// two entry points must agree case by case.
func TestRegisterRejections(t *testing.T) {
	cases := []struct {
		name    string
		regName string
		solver  Solver
		wantErr string // substring of the Register error / MustRegister panic
	}{
		{"empty name", "", Bounded{}, "empty solver name"},
		{"nil solver", "x-nil", nil, "nil solver"},
		{"duplicate built-in", "dense", Dense{}, "already registered"},
		{"duplicate dual-warm", "dual-warm", NewDualWarm(), "already registered"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Register(tc.regName, tc.solver)
			if err == nil {
				t.Fatalf("Register(%q) succeeded, want error containing %q", tc.regName, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Register(%q) error %q does not contain %q", tc.regName, err, tc.wantErr)
			}
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("MustRegister(%q) did not panic", tc.regName)
					}
					perr, ok := r.(error)
					if !ok {
						t.Fatalf("MustRegister(%q) panicked with %T, want error", tc.regName, r)
					}
					if !strings.Contains(perr.Error(), tc.wantErr) {
						t.Fatalf("MustRegister(%q) panic %q does not contain %q", tc.regName, perr, tc.wantErr)
					}
				}()
				MustRegister(tc.regName, tc.solver)
			}()
		})
	}
}

// TestMustRegisterAcceptsFreshName: the panic path is the only
// difference — a fresh name must register cleanly through MustRegister
// and then resolve.
func TestMustRegisterAcceptsFreshName(t *testing.T) {
	const name = "test-must-register-fresh"
	MustRegister(name, Bounded{})
	s, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "bounded" {
		t.Fatalf("resolved %q, want the registered bounded instance", s.Name())
	}
	found := false
	for _, n := range Names() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() does not list %q", name)
	}
}

// TestRegistryConcurrentLookupDuringRegister hammers Lookup and Names
// from many goroutines while others register fresh solvers — the
// registry's RWMutex discipline must hold under the race detector.
func TestRegistryConcurrentLookupDuringRegister(t *testing.T) {
	const (
		readers    = 8
		writers    = 4
		iterations = 200
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < iterations; i++ {
				name := fmt.Sprintf("test-race-%d-%d-%d", w, i, testRaceRun)
				if err := Register(name, Bounded{}); err != nil {
					t.Errorf("Register(%q): %v", name, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iterations; i++ {
				if _, err := Lookup("dual-warm"); err != nil {
					t.Errorf("Lookup: %v", err)
					return
				}
				if names := Names(); len(names) < 4 {
					t.Errorf("Names() lost entries: %v", names)
					return
				}
				if _, err := Lookup("definitely-missing"); err == nil {
					t.Error("missing name resolved")
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	testRaceRun++
}

// testRaceRun keeps registered names unique if the test is run with
// -count > 1 (the registry has no unregister).
var testRaceRun int
