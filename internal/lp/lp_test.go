package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// allSolvers holds one instance of every simplex implementation. The
// shared DualWarm deliberately persists across trials so repeated
// same-structure problems exercise its warm path against the same
// oracles as the cold solvers.
var allSolvers = []Solver{Dense{}, Bounded{}, Revised{}, NewDualWarm()}

func solveAll(t *testing.T, p *Problem) []*Solution {
	t.Helper()
	out := make([]*Solution, len(allSolvers))
	for i, s := range allSolvers {
		sol, err := s.Solve(context.Background(), p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		out[i] = sol
	}
	return out
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x+2y s.t. x+y<=4, x+3y<=6, x,y>=0 -> x=4,y=0, obj 12.
	p := NewProblem(Maximize, 2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4)
	p.AddConstraint([]Term{{0, 1}, {1, 3}}, LE, 6)
	for _, sol := range solveAll(t, p) {
		if sol.Status != Optimal {
			t.Fatalf("status %v", sol.Status)
		}
		if math.Abs(sol.Objective-12) > 1e-8 {
			t.Fatalf("objective %g, want 12", sol.Objective)
		}
		if err := CheckFeasible(p, sol.X, 1e-8); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSimpleMinimizeWithGE(t *testing.T) {
	// min 2x+3y s.t. x+y>=10, x<=6 -> x=6,y=4, obj 24.
	p := NewProblem(Minimize, 2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 3)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 10)
	p.SetUpper(0, 6)
	for _, sol := range solveAll(t, p) {
		if sol.Status != Optimal {
			t.Fatalf("status %v", sol.Status)
		}
		if math.Abs(sol.Objective-24) > 1e-8 {
			t.Fatalf("objective %g, want 24", sol.Objective)
		}
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+y s.t. x+2y = 4, x,y >= 0 -> y=2, obj 2.
	p := NewProblem(Minimize, 2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 2}}, EQ, 4)
	for _, sol := range solveAll(t, p) {
		if sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-8 {
			t.Fatalf("got %v obj %g, want optimal 2", sol.Status, sol.Objective)
		}
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3) -> obj 3.
	p := NewProblem(Minimize, 1)
	p.SetObjective(0, 1)
	p.AddConstraint([]Term{{0, -1}}, LE, -3)
	for _, sol := range solveAll(t, p) {
		if sol.Status != Optimal || math.Abs(sol.Objective-3) > 1e-8 {
			t.Fatalf("got %v obj %g, want optimal 3", sol.Status, sol.Objective)
		}
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Minimize, 1)
	p.SetObjective(0, 1)
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	for i, sol := range solveAll(t, p) {
		if sol.Status != Infeasible {
			t.Fatalf("%s: status %v, want infeasible", allSolvers[i].Name(), sol.Status)
		}
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize, 1)
	p.SetObjective(0, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 1)
	for i, sol := range solveAll(t, p) {
		if sol.Status != Unbounded {
			t.Fatalf("%s: status %v, want unbounded", allSolvers[i].Name(), sol.Status)
		}
	}
}

func TestUpperBoundOnly(t *testing.T) {
	// max x+y with x<=2.5, y<=1 and no general constraints.
	p := NewProblem(Maximize, 2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.SetUpper(0, 2.5)
	p.SetUpper(1, 1)
	for _, sol := range solveAll(t, p) {
		if sol.Status != Optimal || math.Abs(sol.Objective-3.5) > 1e-8 {
			t.Fatalf("got %v obj %g, want optimal 3.5", sol.Status, sol.Objective)
		}
	}
}

func TestZeroUpperBound(t *testing.T) {
	// A fixed-at-zero variable participates in an equality.
	p := NewProblem(Minimize, 2)
	p.SetObjective(1, 1)
	p.SetUpper(0, 0)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 5)
	for _, sol := range solveAll(t, p) {
		if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-8 {
			t.Fatalf("got %v obj %g, want optimal 5", sol.Status, sol.Objective)
		}
		if sol.X[0] > 1e-9 {
			t.Fatalf("x0 = %g, want 0", sol.X[0])
		}
	}
}

// pairIdx maps the paper's l(i,j) variables for P=4 onto indices.
var paperPairs = [][2]int{
	{0, 1}, {0, 2}, {0, 3}, {1, 0}, {1, 2},
	{2, 0}, {2, 1}, {2, 3}, {3, 0}, {3, 2},
}

// paperFig5Problem builds the load-balancing LP of the paper's Figure 5.
func paperFig5Problem() *Problem {
	p := NewProblem(Minimize, len(paperPairs))
	upper := []float64{9, 7, 12, 10, 11, 3, 7, 9, 7, 5}
	for v := range paperPairs {
		p.SetObjective(v, 1)
		p.SetUpper(v, upper[v])
	}
	// outflow(j) - inflow(j) = surplus(j); surpluses 8, 1, -1, -8.
	surplus := []float64{8, 1, -1, -8}
	for j := 0; j < 4; j++ {
		var terms []Term
		for v, pr := range paperPairs {
			if pr[0] == j {
				terms = append(terms, Term{v, 1})
			}
			if pr[1] == j {
				terms = append(terms, Term{v, -1})
			}
		}
		p.AddConstraint(terms, EQ, surplus[j])
	}
	return p
}

func TestPaperFigure5LoadBalanceLP(t *testing.T) {
	p := paperFig5Problem()
	for i, sol := range solveAll(t, p) {
		if sol.Status != Optimal {
			t.Fatalf("%s: status %v", allSolvers[i].Name(), sol.Status)
		}
		// The paper's solution l03=8, l12=1 has objective 9, the minimum
		// possible total movement.
		if math.Abs(sol.Objective-9) > 1e-8 {
			t.Fatalf("%s: objective %g, want 9", allSolvers[i].Name(), sol.Objective)
		}
		if err := CheckFeasible(p, sol.X, 1e-8); err != nil {
			t.Fatalf("%s: %v", allSolvers[i].Name(), err)
		}
	}
}

// paperFig8Problem builds the refinement LP of the paper's Figure 8.
func paperFig8Problem() *Problem {
	p := NewProblem(Maximize, len(paperPairs))
	upper := []float64{1, 1, 1, 2, 1, 0, 1, 1, 2, 1}
	for v := range paperPairs {
		p.SetObjective(v, 1)
		p.SetUpper(v, upper[v])
	}
	for j := 0; j < 4; j++ {
		var terms []Term
		for v, pr := range paperPairs {
			if pr[0] == j {
				terms = append(terms, Term{v, 1})
			}
			if pr[1] == j {
				terms = append(terms, Term{v, -1})
			}
		}
		p.AddConstraint(terms, EQ, 0)
	}
	return p
}

func TestPaperFigure8RefinementLP(t *testing.T) {
	p := paperFig8Problem()
	for i, sol := range solveAll(t, p) {
		if sol.Status != Optimal {
			t.Fatalf("%s: status %v", allSolvers[i].Name(), sol.Status)
		}
		// The paper prints a solution totalling 8 moves, but that printed
		// solution violates its own zero-net-flow constraints (node 1 nets
		// −1, node 2 nets +1) — a misprint in the scanned original. The
		// true optimum of the printed LP is 9, e.g. l01=1, l02=1, l03=1,
		// l10=2, l21=1, l23=1, l30=1, l32=1 (hand-verified circulation).
		if math.Abs(sol.Objective-9) > 1e-8 {
			t.Fatalf("%s: objective %g, want 9", allSolvers[i].Name(), sol.Objective)
		}
		if err := CheckFeasible(p, sol.X, 1e-8); err != nil {
			t.Fatalf("%s: %v", allSolvers[i].Name(), err)
		}
	}
}

func TestDegenerateBealeStyle(t *testing.T) {
	// A classically degenerate problem; the Bland guard must terminate.
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7
	// s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
	//      0.5x4  - 90x5 - 0.02x6 + 3x7 <= 0
	//      x6 <= 1
	// Optimum objective = -0.05.
	p := NewProblem(Minimize, 4)
	p.SetObjective(0, -0.75)
	p.SetObjective(1, 150)
	p.SetObjective(2, -0.02)
	p.SetObjective(3, 6)
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)
	for i, sol := range solveAll(t, p) {
		if sol.Status != Optimal {
			t.Fatalf("%s: status %v", allSolvers[i].Name(), sol.Status)
		}
		if math.Abs(sol.Objective-(-0.05)) > 1e-8 {
			t.Fatalf("%s: objective %g, want -0.05", allSolvers[i].Name(), sol.Objective)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	p := NewProblem(Minimize, 2)
	p.AddConstraint([]Term{{5, 1}}, LE, 1)
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range variable should fail validation")
	}
	p2 := NewProblem(Minimize, 1)
	p2.SetUpper(0, -1)
	if err := p2.Validate(); err == nil {
		t.Fatal("negative upper bound should fail validation")
	}
	p3 := NewProblem(Minimize, 1)
	p3.AddConstraint([]Term{{0, math.NaN()}}, LE, 1)
	if err := p3.Validate(); err == nil {
		t.Fatal("NaN coefficient should fail validation")
	}
}

func TestDenseSizeReporting(t *testing.T) {
	p := paperFig5Problem()
	vars, cons := DenseSize(p)
	// 10 structural + 10 bound slacks + 4 artificials = 24 columns;
	// 4 equalities + 10 bound rows = 14 rows.
	if cons != 14 {
		t.Fatalf("cons = %d, want 14", cons)
	}
	if vars != 24 {
		t.Fatalf("vars = %d, want 24", vars)
	}
}

// --- brute-force oracle ---------------------------------------------------

// solveSquare solves a dense square linear system by Gaussian elimination
// with partial pivoting, returning ok=false for (near-)singular systems.
func solveSquare(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv, best := -1, 1e-9
		for r := col; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				piv, best = r, v
			}
		}
		if piv < 0 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for j := col; j <= n; j++ {
			m[col][j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col]
			if f == 0 {
				continue
			}
			for j := col; j <= n; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = m[i][n]
	}
	return x, true
}

// bruteForce finds the optimum of a bounded LP (every variable must have a
// finite upper bound) by enumerating vertices: every vertex of the
// polytope is the intersection of n active constraint hyperplanes drawn
// from general constraints, x_i = 0, and x_i = u_i.
func bruteForce(p *Problem) (best float64, feasible bool) {
	n := p.NumVars()
	type hyperplane struct {
		a []float64
		b float64
	}
	var hs []hyperplane
	for _, c := range p.Cons {
		a := make([]float64, n)
		for _, t := range c.Terms {
			a[t.Var] += t.Coef
		}
		hs = append(hs, hyperplane{a, c.RHS})
	}
	for v := 0; v < n; v++ {
		lo := make([]float64, n)
		lo[v] = 1
		hs = append(hs, hyperplane{lo, 0})
		hi := make([]float64, n)
		hi[v] = 1
		hs = append(hs, hyperplane{hi, p.Upper[v]})
	}
	idx := make([]int, n)
	var rec func(pos, from int)
	sense := 1.0
	if p.Sense == Maximize {
		sense = -1
	}
	best = math.Inf(1)
	rec = func(pos, from int) {
		if pos == n {
			a := make([][]float64, n)
			b := make([]float64, n)
			for i, k := range idx {
				a[i] = hs[k].a
				b[i] = hs[k].b
			}
			x, ok := solveSquare(a, b)
			if !ok {
				return
			}
			if CheckFeasible(p, x, 1e-6) != nil {
				return
			}
			obj := sense * Objective(p, x)
			if obj < best {
				best = obj
				feasible = true
			}
			return
		}
		for k := from; k < len(hs); k++ {
			idx[pos] = k
			rec(pos+1, k+1)
		}
	}
	rec(0, 0)
	if p.Sense == Maximize {
		best = -best
	}
	return best, feasible
}

// randomBoundedLP builds a random LP where every variable has a finite
// upper bound, so brute force is an exact oracle.
func randomBoundedLP(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(3)
	sense := Minimize
	if rng.Intn(2) == 1 {
		sense = Maximize
	}
	p := NewProblem(sense, n)
	for v := 0; v < n; v++ {
		p.SetObjective(v, float64(rng.Intn(11)-5))
		p.SetUpper(v, float64(1+rng.Intn(8)))
	}
	m := 1 + rng.Intn(3)
	for i := 0; i < m; i++ {
		var terms []Term
		for v := 0; v < n; v++ {
			c := rng.Intn(7) - 3
			if c != 0 {
				terms = append(terms, Term{v, float64(c)})
			}
		}
		if len(terms) == 0 {
			terms = []Term{{0, 1}}
		}
		rel := []Rel{LE, GE, EQ}[rng.Intn(3)]
		rhs := float64(rng.Intn(15) - 4)
		p.AddConstraint(terms, rel, rhs)
	}
	return p
}

func TestSolversAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		p := randomBoundedLP(rng)
		want, feasible := bruteForce(p)
		for _, s := range allSolvers {
			sol, err := s.Solve(context.Background(), p)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, s.Name(), err)
			}
			if !feasible {
				if sol.Status != Infeasible {
					t.Fatalf("trial %d %s: status %v, oracle says infeasible", trial, s.Name(), sol.Status)
				}
				continue
			}
			if sol.Status != Optimal {
				t.Fatalf("trial %d %s: status %v, oracle objective %g", trial, s.Name(), sol.Status, want)
			}
			if math.Abs(sol.Objective-want) > 1e-6 {
				t.Fatalf("trial %d %s: objective %g, oracle %g", trial, s.Name(), sol.Objective, want)
			}
			if err := CheckFeasible(p, sol.X, 1e-6); err != nil {
				t.Fatalf("trial %d %s: %v", trial, s.Name(), err)
			}
		}
	}
}

// randomFlowLP builds a random balance-style network LP (the shape the
// partitioner generates): integral bounds and integral flow-balance RHS.
func randomFlowLP(rng *rand.Rand, parts int) *Problem {
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < parts; i++ {
		for j := 0; j < parts; j++ {
			if i != j && rng.Intn(2) == 0 {
				pairs = append(pairs, pair{i, j})
			}
		}
	}
	if len(pairs) == 0 {
		pairs = append(pairs, pair{0, 1})
	}
	p := NewProblem(Minimize, len(pairs))
	for v := range pairs {
		p.SetObjective(v, 1)
		p.SetUpper(v, float64(rng.Intn(10)))
	}
	// Random surpluses that sum to zero.
	surplus := make([]int, parts)
	for k := 0; k < parts-1; k++ {
		surplus[k] = rng.Intn(7) - 3
		surplus[parts-1] -= surplus[k]
	}
	for j := 0; j < parts; j++ {
		var terms []Term
		for v, pr := range pairs {
			if pr.i == j {
				terms = append(terms, Term{v, 1})
			}
			if pr.j == j {
				terms = append(terms, Term{v, -1})
			}
		}
		if len(terms) == 0 {
			continue
		}
		p.AddConstraint(terms, EQ, float64(surplus[j]))
	}
	return p
}

func TestFlowLPIntegrality(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		p := randomFlowLP(rng, 3+rng.Intn(3))
		for _, s := range allSolvers {
			sol, err := s.Solve(context.Background(), p)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, s.Name(), err)
			}
			if sol.Status != Optimal {
				continue // infeasible flow problems are fine
			}
			for v, x := range sol.X {
				if math.Abs(x-math.Round(x)) > 1e-6 {
					t.Fatalf("trial %d %s: x[%d]=%g not integral", trial, s.Name(), v, x)
				}
			}
		}
	}
}

func TestSolversAgreeOnFlowLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		p := randomFlowLP(rng, 4)
		var objs []float64
		var statuses []Status
		for _, s := range allSolvers {
			sol, err := s.Solve(context.Background(), p)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, s.Name(), err)
			}
			statuses = append(statuses, sol.Status)
			objs = append(objs, sol.Objective)
		}
		for i := 1; i < len(statuses); i++ {
			if statuses[i] != statuses[0] {
				t.Fatalf("trial %d: status disagreement %v", trial, statuses)
			}
		}
		if statuses[0] == Optimal {
			for i := 1; i < len(objs); i++ {
				if math.Abs(objs[i]-objs[0]) > 1e-6 {
					t.Fatalf("trial %d: objective disagreement %v", trial, objs)
				}
			}
		}
	}
}
