package lp

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cancel"
)

// TestSolveCanceled: every solver's pivot loop polls its context — a
// pre-canceled context aborts the solve with the typed sentinel wrapping
// the context cause, before any pivoting completes.
func TestSolveCanceled(t *testing.T) {
	p := paperFig5Problem()
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	for _, s := range allSolvers {
		_, err := s.Solve(ctx, p)
		if err == nil {
			t.Fatalf("%s: canceled solve returned nil error", s.Name())
		}
		if !errors.Is(err, cancel.ErrCanceled) {
			t.Fatalf("%s: error does not match ErrCanceled: %v", s.Name(), err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: error does not wrap context.Canceled: %v", s.Name(), err)
		}
		var typed *cancel.Error
		if !errors.As(err, &typed) {
			t.Fatalf("%s: error is not a *cancel.Error: %v", s.Name(), err)
		}
	}
}

// TestRegistryRoundTrip: built-ins resolve by name (and by the empty
// default), unknowns fail with a listing. Rejected registrations —
// including MustRegister's panic contract — are covered by the table in
// TestRegisterRejections (registry_test.go).
func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range []string{"dense", "bounded", "revised", "dual-warm", ""} {
		s, err := Lookup(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if s == nil {
			t.Fatalf("%q: nil solver", name)
		}
	}
	def, err := Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != DefaultSolverName {
		t.Fatalf("default solver is %q, want %q", def.Name(), DefaultSolverName)
	}
	if _, err := Lookup("no-such-solver"); err == nil {
		t.Fatal("unknown name must error")
	}
}
