package lp

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestStandardizeShape(t *testing.T) {
	p := paperFig5Problem()
	std, err := Standardize(p)
	if err != nil {
		t.Fatal(err)
	}
	// Must match the dense tableau's accounting exactly.
	vars, cons := DenseSize(p)
	if std.N() != vars || std.M() != cons {
		t.Fatalf("standard form %dx%d, dense size %dx%d", std.N(), std.M(), vars, cons)
	}
	// Initial basis columns must be unit columns.
	for i, bcol := range std.Basis {
		col := std.Cols[bcol]
		for r := range col {
			want := 0.0
			if r == i {
				want = 1
			}
			if col[r] != want {
				t.Fatalf("basis column %d not unit at row %d", bcol, r)
			}
		}
	}
	// RHS non-negative.
	for i, b := range std.RHS {
		if b < 0 {
			t.Fatalf("rhs[%d] = %g < 0", i, b)
		}
	}
}

func TestStandardizeObjectiveSense(t *testing.T) {
	p := NewProblem(Maximize, 1)
	p.SetObjective(0, 3)
	p.SetUpper(0, 2)
	std, err := Standardize(p)
	if err != nil {
		t.Fatal(err)
	}
	if !std.Flip {
		t.Fatal("maximization must set Flip")
	}
	// Objective of x=2 in the original sense is 6.
	if got := std.Objective([]float64{2}); got != 6 {
		t.Fatalf("objective = %g, want 6", got)
	}
}

func TestStandardizeRejectsInvalid(t *testing.T) {
	p := NewProblem(Minimize, 1)
	p.AddConstraint([]Term{{Var: 7, Coef: 1}}, LE, 1)
	if _, err := Standardize(p); err == nil {
		t.Fatal("invalid problem must be rejected")
	}
}

func TestIterLimitStatus(t *testing.T) {
	// A solvable problem with MaxIter=1 must stop with IterLimit, not hang
	// or mis-report.
	p := paperFig5Problem()
	for _, s := range []Solver{Dense{MaxIter: 1}, Bounded{MaxIter: 1}, Revised{MaxIter: 1}} {
		sol, err := s.Solve(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != IterLimit {
			t.Fatalf("%s: status %v, want iteration-limit", s.Name(), sol.Status)
		}
	}
}

func TestProblemString(t *testing.T) {
	p := NewProblem(Minimize, 3)
	p.Names = []string{"l01", "l02", ""}
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.SetObjective(2, -2)
	p.SetUpper(0, 9)
	p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: -1}}, EQ, 8)
	s := p.String()
	for _, want := range []string{"minimize", "l01", "l02", "- 2 x2", "l01 - l02 = 8", "0 <= l01 <= 9"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestProblemStringEmptyAndMax(t *testing.T) {
	p := NewProblem(Maximize, 1)
	p.AddConstraint(nil, LE, 5)
	s := p.String()
	if !strings.Contains(s, "maximize  0") || !strings.Contains(s, "0 <= 5") {
		t.Fatalf("degenerate rendering wrong:\n%s", s)
	}
}

func TestObjectiveHelper(t *testing.T) {
	p := NewProblem(Minimize, 2)
	p.SetObjective(0, 2)
	p.SetObjective(1, -1)
	if got := Objective(p, []float64{3, 4}); got != 2 {
		t.Fatalf("objective = %g, want 2", got)
	}
}

func TestCheckFeasibleLengthMismatch(t *testing.T) {
	p := NewProblem(Minimize, 2)
	if err := CheckFeasible(p, []float64{1}, 1e-9); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestRelString(t *testing.T) {
	if LE.String() != "<=" || EQ.String() != "=" || GE.String() != ">=" {
		t.Fatal("relation strings wrong")
	}
	if Rel(99).String() != "?" {
		t.Fatal("unknown relation should render '?'")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal:    "optimal",
		Infeasible: "infeasible",
		Unbounded:  "unbounded",
		IterLimit:  "iteration-limit",
		Status(99): "unknown",
	} {
		if s.String() != want {
			t.Fatalf("%d → %q, want %q", s, s.String(), want)
		}
	}
}

func TestIsInfHelper(t *testing.T) {
	if !IsInf(math.Inf(1)) || IsInf(1.0) || IsInf(math.Inf(-1)) {
		t.Fatal("IsInf wrong")
	}
}
