package lp

import (
	"math/rand"
	"testing"
)

func TestDenseSizeMatchesTableau(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		p := randomBoundedLP(rng)
		if rng.Intn(3) == 0 {
			p.Upper[rng.Intn(p.NumVars())] = Inf
		}
		tab, err := newTableau(p, true)
		if err != nil {
			t.Fatal(err)
		}
		vars, cons := DenseSize(p)
		if vars != tab.nCols || cons != len(tab.rows) {
			t.Fatalf("trial %d: DenseSize = (%d,%d), tableau = (%d,%d)", trial, vars, cons, tab.nCols, len(tab.rows))
		}
	}
}
