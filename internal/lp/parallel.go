// Column-sharded kernels for the bounded-tableau simplex solvers.
//
// The per-iteration dominant costs of [DualWarm] and [Bounded] —
// entering-column pricing, the dual ratio test, repricing the reduced
// costs, and the row-eta tableau update — are all column-parallel:
// every column's work is independent of every other column's. They fan
// out here over contiguous column shards on the engine's par.Group,
// exactly like the graph kernels.
//
// # Determinism contract
//
// Results are bit-identical to the sequential path for every worker
// count:
//
//   - Element-wise updates (the tableau elimination and the reduced-cost
//     update) perform the identical float64 operations per element —
//     sharding only changes which worker executes a column, never the
//     operation sequence a column sees.
//
//   - Column accumulations (repricing d = c − c_B·B⁻¹A) iterate basis
//     rows in ascending order per column, the exact operation sequence
//     of the sequential row-major loop under loop interchange.
//
//   - Argmin/argmax selections merge per-worker candidates in shard
//     order under a total order: the dual ratio test is a two-pass rule
//     (exact minimum ratio — a float min, order-free — then the largest
//     |α| within the tolerance band above it, ties to the smallest
//     column), and the primal entering scan keeps Dantzig's
//     (violation desc, column asc) order, which a strict per-shard `>`
//     plus an ascending shard merge reproduces exactly. Bland's rule
//     takes the first eligible column: per-shard first, merged as the
//     first shard with a candidate.
//
// The sequential path (workers ≤ 1, or a region below its fork
// threshold) runs the very same kernel code over one full-range shard,
// so bit-identity holds by construction, not by luck;
// FuzzLPParallelEquivalence locks it in.
package lp

import (
	"math"

	"repro/internal/par"
)

// Fork thresholds, per kernel region rather than per solve: a fork-join
// round trip costs a goroutine spawn per extra worker (microseconds), so
// each region must carry enough float-ops to amortize its own fork.
//
//   - parLPRowMin gates the O(rows·columns) tableau kernels (elimination
//     and repricing) by their measured work — for the elimination that is
//     the count of rows with a nonzero pivot-column multiplier times the
//     column count, so a sparse pivot column correctly stays inline even
//     on a wide tableau.
//
//   - parLPColMin gates the O(columns) selection scans (pricing and the
//     two ratio-test passes) by the column count alone. These regions do
//     ~1ns of work per column; below tens of thousands of columns the
//     fork costs more than the whole scan, so they stay inline while the
//     elimination in the same pivot forks.
//
// The gate reads tableau *values* (the pivot column's sparsity), so which
// path runs is data-dependent — harmless, because the inline path runs
// the very same kernels over one full-range shard and both paths are
// bit-identical by construction (FuzzLPParallelEquivalence locks this).
// The fork width work/threshold+1 keeps every worker's share at least
// one threshold of work, so a region just over the line forks narrow.
const (
	parLPRowMin = 16384
	parLPColMin = 32768
)

// ParallelSolver is implemented by session solvers whose inner simplex
// kernels can shard over a worker group. SetWorkers installs the group
// and the worker count (≤ 1 disables forking); ParallelSolves reports
// how many solves so far actually forked at least one kernel region
// (crossed a per-region work threshold), which the engine surfaces as
// Stats.LPParallel.
type ParallelSolver interface {
	Solver
	SetWorkers(grp *par.Group, workers int)
	ParallelSolves() int
}

// A SessionOption configures the private solver instance returned by
// [Session].
type SessionOption func(Solver)

// WithWorkers shards the session's solve kernels over grp with up to
// the given worker count, when the solver supports it ([ParallelSolver];
// other solvers ignore the option). The group must outlive the session
// and must not be running another region during a Solve — the engine
// passes its own fork-join group, which satisfies both.
func WithWorkers(grp *par.Group, workers int) SessionOption {
	return func(s Solver) {
		if ps, ok := s.(ParallelSolver); ok {
			ps.SetWorkers(grp, workers)
		}
	}
}

// lpPar is the per-solver parallel state: the installed worker group,
// the current solve's shard plan, the parameters of the active kernel
// region, and per-worker selection slots. All slices are arenas grown
// to the largest solve seen, so a warm solve allocates nothing.
type lpPar struct {
	grp   *par.Group
	procs int
	// minWork overrides both region thresholds when nonzero; equivalence
	// tests set it to 1 to push every kernel of tiny LPs across the
	// forked path.
	minWork int

	canFork bool // group installed and procs > 1 (set per solve)
	forked  bool // some region of the current solve forked
	shards  []par.Range
	solves  int // solves that forked at least one region (ParallelSolves)
	task    lpTask

	// Parameters of the current solve, bound once per solve.
	m       int
	rows    [][]float64
	d       []float64
	cost    []float64
	upper   []float64
	inBasis []bool
	atUpper []bool

	// Parameters of the current kernel region, set immediately before
	// each run* call and read-only inside the region.
	kind     int
	rowL     []float64
	fvec     []float64 // per-row multipliers, copied before the region
	cbv      []float64 // cost of each basis column (reprice)
	skip     int       // the pivot row (it IS rowL; elim leaves it alone)
	inv      float64
	fd       float64
	withD    bool
	dir      float64
	minRatio float64
	bland    bool
	limit    int

	// Per-worker selection slots, merged in shard order after the join.
	wVal []float64
	wIdx []int
}

// Kernel region kinds dispatched by lpTask.Do.
const (
	lpElim = iota
	lpReprice
	lpRatioMin
	lpRatioPick
	lpPrice
)

// lpTask adapts the current region to par.Task. It is stored by value
// in lpPar so passing &pp.task to Group.Run never allocates.
type lpTask struct{ pp *lpPar }

func (t *lpTask) Do(w int) {
	pp := t.pp
	sh := pp.shards[w]
	switch pp.kind {
	case lpElim:
		pp.elim(sh.Lo, sh.Hi)
	case lpReprice:
		pp.reprice(sh.Lo, sh.Hi)
	case lpRatioMin:
		pp.wVal[w] = pp.ratioMin(sh.Lo, sh.Hi)
	case lpRatioPick:
		pp.wIdx[w], pp.wVal[w] = pp.ratioPick(sh.Lo, sh.Hi)
	case lpPrice:
		pp.wIdx[w], pp.wVal[w] = pp.price(sh.Lo, sh.Hi)
	}
}

// begin binds one solve's tableau views and resets the solve's fork
// state. Fork decisions are made per kernel region (see the thresholds
// above), not here: a pivot's elimination may fork while its selection
// scans stay inline.
func (pp *lpPar) begin(m, nCols int, rows [][]float64, d, upper []float64, inBasis, atUpper []bool) {
	pp.m = m
	pp.rows = rows
	pp.d = d
	pp.upper = upper
	pp.inBasis = inBasis
	pp.atUpper = atUpper
	pp.fvec = growF(pp.fvec, m)
	pp.cbv = growF(pp.cbv, m)
	pp.task.pp = pp

	pp.forked = false
	pp.canFork = pp.grp != nil && pp.procs > 1
	if pp.canFork {
		pp.wVal = growF(pp.wVal, pp.procs)
		pp.wIdx = growI(pp.wIdx, pp.procs)
	}
}

// width plans one kernel region: the fork width for a region costing
// `work` units against a threshold (minWork when the tests override it).
// 1 means run inline; otherwise min(procs, work/threshold+1) keeps each
// worker's share at least one threshold of work.
func (pp *lpPar) width(work, threshold int) int {
	if pp.minWork > 0 {
		threshold = pp.minWork
	}
	if work < threshold {
		return 1
	}
	wk := work/threshold + 1
	if wk > pp.procs {
		wk = pp.procs
	}
	return wk
}

// run shards [0, n) over wk workers and executes the kernel region on
// the group. Returns false (region not run) when n is too small to
// yield two shards; the caller then runs inline.
func (pp *lpPar) run(kind, n, wk int) bool {
	pp.shards = par.Split(pp.shards[:0], n, wk)
	if len(pp.shards) < 2 {
		return false
	}
	pp.kind = kind
	if !pp.forked {
		pp.forked = true
		pp.solves++
	}
	pp.grp.Run(len(pp.shards), &pp.task)
	return true
}

// runElim applies the current pivot's row-eta update over all columns.
// The region's work is measured, not assumed: one column-width pass for
// the pivot-row scale, one per row with a nonzero multiplier, one for
// the reduced-cost fold — so a sparse pivot column stays inline.
func (pp *lpPar) runElim(nCols int) {
	if pp.canFork {
		rows := 1
		for i := 0; i < pp.m; i++ {
			if i != pp.skip && pp.fvec[i] != 0 {
				rows++
			}
		}
		if pp.withD && pp.fd != 0 {
			rows++
		}
		if wk := pp.width(rows*nCols, parLPRowMin); wk > 1 && pp.run(lpElim, nCols, wk) {
			return
		}
	}
	pp.elim(0, nCols)
}

// runReprice computes d = cost − cbv·B⁻¹A over all columns; its work is
// one column-width pass per nonzero-cost basis row.
func (pp *lpPar) runReprice(nCols int) {
	if pp.canFork {
		rows := 1
		for i := 0; i < pp.m; i++ {
			if pp.cbv[i] != 0 {
				rows++
			}
		}
		if wk := pp.width(rows*nCols, parLPRowMin); wk > 1 && pp.run(lpReprice, nCols, wk) {
			return
		}
	}
	pp.reprice(0, nCols)
}

// runRatioMin is pass 1 of the dual ratio test: the exact minimum ratio
// over all eligible columns (+Inf when none is eligible). Per-shard
// minima merge by float min, which is order-independent.
func (pp *lpPar) runRatioMin(nCols int) float64 {
	if pp.canFork {
		if wk := pp.width(nCols, parLPColMin); wk > 1 && pp.run(lpRatioMin, nCols, wk) {
			minR := math.Inf(1)
			for w := range pp.shards {
				if pp.wVal[w] < minR {
					minR = pp.wVal[w]
				}
			}
			return minR
		}
	}
	return pp.ratioMin(0, nCols)
}

// runRatioPick is pass 2: the entering column among those within the
// tolerance band above pp.minRatio. The shard-order merge replays the
// sequential ascending scan exactly: Bland takes the first shard with a
// candidate, Dantzig the strictly largest |α| with earlier shards
// winning ties.
func (pp *lpPar) runRatioPick(nCols int) int {
	if pp.canFork {
		if wk := pp.width(nCols, parLPColMin); wk > 1 && pp.run(lpRatioPick, nCols, wk) {
			enter, bestAbs := -1, 0.0
			for w := range pp.shards {
				j := pp.wIdx[w]
				if j < 0 {
					continue
				}
				if enter < 0 {
					enter, bestAbs = j, pp.wVal[w]
					if pp.bland {
						break
					}
				} else if !pp.bland && pp.wVal[w] > bestAbs {
					enter, bestAbs = j, pp.wVal[w]
				}
			}
			return enter
		}
	}
	enter, _ := pp.ratioPick(0, nCols)
	return enter
}

// runPrice is the primal entering scan over [0, pp.limit), preserving
// the sequential Dantzig/Bland order through the same shard-order merge
// as runRatioPick (here the merged value is the violation).
func (pp *lpPar) runPrice() int {
	if pp.canFork {
		if wk := pp.width(pp.limit, parLPColMin); wk > 1 && pp.run(lpPrice, pp.limit, wk) {
			enter, best := -1, 0.0
			for w := range pp.shards {
				j := pp.wIdx[w]
				if j < 0 {
					continue
				}
				if enter < 0 {
					enter, best = j, pp.wVal[w]
					if pp.bland {
						break
					}
				} else if !pp.bland && pp.wVal[w] > best {
					enter, best = j, pp.wVal[w]
				}
			}
			return enter
		}
	}
	enter, _ := pp.price(0, pp.limit)
	return enter
}

// elim applies one pivot's row-eta update to the column range [lo, hi):
// scale the pivot row by inv, eliminate the pivot column's multiplier
// from every other row, and fold in the reduced-cost update when withD.
// fvec holds the per-row multipliers, copied by the caller before the
// region so no worker reads a column another worker is rewriting. Per
// element this is exactly the sequential update; the caller patches the
// pivot column (rowL[enter]=1, eliminated rows' entry 0, d[enter]=0)
// after the join, as the sequential code does after its loops.
func (pp *lpPar) elim(lo, hi int) {
	rowL := pp.rowL
	inv := pp.inv
	for j := lo; j < hi; j++ {
		rowL[j] *= inv
	}
	for i := 0; i < pp.m; i++ {
		if i == pp.skip {
			continue
		}
		f := pp.fvec[i]
		if f == 0 {
			continue
		}
		ri := pp.rows[i]
		for j := lo; j < hi; j++ {
			ri[j] -= f * rowL[j]
		}
	}
	if pp.withD && pp.fd != 0 {
		d, fd := pp.d, pp.fd
		for j := lo; j < hi; j++ {
			d[j] -= fd * rowL[j]
		}
	}
}

// reprice computes d[j] = cost[j] − Σ_i cbv[i]·rows[i][j] for the
// column range, accumulating rows in ascending order with zero-cost
// basis rows skipped — the identical per-element operation sequence as
// the sequential row-major loop (copy cost, then subtract row by row).
func (pp *lpPar) reprice(lo, hi int) {
	m := pp.m
	cost, d := pp.cost, pp.d
	for j := lo; j < hi; j++ {
		v := cost[j]
		for i := 0; i < m; i++ {
			cb := pp.cbv[i]
			if cb == 0 {
				continue
			}
			v -= cb * pp.rows[i][j]
		}
		d[j] = v
	}
}

// ratioEligible reports whether nonbasic column j can enter for the
// current leaving direction: its pivot sign must move the leaving basic
// variable toward its violated bound without that column immediately
// leaving its own feasible side.
func (pp *lpPar) ratioEligible(j int) (alpha float64, ok bool) {
	if pp.inBasis[j] || pp.upper[j] == 0 {
		return 0, false // basic, or fixed: never enters
	}
	alpha = pp.rowL[j]
	if pp.atUpper[j] {
		return alpha, alpha*pp.dir > feasTol // entering decreases from its upper bound
	}
	return alpha, alpha*pp.dir < -feasTol // entering increases from its lower bound
}

// ratioMin is pass 1 of the dual ratio test: the exact minimum
// |d_j|/|α_j| over the eligible columns of [lo, hi), +Inf when none.
func (pp *lpPar) ratioMin(lo, hi int) float64 {
	d := pp.d
	minR := math.Inf(1)
	for j := lo; j < hi; j++ {
		alpha, ok := pp.ratioEligible(j)
		if !ok {
			continue
		}
		if r := math.Abs(d[j]) / math.Abs(alpha); r < minR {
			minR = r
		}
	}
	return minR
}

// ratioPick is pass 2: among eligible columns whose ratio lies within
// the tolerance band [minRatio, minRatio+1e-9] the largest |α| wins
// (numerical stability), ties to the smallest column; under Bland's
// rule the first eligible in-band column wins outright. The band is
// inclusive, so the minimizing column itself always qualifies.
func (pp *lpPar) ratioPick(lo, hi int) (int, float64) {
	d := pp.d
	band := pp.minRatio + 1e-9
	best, bestAbs := -1, 0.0
	for j := lo; j < hi; j++ {
		alpha, ok := pp.ratioEligible(j)
		if !ok {
			continue
		}
		abs := math.Abs(alpha)
		if math.Abs(d[j])/abs > band {
			continue
		}
		if pp.bland {
			return j, abs
		}
		if abs > bestAbs {
			best, bestAbs = j, abs
		}
	}
	return best, bestAbs
}

// price is the primal entering scan over [lo, min(hi, limit)): nonbasic
// at lower with d < −tol, or at upper with d > tol. Dantzig keeps the
// strictly largest violation (ascending scan, so the smallest column
// among exact ties); Bland returns the first eligible column.
func (pp *lpPar) price(lo, hi int) (int, float64) {
	if hi > pp.limit {
		hi = pp.limit
	}
	d := pp.d
	enter, best := -1, 0.0
	for j := lo; j < hi; j++ {
		if pp.inBasis[j] {
			continue
		}
		var viol float64
		if pp.atUpper[j] {
			viol = d[j] // positive is improving
		} else {
			viol = -d[j] // negative d is improving
		}
		if viol > feasTol {
			if pp.bland {
				return j, viol
			}
			if viol > best {
				best, enter = viol, j
			}
		}
	}
	return enter, best
}
