package lp

import (
	"fmt"
	"sort"
	"sync"
)

// The solver registry maps stable names to Solver implementations so
// configuration surfaces (functional options, CLI flags, bench configs)
// can select a simplex by name — and so out-of-tree solvers (e.g. a
// warm-started dual simplex) can ship as drop-ins via Register.
var (
	registryMu sync.RWMutex
	registry   = map[string]Solver{}
)

// DefaultSolverName is the solver used when no name is given.
const DefaultSolverName = "bounded"

func init() {
	MustRegister("dense", Dense{})
	MustRegister("bounded", Bounded{})
	MustRegister("revised", Revised{})
	MustRegister("dual-warm", NewDualWarm())
	MustRegister("mwu", NewMWU())
}

// SessionSolver is implemented by stateful solvers whose state should
// be scoped to one solve stream — e.g. [DualWarm], whose basis cache is
// only useful (and only contention-free) when it serves a single
// sequence of related problems. NewSession returns a fresh instance
// with the same configuration and empty state.
type SessionSolver interface {
	Solver
	// NewSession forks a private instance for one solve stream.
	NewSession() Solver
}

// Session returns a private instance of s for one solve stream: the
// fork from NewSession when s is a [SessionSolver], otherwise s itself
// (stateless solvers need no scoping). The engine calls this at
// construction so a registered warm-started solver's basis lifetime is
// tied to the engine session rather than shared process-globally.
//
// Options ([WithWorkers], …) configure the private instance; they are
// applied to the forked session, never to the registered template, so
// wiring a worker group into one engine's session cannot leak into
// another's.
func Session(s Solver, opts ...SessionOption) Solver {
	if ss, ok := s.(SessionSolver); ok {
		s = ss.NewSession()
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Register adds a named solver. Empty names and duplicates are rejected
// so a typo cannot silently shadow a built-in.
func Register(name string, s Solver) error {
	if name == "" {
		return fmt.Errorf("lp: register: empty solver name")
	}
	if s == nil {
		return fmt.Errorf("lp: register %q: nil solver", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("lp: register %q: already registered", name)
	}
	registry[name] = s
	return nil
}

// MustRegister is Register for init-time use; it panics on error.
func MustRegister(name string, s Solver) {
	if err := Register(name, s); err != nil {
		panic(err)
	}
}

// Lookup resolves a solver by name; "" selects DefaultSolverName. The
// error lists the registered names so a typo is self-diagnosing.
func Lookup(name string) (Solver, error) {
	if name == "" {
		name = DefaultSolverName
	}
	registryMu.RLock()
	s, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("lp: unknown solver %q (registered: %v)", name, Names())
	}
	return s, nil
}

// Names returns the registered solver names in sorted order.
func Names() []string {
	registryMu.RLock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	registryMu.RUnlock()
	sort.Strings(out)
	return out
}
