package lp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cancel"
)

// Revised is a two-phase revised simplex: it keeps the constraint matrix
// column-wise sparse and maintains an explicit dense basis inverse, so a
// pivot costs O(m²) plus sparse pricing instead of the dense tableau's
// O(m·n). This realizes the paper's remark that the LP matrix "is highly
// sparse [and the] cost can be substantially reduced by using a sparse
// representation".
//
// Bounds are materialized as rows (as in Dense) so the two solvers accept
// identical standard forms; the sparsity win is in the column storage.
type Revised struct {
	MaxIter    int // 0 = default 200000
	BlandAfter int // 0 = default 5000
}

// Name implements Solver.
func (Revised) Name() string { return "revised" }

// colTerm is one nonzero of a sparse column.
type colTerm struct {
	row int
	val float64
}

type revisedState struct {
	cols     [][]colTerm // nCols sparse columns of the standard-form matrix
	b        []float64   // original RHS (b ≥ 0)
	binv     [][]float64 // dense m×m basis inverse
	xB       []float64
	basis    []int
	cost     []float64
	origCost []float64
	nStruct  int
	artStart int
	nCols    int
	flip     bool
	iters    int
}

// Solve implements Solver.
func (s Revised) Solve(ctx context.Context, p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	st, err := newRevisedState(p)
	if err != nil {
		return nil, err
	}
	maxIter := s.MaxIter
	if maxIter == 0 {
		maxIter = 200000
	}
	blandAfter := s.BlandAfter
	if blandAfter == 0 {
		blandAfter = 5000
	}

	needPhase1 := false
	for _, b := range st.basis {
		if b >= st.artStart {
			needPhase1 = true
			break
		}
	}
	if needPhase1 {
		st.cost = make([]float64, st.nCols)
		for j := st.artStart; j < st.nCols; j++ {
			st.cost[j] = 1
		}
		status, err := st.iterate(ctx, maxIter, blandAfter, false)
		if err != nil {
			return nil, err
		}
		if status == IterLimit {
			return &Solution{Status: IterLimit, Iterations: st.iters}, nil
		}
		if status == Unbounded {
			return nil, fmt.Errorf("lp: revised: phase 1 unbounded (internal error)")
		}
		z := 0.0
		for i, bi := range st.basis {
			if bi >= st.artStart {
				z += st.xB[i]
			}
		}
		if z > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: st.iters}, nil
		}
		st.expelArtificials()
	}

	st.cost = st.origCost
	status, err := st.iterate(ctx, maxIter, blandAfter, true)
	if err != nil {
		return nil, err
	}
	switch status {
	case IterLimit:
		return &Solution{Status: IterLimit, Iterations: st.iters}, nil
	case Unbounded:
		return &Solution{Status: Unbounded, Iterations: st.iters}, nil
	}
	return st.extract(), nil
}

func newRevisedState(p *Problem) (*revisedState, error) {
	n := p.NumVars()
	type row struct {
		terms []Term
		rel   Rel
		rhs   float64
	}
	rowsIn := make([]row, 0, len(p.Cons)+n)
	for _, c := range p.Cons {
		rowsIn = append(rowsIn, row{c.Terms, c.Rel, c.RHS})
	}
	for v, u := range p.Upper {
		if !math.IsInf(u, 1) {
			rowsIn = append(rowsIn, row{[]Term{{v, 1}}, LE, u})
		}
	}
	nSlack, nArt := 0, 0
	for i := range rowsIn {
		if rowsIn[i].rhs < 0 {
			nt := make([]Term, len(rowsIn[i].terms))
			for k, t := range rowsIn[i].terms {
				nt[k] = Term{t.Var, -t.Coef}
			}
			rowsIn[i].terms = nt
			rowsIn[i].rhs = -rowsIn[i].rhs
			switch rowsIn[i].rel {
			case LE:
				rowsIn[i].rel = GE
			case GE:
				rowsIn[i].rel = LE
			}
		}
		switch rowsIn[i].rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	m := len(rowsIn)
	st := &revisedState{
		nStruct:  n,
		artStart: n + nSlack,
		nCols:    n + nSlack + nArt,
		flip:     p.Sense == Maximize,
	}
	st.cols = make([][]colTerm, st.nCols)
	st.b = make([]float64, m)
	st.basis = make([]int, m)
	st.xB = make([]float64, m)
	st.binv = make([][]float64, m)
	for i := range st.binv {
		st.binv[i] = make([]float64, m)
		st.binv[i][i] = 1
	}
	slackCol, artCol := n, st.artStart
	for i, r := range rowsIn {
		for _, tm := range r.terms {
			st.cols[tm.Var] = append(st.cols[tm.Var], colTerm{i, tm.Coef})
		}
		st.b[i] = r.rhs
		st.xB[i] = r.rhs
		switch r.rel {
		case LE:
			st.cols[slackCol] = append(st.cols[slackCol], colTerm{i, 1})
			st.basis[i] = slackCol
			slackCol++
		case GE:
			st.cols[slackCol] = append(st.cols[slackCol], colTerm{i, -1})
			slackCol++
			st.cols[artCol] = append(st.cols[artCol], colTerm{i, 1})
			st.basis[i] = artCol
			artCol++
		case EQ:
			st.cols[artCol] = append(st.cols[artCol], colTerm{i, 1})
			st.basis[i] = artCol
			artCol++
		}
	}
	st.origCost = make([]float64, st.nCols)
	for v, c := range p.Obj {
		if st.flip {
			c = -c
		}
		st.origCost[v] = c
	}
	return st, nil
}

// ftran computes w = B⁻¹·A_j for the sparse column j.
func (st *revisedState) ftran(j int, w []float64) {
	for i := range w {
		w[i] = 0
	}
	for _, ct := range st.cols[j] {
		v := ct.val
		for i := range w {
			w[i] += st.binv[i][ct.row] * v
		}
	}
}

// btran computes y = c_Bᵀ·B⁻¹.
func (st *revisedState) btran(y []float64) {
	m := len(st.basis)
	for j := 0; j < m; j++ {
		y[j] = 0
	}
	for i, bi := range st.basis {
		cb := st.cost[bi]
		if cb == 0 {
			continue
		}
		row := st.binv[i]
		for j := 0; j < m; j++ {
			y[j] += cb * row[j]
		}
	}
}

// price returns the reduced cost of column j given the dual vector y.
func (st *revisedState) price(j int, y []float64) float64 {
	d := st.cost[j]
	for _, ct := range st.cols[j] {
		d -= y[ct.row] * ct.val
	}
	return d
}

func (st *revisedState) iterate(ctx context.Context, maxIter, blandAfter int, banArtificials bool) (Status, error) {
	m := len(st.basis)
	y := make([]float64, m)
	w := make([]float64, m)
	basic := make([]bool, st.nCols)
	for {
		if st.iters >= maxIter {
			return IterLimit, nil
		}
		if st.iters&ctxCheckMask == 0 {
			if err := cancel.Check(ctx, "revised simplex"); err != nil {
				return IterLimit, err
			}
		}
		bland := st.iters >= blandAfter
		st.btran(y)
		for j := range basic {
			basic[j] = false
		}
		for _, b := range st.basis {
			basic[b] = true
		}
		limit := st.nCols
		if banArtificials {
			limit = st.artStart
		}
		enter := -1
		best := -feasTol
		for j := 0; j < limit; j++ {
			if basic[j] {
				continue
			}
			d := st.price(j, y)
			if d < best {
				if bland {
					enter = j
					break
				}
				best = d
				enter = j
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		st.ftran(enter, w)
		leave := -1
		var minRatio float64
		for i := 0; i < m; i++ {
			if w[i] <= feasTol {
				continue
			}
			ratio := st.xB[i] / w[i]
			if leave < 0 || ratio < minRatio-feasTol ||
				(ratio < minRatio+feasTol && st.basis[i] < st.basis[leave]) {
				leave = i
				minRatio = ratio
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		st.pivot(leave, enter, w)
	}
}

// pivot updates B⁻¹ and x_B with an elementary (eta) transformation.
func (st *revisedState) pivot(r, enter int, w []float64) {
	piv := w[r]
	inv := 1 / piv
	rowR := st.binv[r]
	for j := range rowR {
		rowR[j] *= inv
	}
	st.xB[r] *= inv
	for i := range st.binv {
		if i == r {
			continue
		}
		f := w[i]
		if f == 0 {
			continue
		}
		ri := st.binv[i]
		for j := range ri {
			ri[j] -= f * rowR[j]
		}
		st.xB[i] -= f * st.xB[r]
		if st.xB[i] < 0 && st.xB[i] > -1e-9 {
			st.xB[i] = 0
		}
	}
	st.basis[r] = enter
	st.iters++
}

// expelArtificials performs zero-movement pivots to remove artificial
// variables from the basis where possible. Rows where no pivot exists are
// provably inert: the corresponding row of B⁻¹A is zero on every
// non-artificial column, so later pivots can never change that basic
// artificial's (zero) value.
func (st *revisedState) expelArtificials() {
	m := len(st.basis)
	w := make([]float64, m)
	for i := 0; i < m; i++ {
		if st.basis[i] < st.artStart {
			continue
		}
		basic := make([]bool, st.nCols)
		for _, b := range st.basis {
			basic[b] = true
		}
		for j := 0; j < st.artStart; j++ {
			if basic[j] {
				continue
			}
			st.ftran(j, w)
			if math.Abs(w[i]) > 1e-7 {
				st.pivot(i, j, w)
				break
			}
		}
	}
}

func (st *revisedState) extract() *Solution {
	x := make([]float64, st.nStruct)
	for i, b := range st.basis {
		if b < st.nStruct {
			x[b] = st.xB[i]
		}
	}
	obj := 0.0
	for v := 0; v < st.nStruct; v++ {
		obj += st.origCost[v] * x[v]
	}
	if st.flip {
		obj = -obj
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iterations: st.iters}
}
