package lp

import (
	"context"
	"testing"

	"repro/internal/par"
)

// forcePar drops the sharding work threshold to 1 so even the tiny LPs
// these tests build fork the kernels (the production threshold would
// keep them inline, which is the right latency call but would leave the
// sharded code path untested).
func forcePar(t testing.TB, s Solver, grp *par.Group, procs int) Solver {
	t.Helper()
	ses := Session(s, WithWorkers(grp, procs))
	switch ps := ses.(type) {
	case *DualWarm:
		ps.pp.minWork = 1
	case *boundedSession:
		ps.pp.minWork = 1
	case *MWU:
		ps.pp.minWork = 1
		ps.inner.pp.minWork = 1
	default:
		t.Fatalf("unexpected session type %T", ses)
	}
	return ses
}

// sameSolution asserts exact equality — bit-identical floats, not
// approximate agreement. That is the sharded kernels' contract.
func sameSolution(t *testing.T, label string, got, want *Solution) {
	t.Helper()
	if got.Status != want.Status {
		t.Fatalf("%s: status %v, want %v", label, got.Status, want.Status)
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("%s: iterations %d, want %d", label, got.Iterations, want.Iterations)
	}
	if got.Objective != want.Objective {
		t.Fatalf("%s: objective %x, want %x (not bit-identical)", label, got.Objective, want.Objective)
	}
	if len(got.X) != len(want.X) {
		t.Fatalf("%s: |X| %d, want %d", label, len(got.X), len(want.X))
	}
	for j := range got.X {
		if got.X[j] != want.X[j] {
			t.Fatalf("%s: X[%d] = %x, want %x (not bit-identical)", label, j, got.X[j], want.X[j])
		}
	}
}

// solveChain runs the cold + two warm-perturbed solves through one
// session and snapshots each arena-backed result.
func solveChain(t *testing.T, s Solver, p *Problem, data []byte) []Solution {
	t.Helper()
	p2 := perturbLP(p, data, false)
	p3 := perturbLP(p, data, true)
	out := make([]Solution, 0, 3)
	for _, q := range []*Problem{p, p2, p3} {
		sol, err := s.Solve(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		snap := *sol
		snap.X = append([]float64(nil), sol.X...)
		out = append(out, snap)
	}
	return out
}

var lpParProcs = []int{1, 2, 3, 7, 16}

// TestLPParallelBitIdentical: sharded dual-warm and bounded sessions
// must reproduce the sequential solve chain exactly — status,
// iteration count, objective and every solution coordinate
// bit-identical — for every worker count.
func TestLPParallelBitIdentical(t *testing.T) {
	inputs := [][]byte{
		{2, 1, 3, 200, 1, 2, 3, 4, 5, 6, 7, 8},
		{3, 2, 0, 0, 9, 9, 9, 1, 1, 1, 0, 0, 0, 5},
		{1, 1, 255, 0, 0},
		{4, 3, 1, 7, 2, 9, 4, 6, 1, 8, 3, 5, 2, 7, 1, 9, 0, 4, 2, 6},
	}
	for _, data := range inputs {
		p := decodeLP(data)
		if p == nil {
			continue
		}
		for _, tmpl := range []Solver{NewDualWarm(), Bounded{}} {
			seq := solveChain(t, Session(tmpl), p, data)
			for _, procs := range lpParProcs[1:] {
				var grp par.Group
				ses := forcePar(t, tmpl, &grp, procs)
				chain := solveChain(t, ses, p, data)
				for i := range chain {
					sameSolution(t, ses.Name(), &chain[i], &seq[i])
				}
			}
		}
	}
}

// TestLPSequentialPathStaysSequential: procs = 1 (or an un-wired
// session) must never fork — ParallelSolves stays 0 — while a wired
// session on a forkable LP counts its solves.
func TestLPSequentialPathStaysSequential(t *testing.T) {
	data := []byte{2, 1, 3, 200, 1, 2, 3, 4, 5, 6, 7, 8}
	p := decodeLP(data)

	plain := Session(NewDualWarm()).(*DualWarm)
	if _, err := plain.Solve(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if n := plain.ParallelSolves(); n != 0 {
		t.Fatalf("un-wired session forked %d solves", n)
	}

	var grp par.Group
	one := forcePar(t, NewDualWarm(), &grp, 1).(*DualWarm)
	if _, err := one.Solve(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if n := one.ParallelSolves(); n != 0 {
		t.Fatalf("procs=1 session forked %d solves", n)
	}

	wired := forcePar(t, NewDualWarm(), &grp, 4).(*DualWarm)
	if _, err := wired.Solve(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if n := wired.ParallelSolves(); n == 0 {
		t.Fatal("wired session with minWork=1 never forked")
	}
}

// TestSessionWithWorkers: WithWorkers must configure the forked
// session, not the registered template, and must be a no-op on solvers
// that are not ParallelSolvers.
func TestSessionWithWorkers(t *testing.T) {
	var grp par.Group
	tmpl := NewDualWarm()
	ses, ok := Session(tmpl, WithWorkers(&grp, 4)).(*DualWarm)
	if !ok {
		t.Fatalf("session is %T", ses)
	}
	if ses == tmpl {
		t.Fatal("session was not forked")
	}
	if ses.pp.grp != &grp || ses.pp.procs != 4 {
		t.Fatal("WithWorkers did not configure the session")
	}
	if tmpl.pp.grp != nil || tmpl.pp.procs != 0 {
		t.Fatal("WithWorkers leaked into the registered template")
	}
	// Stateless, non-parallel solver: option silently ignored.
	if s := Session(Revised{}, WithWorkers(&grp, 4)); s != (Revised{}) {
		t.Fatalf("stateless solver changed by WithWorkers: %T", s)
	}
}

// FuzzLPParallelEquivalence is the CI lock on the sharded kernels'
// determinism contract: for fuzz-generated LPs, the cold + warm solve
// chain under every worker count in {1,2,3,7,16} is bit-identical to
// the sequential chain, for both session solvers.
func FuzzLPParallelEquivalence(f *testing.F) {
	f.Add([]byte{2, 1, 3, 200, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{3, 2, 0, 0, 9, 9, 9, 1, 1, 1, 0, 0, 0, 5})
	f.Add([]byte{4, 3, 1, 7, 2, 9, 4, 6, 1, 8, 3, 5, 2, 7, 1, 9, 0, 4, 2, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeLP(data)
		if p == nil {
			return
		}
		for _, tmpl := range []Solver{NewDualWarm(), Bounded{}} {
			seq := solveChain(t, Session(tmpl), p, data)
			for _, procs := range lpParProcs[1:] {
				var grp par.Group
				ses := forcePar(t, tmpl, &grp, procs)
				chain := solveChain(t, ses, p, data)
				for i := range chain {
					sameSolution(t, ses.Name(), &chain[i], &seq[i])
				}
			}
		}
	})
}
