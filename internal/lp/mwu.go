// MWU is a width-aware multiplicative-weight-update (Plotkin–Shmoys–
// Tardos style) approximate solver for the graph-shaped LPs the balance
// and refine phases emit: uniform-objective min/max flow-form programs
// whose constraint rows are ±1 divergence intervals per "node" and whose
// columns are bounded "arcs". The MWU framework for graph LPs follows
// Ju, Yesil, Sun & Chekuri (arXiv:2307.03307): constraints are
// normalized by their widths, a Hedge-weighted average constraint is
// minimized over the box [0,u] by a linear oracle (a weighted-gradient
// argmin), and the weights sharpen on violated constraints.
//
// # Certify-or-fallback correctness
//
// The solver never trusts the MWU theory bound for its answer. It keeps
// a rigorous two-sided bracket on the optimum and returns only when the
// bracket closes to the target accuracy:
//
//   - Feasible candidates come from rounding the averaged oracle iterate
//     to integers and repairing it with deterministic augmenting-path
//     BFS over the divergence graph; a repaired point is checked-feasible
//     by construction and its objective is an exact incumbent bound.
//   - Opposite-side bounds come from MWU infeasibility certificates: when
//     the weighted average constraint has positive minimum over the box,
//     no point in the box satisfies every constraint together with
//     "objective better than t", so t is a proven bound. Total
//     unimodularity of the divergence system then snaps the bound to the
//     next multiple of the uniform cost.
//   - A failed repair BFS is a max-flow/min-cut infeasibility proof, so
//     Infeasible results are exact, never approximate — the engine's
//     ε-escalation depends on that.
//
// Anything else — a non-graph-shaped instance, or an instance whose
// bracket does not close within the iteration budget — falls back to the
// session's exact dual-warm solver and bumps the Fallbacks counter, so
// the (1+eps) guarantee holds unconditionally.
//
// # Determinism contract
//
// At a fixed iteration count the whole solve is a pure function of the
// problem, bit-identical across worker counts: every float reduction over
// arcs is accumulated in fixed 4096-element blocks that are summed in
// ascending block order (workers shard whole blocks; the inline path runs
// the identical block loop), the divergence pass accumulates each node's
// incident arcs in fixed CSR order regardless of which worker owns the
// node, and the weight update, extraction and repair are sequential.
package lp

import (
	"context"
	"math"
	"sync"

	"repro/internal/cancel"
	"repro/internal/par"
)

// ApproximateSolver is implemented by solvers whose Optimal objective is
// only guaranteed within a known relative accuracy of the true optimum:
// objective ≤ (1+TargetAccuracy())·OPT for minimization and
// ≥ OPT/(1+TargetAccuracy()) for maximization. Exact-comparison
// harnesses test for it and widen to a bounded-suboptimality check.
type ApproximateSolver interface {
	Solver
	// TargetAccuracy returns the resolved accuracy target eps.
	TargetAccuracy() float64
}

// FallbackSolver is implemented by solvers that delegate unsupported or
// unconverged instances to an exact inner solver. Fallbacks reports how
// many solves so far took that path; the engine surfaces the per-call
// delta as Stats.MWUFallbacks.
type FallbackSolver interface {
	Solver
	Fallbacks() int
}

// accuracySetter is the seam WithAccuracy configures.
type accuracySetter interface {
	SetAccuracy(eps float64)
}

// WithAccuracy sets the target accuracy eps of an approximate session
// solver ([MWU]; exact solvers ignore the option): Optimal results are
// guaranteed within a (1+eps) factor of the true optimum. Non-positive
// eps leaves the solver's default in place.
func WithAccuracy(eps float64) SessionOption {
	return func(s Solver) {
		if as, ok := s.(accuracySetter); ok {
			as.SetAccuracy(eps)
		}
	}
}

// MWU block/fork constants: reductions are accumulated per fixed-size
// block (the determinism unit), and kernels fork only when the arc count
// amortizes the fork (mwuParMin, overridden by minWork in tests).
const (
	mwuBlockSize = 4096
	mwuParMin    = 8192
)

// mwuExtractEvery is the round-and-repair cadence in iterations.
const mwuExtractEvery = 64

// Outcomes of one ladder target run.
const (
	mwuCert = iota // infeasibility certificate at t: bound moves to t
	mwuAccept
	mwuBudget
	mwuInfeasibleOut
)

// Repair outcomes.
const (
	repairDone = iota
	repairInfeasible
	repairBudget
)

// MWU is the registered "mwu" solver. Like DualWarm it is a
// SessionSolver: the registered instance is a template, and each engine
// session forks a private instance (with a private exact fallback
// session) whose arenas make warm solves allocation-free.
type MWU struct {
	Accuracy float64 // target eps (0 = default 0.05)
	MaxIter  int     // MWU iteration cap per solve, across the ladder (0 = default 2000)

	mu        sync.Mutex
	inner     *DualWarm // exact fallback session (lazily created)
	fallbacks int
	native    int // solves answered by the MWU path

	inst mwuInst
	pp   mwuPar

	// Solution arena: Solve returns &sol, overwritten by the next Solve.
	sol  Solution
	solX []float64
}

// NewMWU returns an MWU solver with default accuracy and budget.
func NewMWU() *MWU { return &MWU{} }

// Name implements Solver.
func (s *MWU) Name() string { return "mwu" }

// NewSession implements [SessionSolver]: a fresh MWU with the same
// configuration, empty arenas and a private exact fallback session.
func (s *MWU) NewSession() Solver {
	return &MWU{Accuracy: s.Accuracy, MaxIter: s.MaxIter, inner: &DualWarm{}}
}

// SetAccuracy implements the [WithAccuracy] seam.
func (s *MWU) SetAccuracy(eps float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if eps > 0 {
		s.Accuracy = eps
	}
}

// TargetAccuracy implements [ApproximateSolver].
func (s *MWU) TargetAccuracy() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eps()
}

// Fallbacks implements [FallbackSolver].
func (s *MWU) Fallbacks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fallbacks
}

// Counts reports how many solves the MWU path answered (native) and how
// many were delegated to the exact fallback. Used by tests to prove the
// approximate path is actually exercised.
func (s *MWU) Counts() (native, fallbacks int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.native, s.fallbacks
}

// SetWorkers implements [ParallelSolver]: subsequent solves shard the
// oracle and divergence kernels over grp, and the fallback session
// shards its simplex kernels over the same group. Results are
// bit-identical for every worker count.
func (s *MWU) SetWorkers(grp *par.Group, workers int) {
	s.mu.Lock()
	s.pp.grp, s.pp.procs = grp, workers
	if s.inner == nil {
		s.inner = &DualWarm{}
	}
	inner := s.inner
	s.mu.Unlock()
	inner.SetWorkers(grp, workers)
}

// ParallelSolves implements [ParallelSolver]: forked MWU solves plus the
// fallback session's forked solves.
func (s *MWU) ParallelSolves() int {
	s.mu.Lock()
	own := s.pp.solves
	inner := s.inner
	s.mu.Unlock()
	if inner == nil {
		return own
	}
	return own + inner.ParallelSolves()
}

func (s *MWU) eps() float64 {
	if s.Accuracy <= 0 {
		return 0.05
	}
	return s.Accuracy
}

func (s *MWU) maxIter() int {
	if s.MaxIter <= 0 {
		return 2000
	}
	return s.MaxIter
}

// Solve implements Solver. Graph-shaped instances are answered by the
// certify-or-fallback MWU ladder; everything else (and any instance
// whose bracket does not close within the budget) is delegated to the
// exact fallback session. The returned *Solution (including X) is an
// arena owned by this MWU, overwritten by its next Solve.
func (s *MWU) Solve(ctx context.Context, p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inner == nil {
		s.inner = &DualWarm{}
	}
	sol, done, err := s.solveMWU(ctx, p)
	if err != nil {
		return nil, err
	}
	if done {
		s.native++
		return sol, nil
	}
	s.fallbacks++
	isol, err := s.inner.Solve(ctx, p)
	if err != nil {
		return nil, err
	}
	// Copy the fallback result into this solver's own arena so the MWU
	// solution contract (overwritten by the next Solve on *this* value)
	// holds regardless of which path answered.
	s.sol = Solution{
		Status:     isol.Status,
		Objective:  isol.Objective,
		Iterations: s.inst.iters + isol.Iterations,
	}
	if isol.Status == Optimal {
		s.solX = growF(s.solX, len(isol.X))
		copy(s.solX, isol.X)
		s.sol.X = s.solX
	}
	return &s.sol, nil
}

// result fills the solution arena. x (when Optimal) is copied, so it may
// be an instance-owned scratch vector.
func (s *MWU) result(status Status, x []float64, obj float64) *Solution {
	s.sol = Solution{Status: status, Objective: obj, Iterations: s.inst.iters}
	if status == Optimal {
		s.solX = growF(s.solX, len(x))
		copy(s.solX, x)
		s.sol.X = s.solX
	}
	return &s.sol
}

// solveMWU runs the MWU path. done=false means "fall back" (not graph
// shaped, or budget exhausted before the bracket closed).
func (s *MWU) solveMWU(ctx context.Context, p *Problem) (sol *Solution, done bool, err error) {
	in := &s.inst
	in.iters = 0
	in.hasBest = false
	ok, infeasible := in.normalize(p)
	if infeasible {
		return s.result(Infeasible, nil, 0), true, nil
	}
	if !ok {
		return nil, false, nil
	}
	in.prepare()
	in.eps = s.eps()
	s.pp.begin()
	minSense := in.sense == Minimize

	// Combinatorial bracket seeds: Σ of positive lower intervals and of
	// negative upper intervals are both lower bounds on the total flow
	// Σx (every arc feeds at most one deficit node and drains at most
	// one surplus node).
	zeroFeasible := true
	var sumLoPos, sumHiNeg float64
	for g := 0; g < in.nodes; g++ {
		if in.lo[g] > 0 {
			zeroFeasible = false
			sumLoPos += in.lo[g]
		}
		if in.hi[g] < 0 {
			zeroFeasible = false
			sumHiNeg -= in.hi[g]
		}
	}

	if minSense && zeroFeasible {
		// x = 0 is feasible and γ ≥ 0 makes it optimal. Exact.
		in.zero(in.xtry)
		return s.result(Optimal, in.xtry, 0), true, nil
	}
	if in.gamma == 0 {
		// Every feasible point is optimal (objective identically 0):
		// repair from zero either finds one or proves infeasibility.
		in.zero(in.xtry)
		switch in.repairX(in.xtry) {
		case repairInfeasible:
			return s.result(Infeasible, nil, 0), true, nil
		case repairDone:
			return s.result(Optimal, in.xtry, 0), true, nil
		}
		return nil, false, nil
	}

	// Initial incumbent from repairing x = 0. A failed BFS here is an
	// exact infeasibility proof for the whole LP.
	in.zero(in.xtry)
	switch in.repairX(in.xtry) {
	case repairInfeasible:
		return s.result(Infeasible, nil, 0), true, nil
	case repairBudget:
		return nil, false, nil
	}
	in.recordCandidate()

	budget := s.maxIter()
	if minSense {
		// γ > 0: the flow lower bound certifies γ·L0 ≤ OPT with zero
		// MWU iterations; repair-from-zero often lands within (1+eps)
		// of it outright.
		in.bound = in.gamma * math.Max(sumLoPos, sumHiNeg)
	} else {
		in.bound = in.gamma * in.flowUpperBound()
	}
	for {
		if in.accepted() {
			return s.result(Optimal, in.xbest, in.bestVal), true, nil
		}
		var t float64
		if minSense {
			t = in.bound * (1 + in.eps/2)
			if t >= in.bestVal {
				t = (in.bound + in.bestVal) / 2
			}
		} else {
			t = in.bound / (1 + in.eps/2)
			if t <= in.bestVal {
				t = (in.bestVal + in.bound) / 2
			}
		}
		out, err := s.runTarget(ctx, t, budget)
		if err != nil {
			return nil, false, err
		}
		switch out {
		case mwuCert:
			// OPT is strictly beyond t, and total unimodularity makes
			// OPT an integer multiple of γ — snap the bound to the next
			// multiple (the 1e-9 nudge keeps float error conservative).
			if minSense {
				nl := in.gamma * (math.Floor(t/in.gamma-1e-9) + 1)
				in.bound = math.Max(t, nl)
			} else {
				nu := in.gamma * (math.Ceil(t/in.gamma+1e-9) - 1)
				in.bound = math.Max(math.Min(t, nu), in.bestVal)
			}
		case mwuAccept:
			return s.result(Optimal, in.xbest, in.bestVal), true, nil
		case mwuInfeasibleOut:
			return s.result(Infeasible, nil, 0), true, nil
		case mwuBudget:
			return nil, false, nil
		}
	}
}

// runTarget runs MWU iterations against the feasibility system
// "divergence intervals ∧ objective better than t" until it certifies
// infeasibility at t, an extraction closes the bracket, or the global
// iteration budget runs out.
func (s *MWU) runTarget(ctx context.Context, t float64, budget int) (int, error) {
	in := &s.inst
	in.resetWeights(t)
	objSign := 1.0
	if in.sense == Maximize {
		objSign = -1
	}
	// Hedge step size. Width normalization caps every per-constraint
	// loss at |1|, so a fixed aggressive step is stable; accuracy comes
	// from the certified bracket, not from the regret bound.
	const eta = 0.25
	for in.iters < budget {
		if in.iters&ctxCheckMask == 0 {
			if err := cancel.Check(ctx, "mwu solve"); err != nil {
				return 0, err
			}
		}
		in.iters++
		in.k++
		for g := 0; g < in.nodes; g++ {
			in.sNode[g] = in.wUp[g]*in.invRhoUp[g] - in.wLo[g]*in.invRhoLo[g]
		}
		in.sNode[in.nodes] = 0 // virtual free endpoint
		objCoef := objSign * in.gamma * in.wObj * in.invRhoObj
		neg, flow, mag := s.runOracle(objCoef)
		c := in.constTerm(t, objSign)
		// v = min over the box of the weighted average constraint. A
		// strictly positive minimum (beyond accumulated float error,
		// bounded by a tiny multiple of the summed magnitudes) proves no
		// x in the box satisfies the whole system: certificate.
		if v := neg + c; v > 1e-9*(1+mag+math.Abs(c)) {
			return mwuCert, nil
		}
		s.runDiv()
		in.updateWeights(eta, t, flow, objSign)
		if in.k%mwuExtractEvery == 0 {
			switch in.extract() {
			case repairInfeasible:
				return mwuInfeasibleOut, nil
			case repairDone:
				if in.accepted() {
					return mwuAccept, nil
				}
			}
		}
	}
	return mwuBudget, nil
}

// mwuInst is the normalized graph instance plus every iteration arena,
// grown to the largest solve seen so warm solves allocate nothing.
type mwuInst struct {
	n     int // arcs (variables)
	nodes int // real divergence nodes; index nodes is the virtual free endpoint
	sense Sense
	gamma float64 // uniform objective coefficient, ≥ 0

	tail, head []int32   // per arc (virtual endpoint = nodes)
	u          []float64 // per-arc integral upper bound
	lo, hi     []float64 // per-node divergence interval (±Inf = open side)

	// Incidence CSR over nodes+1: entry a<<1|1 marks "arc a leaves this
	// node" (adds +x to its divergence), a<<1 marks "arrives" (−x).
	incPtr []int32
	incAdj []int32
	cnt    []int32

	sumOutU, sumInU []float64 // per-node Σu over leaving/arriving arcs
	sumU            float64

	// Iteration state.
	wLo, wUp           []float64 // per-node Hedge weights (0 on open sides)
	invRhoLo, invRhoUp []float64 // per-node inverse widths (0 on open sides)
	wObj, invRhoObj    float64
	sNode              []float64 // per-node oracle gradient scalar (+ free slot)
	div                []float64
	xcur, xsum         []float64
	blkNeg, blkFlow    []float64 // per-block Σ min(g,0)·u and oracle flow
	blkMag             []float64 // per-block Σ |g|·u (certificate error scale)
	k                  int       // iterations since the last weight reset

	// Bracket state.
	eps     float64
	bound   float64 // certified lower bound (min) / upper bound (max) on OPT
	bestVal float64 // incumbent objective (feasible integral point xbest)
	hasBest bool
	xbest   []float64
	xtry    []float64

	// Repair scratch.
	visited []uint32
	visGen  uint32
	parent  []int32
	queue   []int32

	iters int // MWU iterations this solve
}

// normalize detects the graph shape and fills the instance.
// ok=false: not graph shaped (fall back). infeasible=true: a constraint
// row is a proven contradiction on its own (exact Infeasible).
func (in *mwuInst) normalize(p *Problem) (ok, infeasible bool) {
	n := p.NumVars()
	in.n = n
	in.sense = p.Sense
	in.gamma = 0
	if n > 0 {
		g0 := p.Obj[0]
		if g0 < 0 || math.IsNaN(g0) || math.IsInf(g0, 0) {
			return false, false
		}
		for _, c := range p.Obj[1:] {
			if c != g0 {
				return false, false
			}
		}
		in.gamma = g0
	}
	in.u = growF(in.u, n)
	for j, ub := range p.Upper {
		if math.IsInf(ub, 1) {
			return false, false
		}
		r := math.Round(ub)
		if math.Abs(ub-r) > 1e-6 {
			return false, false
		}
		in.u[j] = r
	}
	in.tail = growI32(in.tail, n)
	in.head = growI32(in.head, n)
	for j := 0; j < n; j++ {
		in.tail[j] = -1
		in.head[j] = -1
	}

	mRows := len(p.Cons)
	in.lo = growF(in.lo, mRows)
	in.hi = growF(in.hi, mRows)
	nodes := 0
	for i := 0; i < mRows; {
		// A run of adjacent rows sharing identical terms (the balance
		// phase's GE/LE slack pair) merges into one interval node.
		k := i + 1
		for k < mRows && mwuSameTerms(p.Cons[i].Terms, p.Cons[k].Terms) {
			k++
		}
		lo, hi := math.Inf(-1), math.Inf(1)
		for r := i; r < k; r++ {
			c := &p.Cons[r]
			b := math.Round(c.RHS)
			if math.Abs(c.RHS-b) > 1e-6 {
				return false, false
			}
			switch c.Rel {
			case EQ:
				lo = math.Max(lo, b)
				hi = math.Min(hi, b)
			case LE:
				hi = math.Min(hi, b)
			case GE:
				lo = math.Max(lo, b)
			}
		}
		if len(p.Cons[i].Terms) == 0 {
			// Empty row: the sum over no arcs is 0, so the row is
			// vacuous when 0 lies in the interval and a contradiction
			// otherwise (the balance phase emits exactly such rows for
			// deliberately infeasible stages).
			if lo > 0 || hi < 0 {
				return false, true
			}
			i = k
			continue
		}
		if lo > hi {
			return false, true
		}
		g := int32(nodes)
		for _, tm := range p.Cons[i].Terms {
			switch tm.Coef {
			case 1:
				if in.tail[tm.Var] != -1 {
					return false, false
				}
				in.tail[tm.Var] = g
			case -1:
				if in.head[tm.Var] != -1 {
					return false, false
				}
				in.head[tm.Var] = g
			default:
				return false, false
			}
		}
		in.lo[nodes], in.hi[nodes] = lo, hi
		nodes++
		i = k
	}
	in.nodes = nodes
	free := int32(nodes)
	for j := 0; j < n; j++ {
		if in.tail[j] == -1 {
			in.tail[j] = free
		}
		if in.head[j] == -1 {
			in.head[j] = free
		}
	}
	return true, false
}

// mwuSameTerms reports element-wise equality of two sparse rows.
func mwuSameTerms(a, b []Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// prepare builds the incidence CSR, the per-node bound sums and the
// per-node inverse widths for the current normalized instance.
func (in *mwuInst) prepare() {
	n, nn := in.n, in.nodes+1
	in.incPtr = growI32(in.incPtr, nn+1)
	for g := 0; g <= nn; g++ {
		in.incPtr[g] = 0
	}
	for a := 0; a < n; a++ {
		in.incPtr[in.tail[a]+1]++
		in.incPtr[in.head[a]+1]++
	}
	for g := 0; g < nn; g++ {
		in.incPtr[g+1] += in.incPtr[g]
	}
	in.incAdj = growI32(in.incAdj, 2*n)
	in.cnt = growI32(in.cnt, nn)
	copy(in.cnt[:nn], in.incPtr[:nn])
	for a := 0; a < n; a++ {
		tg, hg := in.tail[a], in.head[a]
		in.incAdj[in.cnt[tg]] = int32(a)<<1 | 1
		in.cnt[tg]++
		in.incAdj[in.cnt[hg]] = int32(a) << 1
		in.cnt[hg]++
	}

	in.sumOutU = growF(in.sumOutU, nn)
	in.sumInU = growF(in.sumInU, nn)
	for g := 0; g < nn; g++ {
		in.sumOutU[g] = 0
		in.sumInU[g] = 0
	}
	in.sumU = 0
	for a := 0; a < n; a++ {
		in.sumOutU[in.tail[a]] += in.u[a]
		in.sumInU[in.head[a]] += in.u[a]
		in.sumU += in.u[a]
	}

	in.invRhoLo = growF(in.invRhoLo, in.nodes)
	in.invRhoUp = growF(in.invRhoUp, in.nodes)
	for g := 0; g < in.nodes; g++ {
		in.invRhoUp[g] = 0
		if !math.IsInf(in.hi[g], 1) {
			rho := math.Max(math.Max(in.sumOutU[g]-in.hi[g], in.hi[g]+in.sumInU[g]), 1)
			in.invRhoUp[g] = 1 / rho
		}
		in.invRhoLo[g] = 0
		if !math.IsInf(in.lo[g], -1) {
			rho := math.Max(math.Max(in.lo[g]+in.sumInU[g], in.sumOutU[g]-in.lo[g]), 1)
			in.invRhoLo[g] = 1 / rho
		}
	}

	nb := (n + mwuBlockSize - 1) / mwuBlockSize
	in.blkNeg = growF(in.blkNeg, nb)
	in.blkFlow = growF(in.blkFlow, nb)
	in.blkMag = growF(in.blkMag, nb)
	in.wLo = growF(in.wLo, in.nodes)
	in.wUp = growF(in.wUp, in.nodes)
	in.sNode = growF(in.sNode, nn)
	in.div = growF(in.div, in.nodes)
	in.xcur = growF(in.xcur, n)
	in.xsum = growF(in.xsum, n)
	in.xbest = growF(in.xbest, n)
	in.xtry = growF(in.xtry, n)
	in.visited = growU32(in.visited, nn)
	in.parent = growI32(in.parent, nn)
	if cap(in.queue) < nn {
		in.queue = make([]int32, 0, nn)
	}
}

func (in *mwuInst) zero(x []float64) {
	for a := 0; a < in.n; a++ {
		x[a] = 0
	}
}

// flowUpperBound bounds Σx over the feasible region (max sense). For the
// refine shape — every node a zero-divergence equality, every arc with
// both endpoints real — each node's outflow equals its inflow, giving
// the tighter Σ_g min(ΣuOut, ΣuIn); otherwise Σu is always valid.
func (in *mwuInst) flowUpperBound() float64 {
	tight := true
	for g := 0; g < in.nodes && tight; g++ {
		if in.lo[g] != 0 || in.hi[g] != 0 {
			tight = false
		}
	}
	free := int32(in.nodes)
	for a := 0; a < in.n && tight; a++ {
		if in.tail[a] == free || in.head[a] == free {
			tight = false
		}
	}
	if !tight {
		return in.sumU
	}
	s := 0.0
	for g := 0; g < in.nodes; g++ {
		s += math.Min(in.sumOutU[g], in.sumInU[g])
	}
	return s
}

// accepted reports whether the incumbent closes the bracket to (1+eps).
func (in *mwuInst) accepted() bool {
	if !in.hasBest {
		return false
	}
	if in.sense == Minimize {
		return in.bestVal <= (1+in.eps)*in.bound
	}
	// Max sense: bound < γ forces OPT = γ·0 = 0 by integrality, which
	// the (non-negative) incumbent already attains exactly.
	return in.bound <= (1+in.eps)*in.bestVal || in.bound < in.gamma
}

// resetWeights restarts the Hedge state for a new target t: uniform
// weight over the active (finite-side) constraints plus the objective
// constraint, and a fresh averaged iterate.
func (in *mwuInst) resetWeights(t float64) {
	m := 1
	for g := 0; g < in.nodes; g++ {
		if in.invRhoLo[g] != 0 {
			m++
		}
		if in.invRhoUp[g] != 0 {
			m++
		}
	}
	w0 := 1 / float64(m)
	for g := 0; g < in.nodes; g++ {
		in.wLo[g] = 0
		if in.invRhoLo[g] != 0 {
			in.wLo[g] = w0
		}
		in.wUp[g] = 0
		if in.invRhoUp[g] != 0 {
			in.wUp[g] = w0
		}
	}
	in.wObj = w0
	rho := math.Max(math.Max(in.gamma*in.sumU-t, t), 1)
	in.invRhoObj = 1 / rho
	for a := 0; a < in.n; a++ {
		in.xsum[a] = 0
	}
	in.k = 0
}

// constTerm is the x-independent part of the weighted average
// constraint (weights sum to 1 throughout).
func (in *mwuInst) constTerm(t, objSign float64) float64 {
	c := 0.0
	for g := 0; g < in.nodes; g++ {
		if in.wLo[g] != 0 {
			c += in.wLo[g] * in.invRhoLo[g] * in.lo[g]
		}
		if in.wUp[g] != 0 {
			c -= in.wUp[g] * in.invRhoUp[g] * in.hi[g]
		}
	}
	return c - objSign*in.wObj*in.invRhoObj*t
}

// updateWeights applies the Hedge update with the current oracle point's
// width-normalized constraint losses (all in [−1, 1]) and renormalizes
// the weights to sum to 1 — deterministic, and overflow-free.
func (in *mwuInst) updateWeights(eta, t, flow, objSign float64) {
	w := 0.0
	for g := 0; g < in.nodes; g++ {
		if in.wUp[g] != 0 {
			in.wUp[g] *= math.Exp(eta * (in.div[g] - in.hi[g]) * in.invRhoUp[g])
		}
		if in.wLo[g] != 0 {
			in.wLo[g] *= math.Exp(eta * (in.lo[g] - in.div[g]) * in.invRhoLo[g])
		}
		w += in.wUp[g] + in.wLo[g]
	}
	in.wObj *= math.Exp(eta * objSign * (in.gamma*flow - t) * in.invRhoObj)
	w += in.wObj
	inv := 1 / w
	for g := 0; g < in.nodes; g++ {
		in.wUp[g] *= inv
		in.wLo[g] *= inv
	}
	in.wObj *= inv
}

// extract rounds the averaged iterate to integers, repairs it into a
// feasible point, and records it as the incumbent when it improves.
func (in *mwuInst) extract() int {
	k := float64(in.k)
	for a := 0; a < in.n; a++ {
		v := math.Round(in.xsum[a] / k)
		if v < 0 {
			v = 0
		} else if v > in.u[a] {
			v = in.u[a]
		}
		in.xtry[a] = v
	}
	st := in.repairX(in.xtry)
	if st != repairDone {
		return st
	}
	in.recordCandidate()
	return repairDone
}

// recordCandidate installs xtry as the incumbent when it improves.
func (in *mwuInst) recordCandidate() {
	val := 0.0
	for a := 0; a < in.n; a++ {
		val += in.xtry[a]
	}
	val *= in.gamma
	better := !in.hasBest
	if !better {
		if in.sense == Minimize {
			better = val < in.bestVal
		} else {
			better = val > in.bestVal
		}
	}
	if better {
		in.bestVal = val
		copy(in.xbest[:in.n], in.xtry[:in.n])
		in.hasBest = true
	}
}

// divRange computes the divergence of nodes [glo, ghi) at x, each node
// accumulated sequentially in fixed CSR order — the value is independent
// of how nodes are sharded over workers.
func (in *mwuInst) divRange(glo, ghi int, x []float64) {
	for g := glo; g < ghi; g++ {
		d := 0.0
		for e := in.incPtr[g]; e < in.incPtr[g+1]; e++ {
			enc := in.incAdj[e]
			if enc&1 == 1 {
				d += x[enc>>1]
			} else {
				d -= x[enc>>1]
			}
		}
		in.div[g] = d
	}
}

// oracleBlocks runs the oracle over whole blocks [blo, bhi): per arc the
// weighted gradient decides x = u (negative gradient) or 0, the averaged
// iterate accumulates, and the block's partial reductions are stored for
// the ascending-order merge.
func (in *mwuInst) oracleBlocks(blo, bhi int, objCoef float64) {
	for b := blo; b < bhi; b++ {
		alo := b * mwuBlockSize
		ahi := alo + mwuBlockSize
		if ahi > in.n {
			ahi = in.n
		}
		var neg, flow, mag float64
		for a := alo; a < ahi; a++ {
			g := in.sNode[in.tail[a]] - in.sNode[in.head[a]] + objCoef
			ua := in.u[a]
			if g < 0 {
				in.xcur[a] = ua
				in.xsum[a] += ua
				neg += g * ua
				flow += ua
				mag -= g * ua
			} else {
				in.xcur[a] = 0
				mag += g * ua
			}
		}
		in.blkNeg[b] = neg
		in.blkFlow[b] = flow
		in.blkMag[b] = mag
	}
}

// repairX makes x feasible for every divergence interval by
// deterministic augmenting-path BFS, or proves the system infeasible.
// All data is integral, so every augmentation moves at least one unit
// and the arithmetic is exact in float64.
func (in *mwuInst) repairX(x []float64) int {
	in.divRange(0, in.nodes, x)
	budget := 64 + 8*in.n + 8*in.nodes
	for g := 0; g < in.nodes; g++ {
		for in.div[g] < in.lo[g] {
			if budget <= 0 {
				return repairBudget
			}
			budget--
			if !in.augment(x, g, true) {
				return repairInfeasible
			}
		}
	}
	for g := 0; g < in.nodes; g++ {
		for in.div[g] > in.hi[g] {
			if budget <= 0 {
				return repairBudget
			}
			budget--
			if !in.augment(x, g, false) {
				return repairInfeasible
			}
		}
	}
	return repairDone
}

// augment fixes part of node g's deficit (raise: div < lo) or surplus
// (raise=false: div > hi) along one shortest residual path to a node
// with spare interval room (or the virtual free endpoint). A false
// return is rigorous: the BFS-reachable set has every leaving arc
// saturated and every arriving arc empty, so its total divergence is
// extremal yet still violates the set's interval sums — a min-cut proof
// that no feasible point exists.
func (in *mwuInst) augment(x []float64, g int, raise bool) bool {
	free := int32(in.nodes)
	in.visGen++
	if in.visGen == 0 {
		for i := range in.visited {
			in.visited[i] = 0
		}
		in.visGen = 1
	}
	gen := in.visGen
	in.visited[g] = gen
	q := in.queue[:0]
	q = append(q, int32(g))
	target := int32(-1)
	for qi := 0; qi < len(q) && target < 0; qi++ {
		i := q[qi]
		for e := in.incPtr[i]; e < in.incPtr[i+1]; e++ {
			enc := in.incAdj[e]
			a := enc >> 1
			leaves := enc&1 == 1
			var j int32
			var inc bool // whether x[a] increases along this step
			if raise == leaves {
				// raise via a leaving arc, or lower via an arriving
				// arc: push more flow through a (needs room below u).
				if x[a] >= in.u[a] {
					continue
				}
				inc = true
			} else {
				// The reverse move drains existing flow from a.
				if x[a] <= 0 {
					continue
				}
				inc = false
			}
			if leaves {
				j = in.head[a]
			} else {
				j = in.tail[a]
			}
			if in.visited[j] == gen {
				continue
			}
			in.visited[j] = gen
			pe := a << 1
			if inc {
				pe |= 1
			}
			in.parent[j] = pe
			if j == free ||
				(raise && in.div[j] > in.lo[j]) ||
				(!raise && in.div[j] < in.hi[j]) {
				target = j
				break
			}
			q = append(q, j)
		}
	}
	in.queue = q[:0]
	if target < 0 {
		return false
	}

	var delta float64
	if raise {
		delta = in.lo[g] - in.div[g]
	} else {
		delta = in.div[g] - in.hi[g]
	}
	if target != free {
		var room float64
		if raise {
			room = in.div[target] - in.lo[target]
		} else {
			room = in.hi[target] - in.div[target]
		}
		if room < delta {
			delta = room
		}
	}
	for j := target; j != int32(g); {
		pe := in.parent[j]
		a := pe >> 1
		if pe&1 == 1 {
			if room := in.u[a] - x[a]; room < delta {
				delta = room
			}
		} else if x[a] < delta {
			delta = x[a]
		}
		if j == in.head[a] {
			j = in.tail[a]
		} else {
			j = in.head[a]
		}
	}
	for j := target; j != int32(g); {
		pe := in.parent[j]
		a := pe >> 1
		if pe&1 == 1 {
			x[a] += delta
		} else {
			x[a] -= delta
		}
		if j == in.head[a] {
			j = in.tail[a]
		} else {
			j = in.head[a]
		}
	}
	if raise {
		in.div[g] += delta
		if target != free {
			in.div[target] -= delta
		}
	} else {
		in.div[g] -= delta
		if target != free {
			in.div[target] += delta
		}
	}
	return true
}

// Kernel region kinds dispatched by mwuTask.Do.
const (
	mwuKindOracle = iota
	mwuKindDiv
)

// mwuPar is the MWU solver's parallel state, mirroring lpPar: the
// installed worker group, the current region's shard plan, and the
// solve-level fork bookkeeping behind ParallelSolves.
type mwuPar struct {
	grp   *par.Group
	procs int
	// minWork overrides the fork threshold when nonzero; equivalence
	// tests set it to 1 to push tiny instances across the forked path.
	minWork int

	canFork bool
	forked  bool
	shards  []par.Range
	solves  int
	kind    int
	task    mwuTask

	in      *mwuInst
	objCoef float64
}

// mwuTask adapts the current region to par.Task; stored by value so
// passing &pp.task to Group.Run never allocates.
type mwuTask struct{ pp *mwuPar }

func (t *mwuTask) Do(w int) {
	pp := t.pp
	sh := pp.shards[w]
	switch pp.kind {
	case mwuKindOracle:
		pp.in.oracleBlocks(sh.Lo, sh.Hi, pp.objCoef)
	case mwuKindDiv:
		pp.in.divRange(sh.Lo, sh.Hi, pp.in.xcur)
	}
}

// begin resets the per-solve fork state.
func (pp *mwuPar) begin() {
	pp.task.pp = pp
	pp.forked = false
	pp.canFork = pp.grp != nil && pp.procs > 1
}

// width plans a region's fork width exactly like lpPar.width.
func (pp *mwuPar) width(work, threshold int) int {
	if pp.minWork > 0 {
		threshold = pp.minWork
	}
	if work < threshold {
		return 1
	}
	wk := work/threshold + 1
	if wk > pp.procs {
		wk = pp.procs
	}
	return wk
}

// noteFork records that the current solve forked at least one region.
func (pp *mwuPar) noteFork() {
	if !pp.forked {
		pp.forked = true
		pp.solves++
	}
}

// runOracle executes the oracle over all blocks — sharded over whole
// blocks when the arc count warrants a fork, inline otherwise — and
// merges the per-block reductions in ascending block order either way,
// so the sums are bit-identical across worker counts.
func (s *MWU) runOracle(objCoef float64) (neg, flow, mag float64) {
	in, pp := &s.inst, &s.pp
	nb := (in.n + mwuBlockSize - 1) / mwuBlockSize
	ran := false
	if pp.canFork {
		if wk := pp.width(in.n, mwuParMin); wk > 1 {
			pp.shards = par.Split(pp.shards[:0], nb, wk)
			if len(pp.shards) >= 2 {
				pp.kind, pp.in, pp.objCoef = mwuKindOracle, in, objCoef
				pp.noteFork()
				pp.grp.Run(len(pp.shards), &pp.task)
				ran = true
			}
		}
	}
	if !ran {
		in.oracleBlocks(0, nb, objCoef)
	}
	for b := 0; b < nb; b++ {
		neg += in.blkNeg[b]
		flow += in.blkFlow[b]
		mag += in.blkMag[b]
	}
	return neg, flow, mag
}

// runDiv computes every real node's divergence at the current oracle
// point, sharding nodes by incidence weight when the entry count
// warrants a fork. Per-node accumulation order is fixed by the CSR, so
// results are bit-identical across worker counts.
func (s *MWU) runDiv() {
	in, pp := &s.inst, &s.pp
	if pp.canFork {
		entries := int(in.incPtr[in.nodes])
		if wk := pp.width(entries, mwuParMin); wk > 1 {
			pp.shards = par.SplitByWeight(pp.shards[:0], in.incPtr[:in.nodes+1], wk)
			if len(pp.shards) >= 2 {
				pp.kind, pp.in = mwuKindDiv, in
				pp.noteFork()
				pp.grp.Run(len(pp.shards), &pp.task)
				return
			}
		}
	}
	in.divRange(0, in.nodes, in.xcur)
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}
