package lp

import "math"

// Standard is a problem converted to computational standard form
//
//	min c·x   s.t.  A x = b,  x ≥ 0,  b ≥ 0
//
// with columns ordered [structural | slack+surplus | artificial] and
// finite upper bounds materialized as explicit rows (the paper's dense
// formulation). It is column-major so distributed-memory solvers can
// partition columns across ranks.
type Standard struct {
	Cols     [][]float64 // Cols[j] is column j, length m
	RHS      []float64   // length m, non-negative
	Cost     []float64   // phase-2 cost per column, minimization sense
	Basis    []int       // initial basic column per row (slack or artificial)
	NStruct  int         // structural variable count (== p.NumVars())
	ArtStart int         // first artificial column
	Flip     bool        // original problem was a maximization
}

// M returns the number of rows.
func (s *Standard) M() int { return len(s.RHS) }

// N returns the number of columns.
func (s *Standard) N() int { return len(s.Cols) }

// Standardize converts p to standard form. The construction mirrors the
// Dense solver's tableau exactly, so solutions and LP-size statistics
// agree between the sequential and distributed solvers.
func Standardize(p *Problem) (*Standard, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t, err := newTableau(p, true)
	if err != nil {
		return nil, err
	}
	m := len(t.rows)
	s := &Standard{
		Cols:     make([][]float64, t.nCols),
		RHS:      append([]float64(nil), t.rhs...),
		Cost:     append([]float64(nil), t.origCost...),
		Basis:    append([]int(nil), t.basis...),
		NStruct:  t.nStruct,
		ArtStart: t.artStart,
		Flip:     t.flip,
	}
	for j := 0; j < t.nCols; j++ {
		col := make([]float64, m)
		for i := 0; i < m; i++ {
			col[i] = t.rows[i][j]
		}
		s.Cols[j] = col
	}
	return s, nil
}

// Objective evaluates the ORIGINAL problem's objective (in its own sense)
// for a structural solution vector x of length NStruct.
func (s *Standard) Objective(x []float64) float64 {
	var obj float64
	for v := 0; v < s.NStruct; v++ {
		obj += s.Cost[v] * x[v]
	}
	if s.Flip {
		obj = -obj
	}
	return obj
}

// IsInf reports whether v is +Inf (helper for bound checks).
func IsInf(v float64) bool { return math.IsInf(v, 1) }
