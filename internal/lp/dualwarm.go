package lp

import (
	"context"
	"math"
	"sync"

	"repro/internal/cancel"
	"repro/internal/par"
)

// DualWarm is a warm-started bounded-variable dual simplex. It exists
// for the pipeline's sequence-of-LPs shape: the balance and refine
// phases solve long runs of closely related programs — identical
// constraint matrices with drifting RHS (surpluses), bounds (δ and b
// pools) and, across ε escalation, scaled RHS again. A cold simplex
// pays the full pivot path on every one of them; DualWarm retains the
// optimal basis of each LP *structure* it has solved and, when the next
// problem matches a retained structure ([SameStructure]), refactorizes
// that basis and resumes dual pivoting from it. Unchanged costs keep
// the old basis dual feasible, so only the handful of primal
// infeasibilities introduced by the new RHS/bounds must be pivoted
// away — typically a few iterations instead of a full cold path.
//
// Cold solves also run the dual method: the all-slack basis with each
// structural variable at its cost-preferred bound is dual feasible for
// the pipeline's LPs (min with c ≥ 0, max with finite bounds), so no
// phase 1 is ever needed. Problems the dual method cannot start (a
// negative cost on an unbounded variable) are delegated to [Bounded];
// such solves retain no basis.
//
// # Basis lifetime
//
// The cache is keyed by constraint-matrix structure and lives as long
// as the solver value. A retained basis is *never* stale in the
// correctness sense — warm-start validity depends only on structure,
// which is verified exactly on every hit, never on the data of the
// problem that produced it — so graph edits between solves are
// harmless. The hazards are aliasing and lifetime, not staleness:
// a DualWarm shared across goroutines serializes on an internal mutex,
// and one shared across unrelated LP streams (e.g. two engines) evicts
// usefully-warm bases with foreign ones. Hold one DualWarm per solve
// stream instead: DualWarm implements [SessionSolver], and the engine
// calls [Session] at construction so every engine session owns a
// private cache that dies with it. The registered "dual-warm" instance
// is the template those sessions fork from.
type DualWarm struct {
	MaxIter    int // pivot cap (0 = default 200000)
	BlandAfter int // switch to Bland's rule after this many pivots (0 = default 5000)
	CacheSize  int // retained bases (0 = default 8)

	mu    sync.Mutex
	cache map[uint64]*dwEntry
	order []uint64 // insertion order, for eviction
	scr   dwScratch
	pp    lpPar // column-sharded kernel state (see parallel.go)

	// Solution arena: Solve returns &sol, overwritten by the next Solve
	// on this instance (see the Solve doc).
	sol  Solution
	solX []float64

	warm, cold int // solve counters (see Counts)
}

// NewDualWarm returns a warm-started dual simplex with default limits.
func NewDualWarm() *DualWarm { return &DualWarm{} }

// Name implements Solver.
func (s *DualWarm) Name() string { return "dual-warm" }

// NewSession implements [SessionSolver]: it returns a fresh DualWarm
// with the same limits and an empty basis cache, so a long-lived solve
// stream (an engine session) gets private warm state.
func (s *DualWarm) NewSession() Solver {
	return &DualWarm{MaxIter: s.MaxIter, BlandAfter: s.BlandAfter, CacheSize: s.CacheSize}
}

// Counts reports how many solves resumed from a retained basis (warm)
// and how many ran the full cold path. Used by tests and benchmarks to
// prove the warm path is actually taken.
func (s *DualWarm) Counts() (warm, cold int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.warm, s.cold
}

// SetWorkers implements [ParallelSolver]: subsequent solves shard the
// simplex kernels over grp with up to the given worker count (≤ 1, or a
// nil group, keeps the sequential path). Results are bit-identical for
// every worker count.
func (s *DualWarm) SetWorkers(grp *par.Group, workers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pp.grp, s.pp.procs = grp, workers
}

// ParallelSolves implements [ParallelSolver]: how many solves actually
// forked the worker group (reached the per-pivot work threshold).
func (s *DualWarm) ParallelSolves() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pp.solves
}

// dwEntry is one retained basis: the structural snapshot that produced
// it (verified exactly on every cache hit) plus the basis columns and
// nonbasic bound sides at optimality.
type dwEntry struct {
	snap    *Problem
	basis   []int
	atUpper []bool
}

// dwScratch is the reused solve state: the dense working tableau B⁻¹A,
// basic values, reduced costs and bound/cost vectors, grown to the
// largest problem seen by this solver value.
type dwScratch struct {
	rows    [][]float64 // m × nCols, maintained as B⁻¹A
	rhs     []float64   // B⁻¹·b during (re)factorization
	xB      []float64   // basic variable values
	d       []float64   // reduced costs
	cost    []float64   // minimization-sense costs
	upper   []float64   // per-column upper bounds (slacks: Inf, or 0 for EQ rows)
	basis   []int
	pairing []int // refactorization scratch: re-derived row → basis column
	atUpper []bool
	inBasis []bool
	rowDone []bool // refactorization pairing marker
	n       int    // structural columns
	m       int    // rows
	nCols   int
	flip    bool
	iters   int
}

func (s *DualWarm) maxIter() int {
	if s.MaxIter == 0 {
		return 200000
	}
	return s.MaxIter
}

func (s *DualWarm) blandAfter() int {
	if s.BlandAfter == 0 {
		return 5000
	}
	return s.BlandAfter
}

func (s *DualWarm) cacheSize() int {
	if s.CacheSize == 0 {
		return 8
	}
	return s.CacheSize
}

// dwViolTol is the primal bound-violation tolerance of the dual method:
// a basic value within this of its bound is considered feasible. It
// matches the 1e-7 infeasibility thresholds of the primal solvers.
const dwViolTol = 1e-7

// Solve implements Solver. It tries a warm start when a retained basis
// matches p's structure, falling back to the cold dual start (or, for
// problems the dual method cannot start, to the primal [Bounded]
// solver) whenever refactorization or dual-feasibility repair fails.
//
// The returned *Solution (including its X vector) is an arena owned by
// this DualWarm, overwritten by its next Solve call — callers that hold
// a result across solves must copy what they need first. The engine's
// balance and refine phases consume each solution before the next
// solve, which is what makes warm steady-state solves allocation-free.
func (s *DualWarm) Solve(ctx context.Context, p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	h := p.StructureHash()
	if e := s.cache[h]; e != nil && SameStructure(p, e.snap) {
		if sol, ok, err := s.solveWarm(ctx, p, e); err != nil {
			return nil, err
		} else if ok {
			s.warm++
			if sol.Status == Optimal {
				s.retain(h, e.snap, e)
			}
			return sol, nil
		}
	}

	s.cold++
	sol, hasBasis, err := s.solveCold(ctx, p)
	if err != nil {
		return nil, err
	}
	if hasBasis && sol.Status == Optimal {
		s.retain(h, p.structureSnapshot(), nil)
	}
	return sol, nil
}

// retain stores the scratch's final basis under hash h. When e is
// non-nil its buffers (and verified snapshot) are reused in place;
// otherwise a new entry with the given snapshot is inserted, evicting
// the oldest entry beyond the cache cap.
func (s *DualWarm) retain(h uint64, snap *Problem, e *dwEntry) {
	if e == nil {
		if s.cache == nil {
			s.cache = make(map[uint64]*dwEntry)
		}
		if prev := s.cache[h]; prev != nil {
			e = prev // same hash, different structure: overwrite in place
			e.snap = snap
		} else {
			e = &dwEntry{snap: snap}
			for len(s.order) >= s.cacheSize() {
				delete(s.cache, s.order[0])
				s.order = s.order[1:]
			}
			s.cache[h] = e
			s.order = append(s.order, h)
		}
	}
	st := &s.scr
	e.basis = append(e.basis[:0], st.basis...)
	e.atUpper = append(e.atUpper[:0], st.atUpper...)
}

// build lays out p in the solver's standard form: columns
// [structural | one slack per row], every GE row negated to LE so the
// matrix layout is independent of the data values, EQ slacks fixed at
// zero. It fills the scratch's rows, rhs, cost and upper vectors.
func (st *dwScratch) build(p *Problem) {
	n, m := p.NumVars(), len(p.Cons)
	st.n, st.m, st.nCols = n, m, n+m
	st.flip = p.Sense == Maximize
	st.rows = growRows(st.rows, m, st.nCols)
	st.rhs = growF(st.rhs, m)
	st.xB = growF(st.xB, m)
	st.d = growF(st.d, st.nCols)
	st.cost = growF(st.cost, st.nCols)
	st.upper = growF(st.upper, st.nCols)
	st.basis = growI(st.basis, m)
	st.atUpper = growB(st.atUpper, st.nCols)
	st.inBasis = growB(st.inBasis, st.nCols)
	st.rowDone = growB(st.rowDone, m)
	st.iters = 0

	copy(st.upper, p.Upper)
	for i, c := range p.Cons {
		row := st.rows[i]
		for j := range row {
			row[j] = 0
		}
		sign := 1.0
		if c.Rel == GE {
			sign = -1
		}
		for _, t := range c.Terms {
			row[t.Var] += sign * t.Coef
		}
		row[n+i] = 1
		st.rhs[i] = sign * c.RHS
		if c.Rel == EQ {
			st.upper[n+i] = 0 // fixed slack: the row is an equality
		} else {
			st.upper[n+i] = Inf
		}
	}
	for v := 0; v < n; v++ {
		c := p.Obj[v]
		if st.flip {
			c = -c
		}
		st.cost[v] = c
	}
	for j := n; j < st.nCols; j++ {
		st.cost[j] = 0
	}
}

// solveCold runs the dual method from the all-slack basis. It returns
// hasBasis=false when the problem was delegated to the primal solver.
func (s *DualWarm) solveCold(ctx context.Context, p *Problem) (sol *Solution, hasBasis bool, err error) {
	// The dual start needs every structural column dual feasible at one
	// of its bounds: cost ≥ 0 at lower, or a finite upper to sit at.
	for v, c := range p.Obj {
		if p.Sense == Maximize {
			c = -c
		}
		if c < 0 && math.IsInf(p.Upper[v], 1) {
			sol, err := Bounded{MaxIter: s.maxIter(), BlandAfter: s.blandAfter()}.Solve(ctx, p)
			return sol, false, err
		}
	}
	st := &s.scr
	st.build(p)
	s.beginPar()
	for j := 0; j < st.nCols; j++ {
		st.atUpper[j] = j < st.n && st.cost[j] < 0 && st.upper[j] > 0 && !math.IsInf(st.upper[j], 1)
		st.inBasis[j] = j >= st.n
	}
	for i := 0; i < st.m; i++ {
		st.basis[i] = st.n + i
	}
	copy(st.d, st.cost)
	st.computeXB()
	status, err := st.dualIterate(ctx, s.maxIter(), s.blandAfter(), &s.pp)
	if err != nil {
		return nil, false, err
	}
	return s.result(status), true, nil
}

// beginPar plans the freshly built scratch's kernel execution (inline
// or sharded; see lpPar.begin).
func (s *DualWarm) beginPar() {
	st := &s.scr
	s.pp.begin(st.m, st.nCols, st.rows, st.d, st.upper, st.inBasis, st.atUpper)
	s.pp.cost = st.cost
}

// solveWarm refactorizes the retained basis for p and resumes dual
// pivoting. ok=false (with the scratch untouched semantically) means
// the warm start is impossible — a singular refactorization or a dual
// infeasibility no bound flip can repair — and the caller should solve
// cold.
func (s *DualWarm) solveWarm(ctx context.Context, p *Problem, e *dwEntry) (sol *Solution, ok bool, err error) {
	st := &s.scr
	st.build(p)
	s.beginPar()
	copy(st.basis, e.basis)
	copy(st.atUpper, e.atUpper)
	for j := range st.inBasis[:st.nCols] {
		st.inBasis[j] = false
	}
	for _, b := range st.basis[:st.m] {
		st.inBasis[b] = true
	}
	if !st.refactorize(&s.pp) {
		return nil, false, nil
	}
	// Reprice: d = c − c_B·B⁻¹A, column-sharded (see parallel.go).
	for i, bi := range st.basis[:st.m] {
		s.pp.cbv[i] = st.cost[bi]
	}
	s.pp.runReprice(st.nCols)
	for _, bi := range st.basis[:st.m] {
		st.d[bi] = 0
	}
	// Repair dual feasibility with bound flips (possible whenever the
	// offending column has a finite opposite bound to sit at).
	for j := 0; j < st.nCols; j++ {
		if st.inBasis[j] || st.upper[j] == 0 {
			continue // basic, or fixed: any reduced cost is dual feasible
		}
		if st.atUpper[j] {
			if math.IsInf(st.upper[j], 1) || st.d[j] > feasTol {
				st.atUpper[j] = false
			}
		} else if st.d[j] < -feasTol {
			if math.IsInf(st.upper[j], 1) {
				return nil, false, nil
			}
			st.atUpper[j] = true
		}
	}
	st.computeXB()
	status, err := st.dualIterate(ctx, s.maxIter(), s.blandAfter(), &s.pp)
	if err != nil {
		return nil, false, err
	}
	return s.result(status), true, nil
}

// refactorize reduces the basis columns of the freshly built tableau to
// the identity by Gauss–Jordan elimination, turning rows into B⁻¹A and
// rhs into B⁻¹b. Row↔column pairing is re-derived with partial
// pivoting, so any nonsingular basis order works; it reports false when
// the retained basis has gone singular for the new data (it cannot —
// structure is verified — but roundoff is checked anyway). The pivot
// search and rhs updates are O(m) and stay sequential; the O(m·nCols)
// elimination runs through the column-sharded kernel.
func (st *dwScratch) refactorize(pp *lpPar) bool {
	m := st.m
	st.pairing = growI(st.pairing, m)
	for i := 0; i < m; i++ {
		st.rowDone[i] = false
	}
	for k := 0; k < m; k++ {
		col := st.basis[k]
		best, bv := -1, 1e-9
		for r := 0; r < m; r++ {
			if st.rowDone[r] {
				continue
			}
			if v := math.Abs(st.rows[r][col]); v > bv {
				bv, best = v, r
			}
		}
		if best < 0 {
			return false
		}
		r := best
		st.rowDone[r] = true
		st.pairing[r] = col
		rowR := st.rows[r]
		inv := 1 / rowR[col]
		for i := 0; i < m; i++ {
			pp.fvec[i] = st.rows[i][col]
		}
		pp.rowL, pp.skip, pp.inv, pp.withD = rowR, r, inv, false
		pp.runElim(st.nCols)
		rowR[col] = 1
		st.rhs[r] *= inv
		for i := 0; i < m; i++ {
			if i == r {
				continue
			}
			f := pp.fvec[i]
			if f == 0 {
				continue
			}
			st.rows[i][col] = 0
			st.rhs[i] -= f * st.rhs[r]
		}
	}
	copy(st.basis[:m], st.pairing[:m])
	return true
}

// computeXB evaluates the basic values for the current nonbasic bound
// sides: x_B = B⁻¹b − Σ_{nonbasic j at upper} (B⁻¹A)_j · u_j.
func (st *dwScratch) computeXB() {
	copy(st.xB, st.rhs[:st.m])
	for j := 0; j < st.nCols; j++ {
		if st.inBasis[j] || !st.atUpper[j] {
			continue
		}
		u := st.upper[j]
		if u == 0 {
			continue
		}
		for i := 0; i < st.m; i++ {
			st.xB[i] -= st.rows[i][j] * u
		}
	}
}

// dualIterate runs bounded-variable dual simplex pivots: pick the most
// bound-violating basic variable, choose the entering column by the
// dual ratio test (which preserves dual feasibility), pivot, repeat.
// Starting dual feasible, it terminates Optimal (no violations left) or
// Infeasible (a violated row with no eligible entering column certifies
// primal infeasibility); Unbounded cannot occur on the dual path.
//
// The O(nCols) ratio test and the O(m·nCols) tableau update run through
// the column-sharded kernels (parallel.go); the O(m) leaving scan and
// basic-value updates stay sequential.
func (st *dwScratch) dualIterate(ctx context.Context, maxIter, blandAfter int, pp *lpPar) (Status, error) {
	m, nCols := st.m, st.nCols
	for {
		if st.iters >= maxIter {
			return IterLimit, nil
		}
		if st.iters&ctxCheckMask == 0 {
			if err := cancel.Check(ctx, "dual-warm simplex"); err != nil {
				return IterLimit, err
			}
		}
		bland := st.iters >= blandAfter

		// Leaving row: largest bound violation (Bland: smallest basic
		// column id among the violated, for termination).
		leave, dir := -1, 0.0
		var bestViol float64
		for i := 0; i < m; i++ {
			xb := st.xB[i]
			var viol, di float64
			if xb < -dwViolTol {
				viol, di = -xb, 1 // below lower bound: must increase
			} else if ub := st.upper[st.basis[i]]; !math.IsInf(ub, 1) && xb > ub+dwViolTol {
				viol, di = xb-ub, -1 // above upper bound: must decrease
			} else {
				continue
			}
			if bland {
				if leave < 0 || st.basis[i] < st.basis[leave] {
					leave, dir = i, di
				}
			} else if viol > bestViol {
				bestViol, leave, dir = viol, i, di
			}
		}
		if leave < 0 {
			return Optimal, nil
		}

		// Dual ratio test: among nonbasic columns whose pivot sign can
		// move x_B[leave] toward its violated bound, the one with the
		// smallest |d_j|/|α_j| keeps every reduced cost on its feasible
		// side. Two order-independent passes (so per-shard candidates
		// merge exactly): the exact minimum ratio first, then — within
		// the tolerance band above it — the largest |α| (stability),
		// ties to the smallest column; Bland's rule takes the first
		// in-band column instead.
		rowL := st.rows[leave]
		pp.rowL, pp.dir, pp.bland = rowL, dir, bland
		minRatio := pp.runRatioMin(nCols)
		if math.IsInf(minRatio, 1) {
			// The violated row's basic variable cannot be moved toward its
			// bound by any admissible column: primal infeasible.
			return Infeasible, nil
		}
		pp.minRatio = minRatio
		enter := pp.runRatioPick(nCols)
		if enter < 0 {
			// Unreachable (the minimizing column is always in-band), but
			// fail safe rather than pivot on a bogus column.
			return Infeasible, nil
		}

		// Step length: drive the leaving variable exactly onto its
		// violated bound.
		alpha := rowL[enter]
		sgn, entVal := 1.0, 0.0
		if st.atUpper[enter] {
			sgn, entVal = -1, st.upper[enter]
		}
		target := 0.0
		if dir < 0 {
			target = st.upper[st.basis[leave]]
		}
		t := (st.xB[leave] - target) / (alpha * sgn)
		if t < 0 {
			t = 0 // roundoff guard: a degenerate dual pivot still swaps the basis
		}
		for i := 0; i < m; i++ {
			if i == leave {
				continue
			}
			st.xB[i] -= st.rows[i][enter] * sgn * t
			st.clampXB(i)
		}

		// Basis exchange + tableau pivot, column-sharded: fvec snapshots
		// the pivot-column multipliers first so no worker reads a column
		// another worker is rewriting, then the kernel scales rowL,
		// eliminates every other row and folds in the reduced-cost
		// update; the pivot column's exact 1/0 patch-up follows the join.
		leaveCol := st.basis[leave]
		st.atUpper[leaveCol] = dir < 0
		st.inBasis[leaveCol] = false
		st.inBasis[enter] = true
		fd := st.d[enter]
		for i := 0; i < m; i++ {
			pp.fvec[i] = st.rows[i][enter]
		}
		pp.skip, pp.inv, pp.fd, pp.withD = leave, 1/alpha, fd, true
		pp.runElim(nCols)
		rowL[enter] = 1
		for i := 0; i < m; i++ {
			if i == leave || pp.fvec[i] == 0 {
				continue
			}
			st.rows[i][enter] = 0
		}
		if fd != 0 {
			st.d[enter] = 0
		}
		st.basis[leave] = enter
		st.xB[leave] = entVal + sgn*t
		st.atUpper[enter] = false
		st.clampXB(leave)
		st.iters++
	}
}

// clampXB snaps a basic value within roundoff of a bound onto it.
func (st *dwScratch) clampXB(i int) {
	if st.xB[i] < 0 && st.xB[i] > -1e-9 {
		st.xB[i] = 0
		return
	}
	if ub := st.upper[st.basis[i]]; !math.IsInf(ub, 1) && st.xB[i] > ub && st.xB[i] < ub+1e-9 {
		st.xB[i] = ub
	}
}

// result extracts the finished scratch state into the solver's Solution
// arena (growF does not zero, so X is cleared explicitly — the contract
// the old per-solve make() provided implicitly).
func (s *DualWarm) result(status Status) *Solution {
	st := &s.scr
	s.sol = Solution{Status: status, Iterations: st.iters}
	if status != Optimal {
		return &s.sol
	}
	s.solX = growF(s.solX, st.n)
	x := s.solX
	for j := range x {
		x[j] = 0
	}
	for j := 0; j < st.n; j++ {
		if st.atUpper[j] && !st.inBasis[j] {
			x[j] = st.upper[j]
		}
	}
	for i, b := range st.basis[:st.m] {
		if b < st.n {
			x[b] = st.xB[i]
		}
	}
	obj := 0.0
	for v := 0; v < st.n; v++ {
		obj += st.cost[v] * x[v]
	}
	if st.flip {
		obj = -obj
	}
	s.sol.X = x
	s.sol.Objective = obj
	return &s.sol
}

// GrowFloats resizes a reusable float slice to length n without
// shrinking capacity, allocating only on growth. Shared by the solver
// scratch here and the balance/refine formulation arenas — one copy,
// so a future change to the growth policy cannot drift between them.
// Values beyond a previous length are stale and must be overwritten.
func GrowFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growF/growI/growB/growRows resize reusable scratch slices without
// shrinking capacity.
func growF(s []float64, n int) []float64 { return GrowFloats(s, n) }

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growRows(rows [][]float64, m, nCols int) [][]float64 {
	if cap(rows) < m {
		grown := make([][]float64, m)
		copy(grown, rows[:cap(rows)])
		rows = grown
	}
	rows = rows[:m]
	for i := range rows {
		rows[i] = growF(rows[i], nCols)
	}
	return rows
}
