package lp

import (
	"context"
	"math"
	"testing"
)

// FuzzSolverAgreement feeds randomized small LPs (decoded from raw bytes)
// to all three solvers and checks they agree on status and optimum, and
// that reported optima are feasible.
func FuzzSolverAgreement(f *testing.F) {
	f.Add([]byte{2, 1, 3, 200, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{3, 2, 0, 0, 9, 9, 9, 1, 1, 1, 0, 0, 0, 5})
	f.Add([]byte{1, 1, 255, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeLP(data)
		if p == nil {
			return
		}
		var status []Status
		var objs []float64
		for _, s := range []Solver{Dense{MaxIter: 20000}, Bounded{MaxIter: 20000}, Revised{MaxIter: 20000}} {
			sol, err := s.Solve(context.Background(), p)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if sol.Status == IterLimit {
				return // bounded work budget exceeded; skip comparisons
			}
			if sol.Status == Optimal {
				if err := CheckFeasible(p, sol.X, 1e-5); err != nil {
					t.Fatalf("%s: optimal but infeasible: %v", s.Name(), err)
				}
			}
			status = append(status, sol.Status)
			objs = append(objs, sol.Objective)
		}
		for i := 1; i < len(status); i++ {
			if status[i] != status[0] {
				t.Fatalf("status disagreement: %v", status)
			}
		}
		if status[0] == Optimal {
			for i := 1; i < len(objs); i++ {
				if math.Abs(objs[i]-objs[0]) > 1e-5*(1+math.Abs(objs[0])) {
					t.Fatalf("objective disagreement: %v", objs)
				}
			}
		}
	})
}

// decodeLP deterministically builds a small LP from fuzz bytes, or nil if
// there is not enough entropy.
func decodeLP(data []byte) *Problem {
	if len(data) < 5 {
		return nil
	}
	next := func() int {
		if len(data) == 0 {
			return 3
		}
		v := int(data[0])
		data = data[1:]
		return v
	}
	n := 1 + next()%4
	m := next() % 4
	sense := Minimize
	if next()%2 == 1 {
		sense = Maximize
	}
	p := NewProblem(sense, n)
	for v := 0; v < n; v++ {
		p.SetObjective(v, float64(next()%11-5))
		p.SetUpper(v, float64(next()%9)) // always finite: keeps brute cases bounded
	}
	for i := 0; i < m; i++ {
		var terms []Term
		for v := 0; v < n; v++ {
			c := next()%7 - 3
			if c != 0 {
				terms = append(terms, Term{Var: v, Coef: float64(c)})
			}
		}
		if len(terms) == 0 {
			terms = []Term{{Var: 0, Coef: 1}}
		}
		rel := []Rel{LE, GE, EQ}[next()%3]
		p.AddConstraint(terms, rel, float64(next()%13-4))
	}
	return p
}
