package lp

import (
	"context"
	"math"
	"strings"
	"testing"
)

// FuzzSolverAgreement feeds randomized small LPs (decoded from raw bytes)
// to every solver in the registry — not a hard-coded list, so new
// registrations are covered automatically — and checks they agree on
// status and optimum, and that reported optima are feasible. The
// "dual-warm" solver is additionally run twice back-to-back through one
// session on a same-structure perturbed problem, proving warm-start
// resumption from a retained basis agrees with cold solves.
func FuzzSolverAgreement(f *testing.F) {
	f.Add([]byte{2, 1, 3, 200, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{3, 2, 0, 0, 9, 9, 9, 1, 1, 1, 0, 0, 0, 5})
	f.Add([]byte{1, 1, 255, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeLP(data)
		if p == nil {
			return
		}
		solve := func(label string, s Solver, q *Problem) *Solution {
			sol, err := s.Solve(context.Background(), q)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if sol.Status == Optimal {
				if err := CheckFeasible(q, sol.X, 1e-5); err != nil {
					t.Fatalf("%s: optimal but infeasible: %v", label, err)
				}
			}
			return sol
		}
		agree := func(label string, sol, ref *Solution) {
			if sol.Status != ref.Status {
				t.Fatalf("%s: status %v, want %v", label, sol.Status, ref.Status)
			}
			if ref.Status == Optimal &&
				math.Abs(sol.Objective-ref.Objective) > 1e-5*(1+math.Abs(ref.Objective)) {
				t.Fatalf("%s: objective %g, want %g", label, sol.Objective, ref.Objective)
			}
		}
		// Approximate solvers promise status agreement but only a bounded
		// suboptimality window around the exact optimum: one-sided (an
		// Optimal answer cannot beat the true optimum) plus a (1+acc)
		// factor in the solver's sense.
		agreeApprox := func(label string, sol, ref *Solution, acc float64) {
			if sol.Status != ref.Status {
				t.Fatalf("%s: status %v, want %v", label, sol.Status, ref.Status)
			}
			if ref.Status != Optimal {
				return
			}
			tol := 1e-5 * (1 + math.Abs(ref.Objective))
			lo, hi := ref.Objective-tol, ref.Objective+acc*math.Abs(ref.Objective)+tol
			if p.Sense == Maximize {
				lo, hi = ref.Objective-acc*math.Abs(ref.Objective)-tol, ref.Objective+tol
			}
			if sol.Objective < lo || sol.Objective > hi {
				t.Fatalf("%s: objective %g outside [%g, %g] (exact %g, acc %g)",
					label, sol.Objective, lo, hi, ref.Objective, acc)
			}
		}

		var ref *Solution
		for _, name := range Names() {
			// Tests run before fuzz seed corpora and may leave throwaway
			// "test-…" registrations behind (the registry has no
			// unregister; see TestRegistryConcurrentLookupDuringRegister)
			// — skip them so each input exercises the real solvers.
			if strings.HasPrefix(name, "test-") {
				continue
			}
			s, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			sol := solve(name, s, p)
			if sol.Status == IterLimit {
				return // bounded work budget exceeded; skip comparisons
			}
			if ref == nil {
				ref = sol
			} else if as, ok := s.(ApproximateSolver); ok {
				agreeApprox(name, sol, ref, as.TargetAccuracy())
			} else {
				agree(name, sol, ref)
			}
		}

		// Warm-start round trip: one dual-warm session solves p (cold,
		// populating its basis cache) and then a same-structure
		// perturbation of p (resuming from the retained basis). The warm
		// result must agree with a cold solve of the perturbed problem.
		dw, err := Lookup("dual-warm")
		if err != nil {
			t.Fatal(err)
		}
		ses, ok := Session(dw).(*DualWarm)
		if !ok {
			t.Fatalf("dual-warm session is %T, want *DualWarm", Session(dw))
		}
		p2 := perturbLP(p, data, false) // new RHS and bounds, same costs
		p3 := perturbLP(p, data, true)  // new costs too
		// Session solutions are arenas overwritten by the session's next
		// Solve, so snapshot the first solve's status before re-solving.
		firstStatus := solve("dual-warm/session-first", ses, p).Status
		warm := solve("dual-warm/session-warm", ses, p2)
		cold := solve("dual-warm/fresh-cold", Session(dw), p2)
		refP2 := solve("bounded/perturbed", Bounded{MaxIter: 20000}, p2)
		if firstStatus == IterLimit || warm.Status == IterLimit ||
			cold.Status == IterLimit || refP2.Status == IterLimit {
			return
		}
		agree("dual-warm/session-warm vs cold", warm, cold)
		agree("dual-warm/session-warm vs bounded", warm, refP2)
		if firstStatus == Optimal {
			// Unchanged costs keep the retained basis dual feasible, so the
			// second solve must have resumed from it rather than re-solving
			// cold — this is the pipeline's successive-balance-stage shape.
			if warmCount, _ := ses.Counts(); warmCount != 1 {
				t.Fatalf("session did not warm-start: warm count %d", warmCount)
			}
		}
		// A cost perturbation may legitimately defeat the warm start (the
		// solver falls back to cold when bound flips cannot repair dual
		// feasibility), but the answer must still agree with a cold solver.
		costWarm := solve("dual-warm/session-cost-perturbed", ses, p3)
		refP3 := solve("bounded/cost-perturbed", Bounded{MaxIter: 20000}, p3)
		if costWarm.Status != IterLimit && refP3.Status != IterLimit {
			agree("dual-warm/session-cost-perturbed vs bounded", costWarm, refP3)
		}
	})
}

// perturbLP derives a same-structure problem — identical constraint
// matrix, different RHS and bound values (plus, when costs is set,
// different objective coefficients) — deterministically from the fuzz
// input. With costs false it reproduces the exact shape of the
// pipeline's successive balance stages, where warm starting is
// guaranteed to apply.
func perturbLP(p *Problem, data []byte, costs bool) *Problem {
	seed := uint64(len(data)) + 0x9e3779b9
	for _, b := range data {
		seed = seed*131 + uint64(b)
	}
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	q := &Problem{
		Sense: p.Sense,
		Obj:   append([]float64(nil), p.Obj...),
		Upper: append([]float64(nil), p.Upper...),
		Cons:  append([]Constraint(nil), p.Cons...),
	}
	if costs {
		for v := range q.Obj {
			q.Obj[v] = float64(int(next()%11) - 5)
		}
	}
	for v := range q.Upper {
		q.Upper[v] = float64(next() % 9) // finite, like decodeLP's bounds
	}
	for i := range q.Cons {
		q.Cons[i].RHS = float64(int(next()%13) - 4)
	}
	return q
}

// FuzzMWUQualityBound feeds randomized balance/refine-shaped LPs — the
// interval-node/±1-arc instances the pipeline's balance and refinement
// phases emit — to the approximate "mwu" solver and pins its quality
// contract against the exact dual-warm optimum: statuses agree exactly,
// Optimal solutions are primal-feasible, native (certified) answers lie
// within the solver's (1+eps) window, and fallback answers are exact.
// Both the default accuracy and a tighter WithAccuracy(0.01) session are
// exercised on every input.
func FuzzMWUQualityBound(f *testing.F) {
	f.Add([]byte{3, 4, 0, 1, 2, 0, 1, 3, 1, 2, 0, 2, 1, 1, 0, 3, 2, 1})
	f.Add([]byte{2, 5, 1, 1, 4, 0, 1, 3, 1, 0, 2, 2, 0, 1, 1, 1, 2, 0, 4})
	f.Add([]byte{4, 6, 0, 2, 1, 0, 1, 2, 3, 0, 0, 2, 1, 3, 2, 9, 9, 1, 0, 5, 2})
	f.Add([]byte{1, 1, 1, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeGraphLP(data)
		if p == nil {
			return
		}
		ref, err := Session(NewDualWarm()).Solve(context.Background(), p)
		if err != nil {
			t.Fatalf("dual-warm: %v", err)
		}
		if ref.Status == IterLimit {
			return // bounded work budget exceeded; no reference optimum
		}
		for _, eps := range []float64{0, 0.01} { // 0 = solver default
			ses, ok := Session(NewMWU(), WithAccuracy(eps)).(*MWU)
			if !ok {
				t.Fatalf("mwu session is %T, want *MWU", Session(NewMWU()))
			}
			sol, err := ses.Solve(context.Background(), p)
			if err != nil {
				t.Fatalf("mwu(eps=%g): %v", eps, err)
			}
			if sol.Status != ref.Status {
				t.Fatalf("mwu(eps=%g): status %v, want %v", eps, sol.Status, ref.Status)
			}
			if ref.Status != Optimal {
				continue
			}
			if err := CheckFeasible(p, sol.X, 1e-6); err != nil {
				t.Fatalf("mwu(eps=%g): optimal but infeasible: %v", eps, err)
			}
			acc := ses.TargetAccuracy()
			native, fallbacks := ses.Counts()
			if native+fallbacks != 1 {
				t.Fatalf("mwu(eps=%g): counts native=%d fallbacks=%d after one solve",
					eps, native, fallbacks)
			}
			if fallbacks == 1 {
				acc = 0 // the fallback path is exact
			}
			tol := 1e-5 * (1 + math.Abs(ref.Objective))
			lo, hi := ref.Objective-tol, ref.Objective+acc*math.Abs(ref.Objective)+tol
			if p.Sense == Maximize {
				lo, hi = ref.Objective-acc*math.Abs(ref.Objective)-tol, ref.Objective+tol
			}
			if sol.Objective < lo || sol.Objective > hi {
				t.Fatalf("mwu(eps=%g, fallbacks=%d): objective %g outside [%g, %g] (exact %g)",
					eps, fallbacks, sol.Objective, lo, hi, ref.Objective)
			}
		}
	})
}

// decodeGraphLP deterministically builds a balance/refine-shaped LP from
// fuzz bytes: a uniform non-negative objective over integral-bounded arc
// variables, and per-node rows whose terms are ±1 arc incidences — EQ
// rows (the refine phase's shape), LE rows, and adjacent GE/LE pairs
// sharing one term slice (the balance phase's interval shape). Some arcs
// deliberately dangle (missing endpoints) and some inputs produce
// degenerate or contradictory rows, so the instances cover the native
// MWU path, both exact fast paths and the fallback detector. Returns nil
// when there is not enough entropy.
func decodeGraphLP(data []byte) *Problem {
	if len(data) < 6 {
		return nil
	}
	next := func() int {
		if len(data) == 0 {
			return 1
		}
		v := int(data[0])
		data = data[1:]
		return v
	}
	nodes := 1 + next()%4
	narcs := 1 + next()%6
	sense := Minimize
	if next()%2 == 1 {
		sense = Maximize
	}
	gamma := float64(next() % 3) // uniform objective coefficient ≥ 0
	p := NewProblem(sense, narcs)
	rows := make([][]Term, nodes)
	for a := 0; a < narcs; a++ {
		p.SetObjective(a, gamma)
		p.SetUpper(a, float64(next()%5)) // integral, finite
		tl := next() % (nodes + 1)       // nodes = dangling endpoint
		hd := next() % (nodes + 1)
		if tl < nodes {
			rows[tl] = append(rows[tl], Term{Var: a, Coef: 1})
		}
		if hd < nodes && hd != tl {
			rows[hd] = append(rows[hd], Term{Var: a, Coef: -1})
		}
	}
	for g := 0; g < nodes; g++ {
		if len(rows[g]) == 0 {
			continue
		}
		switch next() % 3 {
		case 0: // refine shape: conservation-style equality
			p.AddConstraint(rows[g], EQ, float64(next()%4-1))
		case 1:
			p.AddConstraint(rows[g], LE, float64(next()%4))
		default: // balance shape: GE/LE interval pair on one term slice
			lo := float64(next()%3 - 1)
			p.AddConstraint(rows[g], GE, lo)
			p.AddConstraint(rows[g], LE, lo+float64(next()%3))
		}
	}
	return p
}

// decodeLP deterministically builds a small LP from fuzz bytes, or nil if
// there is not enough entropy.
func decodeLP(data []byte) *Problem {
	if len(data) < 5 {
		return nil
	}
	next := func() int {
		if len(data) == 0 {
			return 3
		}
		v := int(data[0])
		data = data[1:]
		return v
	}
	n := 1 + next()%4
	m := next() % 4
	sense := Minimize
	if next()%2 == 1 {
		sense = Maximize
	}
	p := NewProblem(sense, n)
	for v := 0; v < n; v++ {
		p.SetObjective(v, float64(next()%11-5))
		p.SetUpper(v, float64(next()%9)) // always finite: keeps brute cases bounded
	}
	for i := 0; i < m; i++ {
		var terms []Term
		for v := 0; v < n; v++ {
			c := next()%7 - 3
			if c != 0 {
				terms = append(terms, Term{Var: v, Coef: float64(c)})
			}
		}
		if len(terms) == 0 {
			terms = []Term{{Var: 0, Coef: 1}}
		}
		rel := []Rel{LE, GE, EQ}[next()%3]
		p.AddConstraint(terms, rel, float64(next()%13-4))
	}
	return p
}
