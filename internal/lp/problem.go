// Package lp implements the linear-programming layer of the incremental
// partitioner: a small modeling API plus four simplex solvers.
//
//   - Dense: the classical two-phase dense-tableau simplex. This is the
//     solver the paper uses ("We have used a dense version of simplex
//     algorithm").
//   - Bounded: a bounded-variable simplex that keeps 0 ≤ x ≤ u implicit
//     instead of materializing upper bounds as rows — the natural
//     improvement for the paper's LPs, whose constraint count is dominated
//     by bounds.
//   - Revised: a sparse revised simplex with an explicit basis inverse,
//     realizing the paper's observation that "the matrix is highly sparse
//     [and] this cost can be substantially reduced by using a sparse
//     representation".
//   - DualWarm: a warm-started bounded-variable dual simplex that retains
//     the optimal basis of each LP structure it solves and resumes from it
//     when a later problem differs only in RHS, bounds or costs — the
//     incremental shape of the pipeline's successive balance stages and
//     refinement rounds.
//
// All solvers return basic optimal solutions; on the network-flow-shaped
// problems built by the balance and refine phases those are integral by
// total unimodularity.
package lp

import (
	"context"
	"fmt"
	"math"
)

// Sense is the optimization direction.
type Sense int

const (
	Minimize Sense = iota
	Maximize
)

// Rel is a constraint relation.
type Rel int

const (
	LE Rel = iota // ≤
	EQ            // =
	GE            // ≥
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	}
	return "?"
}

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a sparse linear constraint Σ Coef·x Rel RHS.
type Constraint struct {
	Terms []Term
	Rel   Rel
	RHS   float64
}

// Inf marks an absent upper bound.
var Inf = math.Inf(1)

// Problem is a linear program over variables x ≥ 0 with optional upper
// bounds. Build one with NewProblem and the Add* methods.
type Problem struct {
	Sense Sense
	Obj   []float64    // objective coefficients, len = NumVars
	Upper []float64    // per-variable upper bounds (Inf if free above)
	Cons  []Constraint // general constraints
	Names []string     // optional variable names for diagnostics
}

// NewProblem returns a problem with n variables, zero objective and no
// constraints. All variables are bounded below by 0 and unbounded above.
func NewProblem(sense Sense, n int) *Problem {
	p := &Problem{
		Sense: sense,
		Obj:   make([]float64, n),
		Upper: make([]float64, n),
	}
	for i := range p.Upper {
		p.Upper[i] = Inf
	}
	return p
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.Obj) }

// SetObjective sets the objective coefficient of variable v.
func (p *Problem) SetObjective(v int, c float64) { p.Obj[v] = c }

// SetUpper sets the upper bound of variable v.
func (p *Problem) SetUpper(v int, u float64) { p.Upper[v] = u }

// AddConstraint appends a general constraint.
func (p *Problem) AddConstraint(terms []Term, rel Rel, rhs float64) {
	p.Cons = append(p.Cons, Constraint{Terms: terms, Rel: rel, RHS: rhs})
}

// Validate checks indices and values, returning the first problem found.
func (p *Problem) Validate() error {
	n := p.NumVars()
	if len(p.Upper) != n {
		return fmt.Errorf("lp: %d upper bounds for %d variables", len(p.Upper), n)
	}
	for v, u := range p.Upper {
		if u < 0 {
			return fmt.Errorf("lp: variable %d has negative upper bound %g", v, u)
		}
	}
	for i, c := range p.Cons {
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= n {
				return fmt.Errorf("lp: constraint %d references variable %d (have %d)", i, t.Var, n)
			}
			if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				return fmt.Errorf("lp: constraint %d has non-finite coefficient", i)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("lp: constraint %d has non-finite RHS", i)
		}
	}
	return nil
}

// StructureHash hashes p's constraint-matrix structure: the sense, the
// dimensions, every constraint's relation and sparse terms (indices and
// coefficients), and the finiteness pattern of the upper bounds. The
// objective, RHS and bound *values* are deliberately excluded: two
// problems with equal structure (confirm with [SameStructure]) differ
// only in data a warm-started solver can absorb by re-pricing a retained
// basis, which is exactly how the "dual-warm" solver keys its basis
// cache. The hash is FNV-1a over the structural fields.
func (p *Problem) StructureHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(p.Sense))
	mix(uint64(p.NumVars()))
	mix(uint64(len(p.Cons)))
	for _, c := range p.Cons {
		mix(uint64(c.Rel))
		mix(uint64(len(c.Terms)))
		for _, t := range c.Terms {
			mix(uint64(t.Var))
			mix(math.Float64bits(t.Coef))
		}
	}
	for _, u := range p.Upper {
		if math.IsInf(u, 1) {
			mix(1)
		} else {
			mix(0)
		}
	}
	return h
}

// SameStructure reports whether p and q share constraint-matrix
// structure: equal sense and dimensions, identical constraint relations
// and sparse terms, and matching upper-bound finiteness. Objective, RHS
// and finite bound values may differ — those are the perturbations a
// warm-started solver absorbs. It is the exact check behind the hash
// returned by [Problem.StructureHash].
func SameStructure(p, q *Problem) bool {
	if p.Sense != q.Sense || p.NumVars() != q.NumVars() || len(p.Cons) != len(q.Cons) {
		return false
	}
	for i := range p.Cons {
		cp, cq := &p.Cons[i], &q.Cons[i]
		if cp.Rel != cq.Rel || len(cp.Terms) != len(cq.Terms) {
			return false
		}
		for k := range cp.Terms {
			if cp.Terms[k] != cq.Terms[k] {
				return false
			}
		}
	}
	for v := range p.Upper {
		if math.IsInf(p.Upper[v], 1) != math.IsInf(q.Upper[v], 1) {
			return false
		}
	}
	return true
}

// structureSnapshot deep-copies the structural fields of p — everything
// [SameStructure] compares — so a basis cache can verify a later problem
// against the one that produced the basis without retaining the caller's
// (possibly arena-reused) Problem.
func (p *Problem) structureSnapshot() *Problem {
	q := &Problem{
		Sense: p.Sense,
		Obj:   make([]float64, p.NumVars()),
		Upper: append([]float64(nil), p.Upper...),
		Cons:  make([]Constraint, len(p.Cons)),
	}
	for i, c := range p.Cons {
		q.Cons[i] = Constraint{
			Terms: append([]Term(nil), c.Terms...),
			Rel:   c.Rel,
		}
	}
	return q
}

// Status reports the outcome of a solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	X          []float64 // variable values (valid when Status == Optimal)
	Objective  float64   // objective value in the problem's own sense
	Iterations int       // simplex pivots performed
}

// Solver is a simplex implementation. Implementations must honor the
// context: long pivot loops poll it periodically and abort with an error
// matching cancel.ErrCanceled (wrapping context.Cause) once it is done.
type Solver interface {
	// Solve optimizes p. A non-nil error reports a malformed problem, a
	// canceled context, or an internal failure; Infeasible/Unbounded are
	// reported via Status with a nil error.
	Solve(ctx context.Context, p *Problem) (*Solution, error)
	// Name identifies the solver in benchmarks and stats.
	Name() string
}

// feasTol is the feasibility/optimality tolerance shared by the solvers.
const feasTol = 1e-9

// ctxCheckMask controls how often the pivot loops poll their context:
// every (ctxCheckMask+1) iterations. A power-of-two mask keeps the check
// a single AND on the hot path.
const ctxCheckMask = 255

// CheckFeasible verifies that x satisfies all bounds and constraints of p
// within tol, returning a descriptive error for the first violation. Used
// by tests and by the movers before acting on an LP solution.
func CheckFeasible(p *Problem, x []float64, tol float64) error {
	if len(x) != p.NumVars() {
		return fmt.Errorf("lp: solution has %d values for %d variables", len(x), p.NumVars())
	}
	for v, xv := range x {
		if xv < -tol {
			return fmt.Errorf("lp: x[%d] = %g violates x ≥ 0", v, xv)
		}
		if xv > p.Upper[v]+tol {
			return fmt.Errorf("lp: x[%d] = %g violates upper bound %g", v, xv, p.Upper[v])
		}
	}
	for i, c := range p.Cons {
		var lhs float64
		for _, t := range c.Terms {
			lhs += t.Coef * x[t.Var]
		}
		switch c.Rel {
		case LE:
			if lhs > c.RHS+tol {
				return fmt.Errorf("lp: constraint %d: %g <= %g violated", i, lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-tol {
				return fmt.Errorf("lp: constraint %d: %g >= %g violated", i, lhs, c.RHS)
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > tol {
				return fmt.Errorf("lp: constraint %d: %g = %g violated", i, lhs, c.RHS)
			}
		}
	}
	return nil
}

// Objective evaluates p's objective at x.
func Objective(p *Problem, x []float64) float64 {
	var s float64
	for v, c := range p.Obj {
		s += c * x[v]
	}
	return s
}
