package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// mustSolve is a test helper for one solve with error and status checks.
func mustSolve(t *testing.T, s Solver, p *Problem) *Solution {
	t.Helper()
	sol, err := s.Solve(context.Background(), p)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	return sol
}

// TestDualWarmResolveSameProblemZeroPivots: re-solving the identical
// problem through one session must resume from the retained basis and
// find it already optimal — zero pivots.
func TestDualWarmResolveSameProblemZeroPivots(t *testing.T) {
	s := NewDualWarm()
	p := paperFig5Problem()
	first := mustSolve(t, s, p)
	if first.Status != Optimal {
		t.Fatalf("status %v", first.Status)
	}
	if first.Iterations == 0 {
		t.Fatal("cold solve took 0 pivots; the warm comparison below would be vacuous")
	}
	// first aliases the session's Solution arena; snapshot before re-solving.
	firstObj := first.Objective
	again := mustSolve(t, s, p)
	if again.Status != Optimal || math.Abs(again.Objective-firstObj) > 1e-9 {
		t.Fatalf("re-solve diverged: %v obj %g", again.Status, again.Objective)
	}
	if again.Iterations != 0 {
		t.Fatalf("warm re-solve took %d pivots, want 0", again.Iterations)
	}
	if warm, cold := s.Counts(); warm != 1 || cold != 1 {
		t.Fatalf("counts warm=%d cold=%d, want 1/1", warm, cold)
	}
}

// TestDualWarmPerturbedRHSFewerPivots is the lp-level pivot regression
// guard: after a cold solve, a same-structure problem with perturbed
// RHS and bounds must warm-start and use strictly fewer pivots than the
// cold solve of that same perturbed problem.
func TestDualWarmPerturbedRHSFewerPivots(t *testing.T) {
	s := NewDualWarm()
	p := paperFig5Problem()
	if sol := mustSolve(t, s, p); sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}

	// The next balance stage: same pairs, drifted surpluses and δ bounds.
	q := paperFig5Problem()
	surplus := []float64{6, 2, -3, -5}
	for j := range surplus {
		q.Cons[j].RHS = surplus[j]
	}
	q.Upper[0], q.Upper[3] = 7, 8

	warmSol := mustSolve(t, s, q)
	coldSol := mustSolve(t, NewDualWarm(), q)
	if warmSol.Status != Optimal || coldSol.Status != Optimal {
		t.Fatalf("statuses %v / %v", warmSol.Status, coldSol.Status)
	}
	if math.Abs(warmSol.Objective-coldSol.Objective) > 1e-9 {
		t.Fatalf("objectives diverge: warm %g cold %g", warmSol.Objective, coldSol.Objective)
	}
	if err := CheckFeasible(q, warmSol.X, 1e-8); err != nil {
		t.Fatal(err)
	}
	if warmSol.Iterations >= coldSol.Iterations {
		t.Fatalf("warm solve took %d pivots, cold %d — warm must be strictly cheaper",
			warmSol.Iterations, coldSol.Iterations)
	}
	if warm, _ := s.Counts(); warm != 1 {
		t.Fatalf("warm count %d, want 1", warm)
	}
}

// TestDualWarmSessionIsolation: sessions forked from one template share
// no basis state — a solve in one session never warms another.
func TestDualWarmSessionIsolation(t *testing.T) {
	tmpl := NewDualWarm()
	s1, ok := Session(tmpl).(*DualWarm)
	if !ok {
		t.Fatal("Session did not fork a *DualWarm")
	}
	s2 := Session(tmpl).(*DualWarm)
	if s1 == tmpl || s1 == s2 {
		t.Fatal("sessions must be distinct instances")
	}
	p := paperFig5Problem()
	mustSolve(t, s1, p)
	mustSolve(t, s2, p)
	if warm, cold := s2.Counts(); warm != 0 || cold != 1 {
		t.Fatalf("second session counts warm=%d cold=%d, want 0/1 (no shared basis)", warm, cold)
	}
	if warm, cold := tmpl.Counts(); warm != 0 || cold != 0 {
		t.Fatalf("template counts warm=%d cold=%d, want 0/0 (untouched)", warm, cold)
	}
}

// TestDualWarmInterleavedStructures: the cache must hold several
// structures at once — the engine interleaves balance (minimize) and
// refine (maximize) LPs, and each should stay warm across the other.
func TestDualWarmInterleavedStructures(t *testing.T) {
	s := NewDualWarm()
	bal := paperFig5Problem()
	ref := paperFig8Problem()
	mustSolve(t, s, bal)
	mustSolve(t, s, ref)
	mustSolve(t, s, bal)
	mustSolve(t, s, ref)
	if warm, cold := s.Counts(); warm != 2 || cold != 2 {
		t.Fatalf("counts warm=%d cold=%d, want 2/2 (both structures cached)", warm, cold)
	}
}

// TestDualWarmCacheEviction: exceeding the cache cap evicts the oldest
// structure, which then solves cold again — no unbounded growth.
func TestDualWarmCacheEviction(t *testing.T) {
	s := &DualWarm{CacheSize: 2}
	mk := func(n int) *Problem {
		p := NewProblem(Minimize, n)
		for v := 0; v < n; v++ {
			p.SetObjective(v, 1)
			p.SetUpper(v, 4)
		}
		terms := make([]Term, n)
		for v := range terms {
			terms[v] = Term{Var: v, Coef: 1}
		}
		p.AddConstraint(terms, GE, float64(n))
		return p
	}
	mustSolve(t, s, mk(2))
	mustSolve(t, s, mk(3))
	mustSolve(t, s, mk(4)) // evicts mk(2)'s basis
	mustSolve(t, s, mk(2))
	if warm, cold := s.Counts(); warm != 0 || cold != 4 {
		t.Fatalf("counts warm=%d cold=%d, want 0/4 (evicted structure re-solves cold)", warm, cold)
	}
	if len(s.cache) > 2 || len(s.order) > 2 {
		t.Fatalf("cache holds %d entries (order %d), cap is 2", len(s.cache), len(s.order))
	}
	mustSolve(t, s, mk(2))
	if warm, _ := s.Counts(); warm != 1 {
		t.Fatalf("re-inserted structure did not warm-start")
	}
}

// TestDualWarmDelegatesUnstartable: a negative cost on an unbounded
// variable defeats the dual start; the solver must delegate to the
// primal path, answer correctly, and retain nothing.
func TestDualWarmDelegatesUnstartable(t *testing.T) {
	s := NewDualWarm()
	// min -x s.t. x <= 5 (as a row, x unbounded above as a variable).
	p := NewProblem(Minimize, 1)
	p.SetObjective(0, -1)
	p.AddConstraint([]Term{{0, 1}}, LE, 5)
	sol := mustSolve(t, s, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-(-5)) > 1e-9 {
		t.Fatalf("got %v obj %g, want optimal -5", sol.Status, sol.Objective)
	}
	if len(s.cache) != 0 {
		t.Fatal("delegated solve must not retain a basis")
	}
	// And a genuinely unbounded one.
	u := NewProblem(Maximize, 1)
	u.SetObjective(0, 1)
	u.AddConstraint([]Term{{0, 1}}, GE, 1)
	if sol := mustSolve(t, s, u); sol.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

// TestDualWarmRandomWarmChains drives long chains of same-structure
// solves with drifting RHS/bounds through one session, cross-checking
// every warm result against a cold Bounded solve — the statistical
// version of the pipeline's stage sequence.
func TestDualWarmRandomWarmChains(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	for chain := 0; chain < 30; chain++ {
		s := NewDualWarm()
		p := randomFlowLP(rng, 3+rng.Intn(3))
		warmPivots, coldPivots := 0, 0
		for step := 0; step < 8; step++ {
			if step > 0 {
				for v := range p.Upper {
					p.Upper[v] = float64(rng.Intn(10))
				}
				// Fresh zero-sum surpluses over the same constraint rows.
				total := 0
				for i := 0; i < len(p.Cons)-1; i++ {
					r := rng.Intn(7) - 3
					p.Cons[i].RHS = float64(r)
					total += r
				}
				p.Cons[len(p.Cons)-1].RHS = -float64(total)
			}
			got := mustSolve(t, s, p)
			want := mustSolve(t, Bounded{}, p)
			if got.Status != want.Status {
				t.Fatalf("chain %d step %d: status %v, want %v", chain, step, got.Status, want.Status)
			}
			if got.Status == Optimal {
				if math.Abs(got.Objective-want.Objective) > 1e-6 {
					t.Fatalf("chain %d step %d: obj %g, want %g", chain, step, got.Objective, want.Objective)
				}
				if err := CheckFeasible(p, got.X, 1e-6); err != nil {
					t.Fatalf("chain %d step %d: %v", chain, step, err)
				}
			}
			if step == 0 {
				coldPivots = got.Iterations
			} else {
				warmPivots += got.Iterations
			}
		}
		_ = coldPivots
		_ = warmPivots
	}
}

// TestStructureHelpers: StructureHash/SameStructure must ignore exactly
// the warm-startable differences and nothing else.
func TestStructureHelpers(t *testing.T) {
	p := paperFig5Problem()
	q := paperFig5Problem()
	if !SameStructure(p, q) || p.StructureHash() != q.StructureHash() {
		t.Fatal("identical problems must share structure")
	}
	q.Cons[0].RHS = 99
	q.Upper[2] = 1
	q.Obj[1] = -7
	if !SameStructure(p, q) || p.StructureHash() != q.StructureHash() {
		t.Fatal("RHS/bound/objective values must not affect structure")
	}
	q.Upper[2] = Inf
	if SameStructure(p, q) {
		t.Fatal("bound finiteness is structural")
	}
	q = paperFig5Problem()
	q.Cons[0].Rel = LE
	if SameStructure(p, q) {
		t.Fatal("relations are structural")
	}
	q = paperFig5Problem()
	q.Cons[0].Terms[0].Coef = 2
	if SameStructure(p, q) {
		t.Fatal("coefficients are structural")
	}
}
