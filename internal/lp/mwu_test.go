package lp

import (
	"context"
	"math"
	"testing"

	"repro/internal/par"
)

// mwuBalanceLP builds a deterministic balance-shaped instance: minimize
// γ·Σx over integral-bounded arcs between interval nodes, the exact
// shape the balance phase emits (GE/LE pairs sharing one term slice).
// Overloaded nodes must ship at least `surplus` units to underloaded
// ones, so the optimum is positive and the MWU ladder has real work.
func mwuBalanceLP(nodes, arcsPerNode, surplus int) *Problem {
	n := nodes * arcsPerNode
	p := NewProblem(Minimize, n)
	rows := make([][]Term, nodes)
	for a := 0; a < n; a++ {
		p.SetObjective(a, 1)
		p.SetUpper(a, float64(2+a%3))
		tl := a % nodes
		hd := (a*7 + 3) % nodes
		rows[tl] = append(rows[tl], Term{Var: a, Coef: 1})
		if hd != tl {
			rows[hd] = append(rows[hd], Term{Var: a, Coef: -1})
		}
	}
	for g := 0; g < nodes; g++ {
		// Alternate surplus (must export ≥ surplus) and deficit (may
		// absorb up to surplus) nodes, as interval pairs.
		if g%2 == 0 {
			p.AddConstraint(rows[g], GE, float64(surplus))
			p.AddConstraint(rows[g], LE, float64(surplus+2))
		} else {
			p.AddConstraint(rows[g], GE, float64(-surplus-2))
			p.AddConstraint(rows[g], LE, 0)
		}
	}
	return p
}

// mwuChainLP builds `chains` disjoint forwarding chains of `length`
// nodes: the first node of each chain must export k units through a
// path of EQ-0 relay nodes to the last node. The true optimum is
// chains·k·(length-1) hops while the combinatorial seed bound is only
// chains·k, so the bracket cannot close from the repair incumbent alone
// — the MWU ladder has to earn every certificate. With enough chains
// the arc count spans multiple oracle blocks, exercising the sharded
// kernels.
func mwuChainLP(chains, length, k int) *Problem {
	arcs := chains * (length - 1)
	p := NewProblem(Minimize, arcs)
	for a := 0; a < arcs; a++ {
		p.SetObjective(a, 1)
		p.SetUpper(a, float64(k))
	}
	for c := 0; c < chains; c++ {
		base := c * (length - 1)
		for i := 0; i < length; i++ {
			var terms []Term
			if i > 0 {
				terms = append(terms, Term{Var: base + i - 1, Coef: -1})
			}
			if i < length-1 {
				terms = append(terms, Term{Var: base + i, Coef: 1})
			}
			switch i {
			case 0:
				p.AddConstraint(terms, GE, float64(k))
			case length - 1:
				p.AddConstraint(terms, GE, float64(-k))
				p.AddConstraint(terms, LE, 0)
			default:
				p.AddConstraint(terms, EQ, 0)
			}
		}
	}
	return p
}

// TestMWURegistryAndAccuracy: "mwu" resolves via the registry as a
// session solver, WithAccuracy configures the forked session (and only
// the session), and the accuracy default is 0.05.
func TestMWURegistryAndAccuracy(t *testing.T) {
	s, err := Lookup("mwu")
	if err != nil {
		t.Fatal(err)
	}
	tmpl, ok := s.(*MWU)
	if !ok {
		t.Fatalf("registered mwu is %T, want *MWU", s)
	}
	if got := tmpl.TargetAccuracy(); got != 0.05 {
		t.Fatalf("default accuracy %g, want 0.05", got)
	}
	ses, ok := Session(s, WithAccuracy(0.02)).(*MWU)
	if !ok || ses == tmpl {
		t.Fatalf("session not forked: %T", ses)
	}
	if got := ses.TargetAccuracy(); got != 0.02 {
		t.Fatalf("session accuracy %g, want 0.02", got)
	}
	if got := tmpl.TargetAccuracy(); got != 0.05 {
		t.Fatalf("WithAccuracy leaked into the template: %g", got)
	}
	// Non-positive eps leaves the default in place.
	if got := Session(s, WithAccuracy(-1)).(*MWU).TargetAccuracy(); got != 0.05 {
		t.Fatalf("WithAccuracy(-1) changed accuracy to %g", got)
	}
	// Exact solvers ignore the option.
	if got := Session(Revised{}, WithAccuracy(0.02)); got != (Revised{}) {
		t.Fatalf("stateless solver changed by WithAccuracy: %T", got)
	}
}

// TestMWUFastPathsExact: the structurally-exact answers — zero-feasible
// minimization, γ = 0, and contradiction-detected infeasibility — come
// from the MWU path (no fallback) and match the exact solver.
func TestMWUFastPathsExact(t *testing.T) {
	ctx := context.Background()

	// Zero-feasible minimization: all intervals contain 0 → x = 0.
	p := NewProblem(Minimize, 2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.SetUpper(0, 3)
	p.SetUpper(1, 3)
	p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: -1}}, LE, 2)
	ses := Session(NewMWU()).(*MWU)
	sol, err := ses.Solve(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("zero-feasible min: %v obj %g, want Optimal 0", sol.Status, sol.Objective)
	}
	if native, fb := ses.Counts(); native != 1 || fb != 0 {
		t.Fatalf("zero-feasible min took the fallback: native=%d fallbacks=%d", native, fb)
	}

	// γ = 0: any feasible point is optimal with objective 0.
	q := mwuBalanceLP(4, 3, 1)
	for a := 0; a < q.NumVars(); a++ {
		q.SetObjective(a, 0)
	}
	ses = Session(NewMWU()).(*MWU)
	sol, err = ses.Solve(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("γ=0: %v obj %g, want Optimal 0", sol.Status, sol.Objective)
	}
	if err := CheckFeasible(q, sol.X, 1e-9); err != nil {
		t.Fatalf("γ=0 solution infeasible: %v", err)
	}
	if native, fb := ses.Counts(); native != 1 || fb != 0 {
		t.Fatalf("γ=0 took the fallback: native=%d fallbacks=%d", native, fb)
	}

	// Empty-row contradiction (the balance phase's deliberately
	// infeasible stage shape) is detected exactly.
	r := NewProblem(Minimize, 1)
	r.SetObjective(0, 1)
	r.SetUpper(0, 1)
	r.AddConstraint(nil, GE, 2)
	ses = Session(NewMWU()).(*MWU)
	sol, err = ses.Solve(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("contradiction: %v, want Infeasible", sol.Status)
	}
	if native, fb := ses.Counts(); native != 1 || fb != 0 {
		t.Fatalf("contradiction took the fallback: native=%d fallbacks=%d", native, fb)
	}
}

// TestMWUFallbackExact: a non-graph-shaped LP (non-uniform objective)
// must take the exact fallback, count it, and reproduce the dual-warm
// answer exactly.
func TestMWUFallbackExact(t *testing.T) {
	p := NewProblem(Maximize, 3)
	p.SetObjective(0, 2)
	p.SetObjective(1, 1)
	p.SetObjective(2, 3)
	for v := 0; v < 3; v++ {
		p.SetUpper(v, 4)
	}
	p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 2}, {Var: 2, Coef: 1}}, LE, 6)

	ses := Session(NewMWU()).(*MWU)
	sol, err := ses.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Session(NewDualWarm()).Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ref.Status || sol.Objective != ref.Objective {
		t.Fatalf("fallback: %v obj %g, want %v obj %g", sol.Status, sol.Objective, ref.Status, ref.Objective)
	}
	if native, fb := ses.Counts(); native != 0 || fb != 1 {
		t.Fatalf("counts native=%d fallbacks=%d, want 0/1", native, fb)
	}
	if ses.Fallbacks() != 1 {
		t.Fatalf("Fallbacks() = %d, want 1", ses.Fallbacks())
	}
}

// TestMWUNativeQuality: a real balance-shaped instance is answered by
// the native MWU ladder (not the fallback) with a primal-feasible
// solution inside the (1+eps) window of the exact optimum.
func TestMWUNativeQuality(t *testing.T) {
	p := mwuBalanceLP(8, 4, 2)
	ref, err := Session(NewDualWarm()).Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Status != Optimal {
		t.Fatalf("reference solve: %v", ref.Status)
	}
	for _, eps := range []float64{0.05, 0.01} {
		ses := Session(NewMWU(), WithAccuracy(eps)).(*MWU)
		sol, err := ses.Solve(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("eps=%g: %v, want Optimal", eps, sol.Status)
		}
		if err := CheckFeasible(p, sol.X, 1e-9); err != nil {
			t.Fatalf("eps=%g: infeasible solution: %v", eps, err)
		}
		if native, fb := ses.Counts(); native != 1 || fb != 0 {
			t.Fatalf("eps=%g: instance fell back (native=%d fallbacks=%d) — "+
				"the native path is untested", eps, native, fb)
		}
		if sol.Objective < ref.Objective-1e-9 || sol.Objective > (1+eps)*ref.Objective+1e-9 {
			t.Fatalf("eps=%g: objective %g outside [%g, %g]",
				eps, sol.Objective, ref.Objective, (1+eps)*ref.Objective)
		}
	}
}

// TestMWUParallelBitIdentical: with the fork threshold dropped to 1, the
// solve chain under every worker count must be bit-identical — status,
// iteration count, objective, every coordinate — to the sequential
// session's. This is the determinism contract of the sharded oracle and
// divergence kernels.
func TestMWUParallelBitIdentical(t *testing.T) {
	problems := []*Problem{
		mwuChainLP(1200, 5, 2), // 4800 arcs: oracle forks across ≥ 2 blocks
		mwuChainLP(4, 6, 2),    // small: only the divergence kernel forks
		mwuBalanceLP(8, 4, 2),  // repair-accepted without iterating: fork-state reset
	}
	tmpl := NewMWU()
	seq := Session(tmpl).(*MWU)
	var want []Solution
	for _, p := range problems {
		sol, err := seq.Solve(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		snap := *sol
		snap.X = append([]float64(nil), sol.X...)
		want = append(want, snap)
	}
	for _, procs := range lpParProcs[1:] {
		var grp par.Group
		ses := forcePar(t, tmpl, &grp, procs)
		for i, p := range problems {
			sol, err := ses.Solve(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			sameSolution(t, "mwu", sol, &want[i])
		}
		if procs > 1 && ses.(*MWU).ParallelSolves() == 0 {
			t.Fatalf("procs=%d: wired mwu session with minWork=1 never forked", procs)
		}
	}
}

// TestMWUWarmSolveAllocs locks the session-arena contract at the lp
// layer: after one warming solve, repeated solves of the same structure
// allocate nothing — on the sequential path, the sharded path, and the
// fallback path.
func TestMWUWarmSolveAllocs(t *testing.T) {
	ctx := context.Background()
	native := mwuBalanceLP(8, 4, 2)
	fallback := NewProblem(Minimize, 3)
	fallback.SetObjective(0, 2)
	fallback.SetObjective(1, 1)
	fallback.SetObjective(2, 3)
	for v := 0; v < 3; v++ {
		fallback.SetUpper(v, 4)
	}
	fallback.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}, {Var: 2, Coef: 1}}, GE, 2)

	var grp par.Group
	cases := []struct {
		name string
		ses  Solver
		p    *Problem
	}{
		{"native/seq", Session(NewMWU()), native},
		{"native/par4", forcePar(t, NewMWU(), &grp, 4), native},
		{"fallback/seq", Session(NewMWU()), fallback},
	}
	for _, tc := range cases {
		if _, err := tc.ses.Solve(ctx, tc.p); err != nil { // warm the arenas
			t.Fatalf("%s: %v", tc.name, err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := tc.ses.Solve(ctx, tc.p); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: warm solve allocates %g allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestMWUInfeasibleMatchesExact: infeasible graph-shaped instances (the
// ε-escalation probe shape) must be reported Infeasible by the MWU path
// itself — the engine's stage escalation depends on exact infeasibility,
// not an approximate guess.
func TestMWUInfeasibleMatchesExact(t *testing.T) {
	// One node must export ≥ 5 units but its only arc caps at 2.
	p := NewProblem(Minimize, 1)
	p.SetObjective(0, 1)
	p.SetUpper(0, 2)
	p.AddConstraint([]Term{{Var: 0, Coef: 1}}, GE, 5)
	ses := Session(NewMWU()).(*MWU)
	sol, err := ses.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Session(NewDualWarm()).Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Status != Infeasible {
		t.Fatalf("reference: %v, want Infeasible", ref.Status)
	}
	if sol.Status != Infeasible {
		t.Fatalf("mwu: %v, want Infeasible", sol.Status)
	}
	if math.IsNaN(float64(sol.Iterations)) || sol.Iterations < 0 {
		t.Fatalf("mwu: bad iteration count %d", sol.Iterations)
	}
}
