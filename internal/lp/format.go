package lp

import (
	"fmt"
	"math"
	"strings"
)

// VarName returns the display name of variable v: Names[v] when set,
// otherwise x<v>.
func (p *Problem) VarName(v int) string {
	if v < len(p.Names) && p.Names[v] != "" {
		return p.Names[v]
	}
	return fmt.Sprintf("x%d", v)
}

// String renders the problem in a human-readable algebraic form, the
// layout of the paper's Figure 5/Figure 8 listings.
func (p *Problem) String() string {
	var b strings.Builder
	if p.Sense == Maximize {
		b.WriteString("maximize  ")
	} else {
		b.WriteString("minimize  ")
	}
	first := true
	for v, c := range p.Obj {
		if c == 0 {
			continue
		}
		writeTerm(&b, &first, c, p.VarName(v))
	}
	if first {
		b.WriteString("0")
	}
	b.WriteString("\nsubject to\n")
	for _, cons := range p.Cons {
		b.WriteString("  ")
		cf := true
		for _, t := range cons.Terms {
			writeTerm(&b, &cf, t.Coef, p.VarName(t.Var))
		}
		if cf {
			b.WriteString("0")
		}
		fmt.Fprintf(&b, " %s %g\n", cons.Rel, cons.RHS)
	}
	for v, u := range p.Upper {
		if !math.IsInf(u, 1) {
			fmt.Fprintf(&b, "  0 <= %s <= %g\n", p.VarName(v), u)
		}
	}
	return b.String()
}

func writeTerm(b *strings.Builder, first *bool, c float64, name string) {
	switch {
	case *first && c == 1:
		b.WriteString(name)
	case *first && c == -1:
		b.WriteString("-" + name)
	case *first:
		fmt.Fprintf(b, "%g %s", c, name)
	case c == 1:
		b.WriteString(" + " + name)
	case c == -1:
		b.WriteString(" - " + name)
	case c < 0:
		fmt.Fprintf(b, " - %g %s", -c, name)
	default:
		fmt.Fprintf(b, " + %g %s", c, name)
	}
	*first = false
}
