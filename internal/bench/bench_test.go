package bench

import (
	"strings"
	"testing"

	"repro/internal/mesh"
)

// smallConfig keeps unit tests fast: small meshes, few partitions, no
// simulation where not needed.
func smallSequence(t *testing.T) *mesh.Sequence {
	t.Helper()
	seq, err := mesh.GenerateChained(400, []int{15, 20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestRunTableSmall(t *testing.T) {
	seq := smallSequence(t)
	cfg := Config{Seed: 3, P: 8, Ranks: 4}
	res, err := runTable("small", seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(res.Steps))
	}
	for i, s := range res.Steps {
		if s.SB.Cut.Total <= 0 || s.IGP.Cut.Total <= 0 || s.IGPR.Cut.Total <= 0 {
			t.Fatalf("step %d: zero cut recorded", i)
		}
		// IGPR must not be worse than IGP (same start, plus refinement).
		if s.IGPR.Cut.Total > s.IGP.Cut.Total {
			t.Fatalf("step %d: IGPR cut %d > IGP cut %d", i, s.IGPR.Cut.Total, s.IGP.Cut.Total)
		}
		if s.IGP.TimeSeq <= 0 || s.SB.TimeSeq <= 0 {
			t.Fatalf("step %d: missing timings", i)
		}
		if s.IGP.Speedup <= 0 {
			t.Fatalf("step %d: missing simulated speedup", i)
		}
		if s.IGP.LPVars <= 0 || s.IGP.LPCons <= 0 {
			t.Fatalf("step %d: missing LP size", i)
		}
	}
	text := Format(res)
	for _, want := range []string{"SB", "IGP", "IGPR", "Cut", "Initial graph"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, text)
		}
	}
}

func TestRunTableSkipSim(t *testing.T) {
	seq := smallSequence(t)
	cfg := Config{Seed: 3, P: 8, Ranks: 4, SkipSim: true}
	res, err := runTable("small", seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].IGP.Speedup != 0 || res.Steps[0].IGP.Sim1 != 0 {
		t.Fatal("SkipSim should suppress simulation")
	}
}

func TestSpeedupCurveMonotoneShape(t *testing.T) {
	seq, err := mesh.GenerateChained(600, []int{25}, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 5, P: 8}
	pts, err := SpeedupCurve(seq, cfg, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Speedup != 1 {
		t.Fatalf("1-rank speedup = %g, want 1", pts[0].Speedup)
	}
	if pts[2].Speedup <= pts[0].Speedup {
		t.Fatalf("4-rank speedup %.2f not above 1", pts[2].Speedup)
	}
	if pts[1].Messages == 0 {
		t.Fatal("2-rank run sent no messages")
	}
	if out := FormatSpeedup(pts, "test"); !strings.Contains(out, "Ranks") {
		t.Fatal("format missing header")
	}
}

func TestLPSizeIndependence(t *testing.T) {
	cfg := Config{Seed: 7, P: 8, SkipSim: true}
	rows, err := LPSizeTable([]int{300, 900}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Tripling |V| must not triple the LP: size is a function of P and
	// partition adjacency only.
	if rows[1].LPVars > 2*rows[0].LPVars+8 {
		t.Fatalf("LP vars grew with |V|: %d → %d", rows[0].LPVars, rows[1].LPVars)
	}
	if out := FormatLPSize(rows, 8); !strings.Contains(out, "pivots") {
		t.Fatal("format missing header")
	}
}

func TestRefineComparison(t *testing.T) {
	seq := smallSequence(t)
	cfg := Config{Seed: 3, P: 8, SkipSim: true}
	q, err := RefineComparison(seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if q.CutIGPR > q.CutIGP {
		t.Fatalf("IGPR cut %d worse than IGP %d", q.CutIGPR, q.CutIGP)
	}
	if q.CutGreedy > q.CutIGP {
		t.Fatalf("greedy made the cut worse: %d vs %d", q.CutGreedy, q.CutIGP)
	}
	if q.CutSB <= 0 {
		t.Fatal("missing SB cut")
	}
}

func TestBaselinesTable(t *testing.T) {
	seq := smallSequence(t)
	cfg := Config{Seed: 3, P: 8, SkipSim: true}
	rows, err := Baselines(seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Cut.Total <= 0 || r.Time <= 0 {
			t.Fatalf("row %q incomplete: %+v", r.Name, r)
		}
		if !r.Balance {
			t.Fatalf("baseline %q produced unbalanced partitions", r.Name)
		}
	}
	if out := FormatBaselines(rows, 8); !strings.Contains(out, "RCB") {
		t.Fatal("format missing RCB row")
	}
}
