package bench

// large.go is the large-graph multilevel tier: paper-scale workloads
// (n ≈ 10⁵–10⁶, far beyond the DIME-substitute meshes) that the flat
// pipeline cannot partition from scratch in reasonable time, exercised
// through the engine's V-cycle mode. Two workload families bracket the
// coarsening behavior: a √n×√n grid (bounded degree, the paper's mesh
// regime) and a Barabási–Albert power-law graph (heavy-tailed degrees,
// adversarial for heavy-edge matching). Each family gets a cold V-cycle
// row (degenerate flood-fill start, spectral coarsest init) and a warm
// row (small edit burst, repaired hierarchy); the flat RSB
// from-scratch baseline — minutes per run at 10⁵ — is opt-in and runs
// on the grid only, which is enough to calibrate the speedup claim.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/spectral"
)

// MultilevelRow is one large-graph tier measurement.
type MultilevelRow struct {
	Workload string        // "grid" or "powerlaw"
	N, E     int           // graph size
	Mode     string        // "vcycle-cold", "vcycle-warm", "flat-rsb"
	Procs    int           // worker count the sharded kernels ran at
	Time     time.Duration // wall clock of the run
	Cut      float64       // resulting cut weight
	Levels   int           // hierarchy depth (V-cycle rows)
	Repaired bool          // hierarchy journal-repaired (warm rows)
	Balanced bool          // exact vertex-count balance achieved
}

// largeWorkload builds one named workload of ~n vertices.
func largeWorkload(name string, n int, seed int64) (*graph.Graph, error) {
	switch name {
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		return graph.Grid(side, side), nil
	case "powerlaw":
		return graph.PowerLaw(n, 4, rand.New(rand.NewSource(seed)))
	}
	return nil, fmt.Errorf("bench: unknown large workload %q", name)
}

// MultilevelTable measures the V-cycle on the large-graph tier: for each
// workload family it runs a cold multilevel Repartition from a
// degenerate flood-fill assignment and a warm one after a small edit
// burst, asserting validity, exact balance and (grid warm) hierarchy
// repair — a failed assertion is an error, so the table doubles as the
// CI check.
// With includeFlat, the grid family also gets the flat RSB from-scratch
// baseline row (minutes of wall clock at n = 10⁵).
func MultilevelTable(cfg Config, n int, includeFlat bool) ([]MultilevelRow, error) {
	cfg = cfg.withDefaults()
	procs := cfg.Parallelism
	if procs == 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	var rows []MultilevelRow
	for _, name := range []string{"grid", "powerlaw"} {
		g, err := largeWorkload(name, n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		a := partition.New(g.Order(), cfg.P)
		for v := range a.Part {
			a.Part[v] = 0
		}
		e := engine.New(g, engine.Options{
			Solver:      cfg.Solver,
			Refine:      true,
			Parallelism: cfg.Parallelism,
			Multilevel:  engine.MultilevelOptions{Enabled: true, Seed: cfg.Seed},
		})

		t0 := time.Now()
		st, err := e.Repartition(context.Background(), a)
		cold := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("bench: %s cold V-cycle: %w", name, err)
		}
		row, err := multilevelRow(g, a, name, "vcycle-cold", procs, cold, len(st.Levels), st.HierarchyRepaired)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)

		// Settle call: the cold rebalance moved a large share of the
		// vertices after uncoarsening (stage loop + refinement), so the
		// next Update pays a one-time purity sweep that dissolves and
		// re-matches every group the polish split. One no-edit call
		// absorbs that; the warm row then measures the steady state.
		t0 = time.Now()
		st, err = e.Repartition(context.Background(), a)
		settle := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("bench: %s settle V-cycle: %w", name, err)
		}
		row, err = multilevelRow(g, a, name, "vcycle-settle", procs, settle, len(st.Levels), st.HierarchyRepaired)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)

		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x1a26e))
		editBurst(g, rng, 8)
		t0 = time.Now()
		st, err = e.Repartition(context.Background(), a)
		warm := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("bench: %s warm V-cycle: %w", name, err)
		}
		// Full hierarchy repair is the mesh-regime contract: on power-law
		// graphs a repair at level l dissolves every group adjacent to a
		// dissolved hub's cluster, and the amplified wave can push an
		// upper level past the stall or dead-slot guard — those (small,
		// cheap) levels rebuild and the Repaired flag reports it honestly.
		if name == "grid" && !st.HierarchyRepaired {
			return nil, fmt.Errorf("bench: %s warm V-cycle recoarsened instead of repairing the hierarchy", name)
		}
		row, err = multilevelRow(g, a, name, "vcycle-warm", procs, warm, len(st.Levels), st.HierarchyRepaired)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		e.Close()

		if includeFlat && name == "grid" {
			t0 = time.Now()
			parts, err := spectral.RSB(g, cfg.P, spectral.Options{Seed: cfg.Seed, Procs: procs})
			flat := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("bench: %s flat RSB: %w", name, err)
			}
			af := partition.New(g.Order(), cfg.P)
			copy(af.Part, parts)
			cut := partition.Cut(g, af)
			rows = append(rows, MultilevelRow{
				Workload: name, N: g.NumVertices(), E: g.NumEdges(),
				Mode: "flat-rsb", Procs: procs, Time: flat, Cut: cut.TotalWeight,
				Balanced: balancedExactly(g, af),
			})
		}
	}
	return rows, nil
}

// multilevelRow validates the run's hard contract (valid assignment,
// exact balance) and packages the measurement.
func multilevelRow(g *graph.Graph, a *partition.Assignment, workload, mode string, procs int, d time.Duration, levels int, repaired bool) (MultilevelRow, error) {
	if err := a.Validate(g); err != nil {
		return MultilevelRow{}, fmt.Errorf("bench: %s %s left an invalid assignment: %w", workload, mode, err)
	}
	row := MultilevelRow{
		Workload: workload, N: g.NumVertices(), E: g.NumEdges(),
		Mode: mode, Procs: procs, Time: d, Cut: partition.Cut(g, a).TotalWeight,
		Levels: levels, Repaired: repaired, Balanced: balancedExactly(g, a),
	}
	if !row.Balanced {
		return MultilevelRow{}, fmt.Errorf("bench: %s %s left imbalance: sizes %v", workload, mode, a.Sizes(g))
	}
	if levels < 2 {
		return MultilevelRow{}, fmt.Errorf("bench: %s %s built only %d hierarchy levels", workload, mode, levels)
	}
	return row, nil
}

// balancedExactly reports exact vertex-count balance (every partition at
// its ⌊n/p⌋/⌈n/p⌉ target).
func balancedExactly(g *graph.Graph, a *partition.Assignment) bool {
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), a.P)
	for q := range sizes {
		if sizes[q] != targets[q] {
			return false
		}
	}
	return true
}

// FormatMultilevel renders the large-graph tier table.
func FormatMultilevel(rows []MultilevelRow, p int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Large-graph multilevel tier (P=%d)\n", p)
	fmt.Fprintf(&b, "  %-10s %8s %9s %-12s %6s %10s %9s %7s %9s\n",
		"Workload", "N", "E", "Mode", "Procs", "Time", "Cut", "Levels", "Repaired")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %8d %9d %-12s %6d %10s %9.0f %7d %9v\n",
			r.Workload, r.N, r.E, r.Mode, r.Procs, fmtDur(r.Time), r.Cut, r.Levels, r.Repaired)
	}
	return b.String()
}
