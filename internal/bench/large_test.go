package bench

import "testing"

// TestMultilevelTableContract runs the large-graph tier at a test-sized
// n: the table's own assertions (validity, exact balance, grid warm
// hierarchy repair, real hierarchy depth) are the contract; here we
// additionally pin the row layout the igpbench JSON emitter and
// scripts/bench.sh depend on.
func TestMultilevelTableContract(t *testing.T) {
	rows, err := MultilevelTable(Config{Seed: 1994, P: 8}, 4000, false)
	if err != nil {
		t.Fatal(err)
	}
	wantModes := []string{"vcycle-cold", "vcycle-settle", "vcycle-warm",
		"vcycle-cold", "vcycle-settle", "vcycle-warm"}
	if len(rows) != len(wantModes) {
		t.Fatalf("got %d rows, want %d", len(rows), len(wantModes))
	}
	for i, r := range rows {
		if r.Mode != wantModes[i] {
			t.Fatalf("row %d mode %q, want %q", i, r.Mode, wantModes[i])
		}
		if !r.Balanced || r.Cut <= 0 || r.Time <= 0 {
			t.Fatalf("row %d not sane: %+v", i, r)
		}
	}
	if rows[0].Workload != "grid" || rows[3].Workload != "powerlaw" {
		t.Fatalf("workload order changed: %q, %q", rows[0].Workload, rows[3].Workload)
	}
	// The steady-state grid warm call must take the journal-repair path
	// and be far cheaper than the cold build.
	if !rows[2].Repaired {
		t.Fatal("grid warm row did not repair the hierarchy")
	}
	if rows[2].Time > rows[0].Time {
		t.Fatalf("grid warm (%v) not cheaper than cold (%v)", rows[2].Time, rows[0].Time)
	}
}
