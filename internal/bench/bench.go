// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section on the DIME-substitute meshes,
// producing the same rows the paper reports (cutset Total/Max/Min, Time-s,
// Time-p, stage counts, LP sizes, and parallel speedups).
//
// Two timing domains appear in the output, and they are kept explicit:
//
//   - Time-s is real Go wall-clock time of the sequential implementation
//     (comparable across SB/IGP/IGPR rows, like the paper's 1-node column);
//   - Speedup is the simulated CM-5 makespan ratio T_sim(1)/T_sim(ranks)
//     from the message-passing SPMD implementation under the calibrated
//     cost model, and Time-p = Time-s / Speedup (the parallel time the
//     measured sequential run would take at the simulated speedup, like
//     the paper's 32-node column).
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/mesh"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/refine"
	"repro/internal/spectral"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives mesh generation and eigen-solver starts.
	Seed int64
	// P is the number of partitions (paper: 32).
	P int
	// Ranks is the simulated machine size (paper: 32).
	Ranks int
	// Solver is the sequential simplex used by IGP/IGPR (nil = bounded;
	// the paper's own is lp.Dense).
	Solver lp.Solver
	// Parallelism is the worker count for the engine's sharded kernels
	// (0 = GOMAXPROCS, 1 = the sequential path). Results are
	// bit-identical for every value; only Time-s changes.
	Parallelism int
	// SkipSim disables the simulated parallel runs (faster; Time-p and
	// Speedup columns become zero).
	SkipSim bool
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1994
	}
	if c.P == 0 {
		c.P = 32
	}
	if c.Ranks == 0 {
		c.Ranks = 32
	}
	if c.Solver == nil {
		c.Solver = lp.Bounded{}
	}
	return c
}

// MethodResult is one table cell group (one partitioner on one mesh).
type MethodResult struct {
	TimeSeq time.Duration // Go wall clock, sequential
	Sim1    time.Duration // simulated 1-rank makespan
	SimP    time.Duration // simulated Ranks-rank makespan
	Speedup float64       // Sim1 / SimP
	TimePar time.Duration // TimeSeq / Speedup
	Stages  int           // balancing stages (IGP(k) in the paper)
	LPVars  int           // dense-form v of the largest balance LP
	LPCons  int           // dense-form c
	Cut     partition.CutStats
}

// StepResult is one refined-mesh block of a table.
type StepResult struct {
	V, E int
	NewV int // vertices added relative to the predecessor
	SB   MethodResult
	IGP  MethodResult
	IGPR MethodResult
}

// TableResult is a full experiment table.
type TableResult struct {
	Name    string
	BaseV   int
	BaseE   int
	BaseCut partition.CutStats
	Steps   []StepResult
}

// runSB partitions g from scratch with recursive spectral bisection.
func runSB(g *graph.Graph, cfg Config) (MethodResult, *partition.Assignment, error) {
	t0 := time.Now()
	part, err := spectral.RSB(g, cfg.P, spectral.Options{Seed: cfg.Seed})
	if err != nil {
		return MethodResult{}, nil, err
	}
	dur := time.Since(t0)
	a := &partition.Assignment{Part: part, P: cfg.P}
	return MethodResult{TimeSeq: dur, Cut: partition.Cut(g, a)}, a, nil
}

// runIGP repartitions g starting from prev's assignment.
func runIGP(g *graph.Graph, prev *partition.Assignment, cfg Config, withRefine bool) (MethodResult, *partition.Assignment, error) {
	a := prev.Clone()
	t0 := time.Now()
	st, err := core.Repartition(context.Background(), g, a, core.Options{
		Solver:      cfg.Solver,
		Refine:      withRefine,
		Parallelism: cfg.Parallelism,
	})
	dur := time.Since(t0)
	if err != nil {
		return MethodResult{}, nil, err
	}
	res := MethodResult{
		TimeSeq: dur,
		Stages:  len(st.Stages),
		Cut:     partition.Cut(g, a),
	}
	res.LPVars, res.LPCons = st.MaxLPSize()

	if !cfg.SkipSim {
		sim := func(ranks int) (time.Duration, error) {
			w, err := comm.NewWorld(ranks, comm.CM5())
			if err != nil {
				return 0, err
			}
			ap := prev.Clone()
			r, err := parallel.Repartition(context.Background(), w, g, ap, parallel.Options{Refine: withRefine})
			if err != nil {
				return 0, err
			}
			return r.SimTime, nil
		}
		var err error
		if res.Sim1, err = sim(1); err != nil {
			return res, a, err
		}
		if res.SimP, err = sim(cfg.Ranks); err != nil {
			return res, a, err
		}
		if res.SimP > 0 {
			res.Speedup = float64(res.Sim1) / float64(res.SimP)
			res.TimePar = time.Duration(float64(res.TimeSeq) / res.Speedup)
		}
	}
	return res, a, nil
}

// runTable executes a full mesh-sequence experiment. For chained
// sequences each method continues from its own previous assignment (SB
// always re-runs from scratch); for fan-out sequences every step starts
// from the base assignment, exactly as in the paper's two setups.
func runTable(name string, seq *mesh.Sequence, cfg Config) (*TableResult, error) {
	cfg = cfg.withDefaults()
	out := &TableResult{Name: name, BaseV: seq.Base.NumVertices(), BaseE: seq.Base.NumEdges()}

	basePart, err := spectral.RSB(seq.Base, cfg.P, spectral.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("bench: base RSB: %w", err)
	}
	baseA := &partition.Assignment{Part: basePart, P: cfg.P}
	out.BaseCut = partition.Cut(seq.Base, baseA)

	prevIGP := baseA
	prevIGPR := baseA
	for i, step := range seq.Steps {
		g := step.Graph
		sr := StepResult{V: g.NumVertices(), E: g.NumEdges(), NewV: step.NewVertices}

		if sr.SB, _, err = runSB(g, cfg); err != nil {
			return nil, fmt.Errorf("bench: step %d SB: %w", i, err)
		}
		var aIGP, aIGPR *partition.Assignment
		if sr.IGP, aIGP, err = runIGP(g, prevIGP, cfg, false); err != nil {
			return nil, fmt.Errorf("bench: step %d IGP: %w", i, err)
		}
		if sr.IGPR, aIGPR, err = runIGP(g, prevIGPR, cfg, true); err != nil {
			return nil, fmt.Errorf("bench: step %d IGPR: %w", i, err)
		}
		if seq.Chained {
			prevIGP, prevIGPR = aIGP, aIGPR
		}
		out.Steps = append(out.Steps, sr)
	}
	return out, nil
}

// Fig11 regenerates the paper's Figure 11 table: the chained mesh-A
// sequence (~1071 → 1096 → 1121 → 1152 → 1192 vertices), P=32.
func Fig11(cfg Config) (*TableResult, error) {
	cfg = cfg.withDefaults()
	seq, err := mesh.PaperSequenceA(cfg.Seed)
	if err != nil {
		return nil, err
	}
	return runTable("Figure 11 (mesh A, chained refinements)", seq, cfg)
}

// Fig14 regenerates the paper's Figure 14 table: the fan-out mesh-B
// experiment (~10166 base; +48, +139, +229, +672 vertices), P=32.
func Fig14(cfg Config) (*TableResult, error) {
	cfg = cfg.withDefaults()
	seq, err := mesh.PaperSequenceB(cfg.Seed)
	if err != nil {
		return nil, err
	}
	return runTable("Figure 14 (mesh B, independent refinements)", seq, cfg)
}

// Format renders a TableResult in the paper's layout.
func Format(t *TableResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Name)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(t.Name)))
	fmt.Fprintf(&b, "Initial graph: |V|=%d |E|=%d   cutset total=%d max=%.0f min=%.0f\n\n",
		t.BaseV, t.BaseE, t.BaseCut.Total, t.BaseCut.Max, t.BaseCut.Min)
	for _, s := range t.Steps {
		fmt.Fprintf(&b, "|V| = %d  |E| = %d  (+%d vertices)\n", s.V, s.E, s.NewV)
		fmt.Fprintf(&b, "  %-6s %10s %10s %8s %7s %6s %6s %6s\n",
			"Method", "Time-s", "Time-p", "Speedup", "Stages", "Cut", "Max", "Min")
		row := func(name string, m MethodResult, isSB bool) {
			tp, spd := "-", "-"
			if !isSB && m.Speedup > 0 {
				tp = fmtDur(m.TimePar)
				spd = fmt.Sprintf("%.1f", m.Speedup)
			}
			stages := "-"
			if !isSB {
				stages = fmt.Sprintf("%d", m.Stages)
			}
			fmt.Fprintf(&b, "  %-6s %10s %10s %8s %7s %6d %6.0f %6.0f\n",
				name, fmtDur(m.TimeSeq), tp, spd, stages, m.Cut.Total, m.Cut.Max, m.Cut.Min)
		}
		row("SB", s.SB, true)
		row("IGP", s.IGP, false)
		row("IGPR", s.IGPR, false)
		b.WriteString("\n")
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", float64(d)/float64(time.Second))
	}
}

// SpeedupPoint is one point of the speedup table (experiment E7).
type SpeedupPoint struct {
	Ranks    int
	SimTime  time.Duration
	Speedup  float64
	Messages int64
	Bytes    int64
}

// SpeedupCurve measures the simulated IGP makespan at each rank count on
// the first refinement of the given sequence (the paper's "speedup of
// around 15 to 20 on a 32 node CM-5").
func SpeedupCurve(seq *mesh.Sequence, cfg Config, rankList []int) ([]SpeedupPoint, error) {
	cfg = cfg.withDefaults()
	basePart, err := spectral.RSB(seq.Base, cfg.P, spectral.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	baseA := &partition.Assignment{Part: basePart, P: cfg.P}
	g := seq.Steps[0].Graph

	var out []SpeedupPoint
	var t1 time.Duration
	for _, ranks := range rankList {
		w, err := comm.NewWorld(ranks, comm.CM5())
		if err != nil {
			return nil, err
		}
		a := baseA.Clone()
		r, err := parallel.Repartition(context.Background(), w, g, a, parallel.Options{Refine: true})
		if err != nil {
			return nil, err
		}
		pt := SpeedupPoint{Ranks: ranks, SimTime: r.SimTime, Messages: r.Messages, Bytes: r.Bytes}
		if ranks == 1 || t1 == 0 {
			t1 = r.SimTime
		}
		pt.Speedup = float64(t1) / float64(r.SimTime)
		out = append(out, pt)
	}
	return out, nil
}

// FormatSpeedup renders a speedup curve.
func FormatSpeedup(pts []SpeedupPoint, label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Simulated CM-5 speedup — %s\n", label)
	fmt.Fprintf(&b, "  %6s %12s %9s %10s %12s\n", "Ranks", "Sim time", "Speedup", "Messages", "Bytes")
	for _, p := range pts {
		fmt.Fprintf(&b, "  %6d %12s %9.2f %10d %12d\n",
			p.Ranks, fmtDur(p.SimTime), p.Speedup, p.Messages, p.Bytes)
	}
	return b.String()
}

// LPSizeRow records the balance-LP dimensions for one mesh size (the
// paper's "v = 188 and c = 126 … independent of the number of vertices").
type LPSizeRow struct {
	V, E   int
	LPVars int
	LPCons int
	Pivots int
}

// LPSizeTable measures the balance-LP size for increasingly large meshes
// with fixed P, demonstrating the paper's size-independence claim.
func LPSizeTable(sizes []int, cfg Config) ([]LPSizeRow, error) {
	cfg = cfg.withDefaults()
	var out []LPSizeRow
	for _, n := range sizes {
		seq, err := mesh.GenerateChained(n, []int{n / 40}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		basePart, err := spectral.RSB(seq.Base, cfg.P, spectral.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		a := &partition.Assignment{Part: basePart, P: cfg.P}
		g := seq.Steps[0].Graph
		st, err := core.Repartition(context.Background(), g, a, core.Options{Solver: cfg.Solver, Parallelism: cfg.Parallelism})
		if err != nil {
			return nil, err
		}
		row := LPSizeRow{V: g.NumVertices(), E: g.NumEdges()}
		row.LPVars, row.LPCons = st.MaxLPSize()
		for _, sg := range st.Stages {
			row.Pivots += sg.LPPivots
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatLPSize renders the LP-size table.
func FormatLPSize(rows []LPSizeRow, p int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Balance-LP size vs mesh size (P = %d)\n", p)
	fmt.Fprintf(&b, "  %8s %8s %8s %8s %8s\n", "|V|", "|E|", "v", "c", "pivots")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %8d %8d %8d %8d %8d\n", r.V, r.E, r.LPVars, r.LPCons, r.Pivots)
	}
	return b.String()
}

// BaselineRow is one row of the from-scratch baseline comparison.
type BaselineRow struct {
	Name    string
	Time    time.Duration
	Cut     partition.CutStats
	Balance bool
}

// Baselines compares the from-scratch partitioners of the paper's §1
// heuristics survey — recursive spectral (SB), coordinate (RCB) and graph
// (RGB) bisection — on the first refinement of a sequence (ablation A4).
func Baselines(seq *mesh.Sequence, cfg Config) ([]BaselineRow, error) {
	cfg = cfg.withDefaults()
	g := seq.Steps[0].Graph
	pts := make([][2]float64, len(seq.Points))
	for i, p := range seq.Points {
		pts[i] = [2]float64{p.X, p.Y}
	}
	var rows []BaselineRow
	add := func(name string, part []int32, dur time.Duration) {
		a := &partition.Assignment{Part: part, P: cfg.P}
		rows = append(rows, BaselineRow{
			Name:    name,
			Time:    dur,
			Cut:     partition.Cut(g, a),
			Balance: partition.Balanced(a.Sizes(g)),
		})
	}

	t0 := time.Now()
	sb, err := spectral.RSB(g, cfg.P, spectral.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	add("SB (spectral)", sb, time.Since(t0))

	t0 = time.Now()
	rcb, err := baseline.RCB(g, pts, cfg.P)
	if err != nil {
		return nil, err
	}
	add("RCB (coordinate)", rcb, time.Since(t0))

	t0 = time.Now()
	rgb, err := baseline.RGB(g, cfg.P)
	if err != nil {
		return nil, err
	}
	add("RGB (graph BFS)", rgb, time.Since(t0))
	return rows, nil
}

// FormatBaselines renders the baseline comparison.
func FormatBaselines(rows []BaselineRow, p int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "From-scratch baselines (P = %d)\n", p)
	fmt.Fprintf(&b, "  %-18s %10s %7s %7s %7s %9s\n", "Method", "Time", "Cut", "Max", "Min", "Balanced")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s %10s %7d %7.0f %7.0f %9v\n",
			r.Name, fmtDur(r.Time), r.Cut.Total, r.Cut.Max, r.Cut.Min, r.Balance)
	}
	return b.String()
}

// SolverRow is one row of the per-solver pivot/latency comparison: the
// same IGPR workload run under one registered simplex, with the LP
// iteration counts broken down per balance stage and refinement round.
// Warm-started solvers ("dual-warm") show their gain here: stage and
// round solves after the first resume from retained bases, so their
// LPIterations total falls well below the cold solvers' at equal cut.
type SolverRow struct {
	Name         string
	Time         time.Duration
	Stages       int
	LPIterations int
	// MWUFallbacks counts the LP solves the approximate "mwu" solver
	// delegated to its exact fallback during the run; 0 for the exact
	// solvers.
	MWUFallbacks int
	StagePivots  []int
	RoundPivots  []int
	Cut          partition.CutStats
	Balanced     bool
}

// SolverComparison runs IGPR on the first refinement of a sequence
// under each named solver from the registry and reports the per-solver
// pivot counts and cut quality — the warm-vs-cold evidence the bench
// trajectory records.
func SolverComparison(seq *mesh.Sequence, cfg Config, names []string) ([]SolverRow, error) {
	cfg = cfg.withDefaults()
	basePart, err := spectral.RSB(seq.Base, cfg.P, spectral.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	baseA := &partition.Assignment{Part: basePart, P: cfg.P}
	g := seq.Steps[0].Graph

	var rows []SolverRow
	for _, name := range names {
		s, err := lp.Lookup(name)
		if err != nil {
			return nil, err
		}
		a := baseA.Clone()
		t0 := time.Now()
		st, err := core.Repartition(context.Background(), g, a, core.Options{Solver: s, Refine: true, Parallelism: cfg.Parallelism})
		dur := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("bench: solver %s: %w", name, err)
		}
		row := SolverRow{
			Name:         name,
			Time:         dur,
			Stages:       len(st.Stages),
			LPIterations: st.LPIterations,
			MWUFallbacks: st.MWUFallbacks,
			Cut:          partition.Cut(g, a),
			Balanced:     partition.Balanced(a.Sizes(g)),
		}
		for _, sg := range st.Stages {
			row.StagePivots = append(row.StagePivots, sg.LPPivots)
		}
		if st.Refine != nil {
			row.RoundPivots = append(row.RoundPivots, st.Refine.RoundPivots...)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSolvers renders the per-solver comparison.
func FormatSolvers(rows []SolverRow, p int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-solver LP pivots — IGPR, mesh A first refinement (P = %d)\n", p)
	fmt.Fprintf(&b, "  %-10s %10s %7s %8s %9s %6s %9s  %s\n",
		"Solver", "Time-s", "Stages", "LPIters", "Fallbacks", "Cut", "Balanced", "Round pivots")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %10s %7d %8d %9d %6d %9v  %v\n",
			r.Name, fmtDur(r.Time), r.Stages, r.LPIterations, r.MWUFallbacks, r.Cut.Total, r.Balanced, r.RoundPivots)
	}
	return b.String()
}

// EditRow is one row of the incremental-edit workload table: the cost
// of a warm Repartition after a k-edit delta, against the same delta on
// a FullRefresh engine (the full-recomputation baseline).
type EditRow struct {
	K              int           // edits applied before the warm call
	WarmTime       time.Duration // warm incremental engine, best of reps
	FullTime       time.Duration // FullRefresh engine, best of reps
	CSRPatched     int           // Stats.CSRPatched of the last warm call
	CutIncremental int           // Stats.CutIncremental of the last warm call
}

// editBurst applies k deterministic small edits: vertex-weight jitter
// and edge flips (remove + re-add at the same weight). These deltas
// leave partition sizes intact, so the warm Repartition that follows
// never enters a balancing stage and the measurement isolates exactly
// the derived-state refresh the delta pipeline makes edit-proportional:
// the journal-driven CSR patch, the incremental boundary/size sync and
// the boundary-seeded cut reports.
func editBurst(g *graph.Graph, rng *rand.Rand, k int) {
	n := g.Order()
	for i := 0; i < k; i++ {
		v := graph.Vertex(rng.Intn(n))
		if !g.Alive(v) {
			continue
		}
		if i%3 == 0 {
			g.SetVertexWeight(v, 1+rng.Float64())
		} else if g.Degree(v) > 0 {
			us := g.Neighbors(v)
			u := us[rng.Intn(len(us))]
			w, _ := g.EdgeWeight(v, u)
			_ = g.RemoveEdge(v, u)
			_ = g.AddEdge(v, u, w)
		}
	}
}

// IncrementalEdits measures warm Repartition cost as a function of
// delta size on a ~baseN-vertex mesh workload (the paper's two mesh
// families are baseN = 1071 and 10166): for each k, a long-lived
// engine absorbs a k-edit burst and repartitions; a second engine with
// Options.FullRefresh runs the identical script as the baseline. With
// the delta pipeline, WarmTime should scale with k (sublinear in n+m)
// while FullTime stays flat at the full-recomputation cost.
func IncrementalEdits(cfg Config, baseN int, ks []int, reps int) (*graph.Graph, []EditRow, error) {
	cfg = cfg.withDefaults()
	if reps < 1 {
		reps = 3
	}
	build := func(full bool) (*graph.Graph, *engine.Engine, *partition.Assignment, error) {
		gen, err := mesh.NewGenerator(baseN, cfg.Seed)
		if err != nil {
			return nil, nil, nil, err
		}
		g := gen.Mesh().Graph()
		part, err := spectral.RSB(g, cfg.P, spectral.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, nil, nil, err
		}
		a := &partition.Assignment{Part: part, P: cfg.P}
		e := engine.New(g, core.Options{Solver: cfg.Solver, Parallelism: cfg.Parallelism, FullRefresh: full})
		if _, err := e.Repartition(context.Background(), a); err != nil {
			return nil, nil, nil, err
		}
		return g, e, a, nil
	}
	gW, eW, aW, err := build(false)
	if err != nil {
		return nil, nil, err
	}
	gF, eF, aF, err := build(true)
	if err != nil {
		return nil, nil, err
	}
	rngW := rand.New(rand.NewSource(cfg.Seed ^ 0xed17))
	rngF := rand.New(rand.NewSource(cfg.Seed ^ 0xed17))
	var rows []EditRow
	for _, k := range ks {
		row := EditRow{K: k}
		for rep := 0; rep < reps; rep++ {
			editBurst(gW, rngW, k)
			editBurst(gF, rngF, k)
			t0 := time.Now()
			stW, err := eW.Repartition(context.Background(), aW)
			dW := time.Since(t0)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: incremental k=%d: %w", k, err)
			}
			t0 = time.Now()
			if _, err := eF.Repartition(context.Background(), aF); err != nil {
				return nil, nil, fmt.Errorf("bench: full-refresh k=%d: %w", k, err)
			}
			dF := time.Since(t0)
			if rep == 0 || dW < row.WarmTime {
				row.WarmTime = dW
			}
			if rep == 0 || dF < row.FullTime {
				row.FullTime = dF
			}
			row.CSRPatched = stW.CSRPatched
			row.CutIncremental = stW.CutIncremental
		}
		rows = append(rows, row)
	}
	return gW, rows, nil
}

// FormatIncremental renders the incremental-edit table.
func FormatIncremental(name string, g *graph.Graph, rows []EditRow, p int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Warm k-edit Repartition cost vs delta size (%s, |V|=%d |E|=%d, P=%d)\n",
		name, g.NumVertices(), g.NumEdges(), p)
	fmt.Fprintf(&b, "  %6s %12s %12s %9s %9s %8s\n", "k", "Warm", "FullRefresh", "Patched", "IncCuts", "Ratio")
	for _, r := range rows {
		ratio := float64(r.FullTime) / float64(r.WarmTime)
		fmt.Fprintf(&b, "  %6d %12s %12s %9d %9d %7.1fx\n",
			r.K, fmtDur(r.WarmTime), fmtDur(r.FullTime), r.CSRPatched, r.CutIncremental, ratio)
	}
	return b.String()
}

// RefineQuality compares IGP, IGPR and the greedy (KL/FM-style) baseline
// cut on one refinement step (ablation A2/A4).
type RefineQuality struct {
	CutIGP    int
	CutIGPR   int
	CutGreedy int
	CutSB     int
}

// RefineComparison runs the ablation on the first step of a sequence.
func RefineComparison(seq *mesh.Sequence, cfg Config) (*RefineQuality, error) {
	cfg = cfg.withDefaults()
	basePart, err := spectral.RSB(seq.Base, cfg.P, spectral.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	baseA := &partition.Assignment{Part: basePart, P: cfg.P}
	g := seq.Steps[0].Graph

	out := &RefineQuality{}
	aIGP := baseA.Clone()
	if _, err := core.Repartition(context.Background(), g, aIGP, core.Options{Solver: cfg.Solver, Parallelism: cfg.Parallelism}); err != nil {
		return nil, err
	}
	out.CutIGP = partition.Cut(g, aIGP).Total

	aIGPR := baseA.Clone()
	if _, err := core.Repartition(context.Background(), g, aIGPR, core.Options{Solver: cfg.Solver, Refine: true, Parallelism: cfg.Parallelism}); err != nil {
		return nil, err
	}
	out.CutIGPR = partition.Cut(g, aIGPR).Total

	aGreedy := aIGP.Clone()
	refine.Greedy(g, aGreedy, 0, 1)
	out.CutGreedy = partition.Cut(g, aGreedy).Total

	sb, _, err := runSB(g, cfg)
	if err != nil {
		return nil, err
	}
	out.CutSB = sb.Cut.Total
	return out, nil
}
