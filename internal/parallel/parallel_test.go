package parallel

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/partition"
)

func testWorld(t *testing.T, p int) *comm.World {
	t.Helper()
	w, err := comm.NewWorld(p, comm.CM5())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// solveParallel runs SolveLP on a world of the given size and returns rank
// 0's solution.
func solveParallel(t *testing.T, ranks int, prob *lp.Problem) *lp.Solution {
	t.Helper()
	w := testWorld(t, ranks)
	sols := make([]*lp.Solution, ranks)
	err := w.Run(func(c *comm.Comm) error {
		sol, err := SolveLP(context.Background(), c, prob)
		if err != nil {
			return err
		}
		sols[c.Rank()] = sol
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < ranks; r++ {
		if sols[r].Status != sols[0].Status {
			t.Fatalf("rank %d status %v != rank 0 %v", r, sols[r].Status, sols[0].Status)
		}
		if sols[r].Status == lp.Optimal && math.Abs(sols[r].Objective-sols[0].Objective) > 1e-9 {
			t.Fatalf("rank %d objective %g != rank 0 %g", r, sols[r].Objective, sols[0].Objective)
		}
	}
	return sols[0]
}

func TestSolveLPMatchesSequential(t *testing.T) {
	// max 3x+2y s.t. x+y<=4, x+3y<=6 → 12.
	p := lp.NewProblem(lp.Maximize, 2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.LE, 4)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 3}}, lp.LE, 6)
	for _, ranks := range []int{1, 2, 3, 5} {
		sol := solveParallel(t, ranks, p)
		if sol.Status != lp.Optimal || math.Abs(sol.Objective-12) > 1e-8 {
			t.Fatalf("ranks=%d: %v obj %g, want optimal 12", ranks, sol.Status, sol.Objective)
		}
	}
}

func TestSolveLPInfeasibleAndUnbounded(t *testing.T) {
	inf := lp.NewProblem(lp.Minimize, 1)
	inf.SetObjective(0, 1)
	inf.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.LE, 1)
	inf.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.GE, 2)
	if sol := solveParallel(t, 3, inf); sol.Status != lp.Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	unb := lp.NewProblem(lp.Maximize, 1)
	unb.SetObjective(0, 1)
	unb.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.GE, 1)
	if sol := solveParallel(t, 3, unb); sol.Status != lp.Unbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

func TestSolveLPRandomAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dense := lp.Dense{}
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		p := lp.NewProblem(lp.Minimize, n)
		for v := 0; v < n; v++ {
			p.SetObjective(v, float64(rng.Intn(9)-4))
			p.SetUpper(v, float64(1+rng.Intn(7)))
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			var terms []lp.Term
			for v := 0; v < n; v++ {
				if cf := rng.Intn(5) - 2; cf != 0 {
					terms = append(terms, lp.Term{Var: v, Coef: float64(cf)})
				}
			}
			if len(terms) == 0 {
				terms = []lp.Term{{Var: 0, Coef: 1}}
			}
			p.AddConstraint(terms, []lp.Rel{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)], float64(rng.Intn(11)-3))
		}
		want, err := dense.Solve(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		got := solveParallel(t, 4, p)
		if got.Status != want.Status {
			t.Fatalf("trial %d: parallel %v vs dense %v", trial, got.Status, want.Status)
		}
		if want.Status == lp.Optimal {
			if math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Fatalf("trial %d: parallel obj %g vs dense %g", trial, got.Objective, want.Objective)
			}
			if err := lp.CheckFeasible(p, got.X, 1e-6); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

// grownGrid mirrors the core package's test workload.
func grownGrid(rows, cols, p, extra int, rng *rand.Rand) (*graph.Graph, *partition.Assignment) {
	g := graph.Grid(rows, cols)
	a := partition.New(g.Order(), p)
	w := cols / p
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := c / w
			if q >= p {
				q = p - 1
			}
			a.Part[r*cols+c] = int32(q)
		}
	}
	attach := make([]graph.Vertex, 0, 2*rows)
	for r := 0; r < rows; r++ {
		attach = append(attach, graph.Vertex(r*cols+cols-1), graph.Vertex(r*cols+cols-2))
	}
	prev := attach
	for k := 0; k < extra; k++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[rng.Intn(len(prev))], 1)
		prev = append(prev, v)
	}
	return g, a
}

func TestParallelRepartitionBalances(t *testing.T) {
	for _, ranks := range []int{1, 2, 4} {
		rng := rand.New(rand.NewSource(13))
		g, a := grownGrid(8, 16, 4, 24, rng)
		w := testWorld(t, ranks)
		res, err := Repartition(context.Background(), w, g, a, Options{Refine: true})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if err := a.Validate(g); err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		sizes := a.Sizes(g)
		targets := partition.Targets(g.NumVertices(), 4)
		for q := range sizes {
			if sizes[q] != targets[q] {
				t.Fatalf("ranks=%d: sizes %v != targets %v", ranks, sizes, targets)
			}
		}
		if res.SimTime <= 0 {
			t.Fatalf("ranks=%d: no simulated time", ranks)
		}
		if ranks > 1 && res.Messages == 0 {
			t.Fatalf("ranks=%d: no messages recorded", ranks)
		}
	}
}

func TestParallelMatchesAcrossRankCounts(t *testing.T) {
	// The SPMD computation must produce the same assignment regardless of
	// how many ranks execute it (ownership only affects cost accounting
	// and message routes, not decisions).
	results := make([][]int32, 0, 3)
	for _, ranks := range []int{1, 2, 4} {
		rng := rand.New(rand.NewSource(17))
		g, a := grownGrid(6, 12, 4, 16, rng)
		w := testWorld(t, ranks)
		if _, err := Repartition(context.Background(), w, g, a, Options{Refine: true}); err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		results = append(results, append([]int32(nil), a.Part...))
	}
	for i := 1; i < len(results); i++ {
		for v := range results[0] {
			if results[i][v] != results[0][v] {
				t.Fatalf("assignment diverges at vertex %d between rank counts", v)
			}
		}
	}
}

func TestParallelSpeedupShape(t *testing.T) {
	// More ranks must reduce the simulated makespan on a big-enough
	// problem (the paper's speedup claim, in miniature).
	rng := rand.New(rand.NewSource(23))
	g, a0 := grownGrid(16, 32, 8, 64, rng)

	times := map[int]float64{}
	for _, ranks := range []int{1, 8} {
		a := a0.Clone()
		w := testWorld(t, ranks)
		res, err := Repartition(context.Background(), w, g, a, Options{Refine: true})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		times[ranks] = res.SimTime.Seconds()
	}
	speedup := times[1] / times[8]
	if speedup < 1.5 {
		t.Fatalf("8-rank simulated speedup %.2f, want > 1.5 (T1=%gs T8=%gs)",
			speedup, times[1], times[8])
	}
}

func TestParallelOrphanClusters(t *testing.T) {
	g := graph.Path(6)
	v1 := g.AddVertex(1)
	v2 := g.AddVertex(1)
	_ = g.AddEdge(v1, v2, 1)
	a := partition.New(6, 2)
	a.Part = []int32{0, 0, 0, 1, 1, 1}
	w := testWorld(t, 2)
	if _, err := Repartition(context.Background(), w, g, a, Options{}); err != nil {
		t.Fatal(err)
	}
	if a.Part[v1] < 0 || a.Part[v1] != a.Part[v2] {
		t.Fatalf("orphan cluster split: %d vs %d", a.Part[v1], a.Part[v2])
	}
	if !partition.Balanced(a.Sizes(g)) {
		t.Fatalf("unbalanced: %v", a.Sizes(g))
	}
}

// paperPairs mirrors the lp package's Figure-5 variable layout.
var paperPairs = [][2]int{
	{0, 1}, {0, 2}, {0, 3}, {1, 0}, {1, 2},
	{2, 0}, {2, 1}, {2, 3}, {3, 0}, {3, 2},
}

func paperLP(maximize bool, upper []float64, surplus []float64) *lp.Problem {
	sense := lp.Minimize
	if maximize {
		sense = lp.Maximize
	}
	p := lp.NewProblem(sense, len(paperPairs))
	for v := range paperPairs {
		p.SetObjective(v, 1)
		p.SetUpper(v, upper[v])
	}
	for j := 0; j < 4; j++ {
		var terms []lp.Term
		for v, pr := range paperPairs {
			if pr[0] == j {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
			if pr[1] == j {
				terms = append(terms, lp.Term{Var: v, Coef: -1})
			}
		}
		p.AddConstraint(terms, lp.EQ, surplus[j])
	}
	return p
}

func TestSolveLPPaperFigure5(t *testing.T) {
	prob := paperLP(false,
		[]float64{9, 7, 12, 10, 11, 3, 7, 9, 7, 5},
		[]float64{8, 1, -1, -8})
	for _, ranks := range []int{1, 3, 8} {
		sol := solveParallel(t, ranks, prob)
		if sol.Status != lp.Optimal || math.Abs(sol.Objective-9) > 1e-8 {
			t.Fatalf("ranks=%d: %v obj %g, want optimal 9", ranks, sol.Status, sol.Objective)
		}
	}
}

func TestSolveLPPaperFigure8(t *testing.T) {
	prob := paperLP(true,
		[]float64{1, 1, 1, 2, 1, 0, 1, 1, 2, 1},
		[]float64{0, 0, 0, 0})
	for _, ranks := range []int{1, 4} {
		sol := solveParallel(t, ranks, prob)
		// True optimum of the printed LP is 9 (see lp package tests).
		if sol.Status != lp.Optimal || math.Abs(sol.Objective-9) > 1e-8 {
			t.Fatalf("ranks=%d: %v obj %g, want optimal 9", ranks, sol.Status, sol.Objective)
		}
	}
}
