package parallel

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cancel"

	"repro/internal/balance"
	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/layering"
	"repro/internal/lp"
	"repro/internal/partition"
	"repro/internal/refine"
)

// Options configures the parallel repartitioner.
type Options struct {
	// EpsilonMax bounds the balance relaxation factor (0 = 8).
	EpsilonMax float64
	// MaxStages caps balancing stages (0 = 16).
	MaxStages int
	// Refine enables phase 4 (IGPR).
	Refine bool
	// RefineRounds caps refinement rounds (0 = 8).
	RefineRounds int
	// StrictAfter switches refinement to strict gains (0 = 2).
	StrictAfter int
}

func (o Options) epsMax() float64 {
	if o.EpsilonMax <= 0 {
		return 8
	}
	return o.EpsilonMax
}

func (o Options) maxStages() int {
	if o.MaxStages <= 0 {
		return 16
	}
	return o.MaxStages
}

func (o Options) refineRounds() int {
	if o.RefineRounds <= 0 {
		return 8
	}
	return o.RefineRounds
}

func (o Options) strictAfter() int {
	if o.StrictAfter <= 0 {
		return 2
	}
	return o.StrictAfter
}

// Result reports a parallel repartitioning run.
type Result struct {
	// SimTime is the simulated parallel makespan under the world's cost
	// model — the paper's Time-p.
	SimTime time.Duration
	// Messages and Bytes count all point-to-point traffic.
	Messages, Bytes int64
	// Stages is the number of balancing stages used (the paper's IGP(k)).
	Stages int
	// RefineRounds is the number of refinement LP rounds performed.
	RefineRounds int
	// BalanceMoved counts vertices moved by phase 3.
	BalanceMoved int
	// Per-phase simulated clock consumed on rank 0 (diagnostics).
	AssignSim, LayerSim, BalanceSim, RefineSim time.Duration
}

// Repartition runs the SPMD parallel IGP over world w. Every rank
// executes the same phases on replicated metadata; rank r owns partitions
// q with q mod ranks == r, is charged simulated compute for its own
// partitions only, and real messages carry frontier claims, δ rows,
// simplex pivot columns and migrated vertices. The assignment a is
// updated in place with the (identical) result; the world's clocks are
// reset first so Result.SimTime is this call's makespan.
func Repartition(ctx context.Context, w *comm.World, g *graph.Graph, a *partition.Assignment, opt Options) (*Result, error) {
	w.Reset()
	a.Grow(g.Order())
	res := &Result{}
	final := make([]*partition.Assignment, w.Size())
	stats := make([]Result, w.Size())

	err := w.Run(func(c *comm.Comm) error {
		mine := a.Clone()
		st, err := repartitionRank(ctx, c, g, mine, opt)
		if err != nil {
			return err
		}
		final[c.Rank()] = mine
		stats[c.Rank()] = *st
		// SPMD consistency check: all ranks must agree exactly.
		var sum int64
		for v, p := range mine.Part {
			sum += int64(v+1) * int64(p+2)
		}
		mx, err := c.AllreduceInt([]int64{sum}, comm.OpMax)
		if err != nil {
			return err
		}
		mn, err := c.AllreduceInt([]int64{sum}, comm.OpMin)
		if err != nil {
			return err
		}
		if mx[0] != mn[0] {
			return fmt.Errorf("parallel: ranks diverged (checksums %d..%d)", mn[0], mx[0])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	copy(a.Part, final[0].Part)
	*res = stats[0]
	res.SimTime = w.MaxClock()
	res.Messages = w.TotalMessages()
	res.Bytes = w.TotalBytes()
	return res, nil
}

// owner maps a partition to the rank that owns it.
func owner(q int32, ranks int) int { return int(q) % ranks }

// repartitionRank is the per-rank SPMD body. Each rank owns a private
// engine: replicated metadata, but snapshots, boundary sets and scratch
// arenas are reused across the stages and refinement rounds of the run.
func repartitionRank(ctx context.Context, c *comm.Comm, g *graph.Graph, a *partition.Assignment, opt Options) (*Result, error) {
	res := &Result{}
	eng := engine.New(g, engine.Options{})
	t0 := c.Clock()
	if err := passign(c, g, a); err != nil {
		return nil, err
	}
	res.AssignSim = c.Clock() - t0

	targets := partition.Targets(g.NumVertices(), a.P)
	for stage := 0; stage < opt.maxStages(); stage++ {
		if err := cancel.Check(ctx, "parallel balance stage"); err != nil {
			return nil, err
		}
		sizes := a.Sizes(g)
		if maxAbsDev(sizes, targets) == 0 {
			break
		}
		tL := c.Clock()
		lay, err := player(ctx, c, eng, g, a)
		if err != nil {
			return nil, err
		}
		res.LayerSim += c.Clock() - tL
		tB := c.Clock()
		moved, ok, err := pbalance(ctx, c, g, a, lay, targets, opt.epsMax())
		if err != nil {
			return nil, err
		}
		res.BalanceSim += c.Clock() - tB
		if !ok {
			return nil, fmt.Errorf("parallel: %w", ErrNeedRepartition)
		}
		res.Stages++
		res.BalanceMoved += moved
		if moved == 0 {
			break
		}
	}
	if maxAbsDev(a.Sizes(g), targets) > 0 {
		return nil, fmt.Errorf("parallel: %w", ErrNeedRepartition)
	}

	if opt.Refine {
		tR := c.Clock()
		rounds, err := prefine(ctx, c, eng, g, a, opt)
		if err != nil {
			return nil, err
		}
		res.RefineSim = c.Clock() - tR
		res.RefineRounds = rounds
	}
	return res, nil
}

// ErrNeedRepartition mirrors core.ErrNeedRepartition for the parallel
// driver (kept separate to avoid an import cycle with core).
var ErrNeedRepartition = fmt.Errorf("incremental balance infeasible; repartition from scratch")

// passign is the parallel phase 1: a level-synchronous multi-source BFS.
// Each round, a rank expands the frontier vertices of partitions it owns
// and proposes claims on unassigned neighbors; claims are exchanged and
// applied identically everywhere (smallest partition id wins conflicts).
func passign(c *comm.Comm, g *graph.Graph, a *partition.Assignment) error {
	a.Grow(g.Order())
	for v := 0; v < g.Order(); v++ {
		if !g.Alive(graph.Vertex(v)) {
			a.Part[v] = partition.Unassigned
		}
	}
	ranks := c.Size()
	frontier := make([]graph.Vertex, 0)
	for v := 0; v < g.Order(); v++ {
		if g.Alive(graph.Vertex(v)) && a.Part[v] >= 0 {
			frontier = append(frontier, graph.Vertex(v))
		}
	}
	if len(frontier) == 0 {
		return fmt.Errorf("parallel: assign: no previously assigned vertices")
	}
	for {
		// Propose claims from owned frontier vertices.
		type claim struct {
			V    graph.Vertex
			Part int32
		}
		var mine []claim
		work := 0
		for _, v := range frontier {
			p := a.Part[v]
			if owner(p, ranks) != c.Rank() {
				continue
			}
			work += g.Degree(v)
			for _, u := range g.Neighbors(v) {
				if a.Part[u] < 0 {
					mine = append(mine, claim{u, p})
				}
			}
		}
		c.Advance(float64(work + 1))
		// Exchange claims; every rank sees all claims.
		all, err := c.Allgather(mine, 8*len(mine))
		if err != nil {
			return err
		}
		next := frontier[:0]
		claimed := make(map[graph.Vertex]int32)
		total := 0
		for _, payload := range all {
			cl := payload.([]claim)
			total += len(cl)
			for _, cm := range cl {
				if cur, ok := claimed[cm.V]; !ok || cm.Part < cur {
					claimed[cm.V] = cm.Part
				}
			}
		}
		if total == 0 {
			break
		}
		c.Advance(float64(total))
		for v, p := range claimed {
			if a.Part[v] < 0 {
				a.Part[v] = p
				next = append(next, v)
			}
		}
		frontier = next
	}
	// Orphan clusters (new vertices disconnected from every old vertex):
	// deterministic on replicated state; charged to rank 0 only.
	var orphans []graph.Vertex
	for v := 0; v < g.Order(); v++ {
		if g.Alive(graph.Vertex(v)) && a.Part[v] < 0 {
			orphans = append(orphans, graph.Vertex(v))
		}
	}
	if len(orphans) > 0 {
		sub, _, newToOld := g.InducedSubgraph(orphans)
		comp, nc := sub.Components()
		sizes := a.Sizes(g)
		clusters := make([][]graph.Vertex, nc)
		for sv, cid := range comp {
			if cid >= 0 {
				clusters[cid] = append(clusters[cid], newToOld[sv])
			}
		}
		for _, cluster := range clusters {
			best := 0
			for q := 1; q < a.P; q++ {
				if sizes[q] < sizes[best] {
					best = q
				}
			}
			for _, v := range cluster {
				a.Part[v] = int32(best)
			}
			sizes[best] += len(cluster)
		}
		if c.Rank() == 0 {
			c.Advance(float64(len(orphans) + a.P))
		}
	}
	return nil
}

// player is the parallel phase 2: every rank layers the graph (cheap on
// replicated data, boundary-seeded through its engine) but is charged
// only for the partitions it owns, then the δ rows of owned partitions
// are all-gathered — exactly the data a distributed layering would
// exchange.
func player(ctx context.Context, c *comm.Comm, eng *engine.Engine, g *graph.Graph, a *partition.Assignment) (*layering.Result, error) {
	lay, err := eng.Layer(ctx, a)
	if err != nil {
		return nil, err
	}
	ranks := c.Size()
	work := 0
	g.ForEachVertex(func(v graph.Vertex) {
		if owner(a.Part[v], ranks) == c.Rank() {
			work += g.Degree(v) + 1
		}
	})
	c.Advance(float64(2 * work))
	// Exchange owned δ rows.
	var rows [][]int
	for q := 0; q < a.P; q++ {
		if owner(int32(q), ranks) == c.Rank() {
			rows = append(rows, lay.Delta[q])
		}
	}
	if _, err := c.Allgather(rows, 8*a.P*len(rows)); err != nil {
		return nil, err
	}
	return lay, nil
}

// pbalance is the parallel phase 3: the balance LP is formulated
// identically everywhere from the replicated δ and solved with the
// column-distributed parallel simplex; vertex migration is realized with
// real messages from each source partition's owner to the destination's.
func pbalance(ctx context.Context, c *comm.Comm, g *graph.Graph, a *partition.Assignment, lay *layering.Result, targets []int, epsMax float64) (moved int, ok bool, err error) {
	sizes := a.Sizes(g)
	for eps := 1.0; eps <= epsMax; eps++ {
		m, err := balance.Formulate(lay.Delta, sizes, targets, eps)
		if err != nil {
			return 0, false, err
		}
		sol, err := SolveLP(ctx, c, m.Prob)
		if err != nil {
			return 0, false, err
		}
		if sol.Status != lp.Optimal {
			continue
		}
		flows, err := m.Flows(sol)
		if err != nil {
			return 0, false, err
		}
		if err := migrate(c, a, lay, flows); err != nil {
			return 0, false, err
		}
		total := 0
		for _, f := range flows {
			total += f.Amount
		}
		return total, true, nil
	}
	return 0, false, nil
}

// migrate applies flows to the replicated assignment and sends the moved
// vertex lists from source-partition owners to destination owners,
// cross-checking that both computed identical pools (an SPMD divergence
// trap).
func migrate(c *comm.Comm, a *partition.Assignment, lay *layering.Result, flows []balance.Flow) error {
	ranks := c.Size()
	// Real data motion: source owner ships the vertex ids.
	for fi, f := range flows {
		src := owner(f.From, ranks)
		dst := owner(f.To, ranks)
		pool := lay.Pool(f.From, f.To)
		if f.Amount > len(pool) {
			return fmt.Errorf("parallel: flow %d→%d overruns pool", f.From, f.To)
		}
		if src != dst {
			if c.Rank() == src {
				// Copy out of the engine-owned pool: the send is
				// asynchronous and the arena is reused by the next
				// layering, exactly like a real NIC copying a buffer.
				msg := append([]graph.Vertex(nil), pool[:f.Amount]...)
				if err := c.Send(dst, 1000+fi, msg, 4*f.Amount); err != nil {
					return err
				}
			}
			if c.Rank() == dst {
				got, err := c.Recv(src, 1000+fi)
				if err != nil {
					return err
				}
				list := got.([]graph.Vertex)
				for k, v := range list {
					if v != pool[k] {
						return fmt.Errorf("parallel: migration list diverged for flow %d→%d", f.From, f.To)
					}
				}
			}
		}
		if c.Rank() == src || c.Rank() == dst {
			c.Advance(float64(f.Amount))
		}
	}
	// All ranks apply identically to stay replicated.
	if _, err := balance.Apply(a, lay, flows); err != nil {
		return err
	}
	return nil
}

// prefine is the parallel phase 4: gains are computed per owned
// partition, candidate counts b(i,j) all-gathered, the refinement LP
// solved in parallel, and moves migrated like pbalance. Returns the
// number of rounds performed.
func prefine(ctx context.Context, c *comm.Comm, eng *engine.Engine, g *graph.Graph, a *partition.Assignment, opt Options) (int, error) {
	ranks := c.Size()
	best := a.Clone()
	bestCut := partition.Cut(g, a).TotalWeight
	rounds := 0
	for round := 0; round < opt.refineRounds(); round++ {
		if err := cancel.Check(ctx, "parallel refinement"); err != nil {
			return rounds, err
		}
		strict := round >= opt.strictAfter()
		cands, err := eng.Gains(a, strict)
		if err != nil {
			return rounds, err
		}
		work := 0
		g.ForEachVertex(func(v graph.Vertex) {
			if owner(a.Part[v], ranks) == c.Rank() {
				work += g.Degree(v)
			}
		})
		c.Advance(float64(work))
		var rows [][]int
		for q := 0; q < a.P; q++ {
			if owner(int32(q), ranks) == c.Rank() {
				rows = append(rows, cands.B[q])
			}
		}
		if _, err := c.Allgather(rows, 8*a.P*len(rows)); err != nil {
			return rounds, err
		}

		prob, pairs := refine.Formulate(cands)
		if len(pairs) == 0 {
			break
		}
		sol, err := SolveLP(ctx, c, prob)
		if err != nil {
			return rounds, err
		}
		if sol.Status != lp.Optimal || sol.Objective < 0.5 {
			break
		}
		// Migrate: per-pair messages, then identical local application.
		for vi, amt := range sol.X {
			k := int(amt + 0.5)
			if k == 0 {
				continue
			}
			src := owner(pairs[vi][0], ranks)
			dst := owner(pairs[vi][1], ranks)
			if src != dst {
				pool := cands.Pool(pairs[vi][0], pairs[vi][1])
				if c.Rank() == src {
					// Copy out of the engine-owned pool (see migrate).
					msg := append([]graph.Vertex(nil), pool[:k]...)
					if err := c.Send(dst, 2000+vi, msg, 4*k); err != nil {
						return rounds, err
					}
				}
				if c.Rank() == dst {
					if _, err := c.Recv(src, 2000+vi); err != nil {
						return rounds, err
					}
				}
			}
			if c.Rank() == src || c.Rank() == dst {
				c.Advance(float64(k))
			}
		}
		moved, err := refine.Apply(a, cands, pairs, sol.X)
		if err != nil {
			return rounds, err
		}
		rounds++
		cut := partition.Cut(g, a).TotalWeight
		if cut < bestCut {
			bestCut = cut
			best = a.Clone()
		}
		if moved == 0 {
			break
		}
	}
	if partition.Cut(g, a).TotalWeight > bestCut {
		copy(a.Part, best.Part)
	}
	return rounds, nil
}

func maxAbsDev(sizes, targets []int) int {
	d := 0
	for i := range sizes {
		dev := sizes[i] - targets[i]
		if dev < 0 {
			dev = -dev
		}
		if dev > d {
			d = dev
		}
	}
	return d
}
