// Package parallel implements the distributed-memory version of the
// incremental partitioner — the paper's actual contribution claim ("all
// the steps used by our method are inherently parallel"). It runs SPMD
// over the comm substrate: every rank executes the same control flow over
// replicated metadata, owns a subset of partitions (and of LP columns),
// is charged simulated compute only for work on what it owns, and
// exchanges exactly the data a real distributed implementation would
// (BFS frontiers, δ rows, simplex pivot columns, migrated vertex lists).
package parallel

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cancel"
	"repro/internal/comm"
	"repro/internal/lp"
)

// pivotTol mirrors the sequential solvers' feasibility tolerance.
const pivotTol = 1e-9

// SolveLP solves prob with a column-distributed dense two-phase simplex:
// columns are dealt cyclically to ranks; each pivot selects the entering
// column with a global argmin, broadcasts that column, and updates local
// columns only. All ranks must call with an identical problem and all
// receive the full solution.
//
// Per pivot, a rank does O(m · ownedCols) flops and the network carries
// one m-length column broadcast — the parallelization the paper sketches
// for its dominant cost.
func SolveLP(ctx context.Context, c *comm.Comm, prob *lp.Problem) (*lp.Solution, error) {
	std, err := lp.Standardize(prob)
	if err != nil {
		return nil, err
	}
	s := &psimplex{c: c, std: std, ctx: ctx}
	return s.solve()
}

type psimplex struct {
	c   *comm.Comm
	std *lp.Standard

	// cols holds this rank's owned columns, maintained as B⁻¹A_j.
	cols map[int][]float64
	// d holds reduced costs for owned columns.
	d map[int]float64
	// Replicated state.
	rhs   []float64
	basis []int
	cost  []float64 // current phase's cost
	iters int
	ctx   context.Context
}

func (s *psimplex) owned(j int) bool { return j%s.c.Size() == s.c.Rank() }

func (s *psimplex) solve() (*lp.Solution, error) {
	std := s.std
	m := std.M()
	s.rhs = append([]float64(nil), std.RHS...)
	s.basis = append([]int(nil), std.Basis...)
	s.cols = make(map[int][]float64)
	for j := 0; j < std.N(); j++ {
		if s.owned(j) {
			s.cols[j] = append([]float64(nil), std.Cols[j]...)
		}
	}

	needPhase1 := false
	for _, b := range s.basis {
		if b >= std.ArtStart {
			needPhase1 = true
			break
		}
	}
	const maxIter = 200000
	if needPhase1 {
		s.cost = make([]float64, std.N())
		for j := std.ArtStart; j < std.N(); j++ {
			s.cost[j] = 1
		}
		s.resetReducedCosts(false)
		status, err := s.iterate(maxIter)
		if err != nil {
			return nil, err
		}
		if status == lp.IterLimit {
			return &lp.Solution{Status: lp.IterLimit, Iterations: s.iters}, nil
		}
		if status == lp.Unbounded {
			return nil, fmt.Errorf("parallel: simplex phase 1 unbounded")
		}
		// Phase-1 objective from replicated state.
		var z float64
		for i, b := range s.basis {
			if b >= std.ArtStart {
				z += s.rhs[i]
			}
		}
		if z > 1e-7 {
			return &lp.Solution{Status: lp.Infeasible, Iterations: s.iters}, nil
		}
		if err := s.expelArtificials(); err != nil {
			return nil, err
		}
	}

	s.cost = append([]float64(nil), std.Cost...)
	s.resetReducedCosts(true)
	status, err := s.iterate(maxIter)
	if err != nil {
		return nil, err
	}
	switch status {
	case lp.IterLimit:
		return &lp.Solution{Status: lp.IterLimit, Iterations: s.iters}, nil
	case lp.Unbounded:
		return &lp.Solution{Status: lp.Unbounded, Iterations: s.iters}, nil
	}

	// Extract from replicated basis/rhs.
	x := make([]float64, std.NStruct)
	for i, b := range s.basis {
		if b < std.NStruct {
			x[b] = s.rhs[i]
		}
	}
	_ = m
	return &lp.Solution{
		Status:     lp.Optimal,
		X:          x,
		Objective:  std.Objective(x),
		Iterations: s.iters,
	}, nil
}

// resetReducedCosts recomputes d_j for owned columns from the current
// basis: d_j = c_j − Σ_i c_B(i)·col_j[i].
func (s *psimplex) resetReducedCosts(banArtificials bool) {
	s.d = make(map[int]float64, len(s.cols))
	work := 0
	for j, col := range s.cols {
		if banArtificials && j >= s.std.ArtStart {
			continue
		}
		d := s.cost[j]
		for i, b := range s.basis {
			cb := s.cost[b]
			if cb != 0 {
				d -= cb * col[i]
			}
		}
		s.d[j] = d
		work += len(col)
	}
	s.c.Advance(float64(work))
}

// iterate performs simplex pivots until optimal/unbounded/limit. After
// blandAfter pivots it switches from Dantzig to Bland's rule (smallest
// improving index) to guarantee termination on degenerate problems; both
// rules are deterministic across rank counts because ties break on the
// global column index.
func (s *psimplex) iterate(maxIter int) (lp.Status, error) {
	const blandAfter = 5000
	m := s.std.M()
	for {
		if s.iters >= maxIter {
			return lp.IterLimit, nil
		}
		if s.iters&255 == 0 {
			// Every rank polls the same context at the same pivot count, so
			// an abort is SPMD-consistent: all ranks leave together.
			if err := cancel.Check(s.ctx, "parallel simplex"); err != nil {
				return lp.IterLimit, err
			}
		}
		bland := s.iters >= blandAfter
		// Local candidate among owned columns.
		bestVal := math.Inf(1)
		bestCol := math.MaxInt32
		for j, dj := range s.d {
			if dj >= -pivotTol || s.isBasic(j) {
				continue
			}
			var key float64
			if bland {
				key = float64(j) // smallest improving index wins
			} else {
				key = dj // most negative reduced cost wins
			}
			if key < bestVal || (key == bestVal && j < bestCol) {
				bestVal, bestCol = key, j
			}
		}
		s.c.Advance(float64(len(s.d)))
		val, enter, err := s.c.ArgminIndexed(bestVal, bestCol)
		if err != nil {
			return 0, err
		}
		if math.IsInf(val, 1) {
			return lp.Optimal, nil
		}

		// Owner broadcasts the entering column and its reduced cost.
		owner := enter % s.c.Size()
		var payload any
		if s.c.Rank() == owner {
			buf := make([]float64, m+1)
			copy(buf, s.cols[enter])
			buf[m] = s.d[enter]
			payload = buf
		}
		got, err := s.c.Bcast(owner, payload, 8*(m+1))
		if err != nil {
			return 0, err
		}
		w := got.([]float64)
		dEnter := w[m]

		// Ratio test on replicated state (identical on all ranks).
		leave := -1
		var minRatio float64
		for i := 0; i < m; i++ {
			a := w[i]
			if a <= pivotTol {
				continue
			}
			ratio := s.rhs[i] / a
			if leave < 0 || ratio < minRatio-pivotTol ||
				(ratio < minRatio+pivotTol && s.basis[i] < s.basis[leave]) {
				leave = i
				minRatio = ratio
			}
		}
		s.c.Advance(float64(m))
		if leave < 0 {
			return lp.Unbounded, nil
		}
		s.pivot(leave, enter, w[:m], dEnter)
	}
}

func (s *psimplex) isBasic(j int) bool {
	for _, b := range s.basis {
		if b == j {
			return true
		}
	}
	return false
}

// pivot applies the column-wise tableau update for pivot (r, enter) where
// w = B⁻¹A_enter; every rank updates its owned columns plus the
// replicated rhs/basis.
//
// The simulated cost charged is the DENSE per-pivot cost — every owned
// column, all m rows — because that is the implementation the paper ran
// and parallelized ("a dense version of simplex algorithm", cost O(v·c)
// per iteration). The Go code still skips zero columns for real speed;
// only the clock follows the paper's dense profile.
func (s *psimplex) pivot(r, enter int, w []float64, dEnter float64) {
	piv := w[r]
	work := 0
	for j, col := range s.cols {
		work += len(col)
		cr := col[r] / piv
		if cr == 0 {
			continue
		}
		col[r] = cr
		for i := range col {
			if i != r && w[i] != 0 {
				col[i] -= w[i] * cr
			}
		}
		if dj, ok := s.d[j]; ok {
			s.d[j] = dj - dEnter*cr
		}
	}
	// Owner's entering column becomes a unit vector exactly.
	if s.owned(enter) {
		col := s.cols[enter]
		for i := range col {
			col[i] = 0
		}
		col[r] = 1
		s.d[enter] = 0
	}
	// Replicated RHS update.
	rr := s.rhs[r] / piv
	s.rhs[r] = rr
	for i := range s.rhs {
		if i != r && w[i] != 0 {
			s.rhs[i] -= w[i] * rr
			if s.rhs[i] < 0 && s.rhs[i] > -1e-9 {
				s.rhs[i] = 0
			}
		}
	}
	s.basis[r] = enter
	s.iters++
	s.c.Advance(float64(work + len(s.rhs)))
}

// expelArtificials removes basic artificials via zero-movement pivots
// where a non-artificial pivot column exists; inert rows are left (their
// B⁻¹A row is zero on all non-artificial columns, so they can never
// change — see the sequential solvers for the argument).
func (s *psimplex) expelArtificials() error {
	for i, b := range s.basis {
		if b < s.std.ArtStart {
			continue
		}
		// Global search for the smallest-index non-artificial, nonbasic
		// column with a nonzero entry in row i.
		bestVal := math.Inf(1)
		bestCol := math.MaxInt32
		for j, col := range s.cols {
			if j >= s.std.ArtStart || s.isBasic(j) {
				continue
			}
			if math.Abs(col[i]) > 1e-7 {
				if float64(j) < bestVal {
					bestVal = float64(j)
					bestCol = j
				}
			}
		}
		_, enter, err := s.c.ArgminIndexed(bestVal, bestCol)
		if err != nil {
			return err
		}
		if enter == math.MaxInt32 {
			continue // inert redundant row
		}
		owner := enter % s.c.Size()
		var payload any
		if s.c.Rank() == owner {
			m := s.std.M()
			buf := make([]float64, m+1)
			copy(buf, s.cols[enter])
			if d, ok := s.d[enter]; ok {
				buf[m] = d
			}
			payload = buf
		}
		got, err := s.c.Bcast(owner, payload, 8*(s.std.M()+1))
		if err != nil {
			return err
		}
		w := got.([]float64)
		s.pivot(i, enter, w[:s.std.M()], w[s.std.M()])
	}
	return nil
}
