package coarsen

// parallel.go holds the hierarchy's sharded kernels: the deterministic
// mutual-proposal matcher shared by build/rematch/Match, and the
// fork-join sweeps behind repair (purity detection, free collection +
// upward projection), connectGroups (coarse-arc aggregation), Uncoarsen
// (downward projection) and refineLevel (weight totals, seed collection,
// the initial move scan).
//
// Every kernel follows the engine's determinism discipline
// (internal/par): contiguous shards that are pure functions of the
// input, per-worker buffers merged in shard order, atomic claims
// deciding membership only, and total-order sorts erasing scheduling.
// Procs <= 1 runs the identical code inline through Group.Run — the
// exact sequential path — so every worker count produces bit-identical
// hierarchies and assignments.

import (
	"slices"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/partition"
)

const (
	// parMatchMin is the per-round dirty-set size below which a matching
	// round's propose/collect scans run inline; late rounds shrink to a
	// few vertices and forking them costs more than the scan.
	parMatchMin = 48
	// parSweepMin is the slot-range size below which the O(order) sweeps
	// (purity, projection, weights, seed collection) run inline.
	parSweepMin = 2048
	// parSeedMin is the seed-list size below which the refinement move
	// scan and seed marking run inline.
	parSeedMin = 48
	// parConnectArcMin is the total fine-arc count below which
	// connectGroups aggregates inline.
	parConnectArcMin = 4096
)

// vertexBuf is one worker's private collection arenas.
type vertexBuf struct {
	v []graph.Vertex
	h []hopPair
}

func growBufs(bufs *[]vertexBuf, n int) {
	for len(*bufs) < n {
		*bufs = append(*bufs, vertexBuf{})
	}
}

// splitByDeg cuts list into contiguous shards carrying near-equal arc
// work (degree+1 per vertex) so skewed degrees — power-law hubs — do
// not serialize a region behind one worker. shards and cum are arenas;
// both are returned for reuse. Pure function of (graph, list, workers).
func splitByDeg(fg *graph.Graph, list []graph.Vertex, workers int, shards []par.Range, cum []int32) ([]par.Range, []int32) {
	shards = shards[:0]
	if workers <= 1 {
		return par.Split(shards, len(list), 1), cum
	}
	cum = append(cum[:0], 0)
	t := int32(0)
	for _, v := range list {
		t += int32(fg.Degree(v)) + 1
		cum = append(cum, t)
	}
	return par.SplitByWeight(shards, cum, workers), cum
}

// edgeHash is a fixed 64-bit mix of an undirected edge's endpoints —
// the matcher's tie-break among equal-weight candidate edges. A plain
// id tie-break serializes unit-weight meshes into a wavefront (one
// mutual pair per round creeping along each row); the hash makes ties
// locally random so a constant fraction of the remaining free edges is
// mutual each round, while staying a pure function of the graph and
// therefore identical at every worker count and on every run.
func edgeHash(a, b graph.Vertex) uint64 {
	if a > b {
		a, b = b, a
	}
	x := uint64(uint32(a))<<32 | uint64(uint32(b))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// matcher is the deterministic heavy-edge matcher shared by the
// hierarchy's build/rematch paths and the package-level Match.
//
// A greedy HEM visits vertices in one global order, so any sharding of
// it changes the result. The matcher instead runs rounds of mutual
// proposals: every free vertex proposes its best incident free
// same-partition edge under a total edge order (weight descending, then
// edgeHash, then endpoint ids), and every mutually-proposing pair
// matches. The globally best free edge is always mutual, so each round
// makes progress and the loop terminates with a maximal matching; the
// hashed tie-break makes a constant fraction of the remaining free
// edges mutual per round in expectation (the classic local-max matching
// argument). Only vertices whose proposed target was matched away
// re-propose — as the free set only shrinks, everyone else's proposal
// stays optimal — so total work stays near-linear.
//
// The outcome is a pure function of (graph, partition, free set):
// proposals are per-vertex functions of frozen shared state, pair
// application is sequential over the sorted dirty list, and the
// re-dirty set is decided by claims (membership only) and sorted. Every
// worker count therefore produces the identical matching.
type matcher struct {
	group *par.Group
	own   par.Group
	procs int

	prop     []graph.Vertex // current proposal target (per slot)
	mate     []graph.Vertex // result: partner, self until matched
	freeFlag []bool         // eligible and not yet matched
	dirtyA   []graph.Vertex
	dirtyB   []graph.Vertex
	matched  []graph.Vertex
	cum      []int32
	shards   []par.Range
	stamps   par.Stamps
	bufs     []vertexBuf
	hops     []hopPair
	pend     []graph.Vertex

	ptask proposeTask
	ctask collectTask
	htask hopTask
}

func (m *matcher) g() *par.Group {
	if m.group != nil {
		return m.group
	}
	return &m.own
}

// workers picks the fork width for a region of the given size — a pure
// function of the input size, never of scheduling.
func (m *matcher) workers(units, min int) int {
	if m.procs > 1 && units >= min {
		return m.procs
	}
	return 1
}

func (m *matcher) grow(n int) {
	if m.procs < 1 {
		m.procs = 1
	}
	for len(m.prop) < n {
		m.prop = append(m.prop, -1)
		m.mate = append(m.mate, graph.Vertex(len(m.mate)))
		m.freeFlag = append(m.freeFlag, false)
	}
}

// run matches the vertices of free (ascending slot order) among
// themselves, restricted to same-partition pairs. On return mate[v] is
// v's partner (self = unmatched) for every v in free; other slots hold
// garbage from earlier runs. Scratch grows to fg.Order() and is reused.
func (m *matcher) run(fg *graph.Graph, part []int32, free []graph.Vertex) {
	n := fg.Order()
	m.grow(n)
	for _, v := range free {
		m.freeFlag[v] = true
		m.mate[v] = v
	}
	dirty := append(m.dirtyA[:0], free...)
	next := m.dirtyB[:0]
	m.stamps.Grow(n)
	m.stamps.Next()
	for _, v := range dirty {
		m.stamps.TryMark(v)
	}
	for len(dirty) > 0 {
		// 1. Re-propose: every dirty vertex recomputes its best free
		// same-partition edge — a pure per-vertex function of shared
		// frozen state, so any sharding is bitwise-equivalent.
		m.shards, m.cum = splitByDeg(fg, dirty, m.workers(len(dirty), parMatchMin), m.shards, m.cum)
		m.ptask = proposeTask{m: m, fg: fg, part: part, list: dirty}
		m.g().Run(len(m.shards), &m.ptask)
		m.ptask = proposeTask{}
		// 2. Match mutual pairs, sequential over the sorted dirty list.
		// Proposals are frozen here and prop is a function, so mutual
		// pairs are vertex-disjoint; a pair with both ends dirty is
		// reported by its smaller end, one with a non-dirty end (whose
		// standing proposal is still optimal) by the dirty end.
		matched := m.matched[:0]
		for _, v := range dirty {
			u := m.prop[v]
			if u < 0 || !m.freeFlag[v] || !m.freeFlag[u] {
				continue
			}
			if m.prop[u] == v && (v < u || !m.stamps.Marked(u)) {
				m.freeFlag[v], m.freeFlag[u] = false, false
				m.mate[v], m.mate[u] = u, v
				matched = append(matched, v, u)
			}
		}
		m.matched = matched
		if len(matched) == 0 {
			// No mutual pair anywhere implies no free same-partition
			// edge remains (the globally best one would be mutual, and
			// every new mutual pair involves a dirty vertex): maximal.
			break
		}
		// 3. Re-dirty: a free vertex re-proposes iff its target was just
		// matched away. Claims decide membership only — the claimed set
		// is a pure function of the round — and the sort erases worker
		// merge order.
		m.stamps.Next()
		next = next[:0]
		m.shards, m.cum = splitByDeg(fg, matched, m.workers(len(matched), parMatchMin), m.shards, m.cum)
		growBufs(&m.bufs, len(m.shards))
		m.ctask = collectTask{m: m, fg: fg, list: matched}
		m.g().Run(len(m.shards), &m.ctask)
		m.ctask = collectTask{}
		for w := range m.shards {
			next = append(next, m.bufs[w].v...)
			m.bufs[w].v = m.bufs[w].v[:0]
		}
		slices.Sort(next)
		dirty, next = next, dirty[:0]
	}
	m.twoHop(fg, part, free)
	for _, v := range free {
		m.freeFlag[v] = false
	}
	m.dirtyA, m.dirtyB = dirty[:0], next[:0]
}

// twoHop pairs leftover singletons that share a common neighbor — the
// Metis two-hop device. A maximal matching strands every satellite of a
// star whose hub is matched (its only free edge leads to a non-free
// vertex), and those stars dominate deep coarse levels: without this
// pass the per-level reduction ratio decays toward 1 and the hierarchy
// both deepens and trips the stall guard on warm repairs. Emission
// shards over the singleton list; the (center, singleton) pairs are
// sorted under their total order and consecutive same-partition
// singletons within each center run pair up in ascending order, so the
// result is a pure function of (graph, partition, free set).
func (m *matcher) twoHop(fg *graph.Graph, part []int32, free []graph.Vertex) {
	singles := m.matched[:0]
	for _, v := range free {
		if m.freeFlag[v] {
			singles = append(singles, v)
		}
	}
	m.matched = singles
	if len(singles) < 2 {
		return
	}
	m.shards, m.cum = splitByDeg(fg, singles, m.workers(len(singles), parMatchMin), m.shards, m.cum)
	growBufs(&m.bufs, len(m.shards))
	m.htask = hopTask{m: m, fg: fg, list: singles}
	m.g().Run(len(m.shards), &m.htask)
	m.htask = hopTask{}
	hops := m.hops[:0]
	for w := range m.shards {
		hops = append(hops, m.bufs[w].h...)
		m.bufs[w].h = m.bufs[w].h[:0]
	}
	slices.SortFunc(hops, hopPairCmp)
	pend := m.pend[:0]
	for i := 0; i < len(hops); {
		j := i
		pend = pend[:0]
		for ; j < len(hops) && hops[j].u == hops[i].u; j++ {
			s := hops[j].s
			if !m.freeFlag[s] {
				continue
			}
			// At most one pending singleton per partition: the second
			// arrival pairs immediately.
			paired := false
			for k, t := range pend {
				if m.freeFlag[t] && part[t] == part[s] {
					m.freeFlag[s], m.freeFlag[t] = false, false
					m.mate[s], m.mate[t] = t, s
					pend[k] = pend[len(pend)-1]
					pend = pend[:len(pend)-1]
					paired = true
					break
				}
			}
			if !paired {
				pend = append(pend, s)
			}
		}
		i = j
	}
	m.hops, m.pend = hops[:0], pend[:0]
}

// hopPair links a leftover singleton s to one of its neighbors u (the
// candidate meeting point of the two-hop pass).
type hopPair struct{ u, s graph.Vertex }

// hopPairCmp is the total order on hop pairs: center, then singleton.
// Pairs are unique (u appears once in s's adjacency), so any sort
// produces the same permutation.
func hopPairCmp(a, b hopPair) int {
	if a.u != b.u {
		return int(a.u) - int(b.u)
	}
	return int(a.s) - int(b.s)
}

type hopTask struct {
	m    *matcher
	fg   *graph.Graph
	list []graph.Vertex
}

func (t *hopTask) Do(w int) {
	m := t.m
	r := m.shards[w]
	buf := m.bufs[w].h[:0]
	for _, s := range t.list[r.Lo:r.Hi] {
		for _, u := range t.fg.Neighbors(s) {
			buf = append(buf, hopPair{u, s})
		}
	}
	m.bufs[w].h = buf
}

// propose recomputes v's best incident free same-partition edge under
// the total edge order (weight desc, edgeHash asc, partner id asc).
func (m *matcher) propose(fg *graph.Graph, part []int32, v graph.Vertex) {
	var best graph.Vertex = -1
	var bestW float64
	var bestH uint64
	pv := part[v]
	ws := fg.EdgeWeights(v)
	for i, u := range fg.Neighbors(v) {
		if u == v || !m.freeFlag[u] || part[u] != pv {
			continue
		}
		w := ws[i]
		if best >= 0 && w < bestW {
			continue
		}
		h := edgeHash(v, u)
		if best < 0 || w > bestW || h < bestH || (h == bestH && u < best) {
			best, bestW, bestH = u, w, h
		}
	}
	m.prop[v] = best
}

type proposeTask struct {
	m    *matcher
	fg   *graph.Graph
	part []int32
	list []graph.Vertex
}

func (t *proposeTask) Do(w int) {
	r := t.m.shards[w]
	for _, v := range t.list[r.Lo:r.Hi] {
		t.m.propose(t.fg, t.part, v)
	}
}

type collectTask struct {
	m    *matcher
	fg   *graph.Graph
	list []graph.Vertex
}

func (t *collectTask) Do(w int) {
	m := t.m
	r := m.shards[w]
	buf := m.bufs[w].v[:0]
	for _, x := range t.list[r.Lo:r.Hi] {
		for _, y := range t.fg.Neighbors(x) {
			if m.freeFlag[y] && m.prop[y] == x && m.stamps.Claim(y) {
				buf = append(buf, y)
			}
		}
	}
	m.bufs[w].v = buf
}

// sweepWorker is one worker's private arenas for the hierarchy sweeps.
type sweepWorker struct {
	verts   []graph.Vertex
	entries []moveEntry
	conn    []float64
	weights []float64
	total   float64
	maxW    float64
	pairs   []cwPair
	scratch []cwPair
	runs    []int32
}

func growSweeps(sw *[]sweepWorker, n int) {
	for len(*sw) < n {
		*sw = append(*sw, sweepWorker{})
	}
}

// Sweep kinds for sweepTask.
const (
	sweepPurity = iota
	sweepProject
	sweepUncoarsen
	sweepWeights
	sweepSeedMark
	sweepSeedCollect
	sweepMoveScan
)

// sweepTask multiplexes the hierarchy's sharded scans; exactly one
// region runs at a time, so one reusable task struct serves them all.
type sweepTask struct {
	h    *Hierarchy
	kind int
	l    int
	fg   *graph.Graph
	part []int32
	lv   *level
	list []graph.Vertex
}

func (t *sweepTask) Do(w int) {
	h := t.h
	r := h.shards[w]
	switch t.kind {
	case sweepPurity:
		// Detect groups whose members' partitions diverged. Pure
		// predicate over frozen state; per-worker lists merge in shard
		// order, reproducing the ascending sequential scan.
		buf := h.sweeps[w].verts[:0]
		for v := r.Lo; v < r.Hi; v++ {
			vv := graph.Vertex(v)
			if !t.fg.Alive(vv) || t.lv.f2c[v] < 0 {
				continue
			}
			if u := t.lv.match[v]; u != vv && t.part[u] != t.part[v] {
				buf = append(buf, vv)
			}
		}
		h.sweeps[w].verts = buf
	case sweepProject:
		// Project the fine assignment up through surviving groups and
		// collect unmapped vertices. The coarse write is owned by the
		// group's smallest member (match[v] >= v), so it is race-free;
		// both members carry the same partition post-purity, so the
		// value equals the sequential both-members write.
		buf := h.sweeps[w].verts[:0]
		for v := r.Lo; v < r.Hi; v++ {
			vv := graph.Vertex(v)
			if !t.fg.Alive(vv) {
				continue
			}
			if cv := t.lv.f2c[v]; cv >= 0 {
				if t.lv.match[v] >= vv {
					t.lv.ca.Part[cv] = t.part[v]
				}
			} else {
				buf = append(buf, vv)
			}
		}
		h.sweeps[w].verts = buf
	case sweepUncoarsen:
		// Downward projection: each slot's write is shard-owned.
		buf := h.sweeps[w].verts[:0]
		for v := r.Lo; v < r.Hi; v++ {
			vv := graph.Vertex(v)
			if !t.fg.Alive(vv) || t.lv.f2c[v] < 0 {
				continue
			}
			if np := t.lv.ca.Part[t.lv.f2c[v]]; t.part[v] != np {
				t.part[v] = np
				buf = append(buf, vv)
			}
		}
		h.sweeps[w].verts = buf
	case sweepWeights:
		// Per-partition cardinality sums; level weights are level-0
		// counts (small integers), so float accumulation is exact and
		// any partial split merges bitwise-identically.
		ws := &h.sweeps[w]
		for v := r.Lo; v < r.Hi; v++ {
			vv := graph.Vertex(v)
			if !t.fg.Alive(vv) {
				continue
			}
			wt := h.levelWeight(t.l, vv)
			ws.total += wt
			if q := t.part[v]; q >= 0 {
				ws.weights[q] += wt
			}
			if wt > ws.maxW {
				ws.maxW = wt
			}
		}
	case sweepSeedMark:
		// Membership marking only: who claims a slot is scheduling-
		// dependent, the claimed set is not.
		for _, v := range t.list[r.Lo:r.Hi] {
			h.seedMarks.Claim(v)
			for _, u := range t.fg.Neighbors(v) {
				h.seedMarks.Claim(u)
			}
		}
	case sweepSeedCollect:
		buf := h.sweeps[w].verts[:0]
		for v := r.Lo; v < r.Hi; v++ {
			if h.seedMarks.Marked(int32(v)) {
				buf = append(buf, graph.Vertex(v))
			}
		}
		h.sweeps[w].verts = buf
	case sweepMoveScan:
		// The same conn[] accumulation as pushMoves, appended to a
		// per-worker buffer instead of pushed; concatenated in worker
		// order over the ascending seed list this replays the exact
		// sequential push sequence.
		ws := &h.sweeps[w]
		conn := ws.conn[:h.p]
		for _, v := range t.list[r.Lo:r.Hi] {
			if !t.fg.Alive(v) {
				continue
			}
			own := t.part[v]
			if own < 0 {
				continue
			}
			for q := range conn {
				conn[q] = 0
			}
			ews := t.fg.EdgeWeights(v)
			for i, u := range t.fg.Neighbors(v) {
				if q := t.part[u]; q >= 0 {
					conn[q] += ews[i]
				}
			}
			base := conn[own]
			for q := 0; q < h.p; q++ {
				if int32(q) != own && conn[q] > base {
					ws.entries = append(ws.entries, moveEntry{gain: conn[q] - base, v: v, to: int32(q)})
				}
			}
		}
	}
}

// group returns the fork-join group the hierarchy's regions run on: the
// engine's (so V-cycle busy time rolls into Stats.WorkerBusy) or a
// hierarchy-private one.
func (h *Hierarchy) group() *par.Group {
	if h.opt.Group != nil {
		return h.opt.Group
	}
	return &h.mt.own
}

// workers picks the fork width for a region of the given size — a pure
// function of the input size.
func (h *Hierarchy) workers(units, min int) int {
	if h.opt.Procs > 1 && units >= min {
		return h.opt.Procs
	}
	return 1
}

// collectImpure returns the ascending list of group members whose
// partner's partition diverged (arena: h.orderBuf).
func (h *Hierarchy) collectImpure(lv *level, fg *graph.Graph, fa *partition.Assignment) []graph.Vertex {
	n := fg.Order()
	h.shards = par.Split(h.shards[:0], n, h.workers(n, parSweepMin))
	growSweeps(&h.sweeps, len(h.shards))
	h.swTask = sweepTask{h: h, kind: sweepPurity, fg: fg, part: fa.Part, lv: lv}
	h.group().Run(len(h.shards), &h.swTask)
	h.swTask = sweepTask{}
	out := h.orderBuf[:0]
	for i := range h.shards {
		out = append(out, h.sweeps[i].verts...)
		h.sweeps[i].verts = h.sweeps[i].verts[:0]
	}
	h.orderBuf = out[:0]
	return out
}

// collectFree projects the fine assignment up through surviving groups
// and returns the ascending list of unmapped live vertices (arena:
// h.freeBuf).
func (h *Hierarchy) collectFree(lv *level, fg *graph.Graph, fa *partition.Assignment) []graph.Vertex {
	n := fg.Order()
	h.shards = par.Split(h.shards[:0], n, h.workers(n, parSweepMin))
	growSweeps(&h.sweeps, len(h.shards))
	h.swTask = sweepTask{h: h, kind: sweepProject, fg: fg, part: fa.Part, lv: lv}
	h.group().Run(len(h.shards), &h.swTask)
	h.swTask = sweepTask{}
	out := h.freeBuf[:0]
	for i := range h.shards {
		out = append(out, h.sweeps[i].verts...)
		h.sweeps[i].verts = h.sweeps[i].verts[:0]
	}
	h.freeBuf = out[:0]
	return out
}

// projectDown applies the coarse decision to level l's fine side and
// returns the ascending list of changed vertices (arena: h.changeBuf).
func (h *Hierarchy) projectDown(lv *level, fg *graph.Graph, fa *partition.Assignment) []graph.Vertex {
	n := fg.Order()
	h.shards = par.Split(h.shards[:0], n, h.workers(n, parSweepMin))
	growSweeps(&h.sweeps, len(h.shards))
	h.swTask = sweepTask{h: h, kind: sweepUncoarsen, fg: fg, part: fa.Part, lv: lv}
	h.group().Run(len(h.shards), &h.swTask)
	h.swTask = sweepTask{}
	out := h.changeBuf[:0]
	for i := range h.shards {
		out = append(out, h.sweeps[i].verts...)
		h.sweeps[i].verts = h.sweeps[i].verts[:0]
	}
	h.changeBuf = out[:0]
	return out
}

// levelWeights computes the per-partition level-0 cardinality weights,
// their total and the heaviest single cluster, sharded over the slot
// range. All three reductions are sums/maxes of small integers, so
// float accumulation is exact and any shard merge is bitwise-identical.
func (h *Hierarchy) levelWeights(l int, fg *graph.Graph, fa *partition.Assignment) (weights []float64, total, maxW float64) {
	p := h.p
	if cap(h.wBuf) < p {
		h.wBuf = make([]float64, p)
	}
	weights = h.wBuf[:p]
	for q := range weights {
		weights[q] = 0
	}
	n := fg.Order()
	h.shards = par.Split(h.shards[:0], n, h.workers(n, parSweepMin))
	growSweeps(&h.sweeps, len(h.shards))
	for i := range h.shards {
		ws := &h.sweeps[i]
		if cap(ws.weights) < p {
			ws.weights = make([]float64, p)
		}
		ws.weights = ws.weights[:p]
		for q := range ws.weights {
			ws.weights[q] = 0
		}
		ws.total, ws.maxW = 0, 0
	}
	h.swTask = sweepTask{h: h, kind: sweepWeights, l: l, fg: fg, part: fa.Part}
	h.group().Run(len(h.shards), &h.swTask)
	h.swTask = sweepTask{}
	for i := range h.shards {
		ws := &h.sweeps[i]
		for q := 0; q < p; q++ {
			weights[q] += ws.weights[q]
		}
		total += ws.total
		if ws.maxW > maxW {
			maxW = ws.maxW
		}
	}
	return weights, total, maxW
}

// collectSeeds returns the ascending, deduplicated refinement seed set:
// the changed vertices plus their neighborhoods (arena: h.orderBuf).
// Two strategies produce the identical list, chosen purely by input
// size: small changed sets gather and sort; large ones — the cold
// V-cycle projects a big share of the level — mark membership in a
// stamp set and collect with an ascending slot scan, which is O(order),
// shards, and is naturally sorted and deduplicated.
func (h *Hierarchy) collectSeeds(fg *graph.Graph, changed []graph.Vertex) []graph.Vertex {
	n := fg.Order()
	seeds := h.orderBuf[:0]
	if n < parSweepMin || len(changed)*32 < n {
		seeds = append(seeds, changed...)
		for _, v := range changed {
			seeds = append(seeds, fg.Neighbors(v)...)
		}
		slices.Sort(seeds)
		out := seeds[:0]
		var prev graph.Vertex = -1
		for _, v := range seeds {
			if v != prev {
				out = append(out, v)
				prev = v
			}
		}
		return out
	}
	h.seedMarks.Grow(n)
	h.seedMarks.Next()
	h.shards, h.cum = splitByDeg(fg, changed, h.workers(len(changed), parSeedMin), h.shards, h.cum)
	h.swTask = sweepTask{h: h, kind: sweepSeedMark, fg: fg, list: changed}
	h.group().Run(len(h.shards), &h.swTask)
	h.shards = par.Split(h.shards[:0], n, h.workers(n, parSweepMin))
	growSweeps(&h.sweeps, len(h.shards))
	h.swTask = sweepTask{h: h, kind: sweepSeedCollect, fg: fg}
	h.group().Run(len(h.shards), &h.swTask)
	h.swTask = sweepTask{}
	for i := range h.shards {
		seeds = append(seeds, h.sweeps[i].verts...)
		h.sweeps[i].verts = h.sweeps[i].verts[:0]
	}
	return seeds
}

// scanSeeds computes every strictly positive-gain move of the seed
// vertices and pushes them onto the heap. The per-seed scan shards
// arc-balanced over the seed list; per-worker entry buffers
// concatenated in worker order over the ascending seed list replay the
// exact sequential push sequence, so the heap array is bit-identical at
// every worker count.
func (h *Hierarchy) scanSeeds(fg *graph.Graph, fa *partition.Assignment, seeds []graph.Vertex) {
	h.shards, h.cum = splitByDeg(fg, seeds, h.workers(len(seeds), parSeedMin), h.shards, h.cum)
	growSweeps(&h.sweeps, len(h.shards))
	for i := range h.shards {
		ws := &h.sweeps[i]
		if cap(ws.conn) < h.p {
			ws.conn = make([]float64, h.p)
		}
		ws.entries = ws.entries[:0]
	}
	h.swTask = sweepTask{h: h, kind: sweepMoveScan, fg: fg, part: fa.Part, list: seeds}
	h.group().Run(len(h.shards), &h.swTask)
	h.swTask = sweepTask{}
	for i := range h.shards {
		for _, e := range h.sweeps[i].entries {
			h.heapPush(e)
		}
		h.sweeps[i].entries = h.sweeps[i].entries[:0]
	}
}

// cwPairCmp is a total order on aggregation pairs (coarse endpoint,
// then weight): with no distinct equal elements, any sorting algorithm
// yields the same permutation, so run aggregation sums are identical
// everywhere.
func cwPairCmp(a, b cwPair) int {
	if a.cw != b.cw {
		return int(a.cw) - int(b.cw)
	}
	switch {
	case a.w < b.w:
		return -1
	case a.w > b.w:
		return 1
	}
	return 0
}

// connectTask aggregates the coarse adjacency of each new group in a
// shard: gather both members' arcs, sort by coarse endpoint, collapse
// runs into (endpoint, weight) pairs with per-group end offsets. All
// output is worker-private; insertion replays sequentially afterwards.
type connectTask struct {
	h    *Hierarchy
	fg   *graph.Graph
	lv   *level
	reps []graph.Vertex
}

func (t *connectTask) Do(w int) {
	h := t.h
	r := h.shards[w]
	ws := &h.sweeps[w]
	pairs, runs := ws.pairs[:0], ws.runs[:0]
	for i := r.Lo; i < r.Hi; i++ {
		v := t.reps[i]
		cv := t.lv.f2c[v]
		scratch := ws.scratch[:0]
		members := [2]graph.Vertex{v, t.lv.match[v]}
		cnt := 1
		if members[1] != v {
			cnt = 2
		}
		for _, mb := range members[:cnt] {
			ews := t.fg.EdgeWeights(mb)
			for j, nb := range t.fg.Neighbors(mb) {
				cw := t.lv.f2c[nb]
				if cw == cv || cw < 0 {
					continue
				}
				scratch = append(scratch, cwPair{cw, ews[j]})
			}
		}
		slices.SortFunc(scratch, cwPairCmp)
		for j := 0; j < len(scratch); {
			k := j + 1
			wsum := scratch[j].w
			for k < len(scratch) && scratch[k].cw == scratch[j].cw {
				wsum += scratch[k].w
				k++
			}
			pairs = append(pairs, cwPair{scratch[j].cw, wsum})
			j = k
		}
		runs = append(runs, int32(len(pairs)))
		ws.scratch = scratch[:0]
	}
	ws.pairs, ws.runs = pairs, runs
}
