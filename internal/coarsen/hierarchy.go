package coarsen

// hierarchy.go is the V-cycle's coarse hierarchy: a stack of
// heavy-edge-matched coarse graphs the engine keeps alive across
// Repartition calls. The key property is that the hierarchy is
// *incremental*: after a warm edit the hierarchy is repaired — only the
// groups whose members were touched are dissolved and re-matched —
// instead of recoarsened from scratch. Level 0 learns its touched set
// from the base graph's edit journal (TouchedSince; user edits are the
// only mutations there). Above that the journal is NOT used: a repair
// wave on a big graph can dwarf the journal's bounded window, which
// would force rebuilds exactly on the large warm graphs the hierarchy
// exists for. Instead, since coarse graphs are mutated only by the
// hierarchy's own repair, repair at level l records the exact set of
// coarse vertices it touches (mirroring the journal's semantics:
// removed vertex + its former neighbors per dissolve, new vertex + its
// aggregated-edge endpoints per rematch) and Update hands that wave to
// level l+1's repair as its touched set — exact at any scale.
//
// Weights: a coarse vertex's weight is the number of *level-0* vertices
// it represents (every fine vertex counts 1, whatever its application
// weight), so weighted balance at any level speaks the engine's
// vertex-count balance language. Matching is restricted to
// same-partition pairs (the paper's §4 rule), so every level inherits a
// well-defined partition; groups whose members' partitions diverge —
// the fine polish moves individual vertices — are dissolved by the next
// Update's purity sweep.
//
// Determinism: every hierarchy operation either iterates sequentially
// in ascending vertex order (or an explicitly sorted order) or shards
// over the worker group under the engine's standard discipline —
// contiguous shards that are pure functions of the input, per-worker
// buffers merged in shard order, atomic claims deciding membership
// only, and total-order sorts erasing scheduling (see parallel.go). No
// map iteration reaches a graph mutation or a float accumulation, and
// Procs <= 1 runs the identical kernels inline. The V-cycle therefore
// produces bit-identical assignments at every engine worker count.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/spectral"
)

// HierarchyOptions configures a Hierarchy.
type HierarchyOptions struct {
	// CoarsenTo stops coarsening once a level has at most this many live
	// vertices (0 = max(64, 16·P), clamped to at least 2·P).
	CoarsenTo int
	// MaxLevels caps the number of coarse levels (0 = 32).
	MaxLevels int
	// Seed drives the spectral solve of the coarsest graph when the
	// current partition is degenerate (some partition empty, e.g. the
	// first call after a flood-fill assignment). 0 keeps the spectral
	// package's fixed default.
	Seed int64
	// EpsilonMax bounds the ε escalation of the coarsest weighted
	// balance LP (0 = 8), mirroring the engine's stage ladder.
	EpsilonMax float64
	// Group is the fork-join group the sharded hierarchy kernels run on
	// (nil = a hierarchy-private group). The engine passes its own group
	// so V-cycle busy time rolls into Stats.WorkerBusy.
	Group *par.Group
	// Procs is the worker count for the sharded kernels; <= 1 runs the
	// exact sequential path. Results are bit-identical at every value —
	// parallelism is purely a latency property, matching the engine
	// contract.
	Procs int
}

func (o HierarchyOptions) coarsenTo(p int) int {
	ct := o.CoarsenTo
	if ct <= 0 {
		ct = 16 * p
		if ct < 64 {
			ct = 64
		}
	}
	if ct < 2*p {
		ct = 2 * p
	}
	return ct
}

func (o HierarchyOptions) maxLevels() int {
	if o.MaxLevels <= 0 {
		return 32
	}
	return o.MaxLevels
}

func (o HierarchyOptions) epsMax() float64 {
	if o.EpsilonMax < 1 {
		return 8
	}
	return o.EpsilonMax
}

// LevelStats reports what one Update/Uncoarsen pass did at one level.
// The slice returned by Hierarchy.Levels is an arena overwritten by the
// next Update; copy what must survive.
type LevelStats struct {
	// Vertices and Edges are the coarse graph's live sizes after Update.
	Vertices, Edges int
	// Dissolved counts groups dissolved during repair (touched members
	// plus purity violations); Matched counts groups formed (every
	// group on a rebuild). Rebuilt reports that the level was (re)built
	// from scratch instead of repaired in place.
	Dissolved, Matched int
	Rebuilt            bool
	// Projected counts fine vertices whose partition changed when the
	// coarse decision was projected down; Refined counts the greedy
	// refinement moves applied at the fine side of this level.
	Projected, Refined int
	// CoarsenTime and UncoarsenTime are the wall clocks of this level's
	// Update share and Uncoarsen share.
	CoarsenTime, UncoarsenTime time.Duration
}

// level holds one contraction step: the coarse graph (owned), the coarse
// assignment, and the fine→coarse maps over the parent graph's slots.
type level struct {
	gc       *graph.Graph          // coarse graph (hierarchy-owned)
	ca       *partition.Assignment // coarse assignment, parallel to gc slots
	match    []graph.Vertex        // fine partner (self = singleton), fine slots
	f2c      []graph.Vertex        // fine slot → coarse slot, −1 = untracked
	consumed uint64                // parent-graph epoch this matching reflects
}

// Hierarchy is a journal-repairable multilevel coarsening of one graph.
// It is bound to the graph at creation; Update (re)builds or repairs the
// level stack bottom-up, SolveCoarsest partitions the coarsest graph,
// and Uncoarsen projects the coarse decision back down with per-level
// greedy refinement. A Hierarchy is not safe for concurrent use and all
// returned slices are arenas reused by the next call.
type Hierarchy struct {
	g      *graph.Graph
	opt    HierarchyOptions
	p      int
	levels []*level
	lstats []LevelStats

	// recordWave is set while repair runs, making the group mutators
	// (dissolve, rematch, connectGroups) log every coarse vertex they
	// touch into waveCur — the next level's exact touched set.
	recordWave bool

	// Scratch arenas, grown to the largest level seen.
	touchBuf  []graph.Vertex
	wavePrev  []graph.Vertex
	waveCur   []graph.Vertex
	freeBuf   []graph.Vertex
	orderBuf  []graph.Vertex
	repsBuf   []graph.Vertex
	cvsBuf    []graph.Vertex
	changeBuf []graph.Vertex
	connBuf   []float64
	wBuf      []float64
	targBuf   []int
	heapBuf   []moveEntry

	// Parallel scratch (parallel.go): the shared matcher, the shard
	// table, per-worker sweep arenas and the reusable task frames.
	mt        matcher
	shards    []par.Range
	sweeps    []sweepWorker
	cum       []int32
	seedMarks par.Stamps
	swTask    sweepTask
	cgTask    connectTask
}

type cwPair struct {
	cw graph.Vertex
	w  float64
}

// stall: a contraction that keeps more than 19/20 of the fine vertices
// is not worth a level (and a repaired level that degrades past it is
// rebuilt).
const stallNum, stallDen = 19, 20

// NewHierarchy returns an empty hierarchy bound to g. The first Update
// builds the level stack.
func NewHierarchy(g *graph.Graph, opt HierarchyOptions) *Hierarchy {
	h := &Hierarchy{g: g, opt: opt}
	h.mt.group = opt.Group
	h.mt.procs = opt.Procs
	return h
}

// Depth returns the number of coarse levels.
func (h *Hierarchy) Depth() int { return len(h.levels) }

// Levels returns per-level statistics for the last Update/Uncoarsen
// pair. The slice is an arena overwritten by the next Update.
func (h *Hierarchy) Levels() []LevelStats { return h.lstats }

// Coarsest returns the coarsest graph and its assignment (nil, nil when
// the hierarchy is empty). Both are hierarchy-owned.
func (h *Hierarchy) Coarsest() (*graph.Graph, *partition.Assignment) {
	if len(h.levels) == 0 {
		return nil, nil
	}
	lv := h.levels[len(h.levels)-1]
	return lv.gc, lv.ca
}

// levelGraph returns the graph whose vertices are level l's fine side.
func (h *Hierarchy) levelGraph(l int) *graph.Graph {
	if l == 0 {
		return h.g
	}
	return h.levels[l-1].gc
}

// levelAssign returns the assignment of level l's fine side.
func (h *Hierarchy) levelAssign(l int, a *partition.Assignment) *partition.Assignment {
	if l == 0 {
		return a
	}
	return h.levels[l-1].ca
}

// levelWeight is the level-0 cardinality of a level-l fine vertex.
func (h *Hierarchy) levelWeight(l int, v graph.Vertex) float64 {
	if l == 0 {
		return 1
	}
	return h.levels[l-1].gc.VertexWeight(v)
}

// Update brings the hierarchy in sync with the graph and assignment:
// each level is incrementally repaired (only touched or impure groups
// dissolve and re-match) — level 0 from the base graph's edit journal,
// upper levels from the repair wave recorded one level below — and
// rebuilt from scratch where that fails; levels are added
// while the coarsest graph stays above the CoarsenTo threshold and
// dropped once it does not (or coarsening stalls). Every live vertex
// must be assigned (run phase 1 first). It returns true when every
// pre-existing level was repaired in place — the warm path the engine's
// Stats report as HierarchyRepaired; levels appended below the repaired
// stack (repairs grow level graphs, occasionally deepening the
// hierarchy) do not count against it.
func (h *Hierarchy) Update(ctx context.Context, a *partition.Assignment) (repaired bool, err error) {
	if a.P != h.p {
		h.levels = h.levels[:0] // partition-count change: start over
		h.p = a.P
	}
	ct := h.opt.coarsenTo(h.p)
	origDepth := len(h.levels)
	// anyRebuilt forces the cascade: a rebuilt level is a brand-new graph
	// object, so every deeper level's consumed epoch is meaningless.
	// rebuiltExisting feeds the repaired flag: appending levels below the
	// repaired stack (repairs grow level graphs, occasionally deepening
	// the hierarchy) is growth, not a recoarsen of existing state.
	anyRebuilt, rebuiltExisting := false, false
	h.lstats = h.lstats[:0]
	for l := 0; ; l++ {
		// The wave recorded while processing level l−1 — its coarse-graph
		// mutations, which are exactly this level's fine-side changes —
		// becomes this level's touched set; recorders refill waveCur for
		// level l+1. Level 0 ignores wavePrev and reads the base graph's
		// journal instead.
		h.wavePrev, h.waveCur = h.waveCur, h.wavePrev[:0]
		fg := h.levelGraph(l)
		if l >= h.opt.maxLevels() || fg.NumVertices() <= ct {
			h.levels = h.levels[:l]
			break
		}
		if err := cancel.Check(ctx, "coarsen"); err != nil {
			h.levels = h.levels[:l] // deeper levels are stale; drop them
			return false, err
		}
		fa := h.levelAssign(l, a)
		h.lstats = append(h.lstats, LevelStats{})
		st := &h.lstats[l]
		t0 := time.Now()
		ok := false
		if !anyRebuilt && l < len(h.levels) {
			ok = h.repair(l, h.levels[l], fg, fa, st, h.wavePrev, l > 0)
			if ok && stallDen*h.levels[l].gc.NumVertices() > stallNum*fg.NumVertices() {
				ok = false // repairs degraded the reduction ratio: rebuild
			}
		}
		if !ok {
			lv := h.build(l, fg, fa, st)
			anyRebuilt = true
			if l < origDepth {
				rebuiltExisting = true
			}
			if l < len(h.levels) {
				h.levels[l] = lv
			} else {
				h.levels = append(h.levels, lv)
			}
			if stallDen*lv.gc.NumVertices() > stallNum*fg.NumVertices() {
				// Coarsening stalls here: this level buys <5% reduction,
				// so it (and anything deeper) is not worth keeping.
				h.levels = h.levels[:l]
				h.lstats = h.lstats[:l]
				break
			}
		}
		st.Vertices = h.levels[l].gc.NumVertices()
		st.Edges = h.levels[l].gc.NumEdges()
		st.CoarsenTime = time.Since(t0)
	}
	return origDepth > 0 && !rebuiltExisting && len(h.levels) > 0, nil
}

// repair incrementally repairs level lv (fine graph fg, fine assignment
// fa). The touched set comes from fg's edit journal at level 0
// (useWave false) and from the repair wave recorded one level below at
// every other level (useWave true) — see the package comment. It
// returns false when a full rebuild is needed: the level-0 journal does
// not reach back to the consumed epoch, or dead coarse slots piled up
// past half the order.
func (h *Hierarchy) repair(l int, lv *level, fg *graph.Graph, fa *partition.Assignment, st *LevelStats, wave []graph.Vertex, useWave bool) bool {
	touched := wave
	if !useWave {
		var exact bool
		touched, exact = fg.TouchedSince(lv.consumed, h.touchBuf[:0])
		h.touchBuf = touched[:0]
		if !exact {
			return false
		}
	}
	gc := lv.gc
	if ord := gc.Order(); ord > 256 && ord > 2*gc.NumVertices() {
		return false // dead-slot bloat: take the compacting rebuild
	}
	// Grow the per-fine-slot maps for vertices added since last time.
	for len(lv.f2c) < fg.Order() {
		lv.match = append(lv.match, graph.Vertex(len(lv.f2c)))
		lv.f2c = append(lv.f2c, -1)
	}
	h.recordWave = true
	defer func() { h.recordWave = false }()
	// 1. Structural dissolution: a touched vertex invalidates its
	// group — membership, cardinality weight or aggregated adjacency may
	// all be stale.
	dissolved := 0
	for _, v := range touched {
		dissolved += h.dissolve(lv, v)
	}
	// 2. Purity: dissolve pairs whose members' partitions diverged since
	// the last update (the fine polish moves vertices one by one).
	// Detection is a sharded pure-predicate sweep over frozen state; the
	// merged list is in ascending slot order and the dissolves replay
	// sequentially. A pair is detected at both members and the second
	// dissolve is a no-op, exactly like the sequential scan's skip of the
	// already-unmapped partner.
	for _, v := range h.collectImpure(lv, fg, fa) {
		dissolved += h.dissolve(lv, v)
	}
	// 3. Collect the freed vertices and project the fine assignment up
	// through the surviving (pure) groups (sharded; the coarse write is
	// owned by each group's smallest member).
	free := h.collectFree(lv, fg, fa)
	// 4. Re-match the freed vertices among themselves (same-partition
	// HEM) and wire the new groups into the coarse graph; the recorders
	// log the insertions into waveCur, which is exactly the touched set
	// level l+1's repair consumes.
	matched := h.rematch(l, lv, fg, fa, free)
	st.Dissolved = dissolved
	st.Matched = matched
	lv.consumed = fg.Epoch()
	return true
}

// dissolve removes v's group from the coarse graph and unmaps its
// members; it reports 1 if a group was actually dissolved.
func (h *Hierarchy) dissolve(lv *level, v graph.Vertex) int {
	if int(v) >= len(lv.f2c) {
		return 0
	}
	cv := lv.f2c[v]
	if cv < 0 {
		return 0
	}
	if lv.gc.Alive(cv) {
		if h.recordWave {
			// Mirror the journal: a removal touches the removed vertex
			// and every former neighbor (their aggregated adjacency
			// changes) — captured before the removal erases it.
			h.waveCur = append(h.waveCur, cv)
			h.waveCur = append(h.waveCur, lv.gc.Neighbors(cv)...)
		}
		_ = lv.gc.RemoveVertex(cv)
		// Clear the dead slot's assignment: downstream kernels (the
		// coarsest-level layering, partition.Validate) reject dead
		// vertices that still carry a partition.
		lv.ca.Part[cv] = partition.Unassigned
	}
	u := lv.match[v]
	lv.f2c[v] = -1
	lv.match[v] = v
	if u != v {
		lv.f2c[u] = -1
		lv.match[u] = u
	}
	return 1
}

// rematch heavy-edge-matches the freed vertices among themselves with
// the deterministic mutual-proposal matcher (parallel.go) and creates
// the new coarse vertices and their aggregated adjacency, one group per
// matched pair or leftover singleton, representatives in ascending slot
// order. It returns the number of groups formed.
func (h *Hierarchy) rematch(l int, lv *level, fg *graph.Graph, fa *partition.Assignment, free []graph.Vertex) int {
	if len(free) == 0 {
		return 0
	}
	h.mt.run(fg, fa.Part, free)
	reps := h.repsBuf[:0]
	cvs := h.cvsBuf[:0]
	for _, v := range free {
		if lv.f2c[v] >= 0 {
			continue // grouped as an earlier vertex's partner
		}
		u := h.mt.mate[v]
		w := h.levelWeight(l, v)
		if u != v {
			w += h.levelWeight(l, u)
		}
		cv := lv.gc.AddVertex(w)
		if h.recordWave {
			h.waveCur = append(h.waveCur, cv)
		}
		lv.ca.Grow(lv.gc.Order())
		lv.ca.Part[cv] = fa.Part[v]
		lv.f2c[v] = cv
		if u != v {
			lv.f2c[u] = cv
			lv.match[v], lv.match[u] = u, v
		} else {
			lv.match[v] = v
		}
		reps = append(reps, v)
		cvs = append(cvs, cv)
	}
	h.connectGroups(fg, lv, reps, cvs)
	h.repsBuf, h.cvsBuf = reps[:0], cvs[:0]
	return len(cvs)
}

// build (re)coarsens one whole level from scratch, running the same
// mutual-proposal matcher as the repair path over all live vertices.
func (h *Hierarchy) build(l int, fg *graph.Graph, fa *partition.Assignment, st *LevelStats) *level {
	n := fg.Order()
	free := h.freeBuf[:0]
	for v := 0; v < n; v++ {
		if fg.Alive(graph.Vertex(v)) {
			free = append(free, graph.Vertex(v))
		}
	}
	h.mt.run(fg, fa.Part, free)
	match := make([]graph.Vertex, n)
	for i := range match {
		match[i] = graph.Vertex(i)
	}
	f2c := make([]graph.Vertex, n)
	for i := range f2c {
		f2c[i] = -1
	}
	gc := graph.New(fg.NumVertices())
	ca := &partition.Assignment{P: h.p}
	lv := &level{gc: gc, ca: ca, match: match, f2c: f2c}
	reps := h.repsBuf[:0]
	cvs := h.cvsBuf[:0]
	for _, vv := range free {
		v := int(vv)
		if f2c[v] >= 0 {
			continue // grouped as an earlier vertex's partner
		}
		u := h.mt.mate[v]
		w := h.levelWeight(l, vv)
		if u != vv {
			w += h.levelWeight(l, u)
		}
		cv := gc.AddVertex(w)
		f2c[v] = cv
		if u != vv {
			f2c[u] = cv
			match[v], match[u] = u, vv
		}
		ca.Part = append(ca.Part, fa.Part[v])
		reps = append(reps, vv)
		cvs = append(cvs, cv)
	}
	h.connectGroups(fg, lv, reps, cvs)
	h.freeBuf = free[:0]
	h.repsBuf, h.cvsBuf = reps[:0], cvs[:0]
	lv.consumed = fg.Epoch()
	st.Rebuilt = true
	st.Matched = len(ca.Part)
	return lv
}

// connectGroups inserts the aggregated coarse adjacency of newly created
// coarse vertices cvs (reps[i] is the smallest fine member of cvs[i]).
// Each group's neighbor list is aggregated into a sorted run — never via
// map iteration — so coarse adjacency order is deterministic. The
// aggregation is per-group independent, so it shards over the group
// list by arc weight with worker-private buffers; the insertions then
// replay sequentially in ascending group order, producing the identical
// coarse graph and wave log at every worker count. Edges between two
// new groups are attempted from both sides with identical aggregate
// weight, and AddEdgeIfAbsent keeps the first.
func (h *Hierarchy) connectGroups(fg *graph.Graph, lv *level, reps, cvs []graph.Vertex) {
	if len(cvs) == 0 {
		return
	}
	cum := append(h.cum[:0], 0)
	t := int32(0)
	for _, v := range reps {
		d := fg.Degree(v)
		if u := lv.match[v]; u != v {
			d += fg.Degree(u)
		}
		t += int32(d) + 1
		cum = append(cum, t)
	}
	h.cum = cum
	w := 1
	if h.opt.Procs > 1 && int(t) >= parConnectArcMin {
		w = h.opt.Procs
	}
	h.shards = par.SplitByWeight(h.shards[:0], cum, w)
	growSweeps(&h.sweeps, len(h.shards))
	h.cgTask = connectTask{h: h, fg: fg, lv: lv, reps: reps}
	h.group().Run(len(h.shards), &h.cgTask)
	h.cgTask = connectTask{}
	for wk := range h.shards {
		ws := &h.sweeps[wk]
		lo := int32(0)
		for k, hi := range ws.runs {
			cv := cvs[h.shards[wk].Lo+k]
			for _, pr := range ws.pairs[lo:hi] {
				lv.gc.AddEdgeIfAbsent(cv, pr.cw, pr.w)
				if h.recordWave {
					// An edge insertion touches both endpoints; cv itself
					// was already recorded at AddVertex.
					h.waveCur = append(h.waveCur, pr.cw)
				}
			}
			lo = hi
		}
		ws.pairs, ws.runs = ws.pairs[:0], ws.runs[:0]
	}
}

// fineTargets returns the per-partition vertex-count targets in level-0
// units (arena-backed).
func (h *Hierarchy) fineTargets() []int {
	if cap(h.targBuf) < h.p {
		h.targBuf = make([]int, h.p)
	}
	h.targBuf = partition.TargetsInto(h.targBuf[:h.p], h.g.NumVertices(), h.p)
	return h.targBuf
}

// SolveCoarsest partitions the coarsest graph. On the warm path the
// current coarse partition is rebalanced by the weighted balance LP
// (CoarseBalance, ε-escalated). When the partition is degenerate — some
// partition holds no weight, e.g. the first call ever, where phase 1
// flood-filled everything into one partition — the coarsest graph is
// instead partitioned from scratch by weight-aware recursive spectral
// bisection with the configured seed. It returns the fine-vertex weight
// moved and whether the spectral path ran.
func (h *Hierarchy) SolveCoarsest(ctx context.Context, solver lp.Solver) (moved int, spectralInit bool, err error) {
	if len(h.levels) == 0 {
		return 0, false, nil
	}
	lv := h.levels[len(h.levels)-1]
	gc, ca := lv.gc, lv.ca
	weights := ca.Weights(gc)
	degenerate := len(weights) < h.p
	for q := 0; !degenerate && q < h.p; q++ {
		if weights[q] <= 0 {
			degenerate = true
		}
	}
	if !degenerate {
		moved, err = CoarseBalance(ctx, gc, ca, h.fineTargets(), solver, h.opt.epsMax())
		return moved, false, err
	}
	part, rerr := spectral.RSB(gc, h.p, spectral.Options{Seed: h.opt.Seed, Group: h.opt.Group, Procs: h.opt.Procs})
	if rerr != nil {
		// Spectral failure (e.g. adversarially disconnected coarse
		// graphs): fall back to a deterministic greedy weight packing.
		return h.assignByWeight(gc, ca), true, nil
	}
	for v := 0; v < gc.Order(); v++ {
		if gc.Alive(graph.Vertex(v)) && part[v] != ca.Part[v] {
			moved += int(math.Round(gc.VertexWeight(graph.Vertex(v))))
			ca.Part[v] = part[v]
		}
	}
	return moved, true, nil
}

// assignByWeight deterministically packs coarse vertices onto the
// lightest partition, heaviest first — the last-resort coarsest
// initializer when the spectral solve fails.
func (h *Hierarchy) assignByWeight(gc *graph.Graph, ca *partition.Assignment) (moved int) {
	order := gc.Vertices()
	sort.Slice(order, func(i, j int) bool {
		wi, wj := gc.VertexWeight(order[i]), gc.VertexWeight(order[j])
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	if cap(h.wBuf) < h.p {
		h.wBuf = make([]float64, h.p)
	}
	load := h.wBuf[:h.p]
	for q := range load {
		load[q] = 0
	}
	for _, v := range order {
		best := 0
		for q := 1; q < h.p; q++ {
			if load[q] < load[best] {
				best = q
			}
		}
		if ca.Part[v] != int32(best) {
			ca.Part[v] = int32(best)
			moved += int(math.Round(gc.VertexWeight(v)))
		}
		load[best] += gc.VertexWeight(v)
	}
	return moved
}

// Uncoarsen projects the coarse partition back down the hierarchy,
// running boundary-seeded greedy refinement at every level (including
// level 0, writing into a). Refinement only applies strictly
// cut-reducing moves that keep every partition's level-0 cardinality
// within a capped cluster-granularity slack of its target (or improve
// its deviation), so the fine polish that follows faces a small,
// bounded residual imbalance. It returns the total refinement moves
// applied.
func (h *Hierarchy) Uncoarsen(ctx context.Context, a *partition.Assignment) (int, error) {
	total := 0
	for l := len(h.levels) - 1; l >= 0; l-- {
		if err := cancel.Check(ctx, "uncoarsen"); err != nil {
			return total, err
		}
		t0 := time.Now()
		fg := h.levelGraph(l)
		fa := h.levelAssign(l, a)
		lv := h.levels[l]
		// Downward projection is a sharded slot-owned sweep: each worker
		// writes only its own shard's fine slots, and the merged changed
		// list is in ascending slot order (parallel.go).
		changed := h.projectDown(lv, fg, fa)
		moved := h.refineLevel(l, fg, fa, changed)
		h.changeBuf = changed[:0]
		total += moved
		if l < len(h.lstats) {
			h.lstats[l].Projected = len(changed)
			h.lstats[l].Refined = moved
			h.lstats[l].UncoarsenTime = time.Since(t0)
		}
	}
	return total, nil
}

// moveEntry is one candidate refinement move on the lazy heap.
type moveEntry struct {
	gain float64
	v    graph.Vertex
	to   int32
}

// entryLess is the heap's strict total order: gain descending, then
// vertex id, then target partition.
func entryLess(a, b moveEntry) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	if a.v != b.v {
		return a.v < b.v
	}
	return a.to < b.to
}

func (h *Hierarchy) heapPush(e moveEntry) {
	h.heapBuf = append(h.heapBuf, e)
	i := len(h.heapBuf) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(h.heapBuf[i], h.heapBuf[parent]) {
			break
		}
		h.heapBuf[i], h.heapBuf[parent] = h.heapBuf[parent], h.heapBuf[i]
		i = parent
	}
}

func (h *Hierarchy) heapPop() moveEntry {
	top := h.heapBuf[0]
	last := len(h.heapBuf) - 1
	h.heapBuf[0] = h.heapBuf[last]
	h.heapBuf = h.heapBuf[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= last {
			break
		}
		if c+1 < last && entryLess(h.heapBuf[c+1], h.heapBuf[c]) {
			c++
		}
		if !entryLess(h.heapBuf[c], h.heapBuf[i]) {
			break
		}
		h.heapBuf[i], h.heapBuf[c] = h.heapBuf[c], h.heapBuf[i]
		i = c
	}
	return top
}

// refineLevel runs the per-level greedy refinement: a lazy max-gain heap
// seeded from the projection-changed vertices and their neighbors,
// applying strictly positive-gain moves under a weight guard (every
// partition stays within one max-cluster weight of its level-0 target).
// The weight and seed-gain scans shard over the worker group with
// deterministic merges (parallel.go); the move loop itself stays
// sequential and totally ordered, so results are identical at every
// engine worker count. Each applied move strictly decreases the cut, so
// the loop terminates (a generous budget guards float pathologies).
func (h *Hierarchy) refineLevel(l int, fg *graph.Graph, fa *partition.Assignment, changed []graph.Vertex) int {
	if len(changed) == 0 {
		return 0
	}
	p := h.p
	weights, total, slack := h.levelWeights(l, fg, fa)
	// Slack grants cluster-granularity freedom, but capped: at deep
	// levels a single cluster can hold a large share of the graph, and a
	// guard of ±maxClusterWeight would let one gain-positive mega-cluster
	// move flip the balance — imbalance the fine LP then repays in
	// cut-destroying moves. Beyond the cap a move is admitted only when
	// it does not worsen its endpoints' deviation (see the loop guard).
	if cap := 1 + total/(8*float64(p)); slack > cap {
		slack = cap
	}
	targets := h.fineTargets()
	if cap(h.connBuf) < p {
		h.connBuf = make([]float64, p)
	}
	h.heapBuf = h.heapBuf[:0]
	// Seed from the changed vertices and their neighborhoods, in
	// ascending deduplicated order, and scan each seed's moves with
	// per-worker entry buffers replayed in shard order — the heap
	// receives the exact push sequence of the sequential scan.
	seeds := h.collectSeeds(fg, changed)
	h.scanSeeds(fg, fa, seeds)
	h.orderBuf = seeds[:0]

	moved := 0
	budget := 2*fg.NumVertices() + 64
	for len(h.heapBuf) > 0 && moved < budget {
		e := h.heapPop()
		if !fg.Alive(e.v) {
			continue
		}
		from := fa.Part[e.v]
		if from < 0 || from == e.to {
			continue
		}
		// Recompute the gain: the stored one may be stale. Applying the
		// fresh gain keeps every applied move strictly cut-reducing.
		gain := h.gainOf(fg, fa, e.v, e.to)
		if gain <= 0 {
			continue
		}
		wv := h.levelWeight(l, e.v)
		devBefore := math.Abs(weights[from] - float64(targets[from]))
		if d := math.Abs(weights[e.to] - float64(targets[e.to])); d > devBefore {
			devBefore = d
		}
		devAfter := math.Abs(weights[from] - wv - float64(targets[from]))
		if d := math.Abs(weights[e.to] + wv - float64(targets[e.to])); d > devAfter {
			devAfter = d
		}
		if devAfter > slack && devAfter > devBefore {
			continue
		}
		fa.Part[e.v] = e.to
		weights[from] -= wv
		weights[e.to] += wv
		moved++
		h.pushMoves(fg, fa, e.v)
		for _, u := range fg.Neighbors(e.v) {
			h.pushMoves(fg, fa, u)
		}
	}
	h.heapBuf = h.heapBuf[:0]
	return moved
}

// pushMoves pushes every strictly positive-gain move of v onto the heap.
func (h *Hierarchy) pushMoves(fg *graph.Graph, fa *partition.Assignment, v graph.Vertex) {
	if !fg.Alive(v) {
		return
	}
	own := fa.Part[v]
	if own < 0 {
		return
	}
	conn := h.connBuf[:h.p]
	for q := range conn {
		conn[q] = 0
	}
	ws := fg.EdgeWeights(v)
	for i, u := range fg.Neighbors(v) {
		if q := fa.Part[u]; q >= 0 {
			conn[q] += ws[i]
		}
	}
	base := conn[own]
	for q := 0; q < h.p; q++ {
		if int32(q) != own && conn[q] > base {
			h.heapPush(moveEntry{gain: conn[q] - base, v: v, to: int32(q)})
		}
	}
}

// gainOf recomputes the cut gain of moving v to partition `to`,
// accumulating in adjacency order (the same order pushMoves used, so
// values agree bitwise).
func (h *Hierarchy) gainOf(fg *graph.Graph, fa *partition.Assignment, v graph.Vertex, to int32) float64 {
	own := fa.Part[v]
	var connTo, connOwn float64
	ws := fg.EdgeWeights(v)
	for i, u := range fg.Neighbors(v) {
		switch fa.Part[u] {
		case to:
			connTo += ws[i]
		case own:
			connOwn += ws[i]
		}
	}
	return connTo - connOwn
}

// Check is the hierarchy's test oracle: it verifies every structural
// invariant against the bound graph and the given fine assignment —
// fine→coarse mapping validity, matching symmetry, partition purity,
// upward projection consistency, cardinality-weight conservation
// (Σ coarse weight per partition = live fine count per partition at
// every level) and exact aggregated coarse edge weights. O(levels·m);
// test/fuzz use only.
func (h *Hierarchy) Check(a *partition.Assignment) error {
	for l, lv := range h.levels {
		fg := h.levelGraph(l)
		fa := h.levelAssign(l, a)
		if len(lv.f2c) < fg.Order() {
			return fmt.Errorf("level %d: f2c covers %d of %d slots", l, len(lv.f2c), fg.Order())
		}
		members := make(map[graph.Vertex]float64)
		for v := 0; v < fg.Order(); v++ {
			vv := graph.Vertex(v)
			cv := lv.f2c[v]
			if !fg.Alive(vv) {
				if cv >= 0 {
					return fmt.Errorf("level %d: dead vertex %d still mapped to %d", l, v, cv)
				}
				continue
			}
			if cv < 0 || !lv.gc.Alive(cv) {
				return fmt.Errorf("level %d: live vertex %d mapped to bad coarse %d", l, v, cv)
			}
			u := lv.match[v]
			if lv.match[u] != vv || lv.f2c[u] != cv {
				return fmt.Errorf("level %d: matching broken at %d (partner %d)", l, v, u)
			}
			if fa.Part[u] != fa.Part[v] {
				return fmt.Errorf("level %d: impure group {%d,%d}: parts %d/%d", l, v, u, fa.Part[v], fa.Part[u])
			}
			if lv.ca.Part[cv] != fa.Part[v] {
				return fmt.Errorf("level %d: projection stale at coarse %d: %d != %d", l, cv, lv.ca.Part[cv], fa.Part[v])
			}
			members[cv] += h.levelWeight(l, vv)
		}
		for v := 0; v < lv.gc.Order(); v++ {
			cv := graph.Vertex(v)
			if !lv.gc.Alive(cv) {
				if lv.ca.Part[cv] != partition.Unassigned {
					return fmt.Errorf("level %d: dead coarse slot %d still assigned to %d", l, cv, lv.ca.Part[cv])
				}
				continue
			}
			w, ok := members[cv]
			if !ok {
				return fmt.Errorf("level %d: coarse vertex %d has no members", l, cv)
			}
			if math.Abs(w-lv.gc.VertexWeight(cv)) > 1e-9 {
				return fmt.Errorf("level %d: coarse %d weight %g != member cardinality %g", l, cv, lv.gc.VertexWeight(cv), w)
			}
		}
		// Aggregated edge weights: recompute from the fine graph.
		type ck struct{ a, b graph.Vertex }
		want := make(map[ck]float64)
		for v := 0; v < fg.Order(); v++ {
			vv := graph.Vertex(v)
			if !fg.Alive(vv) {
				continue
			}
			ws := fg.EdgeWeights(vv)
			for i, u := range fg.Neighbors(vv) {
				cv, cu := lv.f2c[v], lv.f2c[u]
				if cv == cu || vv > u {
					continue
				}
				k := ck{cv, cu}
				if cv > cu {
					k = ck{cu, cv}
				}
				want[k] += ws[i]
			}
		}
		got := 0
		for v := 0; v < lv.gc.Order(); v++ {
			cv := graph.Vertex(v)
			if !lv.gc.Alive(cv) {
				continue
			}
			ws := lv.gc.EdgeWeights(cv)
			for i, cu := range lv.gc.Neighbors(cv) {
				if cv > cu {
					continue
				}
				got++
				w, ok := want[ck{cv, cu}]
				if !ok {
					return fmt.Errorf("level %d: coarse edge {%d,%d} has no fine counterpart", l, cv, cu)
				}
				if math.Abs(w-ws[i]) > 1e-6*(1+math.Abs(w)) {
					return fmt.Errorf("level %d: coarse edge {%d,%d} weight %g != aggregate %g", l, cv, cu, ws[i], w)
				}
			}
		}
		if got != len(want) {
			return fmt.Errorf("level %d: %d coarse edges, aggregation wants %d", l, got, len(want))
		}
	}
	return nil
}
