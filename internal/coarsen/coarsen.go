// Package coarsen implements the multilevel extension the paper sketches
// in §4 ("Another option is to use a multilevel approach and apply
// incremental partitioning recursively. We are currently exploring this
// approach."):
//
//  1. new vertices are assigned as usual (phase 1);
//  2. the graph is coarsened by heavy-edge matching restricted to
//     same-partition vertex pairs, so the coarse graph inherits a
//     well-defined partition;
//  3. the balance LP runs at the coarse level with weighted vertices,
//     moving whole clusters near the boundary; and
//  4. the result is projected back and polished by the ordinary
//     fine-level IGP (whose LPs are now nearly trivial).
//
// The benefit is not LP size (that depends only on P) but boundary
// traffic: most of the imbalance is corrected by moving weight-w clusters
// with single decisions, shrinking the number of fine-level stages and
// refinement rounds on large incremental changes.
package coarsen

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/balance"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layering"
	"repro/internal/lp"
	"repro/internal/partition"
)

// Options configures MultilevelRepartition.
type Options struct {
	// Inner configures the fine-level polish pass.
	Inner core.Options
}

// Stats reports a multilevel run.
type Stats struct {
	CoarseVertices int // coarse-graph size
	CoarseMoved    int // fine-vertex weight moved at the coarse level
	Fine           *core.Stats
}

// Match computes a heavy-edge matching restricted to pairs within the
// same partition. match[v] is v's partner (or v itself when unmatched);
// dead vertices map to themselves.
func Match(g *graph.Graph, a *partition.Assignment) []graph.Vertex {
	n := g.Order()
	match := make([]graph.Vertex, n)
	for v := range match {
		match[v] = graph.Vertex(v)
	}
	// Visit vertices in increasing-degree order (classic HEM heuristic).
	order := g.Vertices()
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	matched := make([]bool, n)
	for _, v := range order {
		if matched[v] {
			continue
		}
		var best graph.Vertex = -1
		var bestW float64
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if matched[u] || a.Part[u] != a.Part[v] {
				continue
			}
			if ws[i] > bestW || (ws[i] == bestW && (best < 0 || u < best)) {
				best, bestW = u, ws[i]
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
			matched[v], matched[best] = true, true
		}
	}
	return match
}

// Contract builds the coarse graph for a matching: matched pairs merge
// into one coarse vertex whose weight is the pair's total; edge weights
// aggregate (internal pair edges vanish). It returns the coarse graph,
// the fine→coarse map, and the coarse partition assignment.
func Contract(g *graph.Graph, a *partition.Assignment, match []graph.Vertex) (*graph.Graph, []graph.Vertex, *partition.Assignment) {
	fineToCoarse := make([]graph.Vertex, g.Order())
	for i := range fineToCoarse {
		fineToCoarse[i] = -1
	}
	gc := graph.New(g.NumVertices())
	var coarsePart []int32
	for _, v := range g.Vertices() {
		if fineToCoarse[v] >= 0 {
			continue
		}
		u := match[v]
		w := g.VertexWeight(v)
		if u != v && fineToCoarse[u] < 0 {
			w += g.VertexWeight(u)
		}
		cv := gc.AddVertex(w)
		fineToCoarse[v] = cv
		if u != v {
			fineToCoarse[u] = cv
		}
		coarsePart = append(coarsePart, a.Part[v])
	}
	// Aggregate edges.
	type edgeKey struct{ a, b graph.Vertex }
	agg := make(map[edgeKey]float64)
	for _, v := range g.Vertices() {
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			cv, cu := fineToCoarse[v], fineToCoarse[u]
			if cv == cu || v > u {
				continue
			}
			k := edgeKey{cv, cu}
			if cv > cu {
				k = edgeKey{cu, cv}
			}
			agg[k] += ws[i]
		}
	}
	for k, w := range agg {
		_ = gc.AddEdge(k.a, k.b, w)
	}
	ca := &partition.Assignment{Part: coarsePart, P: a.P}
	return gc, fineToCoarse, ca
}

// coarseBalance runs one weighted balance pass on the coarse graph,
// moving whole clusters boundary-first. Flows are computed in fine-vertex
// units from weighted δ bounds; each flow is realized greedily without
// overshooting, so a small residual may remain for the fine polish.
func coarseBalance(ctx context.Context, gc *graph.Graph, ca *partition.Assignment, targets []int, solver lp.Solver) (moved int, err error) {
	lay, err := layering.Layer(gc, ca)
	if err != nil {
		return 0, err
	}
	p := ca.P
	// Weighted δ and sizes (all integers: fine vertices have unit weight).
	wDelta := make([][]int, p)
	for i := range wDelta {
		wDelta[i] = make([]int, p)
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			for _, v := range lay.Pool(int32(i), int32(j)) {
				wDelta[i][j] += int(math.Round(gc.VertexWeight(v)))
			}
		}
	}
	weights := ca.Weights(gc)
	sizes := make([]int, p)
	for q, w := range weights {
		sizes[q] = int(math.Round(w))
	}
	m, err := balance.Formulate(wDelta, sizes, targets, 1)
	if err != nil {
		return 0, err
	}
	flows, sol, err := balance.Solve(ctx, m, solver)
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, nil // leave everything to the fine level
	}
	for _, f := range flows {
		remaining := f.Amount
		for _, v := range lay.Pool(f.From, f.To) {
			w := int(math.Round(gc.VertexWeight(v)))
			if w > remaining {
				continue // a lighter cluster deeper in the pool may still fit
			}
			ca.Part[v] = f.To
			remaining -= w
			moved += w
			if remaining == 0 {
				break
			}
		}
	}
	return moved, nil
}

// MultilevelRepartition incrementally repartitions g via one
// coarsen/balance/uncoarsen cycle followed by a fine-level polish. The
// assignment a is updated in place; partition sizes end exactly balanced
// (the polish guarantees it).
func MultilevelRepartition(ctx context.Context, g *graph.Graph, a *partition.Assignment, opt Options) (*Stats, error) {
	st := &Stats{}
	if _, _, err := core.Assign(g, a); err != nil {
		return nil, err
	}
	match := Match(g, a)
	gc, fineToCoarse, ca := Contract(g, a, match)
	st.CoarseVertices = gc.NumVertices()

	solver := opt.Inner.Solver
	if solver == nil {
		solver = lp.Bounded{}
	}
	targets := partition.Targets(g.NumVertices(), a.P)
	moved, err := coarseBalance(ctx, gc, ca, targets, solver)
	if err != nil {
		return nil, fmt.Errorf("coarsen: %w", err)
	}
	st.CoarseMoved = moved

	// Project the coarse decision back to the fine level.
	for _, v := range g.Vertices() {
		a.Part[v] = ca.Part[fineToCoarse[v]]
	}

	// Fine polish: the residual imbalance is at most a few cluster
	// granularities, so this converges in one or two cheap stages.
	fine, err := core.Repartition(ctx, g, a, opt.Inner)
	if err != nil {
		return nil, err
	}
	st.Fine = fine
	return st, nil
}
