// Package coarsen implements the multilevel extension the paper sketches
// in §4 ("Another option is to use a multilevel approach and apply
// incremental partitioning recursively. We are currently exploring this
// approach."):
//
//  1. new vertices are assigned as usual (phase 1);
//  2. the graph is coarsened by heavy-edge matching restricted to
//     same-partition vertex pairs, so the coarse graph inherits a
//     well-defined partition;
//  3. the balance LP runs at the coarse level with weighted vertices,
//     moving whole clusters near the boundary; and
//  4. the result is projected back and polished by the ordinary
//     fine-level IGP (whose LPs are now nearly trivial).
//
// The benefit is not LP size (that depends only on P) but boundary
// traffic: most of the imbalance is corrected by moving weight-w clusters
// with single decisions, shrinking the number of fine-level stages and
// refinement rounds on large incremental changes.
//
// Two entry points build on these kernels. The one-shot two-level cycle
// lives in core.MultilevelRepartition (it needs the fine-level engine for
// its polish pass, which this package must not import). The full V-cycle
// for large graphs is Hierarchy (hierarchy.go): a journal-repairable
// stack of coarse graphs the engine keeps alive across Repartition calls
// behind igp.WithMultilevel.
package coarsen

import (
	"context"
	"math"
	"sort"

	"repro/internal/balance"
	"repro/internal/graph"
	"repro/internal/layering"
	"repro/internal/lp"
	"repro/internal/par"
	"repro/internal/partition"
)

// Match computes a heavy-edge matching restricted to pairs within the
// same partition. match[v] is v's partner (or v itself when unmatched);
// dead vertices map to themselves. The result is deterministic — rounds
// of mutual proposals under a fixed total edge order (weight descending,
// then a symmetric edge hash, then partner id) — and identical at every
// worker count; Match is the sequential entry point. The returned slice
// is freshly allocated and caller-owned (unlike Hierarchy's arena-backed
// returns).
func Match(g *graph.Graph, a *partition.Assignment) []graph.Vertex {
	return MatchPar(g, a, nil, 1)
}

// MatchPar is Match sharded over a worker group: procs <= 1 (or a nil
// group with procs > 1 falling back to a private group) runs the exact
// same proposal rounds inline, so the result is bit-identical at every
// worker count.
func MatchPar(g *graph.Graph, a *partition.Assignment, group *par.Group, procs int) []graph.Vertex {
	n := g.Order()
	match := make([]graph.Vertex, n)
	for v := range match {
		match[v] = graph.Vertex(v)
	}
	m := matcher{group: group, procs: procs}
	free := g.Vertices()
	m.run(g, a.Part, free)
	for _, v := range free {
		match[v] = m.mate[v]
	}
	return match
}

// Contract builds the coarse graph for a matching: matched pairs merge
// into one coarse vertex whose weight is the pair's total; edge weights
// aggregate (internal pair edges vanish). It returns the coarse graph,
// the fine→coarse map, and the coarse partition assignment. The coarse
// graph is deterministic down to adjacency order: aggregated edges are
// inserted in sorted (min-endpoint, max-endpoint) order, so downstream
// kernels that walk coarse adjacency see the same float summation order
// on every run. All three returns are freshly allocated and
// caller-owned; nothing aliases g or match.
func Contract(g *graph.Graph, a *partition.Assignment, match []graph.Vertex) (*graph.Graph, []graph.Vertex, *partition.Assignment) {
	fineToCoarse := make([]graph.Vertex, g.Order())
	for i := range fineToCoarse {
		fineToCoarse[i] = -1
	}
	gc := graph.New(g.NumVertices())
	var coarsePart []int32
	for _, v := range g.Vertices() {
		if fineToCoarse[v] >= 0 {
			continue
		}
		u := match[v]
		w := g.VertexWeight(v)
		if u != v && fineToCoarse[u] < 0 {
			w += g.VertexWeight(u)
		}
		cv := gc.AddVertex(w)
		fineToCoarse[v] = cv
		if u != v {
			fineToCoarse[u] = cv
		}
		coarsePart = append(coarsePart, a.Part[v])
	}
	// Aggregate edges. The map is only an accumulator: insertion happens
	// over the sorted key list, never in map-iteration order.
	type edgeKey struct{ a, b graph.Vertex }
	agg := make(map[edgeKey]float64)
	keys := make([]edgeKey, 0, g.NumEdges())
	for _, v := range g.Vertices() {
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			cv, cu := fineToCoarse[v], fineToCoarse[u]
			if cv == cu || v > u {
				continue
			}
			k := edgeKey{cv, cu}
			if cv > cu {
				k = edgeKey{cu, cv}
			}
			if _, seen := agg[k]; !seen {
				keys = append(keys, k)
			}
			agg[k] += ws[i]
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		_ = gc.AddEdge(k.a, k.b, agg[k])
	}
	ca := &partition.Assignment{Part: coarsePart, P: a.P}
	return gc, fineToCoarse, ca
}

// CoarseBalance runs one weighted balance pass on a coarse graph whose
// vertex weights count fine vertices, moving whole clusters
// boundary-first. Flows are computed in fine-vertex units from weighted δ
// bounds and realized greedily without overshooting, so a small residual
// may remain for a fine-level polish; the escalation ladder relaxes ε up
// to epsMax before giving up (moved = 0, no error) exactly like the
// engine's balance stages. targets are the fine-level per-partition
// vertex-count targets.
func CoarseBalance(ctx context.Context, gc *graph.Graph, ca *partition.Assignment, targets []int, solver lp.Solver, epsMax float64) (moved int, err error) {
	lay, err := layering.Layer(gc, ca)
	if err != nil {
		return 0, err
	}
	p := ca.P
	// Weighted δ and sizes (all integers: fine vertices have unit weight).
	wDelta := make([][]int, p)
	for i := range wDelta {
		wDelta[i] = make([]int, p)
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			for _, v := range lay.Pool(int32(i), int32(j)) {
				wDelta[i][j] += int(math.Round(gc.VertexWeight(v)))
			}
		}
	}
	weights := ca.Weights(gc)
	sizes := make([]int, p)
	for q, w := range weights {
		sizes[q] = int(math.Round(w))
	}
	if epsMax < 1 {
		epsMax = 1
	}
	for eps := 1.0; eps <= epsMax; eps++ {
		m, err := balance.Formulate(wDelta, sizes, targets, eps)
		if err != nil {
			return 0, err
		}
		flows, sol, err := balance.Solve(ctx, m, solver)
		if err != nil {
			return 0, err
		}
		if sol.Status != lp.Optimal {
			continue // relax further
		}
		for _, f := range flows {
			remaining := f.Amount
			for _, v := range lay.Pool(f.From, f.To) {
				w := int(math.Round(gc.VertexWeight(v)))
				if w > remaining {
					continue // a lighter cluster deeper in the pool may still fit
				}
				ca.Part[v] = f.To
				remaining -= w
				moved += w
				if remaining == 0 {
					break
				}
			}
		}
		return moved, nil
	}
	return 0, nil // infeasible at every ε: leave everything to the fine level
}
