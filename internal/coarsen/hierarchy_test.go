package coarsen

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/partition"
)

// buildHierarchy creates a hierarchy over g+a with small thresholds so
// even test-sized graphs get several levels.
func buildHierarchy(t *testing.T, g *graph.Graph, a *partition.Assignment, opt HierarchyOptions) *Hierarchy {
	t.Helper()
	h := NewHierarchy(g, opt)
	if _, err := h.Update(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if err := h.Check(a); err != nil {
		t.Fatalf("fresh hierarchy invalid: %v", err)
	}
	return h
}

func TestHierarchyBuildInvariants(t *testing.T) {
	g, a := striped(16, 32, 4)
	h := buildHierarchy(t, g, a, HierarchyOptions{CoarsenTo: 16})
	if h.Depth() < 2 {
		t.Fatalf("expected a multi-level hierarchy on 512 vertices, got depth %d", h.Depth())
	}
	// Per-level cardinality conservation: total coarse weight == live fine
	// count, at every level.
	for l, st := range h.Levels() {
		gc := h.levels[l].gc
		if math.Abs(gc.TotalVertexWeight()-float64(g.NumVertices())) > 1e-9 {
			t.Fatalf("level %d: total weight %g != %d fine vertices",
				l, gc.TotalVertexWeight(), g.NumVertices())
		}
		if !st.Rebuilt {
			t.Fatalf("level %d of a fresh hierarchy not marked Rebuilt", l)
		}
		if st.Vertices != gc.NumVertices() {
			t.Fatalf("level %d: stats say %d vertices, graph has %d", l, st.Vertices, gc.NumVertices())
		}
	}
}

func TestHierarchyRepairEquivalence(t *testing.T) {
	// Journal repair after edits must yield a hierarchy that passes the
	// same structural oracle as a from-scratch rebuild, and the repaired
	// level graphs must match the rebuilt ones on vertex counts and
	// per-partition weights (exact: all cardinality weights are integers).
	g, a := striped(16, 32, 4)
	h := buildHierarchy(t, g, a, HierarchyOptions{CoarsenTo: 16})

	rng := rand.New(rand.NewSource(9))
	prev := g.Vertices()
	for k := 0; k < 25; k++ {
		v := g.AddVertex(1)
		u := prev[rng.Intn(len(prev))]
		_ = g.AddEdge(v, u, 1)
		a.Part = append(a.Part, a.Part[u])
		prev = append(prev, v)
	}
	for k := 0; k < 5; k++ {
		_ = g.RemoveVertex(prev[rng.Intn(256)])
	}
	for v := 0; v < g.Order(); v++ {
		if !g.Alive(graph.Vertex(v)) {
			a.Part[v] = partition.Unassigned
		}
	}

	repaired, err := h.Update(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if !repaired {
		t.Fatal("small edit batch forced a rebuild instead of a journal repair")
	}
	if err := h.Check(a); err != nil {
		t.Fatalf("repaired hierarchy invalid: %v", err)
	}

	// Reference: recoarsen the same graph+assignment from scratch.
	// Depths may differ (repair grows level graphs, so the repaired
	// hierarchy can run deeper before hitting the threshold); the
	// invariants must agree level-by-level over the shared prefix.
	ref := buildHierarchy(t, g, a, HierarchyOptions{CoarsenTo: 16})
	depth := h.Depth()
	if ref.Depth() < depth {
		depth = ref.Depth()
	}
	if depth == 0 {
		t.Fatal("no shared levels to compare")
	}
	for l := 0; l < depth; l++ {
		hg, rg := h.levels[l].gc, ref.levels[l].gc
		if math.Abs(hg.TotalVertexWeight()-rg.TotalVertexWeight()) > 1e-9 {
			t.Fatalf("level %d: repaired weight %g != rebuilt %g",
				l, hg.TotalVertexWeight(), rg.TotalVertexWeight())
		}
		hw := h.levels[l].ca.Weights(hg)
		rw := ref.levels[l].ca.Weights(rg)
		for q := range hw {
			if math.Abs(hw[q]-rw[q]) > 1e-9 {
				t.Fatalf("level %d partition %d: repaired weight %g != rebuilt %g", l, q, hw[q], rw[q])
			}
		}
	}
}

func TestHierarchyRepairAfterPartitionDrift(t *testing.T) {
	// Moving fine vertices across partitions (as refinement does) makes
	// groups impure; the next Update must dissolve exactly those and stay
	// valid — with no graph edits at all.
	g, a := striped(16, 32, 4)
	h := buildHierarchy(t, g, a, HierarchyOptions{CoarsenTo: 16})
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 30; k++ {
		v := graph.Vertex(rng.Intn(g.Order()))
		a.Part[v] = int32((int(a.Part[v]) + 1) % a.P)
	}
	repaired, err := h.Update(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if !repaired {
		t.Fatal("pure partition drift forced a rebuild")
	}
	if err := h.Check(a); err != nil {
		t.Fatalf("hierarchy invalid after drift repair: %v", err)
	}
}

func TestHierarchyDeterministic(t *testing.T) {
	// Two identical build+edit+repair histories must produce bitwise
	// identical coarse graphs and assignments.
	run := func() *Hierarchy {
		g, a := striped(16, 32, 4)
		h := NewHierarchy(g, HierarchyOptions{CoarsenTo: 16})
		if _, err := h.Update(context.Background(), a); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		prev := g.Vertices()
		for k := 0; k < 20; k++ {
			v := g.AddVertex(1)
			u := prev[rng.Intn(len(prev))]
			_ = g.AddEdge(v, u, 1)
			a.Part = append(a.Part, a.Part[u])
		}
		if _, err := h.Update(context.Background(), a); err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1, h2 := run(), run()
	if h1.Depth() != h2.Depth() {
		t.Fatalf("depth %d != %d", h1.Depth(), h2.Depth())
	}
	for l := 0; l < h1.Depth(); l++ {
		g1, g2 := h1.levels[l].gc, h2.levels[l].gc
		if g1.Order() != g2.Order() {
			t.Fatalf("level %d order %d != %d", l, g1.Order(), g2.Order())
		}
		for v := 0; v < g1.Order(); v++ {
			vv := graph.Vertex(v)
			if g1.Alive(vv) != g2.Alive(vv) {
				t.Fatalf("level %d vertex %d liveness differs", l, v)
			}
			if !g1.Alive(vv) {
				continue
			}
			if g1.VertexWeight(vv) != g2.VertexWeight(vv) {
				t.Fatalf("level %d vertex %d weight differs", l, v)
			}
			n1, n2 := g1.Neighbors(vv), g2.Neighbors(vv)
			w1, w2 := g1.EdgeWeights(vv), g2.EdgeWeights(vv)
			if len(n1) != len(n2) {
				t.Fatalf("level %d vertex %d degree %d != %d", l, v, len(n1), len(n2))
			}
			for i := range n1 {
				if n1[i] != n2[i] || w1[i] != w2[i] {
					t.Fatalf("level %d vertex %d adjacency diverges at %d", l, v, i)
				}
			}
			if h1.levels[l].ca.Part[v] != h2.levels[l].ca.Part[v] {
				t.Fatalf("level %d coarse assignment differs at %d", l, v)
			}
		}
	}
}

func TestHierarchySolveAndUncoarsen(t *testing.T) {
	// Full V-cycle on a flood-filled (degenerate) assignment: spectral
	// coarsest init, then uncoarsening must produce a valid assignment
	// whose imbalance is within cluster slack and whose cut is sane.
	g := graph.Grid(24, 24)
	a := partition.New(g.Order(), 4)
	for v := range a.Part {
		a.Part[v] = 0 // everything in partition 0: degenerate
	}
	h := NewHierarchy(g, HierarchyOptions{CoarsenTo: 16})
	if _, err := h.Update(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	moved, spectralInit, err := h.SolveCoarsest(context.Background(), lp.Bounded{})
	if err != nil {
		t.Fatal(err)
	}
	if !spectralInit {
		t.Fatal("degenerate assignment did not take the spectral path")
	}
	if moved == 0 {
		t.Fatal("coarsest solve moved nothing off the flood fill")
	}
	if _, err := h.Uncoarsen(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), a.P)
	slack := 0.0
	for _, lv := range h.levels {
		for v := 0; v < lv.gc.Order(); v++ {
			if lv.gc.Alive(graph.Vertex(v)) && lv.gc.VertexWeight(graph.Vertex(v)) > slack {
				slack = lv.gc.VertexWeight(graph.Vertex(v))
			}
		}
	}
	for q := range sizes {
		if dev := math.Abs(float64(sizes[q] - targets[q])); dev > slack {
			t.Fatalf("partition %d size %d deviates %g from target %d (slack %g)",
				q, sizes[q], dev, targets[q], slack)
		}
	}
	// On a grid, a sane 4-way cut is well under the worst-case stripe
	// bound; this is a sanity check, not a quality contract (that lives
	// in the engine tests, against the flat pipeline).
	cut := partition.Cut(g, a).TotalWeight
	if cut <= 0 || cut > float64(3*24*4) {
		t.Fatalf("implausible V-cycle cut %g on a 24x24 grid", cut)
	}
	// Warm path: the V-cycle's own refinement made some groups impure;
	// Update must repair, not rebuild.
	repaired, err := h.Update(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if !repaired {
		t.Fatal("post-uncoarsen Update rebuilt instead of repairing")
	}
	if err := h.Check(a); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyCoarsestBalanceWarm(t *testing.T) {
	// Non-degenerate warm path: an imbalanced striped grid must be
	// rebalanced by the weighted coarse LP, not the spectral solver.
	g, a := striped(16, 32, 4)
	rng := rand.New(rand.NewSource(5))
	prev := []graph.Vertex{graph.Vertex(31)}
	for k := 0; k < 120; k++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[rng.Intn(len(prev))], 1)
		a.Part = append(a.Part, 3)
		prev = append(prev, v)
	}
	h := NewHierarchy(g, HierarchyOptions{CoarsenTo: 16})
	if _, err := h.Update(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	before := maxDev(a.Weights(g), partition.Targets(g.NumVertices(), a.P))
	moved, spectralInit, err := h.SolveCoarsest(context.Background(), lp.Bounded{})
	if err != nil {
		t.Fatal(err)
	}
	if spectralInit {
		t.Fatal("warm non-degenerate solve took the spectral path")
	}
	if moved <= 0 {
		t.Fatal("coarsest balance moved nothing on an imbalanced hierarchy")
	}
	if _, err := h.Uncoarsen(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	after := maxDev(a.Weights(g), partition.Targets(g.NumVertices(), a.P))
	if after >= before {
		t.Fatalf("V-cycle did not shrink imbalance: %g -> %g", before, after)
	}
	// The coarse moves and refinement made groups impure; Check is only
	// valid after the next Update repairs them.
	if _, err := h.Update(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if err := h.Check(a); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyRepairWaveBeyondJournalWindow(t *testing.T) {
	// Regression: a warm repair whose own mutations dwarf the graph
	// journal's bounded window must still repair the levels above it.
	// Upper levels never consult their fine graph's journal — repair at
	// level l records its exact mutation wave and Update hands it to
	// level l+1 — so a drift that dissolves every level-0 group (tens of
	// thousands of would-be journal entries here) keeps the whole stack
	// on the repair path. Before wave propagation the overflowing coarse
	// journals forced every upper level to rebuild.
	g, a := striped(96, 96, 4)
	h := buildHierarchy(t, g, a, HierarchyOptions{CoarsenTo: 16})
	if h.Depth() < 3 {
		t.Fatalf("need ≥3 levels to observe wave propagation, got depth %d", h.Depth())
	}
	// Flip exactly one member of every level-0 pair: each group turns
	// impure, so the purity sweep dissolves all of them.
	lv0 := h.levels[0]
	for v := 0; v < g.Order(); v++ {
		if u := lv0.match[v]; u > graph.Vertex(v) {
			a.Part[v] = int32((int(a.Part[v]) + 1) % a.P)
		}
	}
	origDepth := h.Depth()
	repaired, err := h.Update(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if !repaired {
		t.Fatal("oversized repair wave forced a rebuild instead of propagating")
	}
	// Levels appended below the repaired stack are built fresh by
	// definition; only pre-existing levels must have stayed on the
	// repair path.
	for l, st := range h.Levels() {
		if l < origDepth && st.Rebuilt {
			t.Fatalf("level %d rebuilt under the repair wave", l)
		}
	}
	if h.Depth() > 1 && h.lstats[1].Dissolved == 0 {
		t.Fatal("no repair wave reached level 1")
	}
	if err := h.Check(a); err != nil {
		t.Fatalf("hierarchy invalid after wave repair: %v", err)
	}
}

func TestHierarchyJournalOverflowRebuilds(t *testing.T) {
	// Blowing past the fine graph's journal capacity makes TouchedSince
	// inexact; Update must fall back to a rebuild and stay valid.
	g, a := striped(16, 32, 4)
	h := buildHierarchy(t, g, a, HierarchyOptions{CoarsenTo: 16})
	prev := g.Vertices()
	rng := rand.New(rand.NewSource(13))
	for k := 0; k < 1<<15; k++ { // > maxJournal edits
		u := prev[rng.Intn(len(prev))]
		v := g.AddVertex(1)
		_ = g.AddEdge(v, u, 1)
		a.Part = append(a.Part, a.Part[u])
	}
	repaired, err := h.Update(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if repaired {
		t.Fatal("journal overflow still reported a repair")
	}
	if err := h.Check(a); err != nil {
		t.Fatalf("rebuilt hierarchy invalid: %v", err)
	}
}

func TestHierarchyPartitionCountChangeRebuilds(t *testing.T) {
	g, a := striped(16, 32, 4)
	h := buildHierarchy(t, g, a, HierarchyOptions{CoarsenTo: 16})
	// Re-stripe the same graph at p=2.
	a2 := partition.New(g.Order(), 2)
	for r := 0; r < 16; r++ {
		for c := 0; c < 32; c++ {
			a2.Part[r*32+c] = int32(c / 16)
		}
	}
	repaired, err := h.Update(context.Background(), a2)
	if err != nil {
		t.Fatal(err)
	}
	if repaired {
		t.Fatal("partition-count change reported a repair")
	}
	if err := h.Check(a2); err != nil {
		t.Fatal(err)
	}
}
