package coarsen

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/partition"
)

// striped returns a grid with vertical-stripe partitions.
func striped(rows, cols, p int) (*graph.Graph, *partition.Assignment) {
	g := graph.Grid(rows, cols)
	a := partition.New(g.Order(), p)
	w := cols / p
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := c / w
			if q >= p {
				q = p - 1
			}
			a.Part[r*cols+c] = int32(q)
		}
	}
	return g, a
}

func TestMatchWithinPartitions(t *testing.T) {
	g, a := striped(4, 8, 2)
	match := Match(g, a)
	for _, v := range g.Vertices() {
		u := match[v]
		if u == v {
			continue
		}
		if match[u] != v {
			t.Fatalf("matching not symmetric at %d/%d", v, u)
		}
		if a.Part[u] != a.Part[v] {
			t.Fatalf("cross-partition match %d(%d)↔%d(%d)", v, a.Part[v], u, a.Part[u])
		}
		if !g.HasEdge(v, u) {
			t.Fatalf("matched non-adjacent pair %d,%d", v, u)
		}
	}
}

func TestContractPreservesWeightAndPartition(t *testing.T) {
	g, a := striped(4, 8, 2)
	match := Match(g, a)
	gc, fineToCoarse, ca := Contract(g, a, match)
	if err := gc.Validate(); err != nil {
		t.Fatal(err)
	}
	if gc.TotalVertexWeight() != g.TotalVertexWeight() {
		t.Fatalf("weight %g != %g", gc.TotalVertexWeight(), g.TotalVertexWeight())
	}
	for _, v := range g.Vertices() {
		cv := fineToCoarse[v]
		if cv < 0 || !gc.Alive(cv) {
			t.Fatalf("vertex %d maps to bad coarse vertex %d", v, cv)
		}
		if ca.Part[cv] != a.Part[v] {
			t.Fatalf("partition mismatch after contraction at %d", v)
		}
	}
	// A good matching should shrink the graph substantially.
	if gc.NumVertices() > 3*g.NumVertices()/4 {
		t.Fatalf("poor coarsening: %d of %d vertices", gc.NumVertices(), g.NumVertices())
	}
}

func TestContractAggregatesEdgeWeights(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3; match {0,1} (same partition).
	g := graph.NewWithVertices(4)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(0, 2, 2)
	_ = g.AddEdge(1, 2, 3)
	_ = g.AddEdge(2, 3, 1)
	a := &partition.Assignment{Part: []int32{0, 0, 0, 0}, P: 1}
	match := []graph.Vertex{1, 0, 2, 3}
	gc, f2c, _ := Contract(g, a, match)
	if gc.NumVertices() != 3 {
		t.Fatalf("coarse vertices = %d, want 3", gc.NumVertices())
	}
	// Edge {01}-{2} must aggregate to weight 5.
	w, ok := gc.EdgeWeight(f2c[0], f2c[2])
	if !ok || w != 5 {
		t.Fatalf("aggregated weight = %g,%v; want 5,true", w, ok)
	}
}

func TestMultilevelBalancesGrownGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, a := striped(8, 16, 4)
	// Localized growth on the right edge.
	prev := []graph.Vertex{graph.Vertex(15), graph.Vertex(31)}
	for k := 0; k < 40; k++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[rng.Intn(len(prev))], 1)
		prev = append(prev, v)
	}
	st, err := MultilevelRepartition(context.Background(), g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), 4)
	for q := range sizes {
		if sizes[q] != targets[q] {
			t.Fatalf("sizes %v != targets %v", sizes, targets)
		}
	}
	if st.CoarseVertices >= g.NumVertices() {
		t.Fatal("no coarsening happened")
	}
	if st.Fine == nil {
		t.Fatal("missing fine stats")
	}
}

func TestMultilevelMatchesDirectQuality(t *testing.T) {
	// Multilevel must land within a reasonable factor of direct IGP cut.
	rng := rand.New(rand.NewSource(5))
	build := func() (*graph.Graph, *partition.Assignment) {
		g, a := striped(10, 20, 4)
		prev := []graph.Vertex{graph.Vertex(19)}
		for k := 0; k < 50; k++ {
			v := g.AddVertex(1)
			_ = g.AddEdge(v, prev[rng.Intn(len(prev))], 1)
			prev = append(prev, v)
		}
		return g, a
	}
	g1, a1 := build()
	if _, err := MultilevelRepartition(context.Background(), g1, a1, Options{}); err != nil {
		t.Fatal(err)
	}
	mlCut := partition.Cut(g1, a1).TotalWeight
	if mlCut <= 0 || math.IsNaN(mlCut) {
		t.Fatalf("bad multilevel cut %g", mlCut)
	}
}

func TestPropertyContractInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		m := n + rng.Intn(2*n)
		g, err := graph.RandomGNM(n, min(m, n*(n-1)/2), rng)
		if err != nil {
			return false
		}
		p := 2 + rng.Intn(3)
		a := partition.New(g.Order(), p)
		for v := 0; v < g.Order(); v++ {
			a.Part[v] = int32(rng.Intn(p))
		}
		match := Match(g, a)
		gc, f2c, ca := Contract(g, a, match)
		if gc.Validate() != nil {
			return false
		}
		// Weight conservation and per-partition weight conservation.
		if math.Abs(gc.TotalVertexWeight()-g.TotalVertexWeight()) > 1e-9 {
			return false
		}
		fw := a.Weights(g)
		cw := ca.Weights(gc)
		for q := 0; q < p; q++ {
			if math.Abs(fw[q]-cw[q]) > 1e-9 {
				return false
			}
		}
		// Cut weight is preserved exactly: only same-partition pairs merge.
		fc := partition.Cut(g, a).TotalWeight
		cc := partition.Cut(gc, ca).TotalWeight
		if math.Abs(fc-cc) > 1e-9 {
			return false
		}
		_ = f2c
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
