package coarsen

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/partition"
)

// striped returns a grid with vertical-stripe partitions.
func striped(rows, cols, p int) (*graph.Graph, *partition.Assignment) {
	g := graph.Grid(rows, cols)
	a := partition.New(g.Order(), p)
	w := cols / p
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := c / w
			if q >= p {
				q = p - 1
			}
			a.Part[r*cols+c] = int32(q)
		}
	}
	return g, a
}

func TestMatchWithinPartitions(t *testing.T) {
	g, a := striped(4, 8, 2)
	match := Match(g, a)
	for _, v := range g.Vertices() {
		u := match[v]
		if u == v {
			continue
		}
		if match[u] != v {
			t.Fatalf("matching not symmetric at %d/%d", v, u)
		}
		if a.Part[u] != a.Part[v] {
			t.Fatalf("cross-partition match %d(%d)↔%d(%d)", v, a.Part[v], u, a.Part[u])
		}
		if !g.HasEdge(v, u) {
			t.Fatalf("matched non-adjacent pair %d,%d", v, u)
		}
	}
}

func TestContractPreservesWeightAndPartition(t *testing.T) {
	g, a := striped(4, 8, 2)
	match := Match(g, a)
	gc, fineToCoarse, ca := Contract(g, a, match)
	if err := gc.Validate(); err != nil {
		t.Fatal(err)
	}
	if gc.TotalVertexWeight() != g.TotalVertexWeight() {
		t.Fatalf("weight %g != %g", gc.TotalVertexWeight(), g.TotalVertexWeight())
	}
	for _, v := range g.Vertices() {
		cv := fineToCoarse[v]
		if cv < 0 || !gc.Alive(cv) {
			t.Fatalf("vertex %d maps to bad coarse vertex %d", v, cv)
		}
		if ca.Part[cv] != a.Part[v] {
			t.Fatalf("partition mismatch after contraction at %d", v)
		}
	}
	// A good matching should shrink the graph substantially.
	if gc.NumVertices() > 3*g.NumVertices()/4 {
		t.Fatalf("poor coarsening: %d of %d vertices", gc.NumVertices(), g.NumVertices())
	}
}

func TestContractAggregatesEdgeWeights(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3; match {0,1} (same partition).
	g := graph.NewWithVertices(4)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(0, 2, 2)
	_ = g.AddEdge(1, 2, 3)
	_ = g.AddEdge(2, 3, 1)
	a := &partition.Assignment{Part: []int32{0, 0, 0, 0}, P: 1}
	match := []graph.Vertex{1, 0, 2, 3}
	gc, f2c, _ := Contract(g, a, match)
	if gc.NumVertices() != 3 {
		t.Fatalf("coarse vertices = %d, want 3", gc.NumVertices())
	}
	// Edge {01}-{2} must aggregate to weight 5.
	w, ok := gc.EdgeWeight(f2c[0], f2c[2])
	if !ok || w != 5 {
		t.Fatalf("aggregated weight = %g,%v; want 5,true", w, ok)
	}
}

func TestCoarseBalanceMovesWeight(t *testing.T) {
	// A striped grid grown on one side is imbalanced; the weighted coarse
	// balance pass must move whole clusters toward the light partitions.
	rng := rand.New(rand.NewSource(2))
	g, a := striped(8, 16, 4)
	prev := []graph.Vertex{graph.Vertex(15), graph.Vertex(31)}
	for k := 0; k < 40; k++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[rng.Intn(len(prev))], 1)
		prev = append(prev, v)
		a.Part = append(a.Part, 3) // grow on the rightmost stripe
	}
	match := Match(g, a)
	gc, _, ca := Contract(g, a, match)
	targets := partition.Targets(g.NumVertices(), a.P)
	moved, err := CoarseBalance(context.Background(), gc, ca, targets, lp.Bounded{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if moved <= 0 {
		t.Fatal("coarse balance moved nothing on an imbalanced graph")
	}
	before := maxDev(a.Weights(g), targets)
	after := maxDev(ca.Weights(gc), targets)
	if after >= before {
		t.Fatalf("imbalance did not shrink: %g -> %g", before, after)
	}
}

func maxDev(w []float64, targets []int) float64 {
	d := 0.0
	for q := range w {
		if dev := math.Abs(w[q] - float64(targets[q])); dev > d {
			d = dev
		}
	}
	return d
}

func TestContractDeterministicAdjacency(t *testing.T) {
	// The coarse graph must be byte-identical across runs, including
	// adjacency order (it feeds float summations downstream).
	build := func() *graph.Graph {
		rng := rand.New(rand.NewSource(7))
		g, err := graph.RandomGNM(60, 150, rng)
		if err != nil {
			t.Fatal(err)
		}
		a := partition.New(g.Order(), 3)
		for v := 0; v < g.Order(); v++ {
			a.Part[v] = int32(v % 3)
		}
		gc, _, _ := Contract(g, a, Match(g, a))
		return gc
	}
	g1, g2 := build(), build()
	if g1.Order() != g2.Order() {
		t.Fatalf("order %d != %d", g1.Order(), g2.Order())
	}
	for v := 0; v < g1.Order(); v++ {
		n1, n2 := g1.Neighbors(graph.Vertex(v)), g2.Neighbors(graph.Vertex(v))
		if len(n1) != len(n2) {
			t.Fatalf("vertex %d degree %d != %d", v, len(n1), len(n2))
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatalf("vertex %d adjacency diverges at %d: %d != %d", v, i, n1[i], n2[i])
			}
		}
	}
}

func TestPropertyContractInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		m := n + rng.Intn(2*n)
		g, err := graph.RandomGNM(n, min(m, n*(n-1)/2), rng)
		if err != nil {
			return false
		}
		p := 2 + rng.Intn(3)
		a := partition.New(g.Order(), p)
		for v := 0; v < g.Order(); v++ {
			a.Part[v] = int32(rng.Intn(p))
		}
		match := Match(g, a)
		gc, f2c, ca := Contract(g, a, match)
		if gc.Validate() != nil {
			return false
		}
		// Weight conservation and per-partition weight conservation.
		if math.Abs(gc.TotalVertexWeight()-g.TotalVertexWeight()) > 1e-9 {
			return false
		}
		fw := a.Weights(g)
		cw := ca.Weights(gc)
		for q := 0; q < p; q++ {
			if math.Abs(fw[q]-cw[q]) > 1e-9 {
				return false
			}
		}
		// Cut weight is preserved exactly: only same-partition pairs merge.
		fc := partition.Cut(g, a).TotalWeight
		cc := partition.Cut(gc, ca).TotalWeight
		if math.Abs(fc-cc) > 1e-9 {
			return false
		}
		_ = f2c
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
