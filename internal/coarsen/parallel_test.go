package coarsen

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/partition"
)

// requireHierarchiesEqual asserts two hierarchies are bitwise identical:
// depth, level-graph structure (order, liveness, vertex weights,
// adjacency order and edge weights) and coarse assignments.
func requireHierarchiesEqual(t *testing.T, h1, h2 *Hierarchy) {
	t.Helper()
	if h1.Depth() != h2.Depth() {
		t.Fatalf("depth %d != %d", h1.Depth(), h2.Depth())
	}
	for l := 0; l < h1.Depth(); l++ {
		g1, g2 := h1.levels[l].gc, h2.levels[l].gc
		if g1.Order() != g2.Order() {
			t.Fatalf("level %d order %d != %d", l, g1.Order(), g2.Order())
		}
		for v := 0; v < g1.Order(); v++ {
			vv := graph.Vertex(v)
			if g1.Alive(vv) != g2.Alive(vv) {
				t.Fatalf("level %d vertex %d liveness differs", l, v)
			}
			if !g1.Alive(vv) {
				continue
			}
			if g1.VertexWeight(vv) != g2.VertexWeight(vv) {
				t.Fatalf("level %d vertex %d weight differs", l, v)
			}
			n1, n2 := g1.Neighbors(vv), g2.Neighbors(vv)
			w1, w2 := g1.EdgeWeights(vv), g2.EdgeWeights(vv)
			if len(n1) != len(n2) {
				t.Fatalf("level %d vertex %d degree %d != %d", l, v, len(n1), len(n2))
			}
			for i := range n1 {
				if n1[i] != n2[i] || w1[i] != w2[i] {
					t.Fatalf("level %d vertex %d adjacency diverges at %d", l, v, i)
				}
			}
			if h1.levels[l].ca.Part[v] != h2.levels[l].ca.Part[v] {
				t.Fatalf("level %d coarse assignment differs at %d", l, v)
			}
			if h1.levels[l].match[v] != h2.levels[l].match[v] {
				t.Fatalf("level %d match differs at %d", l, v)
			}
		}
	}
}

func TestMatchParEquivalence(t *testing.T) {
	// The matcher's outcome must be a pure function of (graph, partition,
	// free set): every worker count reproduces the procs=1 result slot
	// for slot.
	graphs := []func() (*graph.Graph, *partition.Assignment){
		func() (*graph.Graph, *partition.Assignment) { return striped(16, 32, 4) },
		func() (*graph.Graph, *partition.Assignment) { return striped(96, 96, 4) },
		func() (*graph.Graph, *partition.Assignment) {
			// Preferential-attachment-ish: hubs exercise the arc-balanced
			// shards and the two-hop pass.
			g := graph.New(600)
			a := partition.New(600, 3)
			rng := rand.New(rand.NewSource(42))
			var vs []graph.Vertex
			for i := 0; i < 600; i++ {
				v := g.AddVertex(1)
				a.Part[v] = int32(i % 3)
				for k := 0; k < 2 && len(vs) > 0; k++ {
					u := vs[rng.Intn(len(vs))]
					_ = g.AddEdge(v, u, 1+float64(rng.Intn(3)))
				}
				vs = append(vs, v)
			}
			return g, a
		},
	}
	for gi, mk := range graphs {
		g, a := mk()
		want := Match(g, a)
		for _, procs := range []int{2, 3, 8} {
			got := MatchPar(g, a, nil, procs)
			if len(got) != len(want) {
				t.Fatalf("graph %d procs %d: len %d != %d", gi, procs, len(got), len(want))
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("graph %d procs %d: match[%d] = %d, want %d", gi, procs, v, got[v], want[v])
				}
			}
		}
	}
}

// vcycleHistory drives one full build + edit + drift + repair + solve +
// uncoarsen history at the given worker count and returns the hierarchy
// and final assignment.
func vcycleHistory(t *testing.T, procs int) (*Hierarchy, *partition.Assignment) {
	t.Helper()
	g, a := striped(48, 48, 4)
	h := NewHierarchy(g, HierarchyOptions{CoarsenTo: 16, Procs: procs})
	ctx := context.Background()
	if _, err := h.Update(ctx, a); err != nil {
		t.Fatal(err)
	}
	// Growth edits touch the journal-repair path.
	rng := rand.New(rand.NewSource(77))
	prev := g.Vertices()
	for k := 0; k < 40; k++ {
		v := g.AddVertex(1)
		u := prev[rng.Intn(len(prev))]
		_ = g.AddEdge(v, u, 1)
		a.Part = append(a.Part, a.Part[u])
		prev = append(prev, v)
	}
	// Partition drift forces purity dissolves.
	for k := 0; k < 60; k++ {
		v := graph.Vertex(rng.Intn(g.Order()))
		if g.Alive(v) {
			a.Part[v] = int32((int(a.Part[v]) + 1) % a.P)
		}
	}
	if _, err := h.Update(ctx, a); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.SolveCoarsest(ctx, lp.Bounded{}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Uncoarsen(ctx, a); err != nil {
		t.Fatal(err)
	}
	return h, a
}

func TestHierarchyParallelEquivalence(t *testing.T) {
	// The whole V-cycle — coarsen, repair, refine, project — must be
	// bit-identical at every worker count, with procs=1 the sequential
	// reference.
	ref, refA := vcycleHistory(t, 1)
	for _, procs := range []int{2, 3, 8} {
		h, a := vcycleHistory(t, procs)
		requireHierarchiesEqual(t, ref, h)
		for v := range refA.Part {
			if refA.Part[v] != a.Part[v] {
				t.Fatalf("procs %d: assignment differs at %d: %d != %d", procs, v, a.Part[v], refA.Part[v])
			}
		}
	}
}

func TestHierarchyWarmUpdateAllocs(t *testing.T) {
	// A settled warm Update + Uncoarsen (no edits, no drift) must stay on
	// the arenas at every worker count: 0 allocs/op, matching the flat
	// path's locks.
	for _, procs := range []int{1, 4} {
		g, a := striped(96, 96, 4)
		h := NewHierarchy(g, HierarchyOptions{CoarsenTo: 16, Procs: procs})
		ctx := context.Background()
		// Settle: build, solve, project, then repair the drift the V-cycle
		// itself introduced until a warm no-op Update remains.
		if _, err := h.Update(ctx, a); err != nil {
			t.Fatal(err)
		}
		if _, _, err := h.SolveCoarsest(ctx, lp.Bounded{}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Uncoarsen(ctx, a); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := h.Update(ctx, a); err != nil {
				t.Fatal(err)
			}
			if _, err := h.Uncoarsen(ctx, a); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := h.Update(ctx, a); err != nil {
				t.Fatal(err)
			}
			if _, err := h.Uncoarsen(ctx, a); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("procs %d: settled warm Update+Uncoarsen allocates %.1f/op, want 0", procs, allocs)
		}
	}
}
