package engine

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/layering"
	"repro/internal/lp"
	"repro/internal/partition"
	"repro/internal/refine"
	"repro/internal/spectral"
)

// editableGraph builds a connected random geometric graph with an RSB
// partition — irregular enough to exercise every boundary shape.
func editableGraph(t testing.TB, n, p int, seed int64) (*graph.Graph, *partition.Assignment) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, _ := graph.RandomGeometric(n, 0.08, rng)
	graph.EnsureConnected(g)
	part, err := spectral.RSB(g, p, spectral.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g, &partition.Assignment{Part: part, P: p}
}

// randomEdit applies one random structural or assignment edit; it returns
// false when the pick was a no-op (e.g. duplicate edge).
func randomEdit(g *graph.Graph, a *partition.Assignment, rng *rand.Rand) {
	switch rng.Intn(6) {
	case 0: // add a vertex hooked to an existing one
		v := g.AddVertex(1)
		a.Grow(g.Order())
		for tries := 0; tries < 10; tries++ {
			u := graph.Vertex(rng.Intn(g.Order()))
			if g.Alive(u) && u != v {
				_ = g.AddEdge(v, u, 1)
				a.Part[v] = a.Part[u]
				return
			}
		}
		a.Part[v] = 0
	case 1: // add an edge
		u := graph.Vertex(rng.Intn(g.Order()))
		v := graph.Vertex(rng.Intn(g.Order()))
		g.AddEdgeIfAbsent(u, v, 1)
	case 2: // remove an edge
		u := graph.Vertex(rng.Intn(g.Order()))
		if g.Alive(u) && g.Degree(u) > 1 {
			v := g.Neighbors(u)[rng.Intn(g.Degree(u))]
			_ = g.RemoveEdge(u, v)
		}
	case 3: // remove a vertex
		v := graph.Vertex(rng.Intn(g.Order()))
		if g.Alive(v) && g.NumVertices() > 8 {
			_ = g.RemoveVertex(v)
			a.Part[v] = partition.Unassigned
		}
	default: // move a vertex to another partition
		v := graph.Vertex(rng.Intn(g.Order()))
		if g.Alive(v) {
			a.Part[v] = int32(rng.Intn(a.P))
		}
	}
}

// bruteBoundary recomputes the boundary set directly from the graph.
func bruteBoundary(g *graph.Graph, a *partition.Assignment) map[graph.Vertex]bool {
	out := map[graph.Vertex]bool{}
	for v := 0; v < g.Order(); v++ {
		if !g.Alive(graph.Vertex(v)) {
			continue
		}
		for _, u := range g.Neighbors(graph.Vertex(v)) {
			if a.Part[u] != a.Part[graph.Vertex(v)] {
				out[graph.Vertex(v)] = true
				break
			}
		}
	}
	return out
}

// TestBoundaryTrackerExact drives the incremental tracker through random
// edit sequences and checks it against a brute-force recomputation after
// every sync.
func TestBoundaryTrackerExact(t *testing.T) {
	g, a := editableGraph(t, 300, 6, 42)
	e := New(g, Options{})
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		for k := 0; k < rng.Intn(4); k++ {
			randomEdit(g, a, rng)
		}
		got := e.Boundary(a)
		want := bruteBoundary(g, a)
		if len(got) != len(want) {
			t.Fatalf("iter %d: boundary has %d vertices, want %d", iter, len(got), len(want))
		}
		seen := map[graph.Vertex]bool{}
		for _, v := range got {
			if seen[v] {
				t.Fatalf("iter %d: duplicate boundary vertex %d", iter, v)
			}
			seen[v] = true
			if !want[v] {
				t.Fatalf("iter %d: vertex %d wrongly in boundary", iter, v)
			}
		}
	}
}

// TestBoundaryTrackerJournalOverflow forces journal overflow (many more
// touches than the journal holds) and checks the tracker falls back to an
// exact rebuild.
func TestBoundaryTrackerJournalOverflow(t *testing.T) {
	g, a := editableGraph(t, 200, 4, 3)
	e := New(g, Options{})
	_ = e.Boundary(a)
	// Touch far more than the journal bound.
	for i := 0; i < 40000; i++ {
		v := graph.Vertex(i % g.Order())
		if g.Alive(v) {
			g.SetVertexWeight(v, 1)
		}
	}
	got := e.Boundary(a)
	want := bruteBoundary(g, a)
	if len(got) != len(want) {
		t.Fatalf("after overflow: boundary has %d vertices, want %d", len(got), len(want))
	}
}

// TestSeededLayerEquivalence checks the acceptance criterion: across
// randomized edit sequences, the engine's boundary-seeded layering is
// byte-identical (Label, Level, Delta, pools) to the one-shot full-scan
// layering.
func TestSeededLayerEquivalence(t *testing.T) {
	g, a := editableGraph(t, 400, 8, 11)
	e := New(g, Options{})
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 120; iter++ {
		got, err := e.Layer(context.Background(), a)
		if err != nil {
			t.Fatalf("iter %d: engine layer: %v", iter, err)
		}
		want, err := layering.Layer(g, a)
		if err != nil {
			t.Fatalf("iter %d: full layer: %v", iter, err)
		}
		if !reflect.DeepEqual(got.Label, want.Label) {
			t.Fatalf("iter %d: Label diverges", iter)
		}
		if !reflect.DeepEqual(got.Level, want.Level) {
			t.Fatalf("iter %d: Level diverges", iter)
		}
		if !reflect.DeepEqual(got.Delta, want.Delta) {
			t.Fatalf("iter %d: Delta diverges", iter)
		}
		for i := 0; i < a.P; i++ {
			for j := 0; j < a.P; j++ {
				gp, wp := got.Pool(int32(i), int32(j)), want.Pool(int32(i), int32(j))
				if len(gp) != len(wp) {
					t.Fatalf("iter %d: pool(%d,%d) length diverges", iter, i, j)
				}
				for k := range gp {
					if gp[k] != wp[k] {
						t.Fatalf("iter %d: pool(%d,%d)[%d] = %d, want %d", iter, i, j, k, gp[k], wp[k])
					}
				}
			}
		}
		if err := got.Validate(g, a); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for k := 0; k < 1+rng.Intn(5); k++ {
			randomEdit(g, a, rng)
		}
	}
}

// TestSeededGainsEquivalence checks the boundary-seeded gains kernel
// against the full scan across randomized edits.
func TestSeededGainsEquivalence(t *testing.T) {
	g, a := editableGraph(t, 400, 8, 19)
	e := New(g, Options{})
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 120; iter++ {
		strict := iter%2 == 0
		got, err := e.Gains(a, strict)
		if err != nil {
			t.Fatalf("iter %d: engine gains: %v", iter, err)
		}
		want, err := refine.Gains(g, a, strict)
		if err != nil {
			t.Fatalf("iter %d: full gains: %v", iter, err)
		}
		if !reflect.DeepEqual(got.B, want.B) {
			t.Fatalf("iter %d: B diverges", iter)
		}
		if !reflect.DeepEqual(got.Gain, want.Gain) {
			t.Fatalf("iter %d: Gain diverges", iter)
		}
		for i := 0; i < a.P; i++ {
			for j := 0; j < a.P; j++ {
				gp, wp := got.Pool(int32(i), int32(j)), want.Pool(int32(i), int32(j))
				if len(gp) != len(wp) {
					t.Fatalf("iter %d: pool(%d,%d) length diverges", iter, i, j)
				}
				for k := range gp {
					if gp[k] != wp[k] {
						t.Fatalf("iter %d: pool(%d,%d)[%d] diverges", iter, i, j, k)
					}
				}
			}
		}
		for k := 0; k < 1+rng.Intn(5); k++ {
			randomEdit(g, a, rng)
		}
	}
}

// TestGainsSeededDuplicateSeeds feeds the seeded gains kernel a seed list
// with every vertex repeated and requires the same candidates as the full
// scan — duplicates must not double-bucket a vertex.
func TestGainsSeededDuplicateSeeds(t *testing.T) {
	g, a := editableGraph(t, 200, 5, 51)
	csr := g.ToCSR()
	seeds := append(g.Vertices(), g.Vertices()...)
	var s refine.Scratch
	got, err := s.GainsSeeded(csr, a, false, seeds)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refine.Gains(g, a, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.B, want.B) {
		t.Fatal("duplicate seeds changed the candidate counts")
	}
	for i := 0; i < a.P; i++ {
		for j := 0; j < a.P; j++ {
			gp, wp := got.Pool(int32(i), int32(j)), want.Pool(int32(i), int32(j))
			if len(gp) != len(wp) {
				t.Fatalf("pool(%d,%d) length diverges with duplicate seeds", i, j)
			}
		}
	}
}

// TestEngineRepartitionMatchesOneShot runs the same edit sequence through
// one long-lived engine and through fresh one-shot engines, requiring
// identical assignments — the engine's persistence must be purely a
// performance property.
func TestEngineRepartitionMatchesOneShot(t *testing.T) {
	gA, aA := editableGraph(t, 300, 6, 31)
	gB := gA.Clone()
	aB := aA.Clone()
	e := New(gA, Options{Refine: true})
	rngA := rand.New(rand.NewSource(37))
	rngB := rand.New(rand.NewSource(37))
	for step := 0; step < 6; step++ {
		for k := 0; k < 10; k++ {
			randomEdit(gA, aA, rngA)
			randomEdit(gB, aB, rngB)
		}
		// Drop the random moves: Repartition expects a valid (or Unassigned)
		// partition per live vertex, which randomEdit preserves.
		stA, errA := e.Repartition(context.Background(), aA)
		stB, errB := New(gB, Options{Refine: true}).Repartition(context.Background(), aB)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("step %d: error mismatch: %v vs %v", step, errA, errB)
		}
		if errA != nil {
			t.Skipf("step %d: repartition infeasible on this sequence: %v", step, errA)
		}
		if !reflect.DeepEqual(aA.Part, aB.Part) {
			t.Fatalf("step %d: long-lived engine diverges from one-shot", step)
		}
		if stA.BalanceMoved != stB.BalanceMoved || len(stA.Stages) != len(stB.Stages) {
			t.Fatalf("step %d: stats diverge: moved %d/%d stages %d/%d",
				step, stA.BalanceMoved, stB.BalanceMoved, len(stA.Stages), len(stB.Stages))
		}
	}
}

// TestSteadyStateLayerAllocs is the allocation regression: layering an
// unchanged graph through a warm engine must not allocate.
func TestSteadyStateLayerAllocs(t *testing.T) {
	g, a := editableGraph(t, 500, 8, 5)
	e := New(g, Options{})
	if _, err := e.Layer(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.Layer(context.Background(), a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Layer allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSteadyStateGainsAllocs: gain scans on an unchanged graph through a
// warm engine must not allocate.
func TestSteadyStateGainsAllocs(t *testing.T) {
	g, a := editableGraph(t, 500, 8, 5)
	e := New(g, Options{})
	if _, err := e.Gains(a, false); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.Gains(a, false); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Gains allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSteadyStateSmallEditAllocs: after a small edit, the engine resyncs
// incrementally; the whole Layer call (sync + kernel) must stay within a
// small constant allocation budget (the CSR refresh reuses its arrays).
func TestSteadyStateSmallEditAllocs(t *testing.T) {
	g, a := editableGraph(t, 500, 8, 5)
	e := New(g, Options{})
	if _, err := e.Layer(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	u, v := graph.Vertex(0), graph.Vertex(1)
	allocs := testing.AllocsPerRun(20, func() {
		// Flip one edge back and forth: a two-touch journal entry per run.
		if g.HasEdge(u, v) {
			_ = g.RemoveEdge(u, v)
		} else {
			_ = g.AddEdge(u, v, 1)
		}
		if _, err := e.Layer(context.Background(), a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Fatalf("small-edit Layer allocates %.1f objects/op, want ≤ 4", allocs)
	}
}

// TestSteadyStateBalanceFormulateAllocs locks the arena-backed balance
// LP formulation at zero steady-state allocation through a warm engine,
// alongside the layering/gains alloc locks above.
func TestSteadyStateBalanceFormulateAllocs(t *testing.T) {
	g, a := editableGraph(t, 500, 8, 5)
	e := New(g, Options{})
	lay, err := e.Layer(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), a.P)
	if _, err := e.balArena.FormulateTol(lay.Delta, sizes, targets, 1, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.balArena.FormulateTol(lay.Delta, sizes, targets, 1, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state balance formulation allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSteadyStateRefineFormulateAllocs locks the arena-backed
// refinement LP formulation at zero steady-state allocation through a
// warm engine.
func TestSteadyStateRefineFormulateAllocs(t *testing.T) {
	g, a := editableGraph(t, 500, 8, 5)
	e := New(g, Options{})
	cands, err := e.Gains(a, false)
	if err != nil {
		t.Fatal(err)
	}
	e.refArena.Formulate(cands)
	allocs := testing.AllocsPerRun(20, func() {
		e.refArena.Formulate(cands)
	})
	if allocs > 0 {
		t.Fatalf("steady-state refine formulation allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSteadyStateMWURepartitionAllocs locks the approximate solver's
// session-arena contract end to end: steady-state Repartition cycles
// through a warm engine running the "mwu" solver must allocate nothing,
// at every worker count — mirroring the SteadyRepartitionPar locks the
// exact solvers carry (like them, refinement — whose Drive reports
// allocate by design — stays off; the balance LPs are MWU-shaped, so
// the native ladder, its arenas and the fallback's warm dual-warm path
// are all inside the measured region).
func TestSteadyStateMWURepartitionAllocs(t *testing.T) {
	for _, procs := range []int{1, 2, 8} {
		g, base := editableGraph(t, 500, 8, 5)
		e := New(g, Options{Solver: lp.NewMWU(), Parallelism: procs})
		a := base.Clone()
		if _, err := e.Repartition(context.Background(), a); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			copy(a.Part, base.Part)
			if _, err := e.Repartition(context.Background(), a); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Fatalf("procs=%d: steady-state mwu Repartition allocates %.1f objects/op, want 0",
				procs, allocs)
		}
	}
}

// TestEngineMWUFallbackStats: the per-call Stats.MWUFallbacks delta must
// reflect the session's fallback counter — nonzero only when the mwu
// session actually delegated, and zero for exact solvers.
func TestEngineMWUFallbackStats(t *testing.T) {
	g, base := editableGraph(t, 300, 6, 42)
	tmpl := lp.NewMWU()
	e := New(g, Options{Solver: tmpl, Refine: true})
	total := 0
	for call := 0; call < 3; call++ {
		a := base.Clone()
		st, err := e.Repartition(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		if st.MWUFallbacks < 0 {
			t.Fatalf("call %d: negative MWUFallbacks %d", call, st.MWUFallbacks)
		}
		total += st.MWUFallbacks
	}
	ses, ok := e.opt.Solver.(*lp.MWU)
	if !ok {
		t.Fatalf("engine solver is %T, want *lp.MWU", e.opt.Solver)
	}
	if _, fb := ses.Counts(); fb != total {
		t.Fatalf("session fallbacks %d, per-call deltas sum to %d", fb, total)
	}
	if tmpl.Fallbacks() != 0 {
		t.Fatal("engine solves leaked fallback counts into the registered template")
	}

	gx, bx := editableGraph(t, 300, 6, 42)
	ex := New(gx, Options{Refine: true})
	st, err := ex.Repartition(context.Background(), bx.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if st.MWUFallbacks != 0 {
		t.Fatalf("exact solver reported MWUFallbacks %d, want 0", st.MWUFallbacks)
	}
}

// TestEngineForksSessionSolvers: New must give each engine a private
// instance of a stateful solver (basis lifetime = engine session), and
// share that one session between the balance and refine phases when
// they use the same solver.
func TestEngineForksSessionSolvers(t *testing.T) {
	template := lp.NewDualWarm()
	g1, _ := editableGraph(t, 100, 4, 3)
	g2, _ := editableGraph(t, 100, 4, 4)
	e1 := New(g1, Options{Solver: template, Refine: true})
	e2 := New(g2, Options{Solver: template, Refine: true})
	s1, ok := e1.opt.Solver.(*lp.DualWarm)
	if !ok {
		t.Fatalf("engine solver is %T, want *lp.DualWarm", e1.opt.Solver)
	}
	if s1 == template {
		t.Fatal("engine did not fork the session solver")
	}
	if e1.opt.Solver == e2.opt.Solver {
		t.Fatal("two engines share one solver session")
	}
	if e1.opt.RefineOptions.Solver != e1.opt.Solver {
		t.Fatal("refine phase does not share the engine's solver session")
	}
	// A distinct refine solver must be sessionized separately, not
	// replaced by the balance session. (Bounded is session-capable too —
	// its session carries the tableau and Solution arenas — so the engine
	// forks it rather than passing the bare value through.)
	e3 := New(g1, Options{Solver: template, Refine: true,
		RefineOptions: refine.Options{Solver: lp.Bounded{}}})
	if e3.opt.RefineOptions.Solver == e3.opt.Solver {
		t.Fatal("distinct refine solver was replaced by the balance session")
	}
	if got := e3.opt.RefineOptions.Solver.Name(); got != "bounded" {
		t.Fatalf("refine session name %q, want %q", got, "bounded")
	}
	if _, ok := e3.opt.RefineOptions.Solver.(lp.ParallelSolver); !ok {
		t.Fatalf("refine bounded session %T is not a ParallelSolver", e3.opt.RefineOptions.Solver)
	}
	// Even one sharing the balance solver's name: only the *identical
	// instance* shares a session, so a differently configured refine
	// DualWarm keeps its own fork (with its own limits).
	tuned := &lp.DualWarm{MaxIter: 1234}
	e5 := New(g1, Options{Solver: template, Refine: true,
		RefineOptions: refine.Options{Solver: tuned}})
	rf, ok := e5.opt.RefineOptions.Solver.(*lp.DualWarm)
	if !ok || rf == e5.opt.Solver.(*lp.DualWarm) {
		t.Fatal("same-name refine solver was collapsed into the balance session")
	}
	if rf.MaxIter != 1234 {
		t.Fatalf("refine session lost its configuration: MaxIter %d, want 1234", rf.MaxIter)
	}
	// Stateless solvers pass through untouched.
	e4 := New(g1, Options{Solver: lp.Revised{}})
	if e4.opt.Solver != (lp.Revised{}) {
		t.Fatalf("stateless solver was wrapped: %T", e4.opt.Solver)
	}
}

// TestEngineWarmSolverActuallyWarms: through a full engine Repartition
// sequence, the session's warm counter must climb — the plumbing from
// registry template to engine session to balance/refine solves is live.
func TestEngineWarmSolverActuallyWarms(t *testing.T) {
	g, a := editableGraph(t, 300, 6, 9)
	e := New(g, Options{Refine: true, Solver: lp.NewDualWarm()})
	for call := 0; call < 3; call++ {
		// Unbalance deterministically, then repartition.
		moved := 0
		for v := range a.Part {
			if a.Part[v] == 0 && moved < 20 {
				a.Part[v] = 1
				moved++
			}
		}
		if _, err := e.Repartition(context.Background(), a); err != nil {
			t.Fatal(err)
		}
	}
	warm, cold := e.opt.Solver.(*lp.DualWarm).Counts()
	if warm == 0 {
		t.Fatalf("engine session never warm-started (warm=%d cold=%d)", warm, cold)
	}
}

// randomGrowthEdit applies one random edit biased toward phase-1 work:
// new vertices are left Unassigned (where randomEdit assigns them), and
// existing vertices are sometimes explicitly unassigned — exactly the
// deltas the delta-aware assign must absorb.
func randomGrowthEdit(g *graph.Graph, a *partition.Assignment, rng *rand.Rand) {
	switch rng.Intn(6) {
	case 0, 1: // add an unassigned vertex hooked to an existing one
		v := g.AddVertex(1)
		a.Grow(g.Order())
		for tries := 0; tries < 10; tries++ {
			u := graph.Vertex(rng.Intn(g.Order()))
			if g.Alive(u) && u != v {
				_ = g.AddEdge(v, u, 1)
				return
			}
		}
	case 2: // add an isolated unassigned vertex (future orphan cluster)
		g.AddVertex(1)
		a.Grow(g.Order())
	case 3: // unassign an existing vertex
		v := graph.Vertex(rng.Intn(g.Order()))
		if g.Alive(v) {
			a.Part[v] = partition.Unassigned
		}
	case 4: // remove a vertex
		v := graph.Vertex(rng.Intn(g.Order()))
		if g.Alive(v) && g.NumVertices() > 8 {
			_ = g.RemoveVertex(v)
			// Leave the stale assignment behind: the engine must
			// normalize it, exactly as the oracle does.
		}
	default: // add an edge
		u := graph.Vertex(rng.Intn(g.Order()))
		v := graph.Vertex(rng.Intn(g.Order()))
		g.AddEdgeIfAbsent(u, v, 1)
	}
}

// TestAssignMatchesOracle drives the delta-aware phase 1 and the
// one-shot Assign oracle through the same growth-edit sequences and
// requires identical assignments, counts and errors.
func TestAssignMatchesOracle(t *testing.T) {
	for _, procs := range []int{1, 3} {
		gE, aE := editableGraph(t, 300, 6, 71)
		gO := gE.Clone()
		aO := aE.Clone()
		e := New(gE, Options{Parallelism: procs})
		rngE := rand.New(rand.NewSource(73))
		rngO := rand.New(rand.NewSource(73))
		for iter := 0; iter < 80; iter++ {
			edits := rngE.Intn(6)
			if rngO.Intn(6) != edits { // keep the two streams in lockstep
				t.Fatal("rng streams desynchronized")
			}
			for k := 0; k <= edits; k++ {
				randomGrowthEdit(gE, aE, rngE)
				randomGrowthEdit(gO, aO, rngO)
			}
			asgE, fbE, errE := e.assign(aE)
			asgO, fbO, errO := Assign(gO, aO)
			if (errE == nil) != (errO == nil) {
				t.Fatalf("procs=%d iter %d: error mismatch: %v vs %v", procs, iter, errE, errO)
			}
			if asgE != asgO || fbE != fbO {
				t.Fatalf("procs=%d iter %d: counts diverge: assigned %d/%d fallbacks %d/%d",
					procs, iter, asgE, asgO, fbE, fbO)
			}
			if !reflect.DeepEqual(aE.Part, aO.Part) {
				for v := range aE.Part {
					if aE.Part[v] != aO.Part[v] {
						t.Fatalf("procs=%d iter %d: assignment diverges at %d: %d vs %d",
							procs, iter, v, aE.Part[v], aO.Part[v])
					}
				}
			}
		}
	}
}

// sameCut requires two cut reports to agree exactly — floats included,
// which the boundary-seeded computation guarantees by performing the
// oracle's additions in the oracle's order.
func sameCut(t *testing.T, ctx string, got, want partition.CutStats) {
	t.Helper()
	if got.Total != want.Total || got.TotalWeight != want.TotalWeight ||
		got.Max != want.Max || got.Min != want.Min {
		t.Fatalf("%s: cut scalars diverge: got {%d %g %g %g} want {%d %g %g %g}",
			ctx, got.Total, got.TotalWeight, got.Max, got.Min,
			want.Total, want.TotalWeight, want.Max, want.Min)
	}
	if len(got.PerPart) != len(want.PerPart) {
		t.Fatalf("%s: PerPart lengths %d vs %d", ctx, len(got.PerPart), len(want.PerPart))
	}
	for q := range got.PerPart {
		if got.PerPart[q] != want.PerPart[q] {
			t.Fatalf("%s: PerPart[%d] = %g, want %g", ctx, q, got.PerPart[q], want.PerPart[q])
		}
	}
}

// TestIncrementalCutExact checks the boundary-seeded cut against the
// brute-force partition.Cut oracle across random edit sequences, with
// fractional edge weights so float equality is actually stressed.
func TestIncrementalCutExact(t *testing.T) {
	for _, procs := range []int{1, 4} {
		g, a := editableGraph(t, 350, 7, 83)
		rng := rand.New(rand.NewSource(89))
		// Perturb edge weights so cut sums exercise non-integral floats.
		for v := 0; v < g.Order(); v++ {
			for _, u := range g.Neighbors(graph.Vertex(v)) {
				if graph.Vertex(v) < u {
					_ = g.RemoveEdge(graph.Vertex(v), u)
					_ = g.AddEdge(graph.Vertex(v), u, 0.1+rng.Float64())
				}
			}
		}
		e := New(g, Options{Parallelism: procs})
		for iter := 0; iter < 120; iter++ {
			for k := 0; k <= rng.Intn(4); k++ {
				randomEdit(g, a, rng)
			}
			sameCut(t, "incremental vs oracle", e.Cut(a), partition.Cut(g, a))
		}
	}
}

// TestFullRefreshEquivalence runs the same edit + Repartition sequence
// through a default engine and a FullRefresh engine: the escape hatch
// must change nothing but the work done.
func TestFullRefreshEquivalence(t *testing.T) {
	gI, aI := editableGraph(t, 300, 6, 91)
	gF := gI.Clone()
	aF := aI.Clone()
	eI := New(gI, Options{Refine: true})
	eF := New(gF, Options{Refine: true, FullRefresh: true})
	rngI := rand.New(rand.NewSource(97))
	rngF := rand.New(rand.NewSource(97))
	for step := 0; step < 5; step++ {
		for k := 0; k < 8; k++ {
			randomGrowthEdit(gI, aI, rngI)
			randomGrowthEdit(gF, aF, rngF)
		}
		stI, errI := eI.Repartition(context.Background(), aI)
		stF, errF := eF.Repartition(context.Background(), aF)
		if (errI == nil) != (errF == nil) {
			t.Fatalf("step %d: error mismatch: %v vs %v", step, errI, errF)
		}
		if errI != nil {
			t.Skipf("step %d: repartition infeasible on this sequence: %v", step, errI)
		}
		if !reflect.DeepEqual(aI.Part, aF.Part) {
			t.Fatalf("step %d: FullRefresh diverges from incremental", step)
		}
		sameCut(t, "incremental CutAfter vs FullRefresh", stI.CutAfter, stF.CutAfter)
		if stF.CSRPatched != 0 || stF.CutIncremental != 0 {
			t.Fatalf("step %d: FullRefresh reported incremental work: patched=%d cutInc=%d",
				step, stF.CSRPatched, stF.CutIncremental)
		}
		if step > 0 && stI.CSRPatched == 0 {
			t.Fatalf("step %d: warm incremental engine never patched its snapshot", step)
		}
		if stI.CutIncremental == 0 {
			t.Fatalf("step %d: incremental engine never served an incremental cut", step)
		}
	}
}

// TestSteadyStateCutAllocs: the incremental cut report on a warm engine
// must not allocate.
func TestSteadyStateCutAllocs(t *testing.T) {
	g, a := editableGraph(t, 500, 8, 5)
	e := New(g, Options{})
	_ = e.Cut(a)
	allocs := testing.AllocsPerRun(20, func() { _ = e.Cut(a) })
	if allocs > 0 {
		t.Fatalf("steady-state incremental cut allocates %.1f objects/op, want 0", allocs)
	}
}

// TestStatsClone: the clone must deep-copy every arena-backed field and
// survive the engine's next call unchanged.
func TestStatsClone(t *testing.T) {
	g, a := editableGraph(t, 200, 4, 17)
	e := New(g, Options{Refine: true})
	// Unbalance so stages actually run.
	moved := 0
	for v := range a.Part {
		if a.Part[v] == 0 && moved < 15 {
			a.Part[v] = 1
			moved++
		}
	}
	st, err := e.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	clone := st.Clone()
	if !reflect.DeepEqual(clone, st) {
		t.Fatal("clone differs from the original")
	}
	// Overwrite the arena with a second call; the clone must not move.
	snapshot := *clone
	stages := append([]StageStats(nil), clone.Stages...)
	perPart := append([]float64(nil), clone.CutAfter.PerPart...)
	for k := 0; k < 10; k++ {
		randomEdit(g, a, rand.New(rand.NewSource(int64(k))))
	}
	if _, err := e.Repartition(context.Background(), a); err == nil || err != nil {
		// Either outcome is fine; only the clone's stability matters.
		_ = err
	}
	if !reflect.DeepEqual(clone.Stages, stages) {
		t.Fatal("clone's Stages were overwritten by the next call")
	}
	if !reflect.DeepEqual(clone.CutAfter.PerPart, perPart) {
		t.Fatal("clone's CutAfter.PerPart was overwritten by the next call")
	}
	if clone.NewAssigned != snapshot.NewAssigned || clone.BalanceMoved != snapshot.BalanceMoved {
		t.Fatal("clone's scalars were overwritten by the next call")
	}
	if clone.Refine != nil && st.Refine != nil && clone.Refine == st.Refine {
		t.Fatal("clone shares the Refine pointer with the arena")
	}
}
