package engine

import (
	"context"
	"math/rand"
	"testing"
)

// FuzzBoundaryExact is the fuzz form of the PR 1 boundary-exactness
// test: random edit sequences against random geometric graphs, with the
// incremental tracker (at a fuzzed worker count) checked against the
// brute-force boundary after every burst.
func FuzzBoundaryExact(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(0))
	f.Add(int64(42), uint8(40), uint8(3))
	f.Add(int64(7), uint8(25), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, edits uint8, procs uint8) {
		workers := 1 + int(procs%8)
		n := 60 + int(uint64(seed)%400) // spans parBoundaryMin: both boundary paths get fuzzed
		p := 3 + int(uint64(seed)%4)
		g, a := editableGraph(t, n, p, seed)
		e := New(g, Options{Parallelism: workers})
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		requireSameBoundary(t, e.Boundary(a), bruteBoundary(g, a))
		for i := 0; i < int(edits); i++ {
			randomEdit(g, a, rng)
			if i%3 == 0 {
				requireSameBoundary(t, e.Boundary(a), bruteBoundary(g, a))
			}
		}
		requireSameBoundary(t, e.Boundary(a), bruteBoundary(g, a))
	})
}

// FuzzParallelEquivalence is the parallel-vs-sequential kernel
// equivalence fuzz: the same random edit sequence drives a sequential
// and a parallel engine, and the boundary set, the layering result, the
// gain candidates and a full IGPR Repartition must stay bit-identical
// for the fuzzed worker count.
func FuzzParallelEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(2), false)
	f.Add(int64(9), uint8(20), uint8(5), true)
	f.Add(int64(23), uint8(14), uint8(15), false)
	f.Fuzz(func(t *testing.T, seed int64, edits uint8, procs uint8, strict bool) {
		workers := 2 + int(procs%15)
		n := 60 + int(uint64(seed)%400) // spans parBoundaryMin: both boundary paths get fuzzed
		p := 3 + int(uint64(seed)%5)
		gSeq, aSeq := editableGraph(t, n, p, seed)
		gPar := gSeq.Clone()
		aPar := aSeq.Clone()
		eSeq := New(gSeq, Options{Refine: true, Parallelism: 1})
		ePar := New(gPar, Options{Refine: true, Parallelism: workers})
		rngSeq := rand.New(rand.NewSource(seed ^ 0xfa11))
		rngPar := rand.New(rand.NewSource(seed ^ 0xfa11))
		for i := 0; i < int(edits); i++ {
			randomEdit(gSeq, aSeq, rngSeq)
			randomEdit(gPar, aPar, rngPar)
		}

		requireSameBoundary(t, ePar.Boundary(aPar), bruteBoundary(gPar, aPar))
		laySeq, errS := eSeq.Layer(context.Background(), aSeq)
		layPar, errP := ePar.Layer(context.Background(), aPar)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("layer error mismatch: %v vs %v", errS, errP)
		}
		if errS == nil {
			requireSameLayer(t, layPar, laySeq, aSeq.P)
		}
		cSeq, errS := eSeq.Gains(aSeq, strict)
		cPar, errP := ePar.Gains(aPar, strict)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("gains error mismatch: %v vs %v", errS, errP)
		}
		if errS == nil {
			requireSameGains(t, cPar, cSeq, aSeq.P)
		}

		_, errS = eSeq.Repartition(context.Background(), aSeq)
		_, errP = ePar.Repartition(context.Background(), aPar)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("repartition error mismatch: %v vs %v", errS, errP)
		}
		if errS != nil {
			return // infeasible on both: nothing further to compare
		}
		if len(aSeq.Part) != len(aPar.Part) {
			t.Fatalf("assignment lengths diverge: %d vs %d", len(aSeq.Part), len(aPar.Part))
		}
		for v := range aSeq.Part {
			if aSeq.Part[v] != aPar.Part[v] {
				t.Fatalf("assignment diverges at vertex %d: %d vs %d (workers=%d)",
					v, aSeq.Part[v], aPar.Part[v], workers)
			}
		}
	})
}
