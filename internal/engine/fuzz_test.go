package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

// FuzzBoundaryExact is the fuzz form of the PR 1 boundary-exactness
// test: random edit sequences against random geometric graphs, with the
// incremental tracker (at a fuzzed worker count) checked against the
// brute-force boundary after every burst.
func FuzzBoundaryExact(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(0))
	f.Add(int64(42), uint8(40), uint8(3))
	f.Add(int64(7), uint8(25), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, edits uint8, procs uint8) {
		workers := 1 + int(procs%8)
		n := 60 + int(uint64(seed)%400) // spans parBoundaryMin: both boundary paths get fuzzed
		p := 3 + int(uint64(seed)%4)
		g, a := editableGraph(t, n, p, seed)
		e := New(g, Options{Parallelism: workers})
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		requireSameBoundary(t, e.Boundary(a), bruteBoundary(g, a))
		for i := 0; i < int(edits); i++ {
			randomEdit(g, a, rng)
			if i%3 == 0 {
				requireSameBoundary(t, e.Boundary(a), bruteBoundary(g, a))
			}
		}
		requireSameBoundary(t, e.Boundary(a), bruteBoundary(g, a))
	})
}

// FuzzParallelEquivalence is the parallel-vs-sequential kernel
// equivalence fuzz: the same random edit sequence drives a sequential
// and a parallel engine, and the boundary set, the layering result, the
// gain candidates and a full IGPR Repartition must stay bit-identical
// for the fuzzed worker count.
func FuzzParallelEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(2), false)
	f.Add(int64(9), uint8(20), uint8(5), true)
	f.Add(int64(23), uint8(14), uint8(15), false)
	f.Fuzz(func(t *testing.T, seed int64, edits uint8, procs uint8, strict bool) {
		workers := 2 + int(procs%15)
		n := 60 + int(uint64(seed)%400) // spans parBoundaryMin: both boundary paths get fuzzed
		p := 3 + int(uint64(seed)%5)
		gSeq, aSeq := editableGraph(t, n, p, seed)
		gPar := gSeq.Clone()
		aPar := aSeq.Clone()
		eSeq := New(gSeq, Options{Refine: true, Parallelism: 1})
		ePar := New(gPar, Options{Refine: true, Parallelism: workers})
		rngSeq := rand.New(rand.NewSource(seed ^ 0xfa11))
		rngPar := rand.New(rand.NewSource(seed ^ 0xfa11))
		for i := 0; i < int(edits); i++ {
			// Alternate plain and growth edits so the delta-aware phase 1
			// (unassigned vertices, orphan clusters) is part of the
			// parallel-equivalence contract too.
			if i%2 == 0 {
				randomEdit(gSeq, aSeq, rngSeq)
				randomEdit(gPar, aPar, rngPar)
			} else {
				randomGrowthEdit(gSeq, aSeq, rngSeq)
				randomGrowthEdit(gPar, aPar, rngPar)
			}
		}

		requireSameBoundary(t, ePar.Boundary(aPar), bruteBoundary(gPar, aPar))
		laySeq, errS := eSeq.Layer(context.Background(), aSeq)
		layPar, errP := ePar.Layer(context.Background(), aPar)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("layer error mismatch: %v vs %v", errS, errP)
		}
		if errS == nil {
			requireSameLayer(t, layPar, laySeq, aSeq.P)
		}
		cSeq, errS := eSeq.Gains(aSeq, strict)
		cPar, errP := ePar.Gains(aPar, strict)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("gains error mismatch: %v vs %v", errS, errP)
		}
		if errS == nil {
			requireSameGains(t, cPar, cSeq, aSeq.P)
		}

		_, errS = eSeq.Repartition(context.Background(), aSeq)
		_, errP = ePar.Repartition(context.Background(), aPar)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("repartition error mismatch: %v vs %v", errS, errP)
		}
		if errS != nil {
			return // infeasible on both: nothing further to compare
		}
		if len(aSeq.Part) != len(aPar.Part) {
			t.Fatalf("assignment lengths diverge: %d vs %d", len(aSeq.Part), len(aPar.Part))
		}
		for v := range aSeq.Part {
			if aSeq.Part[v] != aPar.Part[v] {
				t.Fatalf("assignment diverges at vertex %d: %d vs %d (workers=%d)",
					v, aSeq.Part[v], aPar.Part[v], workers)
			}
		}
	})
}

// FuzzVCycleParallelEquivalence is the multilevel parallel-equivalence
// fuzz: the same edit history — growth edits plus deterministic
// partition drift that forces hierarchy purity repairs — drives a
// sequential (procs=1) and a parallel V-cycle engine, and every full
// multilevel Repartition must agree bit for bit: the assignment, the
// hierarchy-repaired flag and the level count. procs=1 is the exact
// sequential path; workers are drawn from {2,3,7,16}.
func FuzzVCycleParallelEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(0))
	f.Add(int64(42), uint8(30), uint8(1))
	f.Add(int64(7), uint8(22), uint8(2))
	f.Add(int64(19), uint8(16), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, edits uint8, procs uint8) {
		workers := []int{2, 3, 7, 16}[procs%4]
		n := 60 + int(uint64(seed)%300)
		p := 2 + int(uint64(seed)%4)
		gSeq, aSeq := editableGraph(t, n, p, seed)
		gPar := gSeq.Clone()
		aPar := aSeq.Clone()
		mk := func(g *graph.Graph, w int) *Engine {
			return New(g, Options{
				Refine:      true,
				Parallelism: w,
				Multilevel:  MultilevelOptions{Enabled: true, CoarsenTo: 8, Seed: seed},
			})
		}
		eSeq := mk(gSeq, 1)
		defer eSeq.Close()
		ePar := mk(gPar, workers)
		defer ePar.Close()
		rngSeq := rand.New(rand.NewSource(seed ^ 0x5c7c1e))
		rngPar := rand.New(rand.NewSource(seed ^ 0x5c7c1e))
		check := func() {
			stSeq, errS := eSeq.Repartition(context.Background(), aSeq)
			stPar, errP := ePar.Repartition(context.Background(), aPar)
			if (errS == nil) != (errP == nil) {
				t.Fatalf("repartition error mismatch: %v vs %v (workers=%d)", errS, errP, workers)
			}
			if errS != nil && !errors.Is(errS, ErrNeedRepartition) {
				t.Fatalf("multilevel Repartition: %v", errS)
			}
			if len(aSeq.Part) != len(aPar.Part) {
				t.Fatalf("assignment lengths diverge: %d vs %d", len(aSeq.Part), len(aPar.Part))
			}
			for v := range aSeq.Part {
				if aSeq.Part[v] != aPar.Part[v] {
					t.Fatalf("assignment diverges at vertex %d: %d vs %d (workers=%d)",
						v, aSeq.Part[v], aPar.Part[v], workers)
				}
			}
			if errS == nil {
				if stSeq.HierarchyRepaired != stPar.HierarchyRepaired {
					t.Fatalf("HierarchyRepaired diverges: %v vs %v (workers=%d)",
						stSeq.HierarchyRepaired, stPar.HierarchyRepaired, workers)
				}
				if len(stSeq.Levels) != len(stPar.Levels) {
					t.Fatalf("level count diverges: %d vs %d (workers=%d)",
						len(stSeq.Levels), len(stPar.Levels), workers)
				}
			}
		}
		check()
		for i := 0; i < int(edits); i++ {
			switch i % 3 {
			case 0:
				randomEdit(gSeq, aSeq, rngSeq)
				randomEdit(gPar, aPar, rngPar)
			case 1:
				randomGrowthEdit(gSeq, aSeq, rngSeq)
				randomGrowthEdit(gPar, aPar, rngPar)
			default:
				// Deterministic partition drift (applied identically to
				// both) forces purity dissolves on the next hierarchy
				// repair — the V-cycle path plain edits rarely reach.
				for k := 0; k < 5; k++ {
					v := graph.Vertex(rngSeq.Intn(gSeq.Order()))
					_ = rngPar.Intn(gPar.Order()) // keep streams aligned
					if gSeq.Alive(v) && aSeq.Part[v] >= 0 {
						np := int32((int(aSeq.Part[v]) + 1) % aSeq.P)
						aSeq.Part[v] = np
						aPar.Part[v] = np
					}
				}
			}
			if i%5 == 4 {
				check()
			}
		}
		check()
	})
}

// requireSameSnapshot compares a snapshot's logical content against a
// fresh full rebuild: every row, weight, liveness flag and count must be
// identical (slack layout is free to differ).
func requireSameSnapshot(t *testing.T, got, want *graph.CSR) {
	t.Helper()
	if got.Order() != want.Order() || got.NumV != want.NumV || got.NumE != want.NumE {
		t.Fatalf("snapshot shape diverges: order %d/%d numV %d/%d numE %d/%d",
			got.Order(), want.Order(), got.NumV, want.NumV, got.NumE, want.NumE)
	}
	for v := 0; v < want.Order(); v++ {
		if got.Live[v] != want.Live[v] || got.VW[v] != want.VW[v] {
			t.Fatalf("vertex %d: live/weight diverge", v)
		}
		gr, wr := got.Row(graph.Vertex(v)), want.Row(graph.Vertex(v))
		gw, ww := got.RowWeights(graph.Vertex(v)), want.RowWeights(graph.Vertex(v))
		if len(gr) != len(wr) {
			t.Fatalf("vertex %d: degree %d, want %d", v, len(gr), len(wr))
		}
		for i := range wr {
			if gr[i] != wr[i] || gw[i] != ww[i] {
				t.Fatalf("vertex %d arc %d: (%d,%g), want (%d,%g)", v, i, gr[i], gw[i], wr[i], ww[i])
			}
		}
	}
}

// FuzzCSRPatchEquivalence is the delta-pipeline exactness fuzz: random
// edit scripts drive a warm engine, and after every burst the
// journal-patched CSR snapshot must match a fresh full rebuild and the
// boundary-seeded incremental cut must match the brute-force
// partition.Cut — floats included.
func FuzzCSRPatchEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(0))
	f.Add(int64(42), uint8(40), uint8(3))
	f.Add(int64(7), uint8(25), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, edits uint8, procs uint8) {
		workers := 1 + int(procs%8)
		n := 60 + int(uint64(seed)%400)
		p := 3 + int(uint64(seed)%4)
		g, a := editableGraph(t, n, p, seed)
		e := New(g, Options{Parallelism: workers})
		rng := rand.New(rand.NewSource(seed ^ 0x9a7c))
		check := func() {
			requireSameSnapshot(t, e.Snapshot(a), g.RebuildCSRInto(nil))
			got, want := e.Cut(a), partition.Cut(g, a)
			if got.Total != want.Total || got.TotalWeight != want.TotalWeight ||
				got.Max != want.Max || got.Min != want.Min {
				t.Fatalf("cut diverges: got {%d %g %g %g} want {%d %g %g %g}",
					got.Total, got.TotalWeight, got.Max, got.Min,
					want.Total, want.TotalWeight, want.Max, want.Min)
			}
			for q := range want.PerPart {
				if got.PerPart[q] != want.PerPart[q] {
					t.Fatalf("PerPart[%d] = %g, want %g", q, got.PerPart[q], want.PerPart[q])
				}
			}
		}
		check()
		for i := 0; i < int(edits); i++ {
			if i%2 == 0 {
				randomEdit(g, a, rng)
			} else {
				randomGrowthEdit(g, a, rng)
			}
			if i%3 == 0 {
				check()
			}
			if i%5 == 4 {
				// Interleave full pipeline runs so moves, stale pendings
				// and refreshes mix the way a real session does.
				_, _ = e.Repartition(context.Background(), a)
			}
		}
		check()
	})
}

// FuzzVCycleValidity is the multilevel quality fuzz: random edit
// histories drive a V-cycle engine (tiny CoarsenTo so even fuzz-sized
// graphs build real hierarchies). Every multilevel Repartition must
// leave a valid assignment no matter what, exactly balanced when it
// succeeds, and its cut must stay within a generous bound (2x + 16) of
// a flat-pipeline run cloned from the same pre-call state — same-state
// comparison, because letting two pipelines evolve separately would
// measure accumulated basin divergence, not per-call quality. The
// tighter paper-mesh bound is TestMultilevelCutWithinBoundOfFlat.
func FuzzVCycleValidity(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(0))
	f.Add(int64(42), uint8(30), uint8(3))
	f.Add(int64(7), uint8(22), uint8(6))
	f.Fuzz(func(t *testing.T, seed int64, edits uint8, procs uint8) {
		workers := 1 + int(procs%8)
		n := 60 + int(uint64(seed)%300)
		p := 2 + int(uint64(seed)%4)
		g, a := editableGraph(t, n, p, seed)
		e := New(g, Options{
			Refine:      true,
			Parallelism: workers,
			Multilevel:  MultilevelOptions{Enabled: true, CoarsenTo: 8, Seed: seed},
		})
		defer e.Close()
		rng := rand.New(rand.NewSource(seed ^ 0x7c1e))
		check := func() {
			gF, aF := g.Clone(), a.Clone()
			_, err := e.Repartition(context.Background(), a)
			eF := New(gF, Options{Refine: true, Parallelism: workers})
			_, errF := eF.Repartition(context.Background(), aF)
			eF.Close()
			// Infeasibility (ErrNeedRepartition) is a documented outcome
			// of either pipeline on adversarial inputs, and the two can
			// disagree (the V-cycle reshapes the configuration the fine
			// stage loop then faces). The hard contract: the assignment
			// stays valid no matter what; when both succeed, exact balance
			// and the cut bound hold.
			if err != nil && !errors.Is(err, ErrNeedRepartition) {
				t.Fatalf("multilevel Repartition: %v", err)
			}
			if errF != nil && !errors.Is(errF, ErrNeedRepartition) {
				t.Fatalf("flat Repartition: %v", errF)
			}
			if verr := a.Validate(g); verr != nil {
				t.Fatalf("invalid multilevel assignment (err=%v): %v", err, verr)
			}
			if err != nil || errF != nil {
				return
			}
			if dev := maxAbsDev(a.Sizes(g), partition.Targets(g.NumVertices(), a.P)); dev != 0 {
				t.Fatalf("multilevel balance off by %d", dev)
			}
			flat := partition.Cut(gF, aF).TotalWeight
			if ml := partition.Cut(g, a).TotalWeight; ml > 2*flat+16 {
				t.Fatalf("V-cycle cut %g exceeds 2*%g+16 of flat", ml, flat)
			}
		}
		check()
		for i := 0; i < int(edits); i++ {
			if i%2 == 0 {
				randomEdit(g, a, rng)
			} else {
				randomGrowthEdit(g, a, rng)
			}
			if i%7 == 6 {
				check()
			}
		}
		check()
	})
}
