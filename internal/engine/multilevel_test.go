package engine

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

// grownGrid returns a striped grid with extra vertices attached on the
// rightmost partition, so the initial assignment is valid but
// imbalanced — the workload both the flat pipeline and the V-cycle must
// rebalance.
func grownGrid(rows, cols, p, extra int, seed int64) (*graph.Graph, *partition.Assignment) {
	g := graph.Grid(rows, cols)
	a := partition.New(g.Order(), p)
	w := cols / p
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := c / w
			if q >= p {
				q = p - 1
			}
			a.Part[r*cols+c] = int32(q)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	prev := []graph.Vertex{graph.Vertex(cols - 1)}
	for k := 0; k < extra; k++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, prev[rng.Intn(len(prev))], 1)
		a.Part = append(a.Part, int32(p-1))
		prev = append(prev, v)
	}
	return g, a
}

func TestMultilevelColdVCycle(t *testing.T) {
	// Cold start from a degenerate flood-fill: the V-cycle must produce
	// a valid, exactly balanced assignment via the spectral coarsest
	// init, and report the hierarchy it built.
	g := graph.Grid(48, 48)
	a := partition.New(g.Order(), 4)
	for v := range a.Part {
		a.Part[v] = 0
	}
	e := New(g, Options{Multilevel: MultilevelOptions{Enabled: true}})
	defer e.Close()
	st, err := e.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes(g)
	targets := partition.Targets(g.NumVertices(), a.P)
	if maxAbsDev(sizes, targets) != 0 {
		t.Fatalf("not exactly balanced: sizes %v targets %v", sizes, targets)
	}
	if !st.SpectralInit {
		t.Fatal("degenerate cold start did not take the spectral coarsest init")
	}
	if st.HierarchyRepaired {
		t.Fatal("first call cannot have repaired a hierarchy")
	}
	if len(st.Levels) == 0 {
		t.Fatal("no hierarchy levels reported")
	}
	for l, ls := range st.Levels {
		if !ls.Rebuilt {
			t.Fatalf("level %d of a cold hierarchy not marked Rebuilt", l)
		}
		if ls.Vertices <= 0 {
			t.Fatalf("level %d reports %d vertices", l, ls.Vertices)
		}
	}
	if st.CoarsenTime <= 0 || st.TotalTime() < st.CoarsenTime+st.UncoarsenTime {
		t.Fatalf("V-cycle timings not plumbed: coarsen %v uncoarsen %v total %v",
			st.CoarsenTime, st.UncoarsenTime, st.TotalTime())
	}
}

func TestMultilevelWarmRepartitionRepairs(t *testing.T) {
	// After a cold V-cycle, a small edit batch must take the
	// journal-repair path: no level recoarsened.
	g, a := grownGrid(32, 32, 4, 0, 1)
	e := New(g, Options{Multilevel: MultilevelOptions{Enabled: true}})
	defer e.Close()
	if _, err := e.Repartition(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for k := 0; k < 8; k++ {
		randomEdit(g, a, rng)
	}
	st, err := e.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if !st.HierarchyRepaired {
		t.Fatal("warm small-edit Repartition rebuilt the hierarchy instead of repairing it")
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	if maxAbsDev(a.Sizes(g), partition.Targets(g.NumVertices(), a.P)) != 0 {
		t.Fatal("warm multilevel call left imbalance")
	}
}

func TestMultilevelCutWithinBoundOfFlat(t *testing.T) {
	// Quality contract on a paper-scale mesh: the V-cycle's final cut
	// (after the shared fine polish) stays within 1.5x + 16 of the flat
	// pipeline's on the same imbalanced workload.
	build := func(ml bool) float64 {
		g, a := grownGrid(32, 32, 4, 120, 3)
		opt := Options{Refine: true}
		if ml {
			opt.Multilevel = MultilevelOptions{Enabled: true}
		}
		e := New(g, opt)
		defer e.Close()
		st, err := e.Repartition(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(g); err != nil {
			t.Fatal(err)
		}
		if maxAbsDev(a.Sizes(g), partition.Targets(g.NumVertices(), a.P)) != 0 {
			t.Fatal("imbalanced result")
		}
		return st.CutAfter.TotalWeight
	}
	flat := build(false)
	mlc := build(true)
	if mlc > 1.5*flat+16 {
		t.Fatalf("V-cycle cut %g exceeds bound 1.5*%g+16", mlc, flat)
	}
}

func TestMultilevelDeterministicAcrossWorkers(t *testing.T) {
	// The V-cycle is a sequential kernel inside a parallel engine: the
	// full cold+warm history must be bit-identical at every worker count.
	run := func(procs int) []int32 {
		g, a := grownGrid(24, 24, 4, 40, 5)
		e := New(g, Options{
			Refine:      true,
			Parallelism: procs,
			Multilevel:  MultilevelOptions{Enabled: true, Seed: 11},
		})
		defer e.Close()
		if _, err := e.Repartition(context.Background(), a); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(17))
		for k := 0; k < 12; k++ {
			randomEdit(g, a, rng)
		}
		if _, err := e.Repartition(context.Background(), a); err != nil {
			t.Fatal(err)
		}
		return append([]int32(nil), a.Part...)
	}
	p1 := run(1)
	for _, procs := range []int{2, 4} {
		pn := run(procs)
		if len(p1) != len(pn) {
			t.Fatalf("assignment length differs at %d workers", procs)
		}
		for v := range p1 {
			if p1[v] != pn[v] {
				t.Fatalf("assignment diverges at vertex %d with %d workers: %d != %d",
					v, procs, p1[v], pn[v])
			}
		}
	}
}

func TestMultilevelDisabledLeavesPipelineUntouched(t *testing.T) {
	g, a := grownGrid(16, 16, 4, 20, 7)
	e := New(g, Options{})
	defer e.Close()
	st, err := e.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Levels) != 0 || st.CoarsenTime != 0 || st.UncoarsenTime != 0 ||
		st.HierarchyRepaired || st.SpectralInit || st.CoarseMoved != 0 || st.VCycleRefined != 0 {
		t.Fatalf("flat pipeline leaked V-cycle stats: %+v", st)
	}
	if e.ml != nil {
		t.Fatal("flat pipeline created a hierarchy")
	}
}

func TestMultilevelObserverEventsPaired(t *testing.T) {
	var events []Event
	g, a := grownGrid(24, 24, 4, 30, 9)
	e := New(g, Options{
		Observer:   func(ev Event) { events = append(events, ev) },
		Multilevel: MultilevelOptions{Enabled: true},
	})
	defer e.Close()
	if _, err := e.Repartition(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	// Every Start must pair with an End of the same (Phase, Stage), and
	// the coarsen/uncoarsen phases must both appear.
	open := map[[2]int]int{}
	sawCoarsen, sawUncoarsen := false, false
	for _, ev := range events {
		key := [2]int{int(ev.Phase), ev.Stage}
		switch ev.Kind {
		case EventStart:
			open[key]++
		case EventEnd:
			open[key]--
			if open[key] < 0 {
				t.Fatalf("end without start: %+v", ev)
			}
		}
		if ev.Phase == PhaseCoarsen {
			sawCoarsen = true
		}
		if ev.Phase == PhaseUncoarsen {
			sawUncoarsen = true
		}
	}
	for key, n := range open {
		if n != 0 {
			t.Fatalf("unpaired span %v (%d open)", key, n)
		}
	}
	if !sawCoarsen || !sawUncoarsen {
		t.Fatalf("missing V-cycle phases: coarsen=%v uncoarsen=%v", sawCoarsen, sawUncoarsen)
	}
}

func TestMultilevelStatsCloneDetachesLevels(t *testing.T) {
	g, a := grownGrid(24, 24, 4, 30, 13)
	e := New(g, Options{Multilevel: MultilevelOptions{Enabled: true}})
	defer e.Close()
	st, err := e.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	clone := st.Clone()
	if len(clone.Levels) != len(st.Levels) {
		t.Fatal("clone dropped levels")
	}
	if len(st.Levels) > 0 {
		st.Levels[0].Vertices = -1
		if clone.Levels[0].Vertices == -1 {
			t.Fatal("clone aliases the Levels arena")
		}
	}
}
