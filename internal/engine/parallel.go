// The sharded form of the engine's boundary maintenance. Both O(n)
// passes — the from-scratch rebuild and the assignment-diff scan — are
// split into arc-balanced contiguous vertex shards run on the engine's
// fork-join group. The rebuild writes each vertex's membership from its
// owning shard and merges per-worker lists in shard order, reproducing
// the sequential ascending-id boundary exactly. The diff scan claims
// every re-examined vertex through an atomic compare-and-swap on the
// engine's recompute stamp, so each vertex's membership flip is decided
// and applied by exactly one worker; membership (a pure function of
// graph + assignment) stays deterministic even though the claim winner
// — and hence the unordered boundary list's layout — is not. The
// boundary's documented contract is an unordered duplicate-free set,
// and both downstream kernels (seeded layering, seeded gains) are
// order-independent, which FuzzParallelEquivalence exercises.
package engine

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/partition"
)

// parBoundaryMin is the snapshot order below which the boundary passes
// run inline instead of forking the worker group — the same
// small-input cutoff the layering and gains kernels apply. The
// threshold depends only on the graph order, and boundary membership
// is worker-count independent anyway, so determinism is unaffected.
// (FuzzBoundaryExact and FuzzParallelEquivalence generate graphs on
// both sides of this constant; keep that true if it changes.)
const parBoundaryMin = 256

// boundaryWorker is one worker's private arena for boundary passes.
type boundaryWorker struct {
	add   []graph.Vertex // vertices that entered the boundary
	dirty bool           // a vertex left the boundary (list needs compaction)
}

// growWorkers readies the per-worker arenas.
func (e *Engine) growWorkers() {
	for len(e.bws) < e.procs {
		e.bws = append(e.bws, boundaryWorker{})
	}
}

// rebuildBoundaryPar is the sharded full rebuild; the caller has already
// truncated e.boundary and grown the tracker arrays.
func (e *Engine) rebuildBoundaryPar(a *partition.Assignment) {
	e.growWorkers()
	e.shards = e.csr.Shards(e.shards[:0], e.procs)
	e.rb = rebuildTask{e: e, a: a}
	e.group.Run(len(e.shards), &e.rb)
	e.rb = rebuildTask{} // drop the assignment pointer after the region
	for w := range e.shards {
		e.boundary = append(e.boundary, e.bws[w].add...)
	}
}

// rebuildTask scans one vertex-range shard for boundary membership.
type rebuildTask struct {
	e *Engine
	a *partition.Assignment
}

func (t *rebuildTask) Do(w int) {
	e := t.e
	ws := &e.bws[w]
	ws.add = ws.add[:0]
	sh := e.shards[w]
	for v := sh.Lo; v < sh.Hi; v++ {
		member := e.isBoundary(graph.Vertex(v), t.a)
		e.inBoundary[v] = member
		if member {
			ws.add = append(ws.add, graph.Vertex(v))
		}
	}
}

// diffAssignmentPar is the sharded assignment-diff scan.
func (e *Engine) diffAssignmentPar(a *partition.Assignment) {
	e.growWorkers()
	e.shards = e.csr.Shards(e.shards[:0], e.procs)
	e.df = diffTask{e: e, a: a}
	e.group.Run(len(e.shards), &e.df)
	e.df = diffTask{} // drop the assignment pointer after the region
	for w := range e.shards {
		ws := &e.bws[w]
		e.boundary = append(e.boundary, ws.add...)
		if ws.dirty {
			e.listDirty = true
		}
	}
}

// diffTask scans one vertex-range shard for assignment changes,
// re-examining changed vertices and their neighbors.
type diffTask struct {
	e *Engine
	a *partition.Assignment
}

func (t *diffTask) Do(w int) {
	e := t.e
	ws := &e.bws[w]
	ws.add = ws.add[:0]
	ws.dirty = false
	sh := e.shards[w]
	for v := sh.Lo; v < sh.Hi; v++ {
		if t.a.Part[v] == e.prevPart[v] {
			continue
		}
		e.recomputePar(ws, graph.Vertex(v), t.a)
		for _, u := range e.csr.Row(graph.Vertex(v)) {
			e.recomputePar(ws, u, t.a)
		}
	}
}

// recomputePar is recompute with an atomic claim: the stamp CAS admits
// exactly one worker per vertex per sync, so the inBoundary read and
// write below are race-free. Stamps already claimed by the sequential
// journal pass (which runs before the diff region starts) are seen as
// current and skipped, exactly like the sequential path.
func (e *Engine) recomputePar(ws *boundaryWorker, v graph.Vertex, a *partition.Assignment) {
	cur := atomic.LoadUint32(&e.stamp[v])
	if cur == e.gen || !atomic.CompareAndSwapUint32(&e.stamp[v], cur, e.gen) {
		return
	}
	now := e.isBoundary(v, a)
	if now == e.inBoundary[v] {
		return
	}
	e.inBoundary[v] = now
	if now {
		ws.add = append(ws.add, v)
	} else {
		ws.dirty = true
	}
}
