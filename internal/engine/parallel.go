// The sharded form of the engine's boundary maintenance. Both O(n)
// passes — the from-scratch rebuild and the assignment-diff scan — are
// split into arc-balanced contiguous vertex shards run on the engine's
// fork-join group. The rebuild writes each vertex's membership and size
// attribution from its owning shard and merges per-worker lists in
// shard order, reproducing the sequential ascending-id boundary
// exactly. The diff scan claims every re-examined vertex through an
// atomic compare-and-swap on the engine's recompute stamp, so each
// vertex's membership flip, size-attribution move and pending-collect
// is decided and applied by exactly one worker; membership and
// attribution (pure functions of graph + assignment) stay deterministic
// even though the claim winner — and hence the unordered boundary
// list's layout — is not. The boundary's documented contract is an
// unordered duplicate-free set, and every downstream consumer (seeded
// layering, seeded gains, the sorted cut report, the sorted phase-1
// seed list) is order-independent, which FuzzParallelEquivalence
// exercises. The per-partition size counters are summed from per-worker
// integer deltas at the join — integer addition is order-free, so they
// too are exact for every worker count.
package engine

import (
	"slices"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/partition"
)

// parBoundaryMin is the snapshot order below which the boundary passes
// run inline instead of forking the worker group — the same
// small-input cutoff the layering and gains kernels apply. The
// threshold depends only on the graph order, and boundary membership
// is worker-count independent anyway, so determinism is unaffected.
// (FuzzBoundaryExact and FuzzParallelEquivalence generate graphs on
// both sides of this constant; keep that true if it changes.)
const parBoundaryMin = 256

// boundaryWorker is one worker's private arena for boundary passes.
type boundaryWorker struct {
	add   []graph.Vertex // vertices that entered the boundary
	pend  []graph.Vertex // vertices newly collected for phase 1
	psize []int          // per-partition size deltas (rebuild: counts)
	dirty bool           // a vertex left the boundary (list needs compaction)
}

// growWorkers readies the per-worker arenas for P partitions.
func (e *Engine) growWorkers(p int) {
	for len(e.bws) < e.procs {
		e.bws = append(e.bws, boundaryWorker{})
	}
	for w := range e.bws[:e.procs] {
		ws := &e.bws[w]
		if cap(ws.psize) < p {
			ws.psize = make([]int, p)
		}
		ws.psize = ws.psize[:p]
	}
}

// joinBoundaryWorkers merges the per-worker boundary additions, pending
// collections and size deltas in shard order.
func (e *Engine) joinBoundaryWorkers(workers int) {
	for w := 0; w < workers; w++ {
		ws := &e.bws[w]
		e.boundary = append(e.boundary, ws.add...)
		e.pendingNew = append(e.pendingNew, ws.pend...)
		for q, d := range ws.psize {
			e.partSizes[q] += d
		}
		if ws.dirty {
			e.listDirty = true
		}
	}
}

// rebuildBoundaryPar is the sharded full rebuild; the caller has already
// truncated e.boundary, zeroed e.partSizes and grown the tracker arrays.
func (e *Engine) rebuildBoundaryPar(a *partition.Assignment) {
	e.growWorkers(a.P)
	e.shards = e.csr.Shards(e.shards[:0], e.procs)
	e.rb = rebuildTask{e: e, a: a}
	e.group.Run(len(e.shards), &e.rb)
	e.rb = rebuildTask{} // drop the assignment pointer after the region
	e.joinBoundaryWorkers(len(e.shards))
}

// rebuildTask scans one vertex-range shard for boundary membership,
// size attribution and pending collection. Shards are disjoint, so
// every per-vertex write is owned by exactly one worker.
type rebuildTask struct {
	e *Engine
	a *partition.Assignment
}

func (t *rebuildTask) Do(w int) {
	e := t.e
	ws := &e.bws[w]
	ws.add = ws.add[:0]
	ws.pend = ws.pend[:0]
	for q := range ws.psize {
		ws.psize[q] = 0
	}
	ws.dirty = false
	sh := e.shards[w]
	for v := sh.Lo; v < sh.Hi; v++ {
		member := e.isBoundary(graph.Vertex(v), t.a)
		e.inBoundary[v] = member
		if member {
			ws.add = append(ws.add, graph.Vertex(v))
		}
		want := e.attrOf(graph.Vertex(v), t.a)
		e.sizeAttr[v] = want
		if want >= 0 {
			ws.psize[want]++
		}
		e.collectPending(graph.Vertex(v), t.a, &ws.pend)
	}
}

// diffAssignmentPar is the sharded assignment-diff scan.
func (e *Engine) diffAssignmentPar(a *partition.Assignment) {
	e.growWorkers(a.P)
	e.shards = e.csr.Shards(e.shards[:0], e.procs)
	e.df = diffTask{e: e, a: a}
	e.group.Run(len(e.shards), &e.df)
	e.df = diffTask{} // drop the assignment pointer after the region
	e.joinBoundaryWorkers(len(e.shards))
}

// diffTask scans one vertex-range shard for assignment changes,
// re-examining changed vertices and their neighbors.
type diffTask struct {
	e *Engine
	a *partition.Assignment
}

func (t *diffTask) Do(w int) {
	e := t.e
	ws := &e.bws[w]
	ws.add = ws.add[:0]
	ws.pend = ws.pend[:0]
	for q := range ws.psize {
		ws.psize[q] = 0
	}
	ws.dirty = false
	sh := e.shards[w]
	for v := sh.Lo; v < sh.Hi; v++ {
		if t.a.Part[v] == e.prevPart[v] {
			continue
		}
		e.recomputePar(ws, graph.Vertex(v), t.a)
		for _, u := range e.csr.Row(graph.Vertex(v)) {
			e.recomputePar(ws, u, t.a)
		}
	}
}

// parCutSortMin is the boundary size below which the sorted cut report
// sorts inline: sorting a small boundary is cheaper than a fork.
const parCutSortMin = 1024

// cutSortTask sorts one contiguous shard of the engine's cut buffer.
type cutSortTask struct{ e *Engine }

func (t *cutSortTask) Do(w int) {
	sh := t.e.shards[w]
	slices.Sort(t.e.cutBuf[sh.Lo:sh.Hi])
}

// sortedBoundary copies the (unordered, duplicate-free) boundary set
// into the engine's cut scratch and sorts it ascending — the seed order
// partition.CutSeededInto/CutSeededWeight expect. Large boundaries sort
// per-shard on the worker group and k-way merge sequentially; sorted
// ascending order is a canonical property of the *set*, so the result is
// bit-identical to the sequential slices.Sort for every worker count.
// The returned slice is engine-owned scratch, valid until the next call.
func (e *Engine) sortedBoundary() []graph.Vertex {
	e.cutBuf = append(e.cutBuf[:0], e.boundary...)
	n := len(e.cutBuf)
	if e.procs <= 1 || n < parCutSortMin {
		slices.Sort(e.cutBuf)
		return e.cutBuf
	}
	e.shards = par.Split(e.shards[:0], n, e.procs)
	if len(e.shards) < 2 {
		slices.Sort(e.cutBuf)
		return e.cutBuf
	}
	e.cs = cutSortTask{e: e}
	e.group.Run(len(e.shards), &e.cs)
	e.cs = cutSortTask{}

	// Merge the sorted runs. The input is duplicate-free, so the minimum
	// head is unique at every step and the merge order is forced.
	if cap(e.cutBuf2) < n {
		e.cutBuf2 = make([]graph.Vertex, 0, n)
	}
	if cap(e.cutHeads) < len(e.shards) {
		e.cutHeads = make([]int, len(e.shards))
	}
	heads := e.cutHeads[:len(e.shards)]
	for i, sh := range e.shards {
		heads[i] = sh.Lo
	}
	out := e.cutBuf2[:0]
	for len(out) < n {
		best := -1
		var bv graph.Vertex
		for i, h := range heads {
			if h >= e.shards[i].Hi {
				continue
			}
			if v := e.cutBuf[h]; best < 0 || v < bv {
				best, bv = i, v
			}
		}
		out = append(out, bv)
		heads[best]++
	}
	// Swap the buffers so the next call reuses both backing arrays.
	e.cutBuf, e.cutBuf2 = out, e.cutBuf
	return out
}

// recomputePar is recompute with an atomic claim: the stamp CAS admits
// exactly one worker per vertex per sync, so the inBoundary, sizeAttr
// and inPending reads and writes below are race-free. Stamps already
// claimed by the sequential journal pass (which runs before the diff
// region starts) are seen as current and skipped, exactly like the
// sequential path.
func (e *Engine) recomputePar(ws *boundaryWorker, v graph.Vertex, a *partition.Assignment) {
	if !e.stamps.Claim(v) {
		return
	}
	e.moveAttr(v, a, ws.psize)
	e.collectPending(v, a, &ws.pend)
	now := e.isBoundary(v, a)
	if now == e.inBoundary[v] {
		return
	}
	e.inBoundary[v] = now
	if now {
		ws.add = append(ws.add, v)
	} else {
		ws.dirty = true
	}
}
