package engine

// multilevel.go is the engine's V-cycle driver: when Options.Multilevel
// is enabled, Repartition runs a coarsen → solve-coarsest → uncoarsen
// cycle between phase 1 and the balancing stage loop. The hierarchy
// (coarsen.Hierarchy) lives inside the engine session, so a warm call
// after a small edit batch repairs it from the graph's journal instead
// of recoarsening — the same journal/epoch contract the CSR patch and
// boundary tracker already consume. The stage loop then acts as the fine
// polish: the V-cycle leaves at most cluster-granularity imbalance, so
// its LPs stay paper-sized, and the refinement phase (when enabled)
// sees an already-good cut.

import (
	"context"
	"time"

	"repro/internal/coarsen"
	"repro/internal/partition"
)

// MultilevelOptions configures the engine's V-cycle mode.
type MultilevelOptions struct {
	// Enabled turns the V-cycle on. When false the other fields are
	// ignored and Repartition runs the flat four-phase pipeline
	// unchanged.
	Enabled bool
	// CoarsenTo stops coarsening once a level has at most this many live
	// vertices (0 = max(64, 16·P); see coarsen.HierarchyOptions).
	CoarsenTo int
	// MaxLevels caps the hierarchy depth (0 = 32).
	MaxLevels int
	// Seed drives the spectral initial partitioning of the coarsest
	// graph when the incoming assignment is degenerate (0 = the spectral
	// package's fixed default). Fixed seed + fixed edit history =>
	// identical output at every Parallelism.
	Seed int64
}

// LevelStats re-exports the per-level hierarchy statistics so engine
// callers need not import internal/coarsen.
type LevelStats = coarsen.LevelStats

// runMultilevel executes the V-cycle between phase 1 and the balancing
// stage loop: hierarchy update (journal repair where possible), coarsest
// solve (weighted balance LP, or spectral init when the assignment is
// degenerate), and uncoarsening with per-level greedy refinement. The
// assignment stays valid at every exit, including cancellation.
func (e *Engine) runMultilevel(ctx context.Context, a *partition.Assignment, st *Stats) error {
	if e.ml == nil {
		e.ml = coarsen.NewHierarchy(e.g, coarsen.HierarchyOptions{
			CoarsenTo:  e.opt.Multilevel.CoarsenTo,
			MaxLevels:  e.opt.Multilevel.MaxLevels,
			Seed:       e.opt.Multilevel.Seed,
			EpsilonMax: e.opt.epsMax(),
			// The hierarchy's sharded kernels run on the engine's own
			// worker group, so WithParallelism covers the V-cycle and its
			// busy time rolls into Stats.WorkerBusy.
			Group: &e.group,
			Procs: e.procs,
		})
	}
	tC := time.Now()
	e.emit(Event{Kind: EventStart, Phase: PhaseCoarsen})
	repaired, err := e.ml.Update(ctx, a)
	if err != nil {
		st.CoarsenTime = time.Since(tC)
		e.emit(Event{Kind: EventEnd, Phase: PhaseCoarsen, Elapsed: st.CoarsenTime})
		return err
	}
	st.HierarchyRepaired = repaired
	moved, spectralInit, err := e.ml.SolveCoarsest(ctx, e.opt.solver())
	st.CoarseMoved = moved
	st.SpectralInit = spectralInit
	st.CoarsenTime = time.Since(tC)
	// Per-level spans are synthesized back-to-back after the work (the
	// hierarchy's sharded regions already report busy time through the
	// engine group; live span instrumentation would buy nothing), each
	// carrying its measured share.
	for l, ls := range e.ml.Levels() {
		e.emit(Event{Kind: EventStart, Phase: PhaseCoarsen, Stage: l + 1})
		e.emit(Event{Kind: EventEnd, Phase: PhaseCoarsen, Stage: l + 1,
			Moved: ls.Matched, Elapsed: ls.CoarsenTime})
	}
	e.emit(Event{Kind: EventEnd, Phase: PhaseCoarsen, Moved: moved, Elapsed: st.CoarsenTime})
	if err != nil {
		return err
	}

	tU := time.Now()
	e.emit(Event{Kind: EventStart, Phase: PhaseUncoarsen})
	refined, err := e.ml.Uncoarsen(ctx, a)
	st.VCycleRefined = refined
	st.UncoarsenTime = time.Since(tU)
	for l := e.ml.Depth() - 1; l >= 0; l-- {
		ls := e.ml.Levels()[l]
		e.emit(Event{Kind: EventStart, Phase: PhaseUncoarsen, Stage: l + 1})
		e.emit(Event{Kind: EventEnd, Phase: PhaseUncoarsen, Stage: l + 1,
			Moved: ls.Refined, Elapsed: ls.UncoarsenTime})
	}
	e.emit(Event{Kind: EventEnd, Phase: PhaseUncoarsen, Moved: refined, Elapsed: st.UncoarsenTime})
	// Copy the per-level stats only now: Uncoarsen fills the up-leg half
	// of the same arena Update started.
	st.Levels = append(st.Levels[:0], e.ml.Levels()...)
	return err
}
