package engine

import (
	"context"
	"errors"
	"testing"
)

// TestClose locks the Close contract: idempotent, every later call
// fails with ErrClosed (or returns nil views), and state cloned before
// the close survives it.
func TestClose(t *testing.T) {
	g, a := editableGraph(t, 200, 4, 7)
	e := New(g, Options{})
	st, err := e.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	kept := st.Clone()
	if e.Closed() {
		t.Fatal("engine reports closed before Close")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if !e.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if e.Graph() != g {
		t.Fatal("Graph() changed by Close")
	}

	if _, err := e.Repartition(context.Background(), a); !errors.Is(err, ErrClosed) {
		t.Fatalf("Repartition after Close: want ErrClosed, got %v", err)
	}
	if _, err := e.Layer(context.Background(), a); !errors.Is(err, ErrClosed) {
		t.Fatalf("Layer after Close: want ErrClosed, got %v", err)
	}
	if _, err := e.Gains(a, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("Gains after Close: want ErrClosed, got %v", err)
	}
	if s := e.Snapshot(a); s != nil {
		t.Fatal("Snapshot after Close: want nil")
	}
	if b := e.Boundary(a); b != nil {
		t.Fatal("Boundary after Close: want nil")
	}
	if c := e.Cut(a); c.Total != 0 || c.PerPart != nil {
		t.Fatalf("Cut after Close: want zero value, got %+v", c)
	}

	// The pre-close clone must be untouched by the release.
	if kept.Stages == nil && len(st.Stages) > 0 {
		t.Fatal("clone lost stages")
	}
	if len(kept.CutAfter.PerPart) != a.P {
		t.Fatalf("clone PerPart len %d, want %d", len(kept.CutAfter.PerPart), a.P)
	}
}
